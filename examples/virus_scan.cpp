// The paper's running example (§1, §6.1): an untrusted virus scanner that
// cannot leak the files it scans.
//
//   $ ./examples/virus_scan
//
// Recreates Figure 2: bob's files are tainted with his read category; wrap
// allocates a fresh category v, launches the scanner {br⋆, v3, 1} with a
// private /tmp, and relays only the verdict. A second run swaps in a
// *malicious* scanner that attempts the §1 leak vectors — every attempt
// dies on a label check, with no scanner-specific policy anywhere.
#include <cstdio>
#include <string>

#include "src/apps/wrap.h"
#include "src/net/netd.h"

using namespace histar;

int main() {
  Kernel kernel;
  std::unique_ptr<UnixWorld> world = UnixWorld::Boot(&kernel);
  ObjectId init = world->init_thread();
  CurrentThread::Set(init);
  RegisterScannerPrograms(&world->procs());

  // A network to (fail to) leak over.
  NetSwitch net;
  std::unique_ptr<NetDaemon> netd = NetDaemon::Start(world.get(), net.NewPort(), "netd");

  std::printf("== untrusted virus scanning (paper §6.1) ==\n\n");

  // Bob, his files, and the signature database.
  UnixUser bob = world->AddUser("bob").value();
  FileSystem& fs = world->fs();

  auto write_file = [&](const std::string& name, const std::string& content) {
    ObjectId f = fs.Create(init, bob.home, name, bob.FileLabel()).value();
    fs.WriteAt(init, bob.home, f, content.data(), 0, content.size());
  };
  write_file("taxes.txt", "agi: redacted");
  write_file("mail.mbox", "From: alice\n\nEICAR-STANDARD-ANTIVIRUS-TEST-FILE in body");
  write_file("packed.bin", "R13:RVPNE-FGNAQNEQ-NAGVIVEHF-GRFG-SVYR");  // rot13-encoded

  ObjectId db_dir = fs.MakeDir(init, world->fs_root(), "db", Label()).value();
  std::vector<Signature> sigs;
  Signature s;
  s.name = "Eicar.Test";
  std::string pat = "EICAR-STANDARD-ANTIVIRUS-TEST-FILE";
  s.pattern.assign(pat.begin(), pat.end());
  sigs.push_back(s);
  std::string db = SerializeDb(sigs);
  ObjectId dbf = fs.Create(init, db_dir, "virus.db", Label(),
                           kObjectOverheadBytes + db.size() + kPageSize).value();
  fs.WriteAt(init, db_dir, dbf, db.data(), 0, db.size());

  // --- 1. The honest scan ---------------------------------------------------------
  WrapOptions opts;
  opts.read_categories = {bob.ur};  // wrap runs with bob's read privilege
  Result<WrapResult> r = WrapScan(
      world->init_context(),
      {"/home/bob/taxes.txt", "/home/bob/mail.mbox", "/home/bob/packed.bin"}, opts);
  std::printf("scan completed: %s\n", r.value().completed ? "yes" : "no");
  std::printf("files scanned : %llu (the rot13 one went through a helper process,\n"
              "                which inherited the v3 taint automatically)\n",
              static_cast<unsigned long long>(r.value().report.files_scanned));
  for (const std::string& hit : r.value().report.infected) {
    std::printf("  INFECTED: %s\n", hit.c_str());
  }

  // --- 2. The compromised scanner -------------------------------------------------
  // Replace the scanner binary wholesale (the paper's nightmare: a malicious
  // update). It reads the secret, then tries to get it out.
  std::printf("\nnow the scanner is malicious (tries to exfiltrate):\n");
  NetDaemon* nd = netd.get();
  ObjectId real_tmp = world->tmp_dir();
  Kernel* k = &kernel;
  world->procs().RegisterProgram("avscan", [nd, real_tmp, k](ProcessContext& ctx) -> int64_t {
    // It CAN read the user's files — that is its job.
    FileSystem pfs(ctx.kernel);
    Result<ObjectId> f = ctx.fs.Walk(ctx.self, ctx.cwd, "/home/bob/taxes.txt");
    char loot[64] = {};
    if (f.ok()) {
      Result<std::pair<ObjectId, std::string>> loc =
          ctx.fs.WalkParent(ctx.self, ctx.cwd, "/home/bob/taxes.txt");
      ctx.fs.ReadAt(ctx.self, loc.value().first, f.value(), loot, 0, sizeof(loot));
    }
    std::printf("  [scanner] read the secret: \"%.13s\" — now to leak it...\n", loot);

    Result<uint64_t> sock = nd->Connect(ctx.self, MacFromIndex(99), 80);
    std::printf("  [scanner] open TCP connection          -> %s\n",
                std::string(StatusName(sock.status())).c_str());

    Result<ObjectId> drop = pfs.Create(ctx.self, real_tmp, "loot", Label());
    std::printf("  [scanner] drop file in the real /tmp   -> %s\n",
                std::string(StatusName(drop.status())).c_str());

    CreateSpec spec;
    spec.container = ctx.kernel->root_container();
    spec.descrip = "loot";
    Result<ObjectId> ct = ctx.kernel->sys_container_create(ctx.self, spec, 0);
    std::printf("  [scanner] allocate untainted container -> %s\n",
                std::string(StatusName(ct.status())).c_str());

    // Report "clean", hoping nobody notices.
    ScanReport rep;
    rep.ok = true;
    rep.files_scanned = 1;
    std::string out = SerializeReport(rep);
    ctx.fds->Write(ctx.self, 0, out.data(), out.size());
    return 0;
  });

  Result<WrapResult> evil = WrapScan(world->init_context(), {"/home/bob/taxes.txt"}, opts);
  std::printf("scan \"completed\": %s — and the secret stayed inside the sandbox;\n"
              "wrap then revoked the scan area, destroying every v3 object.\n",
              evil.value().completed ? "yes" : "no");
  std::printf("\nno ClamAV-specific policy exists anywhere: only the labels of Figure 4.\n");

  netd->Stop();
  CurrentThread::Set(kInvalidObject);
  return 0;
}
