// Web services with per-user isolation (paper §6.4).
//
//   $ ./examples/web_service
//
// The Asbestos motivating application, rebuilt on HiStar: a connection
// demultiplexer that owns no user data, per-request worker processes that
// acquire a user's categories only through the §6.2 login protocol, and a
// privilege-separated store whose records are labeled with their owner's
// categories. Buggy or malicious service code is contained per user.
#include <cstdio>
#include <string>

#include "src/apps/webserver.h"

using namespace histar;

int main() {
  Kernel kernel;
  std::unique_ptr<UnixWorld> world = UnixWorld::Boot(&kernel);
  ObjectId init = world->init_thread();
  CurrentThread::Set(init);

  std::printf("== web services with user isolation (paper §6.4) ==\n\n");

  // The service stack: logger, auth, store, demux.
  std::unique_ptr<LogService> log = LogService::Start(world.get());
  std::unique_ptr<AuthSystem> auth = AuthSystem::Start(world.get(), log.get());
  std::unique_ptr<UserStore> store = UserStore::Create(world.get());

  UnixUser alice = auth->AddUser("alice", "wonderland").value();
  UnixUser bob = auth->AddUser("bob", "builder").value();
  store->AddUser(init, alice);
  store->AddUser(init, bob);
  store->Put(init, "alice", "card", "4111-1111-1111-1111");
  store->Put(init, "bob", "card", "5500-0000-0000-0004");
  std::printf("two users; each record is a segment labeled with its owner's\n"
              "categories — the store itself could not read them if it tried.\n\n");

  NetSwitch net;
  std::unique_ptr<NetDaemon> srv_stack = NetDaemon::Start(world.get(), net.NewPort(), "netd-s");
  std::unique_ptr<NetDaemon> cli_stack = NetDaemon::Start(world.get(), net.NewPort(), "netd-c");
  std::unique_ptr<WebServer> web =
      WebServer::Start(world.get(), srv_stack.get(), auth.get(), store.get(), 80);

  Label cl = cli_stack->ClientTaint();
  Label cc(Level::k2, {{cli_stack->taint().i, Level::k3}});
  ObjectId browser = kernel.BootstrapThread(cl, cc, "browser");
  CurrentThread bind(browser);

  auto request = [&](const std::string& line) {
    Result<uint64_t> conn = cli_stack->Connect(browser, srv_stack->mac(), 80);
    std::string msg = line + "\n";
    cli_stack->Send(browser, conn.value(), msg.data(), msg.size());
    std::string resp;
    char buf[256];
    for (;;) {
      Result<uint64_t> n = cli_stack->Recv(browser, conn.value(), buf, sizeof(buf), 10000);
      if (!n.ok() || n.value() == 0 || resp.find('\n') != std::string::npos) {
        break;
      }
      resp.append(buf, n.value());
    }
    cli_stack->CloseSocket(browser, conn.value());
    while (!resp.empty() && resp.back() == '\n') {
      resp.pop_back();
    }
    std::printf("  %-52s -> %s\n", line.c_str(), resp.c_str());
  };

  std::printf("each request spawns a fresh worker in a demux-donated container;\n"
              "the worker holds a user's categories only after a real login:\n\n");
  request("GET alice/card PASS wonderland");
  request("GET bob/card PASS builder");
  request("GET alice/card PASS letmein");          // one bit leaks: "no"
  request("GET bob/card PASS wonderland");         // alice's password, bob's data
  request("PUT alice/note PASS wonderland DATA remember the hatter");
  request("GET alice/note PASS wonderland");

  std::printf("\n%llu requests served; the demux revoked every worker's container\n"
              "afterwards — resource control without observing the workers (§3.2).\n",
              static_cast<unsigned long long>(web->requests_served()));

  web->Stop();
  srv_stack->Stop();
  cli_stack->Stop();
  CurrentThread::Set(kInvalidObject);
  return 0;
}
