// Authentication with no trusted login process (paper §6.2, Figures 8–10).
//
//   $ ./examples/auth_login
//
// Unix needs a superuser `login` to hand out identities. HiStar needs four
// mutually-distrustful services, none privileged: a one-wrong-password
// attempt against a *malicious* authentication service leaks exactly one
// bit. This example runs a correct login, a failed login, and the retry
// exhaustion bound, and prints the append-only audit log at the end.
#include <cstdio>
#include <string>

#include "src/auth/auth.h"

using namespace histar;

int main() {
  Kernel kernel;
  std::unique_ptr<UnixWorld> world = UnixWorld::Boot(&kernel);
  ObjectId init = world->init_thread();
  CurrentThread::Set(init);

  std::printf("== authentication without a superuser (paper §6.2) ==\n\n");

  std::unique_ptr<LogService> log = LogService::Start(world.get());
  std::unique_ptr<AuthSystem> auth = AuthSystem::Start(world.get(), log.get());
  UnixUser bob = auth->AddUser("bob", "hunter2").value();
  std::printf("registered user bob; his password hash lives in a %s segment\n"
              "owned by *his* auth daemon — no system-wide shadow file.\n\n",
              bob.FileLabel().ToString().c_str());

  // A file only bob can read.
  FileSystem& fs = world->fs();
  ObjectId diary = fs.Create(init, bob.home, "diary", bob.FileLabel()).value();
  fs.WriteAt(init, bob.home, diary, "dear diary", 0, 10);

  // --- 1. sshd logs in with the right password -------------------------------------
  // The login client is an ordinary unprivileged thread (think sshd). It
  // trusts nobody with the password: the check step runs tainted pir3, so
  // even a hostile auth service could only ever learn pass/fail.
  ObjectId sshd = kernel.BootstrapThread(Label(), Label(Level::k2), "sshd");
  char buf[32] = {};
  Status before = kernel.sys_segment_read(sshd, ContainerEntry{bob.home, diary}, buf, 0, 10);
  std::printf("before login, sshd reads bob's diary -> %s\n",
              std::string(StatusName(before)).c_str());

  Result<LoginResult> r = auth->Login(sshd, "bob", "hunter2");
  std::printf("login(bob, correct password)         -> %s\n",
              r.ok() && r.value().authenticated ? "authenticated; thread now owns ur*, uw*"
                                                : "failed");
  Status after = kernel.sys_segment_read(sshd, ContainerEntry{bob.home, diary}, buf, 0, 10);
  std::printf("after  login, sshd reads bob's diary -> %s (\"%.10s\")\n\n",
              std::string(StatusName(after)).c_str(), buf);

  // --- 2. One wrong password, one bit ----------------------------------------------
  ObjectId intruder = kernel.BootstrapThread(Label(), Label(Level::k2), "intruder");
  Result<LoginResult> bad = auth->Login(intruder, "bob", "letmein");
  std::printf("login(bob, wrong password)           -> %s\n",
              bad.ok() && bad.value().authenticated ? "authenticated?!" : "denied");
  Status still = kernel.sys_segment_read(intruder, ContainerEntry{bob.home, diary}, buf, 0, 10);
  std::printf("intruder reads bob's diary           -> %s\n\n",
              std::string(StatusName(still)).c_str());

  // --- 3. The retry-count segment bounds guessing ----------------------------------
  // Figure 10's {pir3, uw0, 1} segment — created by two mutually-distrustful
  // parties executing agreed-upon code — decrements per guess within one
  // setup session.
  std::printf("guess bound (retry segment allows %d per session):\n", auth->retry_limit());
  ObjectId guesser = kernel.BootstrapThread(Label(), Label(Level::k2), "guesser");
  for (int i = 0; i < auth->retry_limit() + 2; ++i) {
    Result<LoginResult> g = auth->Login(guesser, "bob", "guess-" + std::to_string(i));
    std::printf("  guess %d -> %s\n", i + 1,
                !g.ok()                        ? std::string(StatusName(g.status())).c_str()
                : g.value().authenticated      ? "authenticated?!"
                                               : "denied");
  }

  // --- 4. The audit trail -----------------------------------------------------------
  // The logger saw every attempt; the tainted check code could not reach it
  // (that is why granting is a separate gate).
  std::printf("\nappend-only audit log:\n");
  for (const std::string& line : log->Lines()) {
    std::printf("  %s\n", line.c_str());
  }

  CurrentThread::Set(kInvalidObject);
  return 0;
}
