// Quickstart: boot a HiStar world, meet labels, and watch the kernel stop
// an information flow.
//
//   $ ./examples/quickstart
//
// This walks the paper's §2 example almost line by line: a user ("bob")
// protects a file with a read category, an unprivileged thread bounces off
// it, a thread that taints itself may read — and is then barred from
// writing anything untainted, which is the whole trick.
//
// Every kernel call made below is one row of docs/syscalls.md, which
// tabulates the full syscall surface: the §3 label-check rule each call
// enforces and the object-table shard locks it takes (the kernel is
// internally sharded — see ARCHITECTURE.md "Concurrency model" — but none
// of that is visible here: syscalls are linearizable, just no longer
// serialized behind one big lock).
#include <cstdio>
#include <string>

#include "src/unixlib/unix.h"

using namespace histar;

namespace {

void Show(const char* what, Status st) {
  std::printf("  %-58s -> %s\n", what, std::string(StatusName(st)).c_str());
}

}  // namespace

int main() {
  // A kernel plus the untrusted Unix library on top (processes, fs, fds all
  // live in user space — the kernel knows only six object types).
  Kernel kernel;
  std::unique_ptr<UnixWorld> world = UnixWorld::Boot(&kernel);
  ObjectId init = world->init_thread();
  CurrentThread::Set(init);

  std::printf("== HiStar quickstart ==\n\n");
  std::printf("kernel objects after boot: %zu (root container, init thread, console,\n"
              "fs root + /bin /tmp /home, proc root ... and nothing else)\n\n",
              kernel.ObjectCount());

  // --- 1. Bob and his labels -----------------------------------------------------
  UnixUser bob = world->AddUser("bob").value();
  std::printf("bob's categories: ur=%llx (read), uw=%llx (write)\n",
              static_cast<unsigned long long>(bob.ur),
              static_cast<unsigned long long>(bob.uw));
  std::printf("bob's file label: %s   (§2: {r3, w0, 1})\n\n",
              bob.FileLabel().ToString().c_str());

  FileSystem& fs = world->fs();
  ObjectId diary = fs.Create(init, bob.home, "diary.txt", bob.FileLabel()).value();
  const char secret[] = "bob's diary: the secret";
  fs.WriteAt(init, bob.home, diary, secret, 0, sizeof(secret));
  std::printf("created /home/bob/diary.txt labeled %s\n\n",
              bob.FileLabel().ToString().c_str());

  // --- 2. An unprivileged thread hits the wall ------------------------------------
  // Label {1}, clearance {2}: the conventional starting point (§3.1). It
  // owns nothing of bob's.
  ObjectId mallory = kernel.BootstrapThread(Label(), Label(Level::k2), "mallory");
  char buf[64] = {};
  std::printf("mallory (label {1}) tries bob's file:\n");
  Show("read  diary.txt ('no read up')",
       kernel.sys_segment_read(mallory, ContainerEntry{bob.home, diary}, buf, 0, 8));
  Show("write diary.txt ('no write down')",
       kernel.sys_segment_write(mallory, ContainerEntry{bob.home, diary}, "x", 0, 1));

  // --- 3. Tainting: the third option beyond allow/deny ----------------------------
  // HiStar's distinctive move (§2): a thread may *raise its own label* to
  // read more-tainted data — observation is free, exporting is not. Bob's
  // file is ur3, above the default clearance {2}, so mallory cannot even do
  // that (that is what level 3 means). Make a file at level 2 to show the
  // mechanism.
  Result<CategoryId> t = kernel.sys_cat_create(init);
  Label tainted2(Level::k1, {{t.value(), Level::k2}});
  ObjectId memo = fs.Create(init, world->tmp_dir(), "memo", tainted2).value();
  fs.WriteAt(init, world->tmp_dir(), memo, "tainted memo", 0, 12);

  ObjectId curious = kernel.BootstrapThread(Label(), Label(Level::k2), "curious");
  std::printf("\ncurious (label {1}) and a {t2, 1} memo:\n");
  Show("read memo while untainted",
       kernel.sys_segment_read(curious, ContainerEntry{world->tmp_dir(), memo}, buf, 0, 8));
  Label raised = Label::RaiseForRead(Label(), tainted2);
  Show(("self_set_label to " + raised.ToString()).c_str(),
       kernel.sys_self_set_label(curious, raised));
  Show("read memo now",
       kernel.sys_segment_read(curious, ContainerEntry{world->tmp_dir(), memo}, buf, 0, 8));
  std::printf("      read: \"%.12s\"\n", buf);

  // ...but the taint sticks: curious can no longer write anything untainted.
  ObjectId scratch = fs.Create(init, world->tmp_dir(), "scratch", Label()).value();
  kernel.sys_segment_resize(init, ContainerEntry{world->tmp_dir(), scratch}, 16);
  Show("write an untainted file afterwards (blocked: taint is sticky)",
       kernel.sys_segment_write(curious, ContainerEntry{world->tmp_dir(), scratch}, "y", 0, 1));
  Show("lower own label back (blocked: no self-untainting)",
       kernel.sys_self_set_label(curious, Label()));

  // --- 4. Ownership (⋆) is the only way out ---------------------------------------
  std::printf("\ninit owns t (it allocated the category): label checks ignore t for it.\n");
  Show("init reads the memo",
       kernel.sys_segment_read(init, ContainerEntry{world->tmp_dir(), memo}, buf, 0, 8));
  Show("init writes the untainted scratch file (it can declassify)",
       kernel.sys_segment_write(init, ContainerEntry{world->tmp_dir(), scratch}, "ok", 0, 2));

  // --- 5. Processes are just a library convention ----------------------------------
  world->procs().RegisterProgram("hello", [](ProcessContext& ctx) -> int64_t {
    // This runs as a full HiStar process: own pr/pw categories, container
    // pair, exit segment, signal gate — all built by unprivileged code.
    return 42;
  });
  Result<std::unique_ptr<ProcHandle>> child =
      world->procs().Spawn(world->init_context(), "hello", {});
  Result<int64_t> status = child.value()->Wait(init);
  std::printf("\nspawned a process through the user-level library; exit status: %lld\n",
              static_cast<long long>(status.value()));
  std::printf("kernel syscalls so far: %llu — every one of them label-checked\n",
              static_cast<unsigned long long>(kernel.syscall_count()));

  CurrentThread::Set(kInvalidObject);
  std::printf("\ndone.\n");
  return 0;
}
