// VPN isolation (paper §6.3, Figure 11): one machine on two networks, with
// kernel-enforced separation between them.
//
//   $ ./examples/vpn_isolation
//
// The bootstrap taints everything from the Internet {i2, 1}; the VPN path
// taints with v. Only vpnd owns both categories, and it swaps taints as it
// encrypts/decrypts. A browser tainted v2 (it read corporate data) cannot
// send a byte to the Internet; an Internet-tainted process cannot touch the
// VPN — the Slammer-through-the-VPN scenario the paper opens §6.3 with.
#include <cstdio>
#include <string>

#include "src/net/vpn.h"

using namespace histar;

namespace {

ObjectId MakeClient(Kernel* k, NetDaemon* stack, const char* name) {
  Label l = stack->ClientTaint();
  Label c(Level::k2, {{stack->taint().i, Level::k3}});
  return k->BootstrapThread(l, c, name);
}

}  // namespace

int main() {
  Kernel kernel;
  std::unique_ptr<UnixWorld> world = UnixWorld::Boot(&kernel);
  ObjectId init = world->init_thread();
  CurrentThread::Set(init);

  std::printf("== VPN isolation (paper §6.3) ==\n\n");

  // The open Internet: a switch, our machine's stack, and a remote VPN
  // gateway that fronts the firewalled corporate network.
  NetSwitch internet;
  std::unique_ptr<NetDaemon> inet = NetDaemon::Start(world.get(), internet.NewPort(), "netd-i");
  ObjectId gw_client = MakeClient(&kernel, inet.get(), "vpn-gateway");
  VpnGatewaySim gateway(inet.get(), &kernel, gw_client, 1194, /*key=*/0x5c);

  // vpnd: the only component owning both i and v. 300 lines of tun device +
  // driver in the paper; the only trusted piece of this picture.
  std::unique_ptr<VpnDaemon> vpnd =
      VpnDaemon::Start(world.get(), inet.get(), gateway.remote_host_mac(), 1194, 0x5c);
  std::printf("categories: i (Internet taint) owned by netd's creator,\n"
              "            v=%llx (VPN taint) owned only by vpnd\n\n",
              static_cast<unsigned long long>(vpnd->v()));

  // --- 1. A browser talks to the corporate network through the tunnel -------------
  ObjectId browser = MakeClient(&kernel, vpnd->vpn_stack(), "browser-vpn");
  Result<uint64_t> conn =
      vpnd->vpn_stack()->Connect(browser, gateway.remote_host_mac(), 7 /* echo */);
  std::printf("browser connects to corporate echo host over the VPN -> %s\n",
              std::string(StatusName(conn.status())).c_str());
  if (conn.ok()) {
    const char ping[] = "quarterly numbers?";
    vpnd->vpn_stack()->Send(browser, conn.value(), ping, sizeof(ping) - 1);
    char echo[64] = {};
    Result<uint64_t> n =
        vpnd->vpn_stack()->Recv(browser, conn.value(), echo, sizeof(echo), 5000);
    std::printf("corporate host echoes: \"%.*s\"  (%llu tunneled frames so far)\n",
                n.ok() ? static_cast<int>(n.value()) : 0, echo,
                static_cast<unsigned long long>(gateway.frames_tunneled()));
  }

  // --- 2. The wire never sees plaintext --------------------------------------------
  std::printf("\non the Internet wire those bytes crossed as xor-%02x tunnel records —\n"
              "both protocol stacks are untrusted; only vpnd touches both worlds.\n",
              0x5c);

  // --- 3. Now the browser is \"contaminated\" and tries the Internet ----------------
  // Reading VPN data tainted the browser v2. The kernel now refuses it any
  // path to the Internet stack — socket API or raw device alike.
  ObjectId dev = inet->device();
  Result<uint64_t> leak = inet->Connect(browser, MacFromIndex(0x99), 80);
  std::printf("\nVPN-tainted browser opens an Internet socket -> %s\n",
              std::string(StatusName(leak.status())).c_str());
  Status raw = kernel.sys_net_transmit(browser, ContainerEntry{kernel.root_container(), dev},
                                       ContainerEntry{kernel.root_container(), dev}, 0, 0);
  std::printf("VPN-tainted browser writes the NIC directly  -> %s\n",
              std::string(StatusName(raw)).c_str());

  // --- 4. And the other direction ---------------------------------------------------
  ObjectId downloader = MakeClient(&kernel, inet.get(), "downloader");
  // Tainted i2 by its Internet reads; the VPN stack's sockets demand v.
  Result<uint64_t> cross =
      vpnd->vpn_stack()->Connect(downloader, gateway.remote_host_mac(), 7);
  std::printf("Internet-tainted process opens a VPN socket  -> %s\n",
              std::string(StatusName(cross.status())).c_str());

  std::printf("\na system-wide two-network policy, enforced by two categories and one\n"
              "small daemon — no firewall rules, no per-application configuration.\n");

  vpnd->Stop();
  gateway.Stop();
  inet->Stop();
  CurrentThread::Set(kInvalidObject);
  return 0;
}
