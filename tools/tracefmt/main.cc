// tracefmt: converts a histar flight-recorder dump (JSON lines, schema
// histar-trace-dump-v1 — see docs/observability.md) into Chrome
// trace-event format, loadable in chrome://tracing or Perfetto.
//
//   tracefmt dump.json > trace.json
//   tracefmt < dump.json > trace.json
//
// Mapping: each trace slot becomes a "thread" (tid = slot) of one process;
// syscall and store-commit events with a duration become complete ("X")
// events; everything else becomes an instant ("i") event. Syscall kinds
// and statuses are rendered with the kernel's own name tables, so the
// output names never drift from the ABI.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "src/core/status.h"
#include "src/core/trace.h"
#include "src/kernel/syscall_abi.h"

namespace {

// Minimal field extraction for the dump's flat one-line objects: finds
// "key": and parses the integer (or returns fallback). The dump writer
// (trace::DumpJson) emits no nesting and no whitespace variation, but
// accepting arbitrary spacing costs nothing.
bool FindNumber(const std::string& line, const char* key, uint64_t* out) {
  std::string needle = std::string("\"") + key + "\":";
  size_t pos = line.find(needle);
  if (pos == std::string::npos) {
    return false;
  }
  pos += needle.size();
  while (pos < line.size() && (line[pos] == ' ' || line[pos] == '"')) {
    ++pos;
  }
  char* end = nullptr;
  uint64_t v = std::strtoull(line.c_str() + pos, &end, 10);
  if (end == line.c_str() + pos) {
    return false;
  }
  *out = v;
  return true;
}

bool FindString(const std::string& line, const char* key, std::string* out) {
  std::string needle = std::string("\"") + key + "\":\"";
  size_t pos = line.find(needle);
  if (pos == std::string::npos) {
    return false;
  }
  pos += needle.size();
  size_t endq = line.find('"', pos);
  if (endq == std::string::npos) {
    return false;
  }
  *out = line.substr(pos, endq - pos);
  return true;
}

int Run(std::istream& in, std::ostream& out) {
  out << "{\"traceEvents\":[\n";
  std::string line;
  bool first = true;
  size_t events = 0;
  while (std::getline(in, line)) {
    if (line.find("\"schema\"") != std::string::npos) {
      continue;  // header line
    }
    uint64_t slot = 0, ts = 0, dur = 0, a = 0, b = 0, c = 0, aux = 0,
             tlabel = 0, olabel = 0;
    std::string kind;
    if (!FindNumber(line, "slot", &slot) || !FindNumber(line, "ts_ns", &ts) ||
        !FindString(line, "kind", &kind)) {
      continue;
    }
    FindNumber(line, "dur_ns", &dur);
    FindNumber(line, "a", &a);
    FindNumber(line, "b", &b);
    FindNumber(line, "c", &c);
    FindNumber(line, "aux", &aux);
    FindNumber(line, "tlabel", &tlabel);
    FindNumber(line, "olabel", &olabel);
    // code is serialized as a signed int; reparse by hand.
    std::string code_name;
    {
      size_t pos = line.find("\"code\":");
      int64_t scode = 0;
      if (pos != std::string::npos) {
        scode = std::strtoll(line.c_str() + pos + 7, nullptr, 10);
      }
      code_name = std::string(
          histar::StatusName(static_cast<histar::Status>(scode)));
    }

    std::string name = kind;
    if (kind == "syscall") {
      name = histar::SyscallKindName(static_cast<size_t>(aux));
    } else if (kind == "store_commit") {
      name = std::string("store_") +
             histar::trace::StoreOpName(static_cast<uint8_t>(aux));
    }

    char buf[1024];
    double ts_us = static_cast<double>(ts) / 1000.0;
    double dur_us = static_cast<double>(dur) / 1000.0;
    const char* ph = dur > 0 ? "X" : "i";
    std::snprintf(
        buf, sizeof(buf),
        "%s{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"pid\":1,"
        "\"tid\":%llu,\"ts\":%.3f%s%s,\"args\":{\"a\":%llu,\"b\":%llu,"
        "\"c\":%llu,\"status\":\"%s\",\"tlabel\":%llu,\"olabel\":%llu}}",
        first ? "" : ",\n", name.c_str(), kind.c_str(), ph,
        static_cast<unsigned long long>(slot), ts_us,
        dur > 0 ? ",\"dur\":" : ",\"s\":\"t\"",
        dur > 0 ? std::to_string(dur_us).c_str() : "",
        static_cast<unsigned long long>(a), static_cast<unsigned long long>(b),
        static_cast<unsigned long long>(c), code_name.c_str(),
        static_cast<unsigned long long>(tlabel),
        static_cast<unsigned long long>(olabel));
    out << buf;
    first = false;
    ++events;
  }
  out << "\n],\"displayTimeUnit\":\"ns\"}\n";
  std::cerr << "tracefmt: " << events << " events\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 2 || (argc == 2 && std::strcmp(argv[1], "--help") == 0)) {
    std::cerr << "usage: tracefmt [dump.json] > chrome_trace.json\n";
    return 2;
  }
  if (argc == 2) {
    std::ifstream f(argv[1]);
    if (!f) {
      std::cerr << "tracefmt: cannot open " << argv[1] << "\n";
      return 1;
    }
    return Run(f, std::cout);
  }
  return Run(std::cin, std::cout);
}
