#include "tools/histar-lint/lint.h"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace histar {
namespace lint {

namespace {

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// True when content[pos..pos+token) matches `token` as a whole word on the
// left (preceded by a non-identifier char). The right side is checked by
// the caller where it matters (tokens usually end in '(' or '[').
bool WordMatchAt(const std::string& s, size_t pos, const std::string& token) {
  if (s.compare(pos, token.size(), token) != 0) {
    return false;
  }
  return pos == 0 || !IsIdentChar(s[pos - 1]);
}

// Finds `token` as a left-word-bounded match in `line`, from `from`.
size_t FindWord(const std::string& line, const std::string& token, size_t from = 0) {
  size_t pos = from;
  while ((pos = line.find(token, pos)) != std::string::npos) {
    if (pos == 0 || !IsIdentChar(line[pos - 1])) {
      return pos;
    }
    ++pos;
  }
  return std::string::npos;
}

// Matches a scoped-object declaration: `Type ident(` or `Type ident;` (with
// arbitrary spacing). Returns true when `line` declares an object of
// `type` at or after `from`.
bool MatchesDecl(const std::string& line, const std::string& type) {
  size_t pos = 0;
  while ((pos = FindWord(line, type, pos)) != std::string::npos) {
    size_t i = pos + type.size();
    if (i >= line.size() || line[i] != ' ') {
      ++pos;
      continue;  // TableLock::Mode, class TableLock, ~TableLock...
    }
    while (i < line.size() && line[i] == ' ') {
      ++i;
    }
    size_t ident_start = i;
    while (i < line.size() && IsIdentChar(line[i])) {
      ++i;
    }
    if (i == ident_start) {
      ++pos;
      continue;
    }
    while (i < line.size() && line[i] == ' ') {
      ++i;
    }
    if (i < line.size() && (line[i] == '(' || line[i] == ';' || line[i] == '{')) {
      return true;
    }
    ++pos;
  }
  return false;
}

// The kernel translation units whose label checks must be registry-mediated
// (the old hot_path_audit_test list, now owned by the linter).
const char* kKernelLabelSources[] = {
    "src/kernel/kernel.cc",       "src/kernel/kernel_seg.cc",
    "src/kernel/kernel_thread.cc", "src/kernel/kernel_persist.cc",
    "src/kernel/kernel_batch.cc", "src/kernel/syscall_abi.cc",
    "src/kernel/ring.cc",
};

bool IsKernelLabelSource(const std::string& path) {
  for (const char* p : kKernelLabelSources) {
    if (EndsWith(path, p)) {
      return true;
    }
  }
  return false;
}

bool InSrcTree(const std::string& path) {
  return path.rfind("src/", 0) == 0 || path.find("/src/") != std::string::npos;
}

struct Rule {
  const char* name;
  // Whether the rule applies to this path when no explicit rule list is
  // given. Defining-file exemptions (checked separately) always hold.
  bool (*applies)(const std::string& path);
  // Files exempt even under an explicit --rule (the defining file).
  bool (*exempt)(const std::string& path);
};

bool AppliesSrc(const std::string& p) { return InSrcTree(p); }
bool ExemptNone(const std::string&) { return false; }
bool ExemptSyncH(const std::string& p) { return EndsWith(p, "src/core/sync.h"); }
bool ExemptObjectTable(const std::string& p) {
  return EndsWith(p, "src/kernel/object_table.h");
}
bool ExemptEpoch(const std::string& p) {
  return EndsWith(p, "src/core/epoch.h") || EndsWith(p, "src/core/epoch.cc");
}
bool ExemptStoreAlloc(const std::string& p) {
  return EndsWith(p, "src/store/store_alloc.h");
}
bool AppliesKernelTU(const std::string& p) { return IsKernelLabelSource(p); }
bool AppliesSrcNotObjectTable(const std::string& p) {
  return InSrcTree(p) && !ExemptObjectTable(p);
}
bool AppliesSrcNotEpoch(const std::string& p) { return InSrcTree(p) && !ExemptEpoch(p); }
bool AppliesSrcNotStoreAlloc(const std::string& p) {
  return InSrcTree(p) && !ExemptStoreAlloc(p);
}
bool AppliesSrcNotSyncH(const std::string& p) { return InSrcTree(p) && !ExemptSyncH(p); }
bool ExemptTrace(const std::string& p) {
  return EndsWith(p, "src/core/trace.h") || EndsWith(p, "src/core/trace.cc");
}
bool AppliesSrcNotTrace(const std::string& p) { return InSrcTree(p) && !ExemptTrace(p); }

const Rule kRules[] = {
    {"second-table-lock", AppliesSrcNotObjectTable, ExemptObjectTable},
    {"registry-bypass", AppliesKernelTU, ExemptNone},
    {"epoch-guard-blocking", AppliesSrcNotEpoch, ExemptEpoch},
    {"nofail-region-check", AppliesSrcNotStoreAlloc, ExemptStoreAlloc},
    {"shard-mutex-outside-tablelock", AppliesSrcNotObjectTable, ExemptObjectTable},
    {"raw-sync-primitive", AppliesSrcNotSyncH, ExemptSyncH},
    {"raw-clock-read", AppliesSrcNotTrace, ExemptTrace},
};

bool RuleEnabled(const Rule& rule, const std::string& path,
                 const std::vector<std::string>& only_rules) {
  if (rule.exempt(path)) {
    return false;
  }
  if (!only_rules.empty()) {
    return std::find(only_rules.begin(), only_rules.end(), rule.name) != only_rules.end();
  }
  return rule.applies(path);
}

// ---- per-line checks -------------------------------------------------------------

void CheckRegistryBypass(const std::string& path, int lineno, const std::string& line,
                         std::vector<Finding>* out) {
  // Allocating / list-walking label calls, forbidden outright in kernel TUs.
  static const char* kForbidden[] = {".ToHi(", ".ToStar(", "RaiseForRead("};
  for (const char* pat : kForbidden) {
    if (line.find(pat) != std::string::npos) {
      out->push_back({path, lineno, "registry-bypass",
                      std::string(pat) + " bypasses the label registry's precomputed "
                                         "shifted forms"});
    }
  }
  // ⊑ / ⊔ / ⊓ are legal only as registry calls (registry_.Leq is memoized;
  // label.Leq is the bypass).
  static const char* kRegistryOnly[] = {".Leq(", ".Join(", ".Meet("};
  static const char* kReceivers[] = {"registry_", "registry"};
  for (const char* pat : kRegistryOnly) {
    size_t pos = 0;
    while ((pos = line.find(pat, pos)) != std::string::npos) {
      bool ok = false;
      for (const char* recv : kReceivers) {
        size_t n = std::char_traits<char>::length(recv);
        if (pos >= n && line.compare(pos - n, n, recv) == 0 &&
            (pos == n || !IsIdentChar(line[pos - n - 1]))) {
          ok = true;
        }
      }
      if (!ok) {
        out->push_back({path, lineno, "registry-bypass",
                        std::string("non-registry ") + pat +
                            " — kernel label checks must be memoized"});
      }
      ++pos;
    }
  }
}

void CheckRawSync(const std::string& path, int lineno, const std::string& line,
                  std::vector<Finding>* out) {
  static const char* kRaw[] = {
      "std::mutex",       "std::shared_mutex",       "std::recursive_mutex",
      "std::timed_mutex", "std::condition_variable", "std::lock_guard",
      "std::unique_lock", "std::shared_lock",        "std::scoped_lock",
  };
  for (const char* pat : kRaw) {
    size_t pos = FindWord(line, pat);
    if (pos != std::string::npos &&
        !IsIdentChar(line[pos + std::char_traits<char>::length(pat)])) {
      out->push_back({path, lineno, "raw-sync-primitive",
                      std::string(pat) + " — use the annotated wrappers in "
                                         "src/core/sync.h so -Wthread-safety sees the "
                                         "lock graph"});
    }
  }
}

void CheckShardMutex(const std::string& path, int lineno, const std::string& line,
                     std::vector<Finding>* out) {
  // TableCap's acquire/release pair belongs to TableLock and
  // PublishedReadTableCap alone; shard storage is object_table.h-private.
  static const char* kForbidden[] = {"cap().Acquire(", "cap().Release(",
                                     "cap_.Acquire(", "cap_.Release(", "shards_["};
  for (const char* pat : kForbidden) {
    if (FindWord(line, pat) != std::string::npos) {
      out->push_back({path, lineno, "shard-mutex-outside-tablelock",
                      std::string(pat) + " — shard locks are acquired only through the "
                                         "scoped TableLock (ascending order)"});
    }
  }
}

void CheckRawClockRead(const std::string& path, int lineno, const std::string& line,
                       std::vector<Finding>* out) {
  // Timing must route through trace::NowNs()/SteadyNow() so the
  // HISTAR_TRACE=0 build really compiles clock reads out. Only *reads* are
  // findings: `steady_clock::duration` and other type mentions are legal,
  // so the chrono patterns require the `::now(` call form.
  static const char* kClockCalls[] = {
      "steady_clock::now",
      "system_clock::now",
      "high_resolution_clock::now",
  };
  for (const char* pat : kClockCalls) {
    size_t pos = FindWord(line, pat);
    if (pos != std::string::npos) {
      size_t i = pos + std::char_traits<char>::length(pat);
      while (i < line.size() && line[i] == ' ') {
        ++i;
      }
      if (i < line.size() && line[i] == '(') {
        out->push_back({path, lineno, "raw-clock-read",
                        std::string(pat) + "() — clock reads go through "
                                           "trace::NowNs()/SteadyNow() so HISTAR_TRACE=0 "
                                           "compiles them out"});
      }
    }
  }
  static const char* kClockWords[] = {"clock_gettime", "gettimeofday", "__rdtsc",
                                      "rdtsc"};
  for (const char* pat : kClockWords) {
    size_t pos = FindWord(line, pat);
    if (pos != std::string::npos &&
        (pos + std::char_traits<char>::length(pat) >= line.size() ||
         !IsIdentChar(line[pos + std::char_traits<char>::length(pat)]))) {
      out->push_back({path, lineno, "raw-clock-read",
                      std::string(pat) + " — clock reads go through "
                                         "trace::NowNs()/SteadyNow() so HISTAR_TRACE=0 "
                                         "compiles them out"});
    }
  }
}

// ---- scoped region rules ---------------------------------------------------------

struct Region {
  const char* kind;  // "table-lock" | "epoch" | "nofail"
  int depth;         // brace depth at the declaration
  int line;
};

void CheckScopedLine(const std::string& path, int lineno, const std::string& line,
                     std::vector<Region>* regions, int depth, bool rule_table_lock,
                     bool rule_epoch, bool rule_nofail, std::vector<Finding>* out) {
  bool in_table_lock = false;
  bool in_epoch = false;
  bool in_nofail = false;
  for (const Region& r : *regions) {
    in_table_lock |= r.kind[0] == 't';
    in_epoch |= r.kind[0] == 'e';
    in_nofail |= r.kind[0] == 'n';
  }

  if (rule_epoch && in_epoch) {
    static const char* kBlocking[] = {
        "MutexLock",     "WriterMutexLock", "ReaderMutexLock", ".Lock(",
        ".Wait(",        ".WaitFor(",       "sleep_for",       "sys_futex_wait",
    };
    for (const char* pat : kBlocking) {
      if (FindWord(line, pat) != std::string::npos ||
          (pat[0] == '.' && line.find(pat) != std::string::npos)) {
        out->push_back({path, lineno, "epoch-guard-blocking",
                        std::string(pat) + " inside an EpochGuard scope — a pinned "
                                           "reader that blocks stalls epoch advancement"});
      }
    }
    if (MatchesDecl(line, "TableLock")) {
      out->push_back({path, lineno, "epoch-guard-blocking",
                      "TableLock inside an EpochGuard scope — the lock-free batch path "
                      "must not fall back to shard locks while pinned"});
    }
  }

  if (rule_nofail && in_nofail) {
    if (FindWord(line, "throw") != std::string::npos) {
      out->push_back({path, lineno, "nofail-region-check",
                      "throw inside a StoreAllocNoFail scope — cleanup must not become "
                      "a second fault"});
    }
    if (line.find("StoreAlloc::Check(") != std::string::npos) {
      out->push_back({path, lineno, "nofail-region-check",
                      "StoreAlloc::Check() inside a StoreAllocNoFail scope — the check "
                      "is suppressed there; the call indicates a misplaced boundary"});
    }
  }

  // Declarations open regions AFTER the checks above, so the declaring line
  // itself is not inside its own region.
  if ((rule_table_lock || rule_epoch) &&
      (MatchesDecl(line, "TableLock") || MatchesDecl(line, "PublishedReadTableCap"))) {
    if (rule_table_lock && in_table_lock) {
      out->push_back({path, lineno, "second-table-lock",
                      "second table-capability acquisition while one is already live — "
                      "one TableLock per syscall, ascending shard order"});
    }
    regions->push_back({"table-lock", depth, lineno});
  }
  if (rule_epoch && MatchesDecl(line, "EpochGuard")) {
    regions->push_back({"epoch", depth, lineno});
  }
  if (rule_nofail && MatchesDecl(line, "StoreAllocNoFail")) {
    regions->push_back({"nofail", depth, lineno});
  }
}

}  // namespace

std::string CleanSource(const std::string& content) {
  std::string out = content;
  enum class St { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  St st = St::kCode;
  std::string raw_delim;  // for R"delim( ... )delim"
  for (size_t i = 0; i < out.size(); ++i) {
    char c = out[i];
    char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (st) {
      case St::kCode:
        if (c == '/' && next == '/') {
          st = St::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          st = St::kBlockComment;
          out[i] = ' ';
        } else if (c == 'R' && next == '"' && (i == 0 || !IsIdentChar(out[i - 1]))) {
          size_t paren = out.find('(', i + 2);
          if (paren != std::string::npos) {
            raw_delim = ")" + out.substr(i + 2, paren - i - 2) + "\"";
            st = St::kRawString;
            for (size_t j = i; j <= paren; ++j) {
              if (out[j] != '\n') out[j] = ' ';
            }
            i = paren;
          }
        } else if (c == '"') {
          st = St::kString;
        } else if (c == '\'') {
          st = St::kChar;
        }
        break;
      case St::kLineComment:
        if (c == '\n') {
          st = St::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case St::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kString:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n') {
            out[i + 1] = ' ';
          }
          ++i;
        } else if (c == '"') {
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n') {
            out[i + 1] = ' ';
          }
          ++i;
        } else if (c == '\'') {
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kRawString:
        if (out.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

std::vector<std::string> AllRuleNames() {
  std::vector<std::string> names;
  for (const Rule& r : kRules) {
    names.push_back(r.name);
  }
  return names;
}

std::vector<Finding> LintSource(const std::string& rel_path, const std::string& content,
                                const std::vector<std::string>& only_rules) {
  bool enabled[sizeof(kRules) / sizeof(kRules[0])];
  bool any = false;
  for (size_t i = 0; i < sizeof(kRules) / sizeof(kRules[0]); ++i) {
    enabled[i] = RuleEnabled(kRules[i], rel_path, only_rules);
    any |= enabled[i];
  }
  std::vector<Finding> findings;
  if (!any) {
    return findings;
  }
  const bool rule_table_lock = enabled[0];
  const bool rule_registry = enabled[1];
  const bool rule_epoch = enabled[2];
  const bool rule_nofail = enabled[3];
  const bool rule_shard = enabled[4];
  const bool rule_raw_sync = enabled[5];
  const bool rule_raw_clock = enabled[6];

  std::string clean = CleanSource(content);
  std::istringstream in(clean);
  std::string line;
  int lineno = 0;
  int depth = 0;
  std::vector<Region> regions;
  while (std::getline(in, line)) {
    ++lineno;
    if (rule_registry) {
      CheckRegistryBypass(rel_path, lineno, line, &findings);
    }
    if (rule_raw_sync) {
      CheckRawSync(rel_path, lineno, line, &findings);
    }
    if (rule_raw_clock) {
      CheckRawClockRead(rel_path, lineno, line, &findings);
    }
    if (rule_shard) {
      CheckShardMutex(rel_path, lineno, line, &findings);
    }
    if (rule_table_lock || rule_epoch || rule_nofail) {
      CheckScopedLine(rel_path, lineno, line, &regions, depth, rule_table_lock,
                      rule_epoch, rule_nofail, &findings);
    }
    // Update brace depth and close regions whose enclosing block ended.
    for (char c : line) {
      if (c == '{') {
        ++depth;
      } else if (c == '}') {
        --depth;
        while (!regions.empty() && depth < regions.back().depth) {
          regions.pop_back();
        }
      }
    }
  }
  return findings;
}

}  // namespace lint
}  // namespace histar
