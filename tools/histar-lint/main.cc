// histar-lint CLI: lints the given source files against the repo's
// discipline rules (lint.h). Exit code 1 when any finding is reported.
//
//   histar-lint [--rule=NAME ...] [--list-rules] file...
//
// Paths are matched as given — invoke from the repo root (or pass
// repo-relative paths) so per-rule applicability sees "src/..." prefixes.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/histar-lint/lint.h"

int main(int argc, char** argv) {
  std::vector<std::string> rules;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const std::string& name : histar::lint::AllRuleNames()) {
        std::printf("%s\n", name.c_str());
      }
      return 0;
    }
    if (arg.rfind("--rule=", 0) == 0) {
      rules.push_back(arg.substr(7));
      continue;
    }
    if (arg == "--help" || arg == "-h") {
      std::printf("usage: histar-lint [--rule=NAME ...] [--list-rules] file...\n");
      return 0;
    }
    files.push_back(arg);
  }
  if (files.empty()) {
    std::fprintf(stderr, "histar-lint: no input files\n");
    return 2;
  }
  for (const std::string& r : rules) {
    std::vector<std::string> known = histar::lint::AllRuleNames();
    bool ok = false;
    for (const std::string& k : known) {
      ok |= k == r;
    }
    if (!ok) {
      std::fprintf(stderr, "histar-lint: unknown rule '%s' (see --list-rules)\n",
                   r.c_str());
      return 2;
    }
  }

  int total = 0;
  for (const std::string& path : files) {
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) {
      std::fprintf(stderr, "histar-lint: cannot open %s\n", path.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::vector<histar::lint::Finding> findings =
        histar::lint::LintSource(path, buf.str(), rules);
    for (const histar::lint::Finding& f : findings) {
      std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                  f.message.c_str());
      ++total;
    }
  }
  if (total > 0) {
    std::fprintf(stderr, "histar-lint: %d finding%s\n", total, total == 1 ? "" : "s");
    return 1;
  }
  return 0;
}
