// histar-lint: token-level enforcement of the repo's concurrency and
// label-discipline invariants that Clang's thread-safety analysis cannot
// express (ARCHITECTURE.md, "Statically enforced invariants").
//
// Each rule encodes ONE invariant:
//
//  * second-table-lock       A TableLock (or PublishedReadTableCap) may not
//                            be constructed while another is live in an
//                            enclosing scope: the table capability is
//                            acquired once per syscall, in ascending shard
//                            order, and a nested acquisition is the classic
//                            lock-order deadlock.
//  * registry-bypass         Kernel hot paths must route every label-algebra
//                            call (⊑, ⊔, shift) through the memoized
//                            LabelRegistry — a bare Label::Leq or per-check
//                            ToHi() silently reintroduces the allocation the
//                            registry exists to remove.
//  * epoch-guard-blocking    No blocking or lock acquisition inside an
//                            EpochGuard scope: a pinned reader that sleeps
//                            stalls epoch advancement and lets limbo grow
//                            without bound.
//  * nofail-region-check     No `throw` and no StoreAlloc::Check() inside a
//                            StoreAllocNoFail scope: cleanup paths must not
//                            become a second fault mid-recovery from the
//                            first.
//  * shard-mutex-outside-tablelock
//                            Object-table shard mutexes and the TableCap
//                            Acquire/Release pair are touched only inside
//                            object_table.h — everyone else goes through
//                            the scoped TableLock, which is what guarantees
//                            ascending acquisition order.
//  * raw-sync-primitive      No std::mutex / condition_variable / lock
//                            guards outside src/core/sync.h: the annotated
//                            wrappers are what make -Wthread-safety able to
//                            see the lock graph at all.
//  * raw-clock-read          No steady/system/high-resolution clock ::now()
//                            calls, clock_gettime, or rdtsc outside
//                            src/core/trace.* — timing routes through
//                            trace::NowNs()/SteadyNow() so the
//                            HISTAR_TRACE=0 build compiles every clock read
//                            out. Type mentions (steady_clock::duration)
//                            stay legal.
//
// The checker is deliberately token-level (no libclang in the build image):
// comments and string literals are blanked before matching, and scoped
// rules track brace depth, which is exact enough for the discipline being
// enforced — every rule ships with good/bad fixtures proving it fires and
// stays quiet where it should.
#ifndef TOOLS_HISTAR_LINT_LINT_H_
#define TOOLS_HISTAR_LINT_LINT_H_

#include <string>
#include <vector>

namespace histar {
namespace lint {

struct Finding {
  std::string file;     // repo-relative path as given to LintSource
  int line = 0;         // 1-based
  std::string rule;     // rule name (see AllRuleNames)
  std::string message;  // what was matched and why it is a violation
};

// All rule names, in a stable order.
std::vector<std::string> AllRuleNames();

// Lints one source file. `rel_path` is the repo-relative path (forward
// slashes); it drives per-rule applicability — e.g. raw-sync-primitive
// exempts src/core/sync.h, registry-bypass applies only to the kernel
// translation units. With a non-empty `only_rules`, exactly those rules run
// and the path-based applicability gate is skipped (the defining-file
// exemptions still hold) — that is how the fixture tests and `--rule` drive
// a rule against an arbitrary file.
std::vector<Finding> LintSource(const std::string& rel_path, const std::string& content,
                                const std::vector<std::string>& only_rules = {});

// Strips // and /* */ comments plus string/char literal contents, replacing
// them with spaces (newlines preserved, so line numbers survive). Exposed
// for tests.
std::string CleanSource(const std::string& content);

}  // namespace lint
}  // namespace histar

#endif  // TOOLS_HISTAR_LINT_LINT_H_
