// Fixture: raw clock reads outside src/core/trace.* — must trip
// raw-clock-read.
#include <chrono>
#include <ctime>

namespace histar {

uint64_t Bad() {
  auto t0 = std::chrono::steady_clock::now();  // BAD: bypasses trace clock
  auto wall = std::chrono::system_clock::now();  // BAD
  auto hi = std::chrono::high_resolution_clock::now();  // BAD
  struct timespec ts;
  clock_gettime(0, &ts);  // BAD
  uint64_t cycles = __rdtsc();  // BAD
  (void)wall;
  (void)hi;
  (void)cycles;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)  // BAD
          .count());
}

}  // namespace histar
