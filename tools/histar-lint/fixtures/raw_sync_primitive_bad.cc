// Fixture: raw standard-library synchronization — must trip
// raw-sync-primitive.
#include <condition_variable>
#include <mutex>

namespace histar {

std::mutex g_mu;                  // BAD: invisible to -Wthread-safety
std::condition_variable g_cv;     // BAD

int Bad(int v) {
  std::lock_guard<std::mutex> lock(g_mu);  // BAD (twice: guard and type)
  return v + 1;
}

}  // namespace histar
