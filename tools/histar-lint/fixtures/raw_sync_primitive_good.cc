// Fixture: the annotated wrappers — raw-sync-primitive must stay quiet.
// "std::mutex" in a comment or string must not fire.
#include "src/core/sync.h"
#include "src/core/thread_annotations.h"

namespace histar {

Mutex g_mu;
int g_v GUARDED_BY(g_mu) = 0;

int Good() {
  const char* doc = "wraps std::mutex with capability annotations";
  (void)doc;
  MutexLock lock(&g_mu);
  return ++g_v;
}

}  // namespace histar
