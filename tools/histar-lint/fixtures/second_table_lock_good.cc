// Fixture: sequential (non-overlapping) acquisitions — second-table-lock
// must stay quiet. A "TableLock inner(...)" in a comment is also fine.
#include "src/kernel/object_table.h"

namespace histar {

void Good(ObjectTable& table, ObjectId a, ObjectId b) {
  {
    TableLock lk(table, TableLock::Mode::kShared, {a});
  }
  {
    // Retry under a wider lock: legal, the first scope has closed.
    TableLock lk(table, TableLock::Mode::kExclusive, TableLock::AllShards{});
  }
  const char* s = "TableLock fake(table, x); TableLock fake2(table, y);";
  (void)s;
  (void)b;
}

}  // namespace histar
