// Fixture: blocking inside an epoch-pinned scope — must trip
// epoch-guard-blocking.
#include "src/core/epoch.h"
#include "src/core/sync.h"

namespace histar {

void Bad(Mutex& mu, int* guarded) {
  EpochGuard guard;
  // BAD: acquiring a mutex while pinned stalls epoch advancement.
  MutexLock lock(&mu);
  ++*guarded;
}

void AlsoBad(Mutex& mu) {
  EpochGuard guard;
  mu.Lock();  // BAD: same hazard, manual form
  mu.Unlock();
}

}  // namespace histar
