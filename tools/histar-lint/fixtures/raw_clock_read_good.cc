// Fixture: timing through the trace layer — raw-clock-read must stay
// quiet. Clock reads in comments or strings must not fire, and chrono
// *type* mentions (steady_clock::duration, time_point) are legal: only
// the ::now() call form is a finding.
#include <chrono>

#include "src/core/trace.h"

namespace histar {

// steady_clock::now() in a comment is not a finding.
uint64_t Good() {
  const char* doc = "measured via steady_clock::now() before the rewrite";
  (void)doc;
  std::chrono::steady_clock::time_point deadline =
      trace::SteadyNow() + std::chrono::milliseconds(50);
  std::chrono::steady_clock::duration left =
      deadline - trace::SteadyNow();
  (void)left;
  uint64_t t0 = trace::NowNs();
  uint64_t t1 = trace::RecordNowNs();
  return t1 - t0;
}

}  // namespace histar
