// Fixture: faulting inside a cleanup scope — must trip nofail-region-check.
#include <new>

#include "src/store/store_alloc.h"

namespace histar {

void Bad(bool broken) {
  StoreAllocNoFail cleanup;
  StoreAlloc::Check();  // BAD: suppressed here; the boundary is misplaced
  if (broken) {
    throw std::bad_alloc();  // BAD: a second fault mid-recovery
  }
}

}  // namespace histar
