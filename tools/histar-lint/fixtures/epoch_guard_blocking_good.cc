// Fixture: lock-free work under the guard, locking after it closes —
// epoch-guard-blocking must stay quiet.
#include "src/core/epoch.h"
#include "src/core/sync.h"

namespace histar {

int Good(Mutex& mu, int* guarded) {
  int v = 0;
  {
    EpochGuard guard;
    v = 42;  // lock-free probe under the pin
  }
  // Legal: the guard's scope has closed before the miss path locks.
  MutexLock lock(&mu);
  *guarded = v;
  return v;
}

}  // namespace histar
