// Fixture: direct label algebra in a kernel TU — must trip registry-bypass.
#include "src/core/label.h"

namespace histar {

bool Bad(const Label& a, const Label& b) {
  Label hi = a.ToHi();      // BAD: per-check allocation of the shifted form
  return hi.Leq(b);         // BAD: unmemoized comparison
}

Label AlsoBad(const Label& a, const Label& b) {
  return a.Join(b);         // BAD: unmemoized join
}

}  // namespace histar
