// Fixture: nested table-capability acquisition — must trip second-table-lock.
#include "src/kernel/object_table.h"

namespace histar {

void Bad(ObjectTable& table, ObjectId a, ObjectId b) {
  TableLock outer(table, TableLock::Mode::kShared, {a});
  {
    // BAD: a second acquisition while `outer` is live — deadlock-order bug.
    TableLock inner(table, TableLock::Mode::kExclusive, {b});
  }
}

void AlsoBad(ObjectTable& table, ObjectId a) {
  TableLock lk(table, TableLock::Mode::kShared, {a});
  PublishedReadTableCap cap_scope(table);  // BAD: overlaps the scoped lock
}

}  // namespace histar
