// Fixture: reaching past the TableLock abstraction — must trip
// shard-mutex-outside-tablelock.
#include "src/kernel/object_table.h"

namespace histar {

void Bad(ObjectTable& table) {
  // BAD: manual capability acquisition skips the ascending-order discipline.
  table.cap().Acquire();
  table.cap().Release();
}

}  // namespace histar
