// Fixture: the scoped forms — shard-mutex-outside-tablelock must stay
// quiet. Identifiers that merely end in "shards_" (another class's member)
// must not fire either.
#include "src/kernel/object_table.h"

namespace histar {

struct OtherShards {
  int intern_shards_[4] = {};
};

void Good(ObjectTable& table, ObjectId a, OtherShards& other) {
  TableLock lk(table, TableLock::Mode::kShared, {a});
  ++other.intern_shards_[0];  // not the object table's shard array
}

}  // namespace histar
