// Fixture: check before the no-fail scope opens, throw after it closes —
// nofail-region-check must stay quiet.
#include <new>

#include "src/store/store_alloc.h"

namespace histar {

void Good(bool broken) {
  StoreAlloc::Check();  // legal: the injection point, before any mutation
  {
    StoreAllocNoFail cleanup;
    // cleanup work, no faulting
  }
  if (broken) {
    throw std::bad_alloc();  // legal: the scope has closed
  }
}

}  // namespace histar
