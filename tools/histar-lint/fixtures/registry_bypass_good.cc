// Fixture: registry-mediated label checks — registry-bypass must stay quiet.
#include "src/core/label_registry.h"

namespace histar {

bool Good(LabelRegistry& registry_, LabelId a, LabelId b) {
  // Memoized path: ids in, ids out, no allocation. .ToHi( in this comment
  // must not fire either.
  if (!registry_.Leq(a, registry_.HiOf(b))) {
    return false;
  }
  return registry_.Join(a, b) != kInvalidLabelId;
}

}  // namespace histar
