// Ablation: the §4 label-comparison cache.
//
// "The kernel performs several key optimizations. It caches the result of
// comparisons between immutable labels." — this bench measures that claim
// by running a label-check-heavy syscall loop (segment reads, which perform
// a CanObserve ⊑ check on every call) with the cache enabled and disabled,
// across labels of increasing explicit-entry counts. The win should grow
// with label size: an uncached ⊑ walks both entry lists, a cached one is a
// hash probe.
//
// A second group measures the raw Label::Leq cost by entry count, which is
// the quantity the cache amortizes (and why §6.2 notes that small labels
// keep gate operations fast).
#include <benchmark/benchmark.h>

#include <vector>

#include "bench/bench_util.h"

namespace histar::bench {
namespace {

// A segment read performs one observe check (L_O ⊑ L_T^J) per syscall.
void BM_SegmentReadLabelCheck(::benchmark::State& state) {
  const int categories = static_cast<int>(state.range(0));
  const bool cache_on = state.range(1) != 0;

  World w = BootWorld(/*with_store=*/false);
  Kernel* k = w.kernel.get();
  ObjectId self = w.init();

  // Build a thread and an object whose labels share `categories` explicit
  // entries (the worst case for Leq: every entry must be compared).
  Label obj_label;
  Label thread_label;
  Label thread_clear(Level::k2);
  for (int i = 0; i < categories; ++i) {
    Result<CategoryId> c = k->sys_cat_create(self);
    if (!c.ok()) {
      state.SkipWithError("cat_create failed");
      return;
    }
    obj_label.set(c.value(), Level::k2);
    thread_label.set(c.value(), Level::k2);
    thread_clear.set(c.value(), Level::k3);
  }
  // The probe lives in a container at the same taint — a 2-tainted thread
  // cannot write the untainted root. Created while we still own every
  // category, before self-tainting.
  CreateSpec cspec;
  cspec.container = k->root_container();
  cspec.label = obj_label;
  cspec.descrip = "probe-ct";
  cspec.quota = 1 << 20;
  Result<ObjectId> ct = k->sys_container_create(self, cspec, 0);
  if (!ct.ok()) {
    state.SkipWithError("container_create failed");
    return;
  }
  if (k->sys_self_set_label(self, thread_label) != Status::kOk) {
    state.SkipWithError("set_label failed");
    return;
  }
  CreateSpec spec;
  spec.container = ct.value();
  spec.label = obj_label;
  spec.descrip = "probe";
  spec.quota = kObjectOverheadBytes + 2 * kPageSize;
  Result<ObjectId> seg = k->sys_segment_create(self, spec, 64);
  if (!seg.ok()) {
    state.SkipWithError("segment_create failed");
    return;
  }

  k->label_cache().set_enabled(cache_on);
  k->label_cache().ResetStats();
  uint64_t buf = 0;
  ContainerEntry ce{ct.value(), seg.value()};
  for (auto _ : state) {
    if (k->sys_segment_read(self, ce, &buf, 0, 8) != Status::kOk) {
      state.SkipWithError("read failed");
      return;
    }
    ::benchmark::DoNotOptimize(buf);
  }
  state.counters["cache_hits"] =
      ::benchmark::Counter(static_cast<double>(k->label_cache().hits()));
  k->label_cache().set_enabled(true);
  CurrentThread::Set(kInvalidObject);
}
BENCHMARK(BM_SegmentReadLabelCheck)
    ->ArgsProduct({{1, 4, 16, 64}, {1, 0}})
    ->ArgNames({"cats", "cache"})
    ->Unit(::benchmark::kNanosecond);

// Raw ⊑ cost as a function of explicit entries — what the cache short-cuts.
void BM_RawLabelLeq(::benchmark::State& state) {
  const int categories = static_cast<int>(state.range(0));
  CategoryAllocator alloc;
  Label l1;
  Label l2;
  for (int i = 0; i < categories; ++i) {
    CategoryId c = alloc.Allocate();
    l1.set(c, Level::k1);
    l2.set(c, Level::k2);
  }
  bool r = false;
  for (auto _ : state) {
    r ^= l1.Leq(l2);
    ::benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_RawLabelLeq)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256)
    ->ArgName("cats")
    ->Unit(::benchmark::kNanosecond);

// Join cost, the other hot label operation (every gate call computes one).
void BM_RawLabelJoin(::benchmark::State& state) {
  const int categories = static_cast<int>(state.range(0));
  CategoryAllocator alloc;
  Label l1;
  Label l2;
  for (int i = 0; i < categories; ++i) {
    CategoryId c = alloc.Allocate();
    (i % 2 == 0 ? l1 : l2).set(c, Level::k3);
  }
  for (auto _ : state) {
    Label j = l1.Join(l2);
    ::benchmark::DoNotOptimize(j);
  }
}
BENCHMARK(BM_RawLabelJoin)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256)
    ->ArgName("cats")
    ->Unit(::benchmark::kNanosecond);

}  // namespace
}  // namespace histar::bench

BENCHMARK_MAIN();
