// Ablation: the §4 label-comparison cache, now the sharded LabelRegistry.
//
// "The kernel performs several key optimizations. It caches the result of
// comparisons between immutable labels." — this bench measures that claim
// by running a label-check-heavy syscall loop (segment reads, which perform
// a CanObserve ⊑ check on every call) with memoization enabled and disabled,
// across labels of increasing explicit-entry counts. The win should grow
// with label size: an uncached ⊑ walks both entry lists, a memoized one is
// a hash probe on a precomputed id pair.
//
// Further groups measure (a) the raw Label::Leq cost by entry count — the
// quantity the registry amortizes — (b) cached-vs-uncached registry lookups
// in isolation, and (c) the registry under thread contention at shard count
// 1 (the old LabelCache's single-mutex design) versus the default sharding,
// which is the Corey-style scalability argument for sharding in the first
// place.
#include <benchmark/benchmark.h>

#include <memory>
#include <random>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/label_registry.h"

namespace histar::bench {
namespace {

// A segment read performs one observe check (L_O ⊑ L_T^J) per syscall.
void BM_SegmentReadLabelCheck(::benchmark::State& state) {
  const int categories = static_cast<int>(state.range(0));
  const bool cache_on = state.range(1) != 0;

  World w = BootWorld(/*with_store=*/false);
  Kernel* k = w.kernel.get();
  ObjectId self = w.init();

  // Build a thread and an object whose labels share `categories` explicit
  // entries (the worst case for Leq: every entry must be compared). The
  // thread additionally keeps ⋆ in one category the object doesn't mention:
  // with interned labels, a thread whose raised label is *identical* to the
  // object's would short-circuit on id equality before ever reaching the
  // memo table — the ⋆ keeps the two ids distinct so the rows below measure
  // the memoized-vs-direct comparison, not the reflexivity fast path.
  Label obj_label;
  Label thread_label;
  Label thread_clear(Level::k2);
  for (int i = 0; i < categories; ++i) {
    Result<CategoryId> c = k->sys_cat_create(self);
    if (!c.ok()) {
      state.SkipWithError("cat_create failed");
      return;
    }
    obj_label.set(c.value(), Level::k2);
    thread_label.set(c.value(), Level::k2);
    thread_clear.set(c.value(), Level::k3);
  }
  Result<CategoryId> owned = k->sys_cat_create(self);
  if (!owned.ok()) {
    state.SkipWithError("cat_create failed");
    return;
  }
  thread_label.set(owned.value(), Level::kStar);
  thread_clear.set(owned.value(), Level::k3);
  // The probe lives in a container at the same taint — a 2-tainted thread
  // cannot write the untainted root. Created while we still own every
  // category, before self-tainting.
  CreateSpec cspec;
  cspec.container = k->root_container();
  cspec.label = obj_label;
  cspec.descrip = "probe-ct";
  cspec.quota = 1 << 20;
  Result<ObjectId> ct = k->sys_container_create(self, cspec, 0);
  if (!ct.ok()) {
    state.SkipWithError("container_create failed");
    return;
  }
  if (k->sys_self_set_label(self, thread_label) != Status::kOk) {
    state.SkipWithError("set_label failed");
    return;
  }
  CreateSpec spec;
  spec.container = ct.value();
  spec.label = obj_label;
  spec.descrip = "probe";
  spec.quota = kObjectOverheadBytes + 2 * kPageSize;
  Result<ObjectId> seg = k->sys_segment_create(self, spec, 64);
  if (!seg.ok()) {
    state.SkipWithError("segment_create failed");
    return;
  }

  k->label_registry().set_enabled(cache_on);
  k->label_registry().ResetStats();
  uint64_t buf = 0;
  ContainerEntry ce{ct.value(), seg.value()};
  for (auto _ : state) {
    if (k->sys_segment_read(self, ce, &buf, 0, 8) != Status::kOk) {
      state.SkipWithError("read failed");
      return;
    }
    ::benchmark::DoNotOptimize(buf);
  }
  state.counters["cache_hits"] =
      ::benchmark::Counter(static_cast<double>(k->label_registry().hits()));
  k->label_registry().set_enabled(true);
  CurrentThread::Set(kInvalidObject);
}
BENCHMARK(BM_SegmentReadLabelCheck)
    ->ArgsProduct({{1, 4, 16, 64}, {1, 0}})
    ->ArgNames({"cats", "cache"})
    ->Unit(::benchmark::kNanosecond);

// Raw ⊑ cost as a function of explicit entries — what the cache short-cuts.
void BM_RawLabelLeq(::benchmark::State& state) {
  const int categories = static_cast<int>(state.range(0));
  CategoryAllocator alloc;
  Label l1;
  Label l2;
  for (int i = 0; i < categories; ++i) {
    CategoryId c = alloc.Allocate();
    l1.set(c, Level::k1);
    l2.set(c, Level::k2);
  }
  bool r = false;
  for (auto _ : state) {
    r ^= l1.Leq(l2);
    ::benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_RawLabelLeq)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256)
    ->ArgName("cats")
    ->Unit(::benchmark::kNanosecond);

// Cached-vs-uncached registry ⊑ in isolation: the same id pair queried with
// memoization on (hash probe) and off (full merge walk per query). The
// spread between cache=1 and cache=0 at a given entry count is the per-check
// win the kernel hot paths collect.
void BM_RegistryLeq(::benchmark::State& state) {
  const int categories = static_cast<int>(state.range(0));
  const bool cache_on = state.range(1) != 0;
  LabelRegistry reg;
  CategoryAllocator alloc;
  Label l1;
  Label l2;
  for (int i = 0; i < categories; ++i) {
    CategoryId c = alloc.Allocate();
    l1.set(c, Level::k1);
    l2.set(c, Level::k2);
  }
  LabelId i1 = reg.Intern(l1);
  LabelId i2 = reg.Intern(l2);
  reg.set_enabled(cache_on);
  bool r = false;
  for (auto _ : state) {
    r ^= reg.Leq(i1, i2);
    ::benchmark::DoNotOptimize(r);
  }
  state.counters["hits"] = ::benchmark::Counter(static_cast<double>(reg.hits()));
}
BENCHMARK(BM_RegistryLeq)
    ->ArgsProduct({{1, 4, 16, 64, 256}, {1, 0}})
    ->ArgNames({"cats", "cache"})
    ->Unit(::benchmark::kNanosecond);

namespace contended {

// Shared across the benchmark's threads; (re)built by thread 0 before each
// run (the google-benchmark multi-threaded setup idiom).
std::unique_ptr<LabelRegistry> g_reg;
std::vector<LabelId> g_ids;

}  // namespace contended

// Sharded-vs-single-mutex: all threads hammer memoized Leq over a shared
// working set of label pairs. shards=1 approximates the old LabelCache (one
// lock in front of every check); shards=16 is the default registry. The
// single-shard row should degrade as threads grow while the sharded row
// stays near-flat — the first scalability ceiling Corey-style arguments say
// to remove.
void BM_RegistryLeqContended(::benchmark::State& state) {
  const size_t shards = static_cast<size_t>(state.range(0));
  if (state.thread_index() == 0) {
    contended::g_reg = std::make_unique<LabelRegistry>(shards);
    contended::g_ids.clear();
    CategoryAllocator alloc;
    std::vector<CategoryId> cats;
    for (int i = 0; i < 8; ++i) {
      cats.push_back(alloc.Allocate());
    }
    // 64 distinct labels over a small shared category universe → a dense
    // 64×64 memo the threads keep re-probing, like a syscall-heavy steady
    // state where every label pair has been seen before.
    std::mt19937_64 rng(1234);
    for (int i = 0; i < 64; ++i) {
      Label l;
      for (CategoryId c : cats) {
        if (rng() % 2 == 0) {
          l.set(c, static_cast<Level>(1 + rng() % 4));
        }
      }
      contended::g_ids.push_back(contended::g_reg->Intern(l));
    }
  }
  uint64_t x = 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(state.thread_index() + 1);
  bool r = false;
  for (auto _ : state) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    LabelId a = contended::g_ids[(x >> 16) % contended::g_ids.size()];
    LabelId b = contended::g_ids[(x >> 40) % contended::g_ids.size()];
    r ^= contended::g_reg->Leq(a, b);
    ::benchmark::DoNotOptimize(r);
  }
  if (state.thread_index() == 0) {
    state.counters["shards"] =
        ::benchmark::Counter(static_cast<double>(contended::g_reg->shard_count()));
    state.counters["hit_rate"] = ::benchmark::Counter(
        static_cast<double>(contended::g_reg->hits()) /
        static_cast<double>(contended::g_reg->hits() + contended::g_reg->misses() + 1));
    contended::g_reg.reset();
  }
}
BENCHMARK(BM_RegistryLeqContended)
    ->Arg(1)
    ->Arg(16)
    ->ArgName("shards")
    ->ThreadRange(1, 8)
    ->UseRealTime()
    ->Unit(::benchmark::kNanosecond);

// Join cost, the other hot label operation (every gate call computes one).
void BM_RawLabelJoin(::benchmark::State& state) {
  const int categories = static_cast<int>(state.range(0));
  CategoryAllocator alloc;
  Label l1;
  Label l2;
  for (int i = 0; i < categories; ++i) {
    CategoryId c = alloc.Allocate();
    (i % 2 == 0 ? l1 : l2).set(c, Level::k3);
  }
  for (auto _ : state) {
    Label j = l1.Join(l2);
    ::benchmark::DoNotOptimize(j);
  }
}
BENCHMARK(BM_RawLabelJoin)->Arg(1)->Arg(4)->Arg(16)->Arg(64)->Arg(256)
    ->ArgName("cats")
    ->Unit(::benchmark::kNanosecond);

}  // namespace
}  // namespace histar::bench

BENCHMARK_MAIN();
