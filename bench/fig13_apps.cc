// Figure 13, application-level benchmarks.
//
//   row                         paper
//   building the HiStar kernel  HiStar 6.2 s · Linux 4.7 s · OpenBSD 6.0 s
//   wget of a 100 MB file       ~9.0 s on all three (saturates 100 Mb/s)
//   virus-check a 100 MB file   HiStar 18.7 s · Linux 18.7 s
//   ... with isolation wrapper  HiStar 18.7 s (no measurable cost)
//
// What each row exercises here:
//   * "build": a compile-like workload — spawn one "cc" process per source
//     file; each reads its input through the fs, burns CPU, writes an
//     object file; a final "ld" concatenates. HiStar's cost over the bare-
//     thread baseline is the user-level Unix library (spawn + fs + fds),
//     the same overhead the paper measures (most CPU time in user space).
//   * "wget": a 32 MB stream between two netd stacks across the simulated
//     100 Mb/s switch; the reported figure is goodput measured in *wire*
//     time — the claim to reproduce is saturation (goodput ≈ line rate),
//     not wall seconds.
//   * "clamscan": scan a random file with the signature scanner directly,
//     then again inside the wrap sandbox. The paper's claim is the last
//     row: isolation costs nothing measurable.
#include <benchmark/benchmark.h>

#include <random>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/wrap.h"
#include "src/net/netd.h"

namespace histar::bench {
namespace {

// ---- "building the kernel" -------------------------------------------------------

// Deterministic CPU burn standing in for compilation: a few passes of FNV
// hashing over the source bytes.
uint64_t Compile(const std::vector<uint8_t>& src, int passes) {
  uint64_t h = 1469598103934665603ULL;
  for (int p = 0; p < passes; ++p) {
    for (uint8_t b : src) {
      h = (h ^ b) * 1099511628211ULL;
    }
  }
  return h;
}

constexpr int kSourceFiles = 24;
constexpr uint64_t kSourceBytes = 96 * 1024;
constexpr int kCompilePasses = 160;

void BM_HiStarBuild(::benchmark::State& state) {
  World w = BootWorld(/*with_store=*/false);
  FileSystem& fs = w.unix->fs();
  ProcessManager& procs = w.unix->procs();

  Result<ObjectId> src_dir = fs.MakeDir(w.init(), w.unix->fs_root(), "src", Label());
  Result<ObjectId> obj_dir = fs.MakeDir(w.init(), w.unix->fs_root(), "obj", Label());
  if (!src_dir.ok() || !obj_dir.ok()) {
    state.SkipWithError("mkdir failed");
    return;
  }
  std::mt19937_64 rng(7);
  std::vector<uint8_t> blob(kSourceBytes);
  for (auto& b : blob) {
    b = static_cast<uint8_t>(rng());
  }
  for (int i = 0; i < kSourceFiles; ++i) {
    std::string name = "u" + std::to_string(i) + ".c";
    Result<ObjectId> f = fs.Create(w.init(), src_dir.value(), name, Label(),
                                   kObjectOverheadBytes + kSourceBytes + kPageSize);
    if (!f.ok() ||
        fs.WriteAt(w.init(), src_dir.value(), f.value(), blob.data(), 0, blob.size()) !=
            Status::kOk) {
      state.SkipWithError("source setup failed");
      return;
    }
  }
  ObjectId src_ct = src_dir.value();
  ObjectId obj_ct = obj_dir.value();
  procs.RegisterProgram("cc", [src_ct, obj_ct](ProcessContext& c) -> int64_t {
    // args: cc <source-name>
    Result<ObjectId> f = c.fs.Lookup(c.self, src_ct, c.args[1]);
    if (!f.ok()) {
      return 1;
    }
    std::vector<uint8_t> src(kSourceBytes);
    if (!c.fs.ReadAt(c.self, src_ct, f.value(), src.data(), 0, src.size()).ok()) {
      return 1;
    }
    uint64_t h = Compile(src, kCompilePasses);
    Result<ObjectId> o = c.fs.Create(c.self, obj_ct, c.args[1] + ".o", Label());
    if (!o.ok()) {
      return 1;
    }
    return c.fs.WriteAt(c.self, obj_ct, o.value(), &h, 0, sizeof(h)) == Status::kOk ? 0 : 1;
  });

  for (auto _ : state) {
    std::vector<std::unique_ptr<ProcHandle>> children;
    for (int i = 0; i < kSourceFiles; ++i) {
      std::string name = "u" + std::to_string(i) + ".c";
      Result<std::unique_ptr<ProcHandle>> h = procs.Spawn(w.ctx(), "cc", {"cc", name});
      if (!h.ok()) {
        state.SkipWithError("spawn failed");
        return;
      }
      children.push_back(h.take());
    }
    for (auto& c : children) {
      Result<int64_t> status = c->Wait(w.init());
      if (!status.ok() || status.value() != 0) {
        state.SkipWithError("cc failed");
        return;
      }
      c->Destroy(w.init());
    }
    // "ld": sweep the object directory.
    Result<std::vector<std::pair<std::string, ObjectId>>> objs =
        fs.ReadDir(w.init(), obj_ct);
    if (!objs.ok()) {
      state.SkipWithError("ld failed");
      return;
    }
    for (auto& [name, id] : objs.value()) {
      fs.Unlink(w.init(), obj_ct, name);
    }
  }
  PaperCounter(state, 6.2);
  CurrentThread::Set(kInvalidObject);
}
BENCHMARK(BM_HiStarBuild)->Unit(::benchmark::kMillisecond);

// The same compile workload on bare host threads: the "monolithic" column,
// with no per-file process scaffolding or label checks.
void BM_BaselineBuild(::benchmark::State& state) {
  std::mt19937_64 rng(7);
  std::vector<uint8_t> blob(kSourceBytes);
  for (auto& b : blob) {
    b = static_cast<uint8_t>(rng());
  }
  for (auto _ : state) {
    std::vector<std::thread> workers;
    std::vector<uint64_t> out(kSourceFiles);
    for (int i = 0; i < kSourceFiles; ++i) {
      workers.emplace_back([&, i]() { out[static_cast<size_t>(i)] = Compile(blob, kCompilePasses); });
    }
    for (auto& t : workers) {
      t.join();
    }
    ::benchmark::DoNotOptimize(out);
  }
  PaperCounter(state, 4.7);
}
BENCHMARK(BM_BaselineBuild)->Unit(::benchmark::kMillisecond);

// ---- wget ------------------------------------------------------------------------

constexpr uint64_t kTransferBytes = 32ULL << 20;

void BM_Wget(::benchmark::State& state) {
  World w = BootWorld(/*with_store=*/false);
  NetSwitch net(/*line_rate_bits_per_sec=*/100'000'000);
  std::unique_ptr<NetDaemon> server_stack = NetDaemon::Start(w.unix.get(), net.NewPort(), "srv");
  std::unique_ptr<NetDaemon> client_stack = NetDaemon::Start(w.unix.get(), net.NewPort(), "cli");
  if (server_stack == nullptr || client_stack == nullptr) {
    state.SkipWithError("stack boot failed");
    return;
  }
  Kernel* k = w.kernel.get();
  auto make_client = [&](NetDaemon* d, const char* name) {
    Label l = d->ClientTaint();
    Label c(Level::k2, {{d->taint().i, Level::k3}});
    return k->BootstrapThread(l, c, name);
  };
  ObjectId srv = make_client(server_stack.get(), "httpd");
  ObjectId cli = make_client(client_stack.get(), "wget");

  double goodput_bps = 0;
  for (auto _ : state) {
    Result<uint64_t> ls = server_stack->Listen(srv, 80);
    if (!ls.ok()) {
      state.SkipWithError("listen failed");
      return;
    }
    std::thread httpd([&]() {
      CurrentThread bind(srv);
      Result<uint64_t> conn = server_stack->Accept(srv, ls.value(), 10000);
      if (!conn.ok()) {
        return;
      }
      std::vector<uint8_t> chunk(16384, 0x42);
      uint64_t sent = 0;
      while (sent < kTransferBytes) {
        uint64_t n = std::min<uint64_t>(chunk.size(), kTransferBytes - sent);
        Result<uint64_t> s = server_stack->Send(srv, conn.value(), chunk.data(), n);
        if (!s.ok()) {
          return;
        }
        sent += s.value();
      }
      server_stack->CloseSocket(srv, conn.value());
    });

    CurrentThread bind(cli);
    uint64_t wire_t0 = net.sim_time_ns();
    Result<uint64_t> conn = client_stack->Connect(cli, server_stack->mac(), 80);
    if (!conn.ok()) {
      httpd.join();
      state.SkipWithError("connect failed");
      return;
    }
    std::vector<uint8_t> buf(16384);
    uint64_t got = 0;
    while (got < kTransferBytes) {
      Result<uint64_t> n = client_stack->Recv(cli, conn.value(), buf.data(), buf.size(), 10000);
      if (!n.ok() || n.value() == 0) {
        break;
      }
      got += n.value();
    }
    client_stack->CloseSocket(cli, conn.value());
    httpd.join();
    if (got != kTransferBytes) {
      state.SkipWithError("short transfer");
      return;
    }
    double wire_seconds = static_cast<double>(net.sim_time_ns() - wire_t0) / 1e9;
    goodput_bps = static_cast<double>(got) * 8.0 / wire_seconds;
  }
  // The paper's claim: the stack saturates the 100 Mb/s wire. Report the
  // goodput over simulated wire time and the equivalent 100 MB download
  // duration next to the paper's 9.1 s.
  state.counters["goodput_Mbps"] = ::benchmark::Counter(goodput_bps / 1e6);
  state.counters["sim_s_100MB"] =
      ::benchmark::Counter(100.0 * 8e6 / goodput_bps * 1.048576);
  PaperCounter(state, 9.1);
  server_stack->Stop();
  client_stack->Stop();
  CurrentThread::Set(kInvalidObject);
}
BENCHMARK(BM_Wget)->Unit(::benchmark::kMillisecond)->Iterations(1);

// ---- clamscan -------------------------------------------------------------------

// 8 MB (not the paper's 100 MB): bob's home quota is 16 MB and the claim
// under test is the *ratio* of wrapped to direct scan time, which is size-
// independent once the scan dominates the sandbox setup.
constexpr uint64_t kScanMB = 8;

struct ScanWorld {
  World w;
  UnixUser bob;
};

ScanWorld MakeScanWorld() {
  ScanWorld s;
  s.w = BootWorld(/*with_store=*/false);
  RegisterScannerPrograms(&s.w.unix->procs());
  Result<UnixUser> bob = s.w.unix->AddUser("bob");
  if (!bob.ok()) {
    std::abort();
  }
  s.bob = bob.value();
  FileSystem& fs = s.w.unix->fs();
  // The signature database.
  Result<ObjectId> db_dir = fs.MakeDir(s.w.init(), s.w.unix->fs_root(), "db", Label());
  std::vector<Signature> sigs;
  for (int i = 0; i < 64; ++i) {
    Signature sig;
    sig.name = "Sig." + std::to_string(i);
    std::string pat = "virus-pattern-" + std::to_string(i) + "-payload";
    sig.pattern.assign(pat.begin(), pat.end());
    sigs.push_back(sig);
  }
  std::string db = SerializeDb(sigs);
  Result<ObjectId> dbf = fs.Create(s.w.init(), db_dir.value(), "virus.db", Label(),
                                   kObjectOverheadBytes + db.size() + kPageSize);
  if (!dbf.ok() ||
      fs.WriteAt(s.w.init(), db_dir.value(), dbf.value(), db.data(), 0, db.size()) !=
          Status::kOk) {
    std::abort();
  }
  // Bob's random binary data (the paper used /dev/urandom output).
  std::mt19937_64 rng(99);
  std::vector<uint8_t> chunk(1 << 20);
  Result<ObjectId> target = fs.Create(s.w.init(), s.bob.home, "big.bin", s.bob.FileLabel(),
                                      kObjectOverheadBytes + (kScanMB + 1) * (1 << 20));
  if (!target.ok()) {
    std::abort();
  }
  for (uint64_t mb = 0; mb < kScanMB; ++mb) {
    for (auto& b : chunk) {
      b = static_cast<uint8_t>(rng());
    }
    if (fs.WriteAt(s.w.init(), s.bob.home, target.value(), chunk.data(), mb << 20,
                   chunk.size()) != Status::kOk) {
      std::abort();
    }
  }
  return s;
}

// Direct scan: the scanner runs as bob, no sandbox.
void BM_ClamscanDirect(::benchmark::State& state) {
  ScanWorld s = MakeScanWorld();
  FileSystem& fs = s.w.unix->fs();
  for (auto _ : state) {
    Result<ObjectId> db_dir = fs.Walk(s.w.init(), s.w.unix->fs_root(), "/db");
    Result<ObjectId> dbf = fs.Lookup(s.w.init(), db_dir.value(), "virus.db");
    Result<uint64_t> db_size = fs.FileSize(s.w.init(), db_dir.value(), dbf.value());
    std::string db_text(db_size.value(), 0);
    fs.ReadAt(s.w.init(), db_dir.value(), dbf.value(), db_text.data(), 0, db_text.size());
    AhoCorasick ac(ParseDb(db_text));

    Result<ObjectId> f = fs.Lookup(s.w.init(), s.bob.home, "big.bin");
    std::vector<uint8_t> data(kScanMB << 20);
    fs.ReadAt(s.w.init(), s.bob.home, f.value(), data.data(), 0, data.size());
    std::vector<std::string> found = ac.Scan(data.data(), data.size());
    ::benchmark::DoNotOptimize(found);
  }
  state.counters["MB"] = ::benchmark::Counter(static_cast<double>(kScanMB));
  PaperCounter(state, 18.7);
  CurrentThread::Set(kInvalidObject);
}
BENCHMARK(BM_ClamscanDirect)->Unit(::benchmark::kMillisecond);

// Sandboxed scan: the same work inside wrap's v3 sandbox — the row whose
// paper value is *identical* to the direct scan (isolation is free).
void BM_ClamscanWrapped(::benchmark::State& state) {
  ScanWorld s = MakeScanWorld();
  for (auto _ : state) {
    WrapOptions opts;
    opts.read_categories = {s.bob.ur};
    opts.timeout_ms = 120000;
    Result<WrapResult> r = WrapScan(s.w.ctx(), {"/home/bob/big.bin"}, opts);
    if (!r.ok() || !r.value().completed) {
      state.SkipWithError("wrapped scan failed");
      return;
    }
    ::benchmark::DoNotOptimize(r.value().report.files_scanned);
  }
  state.counters["MB"] = ::benchmark::Counter(static_cast<double>(kScanMB));
  PaperCounter(state, 18.7);
  CurrentThread::Set(kInvalidObject);
}
BENCHMARK(BM_ClamscanWrapped)->Unit(::benchmark::kMillisecond);

}  // namespace
}  // namespace histar::bench

BENCHMARK_MAIN();
