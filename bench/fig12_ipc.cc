// Figure 12, "IPC benchmark, per RTT": the average round-trip time of an
// 8-byte message over a pair of uni-directional pipes between two processes.
//
//   paper: HiStar 3.11 µs · Linux 4.32 µs · OpenBSD 2.13 µs
//
// The HiStar row exercises the full user-level pipe stack: fd segments,
// shared pipe-buffer segments, segment-mutex locking and kernel futexes. The
// baseline row is the monolithic in-kernel pipe (one lock, one buffer) that
// the Linux column enjoys. The paper's point is the *closeness* of the two —
// a user-level Unix implementation does not forfeit IPC performance.
#include <benchmark/benchmark.h>

#include <atomic>

#include "bench/bench_util.h"
#include "src/baseline/mono_fs.h"

namespace histar::bench {
namespace {

// HiStar: parent and echo child connected by two pipes; the child bounces
// every 8-byte message back.
void BM_HiStarPipeRTT(::benchmark::State& state) {
  World w = BootWorld(/*with_store=*/false);
  ProcessContext& ctx = w.ctx();
  Kernel* k = w.kernel.get();

  FdTable fds(k, ctx.ids, Label());
  Result<std::pair<int, int>> ping = fds.CreatePipe(w.init());   // parent → child
  Result<std::pair<int, int>> pong = fds.CreatePipe(w.init());   // child → parent
  if (!ping.ok() || !pong.ok()) {
    state.SkipWithError("pipe setup failed");
    return;
  }

  std::atomic<bool> stop{false};
  w.unix->procs().RegisterProgram("echo", [&stop](ProcessContext& c) -> int64_t {
    // fd 0 = ping read end, fd 1 = pong write end (adoption order).
    char buf[8];
    while (!stop.load(std::memory_order_relaxed)) {
      Result<uint64_t> n = c.fds->ReadTimeout(c.self, 0, buf, sizeof(buf), 200);
      if (n.ok() && n.value() > 0) {
        c.fds->Write(c.self, 1, buf, n.value());
      } else if (!n.ok() && n.status() != Status::kAgain) {
        break;
      }
    }
    return 0;
  });
  ProcessOpts opts;
  opts.inherit_fds = {fds.Entry(ping.value().first).value(),
                      fds.Entry(pong.value().second).value()};
  Result<std::unique_ptr<ProcHandle>> child = w.unix->procs().Spawn(ctx, "echo", {}, opts);
  if (!child.ok()) {
    state.SkipWithError("spawn failed");
    return;
  }

  char msg[8] = {'p', 'i', 'n', 'g', '1', '2', '3', '4'};
  char back[8];
  for (auto _ : state) {
    fds.Write(w.init(), ping.value().second, msg, sizeof(msg));
    uint64_t got = 0;
    while (got < sizeof(back)) {
      Result<uint64_t> n =
          fds.Read(w.init(), pong.value().first, back + got, sizeof(back) - got);
      if (!n.ok()) {
        state.SkipWithError("pipe read failed");
        return;
      }
      got += n.value();
    }
    ::benchmark::DoNotOptimize(back);
  }
  stop.store(true);
  child.value()->Wait(w.init());
  PaperCounter(state, 3.11e-6);  // seconds per RTT
  CurrentThread::Set(kInvalidObject);
}
BENCHMARK(BM_HiStarPipeRTT)->Unit(::benchmark::kMicrosecond);

// Baseline: the monolithic kernel's pipe — the Linux 4.32 µs column's moral
// equivalent in this simulator.
void BM_BaselinePipeRTT(::benchmark::State& state) {
  monosim::MonoPipe ping;
  monosim::MonoPipe pong;
  std::atomic<bool> stop{false};
  std::thread echo([&]() {
    char buf[8];
    while (!stop.load(std::memory_order_relaxed)) {
      uint64_t n = ping.Read(buf, sizeof(buf));
      if (n == 0) {
        return;  // peer closed
      }
      pong.Write(buf, n);
    }
  });

  char msg[8] = {'p', 'o', 'n', 'g', '1', '2', '3', '4'};
  char back[8];
  for (auto _ : state) {
    ping.Write(msg, sizeof(msg));
    uint64_t got = 0;
    while (got < sizeof(back)) {
      got += pong.Read(back + got, sizeof(back) - got);
    }
    ::benchmark::DoNotOptimize(back);
  }
  stop.store(true);
  // Unblock the echo thread if it sits in Read.
  ping.Write(msg, sizeof(msg));
  echo.join();
  PaperCounter(state, 4.32e-6);  // the Linux column
}
BENCHMARK(BM_BaselinePipeRTT)->Unit(::benchmark::kMicrosecond);

// Batched syscall-run variant (PR 3): the pipe RTT above is dominated by a
// run of small same-segment syscalls (fd-state load, ring reads/writes,
// header commits). This row isolates that shape — sixteen 8-byte segment
// ops per iteration, submitted in batches of `batch_size` descriptors — so
// the per-call TableLock round-trip the batch ABI amortizes is measured
// directly: batch=1 is the legacy per-call cost, batch=16 pays one lock
// acquisition for the whole run. (The pipe stack itself now submits its
// data+header ops as one batch, so BM_HiStarPipeRTT already includes the
// win; see EXPERIMENTS.md for the single-CPU caveat.)
void BM_HiStarBatchedSegOps(::benchmark::State& state) {
  const uint64_t batch = static_cast<uint64_t>(state.range(0));
  constexpr uint64_t kOpsPerIter = 16;
  World w = BootWorld(/*with_store=*/false);
  Kernel* k = w.kernel.get();

  CreateSpec spec;
  spec.container = k->root_container();
  spec.label = Label();
  spec.descrip = "ipcbuf";
  spec.quota = kObjectOverheadBytes + 4096 + kPageSize;
  Result<ObjectId> seg = k->sys_segment_create(w.init(), spec, 4096);
  if (!seg.ok()) {
    state.SkipWithError("segment setup failed");
    return;
  }
  ContainerEntry ce{k->root_container(), seg.value()};

  char buf[8] = {'b', 'a', 't', 'c', 'h', '1', '2', '8'};
  std::vector<SyscallReq> reqs(batch);
  std::vector<SyscallRes> res(batch);
  for (auto _ : state) {
    for (uint64_t done = 0; done < kOpsPerIter; done += batch) {
      for (uint64_t i = 0; i < batch; ++i) {
        uint64_t off = 8 * ((done + i) % 16);
        // 3 reads : 1 write, the fd/pipe mix.
        if ((done + i) % 4 == 3) {
          reqs[i] = SegmentWriteReq{ce, buf, off, 8};
        } else {
          reqs[i] = SegmentReadReq{ce, buf, off, 8};
        }
      }
      k->SubmitBatch(w.init(), std::span<const SyscallReq>(reqs.data(), batch),
                     std::span<SyscallRes>(res.data(), batch));
      ::benchmark::DoNotOptimize(res.data());
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kOpsPerIter);
  CurrentThread::Set(kInvalidObject);
}
BENCHMARK(BM_HiStarBatchedSegOps)->Arg(1)->Arg(4)->Arg(16)->Unit(::benchmark::kMicrosecond);

// Warm lock-free batch reads (PR 6 fast path): sixteen read-only descriptors
// — type, quota, len, container-has — on already-resolved hot objects, the
// group the gate dispatches with zero TableLocks. This is the
// tracing-overhead canary for PR 10: each descriptor records one flight-
// recorder event plus a histogram bump, and on this path that bookkeeping is
// the only kernel work besides the reads themselves, so any recorder
// regression shows here first. scripts/bench_json.sh runs this row from both
// the normal tree and a -DHISTAR_TRACE=0 tree into BENCH_pr10.json and
// scripts/check_bench_pr10.sh holds the delta under 5%.
void BM_HiStarLockFreeBatchGet(::benchmark::State& state) {
  constexpr uint64_t kOpsPerIter = 16;
  World w = BootWorld(/*with_store=*/false);
  Kernel* k = w.kernel.get();

  CreateSpec spec;
  spec.container = k->root_container();
  spec.label = Label();
  spec.descrip = "lfbuf";
  spec.quota = kObjectOverheadBytes + 4096 + kPageSize;
  Result<ObjectId> seg = k->sys_segment_create(w.init(), spec, 4096);
  if (!seg.ok()) {
    state.SkipWithError("segment setup failed");
    return;
  }
  ContainerEntry ce{k->root_container(), seg.value()};

  std::vector<SyscallReq> reqs(kOpsPerIter);
  std::vector<SyscallRes> res(kOpsPerIter);
  for (uint64_t i = 0; i < kOpsPerIter; ++i) {
    switch (i % 4) {
      case 0: reqs[i] = ObjGetTypeReq{ce}; break;
      case 1: reqs[i] = ObjGetQuotaReq{ce}; break;
      case 2: reqs[i] = SegmentGetLenReq{ce}; break;
      default: reqs[i] = ContainerHasReq{k->root_container(), seg.value()}; break;
    }
  }
  // Warm the resolve/label memos so steady-state cost is what's measured.
  k->SubmitBatch(w.init(), std::span<const SyscallReq>(reqs),
                 std::span<SyscallRes>(res));

  for (auto _ : state) {
    k->SubmitBatch(w.init(), std::span<const SyscallReq>(reqs),
                   std::span<SyscallRes>(res));
    ::benchmark::DoNotOptimize(res.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kOpsPerIter);
  CurrentThread::Set(kInvalidObject);
}
BENCHMARK(BM_HiStarLockFreeBatchGet)->Unit(::benchmark::kMicrosecond);

// The same 3-reads-1-write mix through the PR 5 async ring: one submission
// of `batch` ops, completion awaited and reaped. Single-threaded this buys
// nothing over the sync batch — it ADDS the submit/wait/reap round trips
// and a worker handoff — which is exactly the point of the row: the ring's
// win is overlap across submitters (multicore; see the TSan stress test for
// the correctness side), while this measures the fixed price of the async
// shape against BM_HiStarBatchedSegOps (the sync batch) and Arg(1)
// per-call submission.
void BM_HiStarRingSegOps(::benchmark::State& state) {
  const uint64_t batch = static_cast<uint64_t>(state.range(0));
  constexpr uint64_t kOpsPerIter = 16;
  World w = BootWorld(/*with_store=*/false);
  Kernel* k = w.kernel.get();

  CreateSpec spec;
  spec.container = k->root_container();
  spec.label = Label();
  spec.descrip = "ipcbuf";
  spec.quota = kObjectOverheadBytes + 4096 + kPageSize;
  Result<ObjectId> seg = k->sys_segment_create(w.init(), spec, 4096);
  CreateSpec rspec;
  rspec.container = k->root_container();
  rspec.label = Label();
  rspec.descrip = "benchring";
  rspec.quota = 16 * kPageSize;
  Result<ObjectId> ring = k->sys_ring_create(w.init(), rspec, 64);
  if (!seg.ok() || !ring.ok()) {
    state.SkipWithError("setup failed");
    return;
  }
  ContainerEntry ce{k->root_container(), seg.value()};
  ContainerEntry re{k->root_container(), ring.value()};

  char buf[8] = {'r', 'i', 'n', 'g', 'b', 'n', 'c', 'h'};
  for (auto _ : state) {
    for (uint64_t done = 0; done < kOpsPerIter; done += batch) {
      std::vector<RingOp> ops;
      ops.reserve(batch);
      for (uint64_t i = 0; i < batch; ++i) {
        uint64_t off = 8 * ((done + i) % 16);
        if ((done + i) % 4 == 3) {
          ops.push_back(RingOp{SyscallReq{SegmentWriteReq{ce, buf, off, 8}}});
        } else {
          ops.push_back(RingOp{SyscallReq{SegmentReadReq{ce, buf, off, 8}}});
        }
      }
      Result<uint64_t> t = k->sys_ring_submit(w.init(), re, std::move(ops));
      if (!t.ok() || k->sys_ring_wait(w.init(), re, t.value(), 0) != Status::kOk) {
        state.SkipWithError("ring submission failed");
        return;
      }
      Result<std::vector<RingCompletion>> res = k->sys_ring_reap(w.init(), re, 0);
      if (!res.ok()) {
        state.SkipWithError("reap failed");
        return;
      }
      ::benchmark::DoNotOptimize(res.value().data());
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kOpsPerIter);
  CurrentThread::Set(kInvalidObject);
}
BENCHMARK(BM_HiStarRingSegOps)->Arg(1)->Arg(4)->Arg(16)->Unit(::benchmark::kMicrosecond);

// Multi-submitter variant of the ring row (PR 6): one shared world, one
// shared read-mostly segment, one ring PER BENCH THREAD — the shape the
// async engine exists for, with the worker pool sized from the machine
// (RingEngine::DefaultWorkers). Each thread submits a fixed batch (Arg),
// waits, reaps. On a single-CPU host every row collapses to the 1-thread
// cost plus scheduling noise (the BENCH_pr6.json env block records that
// caveat machine-readably); on multicore the per-thread rings and
// lock-free read path let rows stay near-flat.
constexpr int kRingMaxThreads = 8;
struct RingWorld {
  std::unique_ptr<Kernel> kernel;
  ObjectId root = kInvalidObject;
  ObjectId seg = kInvalidObject;
  std::vector<ObjectId> threads;
  std::vector<ObjectId> rings;  // one per bench thread: no queue contention
};
RingWorld g_ring_world;

bool BuildRingWorld() {
  g_ring_world.kernel = std::make_unique<Kernel>();
  Kernel* k = g_ring_world.kernel.get();
  g_ring_world.root = k->root_container();
  g_ring_world.threads.clear();
  g_ring_world.rings.clear();
  for (int i = 0; i < kRingMaxThreads; ++i) {
    ObjectId t = k->BootstrapThread(Label(Level::k1), Label(Level::k2),
                                    "ringbench-t" + std::to_string(i));
    if (t == kInvalidObject) {
      return false;
    }
    g_ring_world.threads.push_back(t);
  }
  CreateSpec spec;
  spec.container = g_ring_world.root;
  spec.label = Label(Level::k1);
  spec.descrip = "ringbuf";
  spec.quota = kObjectOverheadBytes + 4096 + kPageSize;
  Result<ObjectId> seg = k->sys_segment_create(g_ring_world.threads[0], spec, 4096);
  if (!seg.ok()) {
    return false;
  }
  g_ring_world.seg = seg.value();
  for (int i = 0; i < kRingMaxThreads; ++i) {
    CreateSpec rspec;
    rspec.container = g_ring_world.root;
    rspec.label = Label(Level::k1);
    rspec.descrip = "benchring" + std::to_string(i);
    rspec.quota = 16 * kPageSize;
    Result<ObjectId> ring = k->sys_ring_create(g_ring_world.threads[0], rspec, 64);
    if (!ring.ok()) {
      return false;
    }
    g_ring_world.rings.push_back(ring.value());
  }
  return true;
}

void BM_HiStarRingSegOpsMT(::benchmark::State& state) {
  if (state.thread_index() == 0) {
    if (!BuildRingWorld()) {
      state.SkipWithError("world boot failed");
      return;
    }
  }
  const uint64_t batch = static_cast<uint64_t>(state.range(0));
  size_t ti = static_cast<size_t>(state.thread_index());
  // Globals are read only inside the iteration loop; its entry barrier
  // orders thread 0's setup before the other threads touch them.
  Kernel* k = nullptr;
  ObjectId self = kInvalidObject;
  ContainerEntry ce{};
  ContainerEntry re{};
  char buf[8] = {'r', 'i', 'n', 'g', 'b', 'n', 'c', 'h'};
  for (auto _ : state) {
    if (k == nullptr) {
      k = g_ring_world.kernel.get();
      self = g_ring_world.threads[ti];
      ce = ContainerEntry{g_ring_world.root, g_ring_world.seg};
      re = ContainerEntry{g_ring_world.root, g_ring_world.rings[ti]};
    }
    std::vector<RingOp> ops;
    ops.reserve(batch);
    for (uint64_t i = 0; i < batch; ++i) {
      ops.push_back(RingOp{SyscallReq{SegmentReadReq{ce, buf, 8 * (i % 16), 8}}});
    }
    Result<uint64_t> t = k->sys_ring_submit(self, re, std::move(ops));
    if (!t.ok() || k->sys_ring_wait(self, re, t.value(), 0) != Status::kOk) {
      state.SkipWithError("ring submission failed");
      return;
    }
    Result<std::vector<RingCompletion>> res = k->sys_ring_reap(self, re, 0);
    if (!res.ok()) {
      state.SkipWithError("reap failed");
      return;
    }
    ::benchmark::DoNotOptimize(res.value().data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch));
  if (state.thread_index() == 0) {
    g_ring_world.kernel.reset();
  }
}
BENCHMARK(BM_HiStarRingSegOpsMT)
    ->Arg(4)
    ->ArgName("batch")
    ->ThreadRange(1, kRingMaxThreads)
    ->UseRealTime()
    ->Unit(::benchmark::kMicrosecond);

}  // namespace
}  // namespace histar::bench

BENCHMARK_MAIN();
