// Figure 12, "IPC benchmark, per RTT": the average round-trip time of an
// 8-byte message over a pair of uni-directional pipes between two processes.
//
//   paper: HiStar 3.11 µs · Linux 4.32 µs · OpenBSD 2.13 µs
//
// The HiStar row exercises the full user-level pipe stack: fd segments,
// shared pipe-buffer segments, segment-mutex locking and kernel futexes. The
// baseline row is the monolithic in-kernel pipe (one lock, one buffer) that
// the Linux column enjoys. The paper's point is the *closeness* of the two —
// a user-level Unix implementation does not forfeit IPC performance.
#include <benchmark/benchmark.h>

#include <atomic>

#include "bench/bench_util.h"
#include "src/baseline/mono_fs.h"

namespace histar::bench {
namespace {

// HiStar: parent and echo child connected by two pipes; the child bounces
// every 8-byte message back.
void BM_HiStarPipeRTT(::benchmark::State& state) {
  World w = BootWorld(/*with_store=*/false);
  ProcessContext& ctx = w.ctx();
  Kernel* k = w.kernel.get();

  FdTable fds(k, ctx.ids, Label());
  Result<std::pair<int, int>> ping = fds.CreatePipe(w.init());   // parent → child
  Result<std::pair<int, int>> pong = fds.CreatePipe(w.init());   // child → parent
  if (!ping.ok() || !pong.ok()) {
    state.SkipWithError("pipe setup failed");
    return;
  }

  std::atomic<bool> stop{false};
  w.unix->procs().RegisterProgram("echo", [&stop](ProcessContext& c) -> int64_t {
    // fd 0 = ping read end, fd 1 = pong write end (adoption order).
    char buf[8];
    while (!stop.load(std::memory_order_relaxed)) {
      Result<uint64_t> n = c.fds->ReadTimeout(c.self, 0, buf, sizeof(buf), 200);
      if (n.ok() && n.value() > 0) {
        c.fds->Write(c.self, 1, buf, n.value());
      } else if (!n.ok() && n.status() != Status::kAgain) {
        break;
      }
    }
    return 0;
  });
  ProcessOpts opts;
  opts.inherit_fds = {fds.Entry(ping.value().first).value(),
                      fds.Entry(pong.value().second).value()};
  Result<std::unique_ptr<ProcHandle>> child = w.unix->procs().Spawn(ctx, "echo", {}, opts);
  if (!child.ok()) {
    state.SkipWithError("spawn failed");
    return;
  }

  char msg[8] = {'p', 'i', 'n', 'g', '1', '2', '3', '4'};
  char back[8];
  for (auto _ : state) {
    fds.Write(w.init(), ping.value().second, msg, sizeof(msg));
    uint64_t got = 0;
    while (got < sizeof(back)) {
      Result<uint64_t> n =
          fds.Read(w.init(), pong.value().first, back + got, sizeof(back) - got);
      if (!n.ok()) {
        state.SkipWithError("pipe read failed");
        return;
      }
      got += n.value();
    }
    ::benchmark::DoNotOptimize(back);
  }
  stop.store(true);
  child.value()->Wait(w.init());
  PaperCounter(state, 3.11e-6);  // seconds per RTT
  CurrentThread::Set(kInvalidObject);
}
BENCHMARK(BM_HiStarPipeRTT)->Unit(::benchmark::kMicrosecond);

// Baseline: the monolithic kernel's pipe — the Linux 4.32 µs column's moral
// equivalent in this simulator.
void BM_BaselinePipeRTT(::benchmark::State& state) {
  monosim::MonoPipe ping;
  monosim::MonoPipe pong;
  std::atomic<bool> stop{false};
  std::thread echo([&]() {
    char buf[8];
    while (!stop.load(std::memory_order_relaxed)) {
      uint64_t n = ping.Read(buf, sizeof(buf));
      if (n == 0) {
        return;  // peer closed
      }
      pong.Write(buf, n);
    }
  });

  char msg[8] = {'p', 'o', 'n', 'g', '1', '2', '3', '4'};
  char back[8];
  for (auto _ : state) {
    ping.Write(msg, sizeof(msg));
    uint64_t got = 0;
    while (got < sizeof(back)) {
      got += pong.Read(back + got, sizeof(back) - got);
    }
    ::benchmark::DoNotOptimize(back);
  }
  stop.store(true);
  // Unblock the echo thread if it sits in Read.
  ping.Write(msg, sizeof(msg));
  echo.join();
  PaperCounter(state, 4.32e-6);  // the Linux column
}
BENCHMARK(BM_BaselinePipeRTT)->Unit(::benchmark::kMicrosecond);

}  // namespace
}  // namespace histar::bench

BENCHMARK_MAIN();
