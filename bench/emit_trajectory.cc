// Folds google-benchmark --benchmark_format=json outputs into a
// machine-checkable BENCH_pr<N>.json trajectory at the repo root.
//
// Not a benchmark: a plain binary (no histar, no benchmark lib) driven by
// scripts/bench_json.sh:
//
//   emit_trajectory --out BENCH_pr6.json --pr 6 --sha <git sha> --nproc <n>
//       labels.json objtable.json ipc.json
//
// Parsing is a tolerant line scan over the one-field-per-line JSON the
// benchmark library emits — each "benchmarks" entry contributes one row
// {bench, threads, arg, ns_per_op, counters} keyed off its "name"/
// "run_type"/"real_time"/"time_unit" lines, aggregate rows are skipped —
// so the tool has no JSON-library dependency and survives harmless format
// drift. Benchmark counters named "ctr_*" (the library prints them after
// "time_unit", so rows flush on the next "name" line or EOF) are carried
// through into a per-row "counters" object with the prefix stripped. The
// env block records nproc and the git sha; on hosts with fewer than 8 CPUs
// it also carries a machine-readable caveat: the multithreaded rows there
// measure scheduling overhead, not parallel speedup.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace {

struct Row {
  std::string bench;      // name up to the first '/', the family
  std::string full_name;  // the complete benchmark name
  int threads = 1;
  long long arg = -1;     // first numeric path component, -1 if none
  double ns_per_op = 0.0;
  // "ctr_*" benchmark counters, prefix stripped, in emission order.
  std::vector<std::pair<std::string, double>> counters;
};

// Extracts the string value of `"key": "value",` from a line, or empty.
std::string StrField(const std::string& line, const char* key) {
  std::string pat = std::string("\"") + key + "\":";
  size_t p = line.find(pat);
  if (p == std::string::npos) {
    return "";
  }
  size_t q1 = line.find('"', p + pat.size());
  if (q1 == std::string::npos) {
    return "";
  }
  size_t q2 = line.find('"', q1 + 1);
  if (q2 == std::string::npos) {
    return "";
  }
  return line.substr(q1 + 1, q2 - q1 - 1);
}

// Extracts the numeric value of `"key": 1.234e+00,` from a line.
bool NumField(const std::string& line, const char* key, double* out) {
  std::string pat = std::string("\"") + key + "\":";
  size_t p = line.find(pat);
  if (p == std::string::npos) {
    return false;
  }
  *out = strtod(line.c_str() + p + pat.size(), nullptr);
  return true;
}

double ToNs(double v, const std::string& unit) {
  if (unit == "us") {
    return v * 1e3;
  }
  if (unit == "ms") {
    return v * 1e6;
  }
  if (unit == "s") {
    return v * 1e9;
  }
  return v;  // ns (the default)
}

// "BM_X/4/real_time/threads:2" → bench "BM_X", arg 4, threads 2.
void ParseName(const std::string& name, Row* r) {
  r->full_name = name;
  size_t slash = name.find('/');
  r->bench = name.substr(0, slash);
  r->threads = 1;
  size_t t = name.find("threads:");
  if (t != std::string::npos) {
    r->threads = atoi(name.c_str() + t + strlen("threads:"));
  }
  // First numeric path component is the benchmark's Arg.
  while (slash != std::string::npos) {
    size_t start = slash + 1;
    size_t end = name.find('/', start);
    std::string part = name.substr(start, end == std::string::npos
                                              ? std::string::npos
                                              : end - start);
    if (!part.empty() && (isdigit(static_cast<unsigned char>(part[0])) != 0)) {
      r->arg = atoll(part.c_str());
      break;
    }
    slash = end;
  }
}

// `tag`, when non-empty, suffixes every row's full_name with "@<tag>" so one
// trajectory can carry the same benchmark from two build variants side by
// side (PR 10 folds a -DHISTAR_TRACE=0 tree in as "@notrace").
bool ScanFile(const std::string& path, const std::string& tag,
              std::vector<Row>* rows) {
  std::ifstream in(path);
  if (!in) {
    fprintf(stderr, "emit_trajectory: cannot open %s\n", path.c_str());
    return false;
  }
  Row cur;
  bool have_name = false;
  bool is_iteration = true;
  bool have_time = false;
  double real_time = 0.0;
  std::string unit;
  // Counters print after time_unit, so a row only flushes when the next
  // "name" line (or EOF) proves it is complete.
  auto flush = [&]() {
    if (have_name && is_iteration && have_time) {
      cur.ns_per_op = ToNs(real_time, unit.empty() ? "ns" : unit);
      if (!tag.empty()) {
        cur.full_name += "@" + tag;
      }
      rows->push_back(cur);
    }
    have_name = false;
  };
  std::string line;
  while (std::getline(in, line)) {
    std::string name = StrField(line, "name");
    if (!name.empty() && line.find("\"run_name\"") == std::string::npos) {
      flush();
      cur = Row();
      ParseName(name, &cur);
      have_name = true;
      is_iteration = true;
      have_time = false;
      unit.clear();
      continue;
    }
    if (!have_name) {
      continue;
    }
    std::string rt = StrField(line, "run_type");
    if (!rt.empty()) {
      is_iteration = (rt == "iteration");
      continue;
    }
    double v;
    if (NumField(line, "real_time", &v)) {
      real_time = v;
      have_time = true;
      continue;
    }
    std::string u = StrField(line, "time_unit");
    if (!u.empty()) {
      unit = u;
      continue;
    }
    // `"ctr_wops": 2.003e+03,` → counter ("wops", 2003).
    size_t c = line.find("\"ctr_");
    if (c != std::string::npos) {
      size_t key_end = line.find('"', c + 1);
      if (key_end != std::string::npos) {
        std::string key = line.substr(c + 5, key_end - (c + 5));
        double cv;
        if (!key.empty() && NumField(line, ("ctr_" + key).c_str(), &cv)) {
          cur.counters.emplace_back(key, cv);
        }
      }
    }
  }
  flush();
  return true;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH_pr6.json";
  std::string sha = "unknown";
  int nproc = 0;
  int pr = 6;
  // --tag is positional: it applies to the input files after it, so one
  // invocation can fold untagged rows and "@notrace" rows into one file.
  std::vector<std::pair<std::string, std::string>> inputs;  // (path, tag)
  std::string tag;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (a == "--sha" && i + 1 < argc) {
      sha = argv[++i];
    } else if (a == "--nproc" && i + 1 < argc) {
      nproc = atoi(argv[++i]);
    } else if (a == "--pr" && i + 1 < argc) {
      pr = atoi(argv[++i]);
    } else if (a == "--tag" && i + 1 < argc) {
      tag = argv[++i];
    } else {
      inputs.emplace_back(a, tag);
    }
  }
  if (inputs.empty()) {
    fprintf(stderr,
            "usage: emit_trajectory [--out F] [--pr N] [--sha S] [--nproc N] "
            "bench1.json [--tag T] [bench2.json ...]\n");
    return 2;
  }

  std::vector<Row> rows;
  for (const auto& in : inputs) {
    if (!ScanFile(in.first, in.second, &rows)) {
      return 1;
    }
  }
  if (rows.empty()) {
    fprintf(stderr, "emit_trajectory: no benchmark rows found\n");
    return 1;
  }

  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"histar-bench-trajectory-v1\",\n";
  os << "  \"pr\": " << pr << ",\n";
  os << "  \"env\": {\n";
  os << "    \"nproc\": " << nproc << ",\n";
  os << "    \"git_sha\": \"" << JsonEscape(sha) << "\",\n";
  if (nproc > 0 && nproc < 8) {
    os << "    \"caveat\": \"single-or-few-cpu host (nproc=" << nproc
       << "): rows with threads>nproc measure scheduling overhead, not "
          "parallel speedup\"\n";
  } else {
    os << "    \"caveat\": null\n";
  }
  os << "  },\n";
  os << "  \"rows\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    os << "    {\"bench\": \"" << JsonEscape(r.bench) << "\", \"full_name\": \""
       << JsonEscape(r.full_name) << "\", \"threads\": " << r.threads
       << ", \"arg\": " << r.arg << ", \"ns_per_op\": " << r.ns_per_op;
    if (!r.counters.empty()) {
      os << ", \"counters\": {";
      for (size_t j = 0; j < r.counters.size(); ++j) {
        os << "\"" << JsonEscape(r.counters[j].first)
           << "\": " << r.counters[j].second
           << (j + 1 < r.counters.size() ? ", " : "");
      }
      os << "}";
    }
    os << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";

  std::ofstream out(out_path);
  if (!out) {
    fprintf(stderr, "emit_trajectory: cannot write %s\n", out_path.c_str());
    return 1;
  }
  out << os.str();
  std::cout << "wrote " << out_path << " (" << rows.size() << " rows)\n";
  return 0;
}
