// Shared scaffolding for the Figure 12 / Figure 13 benchmark binaries.
//
// Conventions used by every bench in this directory:
//  * CPU-bound rows (IPC, fork/exec, label checks, clamscan) report real
//    wall-clock time through google-benchmark as usual.
//  * I/O-bound rows (the LFS phases) run against the latency-modeled virtual
//    disk and report *simulated* seconds via UseManualTime(); the "paper"
//    counter on each row carries the number Figure 12 reports for HiStar so
//    the shape (ordering, ratios) can be eyeballed directly.
//  * Each bench prints one row per paper row; EXPERIMENTS.md records the
//    mapping and the measured-vs-paper comparison.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>

#include "src/store/disk_model.h"
#include "src/store/single_level_store.h"
#include "src/unixlib/unix.h"

namespace histar::bench {

// A booted Unix world with an optional persistent store on a virtual disk.
struct World {
  std::unique_ptr<DiskModel> disk;
  std::unique_ptr<SingleLevelStore> store;
  std::unique_ptr<Kernel> kernel;
  std::unique_ptr<UnixWorld> unix;

  ObjectId init() const { return unix->init_thread(); }
  ProcessContext& ctx() { return unix->init_context(); }
};

// Boots a world. If `with_store` is set, the kernel checkpoints to a
// latency-modeled disk with the paper's drive geometry (ST340014A: 8.5 ms
// seek, 7200 RPM, 58 MB/s); `store_data` keeps the bytes (needed only by
// recovery tests — benches usually run latency-only). `tuning` selects the
// store engine and its knobs; the default is the blob engine.
inline World BootWorld(bool with_store, uint64_t capacity_bytes = 2ULL << 30,
                       bool store_data = false,
                       const StoreTuning& tuning = StoreTuning{}) {
  World w;
  w.kernel = std::make_unique<Kernel>();
  if (with_store) {
    DiskGeometry g;
    g.capacity_bytes = capacity_bytes;
    g.store_data = store_data;
    w.disk = std::make_unique<DiskModel>(g);
    w.store = std::make_unique<SingleLevelStore>(w.disk.get(), tuning);
    if (w.store->Format() != Status::kOk) {
      std::abort();
    }
    w.kernel->AttachPersistTarget(w.store.get());
  }
  w.unix = UnixWorld::Boot(w.kernel.get());
  if (w.unix == nullptr) {
    std::abort();
  }
  CurrentThread::Set(w.unix->init_thread());
  return w;
}

// Times one I/O phase as the sum of simulated disk time and real host time
// (the host time is what the paper's wall clock would have charged for the
// CPU portion; async phases are pure host time).
class PhaseTimer {
 public:
  explicit PhaseTimer(DiskModel* disk)
      : disk_(disk), t0_(std::chrono::steady_clock::now()), sim0_(disk->sim_time_ns()) {}

  double Seconds() const {
    double real = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_).count();
    double sim = static_cast<double>(disk_->sim_time_ns() - sim0_) / 1e9;
    return real + sim;
  }

 private:
  DiskModel* disk_;
  std::chrono::steady_clock::time_point t0_;
  uint64_t sim0_;
};

// Attaches the paper's published number (in the same unit as the measured
// value) to a row, so `benchmark` output shows measured and paper side by
// side.
inline void PaperCounter(::benchmark::State& state, double paper_value) {
  state.counters["paper"] = ::benchmark::Counter(paper_value);
}

}  // namespace histar::bench

#endif  // BENCH_BENCH_UTIL_H_
