// §4.1 code-size accounting.
//
// The paper argues HiStar's simple kernel interface keeps the fully-trusted
// code small: 15,200 lines of C (~45% fewer than Asbestos), split into
// architecture code (3,400), persistence (4,000), drivers (3,000) and the
// rest (4,800); the eepro100 driver is 500 lines against 2,500 in Linux.
//
// This binary prints the equivalent inventory for this reproduction: lines
// per module, with the trusted computing base (src/core + src/kernel +
// src/store — everything that enforces labels or touches persistence)
// totaled separately from the untrusted bulk (unixlib, net, auth, apps).
// The shape to check is the paper's: the trusted base is a small fraction
// of the system, and everything Unix lives outside it.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

namespace {

struct ModuleLines {
  uint64_t total = 0;
  uint64_t semicolons = 0;  // the paper also reports "lines with a semicolon"
  int files = 0;
};

ModuleLines CountDir(const std::filesystem::path& dir) {
  ModuleLines m;
  if (!std::filesystem::exists(dir)) {
    return m;
  }
  for (const auto& entry : std::filesystem::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    std::string ext = entry.path().extension().string();
    if (ext != ".cc" && ext != ".h") {
      continue;
    }
    std::ifstream in(entry.path());
    std::string line;
    while (std::getline(in, line)) {
      ++m.total;
      if (line.find(';') != std::string::npos) {
        ++m.semicolons;
      }
    }
    ++m.files;
  }
  return m;
}

}  // namespace

int main() {
  const std::filesystem::path src = std::filesystem::path(HISTAR_SOURCE_DIR) / "src";

  // module → (paper analogue, trusted?)
  const std::vector<std::tuple<std::string, std::string, bool>> modules = {
      {"core", "label algebra (in-kernel label code)", true},
      {"kernel", "kernel proper (threads/containers/gates/AS)", true},
      {"store", "B+-trees, WAL, object persistence (4,000 in paper)", true},
      {"unixlib", "Unix emulation library (~10,000 in paper)", false},
      {"net", "netd + stack (lwIP was external)", false},
      {"auth", "authentication services (479 lines in paper)", false},
      {"apps", "wrap + scanner + updater (wrap: 110 lines)", false},
      {"baseline", "monolithic comparison kernel (not in paper TCB)", false},
  };

  std::printf("%-10s %8s %10s %6s  %s\n", "module", "lines", "semicolons", "files",
              "paper analogue");
  uint64_t trusted = 0;
  uint64_t untrusted = 0;
  for (const auto& [name, note, is_trusted] : modules) {
    ModuleLines m = CountDir(src / name);
    std::printf("%-10s %8llu %10llu %6d  %s%s\n", name.c_str(),
                static_cast<unsigned long long>(m.total),
                static_cast<unsigned long long>(m.semicolons), m.files,
                is_trusted ? "[TCB] " : "", note.c_str());
    (is_trusted ? trusted : untrusted) += m.total;
  }
  std::printf("\n");
  std::printf("trusted computing base : %6llu lines   (paper: 15,200 lines of C + 150 asm)\n",
              static_cast<unsigned long long>(trusted));
  std::printf("untrusted user level   : %6llu lines   (paper: ~10,000 library + apps)\n",
              static_cast<unsigned long long>(untrusted));
  std::printf("TCB fraction           : %5.1f%%\n",
              100.0 * static_cast<double>(trusted) /
                  static_cast<double>(trusted + untrusted));
  return 0;
}
