// Figure 12, process-start rows:
//
//   Fork/exec, per iteration   paper: HiStar 1.35 ms (317 syscalls)
//                                     Linux 0.18 ms (9 syscalls)
//   Spawn, per iteration       paper: HiStar 0.47 ms (127 syscalls), 3× the
//                                     fork/exec speed
//
// The paper's analysis is stated in *syscall counts*: building a process
// from six low-level object types takes hundreds of calls where a
// monolithic kernel takes nine. The counts are first-class here — each row
// reports a "syscalls" counter measured from the kernel, and the ablation
// claim to check is spawn ≈ 3× faster than fork+exec with ~2.5× fewer
// syscalls.
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "src/baseline/mono_fs.h"

namespace histar::bench {
namespace {

// One fork + exec("/bin/true") + exit + wait cycle.
void BM_HiStarForkExec(::benchmark::State& state) {
  World w = BootWorld(/*with_store=*/false);
  ProcessContext& ctx = w.ctx();
  ProcessManager& procs = w.unix->procs();

  procs.RegisterProgram("true", [](ProcessContext&) -> int64_t { return 0; });
  Result<ObjectId> bin = procs.InstallBinary(w.init(), &w.unix->fs(), w.unix->bin_dir(),
                                             "true", "true", Label());
  if (!bin.ok()) {
    state.SkipWithError("install /bin/true failed");
    return;
  }

  uint64_t syscalls_before = w.kernel->syscall_count();
  uint64_t iters = 0;
  for (auto _ : state) {
    ProcessManager* mgr = &procs;
    Result<std::unique_ptr<ProcHandle>> child =
        procs.Fork(ctx, [mgr](ProcessContext& c) -> int64_t {
          Result<int64_t> st = mgr->Exec(c, "/bin/true", {"/bin/true"});
          return st.ok() ? st.value() : -1;
        });
    if (!child.ok()) {
      state.SkipWithError("fork failed");
      return;
    }
    Result<int64_t> status = child.value()->Wait(w.init());
    if (!status.ok() || status.value() != 0) {
      state.SkipWithError("child failed");
      return;
    }
    // Reap: drop the process subtree, as a shell's wait() bookkeeping would.
    child.value()->Destroy(w.init());
    ++iters;
  }
  state.counters["syscalls"] =
      ::benchmark::Counter(static_cast<double>(w.kernel->syscall_count() - syscalls_before) /
                           static_cast<double>(iters));
  PaperCounter(state, 1.35e-3);
  CurrentThread::Set(kInvalidObject);
}
BENCHMARK(BM_HiStarForkExec)->Unit(::benchmark::kMillisecond);

// spawn(): build the child directly, no copy of the parent image — the
// faster path a low-level interface makes possible (§7.1).
void BM_HiStarSpawn(::benchmark::State& state) {
  World w = BootWorld(/*with_store=*/false);
  ProcessContext& ctx = w.ctx();
  ProcessManager& procs = w.unix->procs();
  procs.RegisterProgram("true", [](ProcessContext&) -> int64_t { return 0; });

  uint64_t syscalls_before = w.kernel->syscall_count();
  uint64_t iters = 0;
  for (auto _ : state) {
    Result<std::unique_ptr<ProcHandle>> child = procs.Spawn(ctx, "true", {});
    if (!child.ok()) {
      state.SkipWithError("spawn failed");
      return;
    }
    Result<int64_t> status = child.value()->Wait(w.init());
    if (!status.ok() || status.value() != 0) {
      state.SkipWithError("child failed");
      return;
    }
    child.value()->Destroy(w.init());
    ++iters;
  }
  state.counters["syscalls"] =
      ::benchmark::Counter(static_cast<double>(w.kernel->syscall_count() - syscalls_before) /
                           static_cast<double>(iters));
  PaperCounter(state, 0.47e-3);
  CurrentThread::Set(kInvalidObject);
}
BENCHMARK(BM_HiStarSpawn)->Unit(::benchmark::kMillisecond);

// The monolithic baseline: 9 syscalls and a copy of the parent image.
void BM_BaselineForkExec(::benchmark::State& state) {
  monosim::MonoProcessModel model;
  uint64_t syscalls = 0;
  for (auto _ : state) {
    syscalls += model.ForkExecTrue();
  }
  state.counters["syscalls"] =
      ::benchmark::Counter(static_cast<double>(syscalls) /
                           static_cast<double>(state.iterations()));
  PaperCounter(state, 0.18e-3);
}
BENCHMARK(BM_BaselineForkExec)->Unit(::benchmark::kMillisecond);

}  // namespace
}  // namespace histar::bench

BENCHMARK_MAIN();
