// Figure 12, LFS large-file benchmark: one 100 MB file.
//
//   phase                      paper (seconds)
//   sequential write + fsync   HiStar 2.14 · Linux 3.88
//   sync random 8 kB writes    HiStar 93.0 · Linux 89.7
//   uncached sequential read   HiStar 1.96 · Linux 1.80
//
// Shapes to check:
//   * sequential write: HiStar's extent-based delayed allocation lands the
//     whole file contiguously at media rate and *beats* the block-based
//     baseline (the paper blames ext3's block allocation for the gap);
//   * sync random writes: both systems pay seek + rotation per op — HiStar
//     flushes modified pages of a pre-existing segment in place without a
//     checkpoint (sys_sync_pages), so the two columns nearly tie;
//   * uncached read: HiStar pages in the entire segment on first access
//     (§7.1's noted limitation), one big sequential transfer; the baseline
//     streams blocks through the lookahead window. Near-tie.
//
// All rows report simulated seconds on the virtual ST340014A.
#include <benchmark/benchmark.h>

#include <random>
#include <vector>

#include "bench/bench_util.h"
#include "src/baseline/mono_fs.h"

namespace histar::bench {
namespace {

constexpr uint64_t kFileMB = 100;
constexpr uint64_t kFileBytes = kFileMB << 20;
constexpr uint64_t kChunk = 8 * 1024;

// ---- HiStar ---------------------------------------------------------------------

struct LargeFileWorld {
  World w;
  ObjectId dir = kInvalidObject;
  ObjectId file = kInvalidObject;
};

LargeFileWorld MakeLargeFile(bool fill) {
  LargeFileWorld s;
  s.w = BootWorld(/*with_store=*/true, /*capacity_bytes=*/4ULL << 30);
  FileSystem& fs = s.w.unix->fs();
  // A 100 MB file does not fit under the default 256 MB fs root next to
  // /bin,/tmp,/home — make the benchmark directory its own filesystem rooted
  // directly in the (quota-∞) kernel root container.
  Result<ObjectId> dir = fs.MakeRoot(s.w.init(), s.w.kernel->root_container(), Label(),
                                     (kFileMB + 64) << 20);
  Result<ObjectId> f =
      dir.ok() ? fs.Create(s.w.init(), dir.value(), "blob", Label(), (kFileMB + 1) << 20)
               : Result<ObjectId>(dir.status());
  if (!f.ok()) {
    std::abort();
  }
  s.dir = dir.value();
  s.file = f.value();
  if (fill) {
    std::vector<uint8_t> chunk(kChunk, 0x5a);
    for (uint64_t off = 0; off < kFileBytes; off += kChunk) {
      if (fs.WriteAt(s.w.init(), s.dir, s.file, chunk.data(), off, kChunk) != Status::kOk) {
        std::abort();
      }
    }
    if (fs.SyncFile(s.w.init(), s.dir, s.file) != Status::kOk) {
      std::abort();
    }
  }
  return s;
}

void BM_HiStarSeqWrite(::benchmark::State& state) {
  for (auto _ : state) {
    LargeFileWorld s = MakeLargeFile(/*fill=*/false);
    FileSystem& fs = s.w.unix->fs();
    std::vector<uint8_t> chunk(kChunk, 0x5a);
    PhaseTimer timer(s.w.disk.get());
    for (uint64_t off = 0; off < kFileBytes; off += kChunk) {
      if (fs.WriteAt(s.w.init(), s.dir, s.file, chunk.data(), off, kChunk) != Status::kOk) {
        state.SkipWithError("write failed");
        return;
      }
    }
    if (fs.SyncFile(s.w.init(), s.dir, s.file) != Status::kOk) {
      state.SkipWithError("fsync failed");
      return;
    }
    state.SetIterationTime(timer.Seconds());
    CurrentThread::Set(kInvalidObject);
  }
  PaperCounter(state, 2.14);
  state.counters["MB"] = ::benchmark::Counter(static_cast<double>(kFileMB));
}
BENCHMARK(BM_HiStarSeqWrite)->UseManualTime()->Unit(::benchmark::kMillisecond)->Iterations(1);

void BM_HiStarSyncRandomWrite(::benchmark::State& state) {
  const uint64_t ops = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    LargeFileWorld s = MakeLargeFile(/*fill=*/true);
    FileSystem& fs = s.w.unix->fs();
    Kernel* k = s.w.kernel.get();
    std::vector<uint8_t> chunk(kChunk, 0xa5);
    std::mt19937_64 rng(42);
    std::uniform_int_distribution<uint64_t> pick(0, kFileBytes / kChunk - 1);
    PhaseTimer timer(s.w.disk.get());
    for (uint64_t i = 0; i < ops; ++i) {
      uint64_t off = pick(rng) * kChunk;
      if (fs.WriteAt(s.w.init(), s.dir, s.file, chunk.data(), off, kChunk) != Status::kOk) {
        state.SkipWithError("write failed");
        return;
      }
      // In-place page flush of a pre-existing segment — no checkpoint (§7.1).
      if (k->sys_sync_pages(s.w.init(), ContainerEntry{s.dir, s.file}, off, kChunk) !=
          Status::kOk) {
        state.SkipWithError("sync_pages failed");
        return;
      }
    }
    state.SetIterationTime(timer.Seconds());
    CurrentThread::Set(kInvalidObject);
  }
  state.counters["ops"] = ::benchmark::Counter(static_cast<double>(ops));
}
BENCHMARK(BM_HiStarSyncRandomWrite)
    ->Arg(2000)
    ->ArgName("ops")
    ->UseManualTime()
    ->Unit(::benchmark::kMillisecond)
    ->Iterations(1);

void BM_HiStarUncachedRead(::benchmark::State& state) {
  for (auto _ : state) {
    LargeFileWorld s = MakeLargeFile(/*fill=*/true);
    PhaseTimer timer(s.w.disk.get());
    // First access pages in the *entire* 100 MB segment (§7.1: "the HiStar
    // prototype does not support paging in of partial segments").
    if (!s.w.store->TouchObject(s.file).ok()) {
      state.SkipWithError("page-in failed");
      return;
    }
    state.SetIterationTime(timer.Seconds());
    CurrentThread::Set(kInvalidObject);
  }
  PaperCounter(state, 1.96);
}
BENCHMARK(BM_HiStarUncachedRead)->UseManualTime()->Unit(::benchmark::kMillisecond)->Iterations(1);

// ---- baseline -------------------------------------------------------------------

void BM_BaselineSeqWrite(::benchmark::State& state) {
  for (auto _ : state) {
    DiskGeometry g;
    g.capacity_bytes = 4ULL << 30;
    g.store_data = false;
    DiskModel disk(g);
    monosim::MonoFs fs(&disk);
    if (fs.Mkfs() != Status::kOk) {
      state.SkipWithError("mkfs failed");
      return;
    }
    Result<uint64_t> ino = fs.Create("blob");
    if (!ino.ok()) {
      state.SkipWithError("create failed");
      return;
    }
    std::vector<uint8_t> chunk(kChunk, 0x5a);
    PhaseTimer timer(&disk);
    for (uint64_t off = 0; off < kFileBytes; off += kChunk) {
      if (fs.Write(ino.value(), off, chunk.data(), kChunk) != Status::kOk) {
        state.SkipWithError("write failed");
        return;
      }
    }
    if (fs.Fsync(ino.value()) != Status::kOk) {
      state.SkipWithError("fsync failed");
      return;
    }
    state.SetIterationTime(timer.Seconds());
  }
  PaperCounter(state, 3.88);
}
BENCHMARK(BM_BaselineSeqWrite)->UseManualTime()->Unit(::benchmark::kMillisecond)->Iterations(1);

void BM_BaselineSyncRandomWrite(::benchmark::State& state) {
  const uint64_t ops = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    DiskGeometry g;
    g.capacity_bytes = 4ULL << 30;
    g.store_data = false;
    DiskModel disk(g);
    monosim::MonoFs fs(&disk);
    if (fs.Mkfs() != Status::kOk) {
      state.SkipWithError("mkfs failed");
      return;
    }
    Result<uint64_t> ino = fs.Create("blob");
    std::vector<uint8_t> chunk(kChunk, 0xa5);
    for (uint64_t off = 0; off < kFileBytes; off += kChunk) {
      if (fs.Write(ino.value(), off, chunk.data(), kChunk) != Status::kOk) {
        state.SkipWithError("fill failed");
        return;
      }
    }
    if (fs.SyncAll() != Status::kOk) {
      state.SkipWithError("sync failed");
      return;
    }
    std::mt19937_64 rng(42);
    std::uniform_int_distribution<uint64_t> pick(0, kFileBytes / kChunk - 1);
    PhaseTimer timer(&disk);
    for (uint64_t i = 0; i < ops; ++i) {
      uint64_t off = pick(rng) * kChunk;
      if (fs.Write(ino.value(), off, chunk.data(), kChunk) != Status::kOk ||
          fs.Fsync(ino.value()) != Status::kOk) {
        state.SkipWithError("sync write failed");
        return;
      }
    }
    state.SetIterationTime(timer.Seconds());
  }
  state.counters["ops"] = ::benchmark::Counter(static_cast<double>(ops));
}
BENCHMARK(BM_BaselineSyncRandomWrite)
    ->Arg(2000)
    ->ArgName("ops")
    ->UseManualTime()
    ->Unit(::benchmark::kMillisecond)
    ->Iterations(1);

void BM_BaselineUncachedRead(::benchmark::State& state) {
  for (auto _ : state) {
    DiskGeometry g;
    g.capacity_bytes = 4ULL << 30;
    g.store_data = false;
    DiskModel disk(g);
    monosim::MonoFs fs(&disk);
    if (fs.Mkfs() != Status::kOk) {
      state.SkipWithError("mkfs failed");
      return;
    }
    Result<uint64_t> ino = fs.Create("blob");
    std::vector<uint8_t> chunk(kChunk, 0x5a);
    for (uint64_t off = 0; off < kFileBytes; off += kChunk) {
      if (fs.Write(ino.value(), off, chunk.data(), kChunk) != Status::kOk) {
        state.SkipWithError("fill failed");
        return;
      }
    }
    if (fs.SyncAll() != Status::kOk) {
      state.SkipWithError("sync failed");
      return;
    }
    fs.DropCaches();
    PhaseTimer timer(&disk);
    std::vector<uint8_t> buf(kChunk);
    for (uint64_t off = 0; off < kFileBytes; off += kChunk) {
      if (!fs.Read(ino.value(), off, buf.data(), kChunk).ok()) {
        state.SkipWithError("read failed");
        return;
      }
    }
    state.SetIterationTime(timer.Seconds());
  }
  PaperCounter(state, 1.80);
}
BENCHMARK(BM_BaselineUncachedRead)
    ->UseManualTime()
    ->Unit(::benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace histar::bench

BENCHMARK_MAIN();
