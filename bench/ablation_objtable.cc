// Ablation: the sharded object table (PR 2's split of Kernel::mu_).
//
// PR 1 made label checks a memoized hash probe, which left the old
// kernel-wide mutex as the dominant cost of a read-only syscall: every
// ResolveEntry serialized on one lock no matter which object it touched.
// This bench pits table shards=1 (one shared_mutex in front of the whole
// table — the closest sharded-code analogue of the old single-mutex design)
// against the default shard count, mirroring BM_RegistryLeqContended in
// ablation_labels.cc:
//
//   * BM_ObjTableResolveContended — pure read-mostly resolve (segment
//     reads over a pool of segments spread across shards). With one shard
//     every reader bounces the same lock cache line; sharded, readers
//     touch disjoint locks and the row should stay near-flat on multicore
//     hosts (the single-CPU CI container flattens both rows — see
//     EXPERIMENTS.md for the caveat).
//   * BM_ObjTableMixedContended — same read stream with a private-segment
//     write mixed in every 4th op. Writers take exclusive shard locks, so
//     one shard serializes readers behind every write; sharded, a write
//     only stalls the 1/N of readers hashing into its shard.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "src/kernel/kernel.h"

namespace histar::bench {
namespace {

constexpr int kMaxThreads = 8;
constexpr int kSegments = 64;

// Shared across the benchmark's threads; (re)built by thread 0 before each
// run (the google-benchmark multi-threaded setup idiom, as in
// ablation_labels.cc).
struct ObjWorld {
  std::unique_ptr<Kernel> kernel;
  ObjectId root = kInvalidObject;
  std::vector<ObjectId> threads;        // one kernel thread per bench thread
  std::vector<ObjectId> shared_segs;    // read pool, spread across shards
  std::vector<ObjectId> private_segs;   // one write target per bench thread
};
ObjWorld g_world;

bool BuildWorld(size_t shards) {
  g_world.kernel = std::make_unique<Kernel>(shards);
  Kernel* k = g_world.kernel.get();
  g_world.root = k->root_container();
  g_world.threads.clear();
  g_world.shared_segs.clear();
  g_world.private_segs.clear();
  for (int i = 0; i < kMaxThreads; ++i) {
    ObjectId t = k->BootstrapThread(Label(Level::k1), Label(Level::k2),
                                    "bench-t" + std::to_string(i));
    if (t == kInvalidObject) {
      return false;
    }
    g_world.threads.push_back(t);
  }
  auto make_seg = [&](const std::string& d) {
    CreateSpec spec;
    spec.container = g_world.root;
    spec.label = Label(Level::k1);
    spec.descrip = d;
    spec.quota = kObjectOverheadBytes + 2 * kPageSize;
    Result<ObjectId> s = k->sys_segment_create(g_world.threads[0], spec, 64);
    return s.ok() ? s.value() : kInvalidObject;
  };
  for (int i = 0; i < kSegments; ++i) {
    ObjectId s = make_seg("ro" + std::to_string(i));
    if (s == kInvalidObject) {
      return false;
    }
    g_world.shared_segs.push_back(s);
  }
  for (int i = 0; i < kMaxThreads; ++i) {
    ObjectId s = make_seg("rw" + std::to_string(i));
    if (s == kInvalidObject) {
      return false;
    }
    g_world.private_segs.push_back(s);
  }
  return true;
}

void TearDownWorld(::benchmark::State& state) {
  state.counters["shards"] = ::benchmark::Counter(
      static_cast<double>(g_world.kernel->object_table().shard_count()));
  g_world.kernel.reset();
}

// Pure resolve: every iteration is one sys_segment_read — ResolveEntry plus
// a memoized label check — against a random shared segment.
void BM_ObjTableResolveContended(::benchmark::State& state) {
  if (state.thread_index() == 0) {
    if (!BuildWorld(static_cast<size_t>(state.range(0)))) {
      state.SkipWithError("world boot failed");
      return;
    }
  }
  // Globals are touched only inside the iteration loop: the loop's entry
  // barrier is what orders thread 0's setup before the other threads run.
  Kernel* k = nullptr;
  ObjectId self = kInvalidObject;
  uint64_t x = 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(state.thread_index() + 1);
  uint64_t buf = 0;
  for (auto _ : state) {
    if (k == nullptr) {
      k = g_world.kernel.get();
      self = g_world.threads[static_cast<size_t>(state.thread_index())];
    }
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    ObjectId seg = g_world.shared_segs[(x >> 16) % g_world.shared_segs.size()];
    if (k->sys_segment_read(self, ContainerEntry{g_world.root, seg}, &buf, 0, 8) !=
        Status::kOk) {
      state.SkipWithError("read failed");
      return;
    }
    ::benchmark::DoNotOptimize(buf);
  }
  if (state.thread_index() == 0) {
    TearDownWorld(state);
  }
}
BENCHMARK(BM_ObjTableResolveContended)
    ->Arg(1)
    ->Arg(16)
    ->ArgName("shards")
    ->ThreadRange(1, kMaxThreads)
    ->UseRealTime()
    ->Unit(::benchmark::kNanosecond);

// Mixed: 3 reads of random shared segments + 1 write to this thread's
// private segment per 4 iterations. The write's exclusive lock is what
// separates the two configurations: at shards=1 it stalls every reader.
void BM_ObjTableMixedContended(::benchmark::State& state) {
  if (state.thread_index() == 0) {
    if (!BuildWorld(static_cast<size_t>(state.range(0)))) {
      state.SkipWithError("world boot failed");
      return;
    }
  }
  size_t ti = static_cast<size_t>(state.thread_index());
  Kernel* k = nullptr;
  ObjectId self = kInvalidObject;
  ObjectId own = kInvalidObject;
  uint64_t x = 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(ti + 1);
  uint64_t buf = 0;
  uint64_t i = 0;
  for (auto _ : state) {
    if (k == nullptr) {
      k = g_world.kernel.get();
      self = g_world.threads[ti];
      own = g_world.private_segs[ti];
    }
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    Status st;
    if (++i % 4 == 0) {
      st = k->sys_segment_write(self, ContainerEntry{g_world.root, own}, &x, 0, 8);
    } else {
      ObjectId seg = g_world.shared_segs[(x >> 16) % g_world.shared_segs.size()];
      st = k->sys_segment_read(self, ContainerEntry{g_world.root, seg}, &buf, 0, 8);
    }
    if (st != Status::kOk) {
      state.SkipWithError("syscall failed");
      return;
    }
    ::benchmark::DoNotOptimize(buf);
  }
  if (state.thread_index() == 0) {
    TearDownWorld(state);
  }
}
BENCHMARK(BM_ObjTableMixedContended)
    ->Arg(1)
    ->Arg(16)
    ->ArgName("shards")
    ->ThreadRange(1, kMaxThreads)
    ->UseRealTime()
    ->Unit(::benchmark::kNanosecond);

// Create/unref round trip: the heavyweight path (exclusive create +
// all-shards destroy). Kept single-configuration-comparable so EXPERIMENTS
// can report how much the all-shards unref costs relative to resolve.
void BM_ObjTableCreateUnref(::benchmark::State& state) {
  if (state.thread_index() == 0) {
    if (!BuildWorld(static_cast<size_t>(state.range(0)))) {
      state.SkipWithError("world boot failed");
      return;
    }
  }
  Kernel* k = nullptr;
  ObjectId self = kInvalidObject;
  for (auto _ : state) {
    if (k == nullptr) {
      k = g_world.kernel.get();
      self = g_world.threads[static_cast<size_t>(state.thread_index())];
    }
    CreateSpec spec;
    spec.container = g_world.root;
    spec.label = Label(Level::k1);
    spec.descrip = "churn";
    spec.quota = kObjectOverheadBytes + 2 * kPageSize;
    Result<ObjectId> s = k->sys_segment_create(self, spec, 64);
    if (!s.ok() ||
        k->sys_container_unref(self, ContainerEntry{g_world.root, s.value()}) !=
            Status::kOk) {
      state.SkipWithError("create/unref failed");
      return;
    }
  }
  if (state.thread_index() == 0) {
    TearDownWorld(state);
  }
}
BENCHMARK(BM_ObjTableCreateUnref)
    ->Arg(1)
    ->Arg(16)
    ->ArgName("shards")
    ->ThreadRange(1, 4)
    ->UseRealTime()
    ->Unit(::benchmark::kNanosecond);

}  // namespace
}  // namespace histar::bench

BENCHMARK_MAIN();
