// Figure 12, LFS small-file benchmark [Rosenblum & Ousterhout]: create,
// read, and unlink N 1 kB files, in several durability variants.
//
//   phase / variant            paper (10,000 files, seconds)
//   create, async              HiStar 0.31 · Linux 0.316 · OpenBSD 0.22
//   create, per-file sync      HiStar 459  · Linux 558
//   create, group sync         HiStar 2.57 (no Linux equivalent)
//   read, cached               HiStar 0.16 · Linux 0.068
//   read, uncached             HiStar 6.49 · Linux 1.86
//   read, no IDE prefetch      HiStar 86.4 · Linux 86.6
//   unlink, async              HiStar 0.09 · Linux 0.244
//   unlink, per-file sync      HiStar 456  · Linux 173
//   unlink, group sync         HiStar 0.38
//
// I/O rows report *simulated* seconds (UseManualTime) from the virtual
// ST340014A; the cached-read row reports real time. The shapes to check:
//   * per-file sync ≫ group sync ≈ async (the group-sync win is the paper's
//     "as high as a factor of 200");
//   * create-sync is comparable between HiStar (WAL append per op) and the
//     ext3 baseline (journal commit per op), with ~1 log application per
//     1,000 synchronous operations;
//   * unlink-sync is where HiStar loses: fsync of a directory checkpoints
//     the entire system state, and the object-map rewrite grows with the
//     number of live objects;
//   * uncached reads favor the baseline's directory-clustered layout until
//     drive lookahead is disabled, after which both pay full rotational
//     latency and converge (86.4 vs 86.6 in the paper).
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/baseline/mono_fs.h"

namespace histar::bench {
namespace {

enum class SyncMode { kAsync, kPerFile, kGroup };

constexpr uint64_t kFileBytes = 1024;
// Small files get a tight quota so 1,000 of them fit a 64 MB directory.
constexpr uint64_t kSmallQuota = kObjectOverheadBytes + 4 * kPageSize;

std::string FileName(int i) { return "f" + std::to_string(i); }

// ---- HiStar phases -----------------------------------------------------------

struct SmallFileWorld {
  World w;
  ObjectId dir = kInvalidObject;
  std::vector<ObjectId> files;

  // Creates n files so read/unlink phases have a populated directory. A
  // checkpoint runs every `sync_every` files (0 = only at the end), giving
  // the on-disk layout the multi-epoch character of a real run: each epoch
  // lands its files contiguously, but directory-segment and object-map
  // rewrites interleave between epochs and freed extents get reused, so the
  // read phase is mostly — not perfectly — sequential.
  bool Populate(int n, int sync_every = 0) {
    FileSystem& fs = w.unix->fs();
    std::vector<uint8_t> payload(kFileBytes, 0xab);
    for (int i = 0; i < n; ++i) {
      Result<ObjectId> f = fs.Create(w.init(), dir, FileName(i), Label(), kSmallQuota);
      if (!f.ok()) {
        return false;
      }
      if (fs.WriteAt(w.init(), dir, f.value(), payload.data(), 0, payload.size()) !=
          Status::kOk) {
        return false;
      }
      files.push_back(f.value());
      if (sync_every > 0 && (i + 1) % sync_every == 0 &&
          fs.SyncEverything(w.init()) != Status::kOk) {
        return false;
      }
    }
    return true;
  }
};

SmallFileWorld MakeSmallFileWorld() {
  SmallFileWorld s;
  s.w = BootWorld(/*with_store=*/true);
  Result<ObjectId> dir = s.w.unix->fs().MakeDir(s.w.init(), s.w.unix->fs_root(), "lfs",
                                                Label(), 64 << 20);
  if (!dir.ok()) {
    std::abort();
  }
  s.dir = dir.value();
  return s;
}

void BM_HiStarCreate(::benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const SyncMode mode = static_cast<SyncMode>(state.range(1));
  for (auto _ : state) {
    SmallFileWorld s = MakeSmallFileWorld();
    FileSystem& fs = s.w.unix->fs();
    std::vector<uint8_t> payload(kFileBytes, 0xab);
    PhaseTimer timer(s.w.disk.get());
    for (int i = 0; i < n; ++i) {
      Result<ObjectId> f = fs.Create(s.w.init(), s.dir, FileName(i), Label(), kSmallQuota);
      if (!f.ok()) {
        state.SkipWithError("create failed");
        return;
      }
      if (fs.WriteAt(s.w.init(), s.dir, f.value(), payload.data(), 0, payload.size()) !=
          Status::kOk) {
        state.SkipWithError("write failed");
        return;
      }
      if (mode == SyncMode::kPerFile &&
          fs.SyncFile(s.w.init(), s.dir, f.value()) != Status::kOk) {
        state.SkipWithError("fsync failed");
        return;
      }
    }
    if (mode == SyncMode::kGroup && fs.SyncEverything(s.w.init()) != Status::kOk) {
      state.SkipWithError("group sync failed");
      return;
    }
    state.SetIterationTime(timer.Seconds());
    state.counters["log_applies"] =
        ::benchmark::Counter(static_cast<double>(s.w.store->log_applies()));
    CurrentThread::Set(kInvalidObject);
  }
  state.counters["files"] = ::benchmark::Counter(static_cast<double>(n));
}
BENCHMARK(BM_HiStarCreate)
    ->ArgsProduct({{1000}, {0, 1, 2}})
    ->ArgNames({"files", "sync"})
    ->UseManualTime()
    ->Unit(::benchmark::kMillisecond)
    ->Iterations(1);

void BM_HiStarReadUncached(::benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const bool lookahead = state.range(1) != 0;
  for (auto _ : state) {
    SmallFileWorld s = MakeSmallFileWorld();
    if (!s.Populate(n, /*sync_every=*/100)) {
      state.SkipWithError("populate failed");
      return;
    }
    // Make everything resident on disk, then "drop caches": charge a fresh
    // page-in for every file, in directory order.
    if (s.w.unix->fs().SyncEverything(s.w.init()) != Status::kOk) {
      state.SkipWithError("sync failed");
      return;
    }
    s.w.disk->set_lookahead_enabled(lookahead);
    PhaseTimer timer(s.w.disk.get());
    for (ObjectId f : s.files) {
      if (!s.w.store->TouchObject(f).ok()) {
        state.SkipWithError("page-in failed");
        return;
      }
    }
    state.SetIterationTime(timer.Seconds());
    CurrentThread::Set(kInvalidObject);
  }
  state.counters["files"] = ::benchmark::Counter(static_cast<double>(n));
}
BENCHMARK(BM_HiStarReadUncached)
    ->ArgsProduct({{1000}, {1, 0}})
    ->ArgNames({"files", "lookahead"})
    ->UseManualTime()
    ->Unit(::benchmark::kMillisecond)
    ->Iterations(1);

// Cached reads never touch the disk: this row is real time through the
// whole unixlib read path (directory lookup + segment read).
void BM_HiStarReadCached(::benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  SmallFileWorld s = MakeSmallFileWorld();
  if (!s.Populate(n)) {
    state.SkipWithError("populate failed");
    return;
  }
  FileSystem& fs = s.w.unix->fs();
  std::vector<uint8_t> buf(kFileBytes);
  for (auto _ : state) {
    for (int i = 0; i < n; ++i) {
      Result<ObjectId> f = fs.Lookup(s.w.init(), s.dir, FileName(i));
      if (!f.ok() ||
          !fs.ReadAt(s.w.init(), s.dir, f.value(), buf.data(), 0, buf.size()).ok()) {
        state.SkipWithError("read failed");
        return;
      }
      ::benchmark::DoNotOptimize(buf);
    }
  }
  state.counters["files"] = ::benchmark::Counter(static_cast<double>(n));
  PaperCounter(state, 0.16);
  CurrentThread::Set(kInvalidObject);
}
BENCHMARK(BM_HiStarReadCached)->Arg(1000)->Unit(::benchmark::kMillisecond);

void BM_HiStarUnlink(::benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const SyncMode mode = static_cast<SyncMode>(state.range(1));
  for (auto _ : state) {
    SmallFileWorld s = MakeSmallFileWorld();
    if (!s.Populate(n)) {
      state.SkipWithError("populate failed");
      return;
    }
    FileSystem& fs = s.w.unix->fs();
    if (fs.SyncEverything(s.w.init()) != Status::kOk) {
      state.SkipWithError("sync failed");
      return;
    }
    PhaseTimer timer(s.w.disk.get());
    for (int i = 0; i < n; ++i) {
      if (fs.Unlink(s.w.init(), s.dir, FileName(i)) != Status::kOk) {
        state.SkipWithError("unlink failed");
        return;
      }
      // fsync of a directory = checkpoint of the entire system state (§7.1):
      // this is the row where HiStar loses to the journaling baseline.
      if (mode == SyncMode::kPerFile && fs.SyncEverything(s.w.init()) != Status::kOk) {
        state.SkipWithError("dir fsync failed");
        return;
      }
    }
    if (mode == SyncMode::kGroup && fs.SyncEverything(s.w.init()) != Status::kOk) {
      state.SkipWithError("group sync failed");
      return;
    }
    state.SetIterationTime(timer.Seconds());
    CurrentThread::Set(kInvalidObject);
  }
  state.counters["files"] = ::benchmark::Counter(static_cast<double>(n));
}
BENCHMARK(BM_HiStarUnlink)
    ->ArgsProduct({{1000}, {0, 1, 2}})
    ->ArgNames({"files", "sync"})
    ->UseManualTime()
    ->Unit(::benchmark::kMillisecond)
    ->Iterations(1);

// ---- ext3-flavored baseline phases ---------------------------------------------

monosim::MonoFs MakeMonoFs(std::unique_ptr<DiskModel>* disk_out) {
  DiskGeometry g;
  g.capacity_bytes = 2ULL << 30;
  g.store_data = false;
  auto disk = std::make_unique<DiskModel>(g);
  monosim::MonoFs fs(disk.get());
  if (fs.Mkfs() != Status::kOk) {
    std::abort();
  }
  *disk_out = std::move(disk);
  return fs;
}

void BM_BaselineCreate(::benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const SyncMode mode = static_cast<SyncMode>(state.range(1));
  for (auto _ : state) {
    std::unique_ptr<DiskModel> disk;
    monosim::MonoFs fs = MakeMonoFs(&disk);
    std::vector<uint8_t> payload(kFileBytes, 0xcd);
    PhaseTimer timer(disk.get());
    for (int i = 0; i < n; ++i) {
      Result<uint64_t> ino = fs.Create(FileName(i));
      if (!ino.ok() ||
          fs.Write(ino.value(), 0, payload.data(), payload.size()) != Status::kOk) {
        state.SkipWithError("create failed");
        return;
      }
      if (mode == SyncMode::kPerFile && fs.Fsync(ino.value()) != Status::kOk) {
        state.SkipWithError("fsync failed");
        return;
      }
    }
    if (mode == SyncMode::kGroup && fs.SyncAll() != Status::kOk) {
      state.SkipWithError("sync failed");
      return;
    }
    state.SetIterationTime(timer.Seconds());
  }
  state.counters["files"] = ::benchmark::Counter(static_cast<double>(n));
}
BENCHMARK(BM_BaselineCreate)
    ->ArgsProduct({{1000}, {0, 1, 2}})
    ->ArgNames({"files", "sync"})
    ->UseManualTime()
    ->Unit(::benchmark::kMillisecond)
    ->Iterations(1);

void BM_BaselineReadUncached(::benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const bool lookahead = state.range(1) != 0;
  for (auto _ : state) {
    std::unique_ptr<DiskModel> disk;
    monosim::MonoFs fs = MakeMonoFs(&disk);
    std::vector<uint8_t> payload(kFileBytes, 0xcd);
    std::vector<uint64_t> inos;
    for (int i = 0; i < n; ++i) {
      Result<uint64_t> ino = fs.Create(FileName(i));
      if (!ino.ok() ||
          fs.Write(ino.value(), 0, payload.data(), payload.size()) != Status::kOk) {
        state.SkipWithError("create failed");
        return;
      }
      inos.push_back(ino.value());
    }
    if (fs.SyncAll() != Status::kOk) {
      state.SkipWithError("sync failed");
      return;
    }
    fs.DropCaches();
    disk->set_lookahead_enabled(lookahead);
    PhaseTimer timer(disk.get());
    std::vector<uint8_t> buf(kFileBytes);
    for (uint64_t ino : inos) {
      if (!fs.Read(ino, 0, buf.data(), buf.size()).ok()) {
        state.SkipWithError("read failed");
        return;
      }
    }
    state.SetIterationTime(timer.Seconds());
  }
  state.counters["files"] = ::benchmark::Counter(static_cast<double>(n));
}
BENCHMARK(BM_BaselineReadUncached)
    ->ArgsProduct({{1000}, {1, 0}})
    ->ArgNames({"files", "lookahead"})
    ->UseManualTime()
    ->Unit(::benchmark::kMillisecond)
    ->Iterations(1);

void BM_BaselineUnlink(::benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const SyncMode mode = static_cast<SyncMode>(state.range(1));
  for (auto _ : state) {
    std::unique_ptr<DiskModel> disk;
    monosim::MonoFs fs = MakeMonoFs(&disk);
    std::vector<uint8_t> payload(kFileBytes, 0xcd);
    std::vector<uint64_t> inos;
    for (int i = 0; i < n; ++i) {
      Result<uint64_t> ino = fs.Create(FileName(i));
      if (!ino.ok() ||
          fs.Write(ino.value(), 0, payload.data(), payload.size()) != Status::kOk) {
        state.SkipWithError("create failed");
        return;
      }
      inos.push_back(ino.value());
    }
    if (fs.SyncAll() != Status::kOk) {
      state.SkipWithError("sync failed");
      return;
    }
    PhaseTimer timer(disk.get());
    for (int i = 0; i < n; ++i) {
      if (fs.Unlink(FileName(i)) != Status::kOk) {
        state.SkipWithError("unlink failed");
        return;
      }
      // ext3 fsync of the directory: one journal commit, not a checkpoint —
      // the source of the paper's 456 s vs 173 s gap.
      if (mode == SyncMode::kPerFile && fs.FsyncDir() != Status::kOk) {
        state.SkipWithError("fsync failed");
        return;
      }
    }
    if (mode == SyncMode::kGroup && fs.SyncAll() != Status::kOk) {
      state.SkipWithError("sync failed");
      return;
    }
    state.SetIterationTime(timer.Seconds());
  }
  state.counters["files"] = ::benchmark::Counter(static_cast<double>(n));
}
BENCHMARK(BM_BaselineUnlink)
    ->ArgsProduct({{1000}, {0, 1, 2}})
    ->ArgNames({"files", "sync"})
    ->UseManualTime()
    ->Unit(::benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace histar::bench

BENCHMARK_MAIN();
