// Figure 12, LFS small-file benchmark [Rosenblum & Ousterhout]: create,
// read, and unlink N 1 kB files, in several durability variants.
//
//   phase / variant            paper (10,000 files, seconds)
//   create, async              HiStar 0.31 · Linux 0.316 · OpenBSD 0.22
//   create, per-file sync      HiStar 459  · Linux 558
//   create, group sync         HiStar 2.57 (no Linux equivalent)
//   read, cached               HiStar 0.16 · Linux 0.068
//   read, uncached             HiStar 6.49 · Linux 1.86
//   read, no IDE prefetch      HiStar 86.4 · Linux 86.6
//   unlink, async              HiStar 0.09 · Linux 0.244
//   unlink, per-file sync      HiStar 456  · Linux 173
//   unlink, group sync         HiStar 0.38
//
// I/O rows report *simulated* seconds (UseManualTime) from the virtual
// ST340014A; the cached-read row reports real time. The shapes to check:
//   * per-file sync ≫ group sync ≈ async (the group-sync win is the paper's
//     "as high as a factor of 200");
//   * create-sync is comparable between HiStar (WAL append per op) and the
//     ext3 baseline (journal commit per op), with ~1 log application per
//     1,000 synchronous operations;
//   * unlink-sync is where HiStar loses: fsync of a directory checkpoints
//     the entire system state, and the object-map rewrite grows with the
//     number of live objects;
//   * uncached reads favor the baseline's directory-clustered layout until
//     drive lookahead is disabled, after which both pay full rotational
//     latency and converge (86.4 vs 86.6 in the paper).
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/baseline/mono_fs.h"

namespace histar::bench {
namespace {

enum class SyncMode { kAsync, kPerFile, kGroup };

constexpr uint64_t kFileBytes = 1024;
// Small files get a tight quota so 1,000 of them fit a 64 MB directory.
constexpr uint64_t kSmallQuota = kObjectOverheadBytes + 4 * kPageSize;

std::string FileName(int i) { return "f" + std::to_string(i); }

// ---- HiStar phases -----------------------------------------------------------

struct SmallFileWorld {
  World w;
  ObjectId dir = kInvalidObject;
  std::vector<ObjectId> files;

  // Creates n files so read/unlink phases have a populated directory. A
  // checkpoint runs every `sync_every` files (0 = only at the end), giving
  // the on-disk layout the multi-epoch character of a real run: each epoch
  // lands its files contiguously, but directory-segment and object-map
  // rewrites interleave between epochs and freed extents get reused, so the
  // read phase is mostly — not perfectly — sequential.
  bool Populate(int n, int sync_every = 0) {
    FileSystem& fs = w.unix->fs();
    std::vector<uint8_t> payload(kFileBytes, 0xab);
    for (int i = 0; i < n; ++i) {
      Result<ObjectId> f = fs.Create(w.init(), dir, FileName(i), Label(), kSmallQuota);
      if (!f.ok()) {
        return false;
      }
      if (fs.WriteAt(w.init(), dir, f.value(), payload.data(), 0, payload.size()) !=
          Status::kOk) {
        return false;
      }
      files.push_back(f.value());
      if (sync_every > 0 && (i + 1) % sync_every == 0 &&
          fs.SyncEverything(w.init()) != Status::kOk) {
        return false;
      }
    }
    return true;
  }
};

SmallFileWorld MakeSmallFileWorld() {
  SmallFileWorld s;
  s.w = BootWorld(/*with_store=*/true);
  Result<ObjectId> dir = s.w.unix->fs().MakeDir(s.w.init(), s.w.unix->fs_root(), "lfs",
                                                Label(), 64 << 20);
  if (!dir.ok()) {
    std::abort();
  }
  s.dir = dir.value();
  return s;
}

void BM_HiStarCreate(::benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const SyncMode mode = static_cast<SyncMode>(state.range(1));
  for (auto _ : state) {
    SmallFileWorld s = MakeSmallFileWorld();
    FileSystem& fs = s.w.unix->fs();
    std::vector<uint8_t> payload(kFileBytes, 0xab);
    PhaseTimer timer(s.w.disk.get());
    for (int i = 0; i < n; ++i) {
      Result<ObjectId> f = fs.Create(s.w.init(), s.dir, FileName(i), Label(), kSmallQuota);
      if (!f.ok()) {
        state.SkipWithError("create failed");
        return;
      }
      if (fs.WriteAt(s.w.init(), s.dir, f.value(), payload.data(), 0, payload.size()) !=
          Status::kOk) {
        state.SkipWithError("write failed");
        return;
      }
      if (mode == SyncMode::kPerFile &&
          fs.SyncFile(s.w.init(), s.dir, f.value()) != Status::kOk) {
        state.SkipWithError("fsync failed");
        return;
      }
    }
    if (mode == SyncMode::kGroup && fs.SyncEverything(s.w.init()) != Status::kOk) {
      state.SkipWithError("group sync failed");
      return;
    }
    state.SetIterationTime(timer.Seconds());
    state.counters["log_applies"] =
        ::benchmark::Counter(static_cast<double>(s.w.store->log_applies()));
    CurrentThread::Set(kInvalidObject);
  }
  state.counters["files"] = ::benchmark::Counter(static_cast<double>(n));
}
BENCHMARK(BM_HiStarCreate)
    ->ArgsProduct({{1000}, {0, 1, 2}})
    ->ArgNames({"files", "sync"})
    ->UseManualTime()
    ->Unit(::benchmark::kMillisecond)
    ->Iterations(1);

void BM_HiStarReadUncached(::benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const bool lookahead = state.range(1) != 0;
  for (auto _ : state) {
    SmallFileWorld s = MakeSmallFileWorld();
    if (!s.Populate(n, /*sync_every=*/100)) {
      state.SkipWithError("populate failed");
      return;
    }
    // Make everything resident on disk, then "drop caches": charge a fresh
    // page-in for every file, in directory order.
    if (s.w.unix->fs().SyncEverything(s.w.init()) != Status::kOk) {
      state.SkipWithError("sync failed");
      return;
    }
    s.w.disk->set_lookahead_enabled(lookahead);
    PhaseTimer timer(s.w.disk.get());
    for (ObjectId f : s.files) {
      if (!s.w.store->TouchObject(f).ok()) {
        state.SkipWithError("page-in failed");
        return;
      }
    }
    state.SetIterationTime(timer.Seconds());
    CurrentThread::Set(kInvalidObject);
  }
  state.counters["files"] = ::benchmark::Counter(static_cast<double>(n));
}
BENCHMARK(BM_HiStarReadUncached)
    ->ArgsProduct({{1000}, {1, 0}})
    ->ArgNames({"files", "lookahead"})
    ->UseManualTime()
    ->Unit(::benchmark::kMillisecond)
    ->Iterations(1);

// Cached reads never touch the disk: this row is real time through the
// whole unixlib read path (directory lookup + segment read).
void BM_HiStarReadCached(::benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  SmallFileWorld s = MakeSmallFileWorld();
  if (!s.Populate(n)) {
    state.SkipWithError("populate failed");
    return;
  }
  FileSystem& fs = s.w.unix->fs();
  std::vector<uint8_t> buf(kFileBytes);
  for (auto _ : state) {
    for (int i = 0; i < n; ++i) {
      Result<ObjectId> f = fs.Lookup(s.w.init(), s.dir, FileName(i));
      if (!f.ok() ||
          !fs.ReadAt(s.w.init(), s.dir, f.value(), buf.data(), 0, buf.size()).ok()) {
        state.SkipWithError("read failed");
        return;
      }
      ::benchmark::DoNotOptimize(buf);
    }
  }
  state.counters["files"] = ::benchmark::Counter(static_cast<double>(n));
  PaperCounter(state, 0.16);
  CurrentThread::Set(kInvalidObject);
}
BENCHMARK(BM_HiStarReadCached)->Arg(1000)->Unit(::benchmark::kMillisecond);

void BM_HiStarUnlink(::benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const SyncMode mode = static_cast<SyncMode>(state.range(1));
  for (auto _ : state) {
    SmallFileWorld s = MakeSmallFileWorld();
    if (!s.Populate(n)) {
      state.SkipWithError("populate failed");
      return;
    }
    FileSystem& fs = s.w.unix->fs();
    if (fs.SyncEverything(s.w.init()) != Status::kOk) {
      state.SkipWithError("sync failed");
      return;
    }
    PhaseTimer timer(s.w.disk.get());
    for (int i = 0; i < n; ++i) {
      if (fs.Unlink(s.w.init(), s.dir, FileName(i)) != Status::kOk) {
        state.SkipWithError("unlink failed");
        return;
      }
      // fsync of a directory = checkpoint of the entire system state (§7.1):
      // this is the row where HiStar loses to the journaling baseline.
      if (mode == SyncMode::kPerFile && fs.SyncEverything(s.w.init()) != Status::kOk) {
        state.SkipWithError("dir fsync failed");
        return;
      }
    }
    if (mode == SyncMode::kGroup && fs.SyncEverything(s.w.init()) != Status::kOk) {
      state.SkipWithError("group sync failed");
      return;
    }
    state.SetIterationTime(timer.Seconds());
    CurrentThread::Set(kInvalidObject);
  }
  state.counters["files"] = ::benchmark::Counter(static_cast<double>(n));
}
BENCHMARK(BM_HiStarUnlink)
    ->ArgsProduct({{1000}, {0, 1, 2}})
    ->ArgNames({"files", "sync"})
    ->UseManualTime()
    ->Unit(::benchmark::kMillisecond)
    ->Iterations(1);

// ---- checkpoint format rows (ISSUE 4: label table + incremental epochs) ------
//
// Not Figure 12 rows — these measure the checkpoint subsystem itself on a
// label-heavy world (1,000 files sharing 27 labels, the acceptance shape):
//   * checkpoint size: disk bytes for a full base under the label-ref
//     format, with counters for what the self-contained format would have
//     written (the dedup win = inline_bytes - blob_bytes);
//   * incremental cost: touch k of n files, sync — bytes and blob count
//     must scale with k, not n;
//   * restore time: boot a fresh kernel from the label-heavy image
//     (simulated disk time + host time, like the other I/O rows).

// 27 distinct labels from three categories (level combinations), all owned
// by init so creation passes the §3.2 rules.
std::vector<Label> MakeLabelSet(Kernel* kernel, ObjectId init) {
  CategoryId cats[3];
  for (auto& c : cats) {
    Result<CategoryId> r = kernel->sys_cat_create(init);
    if (!r.ok()) {
      std::abort();
    }
    c = r.value();
  }
  const Level levels[3] = {Level::k0, Level::k2, Level::k3};
  std::vector<Label> labels;
  for (int i = 0; i < 27; ++i) {
    Label l(Level::k1);
    l.set(cats[0], levels[i % 3]);
    l.set(cats[1], levels[(i / 3) % 3]);
    l.set(cats[2], levels[(i / 9) % 3]);
    labels.push_back(l);
  }
  return labels;
}

struct LabelHeavyWorld {
  World w;
  ObjectId dir = kInvalidObject;
  std::vector<ObjectId> files;
};

// `tuning` picks the store engine; `sync_every` checkpoints mid-population
// (0 = never), giving the on-disk image the multi-epoch scatter of a real
// run — the restore rows need that to expose the engines' read layouts.
LabelHeavyWorld MakeLabelHeavyWorld(int n, bool store_data = false,
                                    const StoreTuning& tuning = StoreTuning{},
                                    int sync_every = 0) {
  LabelHeavyWorld s;
  s.w = BootWorld(/*with_store=*/true, /*capacity_bytes=*/2ULL << 30, store_data, tuning);
  FileSystem& fs = s.w.unix->fs();
  Result<ObjectId> dir = fs.MakeDir(s.w.init(), s.w.unix->fs_root(), "lbl", Label(), 64 << 20);
  if (!dir.ok()) {
    std::abort();
  }
  s.dir = dir.value();
  std::vector<Label> labels = MakeLabelSet(s.w.kernel.get(), s.w.init());
  std::vector<uint8_t> payload(kFileBytes, 0xab);
  for (int i = 0; i < n; ++i) {
    Result<ObjectId> f = fs.Create(s.w.init(), s.dir, FileName(i),
                                   labels[static_cast<size_t>(i) % labels.size()],
                                   kSmallQuota);
    if (!f.ok() ||
        fs.WriteAt(s.w.init(), s.dir, f.value(), payload.data(), 0, payload.size()) !=
            Status::kOk) {
      std::abort();
    }
    s.files.push_back(f.value());
    if (sync_every > 0 && (i + 1) % sync_every == 0 &&
        s.w.kernel->sys_sync(s.w.init()) != Status::kOk) {
      std::abort();
    }
  }
  return s;
}

void BM_HiStarCheckpointLabelHeavy(::benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    LabelHeavyWorld s = MakeLabelHeavyWorld(n);
    uint64_t inline_bytes = 0;
    uint64_t ref_bytes = 0;
    for (ObjectId f : s.files) {
      std::vector<uint8_t> b;
      s.w.kernel->SerializeObject(f, &b);
      inline_bytes += b.size();
      s.w.kernel->SerializeObject(f, &b, /*label_refs=*/true);
      ref_bytes += b.size();
    }
    uint64_t before = s.w.disk->bytes_written();
    PhaseTimer timer(s.w.disk.get());
    if (s.w.kernel->sys_sync(s.w.init()) != Status::kOk) {
      state.SkipWithError("sync failed");
      return;
    }
    state.SetIterationTime(timer.Seconds());
    state.counters["ckpt_bytes"] =
        ::benchmark::Counter(static_cast<double>(s.w.disk->bytes_written() - before));
    state.counters["blob_bytes"] = ::benchmark::Counter(static_cast<double>(ref_bytes));
    state.counters["inline_blob_bytes"] =
        ::benchmark::Counter(static_cast<double>(inline_bytes));
    state.counters["section_bytes"] =
        ::benchmark::Counter(static_cast<double>(s.w.store->last_section_bytes()));
    state.counters["table_labels"] =
        ::benchmark::Counter(static_cast<double>(s.w.store->label_table_size()));
    CurrentThread::Set(kInvalidObject);
  }
  state.counters["files"] = ::benchmark::Counter(static_cast<double>(n));
}
BENCHMARK(BM_HiStarCheckpointLabelHeavy)
    ->Arg(1000)
    ->ArgName("files")
    ->UseManualTime()
    ->Unit(::benchmark::kMillisecond)
    ->Iterations(1);

void BM_HiStarIncrementalCheckpoint(::benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int touched = static_cast<int>(state.range(1));
  for (auto _ : state) {
    LabelHeavyWorld s = MakeLabelHeavyWorld(n);
    FileSystem& fs = s.w.unix->fs();
    if (s.w.kernel->sys_sync(s.w.init()) != Status::kOk) {  // the base epoch
      state.SkipWithError("base sync failed");
      return;
    }
    std::vector<uint8_t> payload(kFileBytes, 0xcd);
    for (int i = 0; i < touched; ++i) {
      if (fs.WriteAt(s.w.init(), s.dir, s.files[static_cast<size_t>(i)], payload.data(), 0,
                     payload.size()) != Status::kOk) {
        state.SkipWithError("touch failed");
        return;
      }
    }
    uint64_t before = s.w.disk->bytes_written();
    PhaseTimer timer(s.w.disk.get());
    if (s.w.kernel->sys_sync(s.w.init()) != Status::kOk) {
      state.SkipWithError("incremental sync failed");
      return;
    }
    state.SetIterationTime(timer.Seconds());
    state.counters["incr_bytes"] =
        ::benchmark::Counter(static_cast<double>(s.w.disk->bytes_written() - before));
    state.counters["blobs_written"] =
        ::benchmark::Counter(static_cast<double>(s.w.store->last_commit_objects()));
    state.counters["was_base"] =
        ::benchmark::Counter(s.w.store->last_commit_was_base() ? 1 : 0);
    CurrentThread::Set(kInvalidObject);
  }
  state.counters["files"] = ::benchmark::Counter(static_cast<double>(n));
  state.counters["touched"] = ::benchmark::Counter(static_cast<double>(touched));
}
BENCHMARK(BM_HiStarIncrementalCheckpoint)
    ->ArgsProduct({{1000}, {10, 100}})
    ->ArgNames({"files", "touched"})
    ->UseManualTime()
    ->Unit(::benchmark::kMillisecond)
    ->Iterations(1);

void BM_HiStarRestoreLabelHeavy(::benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    // Recovery reads real bytes back, so this world keeps disk contents.
    LabelHeavyWorld s = MakeLabelHeavyWorld(n, /*store_data=*/true);
    if (s.w.kernel->sys_sync(s.w.init()) != Status::kOk) {
      state.SkipWithError("sync failed");
      return;
    }
    SingleLevelStore store2(s.w.disk.get());
    Kernel k2;
    PhaseTimer timer(s.w.disk.get());
    if (store2.Recover(&k2) != Status::kOk) {
      state.SkipWithError("recover failed");
      return;
    }
    state.SetIterationTime(timer.Seconds());
    state.counters["objects"] = ::benchmark::Counter(static_cast<double>(k2.ObjectCount()));
    state.counters["labels_interned"] =
        ::benchmark::Counter(static_cast<double>(k2.label_registry().size()));
    CurrentThread::Set(kInvalidObject);
  }
  state.counters["files"] = ::benchmark::Counter(static_cast<double>(n));
}
BENCHMARK(BM_HiStarRestoreLabelHeavy)
    ->Arg(1000)
    ->ArgName("files")
    ->UseManualTime()
    ->Unit(::benchmark::kMillisecond)
    ->Iterations(1);

// ---- engine rows (PR 8: blob vs Bε-tree under the same store) ---------------
//
// Two machine-checked comparisons between the original blob engine and the
// message-batched Bε-tree engine, emitted into BENCH_pr8.json by
// scripts/bench_json.sh and asserted by scripts/check_bench_pr8.sh:
//   * dirty-1000 checkpoint: the blob engine writes one blob per dirty
//     object (~n+3 device writes); the betree engine folds the whole batch
//     into one message section (~3 writes), with total bytes within 2x of
//     the serialized payload;
//   * restore: the blob image scatters 1,000 blobs across populate epochs
//     so recovery seeks per object, while the betree image is a handful of
//     sequential node/section runs — seek count drops >= 10x.

StoreTuning EngineTuning(int64_t engine, uint64_t root_buffer_bytes) {
  StoreTuning t;
  t.engine = engine != 0 ? EngineKind::kBetree : EngineKind::kBlob;
  t.betree.root_buffer_bytes = root_buffer_bytes;
  return t;
}

void BM_EngineCheckpointDirty(::benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    // An 8 MB root buffer keeps the dirty-1000 batch inside one message
    // section: the write-op comparison is engine policy, not buffer sizing.
    StoreTuning t = EngineTuning(state.range(1), /*root_buffer_bytes=*/8ULL << 20);
    LabelHeavyWorld s = MakeLabelHeavyWorld(n, /*store_data=*/false, t);
    if (s.w.kernel->sys_sync(s.w.init()) != Status::kOk) {  // the base epoch
      state.SkipWithError("base sync failed");
      return;
    }
    std::vector<uint8_t> payload(kFileBytes, 0xcd);
    uint64_t payload_bytes = 0;
    FileSystem& fs = s.w.unix->fs();
    for (ObjectId f : s.files) {
      if (fs.WriteAt(s.w.init(), s.dir, f, payload.data(), 0, payload.size()) !=
          Status::kOk) {
        state.SkipWithError("touch failed");
        return;
      }
      std::vector<uint8_t> b;
      s.w.kernel->SerializeObject(f, &b, /*label_refs=*/true);
      payload_bytes += b.size();
    }
    uint64_t wops0 = s.w.disk->write_ops();
    uint64_t wbytes0 = s.w.disk->bytes_written();
    PhaseTimer timer(s.w.disk.get());
    if (s.w.kernel->sys_sync(s.w.init()) != Status::kOk) {
      state.SkipWithError("dirty sync failed");
      return;
    }
    state.SetIterationTime(timer.Seconds());
    state.counters["ctr_wops"] =
        ::benchmark::Counter(static_cast<double>(s.w.disk->write_ops() - wops0));
    state.counters["ctr_wbytes"] =
        ::benchmark::Counter(static_cast<double>(s.w.disk->bytes_written() - wbytes0));
    state.counters["ctr_payload"] = ::benchmark::Counter(static_cast<double>(payload_bytes));
    state.counters["ctr_was_base"] =
        ::benchmark::Counter(s.w.store->last_commit_was_base() ? 1 : 0);
    CurrentThread::Set(kInvalidObject);
  }
  state.counters["files"] = ::benchmark::Counter(static_cast<double>(n));
}
BENCHMARK(BM_EngineCheckpointDirty)
    ->ArgsProduct({{1000}, {0, 1}})
    ->ArgNames({"files", "engine"})
    ->UseManualTime()
    ->Unit(::benchmark::kMillisecond)
    ->Iterations(1);

void BM_EngineRestore(::benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    // A 256 KB root buffer forces real tree-node flushes during the
    // multi-epoch populate, so the betree image is nodes + a short message
    // chain rather than one giant root buffer.
    StoreTuning t = EngineTuning(state.range(1), /*root_buffer_bytes=*/256 << 10);
    LabelHeavyWorld s =
        MakeLabelHeavyWorld(n, /*store_data=*/true, t, /*sync_every=*/100);
    if (s.w.kernel->sys_sync(s.w.init()) != Status::kOk) {
      state.SkipWithError("sync failed");
      return;
    }
    SingleLevelStore store2(s.w.disk.get(), t);
    Kernel k2;
    uint64_t seeks0 = s.w.disk->seek_ops();
    uint64_t rops0 = s.w.disk->read_ops();
    PhaseTimer timer(s.w.disk.get());
    if (store2.Recover(&k2) != Status::kOk) {
      state.SkipWithError("recover failed");
      return;
    }
    state.SetIterationTime(timer.Seconds());
    state.counters["ctr_seeks"] =
        ::benchmark::Counter(static_cast<double>(s.w.disk->seek_ops() - seeks0));
    state.counters["ctr_rops"] =
        ::benchmark::Counter(static_cast<double>(s.w.disk->read_ops() - rops0));
    state.counters["ctr_objects"] =
        ::benchmark::Counter(static_cast<double>(k2.ObjectCount()));
    CurrentThread::Set(kInvalidObject);
  }
  state.counters["files"] = ::benchmark::Counter(static_cast<double>(n));
}
BENCHMARK(BM_EngineRestore)
    ->ArgsProduct({{1000}, {0, 1}})
    ->ArgNames({"files", "engine"})
    ->UseManualTime()
    ->Unit(::benchmark::kMillisecond)
    ->Iterations(1);

// ---- ext3-flavored baseline phases ---------------------------------------------

monosim::MonoFs MakeMonoFs(std::unique_ptr<DiskModel>* disk_out) {
  DiskGeometry g;
  g.capacity_bytes = 2ULL << 30;
  g.store_data = false;
  auto disk = std::make_unique<DiskModel>(g);
  monosim::MonoFs fs(disk.get());
  if (fs.Mkfs() != Status::kOk) {
    std::abort();
  }
  *disk_out = std::move(disk);
  return fs;
}

void BM_BaselineCreate(::benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const SyncMode mode = static_cast<SyncMode>(state.range(1));
  for (auto _ : state) {
    std::unique_ptr<DiskModel> disk;
    monosim::MonoFs fs = MakeMonoFs(&disk);
    std::vector<uint8_t> payload(kFileBytes, 0xcd);
    PhaseTimer timer(disk.get());
    for (int i = 0; i < n; ++i) {
      Result<uint64_t> ino = fs.Create(FileName(i));
      if (!ino.ok() ||
          fs.Write(ino.value(), 0, payload.data(), payload.size()) != Status::kOk) {
        state.SkipWithError("create failed");
        return;
      }
      if (mode == SyncMode::kPerFile && fs.Fsync(ino.value()) != Status::kOk) {
        state.SkipWithError("fsync failed");
        return;
      }
    }
    if (mode == SyncMode::kGroup && fs.SyncAll() != Status::kOk) {
      state.SkipWithError("sync failed");
      return;
    }
    state.SetIterationTime(timer.Seconds());
  }
  state.counters["files"] = ::benchmark::Counter(static_cast<double>(n));
}
BENCHMARK(BM_BaselineCreate)
    ->ArgsProduct({{1000}, {0, 1, 2}})
    ->ArgNames({"files", "sync"})
    ->UseManualTime()
    ->Unit(::benchmark::kMillisecond)
    ->Iterations(1);

void BM_BaselineReadUncached(::benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const bool lookahead = state.range(1) != 0;
  for (auto _ : state) {
    std::unique_ptr<DiskModel> disk;
    monosim::MonoFs fs = MakeMonoFs(&disk);
    std::vector<uint8_t> payload(kFileBytes, 0xcd);
    std::vector<uint64_t> inos;
    for (int i = 0; i < n; ++i) {
      Result<uint64_t> ino = fs.Create(FileName(i));
      if (!ino.ok() ||
          fs.Write(ino.value(), 0, payload.data(), payload.size()) != Status::kOk) {
        state.SkipWithError("create failed");
        return;
      }
      inos.push_back(ino.value());
    }
    if (fs.SyncAll() != Status::kOk) {
      state.SkipWithError("sync failed");
      return;
    }
    fs.DropCaches();
    disk->set_lookahead_enabled(lookahead);
    PhaseTimer timer(disk.get());
    std::vector<uint8_t> buf(kFileBytes);
    for (uint64_t ino : inos) {
      if (!fs.Read(ino, 0, buf.data(), buf.size()).ok()) {
        state.SkipWithError("read failed");
        return;
      }
    }
    state.SetIterationTime(timer.Seconds());
  }
  state.counters["files"] = ::benchmark::Counter(static_cast<double>(n));
}
BENCHMARK(BM_BaselineReadUncached)
    ->ArgsProduct({{1000}, {1, 0}})
    ->ArgNames({"files", "lookahead"})
    ->UseManualTime()
    ->Unit(::benchmark::kMillisecond)
    ->Iterations(1);

void BM_BaselineUnlink(::benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const SyncMode mode = static_cast<SyncMode>(state.range(1));
  for (auto _ : state) {
    std::unique_ptr<DiskModel> disk;
    monosim::MonoFs fs = MakeMonoFs(&disk);
    std::vector<uint8_t> payload(kFileBytes, 0xcd);
    std::vector<uint64_t> inos;
    for (int i = 0; i < n; ++i) {
      Result<uint64_t> ino = fs.Create(FileName(i));
      if (!ino.ok() ||
          fs.Write(ino.value(), 0, payload.data(), payload.size()) != Status::kOk) {
        state.SkipWithError("create failed");
        return;
      }
      inos.push_back(ino.value());
    }
    if (fs.SyncAll() != Status::kOk) {
      state.SkipWithError("sync failed");
      return;
    }
    PhaseTimer timer(disk.get());
    for (int i = 0; i < n; ++i) {
      if (fs.Unlink(FileName(i)) != Status::kOk) {
        state.SkipWithError("unlink failed");
        return;
      }
      // ext3 fsync of the directory: one journal commit, not a checkpoint —
      // the source of the paper's 456 s vs 173 s gap.
      if (mode == SyncMode::kPerFile && fs.FsyncDir() != Status::kOk) {
        state.SkipWithError("fsync failed");
        return;
      }
    }
    if (mode == SyncMode::kGroup && fs.SyncAll() != Status::kOk) {
      state.SkipWithError("sync failed");
      return;
    }
    state.SetIterationTime(timer.Seconds());
  }
  state.counters["files"] = ::benchmark::Counter(static_cast<double>(n));
}
BENCHMARK(BM_BaselineUnlink)
    ->ArgsProduct({{1000}, {0, 1, 2}})
    ->ArgNames({"files", "sync"})
    ->UseManualTime()
    ->Unit(::benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace
}  // namespace histar::bench

BENCHMARK_MAIN();
