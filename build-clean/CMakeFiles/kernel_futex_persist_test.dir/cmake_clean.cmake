file(REMOVE_RECURSE
  "CMakeFiles/kernel_futex_persist_test.dir/tests/kernel/futex_persist_test.cc.o"
  "CMakeFiles/kernel_futex_persist_test.dir/tests/kernel/futex_persist_test.cc.o.d"
  "kernel_futex_persist_test"
  "kernel_futex_persist_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_futex_persist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
