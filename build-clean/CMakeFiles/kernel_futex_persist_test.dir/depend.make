# Empty dependencies file for kernel_futex_persist_test.
# This may be replaced when dependencies are built.
