# Empty dependencies file for core_label_test.
# This may be replaced when dependencies are built.
