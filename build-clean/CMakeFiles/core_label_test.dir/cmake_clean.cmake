file(REMOVE_RECURSE
  "CMakeFiles/core_label_test.dir/tests/core/label_test.cc.o"
  "CMakeFiles/core_label_test.dir/tests/core/label_test.cc.o.d"
  "core_label_test"
  "core_label_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_label_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
