# Empty dependencies file for bench_fig12_ipc.
# This may be replaced when dependencies are built.
