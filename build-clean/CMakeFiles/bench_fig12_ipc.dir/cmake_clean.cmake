file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_ipc.dir/bench/fig12_ipc.cc.o"
  "CMakeFiles/bench_fig12_ipc.dir/bench/fig12_ipc.cc.o.d"
  "bench_fig12_ipc"
  "bench_fig12_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
