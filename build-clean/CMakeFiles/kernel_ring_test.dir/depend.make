# Empty dependencies file for kernel_ring_test.
# This may be replaced when dependencies are built.
