file(REMOVE_RECURSE
  "CMakeFiles/kernel_ring_test.dir/tests/kernel/ring_test.cc.o"
  "CMakeFiles/kernel_ring_test.dir/tests/kernel/ring_test.cc.o.d"
  "kernel_ring_test"
  "kernel_ring_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_ring_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
