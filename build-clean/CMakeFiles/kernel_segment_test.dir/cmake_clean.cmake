file(REMOVE_RECURSE
  "CMakeFiles/kernel_segment_test.dir/tests/kernel/segment_test.cc.o"
  "CMakeFiles/kernel_segment_test.dir/tests/kernel/segment_test.cc.o.d"
  "kernel_segment_test"
  "kernel_segment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_segment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
