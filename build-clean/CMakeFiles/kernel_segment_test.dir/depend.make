# Empty dependencies file for kernel_segment_test.
# This may be replaced when dependencies are built.
