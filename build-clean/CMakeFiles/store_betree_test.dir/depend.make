# Empty dependencies file for store_betree_test.
# This may be replaced when dependencies are built.
