file(REMOVE_RECURSE
  "CMakeFiles/store_betree_test.dir/tests/store/betree_test.cc.o"
  "CMakeFiles/store_betree_test.dir/tests/store/betree_test.cc.o.d"
  "store_betree_test"
  "store_betree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_betree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
