file(REMOVE_RECURSE
  "CMakeFiles/store_superblock_fault_test.dir/tests/store/superblock_fault_test.cc.o"
  "CMakeFiles/store_superblock_fault_test.dir/tests/store/superblock_fault_test.cc.o.d"
  "store_superblock_fault_test"
  "store_superblock_fault_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_superblock_fault_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
