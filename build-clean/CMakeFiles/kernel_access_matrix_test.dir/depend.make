# Empty dependencies file for kernel_access_matrix_test.
# This may be replaced when dependencies are built.
