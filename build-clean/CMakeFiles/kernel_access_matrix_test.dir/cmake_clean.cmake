file(REMOVE_RECURSE
  "CMakeFiles/kernel_access_matrix_test.dir/tests/kernel/access_matrix_test.cc.o"
  "CMakeFiles/kernel_access_matrix_test.dir/tests/kernel/access_matrix_test.cc.o.d"
  "kernel_access_matrix_test"
  "kernel_access_matrix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_access_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
