file(REMOVE_RECURSE
  "CMakeFiles/unixlib_gatecall_test.dir/tests/unixlib/gatecall_test.cc.o"
  "CMakeFiles/unixlib_gatecall_test.dir/tests/unixlib/gatecall_test.cc.o.d"
  "unixlib_gatecall_test"
  "unixlib_gatecall_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unixlib_gatecall_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
