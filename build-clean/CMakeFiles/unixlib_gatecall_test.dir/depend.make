# Empty dependencies file for unixlib_gatecall_test.
# This may be replaced when dependencies are built.
