# Empty dependencies file for kernel_gate_security_test.
# This may be replaced when dependencies are built.
