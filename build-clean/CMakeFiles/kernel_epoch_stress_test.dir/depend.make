# Empty dependencies file for kernel_epoch_stress_test.
# This may be replaced when dependencies are built.
