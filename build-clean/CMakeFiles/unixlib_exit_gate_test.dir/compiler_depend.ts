# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for unixlib_exit_gate_test.
