# Empty dependencies file for unixlib_exit_gate_test.
# This may be replaced when dependencies are built.
