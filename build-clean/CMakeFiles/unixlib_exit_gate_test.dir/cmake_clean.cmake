file(REMOVE_RECURSE
  "CMakeFiles/unixlib_exit_gate_test.dir/tests/unixlib/exit_gate_test.cc.o"
  "CMakeFiles/unixlib_exit_gate_test.dir/tests/unixlib/exit_gate_test.cc.o.d"
  "unixlib_exit_gate_test"
  "unixlib_exit_gate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unixlib_exit_gate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
