# Empty dependencies file for apps_scanner_test.
# This may be replaced when dependencies are built.
