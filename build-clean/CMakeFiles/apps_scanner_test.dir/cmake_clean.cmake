file(REMOVE_RECURSE
  "CMakeFiles/apps_scanner_test.dir/tests/apps/scanner_test.cc.o"
  "CMakeFiles/apps_scanner_test.dir/tests/apps/scanner_test.cc.o.d"
  "apps_scanner_test"
  "apps_scanner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_scanner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
