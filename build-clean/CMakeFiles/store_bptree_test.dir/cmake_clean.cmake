file(REMOVE_RECURSE
  "CMakeFiles/store_bptree_test.dir/tests/store/bptree_test.cc.o"
  "CMakeFiles/store_bptree_test.dir/tests/store/bptree_test.cc.o.d"
  "store_bptree_test"
  "store_bptree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_bptree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
