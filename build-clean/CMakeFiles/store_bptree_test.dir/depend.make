# Empty dependencies file for store_bptree_test.
# This may be replaced when dependencies are built.
