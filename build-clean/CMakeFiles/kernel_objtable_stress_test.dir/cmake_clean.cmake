file(REMOVE_RECURSE
  "CMakeFiles/kernel_objtable_stress_test.dir/tests/kernel/objtable_stress_test.cc.o"
  "CMakeFiles/kernel_objtable_stress_test.dir/tests/kernel/objtable_stress_test.cc.o.d"
  "kernel_objtable_stress_test"
  "kernel_objtable_stress_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_objtable_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
