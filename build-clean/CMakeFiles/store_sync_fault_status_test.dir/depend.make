# Empty dependencies file for store_sync_fault_status_test.
# This may be replaced when dependencies are built.
