# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for store_sync_fault_status_test.
