file(REMOVE_RECURSE
  "CMakeFiles/store_sync_fault_status_test.dir/tests/store/sync_fault_status_test.cc.o"
  "CMakeFiles/store_sync_fault_status_test.dir/tests/store/sync_fault_status_test.cc.o.d"
  "store_sync_fault_status_test"
  "store_sync_fault_status_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_sync_fault_status_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
