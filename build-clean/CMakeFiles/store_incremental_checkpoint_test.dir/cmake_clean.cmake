file(REMOVE_RECURSE
  "CMakeFiles/store_incremental_checkpoint_test.dir/tests/store/incremental_checkpoint_test.cc.o"
  "CMakeFiles/store_incremental_checkpoint_test.dir/tests/store/incremental_checkpoint_test.cc.o.d"
  "store_incremental_checkpoint_test"
  "store_incremental_checkpoint_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_incremental_checkpoint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
