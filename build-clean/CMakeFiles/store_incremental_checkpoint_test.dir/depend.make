# Empty dependencies file for store_incremental_checkpoint_test.
# This may be replaced when dependencies are built.
