file(REMOVE_RECURSE
  "CMakeFiles/auth_auth_test.dir/tests/auth/auth_test.cc.o"
  "CMakeFiles/auth_auth_test.dir/tests/auth/auth_test.cc.o.d"
  "auth_auth_test"
  "auth_auth_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/auth_auth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
