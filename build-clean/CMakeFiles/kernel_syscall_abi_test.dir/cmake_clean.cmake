file(REMOVE_RECURSE
  "CMakeFiles/kernel_syscall_abi_test.dir/tests/kernel/syscall_abi_test.cc.o"
  "CMakeFiles/kernel_syscall_abi_test.dir/tests/kernel/syscall_abi_test.cc.o.d"
  "kernel_syscall_abi_test"
  "kernel_syscall_abi_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_syscall_abi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
