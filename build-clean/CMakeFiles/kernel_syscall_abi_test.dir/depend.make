# Empty dependencies file for kernel_syscall_abi_test.
# This may be replaced when dependencies are built.
