file(REMOVE_RECURSE
  "CMakeFiles/unixlib_fd_test.dir/tests/unixlib/fd_test.cc.o"
  "CMakeFiles/unixlib_fd_test.dir/tests/unixlib/fd_test.cc.o.d"
  "unixlib_fd_test"
  "unixlib_fd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unixlib_fd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
