# Empty dependencies file for unixlib_fd_test.
# This may be replaced when dependencies are built.
