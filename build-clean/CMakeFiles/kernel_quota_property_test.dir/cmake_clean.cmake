file(REMOVE_RECURSE
  "CMakeFiles/kernel_quota_property_test.dir/tests/kernel/quota_property_test.cc.o"
  "CMakeFiles/kernel_quota_property_test.dir/tests/kernel/quota_property_test.cc.o.d"
  "kernel_quota_property_test"
  "kernel_quota_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_quota_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
