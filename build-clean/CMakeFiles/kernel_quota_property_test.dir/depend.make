# Empty dependencies file for kernel_quota_property_test.
# This may be replaced when dependencies are built.
