# Empty dependencies file for core_epoch_test.
# This may be replaced when dependencies are built.
