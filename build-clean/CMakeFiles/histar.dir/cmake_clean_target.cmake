file(REMOVE_RECURSE
  "libhistar.a"
)
