
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/scanner.cc" "CMakeFiles/histar.dir/src/apps/scanner.cc.o" "gcc" "CMakeFiles/histar.dir/src/apps/scanner.cc.o.d"
  "/root/repo/src/apps/webserver.cc" "CMakeFiles/histar.dir/src/apps/webserver.cc.o" "gcc" "CMakeFiles/histar.dir/src/apps/webserver.cc.o.d"
  "/root/repo/src/apps/wrap.cc" "CMakeFiles/histar.dir/src/apps/wrap.cc.o" "gcc" "CMakeFiles/histar.dir/src/apps/wrap.cc.o.d"
  "/root/repo/src/auth/auth.cc" "CMakeFiles/histar.dir/src/auth/auth.cc.o" "gcc" "CMakeFiles/histar.dir/src/auth/auth.cc.o.d"
  "/root/repo/src/baseline/mono_fs.cc" "CMakeFiles/histar.dir/src/baseline/mono_fs.cc.o" "gcc" "CMakeFiles/histar.dir/src/baseline/mono_fs.cc.o.d"
  "/root/repo/src/core/category.cc" "CMakeFiles/histar.dir/src/core/category.cc.o" "gcc" "CMakeFiles/histar.dir/src/core/category.cc.o.d"
  "/root/repo/src/core/epoch.cc" "CMakeFiles/histar.dir/src/core/epoch.cc.o" "gcc" "CMakeFiles/histar.dir/src/core/epoch.cc.o.d"
  "/root/repo/src/core/label.cc" "CMakeFiles/histar.dir/src/core/label.cc.o" "gcc" "CMakeFiles/histar.dir/src/core/label.cc.o.d"
  "/root/repo/src/core/label_memo.cc" "CMakeFiles/histar.dir/src/core/label_memo.cc.o" "gcc" "CMakeFiles/histar.dir/src/core/label_memo.cc.o.d"
  "/root/repo/src/core/label_registry.cc" "CMakeFiles/histar.dir/src/core/label_registry.cc.o" "gcc" "CMakeFiles/histar.dir/src/core/label_registry.cc.o.d"
  "/root/repo/src/core/status.cc" "CMakeFiles/histar.dir/src/core/status.cc.o" "gcc" "CMakeFiles/histar.dir/src/core/status.cc.o.d"
  "/root/repo/src/kernel/kernel.cc" "CMakeFiles/histar.dir/src/kernel/kernel.cc.o" "gcc" "CMakeFiles/histar.dir/src/kernel/kernel.cc.o.d"
  "/root/repo/src/kernel/kernel_batch.cc" "CMakeFiles/histar.dir/src/kernel/kernel_batch.cc.o" "gcc" "CMakeFiles/histar.dir/src/kernel/kernel_batch.cc.o.d"
  "/root/repo/src/kernel/kernel_persist.cc" "CMakeFiles/histar.dir/src/kernel/kernel_persist.cc.o" "gcc" "CMakeFiles/histar.dir/src/kernel/kernel_persist.cc.o.d"
  "/root/repo/src/kernel/kernel_seg.cc" "CMakeFiles/histar.dir/src/kernel/kernel_seg.cc.o" "gcc" "CMakeFiles/histar.dir/src/kernel/kernel_seg.cc.o.d"
  "/root/repo/src/kernel/kernel_thread.cc" "CMakeFiles/histar.dir/src/kernel/kernel_thread.cc.o" "gcc" "CMakeFiles/histar.dir/src/kernel/kernel_thread.cc.o.d"
  "/root/repo/src/kernel/ring.cc" "CMakeFiles/histar.dir/src/kernel/ring.cc.o" "gcc" "CMakeFiles/histar.dir/src/kernel/ring.cc.o.d"
  "/root/repo/src/kernel/syscall_abi.cc" "CMakeFiles/histar.dir/src/kernel/syscall_abi.cc.o" "gcc" "CMakeFiles/histar.dir/src/kernel/syscall_abi.cc.o.d"
  "/root/repo/src/net/netd.cc" "CMakeFiles/histar.dir/src/net/netd.cc.o" "gcc" "CMakeFiles/histar.dir/src/net/netd.cc.o.d"
  "/root/repo/src/net/vpn.cc" "CMakeFiles/histar.dir/src/net/vpn.cc.o" "gcc" "CMakeFiles/histar.dir/src/net/vpn.cc.o.d"
  "/root/repo/src/net/wire.cc" "CMakeFiles/histar.dir/src/net/wire.cc.o" "gcc" "CMakeFiles/histar.dir/src/net/wire.cc.o.d"
  "/root/repo/src/store/betree.cc" "CMakeFiles/histar.dir/src/store/betree.cc.o" "gcc" "CMakeFiles/histar.dir/src/store/betree.cc.o.d"
  "/root/repo/src/store/disk_model.cc" "CMakeFiles/histar.dir/src/store/disk_model.cc.o" "gcc" "CMakeFiles/histar.dir/src/store/disk_model.cc.o.d"
  "/root/repo/src/store/engine.cc" "CMakeFiles/histar.dir/src/store/engine.cc.o" "gcc" "CMakeFiles/histar.dir/src/store/engine.cc.o.d"
  "/root/repo/src/store/extent_alloc.cc" "CMakeFiles/histar.dir/src/store/extent_alloc.cc.o" "gcc" "CMakeFiles/histar.dir/src/store/extent_alloc.cc.o.d"
  "/root/repo/src/store/single_level_store.cc" "CMakeFiles/histar.dir/src/store/single_level_store.cc.o" "gcc" "CMakeFiles/histar.dir/src/store/single_level_store.cc.o.d"
  "/root/repo/src/store/store_alloc.cc" "CMakeFiles/histar.dir/src/store/store_alloc.cc.o" "gcc" "CMakeFiles/histar.dir/src/store/store_alloc.cc.o.d"
  "/root/repo/src/unixlib/fs.cc" "CMakeFiles/histar.dir/src/unixlib/fs.cc.o" "gcc" "CMakeFiles/histar.dir/src/unixlib/fs.cc.o.d"
  "/root/repo/src/unixlib/process.cc" "CMakeFiles/histar.dir/src/unixlib/process.cc.o" "gcc" "CMakeFiles/histar.dir/src/unixlib/process.cc.o.d"
  "/root/repo/src/unixlib/unix.cc" "CMakeFiles/histar.dir/src/unixlib/unix.cc.o" "gcc" "CMakeFiles/histar.dir/src/unixlib/unix.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
