# Empty dependencies file for histar.
# This may be replaced when dependencies are built.
