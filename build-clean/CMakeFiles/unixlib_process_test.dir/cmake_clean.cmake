file(REMOVE_RECURSE
  "CMakeFiles/unixlib_process_test.dir/tests/unixlib/process_test.cc.o"
  "CMakeFiles/unixlib_process_test.dir/tests/unixlib/process_test.cc.o.d"
  "unixlib_process_test"
  "unixlib_process_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unixlib_process_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
