# Empty dependencies file for unixlib_process_test.
# This may be replaced when dependencies are built.
