# Empty dependencies file for bench_ablation_objtable.
# This may be replaced when dependencies are built.
