file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_objtable.dir/bench/ablation_objtable.cc.o"
  "CMakeFiles/bench_ablation_objtable.dir/bench/ablation_objtable.cc.o.d"
  "bench_ablation_objtable"
  "bench_ablation_objtable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_objtable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
