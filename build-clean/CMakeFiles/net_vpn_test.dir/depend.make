# Empty dependencies file for net_vpn_test.
# This may be replaced when dependencies are built.
