file(REMOVE_RECURSE
  "CMakeFiles/net_vpn_test.dir/tests/net/vpn_test.cc.o"
  "CMakeFiles/net_vpn_test.dir/tests/net/vpn_test.cc.o.d"
  "net_vpn_test"
  "net_vpn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_vpn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
