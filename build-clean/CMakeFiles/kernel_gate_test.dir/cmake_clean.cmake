file(REMOVE_RECURSE
  "CMakeFiles/kernel_gate_test.dir/tests/kernel/gate_test.cc.o"
  "CMakeFiles/kernel_gate_test.dir/tests/kernel/gate_test.cc.o.d"
  "kernel_gate_test"
  "kernel_gate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_gate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
