# Empty dependencies file for bench_fig12_forkexec.
# This may be replaced when dependencies are built.
