file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_forkexec.dir/bench/fig12_forkexec.cc.o"
  "CMakeFiles/bench_fig12_forkexec.dir/bench/fig12_forkexec.cc.o.d"
  "bench_fig12_forkexec"
  "bench_fig12_forkexec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_forkexec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
