# Empty dependencies file for store_crash_matrix_test.
# This may be replaced when dependencies are built.
