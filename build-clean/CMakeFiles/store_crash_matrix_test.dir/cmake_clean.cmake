file(REMOVE_RECURSE
  "CMakeFiles/store_crash_matrix_test.dir/tests/store/crash_matrix_test.cc.o"
  "CMakeFiles/store_crash_matrix_test.dir/tests/store/crash_matrix_test.cc.o.d"
  "store_crash_matrix_test"
  "store_crash_matrix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_crash_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
