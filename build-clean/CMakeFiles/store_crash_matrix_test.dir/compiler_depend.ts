# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for store_crash_matrix_test.
