file(REMOVE_RECURSE
  "CMakeFiles/kernel_batch_lock_test.dir/tests/kernel/batch_lock_test.cc.o"
  "CMakeFiles/kernel_batch_lock_test.dir/tests/kernel/batch_lock_test.cc.o.d"
  "kernel_batch_lock_test"
  "kernel_batch_lock_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_batch_lock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
