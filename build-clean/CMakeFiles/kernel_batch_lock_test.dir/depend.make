# Empty dependencies file for kernel_batch_lock_test.
# This may be replaced when dependencies are built.
