file(REMOVE_RECURSE
  "CMakeFiles/store_disk_model_latency_test.dir/tests/store/disk_model_latency_test.cc.o"
  "CMakeFiles/store_disk_model_latency_test.dir/tests/store/disk_model_latency_test.cc.o.d"
  "store_disk_model_latency_test"
  "store_disk_model_latency_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_disk_model_latency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
