# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for store_disk_model_latency_test.
