# Empty dependencies file for store_disk_model_latency_test.
# This may be replaced when dependencies are built.
