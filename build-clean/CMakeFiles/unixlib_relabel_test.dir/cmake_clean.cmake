file(REMOVE_RECURSE
  "CMakeFiles/unixlib_relabel_test.dir/tests/unixlib/relabel_test.cc.o"
  "CMakeFiles/unixlib_relabel_test.dir/tests/unixlib/relabel_test.cc.o.d"
  "unixlib_relabel_test"
  "unixlib_relabel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unixlib_relabel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
