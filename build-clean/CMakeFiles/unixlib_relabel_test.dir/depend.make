# Empty dependencies file for unixlib_relabel_test.
# This may be replaced when dependencies are built.
