file(REMOVE_RECURSE
  "CMakeFiles/kernel_address_space_test.dir/tests/kernel/address_space_test.cc.o"
  "CMakeFiles/kernel_address_space_test.dir/tests/kernel/address_space_test.cc.o.d"
  "kernel_address_space_test"
  "kernel_address_space_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_address_space_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
