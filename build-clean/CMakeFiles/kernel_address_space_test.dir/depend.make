# Empty dependencies file for kernel_address_space_test.
# This may be replaced when dependencies are built.
