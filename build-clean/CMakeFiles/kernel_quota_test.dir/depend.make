# Empty dependencies file for kernel_quota_test.
# This may be replaced when dependencies are built.
