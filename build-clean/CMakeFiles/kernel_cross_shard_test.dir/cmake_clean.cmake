file(REMOVE_RECURSE
  "CMakeFiles/kernel_cross_shard_test.dir/tests/kernel/cross_shard_test.cc.o"
  "CMakeFiles/kernel_cross_shard_test.dir/tests/kernel/cross_shard_test.cc.o.d"
  "kernel_cross_shard_test"
  "kernel_cross_shard_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_cross_shard_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
