# Empty dependencies file for kernel_cross_shard_test.
# This may be replaced when dependencies are built.
