file(REMOVE_RECURSE
  "CMakeFiles/integration_persist_world_test.dir/tests/integration/persist_world_test.cc.o"
  "CMakeFiles/integration_persist_world_test.dir/tests/integration/persist_world_test.cc.o.d"
  "integration_persist_world_test"
  "integration_persist_world_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_persist_world_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
