# Empty dependencies file for integration_persist_world_test.
# This may be replaced when dependencies are built.
