# Empty dependencies file for apps_webserver_test.
# This may be replaced when dependencies are built.
