file(REMOVE_RECURSE
  "CMakeFiles/apps_webserver_test.dir/tests/apps/webserver_test.cc.o"
  "CMakeFiles/apps_webserver_test.dir/tests/apps/webserver_test.cc.o.d"
  "apps_webserver_test"
  "apps_webserver_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_webserver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
