file(REMOVE_RECURSE
  "CMakeFiles/store_store_test.dir/tests/store/store_test.cc.o"
  "CMakeFiles/store_store_test.dir/tests/store/store_test.cc.o.d"
  "store_store_test"
  "store_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
