# Empty dependencies file for kernel_hot_path_audit_test.
# This may be replaced when dependencies are built.
