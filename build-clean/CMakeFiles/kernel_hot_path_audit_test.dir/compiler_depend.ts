# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for kernel_hot_path_audit_test.
