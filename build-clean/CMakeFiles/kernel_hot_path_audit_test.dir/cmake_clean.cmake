file(REMOVE_RECURSE
  "CMakeFiles/kernel_hot_path_audit_test.dir/tests/kernel/hot_path_audit_test.cc.o"
  "CMakeFiles/kernel_hot_path_audit_test.dir/tests/kernel/hot_path_audit_test.cc.o.d"
  "kernel_hot_path_audit_test"
  "kernel_hot_path_audit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_hot_path_audit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
