file(REMOVE_RECURSE
  "CMakeFiles/apps_update_test.dir/tests/apps/update_test.cc.o"
  "CMakeFiles/apps_update_test.dir/tests/apps/update_test.cc.o.d"
  "apps_update_test"
  "apps_update_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_update_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
