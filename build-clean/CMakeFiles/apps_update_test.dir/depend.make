# Empty dependencies file for apps_update_test.
# This may be replaced when dependencies are built.
