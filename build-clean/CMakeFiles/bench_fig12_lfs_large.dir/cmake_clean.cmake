file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_lfs_large.dir/bench/fig12_lfs_large.cc.o"
  "CMakeFiles/bench_fig12_lfs_large.dir/bench/fig12_lfs_large.cc.o.d"
  "bench_fig12_lfs_large"
  "bench_fig12_lfs_large.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_lfs_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
