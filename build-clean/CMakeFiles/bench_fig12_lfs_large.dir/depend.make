# Empty dependencies file for bench_fig12_lfs_large.
# This may be replaced when dependencies are built.
