file(REMOVE_RECURSE
  "CMakeFiles/net_netd_close_test.dir/tests/net/netd_close_test.cc.o"
  "CMakeFiles/net_netd_close_test.dir/tests/net/netd_close_test.cc.o.d"
  "net_netd_close_test"
  "net_netd_close_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_netd_close_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
