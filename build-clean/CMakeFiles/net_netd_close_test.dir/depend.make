# Empty dependencies file for net_netd_close_test.
# This may be replaced when dependencies are built.
