file(REMOVE_RECURSE
  "CMakeFiles/core_category_test.dir/tests/core/category_test.cc.o"
  "CMakeFiles/core_category_test.dir/tests/core/category_test.cc.o.d"
  "core_category_test"
  "core_category_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_category_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
