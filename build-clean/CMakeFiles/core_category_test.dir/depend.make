# Empty dependencies file for core_category_test.
# This may be replaced when dependencies are built.
