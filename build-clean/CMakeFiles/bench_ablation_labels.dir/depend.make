# Empty dependencies file for bench_ablation_labels.
# This may be replaced when dependencies are built.
