file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_labels.dir/bench/ablation_labels.cc.o"
  "CMakeFiles/bench_ablation_labels.dir/bench/ablation_labels.cc.o.d"
  "bench_ablation_labels"
  "bench_ablation_labels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_labels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
