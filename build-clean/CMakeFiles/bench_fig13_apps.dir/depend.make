# Empty dependencies file for bench_fig13_apps.
# This may be replaced when dependencies are built.
