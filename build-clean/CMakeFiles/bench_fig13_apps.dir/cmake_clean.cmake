file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_apps.dir/bench/fig13_apps.cc.o"
  "CMakeFiles/bench_fig13_apps.dir/bench/fig13_apps.cc.o.d"
  "bench_fig13_apps"
  "bench_fig13_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
