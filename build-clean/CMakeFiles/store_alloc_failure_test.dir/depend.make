# Empty dependencies file for store_alloc_failure_test.
# This may be replaced when dependencies are built.
