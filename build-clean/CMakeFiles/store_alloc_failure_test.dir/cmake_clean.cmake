file(REMOVE_RECURSE
  "CMakeFiles/store_alloc_failure_test.dir/tests/store/alloc_failure_test.cc.o"
  "CMakeFiles/store_alloc_failure_test.dir/tests/store/alloc_failure_test.cc.o.d"
  "store_alloc_failure_test"
  "store_alloc_failure_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_alloc_failure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
