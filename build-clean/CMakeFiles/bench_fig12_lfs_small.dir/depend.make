# Empty dependencies file for bench_fig12_lfs_small.
# This may be replaced when dependencies are built.
