file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_lfs_small.dir/bench/fig12_lfs_small.cc.o"
  "CMakeFiles/bench_fig12_lfs_small.dir/bench/fig12_lfs_small.cc.o.d"
  "bench_fig12_lfs_small"
  "bench_fig12_lfs_small.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_lfs_small.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
