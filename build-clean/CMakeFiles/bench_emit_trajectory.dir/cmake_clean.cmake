file(REMOVE_RECURSE
  "CMakeFiles/bench_emit_trajectory.dir/bench/emit_trajectory.cc.o"
  "CMakeFiles/bench_emit_trajectory.dir/bench/emit_trajectory.cc.o.d"
  "bench_emit_trajectory"
  "bench_emit_trajectory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_emit_trajectory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
