# Empty dependencies file for bench_emit_trajectory.
# This may be replaced when dependencies are built.
