# Empty dependencies file for kernel_thread_test.
# This may be replaced when dependencies are built.
