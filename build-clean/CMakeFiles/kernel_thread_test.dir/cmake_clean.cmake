file(REMOVE_RECURSE
  "CMakeFiles/kernel_thread_test.dir/tests/kernel/thread_test.cc.o"
  "CMakeFiles/kernel_thread_test.dir/tests/kernel/thread_test.cc.o.d"
  "kernel_thread_test"
  "kernel_thread_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_thread_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
