# Empty dependencies file for baseline_mono_fs_test.
# This may be replaced when dependencies are built.
