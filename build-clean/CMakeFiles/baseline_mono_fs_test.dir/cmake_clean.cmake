file(REMOVE_RECURSE
  "CMakeFiles/baseline_mono_fs_test.dir/tests/baseline/mono_fs_test.cc.o"
  "CMakeFiles/baseline_mono_fs_test.dir/tests/baseline/mono_fs_test.cc.o.d"
  "baseline_mono_fs_test"
  "baseline_mono_fs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_mono_fs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
