file(REMOVE_RECURSE
  "CMakeFiles/store_recovery_crash_test.dir/tests/store/recovery_crash_test.cc.o"
  "CMakeFiles/store_recovery_crash_test.dir/tests/store/recovery_crash_test.cc.o.d"
  "store_recovery_crash_test"
  "store_recovery_crash_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_recovery_crash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
