# Empty dependencies file for store_recovery_crash_test.
# This may be replaced when dependencies are built.
