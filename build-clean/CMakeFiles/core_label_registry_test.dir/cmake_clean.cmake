file(REMOVE_RECURSE
  "CMakeFiles/core_label_registry_test.dir/tests/core/label_registry_test.cc.o"
  "CMakeFiles/core_label_registry_test.dir/tests/core/label_registry_test.cc.o.d"
  "core_label_registry_test"
  "core_label_registry_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_label_registry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
