# Empty dependencies file for kernel_container_test.
# This may be replaced when dependencies are built.
