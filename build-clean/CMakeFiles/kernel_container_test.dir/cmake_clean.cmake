file(REMOVE_RECURSE
  "CMakeFiles/kernel_container_test.dir/tests/kernel/container_test.cc.o"
  "CMakeFiles/kernel_container_test.dir/tests/kernel/container_test.cc.o.d"
  "kernel_container_test"
  "kernel_container_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_container_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
