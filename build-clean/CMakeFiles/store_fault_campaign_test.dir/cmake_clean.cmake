file(REMOVE_RECURSE
  "CMakeFiles/store_fault_campaign_test.dir/tests/store/fault_campaign_test.cc.o"
  "CMakeFiles/store_fault_campaign_test.dir/tests/store/fault_campaign_test.cc.o.d"
  "store_fault_campaign_test"
  "store_fault_campaign_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_fault_campaign_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
