file(REMOVE_RECURSE
  "CMakeFiles/unixlib_fs_test.dir/tests/unixlib/fs_test.cc.o"
  "CMakeFiles/unixlib_fs_test.dir/tests/unixlib/fs_test.cc.o.d"
  "unixlib_fs_test"
  "unixlib_fs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unixlib_fs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
