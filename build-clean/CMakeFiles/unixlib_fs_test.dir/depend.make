# Empty dependencies file for unixlib_fs_test.
# This may be replaced when dependencies are built.
