# Empty dependencies file for net_netd_test.
# This may be replaced when dependencies are built.
