# Empty dependencies file for apps_wrap_isolation_test.
# This may be replaced when dependencies are built.
