file(REMOVE_RECURSE
  "CMakeFiles/apps_wrap_isolation_test.dir/tests/apps/wrap_isolation_test.cc.o"
  "CMakeFiles/apps_wrap_isolation_test.dir/tests/apps/wrap_isolation_test.cc.o.d"
  "apps_wrap_isolation_test"
  "apps_wrap_isolation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apps_wrap_isolation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
