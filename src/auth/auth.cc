#include "src/auth/auth.h"

#include <cstring>

#include "src/core/label_memo.h"

namespace histar {

namespace {

// Host-side registries: gate closures carry a registry id, standing in for
// the daemon state a real gate entry would reach through its address space.
Mutex g_log_mu;
std::map<uint64_t, LogService*> g_logs GUARDED_BY(g_log_mu);
uint64_t g_next_log_id GUARDED_BY(g_log_mu) = 1;

Mutex g_auth_mu;
std::map<uint64_t, AuthSystem*> g_auths GUARDED_BY(g_auth_mu);
uint64_t g_next_auth_id GUARDED_BY(g_auth_mu) = 1;

// Thread-local segment layout used by the auth protocol.
constexpr uint64_t kArgA = 0;     // generic args
constexpr uint64_t kArgB = 8;
constexpr uint64_t kArgC = 16;
constexpr uint64_t kArgX = 64;    // x category handoff (setup → mksession)
constexpr uint64_t kRespBase = 256;
constexpr uint64_t kNameLen = 512;  // [len][bytes] for names/passwords/log lines
constexpr uint64_t kNameBytes = 520;

// Computes the natural request label for crossing `gate`: the floor
// (L_T^J ⊔ L_G^J)^⋆ — keep your taint, take the gate's grant. Interned per
// (thread label, gate label) pair so repeated daemon calls reuse one copy.
Label FloorLabel(Kernel* k, ObjectId self, ContainerEntry gate) {
  Label mine = k->sys_self_get_label(self).value();
  Result<Label> gl = k->sys_obj_get_label(self, gate);
  if (!gl.ok()) {
    return mine;
  }
  return GateFloorMemo::Global().Floor(mine, gl.value());
}

// Writes a [len][bytes] string at `off` in the caller's local segment.
Status PutLocalString(Kernel* k, ObjectId self, uint64_t off, const std::string& s) {
  uint64_t len = s.size();
  Status st = k->sys_self_local_write(self, &len, off, 8);
  if (st != Status::kOk) {
    return st;
  }
  return k->sys_self_local_write(self, s.data(), off + 8, len);
}

std::string GetLocalString(Kernel* k, ObjectId self, uint64_t off) {
  uint64_t len = 0;
  k->sys_self_local_read(self, &len, off, 8);
  if (len > 256) {
    return "";
  }
  std::string s(len, '\0');
  k->sys_self_local_read(self, s.data(), off + 8, len);
  return s;
}

uint64_t GetLocalWord(Kernel* k, ObjectId self, uint64_t off) {
  uint64_t v = 0;
  k->sys_self_local_read(self, &v, off, 8);
  return v;
}

void PutLocalWord(Kernel* k, ObjectId self, uint64_t off, uint64_t v) {
  k->sys_self_local_write(self, &v, off, 8);
}

}  // namespace

// ---- LogService ---------------------------------------------------------------

void LogAppendEntry(GateCall& call) {
  LogService* log = nullptr;
  {
    MutexLock lock(&g_log_mu);
    auto it = g_logs.find(call.closure[0]);
    if (it == g_logs.end()) {
      return;
    }
    log = it->second;
  }
  std::string line = GetLocalString(call.kernel, call.thread, kNameLen);
  MutexLock lock(&log->mu_);
  log->lines_.push_back(line);  // append-only by construction
}

std::unique_ptr<LogService> LogService::Start(UnixWorld* world) {
  auto log = std::unique_ptr<LogService>(new LogService());
  log->world_ = world;
  Kernel* k = world->kernel();
  ObjectId boot = world->init_thread();
  log->logw_ = k->sys_cat_create(boot).value();
  CreateSpec cspec;
  cspec.container = k->root_container();
  cspec.label = Label();
  cspec.descrip = "log-svc";
  cspec.quota = 4 << 20;
  Result<ObjectId> ct = k->sys_container_create(boot, cspec, 0);
  if (!ct.ok()) {
    return nullptr;
  }
  log->container_ = ct.value();
  {
    MutexLock lock(&g_log_mu);
    log->registry_id_ = g_next_log_id++;
    g_logs[log->registry_id_] = log.get();
  }
  k->RegisterGateEntry("log.append", LogAppendEntry);
  CreateSpec gspec;
  gspec.container = log->container_;
  gspec.descrip = "log-gate";
  // Clearance {2}: tainted threads cannot log — the reason the grant gate
  // is separate from the check gate (§6.2).
  Result<ObjectId> gate = k->sys_gate_create(boot, gspec, Label(), Label(Level::k2),
                                             "log.append", {log->registry_id_});
  if (!gate.ok()) {
    return nullptr;
  }
  log->gate_ = gate.value();
  return log;
}

Status LogService::Append(ObjectId self, const std::string& line) {
  Kernel* k = world_->kernel();
  Status st = PutLocalString(k, self, kNameLen, line);
  if (st != Status::kOk) {
    return st;
  }
  ContainerEntry gate{container_, gate_};
  Label mine = k->sys_self_get_label(self).value();
  Label clear = k->sys_self_get_clearance(self).value();
  st = k->sys_gate_invoke(self, gate, FloorLabel(k, self, gate), clear, mine);
  if (st != Status::kOk) {
    return st;
  }
  k->sys_self_set_label(self, mine);
  return Status::kOk;
}

std::vector<std::string> LogService::Lines() const {
  MutexLock lock(&mu_);
  return lines_;
}

// ---- AuthSystem gate entries -----------------------------------------------------

namespace {

AuthSystem* FindAuth(uint64_t id) {
  MutexLock lock(&g_auth_mu);
  auto it = g_auths.find(id);
  return it == g_auths.end() ? nullptr : it->second;
}

}  // namespace

// Directory service (Figure 8): username → setup gate. Trusted only to
// return the right mapping.
void DirLookupEntry(GateCall& call) {
  AuthSystem* auth = FindAuth(call.closure[0]);
  if (auth == nullptr) {
    return;
  }
  Kernel* k = call.kernel;
  std::string name = GetLocalString(k, call.thread, kNameLen);
  MutexLock lock(&auth->mu_);
  auto it = auth->users_.find(name);
  if (it == auth->users_.end()) {
    PutLocalWord(k, call.thread, kRespBase, 0);
    return;
  }
  PutLocalWord(k, call.thread, kRespBase, it->second.auth_ct);
  PutLocalWord(k, call.thread, kRespBase + 8, it->second.setup_gate);
  PutLocalWord(k, call.thread, kRespBase + 16, call.closure[1]);  // unused
}

// The user's setup gate (Figure 9 step 2). Runs with ur*/uw* (gate grant)
// and the caller's sw* — but, crucially, without pir3 clearance.
void SetupGateEntry(GateCall& call) {
  AuthSystem* auth = FindAuth(call.closure[0]);
  if (auth == nullptr) {
    return;
  }
  Kernel* k = call.kernel;
  ObjectId self = call.thread;
  ObjectId session_ct = GetLocalWord(k, self, kArgA);
  ObjectId mksession_gate = GetLocalWord(k, self, kArgB);
  std::string username;
  {
    MutexLock lock(&auth->mu_);
    for (auto& [name, rec] : auth->users_) {
      if (rec.setup_gate == call.gate.object) {
        username = name;
      }
    }
  }
  auth->log_->Append(self, "auth attempt: " + username);

  // Allocate the session's grant category x and hand it to the trusted
  // combined-privilege code via the local segment.
  CategoryId x = k->sys_cat_create(self).value();
  PutLocalWord(k, self, kArgX, x);

  // Create the retry-count segment and the check gate through the mutually
  // trusted code (Figure 10's combination of pir3 clearance and uw*). The
  // pir category is published in the gate's closure; requesting pir3 in the
  // crossing clearance is permitted because C_R ⊑ C_T ⊔ C_G and the
  // mksession gate's clearance carries {pir3, 2}.
  ContainerEntry mk{session_ct, mksession_gate};
  Result<std::vector<uint64_t>> mk_closure = k->sys_gate_get_closure(self, mk);
  if (!mk_closure.ok() || mk_closure.value().size() < 4) {
    return;
  }
  CategoryId pir = mk_closure.value()[3];
  Label mine = k->sys_self_get_label(self).value();
  Label clear = k->sys_self_get_clearance(self).value();
  Label request = FloorLabel(k, self, mk);
  Label want_clear = clear;
  want_clear.set(pir, Level::k3);
  Status st = k->sys_gate_invoke(self, mk, request, want_clear, mine);
  if (st != Status::kOk) {
    return;  // combined creation failed; login will see missing gate ids
  }
  ObjectId check_gate = GetLocalWord(k, self, kRespBase + 32);

  // The grant gate: label {ur*, uw*, 1}, clearance {x0, ur3, uw3, 2} — only
  // x owners may invoke; the clearance headroom in ur/uw is raised by the
  // grantee itself afterwards (owners may raise their own clearance).
  UnixUser user;
  {
    MutexLock lock(&auth->mu_);
    user = auth->users_[username].user;
  }
  // The gate's label must own x so L_G ⊑ C_G holds with the {x0, 2}
  // clearance guard — the same pattern as the paper's signal gate, whose
  // label carries the guarding category's ⋆.
  Label grant_label(Level::k1, {{user.ur, Level::kStar},
                                {user.uw, Level::kStar},
                                {x, Level::kStar}});
  Label grant_clear(Level::k2, {{x, Level::k0}});
  CreateSpec gspec;
  gspec.container = session_ct;
  gspec.descrip = "grant-gate";
  Result<ObjectId> grant =
      k->sys_gate_create(self, gspec, grant_label, grant_clear, "auth.grant",
                         {call.closure[0], call.closure[1]});
  PutLocalWord(k, self, kRespBase + 40, grant.ok() ? grant.value() : 0);
  PutLocalWord(k, self, kRespBase + 48, check_gate);

  // Strip the user's privileges and x before returning control to login:
  // login must not own anything it has not authenticated for.
  Label out = k->sys_self_get_label(self).value();
  out.set(user.ur, Level::k1);
  out.set(user.uw, Level::k1);
  out.set(x, Level::k1);
  k->sys_self_set_label(self, out);
}

// The mutually-trusted combined-privilege code (Figure 10): creates the
// retry-count segment {pir3, uw0, 1} and the check gate, then drops the
// borrowed pir3 clearance before returning. 30 lines of assembly in the
// paper; a function whose name both parties agreed on here.
void MkRetryEntry(GateCall& call) {
  AuthSystem* auth = FindAuth(call.closure[0]);
  if (auth == nullptr) {
    return;
  }
  Kernel* k = call.kernel;
  ObjectId self = call.thread;
  uint64_t uid = call.closure[1];
  ObjectId session_ct = call.closure[2];
  CategoryId pir = call.closure[3];
  CategoryId x = GetLocalWord(k, self, kArgX);

  UnixUser user;
  {
    MutexLock lock(&auth->mu_);
    for (auto& [name, rec] : auth->users_) {
      if (rec.uid == uid) {
        user = rec.user;
      }
    }
  }
  Label old_clear = k->sys_self_get_clearance(self).value();

  // Retry-count segment: {pir3, uw0, 1}. Zero-filled at creation — the
  // count of used attempts starts at 0, so no post-create write (which
  // would require pir3 *taint*) is needed.
  Label retry_label(Level::k1, {{pir, Level::k3}, {user.uw, Level::k0}});
  CreateSpec rspec;
  rspec.container = session_ct;
  rspec.label = retry_label;
  rspec.descrip = "retry-count";
  rspec.quota = kObjectOverheadBytes + kPageSize;
  Result<ObjectId> retry = k->sys_segment_create(self, rspec, 16);
  if (!retry.ok()) {
    return;
  }
  // Check gate: grants ur*/uw*/x* to the (pir3-tainted) password checker;
  // clearance {pir3, 2} admits tainted callers.
  Label check_label(Level::k1, {{user.ur, Level::kStar},
                                {user.uw, Level::kStar},
                                {x, Level::kStar}});
  Label check_clear(Level::k2, {{pir, Level::k3}});
  CreateSpec cspec;
  cspec.container = session_ct;
  cspec.descrip = "check-gate";
  Result<ObjectId> check =
      k->sys_gate_create(self, cspec, check_label, check_clear, "auth.check",
                         {call.closure[0], uid, retry.value(), session_ct, x});
  PutLocalWord(k, self, kRespBase + 32, check.ok() ? check.value() : 0);

  // Drop the borrowed pir3 clearance so it cannot outlive this function —
  // the precise promise the "agreed-upon code" makes to login.
  Label drop = k->sys_self_get_clearance(self).value();
  drop.set(pir, Level::k2);
  k->sys_self_set_clearance(self, drop);
  (void)old_clear;
}

// The password checker (Figure 9 step 3). Runs pir3-tainted: it can read the
// password but cannot convey it anywhere untainted — not even to the log.
void CheckGateEntry(GateCall& call) {
  AuthSystem* auth = FindAuth(call.closure[0]);
  if (auth == nullptr) {
    return;
  }
  Kernel* k = call.kernel;
  ObjectId self = call.thread;
  uint64_t uid = call.closure[1];
  ObjectId retry_seg = call.closure[2];
  ObjectId session_ct = call.closure[3];
  CategoryId x = call.closure[4];

  UnixUser user;
  ObjectId auth_ct = kInvalidObject;
  ObjectId pwhash_seg = kInvalidObject;
  {
    MutexLock lock(&auth->mu_);
    for (auto& [name, rec] : auth->users_) {
      if (rec.uid == uid) {
        user = rec.user;
        auth_ct = rec.auth_ct;
        pwhash_seg = rec.pwhash_seg;
      }
    }
  }
  bool ok = false;
  // Retry bound: per logged setup invocation (the retry segment is fresh
  // per session), at most kRetryLimit guesses.
  ContainerEntry retry{session_ct, retry_seg};
  uint64_t used = 0;
  if (k->sys_segment_read(self, retry, &used, 0, 8) == Status::kOk &&
      used < static_cast<uint64_t>(AuthSystem::kRetryLimit)) {
    uint64_t next = used + 1;
    k->sys_segment_write(self, retry, &next, 0, 8);
    std::string password = GetLocalString(k, self, kNameLen);
    uint64_t want = 0;
    if (k->sys_segment_read(self, ContainerEntry{auth_ct, pwhash_seg}, &want, 0, 8) ==
        Status::kOk) {
      ok = AuthSystem::HashPassword(password) == want;
    }
  }
  // Strip the user's categories always, and x unless the password matched:
  // x-ownership is the single bit that leaves this function.
  Label out = k->sys_self_get_label(self).value();
  out.set(user.ur, Level::k1);
  out.set(user.uw, Level::k1);
  if (!ok) {
    out.set(x, Level::k1);
  }
  k->sys_self_set_label(self, out);

  // Return through login's return gate, which launders the pir taint (login
  // owns pir; the gate carries its pre-check label).
  ObjectId return_gate = GetLocalWord(k, self, kArgC);
  ContainerEntry rg{session_ct, return_gate};
  Label mine = k->sys_self_get_label(self).value();
  Label clear = k->sys_self_get_clearance(self).value();
  k->sys_gate_invoke(self, rg, FloorLabel(k, self, rg), clear, mine);
}

// Login's return gate: the crossing itself restores privilege; no code runs.
void ReturnGateEntry(GateCall& call) {}

// The grant gate (Figure 9 step 4): clearance {x0, 2} admits only x owners;
// the gate's label carries ur*/uw*. Logs the success — possible precisely
// because this code is not tainted.
void GrantGateEntry(GateCall& call) {
  AuthSystem* auth = FindAuth(call.closure[0]);
  if (auth == nullptr) {
    return;
  }
  uint64_t uid = call.closure[1];
  std::string username;
  {
    MutexLock lock(&auth->mu_);
    for (auto& [name, rec] : auth->users_) {
      if (rec.uid == uid) {
        username = name;
      }
    }
  }
  auth->log_->Append(call.thread, "auth success: " + username);
}

// ---- AuthSystem ----------------------------------------------------------------

uint64_t AuthSystem::HashPassword(const std::string& password) {
  // FNV-1a; the paper's point is that even the *hash* stays in the user's
  // service and the cleartext stays tainted — not hash strength.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : password) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::unique_ptr<AuthSystem> AuthSystem::Start(UnixWorld* world, LogService* log) {
  auto auth = std::unique_ptr<AuthSystem>(new AuthSystem());
  auth->world_ = world;
  auth->kernel_ = world->kernel();
  auth->log_ = log;
  Kernel* k = auth->kernel_;
  ObjectId boot = world->init_thread();
  {
    MutexLock lock(&g_auth_mu);
    auth->registry_id_ = g_next_auth_id++;
    g_auths[auth->registry_id_] = auth.get();
  }
  k->RegisterGateEntry("auth.dir", DirLookupEntry);
  k->RegisterGateEntry("auth.setup", SetupGateEntry);
  k->RegisterGateEntry("auth.check", CheckGateEntry);
  k->RegisterGateEntry("auth.grant", GrantGateEntry);
  k->RegisterGateEntry("auth.mksession", MkRetryEntry);
  k->RegisterGateEntry("auth.return", ReturnGateEntry);

  CreateSpec cspec;
  cspec.container = k->root_container();
  cspec.label = Label();
  cspec.descrip = "auth-dir";
  cspec.quota = 16 << 20;
  Result<ObjectId> ct = k->sys_container_create(boot, cspec, 0);
  if (!ct.ok()) {
    return nullptr;
  }
  auth->dir_ct = ct.value();
  CreateSpec gspec;
  gspec.container = auth->dir_ct;
  gspec.descrip = "dir-gate";
  Result<ObjectId> gate = k->sys_gate_create(boot, gspec, Label(), Label(Level::k2),
                                             "auth.dir", {auth->registry_id_, 0});
  if (!gate.ok()) {
    return nullptr;
  }
  auth->dir_gate_ = gate.value();
  return auth;
}

Result<UnixUser> AuthSystem::AddUser(const std::string& name, const std::string& password) {
  Kernel* k = kernel_;
  ObjectId boot = world_->init_thread();
  Result<UnixUser> user = world_->AddUser(name);
  if (!user.ok()) {
    return user.status();
  }
  UserRecord rec;
  rec.user = user.value();
  // The per-user authentication service's container.
  CreateSpec cspec;
  cspec.container = k->root_container();
  cspec.label = Label();
  cspec.descrip = "auth-" + name;
  cspec.quota = 8 << 20;
  Result<ObjectId> ct = k->sys_container_create(boot, cspec, 0);
  if (!ct.ok()) {
    return ct.status();
  }
  rec.auth_ct = ct.value();
  // Password hash: {ur3, uw0, 1} — even a compromised service reveals only
  // the hash, never the cleartext.
  Label pw_label(Level::k1, {{rec.user.ur, Level::k3}, {rec.user.uw, Level::k0}});
  CreateSpec pspec;
  pspec.container = rec.auth_ct;
  pspec.label = pw_label;
  pspec.descrip = "pwhash";
  pspec.quota = kObjectOverheadBytes + kPageSize;
  Result<ObjectId> pw = k->sys_segment_create(boot, pspec, 16);
  if (!pw.ok()) {
    return pw.status();
  }
  rec.pwhash_seg = pw.value();
  uint64_t hash = HashPassword(password);
  Status st = k->sys_segment_write(boot, ContainerEntry{rec.auth_ct, rec.pwhash_seg}, &hash, 0,
                                   8);
  if (st != Status::kOk) {
    return st;
  }
  // The setup gate: the published doorway to this user's service.
  static std::atomic<uint64_t> next_uid{1};
  rec.uid = next_uid.fetch_add(1);
  Label setup_label(Level::k1, {{rec.user.ur, Level::kStar}, {rec.user.uw, Level::kStar}});
  CreateSpec gspec;
  gspec.container = rec.auth_ct;
  gspec.descrip = "setup-gate";
  Result<ObjectId> gate = k->sys_gate_create(boot, gspec, setup_label, Label(Level::k2),
                                             "auth.setup", {registry_id_, rec.uid});
  if (!gate.ok()) {
    return gate.status();
  }
  rec.setup_gate = gate.value();
  MutexLock lock(&mu_);
  users_[name] = rec;
  return rec.user;
}

Result<ContainerEntry> AuthSystem::LookupSetupGate(ObjectId self, const std::string& username) {
  Kernel* k = kernel_;
  Status st = PutLocalString(k, self, kNameLen, username);
  if (st != Status::kOk) {
    return st;
  }
  ContainerEntry gate{dir_ct, dir_gate_};
  Label mine = k->sys_self_get_label(self).value();
  Label clear = k->sys_self_get_clearance(self).value();
  st = k->sys_gate_invoke(self, gate, FloorLabel(k, self, gate), clear, mine);
  if (st != Status::kOk) {
    return st;
  }
  k->sys_self_set_label(self, mine);
  ObjectId ct = GetLocalWord(k, self, kRespBase);
  ObjectId sg = GetLocalWord(k, self, kRespBase + 8);
  if (ct == kInvalidObject) {
    return Status::kNotFound;
  }
  return ContainerEntry{ct, sg};
}

Result<LoginResult> AuthSystem::Login(ObjectId self, const std::string& username,
                                      const std::string& password) {
  Kernel* k = kernel_;
  // Step 1: directory lookup.
  Result<ContainerEntry> setup = LookupSetupGate(self, username);
  if (!setup.ok()) {
    return setup.status();
  }
  uint64_t uid;
  {
    MutexLock lock(&mu_);
    auto it = users_.find(username);
    if (it == users_.end()) {
      return Status::kNotFound;
    }
    uid = it->second.uid;
  }

  // Step 2 preparation: pir protects the password, sw the session.
  Label original = k->sys_self_get_label(self).value();
  Label original_clear = k->sys_self_get_clearance(self).value();
  CategoryId pir = k->sys_cat_create(self).value();
  CategoryId sw = k->sys_cat_create(self).value();
  Label session_label(Level::k1, {{sw, Level::k0}});
  CreateSpec sspec;
  sspec.container = k->root_container();
  sspec.label = session_label;
  sspec.descrip = "login-session";
  sspec.quota = 4 << 20;
  Result<ObjectId> session = k->sys_container_create(self, sspec, 0);
  if (!session.ok()) {
    return session.status();
  }

  // Return gate: carries login's post-allocation label (pir*, sw*, …); the
  // tainted checker escapes through it. Guarded so only this session's
  // check code (which holds sw*) may invoke it.
  Label rg_label = k->sys_self_get_label(self).value();
  Label rg_clear(Level::k2, {{sw, Level::k0}, {pir, Level::k3}});
  CreateSpec rgspec;
  rgspec.container = session.value();
  rgspec.descrip = "return-gate";
  Result<ObjectId> rgate =
      k->sys_gate_create(self, rgspec, rg_label, rg_clear, "auth.return", {});
  if (!rgate.ok()) {
    return rgate.status();
  }

  // The mutually-trusted code gate, clearance {pir3, 2} (Figure 10): its
  // entry is library code both parties can verify (immutable by
  // construction in the simulator).
  Label mk_clear(Level::k2, {{pir, Level::k3}});
  CreateSpec mkspec;
  mkspec.container = session.value();
  mkspec.descrip = "mksession-gate";
  Result<ObjectId> mkgate =
      k->sys_gate_create(self, mkspec, Label(), mk_clear, "auth.mksession",
                         {registry_id_, uid, session.value(), pir});
  if (!mkgate.ok()) {
    return mkgate.status();
  }

  // Step 2: invoke the setup gate, granting sw* but dropping pir ownership
  // (and pointedly not passing pir3 clearance).
  PutLocalWord(k, self, kArgA, session.value());
  PutLocalWord(k, self, kArgB, mkgate.value());
  Label setup_request = FloorLabel(k, self, setup.value());
  setup_request.set(pir, Level::k1);  // the user's code gets no pir power
  Label setup_clear = original_clear;
  setup_clear.set(sw, Level::k3);
  Status st = k->sys_gate_invoke(self, setup.value(), setup_request, setup_clear,
                                 k->sys_self_get_label(self).value());
  if (st != Status::kOk) {
    return st;
  }
  ObjectId grant_gate = GetLocalWord(k, self, kRespBase + 40);
  ObjectId check_gate = GetLocalWord(k, self, kRespBase + 48);
  if (grant_gate == 0 || check_gate == 0) {
    return Status::kNoPerm;
  }

  // Return through our own return gate to restore pir⋆ and the pir3
  // clearance headroom the setup call deliberately went without (in the
  // real system every gate call pairs with a return gate; Figure 7).
  ContainerEntry rg{session.value(), rgate.value()};
  Label post_setup_clear = k->sys_self_get_clearance(self).value();
  post_setup_clear.set(pir, Level::k3);
  st = k->sys_gate_invoke(self, rg, FloorLabel(k, self, rg), post_setup_clear,
                          k->sys_self_get_label(self).value());
  if (st != Status::kOk) {
    return st;
  }

  // Step 3: taint pir3 and check the password.
  Label tainted = k->sys_self_get_label(self).value();
  tainted.set(pir, Level::k3);
  st = k->sys_self_set_label(self, tainted);
  if (st != Status::kOk) {
    return st;
  }
  st = PutLocalString(k, self, kNameLen, password);
  if (st != Status::kOk) {
    return st;
  }
  PutLocalWord(k, self, kArgC, rgate.value());
  ContainerEntry check{session.value(), check_gate};
  Label check_clear = k->sys_self_get_clearance(self).value();
  st = k->sys_gate_invoke(self, check, FloorLabel(k, self, check), check_clear,
                          k->sys_self_get_label(self).value());
  if (st != Status::kOk) {
    return st;
  }

  // Step 4: if we own x now, the grant gate admits us.
  ContainerEntry grant{session.value(), grant_gate};
  Label grant_clear = k->sys_self_get_clearance(self).value();
  st = k->sys_gate_invoke(self, grant, FloorLabel(k, self, grant), grant_clear,
                          k->sys_self_get_label(self).value());
  LoginResult result;
  if (st == Status::kOk) {
    result.authenticated = true;
    MutexLock lock(&mu_);
    result.ur = users_[username].user.ur;
    result.uw = users_[username].user.uw;
  }

  // Clean up the thread's label: keep ur*/uw* (if granted), raise clearance
  // headroom in them (owners may), and shed the protocol categories.
  Label final_label = k->sys_self_get_label(self).value();
  Label cleaned = original;
  if (result.authenticated) {
    cleaned.set(result.ur, Level::kStar);
    cleaned.set(result.uw, Level::kStar);
  }
  // Everything else (pir, sw, x leftovers) reverts to default: dropping ⋆
  // is a raise, so this always succeeds.
  k->sys_self_set_label(self, cleaned);
  if (result.authenticated) {
    Label cl = k->sys_self_get_clearance(self).value();
    cl.set(result.ur, Level::k3);
    cl.set(result.uw, Level::k3);
    k->sys_self_set_clearance(self, cl);
  }
  (void)final_label;
  // Tear down the session (resource hygiene; the root-writable login can).
  k->sys_container_unref(self, ContainerEntry{k->root_container(), session.value()});
  return result;
}

}  // namespace histar
