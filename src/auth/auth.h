// User authentication without any highly-trusted process (paper §6.2,
// Figures 8–10).
//
// Four entities cooperate, none of which sees more than it must:
//  * the logging service — trusted only to keep an append-only log;
//  * the directory service — maps usernames to per-user setup gates;
//    trusted only to return the right gate;
//  * the per-user authentication service — owns ur/uw and grants them to
//    callers that prove knowledge of the password; never sees the password
//    in the clear beyond the tainted check step;
//  * the login client — owns the password; trusts nobody with it. Even a
//    malicious authentication service learns at most ONE BIT (success or
//    failure) about the password.
//
// The protocol (Figure 9):
//  1. login asks the directory for the user's setup gate;
//  2. login allocates pir (password read) and sw (session write), creates
//     the session container {sw0, 1}, and invokes the setup gate granting
//     sw⋆ — but withholding pir3 *clearance*, so the user's code cannot mint
//     long-lived pir3 objects. The setup code allocates x, builds the check
//     and grant gates in the session container, and creates the retry-count
//     segment {pir3, uw0, 1} through a mutually-trusted code gate that
//     momentarily combines login's pir3 clearance with the user's uw⋆
//     (Figure 10's two-party computation);
//  3. login invokes the check gate tainted pir3. The check code verifies
//     the password against the stored hash, bounded by the retry count; on
//     success it keeps x⋆ on the thread, on failure it sheds it; either way
//     it returns through login's return gate, which launders the pir taint
//     (login owns pir) — ownership of x is the single bit that leaks;
//  4. owning x, login invokes the grant gate (clearance {x0, 2}) and
//     receives ur⋆/uw⋆; the grant code logs the success — which is why it
//     must be a separate gate from the tainted check code, which cannot
//     talk to the logger.
#ifndef SRC_AUTH_AUTH_H_
#define SRC_AUTH_AUTH_H_

#include <map>
#include <string>
#include <vector>

#include "src/core/sync.h"
#include "src/core/thread_annotations.h"
#include "src/unixlib/unix.h"

namespace histar {

// Append-only log (58 lines in the paper; not many more here).
class LogService {
 public:
  static std::unique_ptr<LogService> Start(UnixWorld* world);

  // Appends a line through the log gate (usable by any untainted thread).
  Status Append(ObjectId self, const std::string& line);
  // Test/introspection: the log contents (reading requires nothing — the
  // log is world-readable; only appends are gated).
  std::vector<std::string> Lines() const;
  ObjectId gate() const { return gate_; }

 private:
  friend void LogAppendEntry(GateCall& call);

  UnixWorld* world_ = nullptr;
  ObjectId container_ = kInvalidObject;
  ObjectId gate_ = kInvalidObject;
  CategoryId logw_ = kInvalidCategory;
  mutable Mutex mu_;
  std::vector<std::string> lines_ GUARDED_BY(mu_);
  uint64_t registry_id_ = 0;
};

// Outcome of a login: the labels the caller's thread ended up with.
struct LoginResult {
  bool authenticated = false;
  CategoryId ur = kInvalidCategory;
  CategoryId uw = kInvalidCategory;
};

// The per-user authentication daemon plus the directory that names it.
class AuthSystem {
 public:
  static std::unique_ptr<AuthSystem> Start(UnixWorld* world, LogService* log);

  // Registers a user: creates ur/uw (owned by the auth daemon's creator —
  // init, acting as the user at account-creation time), stores the password
  // hash {ur3, uw0, 1}, and publishes a setup gate in the directory.
  Result<UnixUser> AddUser(const std::string& name, const std::string& password);

  // The full Figure 9 sequence, run on the calling thread. On success the
  // thread's label gains ur⋆/uw⋆. At most one bit about the password ever
  // reaches the user's code.
  Result<LoginResult> Login(ObjectId self, const std::string& username,
                            const std::string& password);

  // Directory lookup (step 1), exposed for tests.
  Result<ContainerEntry> LookupSetupGate(ObjectId self, const std::string& username);

  // Number of remaining retry tokens for a user's most recent session, for
  // tests of the guess bound.
  int retry_limit() const { return kRetryLimit; }

 private:
  friend void DirLookupEntry(GateCall& call);
  friend void SetupGateEntry(GateCall& call);
  friend void CheckGateEntry(GateCall& call);
  friend void GrantGateEntry(GateCall& call);
  friend void MkRetryEntry(GateCall& call);
  friend void ReturnGateEntry(GateCall& call);

  static constexpr int kRetryLimit = 5;

  struct UserRecord {
    UnixUser user;
    uint64_t uid = 0;                      // closure-friendly numeric id
    ObjectId auth_ct = kInvalidObject;     // the daemon's container
    ObjectId pwhash_seg = kInvalidObject;  // {ur3, uw0, 1}
    ObjectId setup_gate = kInvalidObject;
  };

  static uint64_t HashPassword(const std::string& password);

  UnixWorld* world_ = nullptr;
  Kernel* kernel_ = nullptr;
  LogService* log_ = nullptr;
  ObjectId dir_ct = kInvalidObject;      // directory service container
  ObjectId dir_gate_ = kInvalidObject;

  mutable Mutex mu_;
  std::map<std::string, UserRecord> users_ GUARDED_BY(mu_);
  uint64_t registry_id_ = 0;
};

}  // namespace histar

#endif  // SRC_AUTH_AUTH_H_
