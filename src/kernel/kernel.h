// The HiStar kernel simulator: object table, label enforcement, and the
// complete system-call surface (paper §3).
//
// Concurrency model: kernel state is no longer guarded by one big lock. The
// object table is sharded (src/kernel/object_table.h): each syscall computes
// the set of objects it touches, locks the covering shards in ascending
// index order — shared for read-only paths, exclusive for mutation — and
// auxiliary state (futex queues, dirty set, per-thread counters, page-fault
// handlers, gate entries) lives under its own leaf mutex. The full lock
// hierarchy and per-helper requirements are documented in ARCHITECTURE.md
// ("Concurrency model"); the per-syscall locking footprint is tabulated in
// docs/syscalls.md.
//
// Host threads stand in for hardware threads; each host thread binds itself
// to a kernel Thread object and passes that id as the first argument of
// every syscall (the `self` register). User code — everything in unixlib and
// above — can only interact with kernel state through these syscalls, so all
// information flow is mediated by the label checks here.
//
// Two access rules from §2.2 underpin everything:
//   observe O:  L_O ⊑ L_T^J                     ("no read up")
//   modify  O:  L_T ⊑ L_O and L_O ⊑ L_T^J       ("no write down")
#ifndef SRC_KERNEL_KERNEL_H_
#define SRC_KERNEL_KERNEL_H_

#include <array>
#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <span>

#include "src/core/category.h"
#include "src/core/epoch.h"
#include "src/core/sync.h"
#include "src/core/thread_annotations.h"
#include "src/core/label.h"
#include "src/core/label_registry.h"
#include "src/core/status.h"
#include "src/kernel/object.h"
#include "src/kernel/object_table.h"
#include "src/kernel/syscall_abi.h"
#include "src/kernel/types.h"

namespace histar {

class PersistTarget;  // src/store: receives checkpoints / per-object syncs
class RingEngine;     // src/kernel/ring.h: async-ring worker pool
struct RingState;     // src/kernel/ring.h: volatile per-ring queue state

// ---- Checkpoint wire types (kernel ↔ store) ---------------------------------
//
// Serialized object images come in two formats, distinguished by their first
// byte. Checkpoint blobs reference labels by 32-bit interned id — the label
// bytes live once in the checkpoint's label-table section — while WAL blobs
// stay self-contained (a log record must be replayable before any label
// table has been loaded, and must survive a crash that loses the table
// delta it would have referenced).
inline constexpr uint8_t kBlobFormatInline = 0x01;    // labels serialized in the blob
inline constexpr uint8_t kBlobFormatLabelRef = 0x02;  // labels as LabelId references

// One label-table entry: an interned id and the canonical label bytes
// (Label::Serialize image). Written once per checkpoint chain, however many
// thousand objects share the label.
struct LabelTableRecord {
  LabelId id = kInvalidLabelId;
  std::vector<uint8_t> bytes;
};

// One serialized object. `meta_len` is the length of the blob prefix whose
// integrity the store must guarantee (type, ids, label refs, metadata, …);
// for segments the raw payload bytes follow it and are excluded from the
// blob checksum so sys_sync_pages can flush pages in place without
// invalidating it (ext3-writeback semantics: a crash may mix old and new
// payload pages, but never makes the object look corrupt).
struct ObjectImage {
  ObjectId id = kInvalidObject;
  std::vector<uint8_t> bytes;
  uint64_t meta_len = 0;
};

// Everything one group sync hands the store. `dirty` carries label-ref
// images of objects mutated since the last committed checkpoint;
// `label_delta` carries the label-table records interned since then (the
// store accumulates them; a full base snapshot re-emits its whole table).
struct CheckpointBatch {
  std::vector<ObjectImage> dirty;
  std::vector<ObjectId> live;
  ObjectId root = kInvalidObject;
  std::vector<LabelTableRecord> label_delta;
};

class Kernel {
 public:
  // `table_shards` sizes the object-table shard array (power of two; the
  // ablation bench pits 1 — the old single-lock design — against the
  // default under contended threads).
  explicit Kernel(size_t table_shards = ObjectTable::kDefaultShardCount);
  ~Kernel();

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  // ---- Boot interface (not reachable from user code) ----------------------

  // The root container: quota ∞, label {1}, can never be deallocated.
  ObjectId root_container() const { return root_; }

  // Creates the first thread with the given label/clearance, bypassing the
  // spawn rule — the analogue of the kernel handing control to init. The
  // thread is linked into `container` (defaults to root).
  ObjectId BootstrapThread(const Label& label, const Label& clearance,
                           const std::string& descrip,
                           ObjectId container = kInvalidObject);

  // Creates a device object in the root container. Network devices are
  // conventionally labeled {nr3, nw0, i2, 1} by the boot procedure (§5.7);
  // the caller supplies the label because categories are caller-allocated.
  ObjectId BootstrapDevice(DeviceKind kind, const Label& label, const std::string& descrip);

  // Attaches a NIC backend to a network device object (boot-time; a NIC is
  // re-attached after every restore, like real hardware re-probing).
  bool AttachNetPort(ObjectId device, NetPort* port);

  // Registers a gate entry function under a stable name. Entry names stand
  // in for code segments: they are persisted with the gate and must be
  // re-registered after a restore, just as code must be present on disk.
  void RegisterGateEntry(const std::string& name, GateEntryFn fn);
  bool HasGateEntry(const std::string& name) const;

  // The registry owning every canonical label in this kernel. Exposed for
  // the ablation bench (enable/disable, stats) and for tests.
  LabelRegistry& label_registry() { return registry_; }
  CategoryAllocator& category_allocator() { return cat_alloc_; }

  // The sharded object table. Exposed (const) so tests and the ablation
  // bench can compute shard placement; all access still goes through
  // syscalls.
  const ObjectTable& object_table() const { return table_; }

  // Resolves an object's / thread's / gate's label handle to the canonical
  // immutable Label held by the registry.
  const Label& LabelOf(const Object& o) const { return registry_.Get(o.label_id()); }
  const Label& ClearanceOf(const Thread& t) const { return registry_.Get(t.clearance_id()); }
  const Label& ClearanceOf(const Gate& g) const { return registry_.Get(g.clearance_id()); }

  // ---- Syscall counters (the fork/exec analysis in §7.1 is stated in
  //      syscalls, so counting is first-class) --------------------------------
  //
  // Counting is keyed by the host thread's registered epoch-layer slot
  // (PR 6): each concurrently live host thread owns a private slot, so
  // batch entry bookkeeping never contends on a shared mutex — the PR 3
  // thread-id hash striping this replaces could collide two threads into
  // one stripe. Totals are summed over all slots on read (cold paths).
  uint64_t syscall_count() const;
  uint64_t thread_syscall_count(ObjectId t) const;

  // ---- Batched submission (the PR 3 descriptor ABI, syscall_abi.h) ---------
  //
  // Executes `reqs` strictly in submission order and fills `res[i]` with the
  // completion of `reqs[i]` (each carries its own Status; a failing entry
  // does not stop later entries). Consecutive entries whose footprint is
  // statically computable and whose execution never blocks or leaves the
  // lock (see docs/syscalls.md "Batched submission") are grouped and run
  // under ONE ascending-order TableLock covering the union of their shards —
  // exclusive if any entry mutates — so a same-shard run of N entries pays
  // one lock round-trip instead of N. Entries with data-dependent footprints
  // or unlocked phases (futexes, gate invoke, net I/O, sync, unref,
  // as_access, thread_alert) close the current group and execute exactly as
  // their legacy syscall would. PR 6: consecutive entries whose bodies only
  // touch atomic / snapshot object state (BatchPlan::lockfree) form their
  // own groups and run with NO TableLock at all — an EpochGuard plus the
  // published-index read mode replace the shared shard locks entirely.
  // Every legacy sys_* method below is a thin one-element-batch wrapper
  // over this entry point.
  //
  // Returns kInvalidArg (touching nothing) if res.size() < reqs.size();
  // otherwise kOk — per-entry outcomes live in the completions.
  Status SubmitBatch(ObjectId self, std::span<const SyscallReq> reqs,
                     std::span<SyscallRes> res);

  // Executes a span of RingOps with linked-op semantics (PR 5): entries run
  // in order under the same group-merging as SubmitBatch (consecutive
  // batchable entries share ONE ascending-order TableLock), but an entry
  // whose predecessor carries kRingLinked is cancelled (completion status
  // kCancelled, nothing executed) when that predecessor did not complete
  // kOk, and an entry with a `from` routing slot has the named value of its
  // predecessor's completion written into its own `to` slot before it runs
  // (inside the group lock — routing into len/off slots never changes the
  // precomputed footprint). Entries routing into ⟨D,O⟩ id slots have
  // data-dependent footprints and always start a fresh lock group. Mutates
  // `ops` in place (the routed operands). Unlike SubmitBatch this does NOT
  // charge syscall counters: ring submissions are charged to the submitter
  // at sys_ring_submit time, so kernel workers never touch another thread's
  // count stripe. This is the ring-worker execution path; it is public so
  // tests and benches can drive chains synchronously.
  Status SubmitChain(ObjectId self, std::span<RingOp> ops, std::span<SyscallRes> res);

  // ---- Threads (§3.1) ------------------------------------------------------

  Result<CategoryId> sys_cat_create(ObjectId self);
  Status sys_self_set_label(ObjectId self, const Label& l);
  Status sys_self_set_clearance(ObjectId self, const Label& c);
  Result<Label> sys_self_get_label(ObjectId self);
  Result<Label> sys_self_get_clearance(ObjectId self);
  Status sys_self_set_as(ObjectId self, ContainerEntry as);
  Result<ContainerEntry> sys_self_get_as(ObjectId self);
  Status sys_self_halt(ObjectId self);

  // Creates a thread object subject to the spawn rule L_T ⊑ L_T' ⊑ C_T' ⊑ C_T.
  Result<ObjectId> sys_thread_create(ObjectId self, const CreateSpec& spec,
                                     const Label& new_label, const Label& new_clearance);
  // Sends an alert (the signal substrate, §3.4): requires write access to the
  // target's address space and observation of the target.
  Status sys_thread_alert(ObjectId self, ContainerEntry thread, uint64_t code);
  // Pops a pending alert for the calling thread; kNotFound if none.
  Result<uint64_t> sys_self_next_alert(ObjectId self);

  // Thread-local segment access (always permitted for self).
  Status sys_self_local_read(ObjectId self, void* buf, uint64_t off, uint64_t len);
  Status sys_self_local_write(ObjectId self, const void* buf, uint64_t off, uint64_t len);

  // ---- Containers (§3.2) ---------------------------------------------------

  Result<ObjectId> sys_container_create(ObjectId self, const CreateSpec& spec,
                                        uint32_t avoid_types);
  // Unlinks ce.object from ce.container; recursively destroys unreferenced
  // subtrees.
  Status sys_container_unref(ObjectId self, ContainerEntry ce);
  Result<ObjectId> sys_container_get_parent(ObjectId self, ObjectId container);
  Result<std::vector<ObjectId>> sys_container_list(ObjectId self, ObjectId container);
  // Hard-links src.object into `container` (requires the object's quota to be
  // fixed; charges the full quota again — "double-charging", §3.3).
  Status sys_container_link(ObjectId self, ObjectId container, ContainerEntry src);
  // True if the container directly links the object (observe-checked).
  Result<bool> sys_container_has(ObjectId self, ObjectId container, ObjectId obj);

  // ---- Generic object calls ------------------------------------------------

  Result<ObjectType> sys_obj_get_type(ObjectId self, ContainerEntry ce);
  Result<Label> sys_obj_get_label(ObjectId self, ContainerEntry ce);
  Result<std::string> sys_obj_get_descrip(ObjectId self, ContainerEntry ce);
  Result<uint64_t> sys_obj_get_quota(ObjectId self, ContainerEntry ce);
  Result<std::vector<uint8_t>> sys_obj_get_metadata(ObjectId self, ContainerEntry ce);
  Status sys_obj_set_metadata(ObjectId self, ContainerEntry ce, const void* data, size_t len);
  Status sys_obj_set_fixed_quota(ObjectId self, ContainerEntry ce);
  Status sys_obj_set_immutable(ObjectId self, ContainerEntry ce);

  // Moves n bytes of quota from container d to object o (or back if n < 0);
  // the asymmetric extra check for n < 0 is the paper's: failure would reveal
  // o's free space to the caller (§3.3).
  Status sys_quota_move(ObjectId self, ObjectId d, ObjectId o, int64_t n);

  // ---- Segments ------------------------------------------------------------

  Result<ObjectId> sys_segment_create(ObjectId self, const CreateSpec& spec, uint64_t len);
  // Copy with a (possibly) different label — the efficient relabel-by-copy
  // the paper mentions in §3.
  Result<ObjectId> sys_segment_copy(ObjectId self, const CreateSpec& spec, ContainerEntry src);
  Status sys_segment_resize(ObjectId self, ContainerEntry ce, uint64_t len);
  Result<uint64_t> sys_segment_get_len(ObjectId self, ContainerEntry ce);
  Status sys_segment_read(ObjectId self, ContainerEntry ce, void* buf, uint64_t off,
                          uint64_t len);
  Status sys_segment_write(ObjectId self, ContainerEntry ce, const void* buf, uint64_t off,
                           uint64_t len);

  // ---- Address spaces (§3.4) -----------------------------------------------

  Result<ObjectId> sys_as_create(ObjectId self, const CreateSpec& spec);
  Status sys_as_set(ObjectId self, ContainerEntry ce, const std::vector<Mapping>& mappings);
  Result<std::vector<Mapping>> sys_as_get(ObjectId self, ContainerEntry ce);

  // Simulated paged access through the current address space: resolves `va`,
  // performs the fault-time label checks, and copies bytes. On a check
  // failure the thread's page-fault handler (if any) runs; if it declines,
  // the access fails with the original status ("by default kills the
  // process" is the unixlib handler's policy, not the kernel's).
  Status sys_as_access(ObjectId self, uint64_t va, void* buf, uint64_t len, bool write);
  void SetPageFaultHandler(ObjectId thread, std::function<bool(uint64_t va, bool write)> h);

  // ---- Gates (§3.5) --------------------------------------------------------

  Result<ObjectId> sys_gate_create(ObjectId self, const CreateSpec& spec,
                                   const Label& gate_label, const Label& gate_clearance,
                                   const std::string& entry_name,
                                   const std::vector<uint64_t>& closure);
  // Crosses the gate: validates L_T ⊑ C_G, L_T ⊑ L_V, and
  // (L_T^J ⊔ L_G^J)^⋆ ⊑ L_R ⊑ C_R ⊑ (C_T ⊔ C_G); relabels the thread to
  // (L_R, C_R) and runs the entry function on the calling host thread. The
  // verify label L_V proves category possession without granting it.
  Status sys_gate_invoke(ObjectId self, ContainerEntry gate, const Label& request_label,
                         const Label& request_clearance, const Label& verify_label);
  // Closure words of a gate, readable by anyone who can use the entry
  // (needed by callers constructing return-gate protocols).
  Result<std::vector<uint64_t>> sys_gate_get_closure(ObjectId self, ContainerEntry ce);

  // ---- Futexes (§4.1: the only kernel IPC besides memory and gates) --------

  Status sys_futex_wait(ObjectId self, ContainerEntry seg, uint64_t offset, uint64_t expected,
                        uint32_t timeout_ms);
  Result<uint32_t> sys_futex_wake(ObjectId self, ContainerEntry seg, uint64_t offset,
                                  uint32_t max_count);

  // ---- Devices (§4.1 network API: mac address, buffers, wait) --------------

  Result<std::array<uint8_t, 6>> sys_net_macaddr(ObjectId self, ContainerEntry dev);
  Status sys_net_transmit(ObjectId self, ContainerEntry dev, ContainerEntry seg, uint64_t off,
                          uint64_t len);
  Result<uint64_t> sys_net_receive(ObjectId self, ContainerEntry dev, ContainerEntry seg,
                                   uint64_t off, uint64_t maxlen);
  Status sys_net_wait(ObjectId self, ContainerEntry dev, uint32_t timeout_ms);
  Status sys_console_write(ObjectId self, ContainerEntry dev, const std::string& text);

  // ---- Rings (PR 5: async submission/completion queues) ---------------------
  //
  // A ring is a first-class kernel object (label, quota, container link);
  // its queue state is volatile, like futex queues (src/kernel/ring.h). The
  // label rules: creation follows the standard creation rule; submitting
  // and reaping mutate queue state and require modify access (L_T ⊑ L_R ⊑
  // L_T^J); waiting observes completion progress and requires observation.
  // Every submitted op is re-checked against the SUBMITTER's thread labels
  // when a kernel worker executes it — the ring conveys no privilege.

  // Creates a ring bounding `capacity` ops in flight (0 → default).
  Result<ObjectId> sys_ring_create(ObjectId self, const CreateSpec& spec, uint32_t capacity);
  // Enqueues `ops` as one submission; returns the ticket (sequence number
  // of the last op). kAgain when the capacity bound would be exceeded —
  // reap first. Ring ops may not contain ring calls (no nested submission:
  // a worker waiting on its own pool would deadlock it) or gate_invoke
  // (gates cross protection domains on the *calling host thread*; a kernel
  // worker cannot impersonate one). Buffers referenced by descriptors must
  // stay valid until the matching completion is reaped, io_uring-style.
  Result<uint64_t> sys_ring_submit(ObjectId self, ContainerEntry ring,
                                   std::vector<RingOp> ops);
  // Blocks until every op with seq <= ticket has completed (0 → never
  // blocks). timeout_ms == 0 waits indefinitely; halt/alert interrupt like
  // futex waits (kHalted / kAgain).
  Status sys_ring_wait(ObjectId self, ContainerEntry ring, uint64_t ticket,
                       uint32_t timeout_ms);
  // Pops up to `max` completions (0 → all pending), freeing capacity.
  Result<std::vector<RingCompletion>> sys_ring_reap(ObjectId self, ContainerEntry ring,
                                                    uint32_t max);

  // Test/bench introspection: highest op seq whose completion has been
  // published for `ring`. Reads only the volatile ring state under its leaf
  // mutex — NO TableLock — so lock-accounting tests can poll for chain
  // completion without perturbing the acquisition counter.
  uint64_t ring_completed_ticket(ObjectId ring) const;

  // ---- Flight-recorder export (PR 10) ---------------------------------------

  // Flow-checked view of the kernel trace rings (docs/syscalls.md §
  // sys_trace_read): resolves `self` under a shared lock on its shard
  // only, then walks a lock-free snapshot applying the §3 observe rule
  // per event — an event is returned iff BOTH its recorded labels flow to
  // the reader's raised label; otherwise it only bumps `withheld`.
  TraceReadRes sys_trace_read(ObjectId self, uint32_t max_events = 0);

  // ---- Persistence hooks (single-level store, §3/§4) ------------------------

  // Attaches the store that receives checkpoints. May be null (volatile run).
  void AttachPersistTarget(PersistTarget* target) { persist_ = target; }

  // Group sync: serialize every dirty object and hand the batch (plus the
  // live set) to the store, which commits atomically.
  Status sys_sync(ObjectId self);
  // Per-object sync (the fsync path): write-ahead-log just this object.
  Status sys_sync_object(ObjectId self, ContainerEntry ce);
  // In-place flush of a page range of one segment (no checkpoint).
  Status sys_sync_pages(ObjectId self, ContainerEntry ce, uint64_t offset, uint64_t len);

  // Serialization used by the store (and by tests). The two-argument form
  // emits the self-contained kBlobFormatInline image (the canonical,
  // id-free representation — also what the equivalence tests compare);
  // `label_refs` switches to kBlobFormatLabelRef for checkpoint blobs, and
  // `meta_len` (optional) receives the checksum-covered prefix length.
  bool SerializeObject(ObjectId id, std::vector<uint8_t>* out,
                       bool label_refs = false, uint64_t* meta_len = nullptr) const;
  // Restores one serialized object into the table (boot-time only). Inline
  // blobs re-intern their label bytes; label-ref blobs resolve ids through
  // the remap installed by RestoreLabelTable, which must run first.
  Status RestoreObject(const std::vector<uint8_t>& bytes);
  // Boot-time, before any RestoreObject call: rebuilds the registry from a
  // persisted label table (records in ascending-id order) and installs the
  // old-id → new-id remap used by label-ref blobs. Re-interning in table
  // order reproduces the writing boot's per-shard slot sequence, so the
  // remap is the identity whenever the shard configuration is unchanged;
  // *ids_stable reports whether it was. When it was not, the on-disk id
  // space is unusable for further increments: this kernel re-dirties every
  // object at FinishRestore and resets its label mark so the next sync
  // rewrites the world (the store independently forces a base snapshot).
  Status RestoreLabelTable(const std::vector<LabelTableRecord>& records, bool* ids_stable);
  // All live object ids (store iteration order).
  std::vector<ObjectId> LiveObjects() const;
  // Ids of objects mutated since the last ClearDirty (incremental sync).
  std::vector<ObjectId> DirtyObjects() const;
  void ClearDirty();
  // After RestoreObject calls, rebuild derived state (intern ids, usages).
  void FinishRestore(ObjectId root);

  // ---- Introspection for tests ---------------------------------------------

  bool ObjectExists(ObjectId id) const;
  size_t ObjectCount() const;
  // Direct peek at a device's console buffer.
  std::string ConsoleContents(ObjectId dev) const;

 private:
  struct FutexKey {
    ObjectId seg;
    uint64_t offset;
    bool operator==(const FutexKey&) const = default;
  };
  struct FutexKeyHash {
    size_t operator()(const FutexKey& k) const {
      return std::hash<uint64_t>()(k.seg * 0x9e3779b97f4a7c15ULL ^ k.offset);
    }
  };
  // Queue contents are guarded by futex_mu_ (reached only through the
  // guarded `futexes_` map, so the analysis checks the map access).
  struct FutexWaitQueue {
    CondVar cv;
    uint64_t wake_seq = 0;
    uint32_t wake_budget = 0;
    uint32_t waiters = 0;
  };

  // -- Helper lock requirements (ARCHITECTURE.md "Concurrency model" has the
  //    full hierarchy; docs/syscalls.md the per-syscall footprint) --
  //
  //   Get / GetThread / GetContainer     shard of `id` held (any mode) — OR
  //                                        an EpochGuard with
  //                                        PublishedReadMode active, which
  //                                        routes Get through the shard's
  //                                        lock-free published index
  //   CanObserve / CanModifyLabels /     shards keeping the operand objects
  //     CheckModify                        alive held (any mode)
  //   ResolveEntry                       shards of ce.container + ce.object
  //   CheckCreate                        shard of `d` held (exclusive — the
  //                                        create path ends in LinkInto)
  //   LinkInto / UnlinkFrom              shards of both operands, exclusive
  //   DestroyObject                      container: ALL shards exclusive
  //                                        (recursive); other types: own
  //                                        shard exclusive
  //   InsertObject                       shard of obj->id(), exclusive
  //   SerializeObjectLocked              shard of the object held (any mode)
  //   LiveLocked                         ALL shards held (any mode)
  //   MarkDirty / CountSyscalls          no shard requirement (leaf mutexes)
  //   AllocObjectId / WakeAllFutexes     must be called with NO shard held
  //
  // These requirements are enforced at compile time (clang -Wthread-safety)
  // through the table capability fiction: every TableLock — and the
  // PublishedReadTableCap epoch stand-in — acquires table_.cap(), and the
  // helpers below carry REQUIRES / REQUIRES_SHARED on it. Which *shards*
  // the caller's lock covers stays a runtime property (Covers()/TSan); the
  // static layer proves no helper runs without some covering scope.

  Object* Get(ObjectId id) const REQUIRES_SHARED(table_.cap());
  Thread* GetThread(ObjectId id) const REQUIRES_SHARED(table_.cap());
  Container* GetContainer(ObjectId id) const REQUIRES_SHARED(table_.cap());

  // L_O ⊑ L_T^J — with the thread-label special case from §3.2: reading the
  // label of another *thread* requires L_T'^J ⊑ L_T^J instead. All three
  // route through the registry's memoized id-pair comparisons; no label is
  // materialized or shifted per check.
  bool CanObserve(const Thread& t, const Object& o) REQUIRES_SHARED(table_.cap());
  bool CanModifyLabels(const Thread& t, const Object& o)  // label rules only
      REQUIRES_SHARED(table_.cap());
  Status CheckModify(const Thread& t, const Object& o)  // adds immutable check
      REQUIRES_SHARED(table_.cap());

  // Validates the container entry ⟨D,O⟩ for thread t per §3.2 and returns O.
  Result<Object*> ResolveEntry(const Thread& t, ContainerEntry ce)
      REQUIRES_SHARED(table_.cap());

  // Checks the creation rule into container D with label `l`; on success
  // interns the label into `*out_lid` and returns the container. Validation
  // uses non-interning comparisons so a rejected creation allocates no
  // registry state. Charges happen in LinkInto.
  Result<Container*> CheckCreate(const Thread& t, ObjectId d, const Label& l,
                                 ObjectType type, uint64_t quota, LabelId* out_lid)
      REQUIRES(table_.cap());

  // Links obj into d, charging d's usage. Assumes all checks done.
  Status LinkInto(Container* d, Object* obj) REQUIRES(table_.cap());
  void UnlinkFrom(Container* d, ObjectId obj) REQUIRES(table_.cap());
  // Destroys an object whose link count reached zero (recursive for
  // containers). Collects destroyed segment ids for futex wakeups.
  void DestroyObject(ObjectId id, std::vector<ObjectId>* destroyed_segments)
      REQUIRES(table_.cap());

  // Body of sys_container_unref. Requires the shards of {self, ce} held
  // exclusive; if the unlink would drop O's last link, destruction needs
  // ALL shards — with `allow_destroy` false the call then backs out without
  // mutating and sets *need_all so the caller can retake the full lock.
  Status UnrefOnce(ObjectId self, ContainerEntry ce, bool allow_destroy, bool* need_all,
                   std::vector<ObjectId>* destroyed) REQUIRES(table_.cap());

  uint64_t ContainerFree(const Container& d) const;
  void MarkDirty(ObjectId id);

  Result<ObjectId> AllocObjectId();

  // Stamps the creation sequence number and inserts into the object table.
  void InsertObject(std::unique_ptr<Object> obj) REQUIRES(table_.cap());

  // Entry bookkeeping common to every syscall: one slot-mutex round trip
  // (the calling host thread's private slot) charges `n` syscalls (a whole
  // batch) to `self` and to the global total.
  void CountSyscalls(ObjectId self, uint64_t n);

  // ---- Batched dispatch (kernel_batch.cc) ----------------------------------
  //
  // Footprint plan of one request: the ids whose shards it touches, whether
  // it mutates (exclusive mode), whether it can join a lock group at all,
  // whether it consumes a preallocated object id, and whether its Locked
  // body is safe on the lock-free published-read path (only atomic /
  // snapshot object state, no payload bytes, no mutation).
  struct BatchPlan {
    std::array<ObjectId, 5> ids;
    size_t nids = 0;
    bool mutates = false;
    bool batchable = false;
    bool needs_new_id = false;
    bool lockfree = false;
  };
  static BatchPlan PlanOf(ObjectId self, const SyscallReq& req);

  // Grows a lock group over consecutive batchable requests starting at `i`
  // (whose plan is `first`, already computed): unions shard masks,
  // escalates to exclusive if any member mutates, and preallocates object
  // ids for create entries — AllocObjectId probes a shard itself, so this
  // runs with NO lock held. `req_at(j)` yields request j of `n`;
  // `stop_at(j)` lets the chain executor cut a group before id-routed
  // entries. With `split_lockfree`, a group stays homogeneous in
  // BatchPlan::lockfree so SubmitBatch can run lock-free groups without a
  // TableLock; SubmitChain passes false and runs everything locked (ring
  // submission already paid the fixed validation locks, and chain lock
  // parity with the sync path is a pinned PR 5 property). Returns one past
  // the group's last member. ONE copy of the planning logic, shared by
  // SubmitBatch and SubmitChain so the two submission paths cannot drift
  // (kernel_batch.cc).
  template <typename ReqAt, typename StopAt>
  size_t GrowBatchGroup(ObjectId self, size_t i, size_t n, const BatchPlan& first,
                        const ReqAt& req_at, const StopAt& stop_at, bool split_lockfree,
                        uint64_t* mask, bool* exclusive, std::vector<ObjectId>* new_ids);

  // Executes one batchable request under the group TableLock (the caller
  // holds every shard in the request's plan, exclusive if the group
  // mutates). Create-type requests pop their preallocated id from `new_ids`
  // via `next_new_id`.
  void ExecLocked(ObjectId self, const SyscallReq& req, SyscallRes* out,
                  const std::vector<ObjectId>& new_ids, size_t* next_new_id)
      REQUIRES(table_.cap());
  // Executes one non-batchable request with no lock held (the request's own
  // implementation takes whatever locks it needs, exactly as pre-batch).
  void ExecUnbatched(ObjectId self, const SyscallReq& req, SyscallRes* out);

  // ---- Per-syscall bodies --------------------------------------------------
  //
  // *Locked bodies assume the covering TableLock is already held (per
  // BatchPlan); Do* bodies are the former sys_* implementations of the
  // non-batchable calls, minus entry bookkeeping (SubmitBatch counts).
  // Statically: mutating bodies carry REQUIRES(table_.cap()), read-only
  // bodies REQUIRES_SHARED — the shared set is exactly BatchPlan::lockfree
  // plus the reads whose footprint is static but payload-touching.
  Result<CategoryId> CatCreateLocked(ObjectId self) REQUIRES(table_.cap());
  Status SelfSetLabelLocked(ObjectId self, const Label& l) REQUIRES(table_.cap());
  Status SelfSetClearanceLocked(ObjectId self, const Label& c) REQUIRES(table_.cap());
  Result<Label> SelfGetLabelLocked(ObjectId self) REQUIRES_SHARED(table_.cap());
  Result<Label> SelfGetClearanceLocked(ObjectId self) REQUIRES_SHARED(table_.cap());
  Status SelfSetAsLocked(ObjectId self, ContainerEntry as) REQUIRES(table_.cap());
  Result<ContainerEntry> SelfGetAsLocked(ObjectId self) REQUIRES_SHARED(table_.cap());
  Status SelfHaltLocked(ObjectId self) REQUIRES(table_.cap());
  Result<ObjectId> ThreadCreateLocked(ObjectId self, const CreateSpec& spec,
                                      const Label& new_label, const Label& new_clearance,
                                      ObjectId new_id) REQUIRES(table_.cap());
  Result<uint64_t> SelfNextAlertLocked(ObjectId self) REQUIRES(table_.cap());
  Status SelfLocalReadLocked(ObjectId self, void* buf, uint64_t off, uint64_t len)
      REQUIRES_SHARED(table_.cap());
  Status SelfLocalWriteLocked(ObjectId self, const void* buf, uint64_t off, uint64_t len)
      REQUIRES(table_.cap());
  Result<ObjectId> ContainerCreateLocked(ObjectId self, const CreateSpec& spec,
                                         uint32_t avoid_types, ObjectId new_id)
      REQUIRES(table_.cap());
  Result<ObjectId> ContainerGetParentLocked(ObjectId self, ObjectId container)
      REQUIRES_SHARED(table_.cap());
  Result<std::vector<ObjectId>> ContainerListLocked(ObjectId self, ObjectId container)
      REQUIRES_SHARED(table_.cap());
  Status ContainerLinkLocked(ObjectId self, ObjectId container, ContainerEntry src)
      REQUIRES(table_.cap());
  Result<bool> ContainerHasLocked(ObjectId self, ObjectId container, ObjectId obj)
      REQUIRES_SHARED(table_.cap());
  Result<ObjectType> ObjGetTypeLocked(ObjectId self, ContainerEntry ce)
      REQUIRES_SHARED(table_.cap());
  Result<Label> ObjGetLabelLocked(ObjectId self, ContainerEntry ce)
      REQUIRES_SHARED(table_.cap());
  Result<std::string> ObjGetDescripLocked(ObjectId self, ContainerEntry ce)
      REQUIRES_SHARED(table_.cap());
  Result<uint64_t> ObjGetQuotaLocked(ObjectId self, ContainerEntry ce)
      REQUIRES_SHARED(table_.cap());
  Result<std::vector<uint8_t>> ObjGetMetadataLocked(ObjectId self, ContainerEntry ce)
      REQUIRES_SHARED(table_.cap());
  Status ObjSetMetadataLocked(ObjectId self, ContainerEntry ce, const void* data, size_t len)
      REQUIRES(table_.cap());
  Status ObjSetFixedQuotaLocked(ObjectId self, ContainerEntry ce) REQUIRES(table_.cap());
  Status ObjSetImmutableLocked(ObjectId self, ContainerEntry ce) REQUIRES(table_.cap());
  Status QuotaMoveLocked(ObjectId self, ObjectId d, ObjectId o, int64_t n)
      REQUIRES(table_.cap());
  Result<ObjectId> SegmentCreateLocked(ObjectId self, const CreateSpec& spec, uint64_t len,
                                       ObjectId new_id) REQUIRES(table_.cap());
  Result<ObjectId> SegmentCopyLocked(ObjectId self, const CreateSpec& spec, ContainerEntry src,
                                     ObjectId new_id) REQUIRES(table_.cap());
  Status SegmentResizeLocked(ObjectId self, ContainerEntry ce, uint64_t len)
      REQUIRES(table_.cap());
  Result<uint64_t> SegmentGetLenLocked(ObjectId self, ContainerEntry ce)
      REQUIRES_SHARED(table_.cap());
  Status SegmentReadLocked(ObjectId self, ContainerEntry ce, void* buf, uint64_t off,
                           uint64_t len) REQUIRES_SHARED(table_.cap());
  Status SegmentWriteLocked(ObjectId self, ContainerEntry ce, const void* buf, uint64_t off,
                            uint64_t len) REQUIRES(table_.cap());
  Result<ObjectId> AsCreateLocked(ObjectId self, const CreateSpec& spec, ObjectId new_id)
      REQUIRES(table_.cap());
  Status AsSetLocked(ObjectId self, ContainerEntry ce, const std::vector<Mapping>& mappings)
      REQUIRES(table_.cap());
  Result<std::vector<Mapping>> AsGetLocked(ObjectId self, ContainerEntry ce)
      REQUIRES_SHARED(table_.cap());
  Result<ObjectId> GateCreateLocked(ObjectId self, const CreateSpec& spec,
                                    const Label& gate_label, const Label& gate_clearance,
                                    const std::string& entry_name,
                                    const std::vector<uint64_t>& closure, ObjectId new_id)
      REQUIRES(table_.cap());
  Result<std::vector<uint64_t>> GateGetClosureLocked(ObjectId self, ContainerEntry ce)
      REQUIRES_SHARED(table_.cap());
  Status ConsoleWriteLocked(ObjectId self, ContainerEntry dev, const std::string& text)
      REQUIRES(table_.cap());
  Result<ObjectId> RingCreateLocked(ObjectId self, const CreateSpec& spec, uint32_t capacity,
                                    ObjectId new_id) REQUIRES(table_.cap());

  Status DoThreadAlert(ObjectId self, ContainerEntry thread, uint64_t code);
  Status DoContainerUnref(ObjectId self, ContainerEntry ce);
  Status DoAsAccess(ObjectId self, uint64_t va, void* buf, uint64_t len, bool write);
  Status DoGateInvoke(ObjectId self, ContainerEntry gate, const Label& request_label,
                      const Label& request_clearance, const Label& verify_label);
  Status DoFutexWait(ObjectId self, ContainerEntry seg, uint64_t offset, uint64_t expected,
                     uint32_t timeout_ms);
  Result<uint32_t> DoFutexWake(ObjectId self, ContainerEntry seg, uint64_t offset,
                               uint32_t max_count);
  Result<std::array<uint8_t, 6>> DoNetMacAddr(ObjectId self, ContainerEntry dev);
  Status DoNetTransmit(ObjectId self, ContainerEntry dev, ContainerEntry seg, uint64_t off,
                       uint64_t len);
  Result<uint64_t> DoNetReceive(ObjectId self, ContainerEntry dev, ContainerEntry seg,
                                uint64_t off, uint64_t maxlen);
  Status DoNetWait(ObjectId self, ContainerEntry dev, uint32_t timeout_ms);
  Status DoSync(ObjectId self);
  Status DoSyncObject(ObjectId self, ContainerEntry ce);
  Status DoSyncPages(ObjectId self, ContainerEntry ce, uint64_t offset, uint64_t len);

  // Flight-recorder export body (kernel.cc): shared lock on self's shard
  // to capture the reader's raised label, then lock-free snapshot + per-
  // event Leq checks (the registry's warm path).
  void DoTraceRead(ObjectId self, uint32_t max_events, TraceReadRes* out);

  // Ring syscall bodies (src/kernel/ring.cc). All unbatchable: submit and
  // reap leave the TableLock to touch the leaf-locked queue state, wait
  // sleeps.
  Result<uint64_t> DoRingSubmit(ObjectId self, ContainerEntry ring,
                                const std::vector<RingOp>& ops);
  Status DoRingWait(ObjectId self, ContainerEntry ring, uint64_t ticket, uint32_t timeout_ms);
  Result<std::vector<RingCompletion>> DoRingReap(ObjectId self, ContainerEntry ring,
                                                 uint32_t max);

  // Lazily starts the worker pool (create=true); never starts it on pure
  // reads. Kernels that never touch a ring spawn no worker threads.
  RingEngine* ring_engine(bool create) const;
  // Tears down the volatile queue state of destroyed rings: marks them dead
  // and wakes their waiters. Called, like WakeAllFutexes, strictly after
  // the shard locks drop (ring state mutexes are leaves of the hierarchy).
  void DropRings(const std::vector<ObjectId>& ids);

  // Wakes futex waiters on a destroyed segment so they fail promptly.
  void WakeAllFutexes(const std::vector<ObjectId>& segs);

  // One resolve-check-copy pass of sys_as_access (the per-`attempt` body).
  Status AsAccessOnce(ObjectId self, uint64_t va, void* buf, uint64_t len, bool write);

  // Resolves `seg` for thread `self`, runs the §3.2 observe + range checks,
  // and reads the 8-byte futex word at `offset` into *word (and the
  // segment's id into *sid). Takes its own shared TableLock. One helper for
  // both the validation pass and the post-registration recheck of
  // sys_futex_wait, so the two passes cannot drift apart.
  Status ReadFutexWord(ObjectId self, ContainerEntry seg, uint64_t offset, uint64_t* word,
                       ObjectId* sid);

  // Serialization body shared by SerializeObject and the checkpoint snapshot.
  bool SerializeObjectLocked(const Object& o, std::vector<uint8_t>* out,
                             bool label_refs = false, uint64_t* meta_len = nullptr) const
      REQUIRES_SHARED(table_.cap());
  // Live ids in creation order; requires all shards held.
  std::vector<ObjectId> LiveLocked() const REQUIRES_SHARED(table_.cap());
  // Dirty (id, mark-generation) pairs in creation order; requires all
  // shards held (takes dirty_mu_ itself). The generation lets sys_sync
  // retire exactly the marks it serialized and no newer ones.
  std::vector<std::pair<ObjectId, uint64_t>> DirtySnapshotLocked() const
      REQUIRES_SHARED(table_.cap());

  // The sharded object table — PR 2 split the old single `mu_` into
  // per-shard shared_mutexes; see ARCHITECTURE.md "Concurrency model".
  ObjectTable table_;
  std::atomic<uint64_t> creation_counter_{0};
  // Boot-time only: set by the constructor / FinishRestore before any
  // concurrent syscalls run, immutable afterwards.
  ObjectId root_ = kInvalidObject;

  CategoryAllocator cat_alloc_;
  CategoryAllocator objid_alloc_{0x4f424a4944ULL /* "OBJID" */};
  // Sharded and internally synchronized: label checks never serialize on
  // any table shard lock.
  mutable LabelRegistry registry_;

  // Leaf state, each under its own mutex (all ordered AFTER the table
  // shards; futex_mu_ is never held together with any shard lock):
  mutable Mutex gate_entries_mu_;
  std::unordered_map<std::string, GateEntryFn> gate_entries_ GUARDED_BY(gate_entries_mu_);

  mutable Mutex futex_mu_;
  std::unordered_map<FutexKey, std::unique_ptr<FutexWaitQueue>, FutexKeyHash> futexes_
      GUARDED_BY(futex_mu_);

  mutable Mutex pf_mu_;
  std::unordered_map<ObjectId, std::function<bool(uint64_t, bool)>> pf_handlers_
      GUARDED_BY(pf_mu_);

  // Per-thread syscall counters, one slot per registered host thread
  // (EpochDomain::ThreadSlot, PR 6 — replacing the PR 3 thread-id hash
  // striping, which could collide two concurrent threads into one stripe
  // and make them share a mutex). Slot ids are dense and reused on thread
  // exit, so below kCountSlots concurrently live threads every host
  // thread's entry bookkeeping lands on a private, uncontended mutex; a
  // single counts mutex would put a kernel-wide lock round-trip back on
  // every syscall the shard split parallelized. Each slot carries its
  // share of the kernel-wide total: `total` outlives thread destruction
  // (counts entries are erased with their thread), and the cold readers
  // (syscall_count, thread_syscall_count) sum over all slots, since one
  // kernel thread's syscalls may be charged from several host threads over
  // its life.
  static constexpr size_t kCountSlots = 256;
  struct CountSlot {
    Mutex mu;
    uint64_t total GUARDED_BY(mu) = 0;
    std::unordered_map<ObjectId, uint64_t> counts GUARDED_BY(mu);
  };
  CountSlot& CountSlotForCurrentThread() const {
    return count_slots_[EpochDomain::ThreadSlot() & (kCountSlots - 1)];
  }
  mutable std::array<CountSlot, kCountSlots> count_slots_;

  // Last-fault footprint hints for sys_as_access (PR 3): a lock-free cache
  // slot per registered host thread (PR 6 — same slot scheme as the
  // syscall counters, replacing the old thread-id hash that let two
  // threads evict each other's hints) holding the AS id and backing
  // segment entry of that thread's most recent successful access. Purely a
  // seed for the discovery loop's first lock set — every round re-derives
  // and re-checks the real footprint under the lock, so a stale, torn, or
  // reused-slot hint costs at most one widened retry and can never produce
  // a wrong result. The `thread` field self-verifies the slot: a host
  // thread acting as a different kernel thread (or a recycled slot id)
  // mismatches and reads cold. All fields relaxed atomics: readers take no
  // lock (that is the point — the hot hit path pays exactly ONE TableLock),
  // writers may hold shared shard locks. Invalidated (cleared) by the
  // caller-visible remap paths: sys_self_set_as, sys_as_set,
  // sys_segment_resize. Not persisted; a restored kernel starts cold.
  struct FaultHintSlot {
    std::atomic<ObjectId> thread{kInvalidObject};
    std::atomic<ObjectId> as{kInvalidObject};
    std::atomic<ObjectId> seg_ct{kInvalidObject};
    std::atomic<ObjectId> seg_obj{kInvalidObject};
  };
  static constexpr size_t kFaultHintSlots = 256;
  FaultHintSlot& CurrentFaultHint() const {
    return fault_hints_[EpochDomain::ThreadSlot() & (kFaultHintSlots - 1)];
  }
  mutable std::array<FaultHintSlot, kFaultHintSlots> fault_hints_;

  // id → generation of its latest MarkDirty. sys_sync retires an id only if
  // its generation still matches the snapshot it serialized, so a write
  // landing while the store commits (no shard lock held) keeps its mark.
  // This is also what makes incremental checkpoints sound: a mark that
  // survives the retire is re-serialized by the next increment.
  mutable Mutex dirty_mu_;
  std::unordered_map<ObjectId, uint64_t> dirty_ GUARDED_BY(dirty_mu_);
  uint64_t dirty_seq_ GUARDED_BY(dirty_mu_) = 0;

  // Registry cut covered by the last *committed* checkpoint (under
  // dirty_mu_). DoSync sends the labels interned past it as the batch's
  // label_delta and advances it only on success, so a failed commit's
  // records are simply resent (the store's table merge is idempotent).
  LabelRegistry::SnapshotMark persisted_label_mark_ GUARDED_BY(dirty_mu_);

  // Boot-time restore state (set by RestoreLabelTable, read by
  // RestoreObject/FinishRestore before concurrent syscalls exist):
  // old-persisted-id → freshly-interned-id, and whether they all matched.
  std::unordered_map<LabelId, LabelId> restore_label_remap_;
  bool restore_ids_stable_ = true;

  PersistTarget* persist_ = nullptr;

  // The async-ring worker pool (PR 5), created on first ring submission so
  // ring-free kernels spawn no worker threads. Declared last: workers
  // execute syscalls against all of the state above, so they must be joined
  // first at destruction (~Kernel also resets it explicitly).
  mutable Mutex ring_engine_mu_;
  mutable std::unique_ptr<RingEngine> ring_engine_ GUARDED_BY(ring_engine_mu_);
};

// Interface the kernel uses to push state to the single-level store.
class PersistTarget {
 public:
  virtual ~PersistTarget() = default;
  // Atomically advance the on-disk system state. `batch.dirty` carries
  // label-ref images of objects mutated since the last sync; `batch.live`
  // is the complete set of live ids (objects absent from it are dropped
  // from disk); `batch.label_delta` is the label-table delta since the last
  // committed checkpoint. Commits with a superblock flip — all or nothing.
  // The store decides whether this lands as a full base snapshot or an
  // incremental epoch (see single_level_store.h).
  virtual Status Checkpoint(const CheckpointBatch& batch) = 0;
  // Write-ahead-log a single object's new state (fsync of one object). The
  // blob is self-contained (kBlobFormatInline); meta_len bounds the
  // checksum-covered prefix once the record is folded into the heap.
  virtual Status SyncOne(ObjectId id, const std::vector<uint8_t>& bytes,
                         uint64_t meta_len) = 0;
  // Flush segment payload bytes [offset, offset+pages.size()) in place into
  // the object's home extent — the §7.1 "modified segment pages flushed
  // without checkpointing the entire system state" path used by random
  // writes to pre-existing segments. Carries the real bytes so the on-disk
  // image stays valid data (not a latency-only fiction), and the store
  // writes them past the checksummed metadata prefix so a crash in the
  // window before the next checkpoint can never make the blob look corrupt
  // at recovery.
  virtual Status SyncPages(ObjectId id, uint64_t offset,
                           const std::vector<uint8_t>& pages) = 0;
};

// RAII marker: the calling HOST thread is executing syscalls on behalf of
// another kernel thread (ring workers draining a submitter's descriptors).
// While active, the per-thread fault-hint slots are neither read nor
// written — a worker must not seed its lock sets from, or overwrite, the
// submitter's own last-fault footprint (the submitter may be faulting
// concurrently on its own host thread). Count stripes need no equivalent
// guard: SubmitChain performs no counting at all (sys_ring_submit charges
// the submitter up front, on the submitter's own host thread).
class ProxyExecution {
 public:
  ProxyExecution();
  ~ProxyExecution();
  ProxyExecution(const ProxyExecution&) = delete;
  ProxyExecution& operator=(const ProxyExecution&) = delete;

  static bool Active();

 private:
  bool prev_;
};

// RAII marker: Kernel::Get on this host thread resolves through the object
// table's lock-free published index instead of the locked shard map (PR 6).
// The caller MUST hold an EpochGuard for the marker's whole lifetime and
// MUST NOT hold (or take) any shard lock while it is active — the published
// index is exactly the no-lock alternative, and the *Locked helper bodies
// run unchanged on top of it for side-effect-free reads. SubmitBatch wraps
// each lock-free read group in one of these.
class PublishedReadMode {
 public:
  PublishedReadMode();
  ~PublishedReadMode();
  PublishedReadMode(const PublishedReadMode&) = delete;
  PublishedReadMode& operator=(const PublishedReadMode&) = delete;

  static bool Active();

 private:
  bool prev_;
};

// RAII binding of the calling host thread to a kernel thread id, so that
// library code can recover "current thread" without threading it through
// every call (the analogue of the hardware thread register).
class CurrentThread {
 public:
  static ObjectId Get();
  static void Set(ObjectId id);

  explicit CurrentThread(ObjectId id) : prev_(Get()) { Set(id); }
  ~CurrentThread() { Set(prev_); }

 private:
  ObjectId prev_;
};

}  // namespace histar

#endif  // SRC_KERNEL_KERNEL_H_
