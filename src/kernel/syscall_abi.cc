// Wire encode/decode for the batched syscall descriptors (syscall_abi.h).
//
// The archives fold over each descriptor's AbiFields tuple, so the field
// lists in the header are the single source of truth for the layout. Encode
// is not on the syscall hot path (SubmitBatch consumes in-memory descriptor
// spans directly); it exists so descriptor batches can be logged, shipped
// between address spaces, and property-tested for round-trip stability.
#include "src/kernel/syscall_abi.h"

#include <cstring>

namespace histar {

namespace {
// One entry per SyscallReq alternative, in ABI order.
constexpr const char* kSyscallKindNames[] = {
    "cat_create", "self_set_label", "self_set_clearance", "self_get_label",
    "self_get_clearance", "self_set_as", "self_get_as", "self_halt",
    "thread_create", "thread_alert", "self_next_alert", "self_local_read",
    "self_local_write", "container_create", "container_unref",
    "container_get_parent", "container_list", "container_link",
    "container_has", "obj_get_type", "obj_get_label", "obj_get_descrip",
    "obj_get_quota", "obj_get_metadata", "obj_set_metadata",
    "obj_set_fixed_quota", "obj_set_immutable", "quota_move",
    "segment_create", "segment_copy", "segment_resize", "segment_get_len",
    "segment_read", "segment_write", "as_create", "as_set", "as_get",
    "as_access", "gate_create", "gate_invoke", "gate_get_closure",
    "futex_wait", "futex_wake", "net_mac_addr", "net_transmit",
    "net_receive", "net_wait", "console_write", "sync", "sync_object",
    "sync_pages", "ring_create", "ring_submit", "ring_wait", "ring_reap",
    "trace_read",
};
static_assert(sizeof(kSyscallKindNames) / sizeof(kSyscallKindNames[0]) ==
                  kNumSyscallKinds,
              "name every SyscallReq alternative (append here too)");
}  // namespace

const char* SyscallKindName(size_t index) {
  return index < kNumSyscallKinds ? kSyscallKindNames[index] : "unknown";
}

namespace {

// Default-constructs variant alternative `idx` of V (skipping monostate
// semantics — callers pass the wire index directly). Declared ahead of the
// archives because embedded SyscallReq/SyscallRes fields (RingOp,
// RingCompletion) decode through it recursively.
template <typename V, size_t... I>
bool EmplaceByIndex(size_t idx, V* out, std::index_sequence<I...>) {
  bool hit = false;
  ((idx == I ? (out->template emplace<I>(), hit = true) : false), ...);
  return hit;
}

template <typename V>
bool EmplaceByIndex(size_t idx, V* out) {
  return EmplaceByIndex(idx, out, std::make_index_sequence<std::variant_size_v<V>>{});
}

// Ring submissions nest descriptors (a RingOp embeds a SyscallReq); the
// kernel rejects ring ops inside ring ops, but the decoder walks untrusted
// bytes and must bound recursion itself.
constexpr int kMaxDescriptorNesting = 8;

class Encoder {
 public:
  explicit Encoder(std::vector<uint8_t>* out) : out_(out) {}

  template <typename... Ts>
  void Fields(std::tuple<Ts&...> t) {
    std::apply([this](auto&... f) { (Put(f), ...); }, t);
  }

  void Put(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_->push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }
  void Put(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_->push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }
  void Put(int64_t v) { Put(static_cast<uint64_t>(v)); }
  void Put(bool v) { out_->push_back(v ? 1 : 0); }
  void Put(Status v) { Put(static_cast<uint32_t>(static_cast<int32_t>(v))); }
  void Put(ObjectType v) { out_->push_back(static_cast<uint8_t>(v)); }
  void Put(void* v) { Put(static_cast<uint64_t>(reinterpret_cast<uintptr_t>(v))); }
  void Put(const void* v) { Put(static_cast<uint64_t>(reinterpret_cast<uintptr_t>(v))); }
  void Put(const Label& v) { v.Serialize(out_); }
  void Put(const std::string& v) {
    Put(static_cast<uint32_t>(v.size()));
    out_->insert(out_->end(), v.begin(), v.end());
  }
  void Put(const std::vector<uint8_t>& v) {
    Put(static_cast<uint32_t>(v.size()));
    out_->insert(out_->end(), v.begin(), v.end());
  }
  void Put(const std::array<uint8_t, 6>& v) {
    out_->insert(out_->end(), v.begin(), v.end());
  }
  void Put(RingSlot v) { out_->push_back(static_cast<uint8_t>(v)); }
  // Embedded variants (RingOp::req, RingCompletion::res): raw alternative
  // index, then fields. The completion index is NOT shifted the way the
  // top-level EncodeRes tag is, so an unfilled (monostate) completion
  // inside a RingCompletion has a wire form (index 0, no fields).
  void Put(const SyscallReq& v) {
    Put(static_cast<uint32_t>(v.index()));
    SyscallReq tmp = v;
    std::visit([this](auto& alt) { Fields(AbiFields(alt)); }, tmp);
  }
  void Put(const SyscallRes& v) {
    Put(static_cast<uint32_t>(v.index()));
    SyscallRes tmp = v;
    std::visit(
        [this](auto& alt) {
          if constexpr (!std::is_same_v<std::decay_t<decltype(alt)>, std::monostate>) {
            Fields(AbiFields(alt));
          }
        },
        tmp);
  }
  template <typename T>
  void Put(const std::vector<T>& v) {
    Put(static_cast<uint32_t>(v.size()));
    for (const T& e : v) {
      Put(e);
    }
  }
  // Composite descriptors recurse through their own field lists. The
  // const_cast is sound: AbiFields only forms references and Put only reads
  // through them.
  template <typename T>
  void Put(const T& v) {
    Fields(AbiFields(const_cast<T&>(v)));
  }

 private:
  std::vector<uint8_t>* out_;
};

class Decoder {
 public:
  Decoder(const uint8_t* data, size_t len) : data_(data), len_(len) {}

  bool failed() const { return fail_; }
  size_t pos() const { return pos_; }

  template <typename... Ts>
  void Fields(std::tuple<Ts&...> t) {
    std::apply([this](auto&... f) { (Get(f), ...); }, t);
  }

  void Get(uint64_t& v) {
    if (!Need(8)) {
      return;
    }
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(data_[pos_ + static_cast<size_t>(i)]) << (8 * i);
    }
    pos_ += 8;
  }
  void Get(uint32_t& v) {
    if (!Need(4)) {
      return;
    }
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(data_[pos_ + static_cast<size_t>(i)]) << (8 * i);
    }
    pos_ += 4;
  }
  void Get(int64_t& v) {
    uint64_t u = 0;
    Get(u);
    v = static_cast<int64_t>(u);
  }
  void Get(bool& v) {
    if (!Need(1)) {
      return;
    }
    v = data_[pos_++] != 0;
  }
  void Get(Status& v) {
    uint32_t u = 0;
    Get(u);
    v = static_cast<Status>(static_cast<int32_t>(u));
  }
  void Get(ObjectType& v) {
    if (!Need(1)) {
      return;
    }
    uint8_t raw = data_[pos_++];
    if (raw >= kNumObjectTypes) {
      fail_ = true;
      return;
    }
    v = static_cast<ObjectType>(raw);
  }
  void Get(void*& v) {
    uint64_t u = 0;
    Get(u);
    v = reinterpret_cast<void*>(static_cast<uintptr_t>(u));
  }
  void Get(const void*& v) {
    uint64_t u = 0;
    Get(u);
    v = reinterpret_cast<const void*>(static_cast<uintptr_t>(u));
  }
  void Get(Label& v) {
    size_t consumed = 0;
    if (fail_ || !Label::Deserialize(data_ + pos_, len_ - pos_, &consumed, &v)) {
      fail_ = true;
      return;
    }
    pos_ += consumed;
  }
  void Get(std::string& v) {
    uint32_t n = 0;
    Get(n);
    if (!Need(n)) {
      return;
    }
    v.assign(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
  }
  void Get(std::vector<uint8_t>& v) {
    uint32_t n = 0;
    Get(n);
    if (!Need(n)) {
      return;
    }
    v.assign(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
  }
  void Get(std::array<uint8_t, 6>& v) {
    if (!Need(6)) {
      return;
    }
    memcpy(v.data(), data_ + pos_, 6);
    pos_ += 6;
  }
  void Get(RingSlot& v) {
    if (!Need(1)) {
      return;
    }
    uint8_t raw = data_[pos_++];
    if (raw > static_cast<uint8_t>(RingSlot::kContainer)) {
      fail_ = true;
      return;
    }
    v = static_cast<RingSlot>(raw);
  }
  void Get(SyscallReq& v) {
    uint32_t tag = 0;
    Get(tag);
    if (fail_ || ++depth_ > kMaxDescriptorNesting || !EmplaceByIndex(tag, &v)) {
      fail_ = true;
      return;
    }
    std::visit([this](auto& alt) { Fields(AbiFields(alt)); }, v);
    --depth_;
  }
  void Get(SyscallRes& v) {
    uint32_t tag = 0;
    Get(tag);
    if (fail_ || ++depth_ > kMaxDescriptorNesting || !EmplaceByIndex(tag, &v)) {
      fail_ = true;
      return;
    }
    std::visit(
        [this](auto& alt) {
          if constexpr (!std::is_same_v<std::decay_t<decltype(alt)>, std::monostate>) {
            Fields(AbiFields(alt));
          }
        },
        v);
    --depth_;
  }
  template <typename T>
  void Get(std::vector<T>& v) {
    uint32_t n = 0;
    Get(n);
    v.clear();
    for (uint32_t i = 0; i < n && !fail_; ++i) {
      T e{};
      Get(e);
      v.push_back(std::move(e));
    }
  }
  template <typename T>
  void Get(T& v) {
    Fields(AbiFields(v));
  }

 private:
  bool Need(size_t n) {
    if (fail_ || pos_ + n > len_) {
      fail_ = true;
      return false;
    }
    return true;
  }

  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
  bool fail_ = false;
  int depth_ = 0;
};

template <typename V>
bool DecodeVariant(const uint8_t* data, size_t len, size_t* consumed, V* out,
                   size_t index_offset) {
  Decoder dec(data, len);
  uint32_t tag = 0;
  dec.Get(tag);
  if (dec.failed() || !EmplaceByIndex(static_cast<size_t>(tag) + index_offset, out)) {
    return false;
  }
  std::visit(
      [&dec](auto& alt) {
        if constexpr (!std::is_same_v<std::decay_t<decltype(alt)>, std::monostate>) {
          dec.Fields(AbiFields(alt));
        }
      },
      *out);
  if (dec.failed()) {
    return false;
  }
  if (consumed != nullptr) {
    *consumed = dec.pos();
  }
  return true;
}

}  // namespace

void EncodeReq(const SyscallReq& req, std::vector<uint8_t>* out) {
  Encoder enc(out);
  enc.Put(static_cast<uint32_t>(req.index()));
  // AbiFields takes mutable references (one overload set serves encode and
  // decode); encoding reads through a copy, which keeps the input const.
  SyscallReq tmp = req;
  std::visit([&enc](auto& alt) { enc.Fields(AbiFields(alt)); }, tmp);
}

bool DecodeReq(const uint8_t* data, size_t len, size_t* consumed, SyscallReq* out) {
  return DecodeVariant(data, len, consumed, out, /*index_offset=*/0);
}

void EncodeRes(const SyscallRes& res, std::vector<uint8_t>* out) {
  if (res.index() == 0) {
    return;  // an unfilled completion has no wire form
  }
  Encoder enc(out);
  // The wire tag is the request index this completion answers (res index 1
  // completes req index 0).
  enc.Put(static_cast<uint32_t>(res.index() - 1));
  SyscallRes tmp = res;
  std::visit(
      [&enc](auto& alt) {
        if constexpr (!std::is_same_v<std::decay_t<decltype(alt)>, std::monostate>) {
          enc.Fields(AbiFields(alt));
        }
      },
      tmp);
}

bool DecodeRes(const uint8_t* data, size_t len, size_t* consumed, SyscallRes* out) {
  return DecodeVariant(data, len, consumed, out, /*index_offset=*/1);
}

// ---- Chain/completion utilities ---------------------------------------------

Status ResStatus(const SyscallRes& res) {
  return std::visit(
      [](const auto& alt) -> Status {
        if constexpr (std::is_same_v<std::decay_t<decltype(alt)>, std::monostate>) {
          return Status::kInvalidArg;  // never filled
        } else {
          return alt.status;
        }
      },
      res);
}

void MakeRes(const SyscallReq& req, Status st, SyscallRes* out) {
  // Completion alternative i+1 answers request alternative i (the variant
  // layout contract asserted in syscall_abi.h), so the index arithmetic
  // cannot miss — but stay defensive and leave monostate on the impossible
  // path rather than crash.
  if (!EmplaceByIndex(req.index() + 1, out)) {
    *out = std::monostate{};
    return;
  }
  std::visit(
      [st](auto& alt) {
        if constexpr (!std::is_same_v<std::decay_t<decltype(alt)>, std::monostate>) {
          alt.status = st;
        }
      },
      *out);
}

bool ResSlotRead(const SyscallRes& res, RingSlot slot, uint64_t* v) {
  return std::visit(
      [&](const auto& alt) -> bool {
        using T = std::decay_t<decltype(alt)>;
        if constexpr (std::is_same_v<T, std::monostate>) {
          return false;
        } else {
          if (alt.status != Status::kOk) {
            return false;  // value fields are meaningful only on success
          }
          switch (slot) {
            case RingSlot::kLen:
              if constexpr (requires { alt.len; }) {
                *v = alt.len;
                return true;
              }
              return false;
            case RingSlot::kObject:
            case RingSlot::kContainer:
              if constexpr (requires { alt.id; }) {
                *v = alt.id;
                return true;
              }
              return false;
            case RingSlot::kCount:
              if constexpr (requires { alt.woken; }) {
                *v = alt.woken;
                return true;
              }
              return false;
            default:
              return false;  // kNone / kOff are not completion sources
          }
        }
      },
      res);
}

bool ReqSlotWrite(SyscallReq* req, RingSlot slot, uint64_t v) {
  return std::visit(
      [&](auto& r) -> bool {
        switch (slot) {
          case RingSlot::kLen:
            if constexpr (requires { r.len; }) {
              r.len = v;
              return true;
            } else if constexpr (requires { r.maxlen; }) {
              r.maxlen = v;
              return true;
            }
            return false;
          case RingSlot::kOff:
            if constexpr (requires { r.off; }) {
              r.off = v;
              return true;
            } else if constexpr (requires { r.offset; }) {
              r.offset = v;
              return true;
            }
            return false;
          case RingSlot::kObject:
            if constexpr (requires { r.ce; }) {
              r.ce.object = v;
              return true;
            }
            return false;
          case RingSlot::kContainer:
            if constexpr (requires { r.ce; }) {
              r.ce.container = v;
              return true;
            }
            return false;
          default:
            return false;
        }
      },
      *req);
}

}  // namespace histar
