// Kernel object base class and the six concrete object types (paper §3).
//
// Every object has a unique 61-bit id, a label, a quota bounding its storage
// usage, 64 bytes of mutable user metadata, a 32-byte descriptive string and
// two one-way flags: immutable (irrevocably read-only) and fixed-quota
// (required before the object can be multiply hard-linked).
//
// Objects are passive data; all rule enforcement lives in Kernel. Except for
// threads, labels are specified at creation and then immutable — which is
// why objects do not store a Label at all: they hold a LabelId handle into
// the kernel's LabelRegistry, where the canonical label and its precomputed
// shifted variants live. Resolving an id back to a Label goes through
// Kernel::LabelOf / the registry.
//
// Objects carry no locks of their own. The object table is sharded
// (src/kernel/object_table.h); every accessor here — including the
// `*_internal` mutators — assumes the caller holds the table lock of the
// shard covering this object's id: shared mode for the const readers,
// exclusive for anything that mutates (see ARCHITECTURE.md "Concurrency
// model" and the helper contracts in kernel.h).
//
// PR 6 exception: the fields the lock-free read path may touch are
// atomics (label id, quota, thread halted/clearance) or published
// snapshots (container link list, segment length), so epoch-protected
// readers holding NO shard lock see them torn-free. Everything else —
// segment payload bytes, AS mappings, metadata, alerts — is still
// lock-disciplined plain data, and the syscalls that read it stay on the
// locked path (see kernel.h's batch-plan table).
#ifndef SRC_KERNEL_OBJECT_H_
#define SRC_KERNEL_OBJECT_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "src/core/label.h"
#include "src/core/label_registry.h"
#include "src/kernel/types.h"

namespace histar {

class Object {
 public:
  Object(ObjectId id, ObjectType type, LabelId label_id)
      : id_(id), type_(type), label_id_(label_id) {
    descrip_.fill(0);
    metadata_.fill(0);
  }
  virtual ~Object() = default;

  Object(const Object&) = delete;
  Object& operator=(const Object&) = delete;

  ObjectId id() const { return id_; }
  ObjectType type() const { return type_; }

  // Creation sequence number: checkpoints write objects in this order, so
  // delayed allocation lays consecutively created objects out contiguously
  // (the §4 single-level-store behavior that makes LFS reads fast).
  uint64_t creation_seq() const { return creation_seq_; }
  void set_creation_seq(uint64_t s) { creation_seq_ = s; }

  // Handle of this object's label in the kernel's LabelRegistry. The ToHi
  // form needed by observation checks is reached through the registry
  // (HiOf), not stored here. Acquire/release: a lock-free reader that
  // loads the id must also see the registry entry the interning thread
  // published behind it.
  LabelId label_id() const { return label_id_.load(std::memory_order_acquire); }
  // Only Kernel may relabel, and only for threads (self_set_label).
  void set_label_id_internal(LabelId v) {
    label_id_.store(v, std::memory_order_release);
  }

  uint64_t quota() const { return quota_.load(std::memory_order_relaxed); }
  void set_quota_internal(uint64_t q) {
    quota_.store(q, std::memory_order_relaxed);
  }

  bool fixed_quota() const { return fixed_quota_; }
  void set_fixed_quota_internal() { fixed_quota_ = true; }

  bool immutable() const { return immutable_; }
  void set_immutable_internal() { immutable_ = true; }

  // Number of container hard links currently referencing this object.
  uint32_t link_count() const { return link_count_; }
  void add_link_internal() { ++link_count_; }
  void drop_link_internal() { --link_count_; }

  std::string descrip() const {
    return std::string(descrip_.data(),
                       strnlen(descrip_.data(), kDescripLen));
  }
  void set_descrip_internal(const std::string& d) {
    descrip_.fill(0);
    memcpy(descrip_.data(), d.data(), std::min(d.size(), kDescripLen));
  }

  const std::array<uint8_t, kMetadataLen>& metadata() const { return metadata_; }
  std::array<uint8_t, kMetadataLen>& metadata_mutable() { return metadata_; }

  // Storage footprint of this object alone (not counting contained quotas);
  // used by the quota system and by the store's space accounting.
  virtual uint64_t OwnUsage() const { return kObjectOverheadBytes; }

  // Called by ObjectTable::InsertLocked just before the object becomes
  // reachable from the lock-free published index: subclasses with derived
  // published state (segment length, container link snapshot) seed it
  // here so no reader can observe the object without it.
  virtual void OnPublish() {}

 private:
  const ObjectId id_;
  const ObjectType type_;
  uint64_t creation_seq_ = 0;
  std::atomic<LabelId> label_id_{kInvalidLabelId};
  std::atomic<uint64_t> quota_{0};
  bool fixed_quota_ = false;
  bool immutable_ = false;
  uint32_t link_count_ = 0;
  std::array<char, kDescripLen> descrip_;
  std::array<uint8_t, kMetadataLen> metadata_;
};

// Segment: a variable-length byte array — the file/memory primitive.
class Segment : public Object {
 public:
  Segment(ObjectId id, LabelId label_id) : Object(id, ObjectType::kSegment, label_id) {}

  std::vector<uint8_t>& bytes() { return bytes_; }
  const std::vector<uint8_t>& bytes() const { return bytes_; }

  // Length as seen by the lock-free read path (sys_segment_get_len).
  // Every length mutation under the exclusive lock republishes; the
  // payload itself is NOT lock-free-readable (reads stay locked).
  uint64_t published_len() const {
    return published_len_.load(std::memory_order_acquire);
  }
  void publish_len_internal() {
    published_len_.store(bytes_.size(), std::memory_order_release);
  }

  void OnPublish() override { publish_len_internal(); }

  uint64_t OwnUsage() const override { return kObjectOverheadBytes + bytes_.size(); }

 private:
  std::vector<uint8_t> bytes_;
  std::atomic<uint64_t> published_len_{0};
};

// Container: holds hard links to objects and anchors the quota hierarchy.
class Container : public Object {
 public:
  Container(ObjectId id, LabelId label_id, uint32_t avoid_types, ObjectId parent)
      : Object(id, ObjectType::kContainer, label_id),
        avoid_types_(avoid_types),
        parent_(parent) {}

  uint32_t avoid_types() const { return avoid_types_; }
  ObjectId parent() const { return parent_; }

  const std::vector<ObjectId>& links() const { return links_; }
  std::vector<ObjectId>& links_mutable() { return links_; }
  bool HasLink(ObjectId o) const;

  // Immutable copy of the link list for the lock-free read path
  // (ResolveEntry's membership check, sys_container_list/has). Mutators
  // (LinkInto / UnlinkFrom, under the exclusive lock) call
  // RepublishLinks and retire the returned stale snapshot through the
  // epoch layer; the final snapshot dies with the container (whose own
  // destruction is itself epoch-deferred).
  const std::vector<ObjectId>* links_snapshot() const {
    return links_snapshot_.load(std::memory_order_acquire);
  }
  [[nodiscard]] const std::vector<ObjectId>* RepublishLinks() {
    const std::vector<ObjectId>* fresh = new std::vector<ObjectId>(links_);
    return links_snapshot_.exchange(fresh, std::memory_order_acq_rel);
  }

  void OnPublish() override {
    delete links_snapshot_.exchange(new std::vector<ObjectId>(links_),
                                    std::memory_order_acq_rel);
  }

  ~Container() override {
    delete links_snapshot_.load(std::memory_order_relaxed);
  }

  // Sum of quotas of contained objects plus our own structures.
  uint64_t usage() const { return usage_; }
  void set_usage_internal(uint64_t u) { usage_ = u; }

  uint64_t OwnUsage() const override {
    return kObjectOverheadBytes + links_.size() * 16;
  }

 private:
  const uint32_t avoid_types_;
  const ObjectId parent_;
  std::vector<ObjectId> links_;
  // Sum of contained objects' quotas only; OwnUsage() covers our structures.
  uint64_t usage_ = 0;
  std::atomic<const std::vector<ObjectId>*> links_snapshot_{nullptr};
};

// A single address-space mapping: VA → ⟨segment, offset, npages, flags⟩.
struct Mapping {
  uint64_t va = 0;                 // page-aligned virtual address
  ContainerEntry segment;          // ⟨D,O⟩ naming the backing segment
  uint64_t start_page = 0;         // offset into the segment, in pages
  uint64_t npages = 0;
  uint32_t flags = 0;              // kMapRead | kMapWrite | kMapExec | user bits

  bool Covers(uint64_t addr) const {
    return addr >= va && addr < va + npages * kPageSize;
  }
};

class AddressSpace : public Object {
 public:
  AddressSpace(ObjectId id, LabelId label_id)
      : Object(id, ObjectType::kAddressSpace, label_id) {}

  const std::vector<Mapping>& mappings() const { return mappings_; }
  std::vector<Mapping>& mappings_mutable() { return mappings_; }

  // Find the mapping covering `va`, or nullptr.
  const Mapping* Lookup(uint64_t va) const;

  uint64_t OwnUsage() const override {
    return kObjectOverheadBytes + mappings_.size() * sizeof(Mapping);
  }

 private:
  std::vector<Mapping> mappings_;
};

// Thread: the only object whose label can change after creation. A thread
// also carries a clearance bounding how far it may taint itself, a one-page
// thread-local segment, and a queue of pending alerts.
class Thread : public Object {
 public:
  Thread(ObjectId id, LabelId label_id, LabelId clearance_id)
      : Object(id, ObjectType::kThread, label_id), clearance_id_(clearance_id) {
    local_segment_.resize(kPageSize, 0);
  }

  // Atomic for the same reason as Object::label_id_: threads are
  // relabeled after publication (gate invoke, self_set_clearance) while
  // lock-free readers check them.
  LabelId clearance_id() const {
    return clearance_id_.load(std::memory_order_acquire);
  }
  void set_clearance_id_internal(LabelId v) {
    clearance_id_.store(v, std::memory_order_release);
  }

  ContainerEntry address_space() const { return address_space_; }
  void set_address_space_internal(ContainerEntry as) { address_space_ = as; }

  std::vector<uint8_t>& local_segment() { return local_segment_; }

  bool halted() const { return halted_.load(std::memory_order_acquire); }
  void set_halted_internal() { halted_.store(true, std::memory_order_release); }

  std::deque<uint64_t>& alerts() { return alerts_; }

  uint64_t OwnUsage() const override { return kObjectOverheadBytes + kPageSize; }

 private:
  std::atomic<LabelId> clearance_id_{kInvalidLabelId};
  ContainerEntry address_space_;
  std::vector<uint8_t> local_segment_;
  std::atomic<bool> halted_{false};
  std::deque<uint64_t> alerts_;
};

// Context passed to a gate entry function when a thread crosses the gate.
class Kernel;
struct GateCall {
  Kernel* kernel = nullptr;
  ObjectId thread = kInvalidObject;          // the (relabeled) invoking thread
  std::vector<uint64_t> closure;             // gate creator's closure words
  ContainerEntry gate;                       // the gate that was invoked
  Label verify;                              // caller's verify label L_V (§3.5)
};

// Entry functions simulate "code segments": real HiStar stores an address
// space + PC in the gate; we store the id of a function registered in the
// kernel's GateEntryRegistry so gates survive checkpoint/restore the same
// way code segments survive on disk.
using GateEntryFn = std::function<void(GateCall&)>;

// Gate: protected control transfer carrying privilege (paper §3.5). Gate
// labels, unlike other object labels, may contain ⋆.
class Gate : public Object {
 public:
  Gate(ObjectId id, LabelId label_id, LabelId clearance_id, std::string entry_name,
       std::vector<uint64_t> closure)
      : Object(id, ObjectType::kGate, label_id),
        clearance_id_(clearance_id),
        entry_name_(std::move(entry_name)),
        closure_(std::move(closure)) {}

  LabelId clearance_id() const { return clearance_id_; }
  const std::string& entry_name() const { return entry_name_; }
  const std::vector<uint64_t>& closure() const { return closure_; }

  uint64_t OwnUsage() const override {
    return kObjectOverheadBytes + entry_name_.size() + closure_.size() * 8;
  }

 private:
  const LabelId clearance_id_;
  const std::string entry_name_;
  const std::vector<uint64_t> closure_;
};

// Device kinds supported by the simulated kernel (paper §4.1: console,
// network; the disk is internal to the single-level store).
enum class DeviceKind : uint8_t {
  kConsole = 0,
  kNet = 1,
};

// Runtime attachment point for a network device; implemented by src/net.
// Not persisted: like a real NIC, it is re-attached at boot.
class NetPort {
 public:
  virtual ~NetPort() = default;
  virtual std::array<uint8_t, 6> MacAddress() = 0;
  // Queue a frame for transmission. Returns false if the TX ring is full.
  virtual bool Transmit(const std::vector<uint8_t>& frame) = 0;
  // Dequeue a received frame; returns false if none pending.
  virtual bool Receive(std::vector<uint8_t>* frame) = 0;
  // Block until a frame arrives or `deadline_ms` of simulated patience runs
  // out. Returns false on timeout.
  virtual bool WaitForFrame(uint32_t timeout_ms) = 0;
};

// Per-entry storage charge for a ring (stands in for the SQ/CQ slots the
// real kernel would pin): a ring of capacity N is charged N of these against
// its quota at creation.
inline constexpr uint64_t kRingEntryCharge = 64;

// Ring: an asynchronous submission/completion queue pair (PR 5, io_uring's
// SQ/CQ shape applied to the labeled object model). The *object* carries
// only the persistent identity — label, quota, capacity; the queue state
// itself (pending submissions, unreaped completions, waiter condvars) is
// volatile kernel state keyed by this object's id (src/kernel/ring.h),
// exactly as futex queues are volatile state keyed by a segment id. A
// restored ring therefore comes back empty, the way a rebooted NIC comes
// back with empty descriptor rings.
class Ring : public Object {
 public:
  Ring(ObjectId id, LabelId label_id, uint32_t capacity)
      : Object(id, ObjectType::kRing, label_id), capacity_(capacity) {}

  // Upper bound on ops in flight (submitted but not yet reaped).
  uint32_t capacity() const { return capacity_; }

  uint64_t OwnUsage() const override {
    return kObjectOverheadBytes + uint64_t{capacity_} * kRingEntryCharge;
  }

 private:
  const uint32_t capacity_;
};

class Device : public Object {
 public:
  Device(ObjectId id, LabelId label_id, DeviceKind kind)
      : Object(id, ObjectType::kDevice, label_id), kind_(kind) {}

  DeviceKind kind() const { return kind_; }

  NetPort* net_port() const { return net_port_; }
  void set_net_port(NetPort* p) { net_port_ = p; }

  // Console output sink (tests capture it; default accumulates).
  std::string& console_buffer() { return console_buffer_; }

 private:
  const DeviceKind kind_;
  NetPort* net_port_ = nullptr;
  std::string console_buffer_;
};

}  // namespace histar

#endif  // SRC_KERNEL_OBJECT_H_
