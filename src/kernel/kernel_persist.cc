// Object serialization and the single-level-store interface (paper §3, §4).
//
// Every kernel object can be flattened into a byte vector and restored; the
// store (src/store) persists these blobs. Gate entry functions are not
// serialized — the entry *name* is, standing in for the on-disk code segment
// that the real system would map; names must be re-registered at boot.
//
// Snapshot locking: sys_sync builds its batch (live set + serialized dirty
// objects) under ONE all-shards shared lock — TableLock::All acquires the
// shards in ascending index order — so the checkpoint image is a consistent
// cut of the object graph even while reader syscalls proceed on other
// threads. The store commit itself runs with no kernel lock held, exactly
// like the old single-mutex code.
#include <algorithm>
#include <cstring>

#include "src/kernel/kernel.h"

namespace histar {

namespace {

void PutU8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutBytes(std::vector<uint8_t>* out, const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  out->insert(out->end(), p, p + len);
}

void PutString(std::vector<uint8_t>* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  PutBytes(out, s.data(), s.size());
}

// Cursor-based reader with bounds checking.
struct Reader {
  const uint8_t* data;
  size_t len;
  size_t pos = 0;
  bool fail = false;

  uint8_t U8() {
    if (pos + 1 > len) {
      fail = true;
      return 0;
    }
    return data[pos++];
  }
  uint32_t U32() {
    if (pos + 4 > len) {
      fail = true;
      return 0;
    }
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(data[pos + static_cast<size_t>(i)]) << (8 * i);
    }
    pos += 4;
    return v;
  }
  uint64_t U64() {
    if (pos + 8 > len) {
      fail = true;
      return 0;
    }
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(data[pos + static_cast<size_t>(i)]) << (8 * i);
    }
    pos += 8;
    return v;
  }
  bool Bytes(void* out, size_t n) {
    if (pos + n > len) {
      fail = true;
      return false;
    }
    if (n != 0) {  // n == 0 legitimately pairs with a null out (empty segment)
      memcpy(out, data + pos, n);
    }
    pos += n;
    return true;
  }
  std::string String() {
    uint32_t n = U32();
    if (fail || pos + n > len) {
      fail = true;
      return "";
    }
    std::string s(reinterpret_cast<const char*>(data + pos), n);
    pos += n;
    return s;
  }
  bool ReadLabel(histar::Label* out) {
    size_t consumed = 0;
    if (fail || !histar::Label::Deserialize(data + pos, len - pos, &consumed, out)) {
      fail = true;
      return false;
    }
    pos += consumed;
    return true;
  }
};

void PutLabel(std::vector<uint8_t>* out, const Label& l) { l.Serialize(out); }

}  // namespace

bool Kernel::SerializeObjectLocked(const Object& o, std::vector<uint8_t>* out) const {
  out->clear();
  PutU8(out, static_cast<uint8_t>(o.type()));
  PutU64(out, o.id());
  PutU64(out, o.creation_seq());
  // Objects hold registry handles; the canonical label bytes come from the
  // registry. LabelIds themselves are volatile and never written to disk —
  // restore re-interns and rebuilds them (see FinishRestore).
  PutLabel(out, LabelOf(o));
  PutU64(out, o.quota());
  PutU8(out, o.fixed_quota() ? 1 : 0);
  PutU8(out, o.immutable() ? 1 : 0);
  PutString(out, o.descrip());
  PutBytes(out, o.metadata().data(), kMetadataLen);

  switch (o.type()) {
    case ObjectType::kSegment: {
      const Segment& s = static_cast<const Segment&>(o);
      PutU64(out, s.bytes().size());
      PutBytes(out, s.bytes().data(), s.bytes().size());
      break;
    }
    case ObjectType::kContainer: {
      const Container& c = static_cast<const Container&>(o);
      PutU32(out, c.avoid_types());
      PutU64(out, c.parent());
      PutU32(out, static_cast<uint32_t>(c.links().size()));
      for (ObjectId l : c.links()) {
        PutU64(out, l);
      }
      break;
    }
    case ObjectType::kThread: {
      const Thread& t = static_cast<const Thread&>(o);
      PutLabel(out, ClearanceOf(t));
      PutU8(out, t.halted() ? 1 : 0);
      PutU64(out, t.address_space().container);
      PutU64(out, t.address_space().object);
      PutBytes(out, const_cast<Thread&>(t).local_segment().data(), kPageSize);
      break;
    }
    case ObjectType::kAddressSpace: {
      const AddressSpace& as = static_cast<const AddressSpace&>(o);
      PutU32(out, static_cast<uint32_t>(as.mappings().size()));
      for (const Mapping& m : as.mappings()) {
        PutU64(out, m.va);
        PutU64(out, m.segment.container);
        PutU64(out, m.segment.object);
        PutU64(out, m.start_page);
        PutU64(out, m.npages);
        PutU32(out, m.flags);
      }
      break;
    }
    case ObjectType::kGate: {
      const Gate& g = static_cast<const Gate&>(o);
      PutLabel(out, ClearanceOf(g));
      PutString(out, g.entry_name());
      PutU32(out, static_cast<uint32_t>(g.closure().size()));
      for (uint64_t w : g.closure()) {
        PutU64(out, w);
      }
      break;
    }
    case ObjectType::kDevice: {
      const Device& d = static_cast<const Device&>(o);
      PutU8(out, static_cast<uint8_t>(d.kind()));
      break;
    }
  }
  return true;
}

bool Kernel::SerializeObject(ObjectId id, std::vector<uint8_t>* out) const {
  TableLock lk(table_, TableLock::Mode::kShared, {id});
  const Object* o = Get(id);
  if (o == nullptr) {
    return false;
  }
  return SerializeObjectLocked(*o, out);
}

Status Kernel::RestoreObject(const std::vector<uint8_t>& bytes) {
  Reader r{bytes.data(), bytes.size()};
  uint8_t type_raw = r.U8();
  if (r.fail || type_raw >= kNumObjectTypes) {
    return Status::kCorrupt;
  }
  ObjectType type = static_cast<ObjectType>(type_raw);
  ObjectId id = r.U64();
  uint64_t creation_seq = r.U64();
  Label label;
  if (!r.ReadLabel(&label)) {
    return Status::kCorrupt;
  }
  uint64_t quota = r.U64();
  bool fixed = r.U8() != 0;
  bool immutable = r.U8() != 0;
  std::string descrip = r.String();
  std::array<uint8_t, kMetadataLen> metadata;
  r.Bytes(metadata.data(), kMetadataLen);
  if (r.fail) {
    return Status::kCorrupt;
  }

  // Re-intern on recovery: the blob carries label bytes, the live object
  // carries only the registry handle. This is the rebuild-on-recover path —
  // ids are assigned fresh each boot, like the in-memory comparison cache
  // the paper's kernel discards across reboots.
  LabelId label_id = registry_.Intern(label);

  std::unique_ptr<Object> obj;
  switch (type) {
    case ObjectType::kSegment: {
      uint64_t len = r.U64();
      if (r.fail || r.pos + len > r.len) {
        return Status::kCorrupt;
      }
      auto s = std::make_unique<Segment>(id, label_id);
      s->bytes().resize(len);
      r.Bytes(s->bytes().data(), len);
      obj = std::move(s);
      break;
    }
    case ObjectType::kContainer: {
      uint32_t avoid = r.U32();
      ObjectId parent = r.U64();
      uint32_t n = r.U32();
      if (r.fail) {
        return Status::kCorrupt;
      }
      auto c = std::make_unique<Container>(id, label_id, avoid, parent);
      for (uint32_t i = 0; i < n && !r.fail; ++i) {
        c->links_mutable().push_back(r.U64());
      }
      obj = std::move(c);
      break;
    }
    case ObjectType::kThread: {
      Label clearance;
      if (!r.ReadLabel(&clearance)) {
        return Status::kCorrupt;
      }
      bool halted = r.U8() != 0;
      ContainerEntry as{r.U64(), r.U64()};
      auto t = std::make_unique<Thread>(id, label_id, registry_.Intern(clearance));
      r.Bytes(t->local_segment().data(), kPageSize);
      t->set_address_space_internal(as);
      if (halted) {
        t->set_halted_internal();
      }
      obj = std::move(t);
      break;
    }
    case ObjectType::kAddressSpace: {
      uint32_t n = r.U32();
      auto as = std::make_unique<AddressSpace>(id, label_id);
      for (uint32_t i = 0; i < n && !r.fail; ++i) {
        Mapping m;
        m.va = r.U64();
        m.segment.container = r.U64();
        m.segment.object = r.U64();
        m.start_page = r.U64();
        m.npages = r.U64();
        m.flags = r.U32();
        as->mappings_mutable().push_back(m);
      }
      obj = std::move(as);
      break;
    }
    case ObjectType::kGate: {
      Label clearance;
      if (!r.ReadLabel(&clearance)) {
        return Status::kCorrupt;
      }
      std::string entry = r.String();
      uint32_t n = r.U32();
      std::vector<uint64_t> closure;
      for (uint32_t i = 0; i < n && !r.fail; ++i) {
        closure.push_back(r.U64());
      }
      obj = std::make_unique<Gate>(id, label_id, registry_.Intern(clearance), entry, closure);
      break;
    }
    case ObjectType::kDevice: {
      uint8_t kind = r.U8();
      obj = std::make_unique<Device>(id, label_id, static_cast<DeviceKind>(kind));
      break;
    }
  }
  if (r.fail || obj == nullptr) {
    return Status::kCorrupt;
  }
  obj->set_quota_internal(quota);
  if (fixed) {
    obj->set_fixed_quota_internal();
  }
  if (immutable) {
    obj->set_immutable_internal();
  }
  obj->set_descrip_internal(descrip);
  obj->metadata_mutable() = metadata;

  obj->set_creation_seq(creation_seq);
  // Monotonic max: restore runs object-by-object, and fresh allocations must
  // sequence after everything already on disk.
  uint64_t prev = creation_counter_.load(std::memory_order_relaxed);
  while (prev < creation_seq &&
         !creation_counter_.compare_exchange_weak(prev, creation_seq,
                                                  std::memory_order_relaxed)) {
  }
  TableLock lk(table_, TableLock::Mode::kExclusive, {id});
  table_.InsertLocked(std::move(obj));
  return Status::kOk;
}

void Kernel::FinishRestore(ObjectId root) {
  TableLock lk = TableLock::All(table_, TableLock::Mode::kExclusive);
  root_ = root;
  // Rebuild link counts and container usages from the link graph. Labels
  // were already re-interned object-by-object in RestoreObject, so the
  // registry is fully populated by the time restore finishes.
  table_.ForEachLocked([](ObjectId, Object* obj) {
    while (obj->link_count() > 0) {
      obj->drop_link_internal();
    }
  });
  table_.ForEachLocked([this](ObjectId, Object* obj) {
    if (obj->type() != ObjectType::kContainer) {
      return;
    }
    Container* c = static_cast<Container*>(obj);
    uint64_t usage = 0;
    for (ObjectId child : c->links()) {
      Object* co = Get(child);
      if (co != nullptr) {
        co->add_link_internal();
        if (co->quota() != kQuotaInfinite) {
          usage += co->quota();
        }
      }
    }
    c->set_usage_internal(usage);
  });
  Object* root_obj = Get(root_);
  if (root_obj != nullptr) {
    root_obj->add_link_internal();  // permanent anchor
  }
  std::lock_guard<std::mutex> dl(dirty_mu_);
  dirty_.clear();
}

std::vector<ObjectId> Kernel::LiveLocked() const {
  // Creation order, so checkpoints lay out consecutively created objects
  // contiguously (delayed allocation keeps related data together on disk).
  std::vector<std::pair<uint64_t, ObjectId>> seq;
  seq.reserve(table_.SizeLocked());
  table_.ForEachLocked([&seq](ObjectId id, const Object* obj) {
    seq.emplace_back(obj->creation_seq(), id);
  });
  std::sort(seq.begin(), seq.end());
  std::vector<ObjectId> out;
  out.reserve(seq.size());
  for (const auto& [s, id] : seq) {
    out.push_back(id);
  }
  return out;
}

std::vector<ObjectId> Kernel::LiveObjects() const {
  TableLock lk = TableLock::All(table_, TableLock::Mode::kShared);
  return LiveLocked();
}

std::vector<std::pair<ObjectId, uint64_t>> Kernel::DirtySnapshotLocked() const {
  // Shard locks before dirty_mu_ (lock hierarchy): the caller holds the
  // table, so the creation_seq reads below are stable.
  std::vector<std::pair<ObjectId, uint64_t>> marks;
  {
    std::lock_guard<std::mutex> dl(dirty_mu_);
    marks.assign(dirty_.begin(), dirty_.end());
  }
  // Creation order, like LiveObjects: the checkpoint writes the batch to
  // contiguous extents in this order, so consecutively created files end up
  // physically adjacent (what makes uncached directory-order reads mostly
  // sequential).
  std::vector<std::pair<uint64_t, std::pair<ObjectId, uint64_t>>> seq;
  seq.reserve(marks.size());
  for (const auto& [id, gen] : marks) {
    const Object* obj = Get(id);
    if (obj != nullptr) {
      seq.emplace_back(obj->creation_seq(), std::make_pair(id, gen));
    }
  }
  std::sort(seq.begin(), seq.end());
  std::vector<std::pair<ObjectId, uint64_t>> out;
  out.reserve(seq.size());
  for (const auto& [s, mark] : seq) {
    out.push_back(mark);
  }
  return out;
}

std::vector<ObjectId> Kernel::DirtyObjects() const {
  TableLock lk = TableLock::All(table_, TableLock::Mode::kShared);
  std::vector<ObjectId> out;
  for (const auto& [id, gen] : DirtySnapshotLocked()) {
    out.push_back(id);
  }
  return out;
}

void Kernel::ClearDirty() {
  std::lock_guard<std::mutex> lock(dirty_mu_);
  dirty_.clear();
}

Status Kernel::DoSync(ObjectId self) {
  {
    TableLock lk(table_, TableLock::Mode::kShared, {self});
    Thread* t = GetThread(self);
    if (t == nullptr || t->halted()) {
      return Status::kHalted;
    }
  }
  if (persist_ == nullptr) {
    return Status::kOk;  // volatile configuration: sync is a no-op
  }
  // Group sync (§7.1): checkpoint the system state. Only objects mutated
  // since the last sync are re-serialized; the live-id set lets the store
  // drop deleted objects. The whole batch is built under one all-shards
  // shared lock (a consistent cut); the store then commits atomically
  // (superblock flip) with no kernel lock held.
  std::vector<ObjectId> live;
  std::vector<std::pair<ObjectId, uint64_t>> snapshot;
  std::vector<std::pair<ObjectId, std::vector<uint8_t>>> batch;
  {
    TableLock lk = TableLock::All(table_, TableLock::Mode::kShared);
    live = LiveLocked();
    snapshot = DirtySnapshotLocked();
    batch.reserve(snapshot.size());
    for (const auto& [id, gen] : snapshot) {
      std::vector<uint8_t> bytes;
      if (SerializeObjectLocked(*Get(id), &bytes)) {
        batch.emplace_back(id, std::move(bytes));
      }
    }
  }
  Status st = persist_->Checkpoint(batch, live, root_);
  if (st == Status::kOk) {
    // Retire only marks whose generation still matches what was serialized:
    // an object re-dirtied while the store was committing (no shard lock
    // held) carries a newer generation and stays dirty for the next sync.
    std::lock_guard<std::mutex> dl(dirty_mu_);
    for (const auto& [id, gen] : snapshot) {
      auto it = dirty_.find(id);
      if (it != dirty_.end() && it->second == gen) {
        dirty_.erase(it);
      }
    }
  }
  return st;
}

Status Kernel::DoSyncPages(ObjectId self, ContainerEntry ce, uint64_t offset, uint64_t len) {
  ObjectId target;
  {
    TableLock lk(table_, TableLock::Mode::kShared, {self, ce.container, ce.object});
    Thread* t = GetThread(self);
    if (t == nullptr || t->halted()) {
      return Status::kHalted;
    }
    Result<Object*> o = ResolveEntry(*t, ce);
    if (!o.ok()) {
      return o.status();
    }
    if (!CanObserve(*t, *o.value())) {
      return Status::kLabelCheckFailed;
    }
    target = o.value()->id();
  }
  if (persist_ == nullptr) {
    return Status::kOk;
  }
  return persist_->SyncPages(target, offset, len);
}

Status Kernel::DoSyncObject(ObjectId self, ContainerEntry ce) {
  ObjectId target;
  {
    TableLock lk(table_, TableLock::Mode::kShared, {self, ce.container, ce.object});
    Thread* t = GetThread(self);
    if (t == nullptr || t->halted()) {
      return Status::kHalted;
    }
    Result<Object*> o = ResolveEntry(*t, ce);
    if (!o.ok()) {
      return o.status();
    }
    if (!CanObserve(*t, *o.value())) {
      return Status::kLabelCheckFailed;
    }
    target = o.value()->id();
  }
  if (persist_ == nullptr) {
    return Status::kOk;
  }
  std::vector<uint8_t> bytes;
  if (!SerializeObject(target, &bytes)) {
    return Status::kNotFound;
  }
  return persist_->SyncOne(target, bytes);
}

}  // namespace histar
