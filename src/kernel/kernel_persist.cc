// Object serialization and the single-level-store interface (paper §3, §4).
//
// Every kernel object can be flattened into a byte vector and restored; the
// store (src/store) persists these blobs. Gate entry functions are not
// serialized — the entry *name* is, standing in for the on-disk code segment
// that the real system would map; names must be re-registered at boot.
//
// Blob formats (first byte, see kernel.h): checkpoint blobs are
// kBlobFormatLabelRef — labels appear as 32-bit interned ids, and the label
// bytes live exactly once in the checkpoint's label-table section — while
// WAL blobs (sys_sync_object) are kBlobFormatInline and self-contained.
// Restore loads the label table first (RestoreLabelTable re-interns every
// record once and installs an old-id → new-id remap), then RestoreObject
// resolves references through the remap; inline blobs re-intern as before.
//
// Snapshot locking: sys_sync builds its batch (live set + serialized dirty
// objects) under ONE all-shards shared lock — the TableLock acquires the
// shards in ascending index order — so the checkpoint image is a consistent
// cut of the object graph even while reader syscalls proceed on other
// threads. The registry cut for the label-table delta is taken after the
// blobs are serialized, so every id a blob references is covered. The store
// commit itself runs with no kernel lock held, exactly like the old
// single-mutex code.
#include <algorithm>
#include <cstring>

#include "src/core/trace.h"
#include "src/kernel/kernel.h"

namespace histar {

namespace {

void PutU8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutBytes(std::vector<uint8_t>* out, const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  out->insert(out->end(), p, p + len);
}

void PutString(std::vector<uint8_t>* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  PutBytes(out, s.data(), s.size());
}

// Cursor-based reader with bounds checking.
struct Reader {
  const uint8_t* data;
  size_t len;
  size_t pos = 0;
  bool fail = false;

  uint8_t U8() {
    if (pos + 1 > len) {
      fail = true;
      return 0;
    }
    return data[pos++];
  }
  uint32_t U32() {
    if (pos + 4 > len) {
      fail = true;
      return 0;
    }
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(data[pos + static_cast<size_t>(i)]) << (8 * i);
    }
    pos += 4;
    return v;
  }
  uint64_t U64() {
    if (pos + 8 > len) {
      fail = true;
      return 0;
    }
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(data[pos + static_cast<size_t>(i)]) << (8 * i);
    }
    pos += 8;
    return v;
  }
  bool Bytes(void* out, size_t n) {
    if (pos + n > len) {
      fail = true;
      return false;
    }
    if (n != 0) {  // n == 0 legitimately pairs with a null out (empty segment)
      memcpy(out, data + pos, n);
    }
    pos += n;
    return true;
  }
  std::string String() {
    uint32_t n = U32();
    if (fail || pos + n > len) {
      fail = true;
      return "";
    }
    std::string s(reinterpret_cast<const char*>(data + pos), n);
    pos += n;
    return s;
  }
  bool ReadLabel(histar::Label* out) {
    size_t consumed = 0;
    if (fail || !histar::Label::Deserialize(data + pos, len - pos, &consumed, out)) {
      fail = true;
      return false;
    }
    pos += consumed;
    return true;
  }
};

void PutLabel(std::vector<uint8_t>* out, const Label& l) { l.Serialize(out); }

}  // namespace

bool Kernel::SerializeObjectLocked(const Object& o, std::vector<uint8_t>* out,
                                   bool label_refs, uint64_t* meta_len) const {
  // One writer for both label encodings so the two formats cannot drift:
  // label-ref blobs carry the 4-byte interned id (the checkpoint's label
  // table maps it back to bytes), inline blobs carry the canonical bytes.
  auto put_label = [&](LabelId id) {
    if (label_refs) {
      PutU32(out, id);
    } else {
      PutLabel(out, registry_.Get(id));
    }
  };
  out->clear();
  PutU8(out, label_refs ? kBlobFormatLabelRef : kBlobFormatInline);
  PutU8(out, static_cast<uint8_t>(o.type()));
  PutU64(out, o.id());
  PutU64(out, o.creation_seq());
  put_label(o.label_id());
  PutU64(out, o.quota());
  PutU8(out, o.fixed_quota() ? 1 : 0);
  PutU8(out, o.immutable() ? 1 : 0);
  PutString(out, o.descrip());
  PutBytes(out, o.metadata().data(), kMetadataLen);
  // Everything up to (and including) a segment's length word is metadata
  // the store checksums; segment payload bytes after it are excluded so
  // sys_sync_pages can rewrite them in place (see ObjectImage in kernel.h).
  uint64_t meta = 0;

  switch (o.type()) {
    case ObjectType::kSegment: {
      const Segment& s = static_cast<const Segment&>(o);
      PutU64(out, s.bytes().size());
      meta = out->size();
      PutBytes(out, s.bytes().data(), s.bytes().size());
      break;
    }
    case ObjectType::kContainer: {
      const Container& c = static_cast<const Container&>(o);
      PutU32(out, c.avoid_types());
      PutU64(out, c.parent());
      PutU32(out, static_cast<uint32_t>(c.links().size()));
      for (ObjectId l : c.links()) {
        PutU64(out, l);
      }
      break;
    }
    case ObjectType::kThread: {
      const Thread& t = static_cast<const Thread&>(o);
      put_label(t.clearance_id());
      PutU8(out, t.halted() ? 1 : 0);
      PutU64(out, t.address_space().container);
      PutU64(out, t.address_space().object);
      PutBytes(out, const_cast<Thread&>(t).local_segment().data(), kPageSize);
      break;
    }
    case ObjectType::kAddressSpace: {
      const AddressSpace& as = static_cast<const AddressSpace&>(o);
      PutU32(out, static_cast<uint32_t>(as.mappings().size()));
      for (const Mapping& m : as.mappings()) {
        PutU64(out, m.va);
        PutU64(out, m.segment.container);
        PutU64(out, m.segment.object);
        PutU64(out, m.start_page);
        PutU64(out, m.npages);
        PutU32(out, m.flags);
      }
      break;
    }
    case ObjectType::kGate: {
      const Gate& g = static_cast<const Gate&>(o);
      put_label(g.clearance_id());
      PutString(out, g.entry_name());
      PutU32(out, static_cast<uint32_t>(g.closure().size()));
      for (uint64_t w : g.closure()) {
        PutU64(out, w);
      }
      break;
    }
    case ObjectType::kDevice: {
      const Device& d = static_cast<const Device&>(o);
      PutU8(out, static_cast<uint8_t>(d.kind()));
      break;
    }
    case ObjectType::kRing: {
      // Only the persistent identity: capacity. Queue state (pending
      // submissions, unreaped completions) is volatile — descriptors
      // reference caller memory of a boot that no longer exists — so a
      // restored ring comes back empty, like futex queues and NIC rings.
      const Ring& r = static_cast<const Ring&>(o);
      PutU32(out, r.capacity());
      break;
    }
  }
  if (meta_len != nullptr) {
    *meta_len = meta != 0 ? meta : out->size();
  }
  return true;
}

bool Kernel::SerializeObject(ObjectId id, std::vector<uint8_t>* out, bool label_refs,
                             uint64_t* meta_len) const {
  TableLock lk(table_, TableLock::Mode::kShared, {id});
  const Object* o = Get(id);
  if (o == nullptr) {
    return false;
  }
  return SerializeObjectLocked(*o, out, label_refs, meta_len);
}

Status Kernel::RestoreLabelTable(const std::vector<LabelTableRecord>& records,
                                 bool* ids_stable) {
  // Boot-time only, before any RestoreObject call. Re-interning in the
  // table's ascending-id order replays the writing boot's per-shard slot
  // sequence, so with an unchanged shard configuration every id comes back
  // identical and the remap is the identity. Either way the remap is what
  // label-ref blobs resolve through, so restore is correct even when ids
  // move — it just costs the next sync a full rewrite (see kernel.h).
  restore_label_remap_.clear();
  restore_ids_stable_ = true;
  for (const LabelTableRecord& rec : records) {
    Label l;
    size_t consumed = 0;
    if (rec.id == kInvalidLabelId ||
        !Label::Deserialize(rec.bytes.data(), rec.bytes.size(), &consumed, &l) ||
        consumed != rec.bytes.size()) {
      return Status::kCorrupt;
    }
    LabelId fresh = registry_.Intern(l);
    // Two table records must never claim the same old id with different
    // labels (Intern is idempotent, so duplicates of the same label are
    // harmless and map to the same fresh id).
    auto [it, inserted] = restore_label_remap_.emplace(rec.id, fresh);
    if (!inserted && it->second != fresh) {
      return Status::kCorrupt;
    }
    restore_ids_stable_ = restore_ids_stable_ && fresh == rec.id;
  }
  {
    MutexLock dl(&dirty_mu_);
    // Labels already in the on-disk table need not be re-sent as deltas —
    // unless ids moved, in which case the next checkpoint must re-emit the
    // whole table in the new id space (mark stays at zero → full delta).
    persisted_label_mark_ =
        restore_ids_stable_ ? registry_.Snapshot() : LabelRegistry::SnapshotMark{};
  }
  if (ids_stable != nullptr) {
    *ids_stable = restore_ids_stable_;
  }
  return Status::kOk;
}

Status Kernel::RestoreObject(const std::vector<uint8_t>& bytes) {
  Reader r{bytes.data(), bytes.size()};
  uint8_t format = r.U8();
  if (r.fail || (format != kBlobFormatInline && format != kBlobFormatLabelRef)) {
    return Status::kCorrupt;
  }
  const bool label_refs = format == kBlobFormatLabelRef;
  // One reader for both label encodings, mirroring put_label on the write
  // side. Inline labels re-intern here (the WAL/rebuild-on-recover path);
  // references resolve through the remap RestoreLabelTable installed.
  auto read_label = [&](LabelId* out) {
    if (label_refs) {
      LabelId old_id = r.U32();
      auto it = restore_label_remap_.find(old_id);
      if (r.fail || it == restore_label_remap_.end()) {
        r.fail = true;
        return false;
      }
      *out = it->second;
      return true;
    }
    Label l;
    if (!r.ReadLabel(&l)) {
      return false;
    }
    *out = registry_.Intern(l);
    return true;
  };
  uint8_t type_raw = r.U8();
  if (r.fail || type_raw >= kNumObjectTypes) {
    return Status::kCorrupt;
  }
  ObjectType type = static_cast<ObjectType>(type_raw);
  ObjectId id = r.U64();
  uint64_t creation_seq = r.U64();
  LabelId label_id = kInvalidLabelId;
  if (!read_label(&label_id)) {
    return Status::kCorrupt;
  }
  uint64_t quota = r.U64();
  bool fixed = r.U8() != 0;
  bool immutable = r.U8() != 0;
  std::string descrip = r.String();
  std::array<uint8_t, kMetadataLen> metadata;
  r.Bytes(metadata.data(), kMetadataLen);
  if (r.fail) {
    return Status::kCorrupt;
  }

  std::unique_ptr<Object> obj;
  switch (type) {
    case ObjectType::kSegment: {
      uint64_t len = r.U64();
      if (r.fail || r.pos + len > r.len) {
        return Status::kCorrupt;
      }
      auto s = std::make_unique<Segment>(id, label_id);
      s->bytes().resize(len);
      r.Bytes(s->bytes().data(), len);
      obj = std::move(s);
      break;
    }
    case ObjectType::kContainer: {
      uint32_t avoid = r.U32();
      ObjectId parent = r.U64();
      uint32_t n = r.U32();
      if (r.fail) {
        return Status::kCorrupt;
      }
      auto c = std::make_unique<Container>(id, label_id, avoid, parent);
      for (uint32_t i = 0; i < n && !r.fail; ++i) {
        c->links_mutable().push_back(r.U64());
      }
      obj = std::move(c);
      break;
    }
    case ObjectType::kThread: {
      LabelId clearance_id = kInvalidLabelId;
      if (!read_label(&clearance_id)) {
        return Status::kCorrupt;
      }
      bool halted = r.U8() != 0;
      ContainerEntry as{r.U64(), r.U64()};
      auto t = std::make_unique<Thread>(id, label_id, clearance_id);
      r.Bytes(t->local_segment().data(), kPageSize);
      t->set_address_space_internal(as);
      if (halted) {
        t->set_halted_internal();
      }
      obj = std::move(t);
      break;
    }
    case ObjectType::kAddressSpace: {
      uint32_t n = r.U32();
      auto as = std::make_unique<AddressSpace>(id, label_id);
      for (uint32_t i = 0; i < n && !r.fail; ++i) {
        Mapping m;
        m.va = r.U64();
        m.segment.container = r.U64();
        m.segment.object = r.U64();
        m.start_page = r.U64();
        m.npages = r.U64();
        m.flags = r.U32();
        as->mappings_mutable().push_back(m);
      }
      obj = std::move(as);
      break;
    }
    case ObjectType::kGate: {
      LabelId clearance_id = kInvalidLabelId;
      if (!read_label(&clearance_id)) {
        return Status::kCorrupt;
      }
      std::string entry = r.String();
      uint32_t n = r.U32();
      std::vector<uint64_t> closure;
      for (uint32_t i = 0; i < n && !r.fail; ++i) {
        closure.push_back(r.U64());
      }
      obj = std::make_unique<Gate>(id, label_id, clearance_id, entry, closure);
      break;
    }
    case ObjectType::kDevice: {
      uint8_t kind = r.U8();
      obj = std::make_unique<Device>(id, label_id, static_cast<DeviceKind>(kind));
      break;
    }
    case ObjectType::kRing: {
      uint32_t capacity = r.U32();
      obj = std::make_unique<Ring>(id, label_id, capacity);
      break;
    }
  }
  if (r.fail || obj == nullptr) {
    return Status::kCorrupt;
  }
  obj->set_quota_internal(quota);
  if (fixed) {
    obj->set_fixed_quota_internal();
  }
  if (immutable) {
    obj->set_immutable_internal();
  }
  obj->set_descrip_internal(descrip);
  obj->metadata_mutable() = metadata;

  obj->set_creation_seq(creation_seq);
  // Monotonic max: restore runs object-by-object, and fresh allocations must
  // sequence after everything already on disk.
  uint64_t prev = creation_counter_.load(std::memory_order_relaxed);
  while (prev < creation_seq &&
         !creation_counter_.compare_exchange_weak(prev, creation_seq,
                                                  std::memory_order_relaxed)) {
  }
  TableLock lk(table_, TableLock::Mode::kExclusive, {id});
  table_.InsertLocked(std::move(obj));
  return Status::kOk;
}

void Kernel::FinishRestore(ObjectId root) {
  TableLock lk(table_, TableLock::Mode::kExclusive, TableLock::AllShards{});
  root_ = root;
  // Rebuild link counts and container usages from the link graph. Labels
  // were re-interned once from the checkpoint's label table
  // (RestoreLabelTable) plus per-object for self-contained WAL blobs, so
  // the registry is fully populated by the time restore finishes.
  table_.ForEachLocked([](ObjectId, Object* obj) {
    while (obj->link_count() > 0) {
      obj->drop_link_internal();
    }
  });
  table_.ForEachLocked([this](ObjectId, Object* obj) {
    table_.cap().AssertHeld();  // closures don't inherit the caller's lock set
    if (obj->type() != ObjectType::kContainer) {
      return;
    }
    Container* c = static_cast<Container*>(obj);
    uint64_t usage = 0;
    for (ObjectId child : c->links()) {
      Object* co = Get(child);
      if (co != nullptr) {
        co->add_link_internal();
        if (co->quota() != kQuotaInfinite) {
          usage += co->quota();
        }
      }
    }
    c->set_usage_internal(usage);
  });
  Object* root_obj = Get(root_);
  if (root_obj != nullptr) {
    root_obj->add_link_internal();  // permanent anchor
  }
  MutexLock dl(&dirty_mu_);
  dirty_.clear();
  if (!restore_ids_stable_) {
    // The persisted blobs reference label ids this boot could not
    // reproduce; every object must be rewritten in the new id space before
    // any future increment can reference it. Marking the world dirty makes
    // the next sys_sync that rewrite (the store independently refuses to
    // extend the old chain — it writes a full base).
    table_.ForEachLocked([this](ObjectId id, Object*) {
      dirty_mu_.AssertHeld();  // dl is held; closures don't inherit lock sets
      dirty_[id] = ++dirty_seq_;
    });
  }
}

std::vector<ObjectId> Kernel::LiveLocked() const {
  // Creation order, so checkpoints lay out consecutively created objects
  // contiguously (delayed allocation keeps related data together on disk).
  std::vector<std::pair<uint64_t, ObjectId>> seq;
  seq.reserve(table_.SizeLocked());
  table_.ForEachLocked([&seq](ObjectId id, const Object* obj) {
    seq.emplace_back(obj->creation_seq(), id);
  });
  std::sort(seq.begin(), seq.end());
  std::vector<ObjectId> out;
  out.reserve(seq.size());
  for (const auto& [s, id] : seq) {
    out.push_back(id);
  }
  return out;
}

std::vector<ObjectId> Kernel::LiveObjects() const {
  TableLock lk(table_, TableLock::Mode::kShared, TableLock::AllShards{});
  return LiveLocked();
}

std::vector<std::pair<ObjectId, uint64_t>> Kernel::DirtySnapshotLocked() const {
  // Shard locks before dirty_mu_ (lock hierarchy): the caller holds the
  // table, so the creation_seq reads below are stable.
  std::vector<std::pair<ObjectId, uint64_t>> marks;
  {
    MutexLock dl(&dirty_mu_);
    marks.assign(dirty_.begin(), dirty_.end());
  }
  // Creation order, like LiveObjects: the checkpoint writes the batch to
  // contiguous extents in this order, so consecutively created files end up
  // physically adjacent (what makes uncached directory-order reads mostly
  // sequential).
  std::vector<std::pair<uint64_t, std::pair<ObjectId, uint64_t>>> seq;
  seq.reserve(marks.size());
  for (const auto& [id, gen] : marks) {
    const Object* obj = Get(id);
    if (obj != nullptr) {
      seq.emplace_back(obj->creation_seq(), std::make_pair(id, gen));
    }
  }
  std::sort(seq.begin(), seq.end());
  std::vector<std::pair<ObjectId, uint64_t>> out;
  out.reserve(seq.size());
  for (const auto& [s, mark] : seq) {
    out.push_back(mark);
  }
  return out;
}

std::vector<ObjectId> Kernel::DirtyObjects() const {
  TableLock lk(table_, TableLock::Mode::kShared, TableLock::AllShards{});
  std::vector<ObjectId> out;
  for (const auto& [id, gen] : DirtySnapshotLocked()) {
    out.push_back(id);
  }
  return out;
}

void Kernel::ClearDirty() {
  MutexLock lock(&dirty_mu_);
  dirty_.clear();
}

Status Kernel::DoSync(ObjectId self) {
  {
    TableLock lk(table_, TableLock::Mode::kShared, {self});
    Thread* t = GetThread(self);
    if (t == nullptr || t->halted()) {
      return Status::kHalted;
    }
  }
  if (persist_ == nullptr) {
    return Status::kOk;  // volatile configuration: sync is a no-op
  }
  // Group sync (§7.1): checkpoint the system state. Only objects mutated
  // since the last sync are re-serialized — in label-ref format, so shared
  // label bytes are never duplicated across blobs — and the live-id set
  // lets the store drop deleted objects. The whole batch is built under one
  // all-shards shared lock (a consistent cut); the store then commits
  // atomically (superblock flip) with no kernel lock held.
  std::vector<std::pair<ObjectId, uint64_t>> snapshot;
  CheckpointBatch batch;
  {
    TableLock lk(table_, TableLock::Mode::kShared, TableLock::AllShards{});
    batch.live = LiveLocked();
    batch.root = root_;
    snapshot = DirtySnapshotLocked();
    batch.dirty.reserve(snapshot.size());
    for (const auto& [id, gen] : snapshot) {
      ObjectImage img;
      img.id = id;
      if (SerializeObjectLocked(*Get(id), &img.bytes, /*label_refs=*/true, &img.meta_len)) {
        batch.dirty.push_back(std::move(img));
      }
    }
  }
  // Label-table delta: everything interned past the last committed
  // checkpoint's mark. The registry cut is taken AFTER the blobs above were
  // serialized, so every id they reference is covered; entries interned
  // while we enumerate may ride along as extras, but the mark only advances
  // to the cut, so they are resent (the store's table merge is idempotent).
  LabelRegistry::SnapshotMark mark_before;
  {
    MutexLock dl(&dirty_mu_);
    mark_before = persisted_label_mark_;
  }
  LabelRegistry::SnapshotMark cut = registry_.Snapshot();
  registry_.EnumerateSince(mark_before, [&batch](LabelId id, const Label& l) {
    LabelTableRecord rec;
    rec.id = id;
    l.Serialize(&rec.bytes);
    batch.label_delta.push_back(std::move(rec));
  });
  Status st = persist_->Checkpoint(batch);
  if (st == Status::kCrashed) {
    // The backing device died under a checkpoint — the fatal path the
    // flight recorder exists for. Dumps the last-N window when a dump
    // path is configured (HISTAR_TRACE_DUMP / SetFatalDumpPath).
    trace::RecordFatal(static_cast<int8_t>(st), self);
  }
  if (st == Status::kOk) {
    // Retire only marks whose generation still matches what was serialized:
    // an object re-dirtied while the store was committing (no shard lock
    // held) carries a newer generation and stays dirty for the next sync —
    // which, now that checkpoints are incremental, is what guarantees the
    // next increment re-serializes it. The label mark advances the same
    // conditional way: only to the cut this commit actually persisted.
    MutexLock dl(&dirty_mu_);
    for (const auto& [id, gen] : snapshot) {
      auto it = dirty_.find(id);
      if (it != dirty_.end() && it->second == gen) {
        dirty_.erase(it);
      }
    }
    LabelRegistry::AdvanceMark(&persisted_label_mark_, cut);
  }
  return st;
}

Status Kernel::DoSyncPages(ObjectId self, ContainerEntry ce, uint64_t offset, uint64_t len) {
  ObjectId target;
  std::vector<uint8_t> pages;
  {
    TableLock lk(table_, TableLock::Mode::kShared, {self, ce.container, ce.object});
    Thread* t = GetThread(self);
    if (t == nullptr || t->halted()) {
      return Status::kHalted;
    }
    Result<Object*> o = ResolveEntry(*t, ce);
    if (!o.ok()) {
      return o.status();
    }
    if (!CanObserve(*t, *o.value())) {
      return Status::kLabelCheckFailed;
    }
    target = o.value()->id();
    // Copy the real payload range out under the lock: the store writes
    // these bytes (not a latency-only placeholder) into the object's home
    // extent, past the checksummed metadata prefix, so a crash before the
    // next checkpoint recovers valid data instead of a blob that fails its
    // checksum (the old stale-checksum window). Ranges beyond the current
    // length — including len == 0 and offset == size — clamp to empty.
    if (o.value()->type() == ObjectType::kSegment) {
      const std::vector<uint8_t>& bytes = static_cast<Segment*>(o.value())->bytes();
      if (offset < bytes.size()) {
        uint64_t n = std::min<uint64_t>(len, bytes.size() - offset);
        pages.assign(bytes.begin() + static_cast<ptrdiff_t>(offset),
                     bytes.begin() + static_cast<ptrdiff_t>(offset + n));
      }
    }
  }
  if (persist_ == nullptr || pages.empty()) {
    return Status::kOk;  // non-segment or empty range: nothing to flush in place
  }
  return persist_->SyncPages(target, offset, pages);
}

Status Kernel::DoSyncObject(ObjectId self, ContainerEntry ce) {
  ObjectId target;
  {
    TableLock lk(table_, TableLock::Mode::kShared, {self, ce.container, ce.object});
    Thread* t = GetThread(self);
    if (t == nullptr || t->halted()) {
      return Status::kHalted;
    }
    Result<Object*> o = ResolveEntry(*t, ce);
    if (!o.ok()) {
      return o.status();
    }
    if (!CanObserve(*t, *o.value())) {
      return Status::kLabelCheckFailed;
    }
    target = o.value()->id();
  }
  if (persist_ == nullptr) {
    return Status::kOk;
  }
  // WAL blobs stay self-contained (inline labels): a log record must be
  // replayable on a disk whose label-table delta never made it out.
  std::vector<uint8_t> bytes;
  uint64_t meta_len = 0;
  if (!SerializeObject(target, &bytes, /*label_refs=*/false, &meta_len)) {
    return Status::kNotFound;
  }
  return persist_->SyncOne(target, bytes, meta_len);
}

}  // namespace histar
