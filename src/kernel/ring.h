// Async submission/completion rings (PR 5): the kernel-side queue state and
// worker pool behind sys_ring_{create,submit,wait,reap}.
//
// Shape: io_uring's SQ/CQ pair applied to the labeled object model. The
// *Ring object* (src/kernel/object.h) carries the persistent identity —
// label, quota, capacity — and lives in the sharded object table like any
// other object. Everything that queues lives HERE, keyed by the ring's
// ObjectId, exactly as futex wait-queues are volatile kernel state keyed by
// a segment id: pending submissions (SQ), unreaped completions (CQ), the
// waiter condvar, and the capacity accounting. A restored ring comes back
// empty, the way a rebooted NIC comes back with empty descriptor rings.
//
// Locking: RingEngine::mu_ (the pool's ready-queue) and RingState::mu (one
// ring's queues) are LEAF mutexes of the PR 2 hierarchy, never held while
// any table shard lock is taken — a worker pops a submission under
// RingState::mu, RELEASES it, and only then executes the ops through
// Kernel::SubmitChain (which takes TableLocks exactly like a syscall), so
// shard locks and ring mutexes never nest in the worker direction either.
// Per-ring draining is FIFO and single-worker at a time (the `armed` flag),
// which keeps one ring's completions in submission order; concurrency comes
// from different rings — one per submitting process is the intended shape —
// being drained by different workers, which is how batches from many
// threads finally overlap on multicore hosts (the fig-12 motivation).
//
// Execution context: workers bind NO CurrentThread and run each submission
// under a ProxyExecution guard (kernel.h) — every label check uses the
// submitter's thread id, but the submitter's per-thread fault-hint slot is
// neither read nor polluted, and no count stripe is touched (the submitter
// was charged at submit time, on its own host thread).
#ifndef SRC_KERNEL_RING_H_
#define SRC_KERNEL_RING_H_

#include <chrono>
#include <deque>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/core/sync.h"
#include "src/core/thread_annotations.h"
#include "src/kernel/kernel.h"
#include "src/kernel/syscall_abi.h"
#include "src/kernel/types.h"

namespace histar {

// One accepted submission: the submitter whose labels govern execution, the
// ops (mutated in place by operand routing), and the contiguous sequence
// range [first_seq, last_seq] its completions will carry.
struct RingSubmission {
  ObjectId submitter = kInvalidObject;
  uint64_t first_seq = 0;
  uint64_t last_seq = 0;
  std::vector<RingOp> ops;
};

// Volatile queue state of one ring. Held by shared_ptr so a worker
// mid-execution keeps it alive across a concurrent ring destruction (its
// published completions are then simply dropped).
struct RingState {
  RingState(ObjectId ring_id, uint32_t cap) : id(ring_id), capacity(cap) {}

  const ObjectId id;
  const uint32_t capacity;

  Mutex mu;
  CondVar cv;  // completions published / ring torn down
  uint64_t next_seq GUARDED_BY(mu) = 1;       // next op sequence number to assign
  uint64_t completed_seq GUARDED_BY(mu) = 0;  // every op with seq <= this has a completion
  uint64_t inflight_ops GUARDED_BY(mu) = 0;   // submitted, not yet reaped (capacity bound)
  std::deque<RingSubmission> sq GUARDED_BY(mu);
  std::deque<RingCompletion> cq GUARDED_BY(mu);
  bool dead GUARDED_BY(mu) = false;  // ring object destroyed; waiters get kNotFound
  // Seq range of the submission a worker is CURRENTLY executing (valid
  // while `executing`). Ring-op descriptors reference caller-owned memory,
  // so sys_ring_wait must never report a terminal status (halt, dead ring)
  // for a chain while a worker may still be dereferencing its buffers —
  // waiters drain on this before abandoning.
  bool executing GUARDED_BY(mu) = false;
  uint64_t executing_first GUARDED_BY(mu) = 0;
  uint64_t executing_last GUARDED_BY(mu) = 0;

  // Guarded by RingEngine::mu_, NOT this->mu: true while the ring is on the
  // ready queue or being drained, so one ring never runs on two workers.
  // (Not expressible as GUARDED_BY — the analysis cannot name another
  // object's member as the capability — so this one stays a TSan-checked
  // comment; every access site is inside a RingEngine method under mu_.)
  bool armed = false;
};

// A small pool of kernel worker host threads draining ring submission
// queues. Created lazily by the kernel on first submission; destroyed (and
// joined) before any other kernel state in ~Kernel.
class RingEngine {
 public:
  // Pool size when the caller passes 0: sized from the machine
  // (hardware_concurrency, floor 2 so one blocked worker never serializes
  // all rings, cap 8 — workers contend on the same shard locks past that).
  static size_t DefaultWorkers();

  explicit RingEngine(Kernel* kernel, size_t workers = 0);
  ~RingEngine();

  RingEngine(const RingEngine&) = delete;
  RingEngine& operator=(const RingEngine&) = delete;

  // Queue state for `ring`, created on first use with the given capacity.
  std::shared_ptr<RingState> GetOrCreate(ObjectId ring, uint32_t capacity);
  // Queue state if the ring has ever been submitted to, else null.
  std::shared_ptr<RingState> Find(ObjectId ring) const;

  // Marks the ring ready and wakes a worker (no-op if already armed).
  void Kick(const std::shared_ptr<RingState>& state);

  // Ring object destroyed: marks the state dead, wakes its waiters, and
  // forgets it. Safe to call for ids that never had queue state.
  void Drop(ObjectId ring);

 private:
  void WorkerLoop();
  // Executes the ring's pending submissions FIFO until its SQ drains.
  void DrainRing(const std::shared_ptr<RingState>& state);

  Kernel* const kernel_;
  mutable Mutex mu_;  // guards rings_, ready_, stopping_, RingState::armed
  CondVar cv_;
  std::unordered_map<ObjectId, std::shared_ptr<RingState>> rings_ GUARDED_BY(mu_);
  std::deque<std::shared_ptr<RingState>> ready_ GUARDED_BY(mu_);
  bool stopping_ GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;  // ctor/dtor only; never concurrent
};

// Client-side helper: waits for `ticket`, re-entering when an alert
// interrupts the wait (kAgain) with a short backoff — the pending alert
// stays queued for the caller's own signal logic, and the backoff keeps an
// alerted thread from busy-spinning the wait's shard-lock peek. ONE copy of
// this loop for every ring consumer (netd bursts, dir scans, pipe chunks),
// so the retry shape cannot drift. Terminates because ring chains contain
// only boundedly-blocking ops (enforced at submit): the worker always
// publishes, after which the wait returns kOk — or kHalted/kNotFound, both
// of which the kernel withholds until no worker holds the ticket's buffers
// (abandoning on them is safe).
inline Status RingWaitInterruptible(Kernel* kernel, ObjectId self, ContainerEntry ring,
                                    uint64_t ticket) {
  for (;;) {
    Status st = kernel->sys_ring_wait(self, ring, ticket, 0);
    if (st != Status::kAgain) {
      return st;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

}  // namespace histar

#endif  // SRC_KERNEL_RING_H_
