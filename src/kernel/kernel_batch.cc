// The batched syscall dispatcher (PR 3) and the legacy one-element wrappers.
//
// SubmitBatch is the single kernel entry point: it walks the request span in
// submission order, unions the shard footprints of consecutive *batchable*
// requests (those whose footprint is computable from the descriptor alone
// and whose execution neither blocks nor leaves the lock), and executes each
// such group under ONE ascending-order TableLock — the lock round-trip that
// used to be paid per call is paid per group. Requests that cannot join a
// group (data-dependent footprints, unlocked phases, sleeps: as_access,
// thread_alert, container_unref, gate_invoke, futexes, net I/O, sync) close
// the current group and run their pre-batch implementation unchanged, so
// the lock hierarchy (ARCHITECTURE.md "Concurrency model") is untouched:
// one TableLock at a time, futex_mu_ never nested, entry functions outside
// every lock.
//
// Object ids for create-type requests are preallocated while NO lock is
// held (AllocObjectId briefly probes the candidate's shard itself), then
// folded into the group footprint — the same order the per-call path used.
#include <type_traits>

#include "src/core/trace.h"
#include "src/kernel/kernel.h"

namespace histar {

namespace {

template <typename T, typename... Ts>
inline constexpr bool kIsAny = (std::is_same_v<T, Ts> || ...);

// Compile-time SyscallReq alternative index of T (the trace event's
// syscall-kind field; also the wire tag).
template <typename T, size_t I = 0>
constexpr size_t ReqIndexOf() {
  if constexpr (std::is_same_v<T, std::variant_alternative_t<I, SyscallReq>>) {
    return I;
  } else {
    return ReqIndexOf<T, I + 1>();
  }
}

// Folds the taint scratch + completion status into one flight-recorder
// syscall event for request k of a dispatch group (duration patched later
// by FinishSyscallGroup — one clock pair per group, not per entry).
inline void TraceOne(const SyscallReq& req, const SyscallRes& res, ObjectId self,
                     uint64_t t0_ns) {
#if HISTAR_TRACE
  trace::RecordSyscall(static_cast<uint16_t>(req.index()),
                       static_cast<int8_t>(ResStatus(res)), self, t0_ns);
#else
  (void)req;
  (void)res;
  (void)self;
  (void)t0_ns;
#endif
}

// Requests that consume a preallocated object id (create paths).
template <typename T>
inline constexpr bool kCreatesObject =
    kIsAny<T, ThreadCreateReq, ContainerCreateReq, SegmentCreateReq, SegmentCopyReq,
           AsCreateReq, GateCreateReq, RingCreateReq>;

}  // namespace

Kernel::BatchPlan Kernel::PlanOf(ObjectId self, const SyscallReq& req) {
  BatchPlan plan;
  auto ids = [&plan](std::initializer_list<ObjectId> list) {
    for (ObjectId id : list) {
      plan.ids[plan.nids++] = id;
    }
    plan.batchable = true;
  };
  std::visit(
      [&](const auto& r) {
        using T = std::decay_t<decltype(r)>;
        if constexpr (kIsAny<T, SelfGetLabelReq, SelfGetClearanceReq>) {
          // Pure scalar self-reads: every field they touch is atomic or
          // immutable, so they run lock-free over the published index.
          ids({self});
          plan.lockfree = true;
        } else if constexpr (kIsAny<T, SelfGetAsReq, SelfLocalReadReq>) {
          // Read non-atomic Thread state (AS entry, local bytes) — stay on
          // the locked path.
          ids({self});
        } else if constexpr (kIsAny<T, CatCreateReq, SelfSetLabelReq, SelfSetClearanceReq,
                                    SelfHaltReq, SelfNextAlertReq, SelfLocalWriteReq>) {
          ids({self});
          plan.mutates = true;
        } else if constexpr (kIsAny<T, ObjGetTypeReq, ObjGetLabelReq, ObjGetDescripReq,
                                    ObjGetQuotaReq, SegmentGetLenReq, GateGetClosureReq>) {
          // ⟨D,O⟩ reads over immutable or published-atomic state (type,
          // label id, descrip, quota, published segment length, gate
          // closure): lock-free over the published index.
          ids({self, r.ce.container, r.ce.object});
          plan.lockfree = true;
        } else if constexpr (kIsAny<T, ObjGetMetadataReq, SegmentReadReq, AsGetReq>) {
          // ⟨D,O⟩ reads of mutable byte/vector state (metadata blob,
          // segment bytes, mappings) — locked, a concurrent writer may be
          // resizing the container.
          ids({self, r.ce.container, r.ce.object});
        } else if constexpr (kIsAny<T, ObjSetMetadataReq, ObjSetFixedQuotaReq,
                                    ObjSetImmutableReq, SegmentResizeReq, SegmentWriteReq,
                                    AsSetReq>) {
          ids({self, r.ce.container, r.ce.object});
          plan.mutates = true;
        } else if constexpr (std::is_same_v<T, SelfSetAsReq>) {
          ids({self, r.as.container, r.as.object});
          plan.mutates = true;
        } else if constexpr (std::is_same_v<T, ConsoleWriteReq>) {
          ids({self, r.dev.container, r.dev.object});
          plan.mutates = true;
        } else if constexpr (kIsAny<T, ContainerGetParentReq, ContainerListReq,
                                    ContainerHasReq>) {
          // Container reads resolve links through the published snapshot
          // (Container::HasLink / ContainerListLocked), so they are safe
          // lock-free; parent is immutable after creation.
          ids({self, r.container});
          plan.lockfree = true;
        } else if constexpr (std::is_same_v<T, ContainerLinkReq>) {
          ids({self, r.container, r.src.container, r.src.object});
          plan.mutates = true;
        } else if constexpr (std::is_same_v<T, QuotaMoveReq>) {
          ids({self, r.d, r.o});
          plan.mutates = true;
        } else if constexpr (kIsAny<T, ThreadCreateReq, ContainerCreateReq, SegmentCreateReq,
                                    AsCreateReq, GateCreateReq, RingCreateReq>) {
          ids({self, r.spec.container});
          plan.mutates = true;
          plan.needs_new_id = true;  // the preallocated id joins the footprint
        } else if constexpr (std::is_same_v<T, SegmentCopyReq>) {
          ids({self, r.src.container, r.src.object, r.spec.container});
          plan.mutates = true;
          plan.needs_new_id = true;
        } else {
          // Data-dependent footprint, unlocked phase, or sleep: runs alone
          // through its pre-batch implementation (ExecUnbatched).
          plan.batchable = false;
        }
      },
      req);
  return plan;
}

void Kernel::ExecLocked(ObjectId self, const SyscallReq& req, SyscallRes* out,
                        const std::vector<ObjectId>& new_ids, size_t* next_new_id) {
  // Converts the Locked body's Result<T>/Status into the matching completion
  // descriptor. Value fields stay default-initialized on failure.
  std::visit(
      [&](const auto& r) {
        table_.cap().AssertHeld();  // closures don't inherit the caller's lock set
        using T = std::decay_t<decltype(r)>;
        [[maybe_unused]] ObjectId nid = kInvalidObject;
        if constexpr (kCreatesObject<T>) {
          nid = new_ids[(*next_new_id)++];
        }
        if constexpr (std::is_same_v<T, CatCreateReq>) {
          Result<CategoryId> v = CatCreateLocked(self);
          *out = CatCreateRes{v.status(), v.ok() ? v.value() : kInvalidCategory};
        } else if constexpr (std::is_same_v<T, SelfSetLabelReq>) {
          *out = SelfSetLabelRes{SelfSetLabelLocked(self, r.label)};
        } else if constexpr (std::is_same_v<T, SelfSetClearanceReq>) {
          *out = SelfSetClearanceRes{SelfSetClearanceLocked(self, r.clearance)};
        } else if constexpr (std::is_same_v<T, SelfGetLabelReq>) {
          Result<Label> v = SelfGetLabelLocked(self);
          *out = SelfGetLabelRes{v.status(), v.ok() ? v.take() : Label()};
        } else if constexpr (std::is_same_v<T, SelfGetClearanceReq>) {
          Result<Label> v = SelfGetClearanceLocked(self);
          *out = SelfGetClearanceRes{v.status(), v.ok() ? v.take() : Label()};
        } else if constexpr (std::is_same_v<T, SelfSetAsReq>) {
          *out = SelfSetAsRes{SelfSetAsLocked(self, r.as)};
        } else if constexpr (std::is_same_v<T, SelfGetAsReq>) {
          Result<ContainerEntry> v = SelfGetAsLocked(self);
          *out = SelfGetAsRes{v.status(), v.ok() ? v.value() : ContainerEntry{}};
        } else if constexpr (std::is_same_v<T, SelfHaltReq>) {
          *out = SelfHaltRes{SelfHaltLocked(self)};
        } else if constexpr (std::is_same_v<T, ThreadCreateReq>) {
          Result<ObjectId> v = ThreadCreateLocked(self, r.spec, r.label, r.clearance, nid);
          *out = ThreadCreateRes{v.status(), v.ok() ? v.value() : kInvalidObject};
        } else if constexpr (std::is_same_v<T, SelfNextAlertReq>) {
          Result<uint64_t> v = SelfNextAlertLocked(self);
          *out = SelfNextAlertRes{v.status(), v.ok() ? v.value() : 0};
        } else if constexpr (std::is_same_v<T, SelfLocalReadReq>) {
          *out = SelfLocalReadRes{SelfLocalReadLocked(self, r.buf, r.off, r.len)};
        } else if constexpr (std::is_same_v<T, SelfLocalWriteReq>) {
          *out = SelfLocalWriteRes{SelfLocalWriteLocked(self, r.buf, r.off, r.len)};
        } else if constexpr (std::is_same_v<T, ContainerCreateReq>) {
          Result<ObjectId> v = ContainerCreateLocked(self, r.spec, r.avoid_types, nid);
          *out = ContainerCreateRes{v.status(), v.ok() ? v.value() : kInvalidObject};
        } else if constexpr (std::is_same_v<T, ContainerGetParentReq>) {
          Result<ObjectId> v = ContainerGetParentLocked(self, r.container);
          *out = ContainerGetParentRes{v.status(), v.ok() ? v.value() : kInvalidObject};
        } else if constexpr (std::is_same_v<T, ContainerListReq>) {
          Result<std::vector<ObjectId>> v = ContainerListLocked(self, r.container);
          *out = ContainerListRes{v.status(),
                                  v.ok() ? v.take() : std::vector<ObjectId>{}};
        } else if constexpr (std::is_same_v<T, ContainerLinkReq>) {
          *out = ContainerLinkRes{ContainerLinkLocked(self, r.container, r.src)};
        } else if constexpr (std::is_same_v<T, ContainerHasReq>) {
          Result<bool> v = ContainerHasLocked(self, r.container, r.obj);
          *out = ContainerHasRes{v.status(), v.ok() && v.value()};
        } else if constexpr (std::is_same_v<T, ObjGetTypeReq>) {
          Result<ObjectType> v = ObjGetTypeLocked(self, r.ce);
          *out = ObjGetTypeRes{v.status(), v.ok() ? v.value() : ObjectType::kContainer};
        } else if constexpr (std::is_same_v<T, ObjGetLabelReq>) {
          Result<Label> v = ObjGetLabelLocked(self, r.ce);
          *out = ObjGetLabelRes{v.status(), v.ok() ? v.take() : Label()};
        } else if constexpr (std::is_same_v<T, ObjGetDescripReq>) {
          Result<std::string> v = ObjGetDescripLocked(self, r.ce);
          *out = ObjGetDescripRes{v.status(), v.ok() ? v.take() : std::string()};
        } else if constexpr (std::is_same_v<T, ObjGetQuotaReq>) {
          Result<uint64_t> v = ObjGetQuotaLocked(self, r.ce);
          *out = ObjGetQuotaRes{v.status(), v.ok() ? v.value() : 0};
        } else if constexpr (std::is_same_v<T, ObjGetMetadataReq>) {
          Result<std::vector<uint8_t>> v = ObjGetMetadataLocked(self, r.ce);
          *out = ObjGetMetadataRes{v.status(),
                                   v.ok() ? v.take() : std::vector<uint8_t>{}};
        } else if constexpr (std::is_same_v<T, ObjSetMetadataReq>) {
          *out = ObjSetMetadataRes{
              ObjSetMetadataLocked(self, r.ce, r.data, static_cast<size_t>(r.len))};
        } else if constexpr (std::is_same_v<T, ObjSetFixedQuotaReq>) {
          *out = ObjSetFixedQuotaRes{ObjSetFixedQuotaLocked(self, r.ce)};
        } else if constexpr (std::is_same_v<T, ObjSetImmutableReq>) {
          *out = ObjSetImmutableRes{ObjSetImmutableLocked(self, r.ce)};
        } else if constexpr (std::is_same_v<T, QuotaMoveReq>) {
          *out = QuotaMoveRes{QuotaMoveLocked(self, r.d, r.o, r.n)};
        } else if constexpr (std::is_same_v<T, SegmentCreateReq>) {
          Result<ObjectId> v = SegmentCreateLocked(self, r.spec, r.len, nid);
          *out = SegmentCreateRes{v.status(), v.ok() ? v.value() : kInvalidObject};
        } else if constexpr (std::is_same_v<T, SegmentCopyReq>) {
          Result<ObjectId> v = SegmentCopyLocked(self, r.spec, r.src, nid);
          *out = SegmentCopyRes{v.status(), v.ok() ? v.value() : kInvalidObject};
        } else if constexpr (std::is_same_v<T, SegmentResizeReq>) {
          *out = SegmentResizeRes{SegmentResizeLocked(self, r.ce, r.len)};
        } else if constexpr (std::is_same_v<T, SegmentGetLenReq>) {
          Result<uint64_t> v = SegmentGetLenLocked(self, r.ce);
          *out = SegmentGetLenRes{v.status(), v.ok() ? v.value() : 0};
        } else if constexpr (std::is_same_v<T, SegmentReadReq>) {
          *out = SegmentReadRes{SegmentReadLocked(self, r.ce, r.buf, r.off, r.len)};
        } else if constexpr (std::is_same_v<T, SegmentWriteReq>) {
          *out = SegmentWriteRes{SegmentWriteLocked(self, r.ce, r.buf, r.off, r.len)};
        } else if constexpr (std::is_same_v<T, AsCreateReq>) {
          Result<ObjectId> v = AsCreateLocked(self, r.spec, nid);
          *out = AsCreateRes{v.status(), v.ok() ? v.value() : kInvalidObject};
        } else if constexpr (std::is_same_v<T, AsSetReq>) {
          *out = AsSetRes{AsSetLocked(self, r.ce, r.mappings)};
        } else if constexpr (std::is_same_v<T, AsGetReq>) {
          Result<std::vector<Mapping>> v = AsGetLocked(self, r.ce);
          *out = AsGetRes{v.status(), v.ok() ? v.take() : std::vector<Mapping>{}};
        } else if constexpr (std::is_same_v<T, GateCreateReq>) {
          Result<ObjectId> v = GateCreateLocked(self, r.spec, r.gate_label, r.gate_clearance,
                                                r.entry_name, r.closure, nid);
          *out = GateCreateRes{v.status(), v.ok() ? v.value() : kInvalidObject};
        } else if constexpr (std::is_same_v<T, GateGetClosureReq>) {
          Result<std::vector<uint64_t>> v = GateGetClosureLocked(self, r.ce);
          *out = GateGetClosureRes{v.status(),
                                   v.ok() ? v.take() : std::vector<uint64_t>{}};
        } else if constexpr (std::is_same_v<T, ConsoleWriteReq>) {
          *out = ConsoleWriteRes{ConsoleWriteLocked(self, r.dev, r.text)};
        } else if constexpr (std::is_same_v<T, RingCreateReq>) {
          Result<ObjectId> v = RingCreateLocked(self, r.spec, r.capacity, nid);
          *out = RingCreateRes{v.status(), v.ok() ? v.value() : kInvalidObject};
        } else {
          // PlanOf marked this request batchable but no Locked body exists —
          // dispatcher drift. The completion stays monostate; wrappers and
          // callers translate that to kInvalidArg (SubmitOne below).
          *out = std::monostate{};
        }
      },
      req);
}

void Kernel::ExecUnbatched(ObjectId self, const SyscallReq& req, SyscallRes* out) {
  std::visit(
      [&](const auto& r) {
        using T = std::decay_t<decltype(r)>;
        if constexpr (std::is_same_v<T, ThreadAlertReq>) {
          *out = ThreadAlertRes{DoThreadAlert(self, r.thread, r.code)};
        } else if constexpr (std::is_same_v<T, ContainerUnrefReq>) {
          *out = ContainerUnrefRes{DoContainerUnref(self, r.ce)};
        } else if constexpr (std::is_same_v<T, AsAccessReq>) {
          *out = AsAccessRes{DoAsAccess(self, r.va, r.buf, r.len, r.write)};
        } else if constexpr (std::is_same_v<T, GateInvokeReq>) {
          *out = GateInvokeRes{
              DoGateInvoke(self, r.gate, r.request_label, r.request_clearance, r.verify_label)};
        } else if constexpr (std::is_same_v<T, FutexWaitReq>) {
          *out = FutexWaitRes{DoFutexWait(self, r.seg, r.offset, r.expected, r.timeout_ms)};
        } else if constexpr (std::is_same_v<T, FutexWakeReq>) {
          Result<uint32_t> v = DoFutexWake(self, r.seg, r.offset, r.max_count);
          *out = FutexWakeRes{v.status(), v.ok() ? v.value() : 0};
        } else if constexpr (std::is_same_v<T, NetMacAddrReq>) {
          Result<std::array<uint8_t, 6>> v = DoNetMacAddr(self, r.dev);
          *out = NetMacAddrRes{v.status(),
                               v.ok() ? v.value() : std::array<uint8_t, 6>{}};
        } else if constexpr (std::is_same_v<T, NetTransmitReq>) {
          *out = NetTransmitRes{DoNetTransmit(self, r.dev, r.seg, r.off, r.len)};
        } else if constexpr (std::is_same_v<T, NetReceiveReq>) {
          Result<uint64_t> v = DoNetReceive(self, r.dev, r.seg, r.off, r.maxlen);
          *out = NetReceiveRes{v.status(), v.ok() ? v.value() : 0};
        } else if constexpr (std::is_same_v<T, NetWaitReq>) {
          *out = NetWaitRes{DoNetWait(self, r.dev, r.timeout_ms)};
        } else if constexpr (std::is_same_v<T, SyncReq>) {
          *out = SyncRes{DoSync(self)};
        } else if constexpr (std::is_same_v<T, SyncObjectReq>) {
          *out = SyncObjectRes{DoSyncObject(self, r.ce)};
        } else if constexpr (std::is_same_v<T, SyncPagesReq>) {
          *out = SyncPagesRes{DoSyncPages(self, r.ce, r.offset, r.len)};
        } else if constexpr (std::is_same_v<T, RingSubmitReq>) {
          Result<uint64_t> v = DoRingSubmit(self, r.ring, r.ops);
          *out = RingSubmitRes{v.status(), v.ok() ? v.value() : 0};
        } else if constexpr (std::is_same_v<T, RingWaitReq>) {
          *out = RingWaitRes{DoRingWait(self, r.ring, r.ticket, r.timeout_ms)};
        } else if constexpr (std::is_same_v<T, RingReapReq>) {
          Result<std::vector<RingCompletion>> v = DoRingReap(self, r.ring, r.max);
          *out = RingReapRes{v.status(),
                             v.ok() ? v.take() : std::vector<RingCompletion>{}};
        } else if constexpr (std::is_same_v<T, TraceReadReq>) {
          // Unbatchable by design: the body takes its own shared TableLock
          // to resolve the reader, then walks the recorder lock-free.
          TraceReadRes v;
          DoTraceRead(self, r.max_events, &v);
          *out = std::move(v);
        } else {
          *out = std::monostate{};  // batchable kinds never reach here
        }
      },
      req);
}

template <typename ReqAt, typename StopAt>
size_t Kernel::GrowBatchGroup(ObjectId self, size_t i, size_t n, const BatchPlan& first,
                              const ReqAt& req_at, const StopAt& stop_at, bool split_lockfree,
                              uint64_t* mask, bool* exclusive, std::vector<ObjectId>* new_ids) {
  // Union the shard masks of consecutive batchable requests, escalate to
  // exclusive if anything mutates, and preallocate object ids for create
  // entries NOW — AllocObjectId probes a shard itself and must run before
  // the group lock (kernel.h helper contract). With split_lockfree, a group
  // is additionally homogeneous in lockfree-ness so SubmitBatch can run a
  // lock-free group with no TableLock at all (SubmitChain passes false and
  // keeps mixed groups under one lock — ring lock parity, PR 5).
  size_t j = i;
  while (j < n) {
    if (j > i && stop_at(j)) {
      break;
    }
    BatchPlan p = (j == i) ? first : PlanOf(self, req_at(j));
    if (!p.batchable) {
      break;
    }
    if (split_lockfree && j > i && p.lockfree != first.lockfree) {
      break;
    }
    for (size_t k = 0; k < p.nids; ++k) {
      *mask |= table_.ShardMaskOf(p.ids[k]);
    }
    if (p.needs_new_id) {
      Result<ObjectId> id = AllocObjectId();
      new_ids->push_back(id.value());
      *mask |= table_.ShardMaskOf(id.value());
    }
    *exclusive |= p.mutates;
    ++j;
  }
  return j;
}

Status Kernel::SubmitBatch(ObjectId self, std::span<const SyscallReq> reqs,
                           std::span<SyscallRes> res) {
  if (res.size() < reqs.size()) {
    return Status::kInvalidArg;
  }
  // One stripe round-trip charges the whole batch; no global atomic (each
  // entry still counts as one syscall, so fig-12-style accounting is
  // unchanged whether callers batch or not).
  CountSyscalls(self, reqs.size());
  size_t i = 0;
  while (i < reqs.size()) {
    BatchPlan first = PlanOf(self, reqs[i]);
    if (!first.batchable) {
      uint64_t t0 = trace::RecordNowNs();
      uint64_t g0 = trace::BeginSyscallGroup();
      trace::ResetTaint();
      ExecUnbatched(self, reqs[i], &res[i]);
      TraceOne(reqs[i], res[i], self, t0);
      trace::FinishSyscallGroup(g0, t0, trace::RecordNowNs());
      ++i;
      continue;
    }
    uint64_t mask = 0;
    bool exclusive = false;
    std::vector<ObjectId> new_ids;
    size_t j = GrowBatchGroup(
        self, i, reqs.size(), first, [&](size_t k) -> const SyscallReq& { return reqs[k]; },
        [](size_t) { return false; }, /*split_lockfree=*/true, &mask, &exclusive, &new_ids);
    // ONE clock pair per group: per-entry events record with a pending
    // duration and FinishSyscallGroup patches the amortized share in —
    // that, plus zero shared atomics in the recorder, is what keeps the
    // warm lock-free row inside the 5% gate (scripts/check_bench_pr10.sh).
    uint64_t t0 = trace::RecordNowNs();
    uint64_t g0 = trace::BeginSyscallGroup();
    if (first.lockfree) {
      // Lock-free read group (PR 6): ZERO shard locks. The epoch guard pins
      // every published entry the group can reach; PublishedReadMode routes
      // Kernel::Get through the shard's lock-free published index, and the
      // same *Locked bodies run unchanged on top of it (they are
      // side-effect-free for every lockfree-marked kind). The zero is the
      // acceptance property asserted by tests/kernel/batch_lock_test.cc.
      EpochGuard guard;
      PublishedReadMode published;
      // The epoch + published-read pair IS this group's covering
      // acquisition; the scoped stand-in discharges the bodies' static
      // table-capability requirement (see object_table.h).
      PublishedReadTableCap cap_scope(table_);
      size_t next_new_id = 0;
      for (size_t k = i; k < j; ++k) {
        trace::ResetTaint();
        ExecLocked(self, reqs[k], &res[k], new_ids, &next_new_id);
        TraceOne(reqs[k], res[k], self, t0);
      }
    } else {
      // The group's single lock round-trip: every shard any member touches,
      // ascending order, one acquisition (the acceptance property asserted
      // by tests/kernel/batch_lock_test.cc).
      TableLock lk(
          table_,
          exclusive ? TableLock::Mode::kExclusive : TableLock::Mode::kShared,
          mask, TableLock::ByMask{});
      size_t next_new_id = 0;
      for (size_t k = i; k < j; ++k) {
        trace::ResetTaint();
        ExecLocked(self, reqs[k], &res[k], new_ids, &next_new_id);
        TraceOne(reqs[k], res[k], self, t0);
      }
      // Lock-free groups deliberately record NO kTableLock event — the
      // zero-lock property shows up in the trace as its absence.
      trace::RecordEvent(trace::EventKind::kTableLock, mask,
                         exclusive ? 1 : 0, j - i, 0, 0, 0, t0);
    }
    trace::FinishSyscallGroup(g0, t0, trace::RecordNowNs());
    i = j;
  }
  return Status::kOk;
}

namespace {

// Chain bookkeeping for entry k of a SubmitChain span: cancels it (filling
// its completion) when a linked predecessor did not complete kOk, and
// otherwise applies its operand routing. Returns false when the entry was
// cancelled and must not execute. Runs either before group planning (group
// leaders — which is what lets id-routed entries replan on routed values)
// or inside the group lock (members — their routing never touches ids, so
// the precomputed footprint stays valid).
bool PrepareChainEntry(std::span<RingOp> ops, std::span<SyscallRes> res, size_t k) {
  if (k == 0) {
    return true;
  }
  const bool linked = (ops[k - 1].flags & kRingLinked) != 0;
  if (linked && ResStatus(res[k - 1]) != Status::kOk) {
    // Predecessor failed (or was itself cancelled — kCancelled propagates
    // down the rest of the chain through this same test).
    MakeRes(ops[k].req, Status::kCancelled, &res[k]);
    return false;
  }
  if (ops[k].from != RingSlot::kNone) {
    uint64_t v = 0;
    if (!linked || !ResSlotRead(res[k - 1], ops[k].from, &v) ||
        !ReqSlotWrite(&ops[k].req, ops[k].to, v)) {
      MakeRes(ops[k].req, Status::kInvalidArg, &res[k]);
      return false;
    }
  }
  return true;
}

}  // namespace

Status Kernel::SubmitChain(ObjectId self, std::span<RingOp> ops, std::span<SyscallRes> res) {
  if (res.size() < ops.size()) {
    return Status::kInvalidArg;
  }
  // NO CountSyscalls here — see the contract in kernel.h (sys_ring_submit
  // charged the submitter already; direct callers account for themselves).
  //
  // One kRingChain event per chain execution: when a ring worker drives
  // this under ProxyExecution the event lands in the WORKER's slot ring
  // with b=1, which is exactly the attribution the trace needs to tell
  // proxy execution from the submitter's own syscalls.
  trace::RecordEvent(trace::EventKind::kRingChain, ops.size(),
                     ProxyExecution::Active() ? 1 : 0, self);
  size_t i = 0;
  while (i < ops.size()) {
    if (!PrepareChainEntry(ops, res, i)) {
      ++i;
      continue;
    }
    BatchPlan first = PlanOf(self, ops[i].req);
    if (!first.batchable) {
      uint64_t t0 = trace::RecordNowNs();
      uint64_t g0 = trace::BeginSyscallGroup();
      trace::ResetTaint();
      ExecUnbatched(self, ops[i].req, &res[i]);
      TraceOne(ops[i].req, res[i], self, t0);
      trace::FinishSyscallGroup(g0, t0, trace::RecordNowNs());
      ++i;
      continue;
    }
    // Group-grow exactly as SubmitBatch (same helper) — with one extra stop
    // condition: an entry routing a predecessor's result into a ⟨D,O⟩ id
    // slot has a data-dependent footprint (PlanOf would read the stale
    // ids), so it must lead its own group, planned after PrepareChainEntry
    // has written the routed value. len/off routing leaves footprints
    // untouched and stays in-group.
    uint64_t mask = 0;
    bool exclusive = false;
    std::vector<ObjectId> new_ids;
    size_t j = GrowBatchGroup(
        self, i, ops.size(), first,
        [&](size_t k) -> const SyscallReq& { return ops[k].req; },
        [&](size_t k) { return RingSlotNamesIds(ops[k].to); }, /*split_lockfree=*/false, &mask,
        &exclusive, &new_ids);
    uint64_t t0 = trace::RecordNowNs();
    uint64_t g0 = trace::BeginSyscallGroup();
    size_t executed = 0;
    {
      // One TableLock for the whole group: a linked get_len → read chain
      // pays exactly the lock round-trips of the equivalent sync batch
      // (the PR 5 acceptance property, tests/kernel/ring_test.cc). Routing
      // and cancellation for members happen inside the lock, between
      // ExecLocked calls — the predecessor's completion is final by then.
      TableLock lk(
          table_,
          exclusive ? TableLock::Mode::kExclusive : TableLock::Mode::kShared,
          mask, TableLock::ByMask{});
      size_t next_new_id = 0;
      for (size_t k = i; k < j; ++k) {
        if (k > i && !PrepareChainEntry(ops, res, k)) {
          // Cancelled mid-group. A cancelled create leaves its preallocated
          // id unconsumed, which is harmless — ids are opaque names, and
          // enough were preallocated either way.
          continue;
        }
        trace::ResetTaint();
        ExecLocked(self, ops[k].req, &res[k], new_ids, &next_new_id);
        TraceOne(ops[k].req, res[k], self, t0);
        ++executed;
      }
    }
    trace::RecordEvent(trace::EventKind::kTableLock, mask, exclusive ? 1 : 0,
                       executed, 0, 0, 0, t0);
    trace::FinishSyscallGroup(g0, t0, trace::RecordNowNs());
    i = j;
  }
  return Status::kOk;
}

// ---- Legacy wrappers --------------------------------------------------------
//
// Every sys_* entry point is a one-element batch: source compatibility for
// all existing callers, one code path (SubmitBatch) for all enforcement.

namespace {

template <typename ResT, typename ReqT>
ResT SubmitOne(Kernel* k, ObjectId self, ReqT&& req) {
  SyscallReq r{std::forward<ReqT>(req)};
  SyscallRes out;
  k->SubmitBatch(self, std::span<const SyscallReq>(&r, 1), std::span<SyscallRes>(&out, 1));
  if (ResT* res = std::get_if<ResT>(&out)) {
    return std::move(*res);
  }
  // Unfilled (monostate) completion — dispatcher drift between PlanOf and
  // ExecLocked/ExecUnbatched. Every Res type default-constructs with
  // status == kInvalidArg, so report that instead of crashing on std::get.
  return ResT{};
}

template <typename T>
Result<T> ToResult(Status st, T&& value) {
  if (st != Status::kOk) {
    return st;
  }
  return std::forward<T>(value);
}

}  // namespace

Result<CategoryId> Kernel::sys_cat_create(ObjectId self) {
  CatCreateRes r = SubmitOne<CatCreateRes>(this, self, CatCreateReq{});
  return ToResult(r.status, std::move(r.cat));
}

Status Kernel::sys_self_set_label(ObjectId self, const Label& l) {
  return SubmitOne<SelfSetLabelRes>(this, self, SelfSetLabelReq{l}).status;
}

Status Kernel::sys_self_set_clearance(ObjectId self, const Label& c) {
  return SubmitOne<SelfSetClearanceRes>(this, self, SelfSetClearanceReq{c}).status;
}

Result<Label> Kernel::sys_self_get_label(ObjectId self) {
  SelfGetLabelRes r = SubmitOne<SelfGetLabelRes>(this, self, SelfGetLabelReq{});
  return ToResult(r.status, std::move(r.label));
}

Result<Label> Kernel::sys_self_get_clearance(ObjectId self) {
  SelfGetClearanceRes r = SubmitOne<SelfGetClearanceRes>(this, self, SelfGetClearanceReq{});
  return ToResult(r.status, std::move(r.clearance));
}

Status Kernel::sys_self_set_as(ObjectId self, ContainerEntry as) {
  return SubmitOne<SelfSetAsRes>(this, self, SelfSetAsReq{as}).status;
}

Result<ContainerEntry> Kernel::sys_self_get_as(ObjectId self) {
  SelfGetAsRes r = SubmitOne<SelfGetAsRes>(this, self, SelfGetAsReq{});
  return ToResult(r.status, std::move(r.as));
}

Status Kernel::sys_self_halt(ObjectId self) {
  return SubmitOne<SelfHaltRes>(this, self, SelfHaltReq{}).status;
}

Result<ObjectId> Kernel::sys_thread_create(ObjectId self, const CreateSpec& spec,
                                           const Label& new_label,
                                           const Label& new_clearance) {
  ThreadCreateRes r =
      SubmitOne<ThreadCreateRes>(this, self, ThreadCreateReq{spec, new_label, new_clearance});
  return ToResult(r.status, std::move(r.id));
}

Status Kernel::sys_thread_alert(ObjectId self, ContainerEntry thread, uint64_t code) {
  return SubmitOne<ThreadAlertRes>(this, self, ThreadAlertReq{thread, code}).status;
}

Result<uint64_t> Kernel::sys_self_next_alert(ObjectId self) {
  SelfNextAlertRes r = SubmitOne<SelfNextAlertRes>(this, self, SelfNextAlertReq{});
  return ToResult(r.status, std::move(r.code));
}

Status Kernel::sys_self_local_read(ObjectId self, void* buf, uint64_t off, uint64_t len) {
  return SubmitOne<SelfLocalReadRes>(this, self, SelfLocalReadReq{buf, off, len}).status;
}

Status Kernel::sys_self_local_write(ObjectId self, const void* buf, uint64_t off,
                                    uint64_t len) {
  return SubmitOne<SelfLocalWriteRes>(this, self, SelfLocalWriteReq{buf, off, len}).status;
}

Result<ObjectId> Kernel::sys_container_create(ObjectId self, const CreateSpec& spec,
                                              uint32_t avoid_types) {
  ContainerCreateRes r =
      SubmitOne<ContainerCreateRes>(this, self, ContainerCreateReq{spec, avoid_types});
  return ToResult(r.status, std::move(r.id));
}

Status Kernel::sys_container_unref(ObjectId self, ContainerEntry ce) {
  return SubmitOne<ContainerUnrefRes>(this, self, ContainerUnrefReq{ce}).status;
}

Result<ObjectId> Kernel::sys_container_get_parent(ObjectId self, ObjectId container) {
  ContainerGetParentRes r =
      SubmitOne<ContainerGetParentRes>(this, self, ContainerGetParentReq{container});
  return ToResult(r.status, std::move(r.parent));
}

Result<std::vector<ObjectId>> Kernel::sys_container_list(ObjectId self, ObjectId container) {
  ContainerListRes r = SubmitOne<ContainerListRes>(this, self, ContainerListReq{container});
  return ToResult(r.status, std::move(r.links));
}

Status Kernel::sys_container_link(ObjectId self, ObjectId container, ContainerEntry src) {
  return SubmitOne<ContainerLinkRes>(this, self, ContainerLinkReq{container, src}).status;
}

Result<bool> Kernel::sys_container_has(ObjectId self, ObjectId container, ObjectId obj) {
  ContainerHasRes r = SubmitOne<ContainerHasRes>(this, self, ContainerHasReq{container, obj});
  return ToResult(r.status, std::move(r.has));
}

Result<ObjectType> Kernel::sys_obj_get_type(ObjectId self, ContainerEntry ce) {
  ObjGetTypeRes r = SubmitOne<ObjGetTypeRes>(this, self, ObjGetTypeReq{ce});
  return ToResult(r.status, std::move(r.type));
}

Result<Label> Kernel::sys_obj_get_label(ObjectId self, ContainerEntry ce) {
  ObjGetLabelRes r = SubmitOne<ObjGetLabelRes>(this, self, ObjGetLabelReq{ce});
  return ToResult(r.status, std::move(r.label));
}

Result<std::string> Kernel::sys_obj_get_descrip(ObjectId self, ContainerEntry ce) {
  ObjGetDescripRes r = SubmitOne<ObjGetDescripRes>(this, self, ObjGetDescripReq{ce});
  return ToResult(r.status, std::move(r.descrip));
}

Result<uint64_t> Kernel::sys_obj_get_quota(ObjectId self, ContainerEntry ce) {
  ObjGetQuotaRes r = SubmitOne<ObjGetQuotaRes>(this, self, ObjGetQuotaReq{ce});
  return ToResult(r.status, std::move(r.quota));
}

Result<std::vector<uint8_t>> Kernel::sys_obj_get_metadata(ObjectId self, ContainerEntry ce) {
  ObjGetMetadataRes r = SubmitOne<ObjGetMetadataRes>(this, self, ObjGetMetadataReq{ce});
  return ToResult(r.status, std::move(r.metadata));
}

Status Kernel::sys_obj_set_metadata(ObjectId self, ContainerEntry ce, const void* data,
                                    size_t len) {
  return SubmitOne<ObjSetMetadataRes>(this, self,
                                      ObjSetMetadataReq{ce, data, static_cast<uint64_t>(len)})
      .status;
}

Status Kernel::sys_obj_set_fixed_quota(ObjectId self, ContainerEntry ce) {
  return SubmitOne<ObjSetFixedQuotaRes>(this, self, ObjSetFixedQuotaReq{ce}).status;
}

Status Kernel::sys_obj_set_immutable(ObjectId self, ContainerEntry ce) {
  return SubmitOne<ObjSetImmutableRes>(this, self, ObjSetImmutableReq{ce}).status;
}

Status Kernel::sys_quota_move(ObjectId self, ObjectId d, ObjectId o, int64_t n) {
  return SubmitOne<QuotaMoveRes>(this, self, QuotaMoveReq{d, o, n}).status;
}

Result<ObjectId> Kernel::sys_segment_create(ObjectId self, const CreateSpec& spec,
                                            uint64_t len) {
  SegmentCreateRes r = SubmitOne<SegmentCreateRes>(this, self, SegmentCreateReq{spec, len});
  return ToResult(r.status, std::move(r.id));
}

Result<ObjectId> Kernel::sys_segment_copy(ObjectId self, const CreateSpec& spec,
                                          ContainerEntry src) {
  SegmentCopyRes r = SubmitOne<SegmentCopyRes>(this, self, SegmentCopyReq{spec, src});
  return ToResult(r.status, std::move(r.id));
}

Status Kernel::sys_segment_resize(ObjectId self, ContainerEntry ce, uint64_t len) {
  return SubmitOne<SegmentResizeRes>(this, self, SegmentResizeReq{ce, len}).status;
}

Result<uint64_t> Kernel::sys_segment_get_len(ObjectId self, ContainerEntry ce) {
  SegmentGetLenRes r = SubmitOne<SegmentGetLenRes>(this, self, SegmentGetLenReq{ce});
  return ToResult(r.status, std::move(r.len));
}

Status Kernel::sys_segment_read(ObjectId self, ContainerEntry ce, void* buf, uint64_t off,
                                uint64_t len) {
  return SubmitOne<SegmentReadRes>(this, self, SegmentReadReq{ce, buf, off, len}).status;
}

Status Kernel::sys_segment_write(ObjectId self, ContainerEntry ce, const void* buf,
                                 uint64_t off, uint64_t len) {
  return SubmitOne<SegmentWriteRes>(this, self, SegmentWriteReq{ce, buf, off, len}).status;
}

Result<ObjectId> Kernel::sys_as_create(ObjectId self, const CreateSpec& spec) {
  AsCreateRes r = SubmitOne<AsCreateRes>(this, self, AsCreateReq{spec});
  return ToResult(r.status, std::move(r.id));
}

Status Kernel::sys_as_set(ObjectId self, ContainerEntry ce,
                          const std::vector<Mapping>& mappings) {
  return SubmitOne<AsSetRes>(this, self, AsSetReq{ce, mappings}).status;
}

Result<std::vector<Mapping>> Kernel::sys_as_get(ObjectId self, ContainerEntry ce) {
  AsGetRes r = SubmitOne<AsGetRes>(this, self, AsGetReq{ce});
  return ToResult(r.status, std::move(r.mappings));
}

Status Kernel::sys_as_access(ObjectId self, uint64_t va, void* buf, uint64_t len, bool write) {
  return SubmitOne<AsAccessRes>(this, self, AsAccessReq{va, buf, len, write}).status;
}

Result<ObjectId> Kernel::sys_gate_create(ObjectId self, const CreateSpec& spec,
                                         const Label& gate_label, const Label& gate_clearance,
                                         const std::string& entry_name,
                                         const std::vector<uint64_t>& closure) {
  GateCreateRes r = SubmitOne<GateCreateRes>(
      this, self, GateCreateReq{spec, gate_label, gate_clearance, entry_name, closure});
  return ToResult(r.status, std::move(r.id));
}

Status Kernel::sys_gate_invoke(ObjectId self, ContainerEntry gate, const Label& request_label,
                               const Label& request_clearance, const Label& verify_label) {
  // By-ref fast path (PR 5): gate_invoke is unbatchable — it can never join
  // a lock group — and its descriptor would copy THREE caller labels into
  // the variant per call, the heaviest wrapper cost on the hottest
  // unbatchable entry point (every daemon RPC crosses a gate). Calling the
  // Do* body directly is observably identical to the one-element batch
  // (ExecUnbatched does exactly this after the copies; the access-matrix
  // equivalence sweep in tests/kernel/syscall_abi_test.cc pins it) but
  // skips descriptor construction entirely. Entry bookkeeping is preserved:
  // one syscall charged, same as SubmitBatch would — and one trace event,
  // recorded here since the fast path bypasses the dispatcher's loop.
  CountSyscalls(self, 1);
  uint64_t t0 = trace::RecordNowNs();
  uint64_t g0 = trace::BeginSyscallGroup();
  trace::ResetTaint();
  Status st = DoGateInvoke(self, gate, request_label, request_clearance, verify_label);
#if HISTAR_TRACE
  trace::RecordSyscall(static_cast<uint16_t>(ReqIndexOf<GateInvokeReq>()),
                       static_cast<int8_t>(st), self, t0);
#endif
  trace::FinishSyscallGroup(g0, t0, trace::RecordNowNs());
  return st;
}

Result<std::vector<uint64_t>> Kernel::sys_gate_get_closure(ObjectId self, ContainerEntry ce) {
  GateGetClosureRes r = SubmitOne<GateGetClosureRes>(this, self, GateGetClosureReq{ce});
  return ToResult(r.status, std::move(r.closure));
}

Status Kernel::sys_futex_wait(ObjectId self, ContainerEntry seg, uint64_t offset,
                              uint64_t expected, uint32_t timeout_ms) {
  return SubmitOne<FutexWaitRes>(this, self, FutexWaitReq{seg, offset, expected, timeout_ms})
      .status;
}

Result<uint32_t> Kernel::sys_futex_wake(ObjectId self, ContainerEntry seg, uint64_t offset,
                                        uint32_t max_count) {
  FutexWakeRes r = SubmitOne<FutexWakeRes>(this, self, FutexWakeReq{seg, offset, max_count});
  return ToResult(r.status, std::move(r.woken));
}

Result<std::array<uint8_t, 6>> Kernel::sys_net_macaddr(ObjectId self, ContainerEntry dev) {
  NetMacAddrRes r = SubmitOne<NetMacAddrRes>(this, self, NetMacAddrReq{dev});
  return ToResult(r.status, std::move(r.mac));
}

Status Kernel::sys_net_transmit(ObjectId self, ContainerEntry dev, ContainerEntry seg,
                                uint64_t off, uint64_t len) {
  return SubmitOne<NetTransmitRes>(this, self, NetTransmitReq{dev, seg, off, len}).status;
}

Result<uint64_t> Kernel::sys_net_receive(ObjectId self, ContainerEntry dev, ContainerEntry seg,
                                         uint64_t off, uint64_t maxlen) {
  NetReceiveRes r = SubmitOne<NetReceiveRes>(this, self, NetReceiveReq{dev, seg, off, maxlen});
  return ToResult(r.status, std::move(r.len));
}

Status Kernel::sys_net_wait(ObjectId self, ContainerEntry dev, uint32_t timeout_ms) {
  return SubmitOne<NetWaitRes>(this, self, NetWaitReq{dev, timeout_ms}).status;
}

Status Kernel::sys_console_write(ObjectId self, ContainerEntry dev, const std::string& text) {
  return SubmitOne<ConsoleWriteRes>(this, self, ConsoleWriteReq{dev, text}).status;
}

Status Kernel::sys_sync(ObjectId self) {
  return SubmitOne<SyncRes>(this, self, SyncReq{}).status;
}

Status Kernel::sys_sync_object(ObjectId self, ContainerEntry ce) {
  return SubmitOne<SyncObjectRes>(this, self, SyncObjectReq{ce}).status;
}

Status Kernel::sys_sync_pages(ObjectId self, ContainerEntry ce, uint64_t offset,
                              uint64_t len) {
  return SubmitOne<SyncPagesRes>(this, self, SyncPagesReq{ce, offset, len}).status;
}

Result<ObjectId> Kernel::sys_ring_create(ObjectId self, const CreateSpec& spec,
                                         uint32_t capacity) {
  RingCreateRes r = SubmitOne<RingCreateRes>(this, self, RingCreateReq{spec, capacity});
  return ToResult(r.status, std::move(r.id));
}

Result<uint64_t> Kernel::sys_ring_submit(ObjectId self, ContainerEntry ring,
                                         std::vector<RingOp> ops) {
  RingSubmitRes r = SubmitOne<RingSubmitRes>(this, self, RingSubmitReq{ring, std::move(ops)});
  return ToResult(r.status, std::move(r.ticket));
}

Status Kernel::sys_ring_wait(ObjectId self, ContainerEntry ring, uint64_t ticket,
                             uint32_t timeout_ms) {
  return SubmitOne<RingWaitRes>(this, self, RingWaitReq{ring, ticket, timeout_ms}).status;
}

Result<std::vector<RingCompletion>> Kernel::sys_ring_reap(ObjectId self, ContainerEntry ring,
                                                          uint32_t max) {
  RingReapRes r = SubmitOne<RingReapRes>(this, self, RingReapReq{ring, max});
  return ToResult(r.status, std::move(r.completions));
}

TraceReadRes Kernel::sys_trace_read(ObjectId self, uint32_t max_events) {
  return SubmitOne<TraceReadRes>(this, self, TraceReadReq{max_events});
}

}  // namespace histar
