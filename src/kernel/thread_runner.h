// Binding of host threads to kernel Thread objects.
//
// The simulator uses host threads as the execution substrate: a kernel
// Thread object is a passive record of label state until some host thread
// "runs" it. RunOnHostThread is the analogue of the kernel scheduler placing
// a thread on a CPU.
#ifndef SRC_KERNEL_THREAD_RUNNER_H_
#define SRC_KERNEL_THREAD_RUNNER_H_

#include <functional>
#include <thread>

#include "src/kernel/kernel.h"

namespace histar {

// Runs `body` on a new host thread bound (via CurrentThread) to kernel
// thread `tid`. The kernel thread is halted when the body returns, so its
// label can never be reused by unrelated host code.
inline std::thread RunOnHostThread(Kernel* kernel, ObjectId tid, std::function<void()> body) {
  return std::thread([kernel, tid, body = std::move(body)]() {
    CurrentThread bind(tid);
    body();
    kernel->sys_self_halt(tid);
  });
}

// Runs `body` synchronously on the calling host thread bound to `tid`,
// restoring the previous binding afterwards. Used for gate-entry style
// borrowed execution in tests.
inline void RunBound(ObjectId tid, const std::function<void()>& body) {
  CurrentThread bind(tid);
  body();
}

// Runs `body` as kernel-worker proxy execution (PR 5): the host thread
// keeps whatever CurrentThread binding it has (ring workers have none — a
// worker is not a kernel thread and must not impersonate one), and the
// ProxyExecution guard keeps per-thread fault hints of the threads whose
// descriptors it executes untouched. This is the inverse of RunBound:
// borrowed *labels* (each syscall names its submitter as `self`) without a
// borrowed identity.
inline void RunAsWorker(const std::function<void()>& body) {
  ProxyExecution proxy;
  body();
}

}  // namespace histar

#endif  // SRC_KERNEL_THREAD_RUNNER_H_
