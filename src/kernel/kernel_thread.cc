// Thread and gate syscalls (paper §3.1, §3.5).
//
// Locking footprint per syscall is tabulated in docs/syscalls.md; the
// general convention (one TableLock per syscall, shards in ascending order,
// leaf mutexes nested under it) is described in kernel.cc / ARCHITECTURE.md.
#include <cstring>

#include "src/kernel/kernel.h"

namespace histar {

// ---- threads -----------------------------------------------------------------

Result<CategoryId> Kernel::CatCreateLocked(ObjectId self) {
  Thread* t = GetThread(self);
  if (t == nullptr || t->halted()) {
    return Status::kHalted;
  }
  // The allocating thread becomes the category's only owner: L_T(c) ← ⋆ and
  // C_T(c) ← 3. Labels are egalitarian — no other thread is below default.
  // This is the one place thread labels legitimately mutate: build the new
  // label and swap the handle.
  CategoryId c = cat_alloc_.Allocate();
  Label l = LabelOf(*t);
  l.set(c, Level::kStar);
  t->set_label_id_internal(registry_.Intern(l));
  Label cl = ClearanceOf(*t);
  cl.set(c, Level::k3);
  t->set_clearance_id_internal(registry_.Intern(cl));
  MarkDirty(self);
  return c;
}

Status Kernel::SelfSetLabelLocked(ObjectId self, const Label& l) {
  Thread* t = GetThread(self);
  if (t == nullptr || t->halted()) {
    return Status::kHalted;
  }
  // L_T ⊑ L ⊑ C_T: a thread may taint itself up to its clearance, and may
  // drop ownership, but may never shed taint. Validated before interning so
  // a rejected relabel leaves no trace in the registry.
  if (!registry_.LeqWith(t->label_id(), l) || !registry_.LeqOf(l, t->clearance_id())) {
    return Status::kLabelCheckFailed;
  }
  t->set_label_id_internal(registry_.Intern(l));
  MarkDirty(self);
  return Status::kOk;
}

Status Kernel::SelfSetClearanceLocked(ObjectId self, const Label& c) {
  Thread* t = GetThread(self);
  if (t == nullptr || t->halted()) {
    return Status::kHalted;
  }
  // L_T ⊑ C ⊑ (C_T ⊔ L_T^J): clearance may be lowered freely (not below the
  // label) and raised only in owned categories. The bound is a registry Join
  // of two existing ids — no label arithmetic on this path after the first
  // crossing at a given (clearance, label) pair; `c` itself is interned only
  // once it has passed every check.
  LabelId bound = registry_.Join(t->clearance_id(), registry_.HiOf(t->label_id()));
  if (!registry_.LeqWith(t->label_id(), c) || !registry_.LeqOf(c, bound)) {
    return Status::kLabelCheckFailed;
  }
  if (c.HasLevel(Level::kHi)) {
    return Status::kInvalidArg;
  }
  t->set_clearance_id_internal(registry_.Intern(c));
  MarkDirty(self);
  return Status::kOk;
}

Result<Label> Kernel::SelfGetLabelLocked(ObjectId self) {
  Thread* t = GetThread(self);
  if (t == nullptr || t->halted()) {
    return Status::kHalted;
  }
  return LabelOf(*t);
}

Result<Label> Kernel::SelfGetClearanceLocked(ObjectId self) {
  Thread* t = GetThread(self);
  if (t == nullptr || t->halted()) {
    return Status::kHalted;
  }
  return ClearanceOf(*t);
}

Status Kernel::SelfSetAsLocked(ObjectId self, ContainerEntry as) {
  Thread* t = GetThread(self);
  if (t == nullptr || t->halted()) {
    return Status::kHalted;
  }
  Result<Object*> o = ResolveEntry(*t, as);
  if (!o.ok()) {
    return o.status();
  }
  if (o.value()->type() != ObjectType::kAddressSpace) {
    return Status::kWrongType;
  }
  // Using an address space requires observing it (L_A ⊑ L_T^J).
  if (!CanObserve(*t, *o.value())) {
    return Status::kLabelCheckFailed;
  }
  t->set_address_space_internal(as);
  // Switching address spaces invalidates the cached last-fault footprint
  // (host-thread slot; a proxying worker skips it — self-verification
  // covers the submitter's stale entry).
  if (!ProxyExecution::Active()) {
    CurrentFaultHint().thread.store(kInvalidObject, std::memory_order_relaxed);
  }
  MarkDirty(self);
  return Status::kOk;
}

Result<ContainerEntry> Kernel::SelfGetAsLocked(ObjectId self) {
  Thread* t = GetThread(self);
  if (t == nullptr || t->halted()) {
    return Status::kHalted;
  }
  return t->address_space();
}

Status Kernel::SelfHaltLocked(ObjectId self) {
  {
    Thread* t = GetThread(self);
    if (t == nullptr) {
      return Status::kNotFound;
    }
    t->set_halted_internal();
    MarkDirty(self);
  }
  // No futex notify: queues are segment-keyed, so a thread id matches
  // nothing. A host thread waiting as this kernel thread observes the halt
  // through the wait loop's bounded-slice state peek (≤50 ms).
  return Status::kOk;
}

Result<ObjectId> Kernel::ThreadCreateLocked(ObjectId self, const CreateSpec& spec,
                                            const Label& new_label,
                                            const Label& new_clearance, ObjectId new_id) {
  Thread* t = GetThread(self);
  if (t == nullptr || t->halted()) {
    return Status::kHalted;
  }
  // Spawn rule (§3.1): L_T ⊑ L_T' ⊑ C_T' ⊑ C_T, validated before interning.
  if (!registry_.LeqWith(t->label_id(), new_label) ||
      !LabelRegistry::LeqDirect(new_label, new_clearance) ||
      !registry_.LeqOf(new_clearance, t->clearance_id())) {
    return Status::kLabelCheckFailed;
  }
  LabelId nl = kInvalidLabelId;
  Result<Container*> d = CheckCreate(*t, spec.container, new_label, ObjectType::kThread,
                                     spec.quota, &nl);
  if (!d.ok()) {
    return d.status();
  }
  auto nt = std::make_unique<Thread>(new_id, nl, registry_.Intern(new_clearance));
  nt->set_quota_internal(spec.quota);
  nt->set_descrip_internal(spec.descrip);
  Thread* raw = nt.get();
  InsertObject(std::move(nt));
  Status ls = LinkInto(d.value(), raw);
  if (ls != Status::kOk) {
    table_.EraseLocked(raw->id());
    return ls;
  }
  MarkDirty(raw->id());
  return raw->id();
}

Status Kernel::DoThreadAlert(ObjectId self, ContainerEntry thread, uint64_t code) {
  // The §3.4 check reaches through the target's *address space*, whose id
  // is unknown until the target is read. Discover it optimistically, like
  // sys_as_access: lock the shards known so far, widen if the derived AS
  // escapes the set, and fall back to every shard only if the footprint
  // keeps shifting (target retargeting its AS concurrently).
  ObjectId as_id = kInvalidObject;
  for (int round = 0;; ++round) {
    const uint64_t lk_mask =
        round >= kFootprintDiscoveryRounds
            ? table_.AllShardsMask()
            : table_.ShardMaskOf(self) | table_.ShardMaskOf(thread.container) |
                  table_.ShardMaskOf(thread.object) | table_.ShardMaskOf(as_id);
    TableLock lk(table_, TableLock::Mode::kExclusive, lk_mask,
                 TableLock::ByMask{});
    Thread* t = GetThread(self);
    if (t == nullptr || t->halted()) {
      return Status::kHalted;
    }
    Result<Object*> o = ResolveEntry(*t, thread);
    if (!o.ok()) {
      return o.status();
    }
    if (o.value()->type() != ObjectType::kThread) {
      return Status::kWrongType;
    }
    Thread* target = static_cast<Thread*>(o.value());
    if (!lk.Covers(target->address_space().object)) {
      as_id = target->address_space().object;
      continue;
    }
    // §3.4: the sender must be able to write the target's address space — the
    // alert vector lives there and this also implies the sender could have
    // taken the target over entirely — and observe the target.
    Object* as = Get(target->address_space().object);
    if (as == nullptr) {
      return Status::kNotFound;
    }
    Status ms = CheckModify(*t, *as);
    if (ms != Status::kOk) {
      return ms;
    }
    if (!CanObserve(*t, *target)) {
      return Status::kLabelCheckFailed;
    }
    target->alerts().push_back(code);
    break;
  }
  // No futex notify: segment-keyed queues cannot address a thread. The
  // target's wait loop sees the pending alert at its next bounded-slice
  // state peek (≤50 ms) and returns kAgain, the EINTR analogue.
  return Status::kOk;
}

Result<uint64_t> Kernel::SelfNextAlertLocked(ObjectId self) {
  Thread* t = GetThread(self);
  if (t == nullptr || t->halted()) {
    return Status::kHalted;
  }
  if (t->alerts().empty()) {
    return Status::kNotFound;
  }
  uint64_t code = t->alerts().front();
  t->alerts().pop_front();
  return code;
}

Status Kernel::SelfLocalReadLocked(ObjectId self, void* buf, uint64_t off, uint64_t len) {
  Thread* t = GetThread(self);
  if (t == nullptr || t->halted()) {
    return Status::kHalted;
  }
  if (!RangeOk(off, len, t->local_segment().size())) {
    return Status::kRange;
  }
  // CopyBytes: len == 0 at off == size is a valid no-op (null buf allowed).
  CopyBytes(buf, t->local_segment().data() + off, len);
  return Status::kOk;
}

Status Kernel::SelfLocalWriteLocked(ObjectId self, const void* buf, uint64_t off,
                                    uint64_t len) {
  // Locked exclusive (see PlanOf) even though only `self` ever writes its
  // local segment: the checkpoint path serializes thread-local pages under
  // shared all-locks, and shared/shared with a concurrent writer would race.
  Thread* t = GetThread(self);
  if (t == nullptr || t->halted()) {
    return Status::kHalted;
  }
  if (!RangeOk(off, len, t->local_segment().size())) {
    return Status::kRange;
  }
  CopyBytes(t->local_segment().data() + off, buf, len);
  MarkDirty(self);
  return Status::kOk;
}

// ---- gates -------------------------------------------------------------------

Result<ObjectId> Kernel::GateCreateLocked(ObjectId self, const CreateSpec& spec,
                                          const Label& gate_label, const Label& gate_clearance,
                                          const std::string& entry_name,
                                          const std::vector<uint64_t>& closure,
                                          ObjectId new_id) {
  Thread* t = GetThread(self);
  if (t == nullptr || t->halted()) {
    return Status::kHalted;
  }
  // §3.5: L_T' ⊑ L_G ⊑ C_G ⊑ C_T'. A gate may carry ⋆ — this is how stored
  // privilege works — but only ⋆ the creator already owns (enforced by
  // L_T ⊑ L_G: a non-owner's level-1 never fits below a requested ⋆).
  // Validated before interning, like every caller-supplied label.
  if (!registry_.LeqWith(t->label_id(), gate_label) ||
      !LabelRegistry::LeqDirect(gate_label, gate_clearance) ||
      !registry_.LeqOf(gate_clearance, t->clearance_id())) {
    return Status::kLabelCheckFailed;
  }
  LabelId gl = kInvalidLabelId;
  Result<Container*> d = CheckCreate(*t, spec.container, gate_label, ObjectType::kGate,
                                     spec.quota, &gl);
  if (!d.ok()) {
    return d.status();
  }
  {
    // gate_entries_mu_ nests under the shard locks (lock hierarchy).
    MutexLock glock(&gate_entries_mu_);
    if (gate_entries_.find(entry_name) == gate_entries_.end()) {
      return Status::kNotFound;  // entry code segment missing
    }
  }
  auto g = std::make_unique<Gate>(new_id, gl, registry_.Intern(gate_clearance),
                                  entry_name, closure);
  g->set_quota_internal(spec.quota);
  g->set_descrip_internal(spec.descrip);
  Gate* raw = g.get();
  InsertObject(std::move(g));
  Status ls = LinkInto(d.value(), raw);
  if (ls != Status::kOk) {
    table_.EraseLocked(raw->id());
    return ls;
  }
  MarkDirty(raw->id());
  return raw->id();
}

Status Kernel::DoGateInvoke(ObjectId self, ContainerEntry gate, const Label& request_label,
                            const Label& request_clearance, const Label& verify_label) {
  GateEntryFn entry;
  GateCall call;
  {
    TableLock lk(table_, TableLock::Mode::kExclusive, {self, gate.container, gate.object});
    Thread* t = GetThread(self);
    if (t == nullptr || t->halted()) {
      return Status::kHalted;
    }
    Result<Object*> o = ResolveEntry(*t, gate);
    if (!o.ok()) {
      return o.status();
    }
    if (o.value()->type() != ObjectType::kGate) {
      return Status::kWrongType;
    }
    Gate* g = static_cast<Gate*>(o.value());
    // §3.5 invocation rule: L_T ⊑ C_G, L_T ⊑ L_V, and
    // (L_T^J ⊔ L_G^J)^⋆ ⊑ L_R ⊑ C_R ⊑ (C_T ⊔ C_G). The floor and both
    // bounds are registry ids: after the first crossing of a given gate by a
    // thread at a given label, the whole rule is a handful of hash probes
    // and allocates nothing.
    if (!registry_.Leq(t->label_id(), g->clearance_id())) {
      return Status::kLabelCheckFailed;
    }
    // Verify labels are per-call proofs, never stored — compared directly,
    // never interned (an attacker could otherwise mint unbounded registry
    // entries with throwaway verify labels).
    if (!registry_.LeqWith(t->label_id(), verify_label)) {
      return Status::kLabelCheckFailed;
    }
    LabelId floor = registry_.StarOf(
        registry_.Join(registry_.HiOf(t->label_id()), registry_.HiOf(g->label_id())));
    LabelId clear_bound = registry_.Join(t->clearance_id(), g->clearance_id());
    if (!registry_.LeqWith(floor, request_label) ||
        !LabelRegistry::LeqDirect(request_label, request_clearance) ||
        !registry_.LeqOf(request_clearance, clear_bound)) {
      return Status::kLabelCheckFailed;
    }
    if (request_label.HasLevel(Level::kHi) || request_clearance.HasLevel(Level::kHi)) {
      return Status::kInvalidArg;
    }
    // Resolve the entry function BEFORE relabeling: a gate whose entry name
    // was never re-registered after restore must fail without switching the
    // caller's protection domain.
    {
      MutexLock glock(&gate_entries_mu_);
      auto it = gate_entries_.find(g->entry_name());
      if (it == gate_entries_.end()) {
        return Status::kNotFound;
      }
      entry = it->second;
    }
    // The thread crosses the gate: its label and clearance become exactly
    // what it requested (the kernel verified, user code specified — §3.5);
    // only now, with every check passed, do the request labels earn a
    // registry entry.
    t->set_label_id_internal(registry_.Intern(request_label));
    t->set_clearance_id_internal(registry_.Intern(request_clearance));
    MarkDirty(self);
    call.kernel = this;
    call.thread = self;
    call.closure = g->closure();
    call.gate = gate;
    call.verify = verify_label;
  }
  // Run the entry point outside every kernel lock: this is user code
  // executing in the gate creator's protection domain, and it will issue
  // syscalls that take their own TableLocks.
  entry(call);
  return Status::kOk;
}

Result<std::vector<uint64_t>> Kernel::GateGetClosureLocked(ObjectId self, ContainerEntry ce) {
  Thread* t = GetThread(self);
  if (t == nullptr || t->halted()) {
    return Status::kHalted;
  }
  Result<Object*> o = ResolveEntry(*t, ce);
  if (!o.ok()) {
    return o.status();
  }
  if (o.value()->type() != ObjectType::kGate) {
    return Status::kWrongType;
  }
  return static_cast<Gate*>(o.value())->closure();
}

}  // namespace histar
