// Shared kernel types: object IDs, object types, container entries.
#ifndef SRC_KERNEL_TYPES_H_
#define SRC_KERNEL_TYPES_H_

#include <cstdint>
#include <cstring>

#include "src/core/category.h"

namespace histar {

// Objects, like categories, are named by unique 61-bit identifiers produced
// by encrypting an allocation counter (paper §3).
using ObjectId = uint64_t;
inline constexpr ObjectId kInvalidObject = 0;

// Reserved pseudo-object id meaning "the current thread's local segment"
// when it appears in an address-space mapping (paper §3.4).
inline constexpr ObjectId kLocalSegmentId = ~uint64_t{0};

// The kernel object types: the paper's six (§3) plus the async
// submission/completion ring (PR 5 — not in the paper, but built entirely
// from its object model: a ring is just another labeled, quota-charged
// kernel object). The enum values are also the bit positions used by
// container avoid_types masks, and appear in serialized object blobs, so
// new types append at the end.
enum class ObjectType : uint8_t {
  kContainer = 0,
  kThread = 1,
  kSegment = 2,
  kAddressSpace = 3,
  kGate = 4,
  kDevice = 5,
  kRing = 6,
};

inline constexpr int kNumObjectTypes = 7;

inline uint32_t TypeBit(ObjectType t) { return 1u << static_cast<uint32_t>(t); }

// Most system calls name objects by ⟨container, object⟩ pairs so the kernel
// can verify the caller is entitled to know the object exists (paper §3.2).
struct ContainerEntry {
  ObjectId container = kInvalidObject;
  ObjectId object = kInvalidObject;

  bool operator==(const ContainerEntry&) const = default;
};

// Shorthand for the common self-referential entry ⟨D,D⟩: every container
// contains itself.
inline ContainerEntry SelfEntry(ObjectId d) { return ContainerEntry{d, d}; }

// Address-space mapping permission bits.
inline constexpr uint32_t kMapRead = 1u << 0;
inline constexpr uint32_t kMapWrite = 1u << 1;
inline constexpr uint32_t kMapExec = 1u << 2;
// Convenience bits reserved for user-level software (paper §3.4); the kernel
// stores but never interprets them.
inline constexpr uint32_t kMapUserFlag0 = 1u << 16;
inline constexpr uint32_t kMapUserFlag1 = 1u << 17;

// Simulated page size. Segment lengths are byte-granular but address-space
// mappings are page-granular, like the real kernel.
inline constexpr uint64_t kPageSize = 4096;

// Quota value meaning "unlimited" (the root container always has it).
inline constexpr uint64_t kQuotaInfinite = ~uint64_t{0};

// Fixed bookkeeping charge for any object, standing in for the kernel data
// structures that the real system charges to the enclosing container.
inline constexpr uint64_t kObjectOverheadBytes = 128;

// Overflow-safe bounds check: true iff [off, off+len) fits in a buffer (or
// budget) of `size` bytes. `off + len > size` is NOT equivalent — a huge
// user-supplied off or len wraps the sum past the test and turns a range
// error into out-of-bounds access.
inline bool RangeOk(uint64_t off, uint64_t len, uint64_t size) {
  return off <= size && len <= size - off;
}

// memcpy with the zero-length case made explicit. RangeOk admits len == 0 at
// off == size (including on an empty buffer), where either pointer may be
// null — an empty vector's data(), or a caller passing nullptr for a
// zero-byte transfer. memcpy's contract makes a null argument UB even for
// n == 0, so every byte-range syscall copies through this instead.
inline void CopyBytes(void* dst, const void* src, uint64_t len) {
  if (len != 0) {
    memcpy(dst, src, len);
  }
}

// Length of the descriptive string attached to every object.
inline constexpr size_t kDescripLen = 32;
// Mutable user-defined metadata bytes on every object (paper §3).
inline constexpr size_t kMetadataLen = 64;

}  // namespace histar

#endif  // SRC_KERNEL_TYPES_H_
