// Segment, address-space, futex and device syscalls (paper §3.4, §4.1, §5.7).
//
// Locking footprint per syscall is tabulated in docs/syscalls.md. Two paths
// here deserve note (full discussion in ARCHITECTURE.md "Concurrency
// model"):
//   * sys_as_access cannot know its shard footprint up front (the backing
//     segment comes out of the address space, which comes out of the
//     thread), so it discovers it optimistically: lock the shards known so
//     far, derive the next id, widen and retry if it escapes the locked
//     set — typically two to three short targeted rounds (shared for
//     reads, exclusive for writes), never an up-front all-shards lock.
//   * Futexes live under their own futex_mu_, which is never held together
//     with any shard lock. The lost-wakeup window this opens between "read
//     the futex word" and "sleep" is closed by registering as a waiter
//     first and re-reading the word afterwards; wakes that land in between
//     are captured by the queue's wake_seq/wake_budget counters.
#include <chrono>
#include <cstring>

#include "src/core/trace.h"
#include "src/kernel/kernel.h"

namespace histar {

// ---- segments ----------------------------------------------------------------

Result<ObjectId> Kernel::SegmentCreateLocked(ObjectId self, const CreateSpec& spec,
                                             uint64_t len, ObjectId new_id) {
  Thread* t = GetThread(self);
  if (t == nullptr || t->halted()) {
    return Status::kHalted;
  }
  LabelId lid = kInvalidLabelId;
  Result<Container*> d = CheckCreate(*t, spec.container, spec.label, ObjectType::kSegment,
                                     spec.quota, &lid);
  if (!d.ok()) {
    return d.status();
  }
  if (!RangeOk(kObjectOverheadBytes, len, spec.quota)) {
    return Status::kQuotaExceeded;
  }
  auto s = std::make_unique<Segment>(new_id, lid);
  s->bytes().resize(len, 0);
  s->set_quota_internal(spec.quota);
  s->set_descrip_internal(spec.descrip);
  Segment* raw = s.get();
  InsertObject(std::move(s));
  Status ls = LinkInto(d.value(), raw);
  if (ls != Status::kOk) {
    table_.EraseLocked(raw->id());
    return ls;
  }
  MarkDirty(raw->id());
  return raw->id();
}

Result<ObjectId> Kernel::SegmentCopyLocked(ObjectId self, const CreateSpec& spec,
                                           ContainerEntry src, ObjectId new_id) {
  Thread* t = GetThread(self);
  if (t == nullptr || t->halted()) {
    return Status::kHalted;
  }
  Result<Object*> o = ResolveEntry(*t, src);
  if (!o.ok()) {
    return o.status();
  }
  if (o.value()->type() != ObjectType::kSegment) {
    return Status::kWrongType;
  }
  Segment* s = static_cast<Segment*>(o.value());
  // Copying reads the source...
  if (!CanObserve(*t, *s)) {
    return Status::kLabelCheckFailed;
  }
  // ...and creates a new object at the requested label; the usual creation
  // rule keeps the copy at least as tainted as the thread that read it.
  LabelId lid = kInvalidLabelId;
  Result<Container*> d = CheckCreate(*t, spec.container, spec.label, ObjectType::kSegment,
                                     spec.quota, &lid);
  if (!d.ok()) {
    return d.status();
  }
  if (!RangeOk(kObjectOverheadBytes, s->bytes().size(), spec.quota)) {
    return Status::kQuotaExceeded;
  }
  auto ns = std::make_unique<Segment>(new_id, lid);
  ns->bytes() = s->bytes();
  ns->set_quota_internal(spec.quota);
  ns->set_descrip_internal(spec.descrip);
  Segment* raw = ns.get();
  InsertObject(std::move(ns));
  Status ls = LinkInto(d.value(), raw);
  if (ls != Status::kOk) {
    table_.EraseLocked(raw->id());
    return ls;
  }
  MarkDirty(raw->id());
  return raw->id();
}

Status Kernel::SegmentResizeLocked(ObjectId self, ContainerEntry ce, uint64_t len) {
  Thread* t = GetThread(self);
  if (t == nullptr || t->halted()) {
    return Status::kHalted;
  }
  // A resize can move/shrink the bytes a cached fault translation points
  // at; drop this host thread's hint (other slots' hints re-verify on use;
  // a proxying ring worker leaves the submitter's slot alone — it self-
  // recovers through the same re-verification).
  if (!ProxyExecution::Active()) {
    CurrentFaultHint().thread.store(kInvalidObject, std::memory_order_relaxed);
  }
  Result<Object*> o = ResolveEntry(*t, ce);
  if (!o.ok()) {
    return o.status();
  }
  if (o.value()->type() != ObjectType::kSegment) {
    return Status::kWrongType;
  }
  Segment* s = static_cast<Segment*>(o.value());
  Status ms = CheckModify(*t, *s);
  if (ms != Status::kOk) {
    return ms;
  }
  if (!RangeOk(kObjectOverheadBytes, len, s->quota())) {
    return Status::kQuotaExceeded;
  }
  s->bytes().resize(len, 0);
  // Republish the length for lock-free sys_segment_get_len readers (PR 6);
  // the byte vector itself stays lock-protected.
  s->publish_len_internal();
  MarkDirty(s->id());
  return Status::kOk;
}

Result<uint64_t> Kernel::SegmentGetLenLocked(ObjectId self, ContainerEntry ce) {
  Thread* t = GetThread(self);
  if (t == nullptr || t->halted()) {
    return Status::kHalted;
  }
  Result<Object*> o = ResolveEntry(*t, ce);
  if (!o.ok()) {
    return o.status();
  }
  if (o.value()->type() != ObjectType::kSegment) {
    return Status::kWrongType;
  }
  if (!CanObserve(*t, *o.value())) {
    return Status::kLabelCheckFailed;
  }
  // The published length, not bytes().size(): identical under any lock
  // (mutators republish before unlocking), and the only torn-free read for
  // the lock-free batch path — a concurrent resize may be reallocating the
  // vector itself.
  return static_cast<Segment*>(o.value())->published_len();
}

Status Kernel::SegmentReadLocked(ObjectId self, ContainerEntry ce, void* buf, uint64_t off,
                                 uint64_t len) {
  // The read-mostly hot path the shard split exists for: three ids, shared
  // locks only — concurrent reads of different (or the same) segments never
  // serialize on a kernel-wide lock (bench/ablation_objtable.cc measures
  // exactly this path). Under the batch ABI, a run of reads additionally
  // shares ONE lock acquisition (bench/fig12_ipc.cc measures that).
  Thread* t = GetThread(self);
  if (t == nullptr || t->halted()) {
    return Status::kHalted;
  }
  Result<Object*> o = ResolveEntry(*t, ce);
  if (!o.ok()) {
    return o.status();
  }
  if (o.value()->type() != ObjectType::kSegment) {
    return Status::kWrongType;
  }
  Segment* s = static_cast<Segment*>(o.value());
  if (!CanObserve(*t, *s)) {
    return Status::kLabelCheckFailed;
  }
  if (!RangeOk(off, len, s->bytes().size())) {
    return Status::kRange;
  }
  // CopyBytes, not memcpy: len == 0 at off == size is a valid no-op read
  // (RangeOk admits it) and may pair with a null buf or empty segment.
  CopyBytes(buf, s->bytes().data() + off, len);
  return Status::kOk;
}

Status Kernel::SegmentWriteLocked(ObjectId self, ContainerEntry ce, const void* buf,
                                  uint64_t off, uint64_t len) {
  Thread* t = GetThread(self);
  if (t == nullptr || t->halted()) {
    return Status::kHalted;
  }
  Result<Object*> o = ResolveEntry(*t, ce);
  if (!o.ok()) {
    return o.status();
  }
  if (o.value()->type() != ObjectType::kSegment) {
    return Status::kWrongType;
  }
  Segment* s = static_cast<Segment*>(o.value());
  Status ms = CheckModify(*t, *s);
  if (ms != Status::kOk) {
    return ms;
  }
  if (!RangeOk(off, len, s->bytes().size())) {
    return Status::kRange;
  }
  CopyBytes(s->bytes().data() + off, buf, len);
  MarkDirty(s->id());
  return Status::kOk;
}

// ---- address spaces -------------------------------------------------------------

Result<ObjectId> Kernel::AsCreateLocked(ObjectId self, const CreateSpec& spec,
                                        ObjectId new_id) {
  Thread* t = GetThread(self);
  if (t == nullptr || t->halted()) {
    return Status::kHalted;
  }
  LabelId lid = kInvalidLabelId;
  Result<Container*> d = CheckCreate(*t, spec.container, spec.label, ObjectType::kAddressSpace,
                                     spec.quota, &lid);
  if (!d.ok()) {
    return d.status();
  }
  auto as = std::make_unique<AddressSpace>(new_id, lid);
  as->set_quota_internal(spec.quota);
  as->set_descrip_internal(spec.descrip);
  AddressSpace* raw = as.get();
  InsertObject(std::move(as));
  Status ls = LinkInto(d.value(), raw);
  if (ls != Status::kOk) {
    table_.EraseLocked(raw->id());
    return ls;
  }
  MarkDirty(raw->id());
  return raw->id();
}

Status Kernel::AsSetLocked(ObjectId self, ContainerEntry ce,
                           const std::vector<Mapping>& mappings) {
  Thread* t = GetThread(self);
  if (t == nullptr || t->halted()) {
    return Status::kHalted;
  }
  // Remapping changes what a fault at a cached VA resolves to; drop this
  // host thread's last-fault hint (hints are self-verifying, so other
  // slots' stale hints merely cost them one widened discovery round, and a
  // proxying ring worker leaves the submitter's slot alone for the same
  // reason).
  if (!ProxyExecution::Active()) {
    CurrentFaultHint().thread.store(kInvalidObject, std::memory_order_relaxed);
  }
  Result<Object*> o = ResolveEntry(*t, ce);
  if (!o.ok()) {
    return o.status();
  }
  if (o.value()->type() != ObjectType::kAddressSpace) {
    return Status::kWrongType;
  }
  AddressSpace* as = static_cast<AddressSpace*>(o.value());
  Status ms = CheckModify(*t, *as);
  if (ms != Status::kOk) {
    return ms;
  }
  for (const Mapping& m : mappings) {
    if (m.va % kPageSize != 0 || m.npages == 0) {
      return Status::kInvalidArg;
    }
  }
  as->mappings_mutable() = mappings;
  MarkDirty(as->id());
  return Status::kOk;
}

Result<std::vector<Mapping>> Kernel::AsGetLocked(ObjectId self, ContainerEntry ce) {
  Thread* t = GetThread(self);
  if (t == nullptr || t->halted()) {
    return Status::kHalted;
  }
  Result<Object*> o = ResolveEntry(*t, ce);
  if (!o.ok()) {
    return o.status();
  }
  if (o.value()->type() != ObjectType::kAddressSpace) {
    return Status::kWrongType;
  }
  if (!CanObserve(*t, *o.value())) {
    return Status::kLabelCheckFailed;
  }
  return static_cast<AddressSpace*>(o.value())->mappings();
}

void Kernel::SetPageFaultHandler(ObjectId thread,
                                 std::function<bool(uint64_t va, bool write)> h) {
  MutexLock lock(&pf_mu_);
  pf_handlers_[thread] = std::move(h);
}

Status Kernel::AsAccessOnce(ObjectId self, uint64_t va, void* buf, uint64_t len, bool write) {
  // The footprint (AS object, backing segment) is data-dependent: thread →
  // address space → mapping → segment. Discover it optimistically: lock the
  // shards known so far (round 0: just self), derive the next id, and if it
  // escapes the locked set, loop with the grown footprint — shard coverage
  // (TableLock::Covers), not id equality, is the safety criterion. A
  // typical cold access pays two to three short targeted rounds (shared for
  // reads, so concurrent readers stay fully parallel; exclusive for
  // writes). The per-thread last-fault hint (kernel.h, FaultHintSlot)
  // usually collapses the discovery to ONE round: round 0's lock set is
  // seeded — with no lock held, the slot is relaxed atomics — with the AS
  // and backing segment of this thread's previous successful access, which
  // repeated faults through the same mapping (the common case) already
  // cover. The hint is only a seed; every round re-derives the real
  // footprint under the lock, so a stale hint costs one widened retry,
  // never a wrong answer.
  // Should the footprint keep shifting under us (pathological AS churn),
  // the final round locks every shard, which covers any derivation — so
  // the loop always terminates with a definitive status.
  const TableLock::Mode mode =
      write ? TableLock::Mode::kExclusive : TableLock::Mode::kShared;
  ObjectId as_id = kInvalidObject;
  ContainerEntry seg{};
  FaultHintSlot& hint = CurrentFaultHint();
  // Ring workers execute under ProxyExecution (kernel.h): they must neither
  // seed their lock sets from nor overwrite a fault hint — the slot is the
  // HOST thread's (a worker's slot would cache a footprint for whatever
  // submitter it last proxied), and the submitter's own warm-hit guarantee
  // (one lock round) must survive workers faulting through unrelated
  // mappings on its behalf. The `thread == self` check below self-verifies
  // the slot against reuse either way.
  const bool use_hint = !ProxyExecution::Active();
  if (use_hint && hint.thread.load(std::memory_order_relaxed) == self) {
    as_id = hint.as.load(std::memory_order_relaxed);
    seg.container = hint.seg_ct.load(std::memory_order_relaxed);
    seg.object = hint.seg_obj.load(std::memory_order_relaxed);
  }
  for (int round = 0;; ++round) {
    const uint64_t lk_mask =
        round >= kFootprintDiscoveryRounds
            ? table_.AllShardsMask()
            : table_.ShardMaskOf(self) | table_.ShardMaskOf(as_id) |
                  table_.ShardMaskOf(seg.container) |
                  table_.ShardMaskOf(seg.object);
    TableLock lk(table_, mode, lk_mask, TableLock::ByMask{});
    Thread* t = GetThread(self);
    if (t == nullptr || t->halted()) {
      return Status::kHalted;
    }
    if (!lk.Covers(t->address_space().object)) {
      as_id = t->address_space().object;
      continue;
    }
    AddressSpace* as = nullptr;
    Object* aso = Get(t->address_space().object);
    if (aso != nullptr && aso->type() == ObjectType::kAddressSpace) {
      as = static_cast<AddressSpace*>(aso);
    }
    const Mapping* m = as != nullptr ? as->Lookup(va) : nullptr;
    if (m == nullptr || !m->Covers(va + (len == 0 ? 0 : len - 1))) {
      return Status::kNotFound;
    }
    if ((write && (m->flags & kMapWrite) == 0) || (!write && (m->flags & kMapRead) == 0)) {
      return Status::kNoPerm;
    }
    if (m->segment.object == kLocalSegmentId) {
      // Thread-local segments are always accessible by the current thread
      // (self's shard is already in the lock set, exclusive when writing).
      uint64_t off = va - m->va + m->start_page * kPageSize;
      if (!RangeOk(off, len, t->local_segment().size())) {
        return Status::kRange;
      }
      if (write) {
        CopyBytes(t->local_segment().data() + off, buf, len);
        MarkDirty(self);
      } else {
        CopyBytes(buf, t->local_segment().data() + off, len);
      }
      if (use_hint) {
        hint.as.store(t->address_space().object, std::memory_order_relaxed);
        hint.seg_ct.store(kInvalidObject, std::memory_order_relaxed);
        hint.seg_obj.store(kInvalidObject, std::memory_order_relaxed);
        hint.thread.store(self, std::memory_order_relaxed);
      }
      return Status::kOk;
    }
    if (!lk.Covers(m->segment.container) || !lk.Covers(m->segment.object)) {
      as_id = t->address_space().object;
      seg = m->segment;
      continue;
    }
    // Fault-time checks (§3.4): read D and O; for writes also L_T ⊑ L_O.
    Result<Object*> o = ResolveEntry(*t, m->segment);
    if (!o.ok()) {
      return o.status();
    }
    if (o.value()->type() != ObjectType::kSegment) {
      return Status::kWrongType;
    }
    Segment* s = static_cast<Segment*>(o.value());
    if (!CanObserve(*t, *s)) {
      return Status::kLabelCheckFailed;
    }
    if (write && (!registry_.Leq(t->label_id(), s->label_id()) || s->immutable())) {
      return s->immutable() ? Status::kImmutable : Status::kLabelCheckFailed;
    }
    uint64_t off = va - m->va + m->start_page * kPageSize;
    if (!RangeOk(off, len, s->bytes().size())) {
      return Status::kRange;
    }
    if (write) {
      CopyBytes(s->bytes().data() + off, buf, len);
      MarkDirty(s->id());
    } else {
      CopyBytes(buf, s->bytes().data() + off, len);
    }
    // Remember the discovered footprint so the next fault through this
    // mapping seeds a covering round 0 (one TableLock instead of two-three).
    if (use_hint) {
      hint.as.store(t->address_space().object, std::memory_order_relaxed);
      hint.seg_ct.store(m->segment.container, std::memory_order_relaxed);
      hint.seg_obj.store(m->segment.object, std::memory_order_relaxed);
      hint.thread.store(self, std::memory_order_relaxed);
    }
    return Status::kOk;
  }
}

Status Kernel::DoAsAccess(ObjectId self, uint64_t va, void* buf, uint64_t len, bool write) {
  for (int attempt = 0; attempt < 2; ++attempt) {
    Status st = AsAccessOnce(self, va, buf, len, write);
    if (st == Status::kOk || st == Status::kHalted) {
      return st;
    }
    // Call up to the user-mode page-fault handler; if it claims to have
    // repaired the fault (remapped something), retry once.
    std::function<bool(uint64_t, bool)> handler;
    {
      MutexLock lock(&pf_mu_);
      auto it = pf_handlers_.find(self);
      if (it != pf_handlers_.end()) {
        handler = it->second;
      }
    }
    if (!handler || attempt == 1 || !handler(va, write)) {
      return st;
    }
  }
  return Status::kInvalidArg;
}

// ---- futexes ----------------------------------------------------------------------

Status Kernel::ReadFutexWord(ObjectId self, ContainerEntry seg, uint64_t offset,
                             uint64_t* word, ObjectId* sid) {
  TableLock lk(table_, TableLock::Mode::kShared, {self, seg.container, seg.object});
  Thread* t = GetThread(self);
  if (t == nullptr || t->halted()) {
    return Status::kHalted;
  }
  Result<Object*> o = ResolveEntry(*t, seg);
  if (!o.ok()) {
    return o.status();
  }
  if (o.value()->type() != ObjectType::kSegment) {
    return Status::kWrongType;
  }
  Segment* s = static_cast<Segment*>(o.value());
  if (!CanObserve(*t, *s)) {
    return Status::kLabelCheckFailed;
  }
  if (!RangeOk(offset, 8, s->bytes().size())) {
    return Status::kRange;
  }
  memcpy(word, s->bytes().data() + offset, 8);
  *sid = s->id();
  return Status::kOk;
}

Status Kernel::DoFutexWait(ObjectId self, ContainerEntry seg, uint64_t offset,
                           uint64_t expected, uint32_t timeout_ms) {
  // Validation pass: resolve, observe-check, range-check, and the cheap
  // early-out when the word already differs.
  uint64_t current = 0;
  ObjectId sid = kInvalidObject;
  Status st = ReadFutexWord(self, seg, offset, &current, &sid);
  if (st != Status::kOk) {
    return st;
  }
  if (current != expected) {
    return Status::kAgain;
  }
  // Register as a waiter BEFORE re-reading the word. A writer that changes
  // the word and calls futex_wake between our validation pass and the sleep
  // bumps wake_seq/wake_budget under futex_mu_, which the wait loop below
  // observes — this ordering is what replaces the old big lock's atomicity.
  FutexKey key{sid, offset};
  FutexWaitQueue* q = nullptr;
  uint64_t seq = 0;
  {
    MutexLock fl(&futex_mu_);
    auto it = futexes_.find(key);
    if (it == futexes_.end()) {
      it = futexes_.emplace(key, std::make_unique<FutexWaitQueue>()).first;
    }
    q = it->second.get();
    seq = q->wake_seq;
    ++q->waiters;
  }
  // Re-read now that we are registered (closes the lost-wakeup window).
  // Same helper as the validation pass, so the two cannot drift; a changed
  // segment identity (destroyed and relinked under the same entry) also
  // aborts — our registration would be on the old segment's queue.
  ObjectId sid2 = kInvalidObject;
  Status recheck = ReadFutexWord(self, seg, offset, &current, &sid2);
  if (recheck == Status::kOk && (current != expected || sid2 != sid)) {
    recheck = Status::kAgain;
  }
  if (recheck != Status::kOk) {
    MutexLock fl(&futex_mu_);
    if (--q->waiters == 0) {
      futexes_.erase(key);  // GC: queues exist only while someone waits
    }
    return recheck;
  }
  auto deadline = trace::SteadyNow() + std::chrono::milliseconds(timeout_ms);
  Status result = Status::kOk;
  futex_mu_.Lock();
  for (;;) {
    // Re-check world state each wakeup: halted, alerted, consumed a wake
    // token, or timed out. Thread state lives behind shard locks, and
    // futex_mu_ never nests with those (lock hierarchy) — so drop the
    // futex lock for the peek; wakes that land meanwhile persist in
    // wake_seq/wake_budget and are seen on reacquisition.
    futex_mu_.Unlock();
    Status ts = Status::kOk;
    {
      TableLock lk(table_, TableLock::Mode::kShared, {self});
      Thread* t = GetThread(self);
      if (t == nullptr || t->halted()) {
        ts = Status::kHalted;
      } else if (!t->alerts().empty()) {
        ts = Status::kAgain;  // interrupted by alert (EINTR analogue)
      }
    }
    futex_mu_.Lock();
    if (ts != Status::kOk) {
      result = ts;
      break;
    }
    if (q->wake_seq != seq && q->wake_budget > 0) {
      --q->wake_budget;
      result = Status::kOk;
      break;
    }
    // Wait in bounded slices rather than one full-deadline block: alerts,
    // halts and thread destruction are only observable through the shard-
    // locked peek above (futex queues are keyed by segment, not by thread,
    // so thread-targeted events cannot notify this cv directly), and the
    // slice bound is what makes them interrupt a long timed wait promptly.
    const auto slice = std::chrono::milliseconds(50);
    if (timeout_ms != 0) {
      auto now = trace::SteadyNow();
      if (now >= deadline) {
        result = Status::kTimedOut;
        break;
      }
      q->cv.WaitFor(futex_mu_,
                    std::min<std::chrono::steady_clock::duration>(deadline - now, slice));
    } else {
      q->cv.WaitFor(futex_mu_, slice);
    }
  }
  if (--q->waiters == 0) {
    // GC the queue with the last waiter (still under futex_mu_, so a
    // concurrent register either already counted itself — keeping the
    // queue alive — or will recreate it fresh). Unconsumed wake budget
    // dies with it, which is fine: budget is only ever granted against
    // counted waiters, and futexes permit spurious outcomes either way.
    futexes_.erase(key);
  }
  futex_mu_.Unlock();
  return result;
}

Result<uint32_t> Kernel::DoFutexWake(ObjectId self, ContainerEntry seg, uint64_t offset,
                                     uint32_t max_count) {
  ObjectId sid = kInvalidObject;
  {
    TableLock lk(table_, TableLock::Mode::kShared, {self, seg.container, seg.object});
    Thread* t = GetThread(self);
    if (t == nullptr || t->halted()) {
      return Status::kHalted;
    }
    Result<Object*> o = ResolveEntry(*t, seg);
    if (!o.ok()) {
      return o.status();
    }
    if (o.value()->type() != ObjectType::kSegment) {
      return Status::kWrongType;
    }
    Segment* s = static_cast<Segment*>(o.value());
    // Waking waiters conveys information to them: require modify access, the
    // same as writing the futex word. (Label-only checks — no object state
    // is mutated, so shared shard locks suffice; the queue mutation below
    // happens under futex_mu_.)
    Status ms = CheckModify(*t, *s);
    if (ms != Status::kOk) {
      return ms;
    }
    sid = s->id();
  }
  MutexLock fl(&futex_mu_);
  FutexKey key{sid, offset};
  auto it = futexes_.find(key);
  if (it == futexes_.end()) {
    return 0u;
  }
  FutexWaitQueue* q = it->second.get();
  uint32_t woken = std::min(max_count, q->waiters);
  ++q->wake_seq;
  q->wake_budget += woken;
  q->cv.NotifyAll();
  return woken;
}

// ---- devices -----------------------------------------------------------------------

Result<std::array<uint8_t, 6>> Kernel::DoNetMacAddr(ObjectId self, ContainerEntry dev) {
  TableLock lk(table_, TableLock::Mode::kShared, {self, dev.container, dev.object});
  Thread* t = GetThread(self);
  if (t == nullptr || t->halted()) {
    return Status::kHalted;
  }
  Result<Object*> o = ResolveEntry(*t, dev);
  if (!o.ok()) {
    return o.status();
  }
  if (o.value()->type() != ObjectType::kDevice) {
    return Status::kWrongType;
  }
  Device* d = static_cast<Device*>(o.value());
  if (d->kind() != DeviceKind::kNet || d->net_port() == nullptr) {
    return Status::kWrongType;
  }
  if (!CanObserve(*t, *d)) {
    return Status::kLabelCheckFailed;
  }
  return d->net_port()->MacAddress();
}

Status Kernel::DoNetTransmit(ObjectId self, ContainerEntry dev, ContainerEntry seg,
                             uint64_t off, uint64_t len) {
  NetPort* port = nullptr;
  std::vector<uint8_t> frame;
  {
    TableLock lk(table_, TableLock::Mode::kShared,
                 {self, dev.container, dev.object, seg.container, seg.object});
    Thread* t = GetThread(self);
    if (t == nullptr || t->halted()) {
      return Status::kHalted;
    }
    Result<Object*> od = ResolveEntry(*t, dev);
    if (!od.ok()) {
      return od.status();
    }
    if (od.value()->type() != ObjectType::kDevice) {
      return Status::kWrongType;
    }
    Device* d = static_cast<Device*>(od.value());
    if (d->kind() != DeviceKind::kNet || d->net_port() == nullptr) {
      return Status::kWrongType;
    }
    // Transmitting writes the device: the boot-time label {nr3, nw0, i2, 1}
    // means a thread tainted in any unowned category above the device's
    // level cannot transmit — this single check is what "tainted data cannot
    // leave the machine" reduces to. (Label checks only; the frame bytes go
    // to the NIC ring, not into kernel objects, so shared locks suffice.)
    Status ms = CheckModify(*t, *d);
    if (ms != Status::kOk) {
      return ms;
    }
    Result<Object*> os = ResolveEntry(*t, seg);
    if (!os.ok()) {
      return os.status();
    }
    if (os.value()->type() != ObjectType::kSegment) {
      return Status::kWrongType;
    }
    Segment* s = static_cast<Segment*>(os.value());
    if (!CanObserve(*t, *s)) {
      return Status::kLabelCheckFailed;
    }
    if (!RangeOk(off, len, s->bytes().size())) {
      return Status::kRange;
    }
    frame.assign(s->bytes().begin() + static_cast<ptrdiff_t>(off),
                 s->bytes().begin() + static_cast<ptrdiff_t>(off + len));
    port = d->net_port();
  }
  return port->Transmit(frame) ? Status::kOk : Status::kAgain;
}

Result<uint64_t> Kernel::DoNetReceive(ObjectId self, ContainerEntry dev, ContainerEntry seg,
                                      uint64_t off, uint64_t maxlen) {
  NetPort* port = nullptr;
  {
    TableLock lk(table_, TableLock::Mode::kShared,
                 {self, dev.container, dev.object, seg.container, seg.object});
    Thread* t = GetThread(self);
    if (t == nullptr || t->halted()) {
      return Status::kHalted;
    }
    Result<Object*> od = ResolveEntry(*t, dev);
    if (!od.ok()) {
      return od.status();
    }
    if (od.value()->type() != ObjectType::kDevice) {
      return Status::kWrongType;
    }
    Device* d = static_cast<Device*>(od.value());
    if (d->kind() != DeviceKind::kNet || d->net_port() == nullptr) {
      return Status::kWrongType;
    }
    // Receiving observes the device; the device's label (i2 component)
    // forces the receive buffer — and hence the reader — to carry the
    // network taint.
    if (!CanObserve(*t, *d)) {
      return Status::kLabelCheckFailed;
    }
    Result<Object*> os = ResolveEntry(*t, seg);
    if (!os.ok()) {
      return os.status();
    }
    if (os.value()->type() != ObjectType::kSegment) {
      return Status::kWrongType;
    }
    Segment* s = static_cast<Segment*>(os.value());
    Status ms = CheckModify(*t, *s);
    if (ms != Status::kOk) {
      return ms;
    }
    // The receive buffer must be at least as tainted as the device, or data
    // arriving from the wire would shed its taint. L_D ⊑ L_S^J.
    if (!registry_.Leq(d->label_id(), registry_.HiOf(s->label_id()))) {
      return Status::kLabelCheckFailed;
    }
    port = d->net_port();
  }
  std::vector<uint8_t> frame;
  if (!port->Receive(&frame)) {
    return Status::kAgain;
  }
  uint64_t n = std::min<uint64_t>(frame.size(), maxlen);
  {
    // Copy-in pass mutates the segment: exclusive locks, and re-resolve —
    // the world may have changed while we polled the NIC unlocked.
    TableLock lk(table_, TableLock::Mode::kExclusive, {self, seg.container, seg.object});
    Thread* t = GetThread(self);
    if (t == nullptr || t->halted()) {
      return Status::kHalted;
    }
    Result<Object*> os = ResolveEntry(*t, seg);
    if (!os.ok()) {
      return os.status();
    }
    if (os.value()->type() != ObjectType::kSegment) {
      return Status::kWrongType;
    }
    Segment* s = static_cast<Segment*>(os.value());
    // Re-run the modify rule, not just resolution: the segment may have
    // been marked immutable while we waited on the NIC with no lock held.
    Status ms = CheckModify(*t, *s);
    if (ms != Status::kOk) {
      return ms;
    }
    if (!RangeOk(off, n, s->bytes().size())) {
      return Status::kRange;
    }
    CopyBytes(s->bytes().data() + off, frame.data(), n);
    MarkDirty(s->id());
  }
  return n;
}

Status Kernel::DoNetWait(ObjectId self, ContainerEntry dev, uint32_t timeout_ms) {
  NetPort* port = nullptr;
  {
    TableLock lk(table_, TableLock::Mode::kShared, {self, dev.container, dev.object});
    Thread* t = GetThread(self);
    if (t == nullptr || t->halted()) {
      return Status::kHalted;
    }
    Result<Object*> od = ResolveEntry(*t, dev);
    if (!od.ok()) {
      return od.status();
    }
    if (od.value()->type() != ObjectType::kDevice) {
      return Status::kWrongType;
    }
    Device* d = static_cast<Device*>(od.value());
    if (d->kind() != DeviceKind::kNet || d->net_port() == nullptr) {
      return Status::kWrongType;
    }
    if (!CanObserve(*t, *d)) {
      return Status::kLabelCheckFailed;
    }
    port = d->net_port();
  }
  return port->WaitForFrame(timeout_ms) ? Status::kOk : Status::kTimedOut;
}

Status Kernel::ConsoleWriteLocked(ObjectId self, ContainerEntry dev, const std::string& text) {
  Thread* t = GetThread(self);
  if (t == nullptr || t->halted()) {
    return Status::kHalted;
  }
  Result<Object*> o = ResolveEntry(*t, dev);
  if (!o.ok()) {
    return o.status();
  }
  if (o.value()->type() != ObjectType::kDevice) {
    return Status::kWrongType;
  }
  Device* d = static_cast<Device*>(o.value());
  if (d->kind() != DeviceKind::kConsole) {
    return Status::kWrongType;
  }
  Status ms = CheckModify(*t, *d);
  if (ms != Status::kOk) {
    return ms;
  }
  d->console_buffer() += text;
  return Status::kOk;
}

}  // namespace histar
