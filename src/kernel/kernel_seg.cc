// Segment, address-space, futex and device syscalls (paper §3.4, §4.1, §5.7).
#include <chrono>
#include <cstring>

#include "src/kernel/kernel.h"

namespace histar {

// ---- segments ----------------------------------------------------------------

Result<ObjectId> Kernel::sys_segment_create(ObjectId self, const CreateSpec& spec,
                                            uint64_t len) {
  std::lock_guard<std::mutex> lock(mu_);
  CountSyscall(self);
  Thread* t = GetThread(self);
  if (t == nullptr || t->halted()) {
    return Status::kHalted;
  }
  LabelId lid = kInvalidLabelId;
  Result<Container*> d = CheckCreate(*t, spec.container, spec.label, ObjectType::kSegment,
                                     spec.quota, &lid);
  if (!d.ok()) {
    return d.status();
  }
  if (kObjectOverheadBytes + len > spec.quota) {
    return Status::kQuotaExceeded;
  }
  Result<ObjectId> id = AllocObjectId();
  auto s = std::make_unique<Segment>(id.value(), lid);
  s->bytes().resize(len, 0);
  s->set_quota_internal(spec.quota);
  s->set_descrip_internal(spec.descrip);
  Segment* raw = s.get();
  InsertObject(std::move(s));
  Status ls = LinkInto(d.value(), raw);
  if (ls != Status::kOk) {
    objects_.erase(raw->id());
    return ls;
  }
  MarkDirty(raw->id());
  return raw->id();
}

Result<ObjectId> Kernel::sys_segment_copy(ObjectId self, const CreateSpec& spec,
                                          ContainerEntry src) {
  std::lock_guard<std::mutex> lock(mu_);
  CountSyscall(self);
  Thread* t = GetThread(self);
  if (t == nullptr || t->halted()) {
    return Status::kHalted;
  }
  Result<Object*> o = ResolveEntry(*t, src);
  if (!o.ok()) {
    return o.status();
  }
  if (o.value()->type() != ObjectType::kSegment) {
    return Status::kWrongType;
  }
  Segment* s = static_cast<Segment*>(o.value());
  // Copying reads the source...
  if (!CanObserve(*t, *s)) {
    return Status::kLabelCheckFailed;
  }
  // ...and creates a new object at the requested label; the usual creation
  // rule keeps the copy at least as tainted as the thread that read it.
  LabelId lid = kInvalidLabelId;
  Result<Container*> d = CheckCreate(*t, spec.container, spec.label, ObjectType::kSegment,
                                     spec.quota, &lid);
  if (!d.ok()) {
    return d.status();
  }
  if (kObjectOverheadBytes + s->bytes().size() > spec.quota) {
    return Status::kQuotaExceeded;
  }
  Result<ObjectId> id = AllocObjectId();
  auto ns = std::make_unique<Segment>(id.value(), lid);
  ns->bytes() = s->bytes();
  ns->set_quota_internal(spec.quota);
  ns->set_descrip_internal(spec.descrip);
  Segment* raw = ns.get();
  InsertObject(std::move(ns));
  Status ls = LinkInto(d.value(), raw);
  if (ls != Status::kOk) {
    objects_.erase(raw->id());
    return ls;
  }
  MarkDirty(raw->id());
  return raw->id();
}

Status Kernel::sys_segment_resize(ObjectId self, ContainerEntry ce, uint64_t len) {
  std::lock_guard<std::mutex> lock(mu_);
  CountSyscall(self);
  Thread* t = GetThread(self);
  if (t == nullptr || t->halted()) {
    return Status::kHalted;
  }
  Result<Object*> o = ResolveEntry(*t, ce);
  if (!o.ok()) {
    return o.status();
  }
  if (o.value()->type() != ObjectType::kSegment) {
    return Status::kWrongType;
  }
  Segment* s = static_cast<Segment*>(o.value());
  Status ms = CheckModify(*t, *s);
  if (ms != Status::kOk) {
    return ms;
  }
  if (kObjectOverheadBytes + len > s->quota()) {
    return Status::kQuotaExceeded;
  }
  s->bytes().resize(len, 0);
  MarkDirty(s->id());
  return Status::kOk;
}

Result<uint64_t> Kernel::sys_segment_get_len(ObjectId self, ContainerEntry ce) {
  std::lock_guard<std::mutex> lock(mu_);
  CountSyscall(self);
  Thread* t = GetThread(self);
  if (t == nullptr || t->halted()) {
    return Status::kHalted;
  }
  Result<Object*> o = ResolveEntry(*t, ce);
  if (!o.ok()) {
    return o.status();
  }
  if (o.value()->type() != ObjectType::kSegment) {
    return Status::kWrongType;
  }
  if (!CanObserve(*t, *o.value())) {
    return Status::kLabelCheckFailed;
  }
  return static_cast<Segment*>(o.value())->bytes().size();
}

Status Kernel::sys_segment_read(ObjectId self, ContainerEntry ce, void* buf, uint64_t off,
                                uint64_t len) {
  std::lock_guard<std::mutex> lock(mu_);
  CountSyscall(self);
  Thread* t = GetThread(self);
  if (t == nullptr || t->halted()) {
    return Status::kHalted;
  }
  Result<Object*> o = ResolveEntry(*t, ce);
  if (!o.ok()) {
    return o.status();
  }
  if (o.value()->type() != ObjectType::kSegment) {
    return Status::kWrongType;
  }
  Segment* s = static_cast<Segment*>(o.value());
  if (!CanObserve(*t, *s)) {
    return Status::kLabelCheckFailed;
  }
  if (off + len > s->bytes().size()) {
    return Status::kRange;
  }
  memcpy(buf, s->bytes().data() + off, len);
  return Status::kOk;
}

Status Kernel::sys_segment_write(ObjectId self, ContainerEntry ce, const void* buf,
                                 uint64_t off, uint64_t len) {
  std::lock_guard<std::mutex> lock(mu_);
  CountSyscall(self);
  Thread* t = GetThread(self);
  if (t == nullptr || t->halted()) {
    return Status::kHalted;
  }
  Result<Object*> o = ResolveEntry(*t, ce);
  if (!o.ok()) {
    return o.status();
  }
  if (o.value()->type() != ObjectType::kSegment) {
    return Status::kWrongType;
  }
  Segment* s = static_cast<Segment*>(o.value());
  Status ms = CheckModify(*t, *s);
  if (ms != Status::kOk) {
    return ms;
  }
  if (off + len > s->bytes().size()) {
    return Status::kRange;
  }
  memcpy(s->bytes().data() + off, buf, len);
  MarkDirty(s->id());
  return Status::kOk;
}

// ---- address spaces -------------------------------------------------------------

Result<ObjectId> Kernel::sys_as_create(ObjectId self, const CreateSpec& spec) {
  std::lock_guard<std::mutex> lock(mu_);
  CountSyscall(self);
  Thread* t = GetThread(self);
  if (t == nullptr || t->halted()) {
    return Status::kHalted;
  }
  LabelId lid = kInvalidLabelId;
  Result<Container*> d = CheckCreate(*t, spec.container, spec.label, ObjectType::kAddressSpace,
                                     spec.quota, &lid);
  if (!d.ok()) {
    return d.status();
  }
  Result<ObjectId> id = AllocObjectId();
  auto as = std::make_unique<AddressSpace>(id.value(), lid);
  as->set_quota_internal(spec.quota);
  as->set_descrip_internal(spec.descrip);
  AddressSpace* raw = as.get();
  InsertObject(std::move(as));
  Status ls = LinkInto(d.value(), raw);
  if (ls != Status::kOk) {
    objects_.erase(raw->id());
    return ls;
  }
  MarkDirty(raw->id());
  return raw->id();
}

Status Kernel::sys_as_set(ObjectId self, ContainerEntry ce, const std::vector<Mapping>& mappings) {
  std::lock_guard<std::mutex> lock(mu_);
  CountSyscall(self);
  Thread* t = GetThread(self);
  if (t == nullptr || t->halted()) {
    return Status::kHalted;
  }
  Result<Object*> o = ResolveEntry(*t, ce);
  if (!o.ok()) {
    return o.status();
  }
  if (o.value()->type() != ObjectType::kAddressSpace) {
    return Status::kWrongType;
  }
  AddressSpace* as = static_cast<AddressSpace*>(o.value());
  Status ms = CheckModify(*t, *as);
  if (ms != Status::kOk) {
    return ms;
  }
  for (const Mapping& m : mappings) {
    if (m.va % kPageSize != 0 || m.npages == 0) {
      return Status::kInvalidArg;
    }
  }
  as->mappings_mutable() = mappings;
  MarkDirty(as->id());
  return Status::kOk;
}

Result<std::vector<Mapping>> Kernel::sys_as_get(ObjectId self, ContainerEntry ce) {
  std::lock_guard<std::mutex> lock(mu_);
  CountSyscall(self);
  Thread* t = GetThread(self);
  if (t == nullptr || t->halted()) {
    return Status::kHalted;
  }
  Result<Object*> o = ResolveEntry(*t, ce);
  if (!o.ok()) {
    return o.status();
  }
  if (o.value()->type() != ObjectType::kAddressSpace) {
    return Status::kWrongType;
  }
  if (!CanObserve(*t, *o.value())) {
    return Status::kLabelCheckFailed;
  }
  return static_cast<AddressSpace*>(o.value())->mappings();
}

void Kernel::SetPageFaultHandler(ObjectId thread,
                                 std::function<bool(uint64_t va, bool write)> h) {
  std::lock_guard<std::mutex> lock(mu_);
  pf_handlers_[thread] = std::move(h);
}

Status Kernel::sys_as_access(ObjectId self, uint64_t va, void* buf, uint64_t len, bool write) {
  for (int attempt = 0; attempt < 2; ++attempt) {
    Status st = Status::kOk;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (attempt == 0) {
        CountSyscall(self);
      }
      Thread* t = GetThread(self);
      if (t == nullptr || t->halted()) {
        return Status::kHalted;
      }
      AddressSpace* as = nullptr;
      Object* aso = Get(t->address_space().object);
      if (aso != nullptr && aso->type() == ObjectType::kAddressSpace) {
        as = static_cast<AddressSpace*>(aso);
      }
      const Mapping* m = as != nullptr ? as->Lookup(va) : nullptr;
      if (m == nullptr || !m->Covers(va + (len == 0 ? 0 : len - 1))) {
        st = Status::kNotFound;
      } else if ((write && (m->flags & kMapWrite) == 0) ||
                 (!write && (m->flags & kMapRead) == 0)) {
        st = Status::kNoPerm;
      } else if (m->segment.object == kLocalSegmentId) {
        // Thread-local segments are always accessible by the current thread.
        uint64_t off = va - m->va + m->start_page * kPageSize;
        if (off + len > t->local_segment().size()) {
          st = Status::kRange;
        } else if (write) {
          memcpy(t->local_segment().data() + off, buf, len);
        } else {
          memcpy(buf, t->local_segment().data() + off, len);
        }
      } else {
        // Fault-time checks (§3.4): read D and O; for writes also L_T ⊑ L_O.
        Result<Object*> o = ResolveEntry(*t, m->segment);
        if (!o.ok()) {
          st = o.status();
        } else if (o.value()->type() != ObjectType::kSegment) {
          st = Status::kWrongType;
        } else {
          Segment* s = static_cast<Segment*>(o.value());
          if (!CanObserve(*t, *s)) {
            st = Status::kLabelCheckFailed;
          } else if (write &&
                     (!registry_.Leq(t->label_id(), s->label_id()) || s->immutable())) {
            st = s->immutable() ? Status::kImmutable : Status::kLabelCheckFailed;
          } else {
            uint64_t off = va - m->va + m->start_page * kPageSize;
            if (off + len > s->bytes().size()) {
              st = Status::kRange;
            } else if (write) {
              memcpy(s->bytes().data() + off, buf, len);
              MarkDirty(s->id());
            } else {
              memcpy(buf, s->bytes().data() + off, len);
            }
          }
        }
      }
    }
    if (st == Status::kOk) {
      return st;
    }
    // Call up to the user-mode page-fault handler; if it claims to have
    // repaired the fault (remapped something), retry once.
    std::function<bool(uint64_t, bool)> handler;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = pf_handlers_.find(self);
      if (it != pf_handlers_.end()) {
        handler = it->second;
      }
    }
    if (!handler || attempt == 1 || !handler(va, write)) {
      return st;
    }
  }
  return Status::kInvalidArg;
}

// ---- futexes ----------------------------------------------------------------------

Status Kernel::sys_futex_wait(ObjectId self, ContainerEntry seg, uint64_t offset,
                              uint64_t expected, uint32_t timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  CountSyscall(self);
  Thread* t = GetThread(self);
  if (t == nullptr || t->halted()) {
    return Status::kHalted;
  }
  Result<Object*> o = ResolveEntry(*t, seg);
  if (!o.ok()) {
    return o.status();
  }
  if (o.value()->type() != ObjectType::kSegment) {
    return Status::kWrongType;
  }
  Segment* s = static_cast<Segment*>(o.value());
  if (!CanObserve(*t, *s)) {
    return Status::kLabelCheckFailed;
  }
  if (offset + 8 > s->bytes().size()) {
    return Status::kRange;
  }
  uint64_t current;
  memcpy(&current, s->bytes().data() + offset, 8);
  if (current != expected) {
    return Status::kAgain;
  }
  FutexKey key{s->id(), offset};
  auto it = futexes_.find(key);
  if (it == futexes_.end()) {
    it = futexes_.emplace(key, std::make_unique<FutexWaitQueue>()).first;
  }
  FutexWaitQueue* q = it->second.get();
  uint64_t seq = q->wake_seq;
  ++q->waiters;
  auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  Status result = Status::kOk;
  for (;;) {
    // Re-check world state each wakeup: consumed a wake token, halted,
    // alerted, or timed out.
    Thread* self_t = GetThread(self);
    if (self_t == nullptr || self_t->halted()) {
      result = Status::kHalted;
      break;
    }
    if (!self_t->alerts().empty()) {
      result = Status::kAgain;  // interrupted by alert (EINTR analogue)
      break;
    }
    if (q->wake_seq != seq && q->wake_budget > 0) {
      --q->wake_budget;
      result = Status::kOk;
      break;
    }
    if (timeout_ms != 0) {
      if (q->cv.wait_until(lock, deadline) == std::cv_status::timeout) {
        result = Status::kTimedOut;
        break;
      }
    } else {
      // Untimed waits still poll so that thread destruction is noticed even
      // if no explicit wake ever arrives.
      q->cv.wait_for(lock, std::chrono::milliseconds(50));
    }
  }
  --q->waiters;
  return result;
}

Result<uint32_t> Kernel::sys_futex_wake(ObjectId self, ContainerEntry seg, uint64_t offset,
                                        uint32_t max_count) {
  std::lock_guard<std::mutex> lock(mu_);
  CountSyscall(self);
  Thread* t = GetThread(self);
  if (t == nullptr || t->halted()) {
    return Status::kHalted;
  }
  Result<Object*> o = ResolveEntry(*t, seg);
  if (!o.ok()) {
    return o.status();
  }
  if (o.value()->type() != ObjectType::kSegment) {
    return Status::kWrongType;
  }
  Segment* s = static_cast<Segment*>(o.value());
  // Waking waiters conveys information to them: require modify access, the
  // same as writing the futex word.
  Status ms = CheckModify(*t, *s);
  if (ms != Status::kOk) {
    return ms;
  }
  FutexKey key{s->id(), offset};
  auto it = futexes_.find(key);
  if (it == futexes_.end()) {
    return 0u;
  }
  FutexWaitQueue* q = it->second.get();
  uint32_t woken = std::min(max_count, q->waiters);
  ++q->wake_seq;
  q->wake_budget += woken;
  q->cv.notify_all();
  return woken;
}

// ---- devices -----------------------------------------------------------------------

Result<std::array<uint8_t, 6>> Kernel::sys_net_macaddr(ObjectId self, ContainerEntry dev) {
  std::lock_guard<std::mutex> lock(mu_);
  CountSyscall(self);
  Thread* t = GetThread(self);
  if (t == nullptr || t->halted()) {
    return Status::kHalted;
  }
  Result<Object*> o = ResolveEntry(*t, dev);
  if (!o.ok()) {
    return o.status();
  }
  if (o.value()->type() != ObjectType::kDevice) {
    return Status::kWrongType;
  }
  Device* d = static_cast<Device*>(o.value());
  if (d->kind() != DeviceKind::kNet || d->net_port() == nullptr) {
    return Status::kWrongType;
  }
  if (!CanObserve(*t, *d)) {
    return Status::kLabelCheckFailed;
  }
  return d->net_port()->MacAddress();
}

Status Kernel::sys_net_transmit(ObjectId self, ContainerEntry dev, ContainerEntry seg,
                                uint64_t off, uint64_t len) {
  NetPort* port = nullptr;
  std::vector<uint8_t> frame;
  {
    std::lock_guard<std::mutex> lock(mu_);
    CountSyscall(self);
    Thread* t = GetThread(self);
    if (t == nullptr || t->halted()) {
      return Status::kHalted;
    }
    Result<Object*> od = ResolveEntry(*t, dev);
    if (!od.ok()) {
      return od.status();
    }
    if (od.value()->type() != ObjectType::kDevice) {
      return Status::kWrongType;
    }
    Device* d = static_cast<Device*>(od.value());
    if (d->kind() != DeviceKind::kNet || d->net_port() == nullptr) {
      return Status::kWrongType;
    }
    // Transmitting writes the device: the boot-time label {nr3, nw0, i2, 1}
    // means a thread tainted in any unowned category above the device's
    // level cannot transmit — this single check is what "tainted data cannot
    // leave the machine" reduces to.
    Status ms = CheckModify(*t, *d);
    if (ms != Status::kOk) {
      return ms;
    }
    Result<Object*> os = ResolveEntry(*t, seg);
    if (!os.ok()) {
      return os.status();
    }
    if (os.value()->type() != ObjectType::kSegment) {
      return Status::kWrongType;
    }
    Segment* s = static_cast<Segment*>(os.value());
    if (!CanObserve(*t, *s)) {
      return Status::kLabelCheckFailed;
    }
    if (off + len > s->bytes().size()) {
      return Status::kRange;
    }
    frame.assign(s->bytes().begin() + static_cast<ptrdiff_t>(off),
                 s->bytes().begin() + static_cast<ptrdiff_t>(off + len));
    port = d->net_port();
  }
  return port->Transmit(frame) ? Status::kOk : Status::kAgain;
}

Result<uint64_t> Kernel::sys_net_receive(ObjectId self, ContainerEntry dev, ContainerEntry seg,
                                         uint64_t off, uint64_t maxlen) {
  NetPort* port = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    CountSyscall(self);
    Thread* t = GetThread(self);
    if (t == nullptr || t->halted()) {
      return Status::kHalted;
    }
    Result<Object*> od = ResolveEntry(*t, dev);
    if (!od.ok()) {
      return od.status();
    }
    if (od.value()->type() != ObjectType::kDevice) {
      return Status::kWrongType;
    }
    Device* d = static_cast<Device*>(od.value());
    if (d->kind() != DeviceKind::kNet || d->net_port() == nullptr) {
      return Status::kWrongType;
    }
    // Receiving observes the device; the device's label (i2 component)
    // forces the receive buffer — and hence the reader — to carry the
    // network taint.
    if (!CanObserve(*t, *d)) {
      return Status::kLabelCheckFailed;
    }
    Result<Object*> os = ResolveEntry(*t, seg);
    if (!os.ok()) {
      return os.status();
    }
    if (os.value()->type() != ObjectType::kSegment) {
      return Status::kWrongType;
    }
    Segment* s = static_cast<Segment*>(os.value());
    Status ms = CheckModify(*t, *s);
    if (ms != Status::kOk) {
      return ms;
    }
    // The receive buffer must be at least as tainted as the device, or data
    // arriving from the wire would shed its taint. L_D ⊑ L_S^J.
    if (!registry_.Leq(d->label_id(), registry_.HiOf(s->label_id()))) {
      return Status::kLabelCheckFailed;
    }
    port = d->net_port();
  }
  std::vector<uint8_t> frame;
  if (!port->Receive(&frame)) {
    return Status::kAgain;
  }
  uint64_t n = std::min<uint64_t>(frame.size(), maxlen);
  {
    std::lock_guard<std::mutex> lock(mu_);
    Thread* t = GetThread(self);
    if (t == nullptr || t->halted()) {
      return Status::kHalted;
    }
    Result<Object*> os = ResolveEntry(*t, seg);
    if (!os.ok()) {
      return os.status();
    }
    Segment* s = static_cast<Segment*>(os.value());
    if (off + n > s->bytes().size()) {
      return Status::kRange;
    }
    memcpy(s->bytes().data() + off, frame.data(), n);
    MarkDirty(s->id());
  }
  return n;
}

Status Kernel::sys_net_wait(ObjectId self, ContainerEntry dev, uint32_t timeout_ms) {
  NetPort* port = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    CountSyscall(self);
    Thread* t = GetThread(self);
    if (t == nullptr || t->halted()) {
      return Status::kHalted;
    }
    Result<Object*> od = ResolveEntry(*t, dev);
    if (!od.ok()) {
      return od.status();
    }
    if (od.value()->type() != ObjectType::kDevice) {
      return Status::kWrongType;
    }
    Device* d = static_cast<Device*>(od.value());
    if (d->kind() != DeviceKind::kNet || d->net_port() == nullptr) {
      return Status::kWrongType;
    }
    if (!CanObserve(*t, *d)) {
      return Status::kLabelCheckFailed;
    }
    port = d->net_port();
  }
  return port->WaitForFrame(timeout_ms) ? Status::kOk : Status::kTimedOut;
}

Status Kernel::sys_console_write(ObjectId self, ContainerEntry dev, const std::string& text) {
  std::lock_guard<std::mutex> lock(mu_);
  CountSyscall(self);
  Thread* t = GetThread(self);
  if (t == nullptr || t->halted()) {
    return Status::kHalted;
  }
  Result<Object*> o = ResolveEntry(*t, dev);
  if (!o.ok()) {
    return o.status();
  }
  if (o.value()->type() != ObjectType::kDevice) {
    return Status::kWrongType;
  }
  Device* d = static_cast<Device*>(o.value());
  if (d->kind() != DeviceKind::kConsole) {
    return Status::kWrongType;
  }
  Status ms = CheckModify(*t, *d);
  if (ms != Status::kOk) {
    return ms;
  }
  d->console_buffer() += text;
  return Status::kOk;
}

}  // namespace histar
