// The sharded kernel object table (the PR-2 split of the old Kernel::mu_).
//
// The table is divided into a power-of-two number of shards keyed by a mixed
// hash of the ObjectId. Each shard pairs a reader/writer mutex with the
// unordered_map holding that shard's objects, so read-mostly syscalls
// (segment reads, container lookups, label fetches) take shard-local shared
// locks and scale across cores, while mutating syscalls take only their
// shards' exclusive locks. The full locking discipline — which syscalls lock
// which shards, in which mode, and how the leaf mutexes nest — is documented
// in ARCHITECTURE.md ("Concurrency model").
//
// Locking rules enforced here:
//   * TableLock is the only way shard mutexes are acquired. It locks the
//     shards covering a given id set in ascending shard-index order, all in
//     one mode, and a syscall acquires exactly one TableLock — never a
//     second one while the first is held. Ascending order + single
//     acquisition is what makes cross-shard operations (container unref,
//     checkpoint snapshot, quota moves) deadlock-free by construction.
//   * The *Locked accessors perform no synchronization themselves; the
//     caller must hold the covering shard lock (shared for reads, exclusive
//     for any mutation, including insert/erase).
//
// Static enforcement (see ARCHITECTURE.md "Statically enforced invariants"):
// the set of shards a TableLock holds is data-dependent, which Clang's
// thread-safety analysis cannot model directly. The table therefore carries
// a fictional whole-table capability, `cap()`: TableLock is a
// SCOPED_CAPABILITY acquiring it, every *Locked accessor REQUIRES it, and
// the per-shard maps are GUARDED_BY their real shard mutex with the
// accessors asserting the shard lock they were promised. The fiction
// deliberately overclaims in one direction — a shared-mode TableLock
// acquires the fictional capability exclusively, because the analysis
// cannot express a runtime-chosen mode — so shared-vs-exclusive discipline
// remains the province of TSan and the runtime; what the analysis proves is
// that no *Locked body is reachable without a live TableLock, and that no
// code path touches a shard map around the TableLock protocol.
//
// PR 6 adds a lock-free read path beside the locked one: each shard also
// carries a published index — an open-addressing array of
// {atomic id, atomic Object*} slots. Insert/erase (always under the
// exclusive shard lock) publish/tombstone entries with release stores and
// retire replaced objects and outgrown index arrays through the
// EpochDomain; GetPublished probes the index with acquire loads and NO
// shard mutex. Callers of GetPublished must hold an EpochGuard, which is
// what keeps a just-erased object alive until the probe's pointer dies.
// TableLock semantics for mutation, destroy, and checkpoint are unchanged.
#ifndef SRC_KERNEL_OBJECT_TABLE_H_
#define SRC_KERNEL_OBJECT_TABLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/core/epoch.h"
#include "src/core/sync.h"
#include "src/core/thread_annotations.h"
#include "src/kernel/object.h"
#include "src/kernel/types.h"

namespace histar {

// Fictional capability standing for "the covering TableLock shard set".
// Acquire/Release are no-ops: the real mutexes are the per-shard
// SharedMutexes, taken by TableLock in ascending order. This object exists
// so the static analysis has a single capability to thread through
// TableLock scopes and *Locked REQUIRES clauses.
class CAPABILITY("table_lock") TableCap {
 public:
  void Acquire() const ACQUIRE() {}
  void Release() const RELEASE() {}
  // Re-establishes the capability inside lambda bodies: the analysis does
  // not propagate lock sets into closures, so dispatch lambdas running
  // under a caller's TableLock assert it on entry (no runtime effect).
  void AssertHeld() const ASSERT_CAPABILITY(this) {}
};

class ObjectTable {
 public:
  // Power of two. 16 shards keeps per-shard contention negligible at the
  // thread counts the simulator runs (same sizing argument as the
  // LabelRegistry's intern shards) while costing ~nothing single-threaded.
  static constexpr size_t kDefaultShardCount = 16;
  static constexpr size_t kMaxShardCount = 64;

  explicit ObjectTable(size_t shard_count = kDefaultShardCount)
      : shard_count_(NormalizeShardCount(shard_count)) {
    shards_.reserve(shard_count_);
    for (size_t i = 0; i < shard_count_; ++i) {
      shards_.push_back(std::make_unique<Shard>());
    }
  }

  ObjectTable(const ObjectTable&) = delete;
  ObjectTable& operator=(const ObjectTable&) = delete;

  size_t shard_count() const { return shard_count_; }

  // The fictional whole-table capability TableLock acquires; *Locked
  // accessors and kernel helpers name it in REQUIRES clauses.
  const TableCap& cap() const RETURN_CAPABILITY(cap_) { return cap_; }

  // Bit mask with the shard covering `id` set (for batch footprint unions).
  uint64_t ShardMaskOf(ObjectId id) const { return uint64_t{1} << ShardOf(id); }

  // Bit mask covering every shard (the TableLock all-shards footprint).
  uint64_t AllShardsMask() const {
    return shard_count_ >= 64 ? ~uint64_t{0}
                              : (uint64_t{1} << shard_count_) - 1;
  }

  // ---- lock accounting (tests / bench only) --------------------------------
  //
  // When enabled, every TableLock acquisition (any mode, any shard set)
  // bumps a counter — the instrument behind the "one lock round-trip per
  // batch" acceptance test. Off by default so the syscall fast path touches
  // no shared atomic; the flag itself is read relaxed.
  void set_lock_accounting(bool on) const {
    lock_accounting_.store(on, std::memory_order_relaxed);
  }
  uint64_t lock_acquisitions() const {
    return lock_acquisitions_.load(std::memory_order_relaxed);
  }

  // Shard placement is a pure function of (id, shard_count) so tests can
  // construct ids that deliberately land in different shards.
  static size_t ShardIndexFor(ObjectId id, size_t shard_count) {
    // Splittable 64-bit mix: sequentially allocated ids spread evenly.
    uint64_t h = id * 0x9e3779b97f4a7c15ULL;
    h ^= h >> 32;
    return static_cast<size_t>(h & (shard_count - 1));
  }
  size_t ShardOf(ObjectId id) const { return ShardIndexFor(id, shard_count_); }

  // ---- unsynchronized accessors (caller holds the covering shard lock) ----

  Object* GetLocked(ObjectId id) const REQUIRES_SHARED(cap_) {
    const Shard& sh = *shards_[ShardOf(id)];
    sh.mu.AssertReaderHeld();  // covered by the caller's TableLock
    auto it = sh.objects.find(id);
    return it == sh.objects.end() ? nullptr : it->second.get();
  }

  bool ContainsLocked(ObjectId id) const REQUIRES_SHARED(cap_) {
    const Shard& sh = *shards_[ShardOf(id)];
    sh.mu.AssertReaderHeld();  // covered by the caller's TableLock
    return sh.objects.count(id) > 0;
  }

  // Inserts (or, on the restore path, replaces) the object under its id,
  // and publishes it into the shard's lock-free index. A replaced object
  // is retired through the epoch layer, never destroyed in place — a
  // lock-free reader may still hold it. Requires the covering shard
  // locked exclusive.
  void InsertLocked(std::unique_ptr<Object> obj) REQUIRES(cap_) {
    ObjectId id = obj->id();
    Shard& sh = *shards_[ShardOf(id)];
    sh.mu.AssertHeld();  // covered by the caller's exclusive TableLock
    Object* raw = obj.get();
    std::unique_ptr<Object>& cell = sh.objects[id];
    Object* displaced = cell.release();
    cell = std::move(obj);
    // Derived published state (segment length, container link snapshot)
    // must be coherent before the pointer becomes reachable.
    raw->OnPublish();
    PublishLocked(sh, id, raw);
    if (displaced != nullptr) {
      EpochDomain::Global().Retire(displaced);
    }
  }

  // Tombstones the published entry and retires the object through the
  // epoch layer. Requires the covering shard locked exclusive.
  void EraseLocked(ObjectId id) REQUIRES(cap_) {
    Shard& sh = *shards_[ShardOf(id)];
    sh.mu.AssertHeld();  // covered by the caller's exclusive TableLock
    auto it = sh.objects.find(id);
    if (it == sh.objects.end()) {
      return;
    }
    Object* raw = it->second.release();
    sh.objects.erase(it);
    UnpublishLocked(sh, id);
    EpochDomain::Global().Retire(raw);
  }

  // ---- lock-free read path (caller holds an EpochGuard, NO shard lock) ----

  // Probes the shard's published index. Returns nullptr for absent or
  // tombstoned (concurrently erased) ids. The pointer stays valid for the
  // duration of the caller's epoch guard — erase retires, never deletes.
  Object* GetPublished(ObjectId id) const {
    const Shard& sh = *shards_[ShardOf(id)];
    const PubIndex* idx = sh.pub.load(std::memory_order_acquire);
    if (idx == nullptr) {
      return nullptr;
    }
    const size_t mask = idx->capacity - 1;
    for (size_t i = PubHash(id) & mask;; i = (i + 1) & mask) {
      ObjectId sid = idx->slots[i].id.load(std::memory_order_acquire);
      if (sid == id) {
        return idx->slots[i].obj.load(std::memory_order_acquire);
      }
      if (sid == kInvalidObject) {
        return nullptr;
      }
    }
  }

  // Visits every live object. Requires ALL shards locked (an all-shards
  // TableLock); exclusive if `fn` mutates objects, shared otherwise.
  template <typename Fn>
  void ForEachLocked(Fn&& fn) const REQUIRES_SHARED(cap_) {
    for (const auto& sh : shards_) {
      sh->mu.AssertReaderHeld();  // all-shards TableLock covers every shard
      for (const auto& [id, obj] : sh->objects) {
        fn(id, obj.get());
      }
    }
  }

  // Requires ALL shards locked (any mode).
  size_t SizeLocked() const REQUIRES_SHARED(cap_) {
    size_t n = 0;
    for (const auto& sh : shards_) {
      sh->mu.AssertReaderHeld();  // all-shards TableLock covers every shard
      n += sh->objects.size();
    }
    return n;
  }

 private:
  friend class TableLock;

  // One slot of the lock-free published index. Empty slots have
  // id == kInvalidObject; a tombstone keeps its id (so probe chains stay
  // intact) with obj == nullptr. Writers store obj before id (both
  // release) so a reader that observes the id also observes the object.
  struct PubSlot {
    std::atomic<ObjectId> id{kInvalidObject};
    std::atomic<Object*> obj{nullptr};
  };

  struct PubIndex {
    explicit PubIndex(size_t cap) : capacity(cap), slots(new PubSlot[cap]) {}
    const size_t capacity;  // power of two
    std::unique_ptr<PubSlot[]> slots;
    size_t used = 0;  // writer bookkeeping: claimed slots, incl. tombstones
  };

  static constexpr size_t kMinPubCapacity = 64;

  struct Shard {
    mutable SharedMutex mu;
    std::unordered_map<ObjectId, std::unique_ptr<Object>> objects
        GUARDED_BY(mu);
    // Lock-free published index over `objects`. Written only under the
    // exclusive shard lock; read via acquire loads with no lock at all.
    std::atomic<PubIndex*> pub{nullptr};
    ~Shard() { delete pub.load(std::memory_order_relaxed); }
  };

  // Distinct mix from ShardIndexFor: ids within one shard share that
  // hash's low bits, so reusing it here would stride-cluster the probes.
  static size_t PubHash(ObjectId id) {
    uint64_t h = id * 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return static_cast<size_t>(h);
  }

  // Rebuilds the shard's published index from the authoritative map
  // (dropping tombstones) at twice the live count, publishes it, and
  // retires the outgrown array — a lock-free reader may still be probing
  // it. Requires the shard locked exclusive.
  PubIndex* GrowPubLocked(Shard& sh) REQUIRES(sh.mu) {
    size_t cap = kMinPubCapacity;
    while (cap < (sh.objects.size() + 1) * 2) {
      cap <<= 1;
    }
    PubIndex* fresh = new PubIndex(cap);
    const size_t mask = cap - 1;
    for (const auto& [oid, obj] : sh.objects) {
      for (size_t i = PubHash(oid) & mask;; i = (i + 1) & mask) {
        PubSlot& s = fresh->slots[i];
        if (s.id.load(std::memory_order_relaxed) == kInvalidObject) {
          // Pre-publication fills: ordering comes from the index
          // pointer's release store below.
          s.obj.store(obj.get(), std::memory_order_relaxed);
          s.id.store(oid, std::memory_order_relaxed);
          ++fresh->used;
          break;
        }
      }
    }
    PubIndex* old = sh.pub.load(std::memory_order_relaxed);
    sh.pub.store(fresh, std::memory_order_release);
    if (old != nullptr) {
      EpochDomain::Global().Retire(old);
    }
    return fresh;
  }

  // Requires the shard locked exclusive; `id` must already be in
  // sh.objects (GrowPubLocked rebuilds from the map).
  void PublishLocked(Shard& sh, ObjectId id, Object* raw) REQUIRES(sh.mu) {
    PubIndex* idx = sh.pub.load(std::memory_order_relaxed);
    if (idx == nullptr || (idx->used + 1) * 2 > idx->capacity) {
      idx = GrowPubLocked(sh);
    }
    const size_t mask = idx->capacity - 1;
    for (size_t i = PubHash(id) & mask;; i = (i + 1) & mask) {
      PubSlot& s = idx->slots[i];
      ObjectId sid = s.id.load(std::memory_order_relaxed);
      if (sid == id) {
        // Replace (restore path) or revive a tombstone of the same id.
        s.obj.store(raw, std::memory_order_release);
        return;
      }
      if (sid == kInvalidObject) {
        s.obj.store(raw, std::memory_order_release);
        s.id.store(id, std::memory_order_release);
        ++idx->used;
        return;
      }
    }
  }

  // Requires the shard locked exclusive.
  void UnpublishLocked(Shard& sh, ObjectId id) REQUIRES(sh.mu) {
    PubIndex* idx = sh.pub.load(std::memory_order_relaxed);
    if (idx == nullptr) {
      return;
    }
    const size_t mask = idx->capacity - 1;
    for (size_t i = PubHash(id) & mask;; i = (i + 1) & mask) {
      PubSlot& s = idx->slots[i];
      ObjectId sid = s.id.load(std::memory_order_relaxed);
      if (sid == id) {
        s.obj.store(nullptr, std::memory_order_release);
        return;
      }
      if (sid == kInvalidObject) {
        return;
      }
    }
  }

  static size_t NormalizeShardCount(size_t n) {
    if (n < 1) {
      n = 1;
    }
    if (n > kMaxShardCount) {
      n = kMaxShardCount;
    }
    size_t p = 1;
    while (p < n) {
      p <<= 1;
    }
    return p;
  }

  const size_t shard_count_;
  std::vector<std::unique_ptr<Shard>> shards_;
  mutable TableCap cap_;
  mutable std::atomic<bool> lock_accounting_{false};
  mutable std::atomic<uint64_t> lock_acquisitions_{0};
};

// Shared bound for the optimistic footprint-discovery loops (sys_as_access,
// sys_thread_alert): rounds attempted with targeted shard sets — widening
// whenever a derived id escapes the locked set — before falling back to
// an all-shards TableLock, which covers any derivation and guarantees
// termination. One constant so the two copies of the protocol cannot drift.
inline constexpr int kFootprintDiscoveryRounds = 4;

// RAII acquisition of the set of shards covering a group of ObjectIds, all
// in one mode, always in ascending shard-index order. A syscall computes its
// full footprint up front (self, the ⟨D,O⟩ entries it dereferences, any
// freshly allocated id), takes one TableLock, and never acquires another
// while it is held — see the lock hierarchy in ARCHITECTURE.md.
//
// TableLock is a SCOPED_CAPABILITY over the table's fictional cap(): each
// constructor ACQUIREs it and the destructor RELEASEs it, so *Locked
// REQUIRES clauses are dischargeable only inside a live TableLock scope.
// All three constructions are direct (tag-dispatched) rather than
// by-value factories: the analysis tracks scoped capabilities reliably
// only when the scope object is constructed in place, and a movable lock
// would reopen the moved-from/double-release ambiguity the annotation is
// meant to close. histar-lint's `second-table-lock` rule covers the
// remaining dynamic half (no second construction while one is live).
class SCOPED_CAPABILITY TableLock {
 public:
  enum class Mode { kShared, kExclusive };

  // Tag selecting the every-shard footprint — the cross-shard path
  // (container unref's recursive destroy, checkpoint snapshots, restore,
  // operations whose object set is unknown until objects are read).
  struct AllShards {};
  // Tag selecting a precomputed shard bit mask — the batch dispatcher
  // path (Kernel::SubmitBatch), which unions the footprints of a whole
  // request group and pays this single acquisition for all of them.
  struct ByMask {};

  // Locks the shards covering `ids` (duplicates and same-shard ids collapse
  // into one acquisition). Ids that are kInvalidObject still map to a shard
  // and are locked — callers pass whatever the syscall received and the
  // not-found checks run under the lock as usual.
  TableLock(const ObjectTable& table, Mode mode,
            std::initializer_list<ObjectId> ids) ACQUIRE(table.cap())
      : table_(&table), mode_(mode), mask_(0) {
    for (ObjectId id : ids) {
      mask_ |= uint64_t{1} << table.ShardOf(id);
    }
    Acquire();
  }

  // Locks every shard.
  TableLock(const ObjectTable& table, Mode mode, AllShards)
      ACQUIRE(table.cap())
      : table_(&table), mode_(mode), mask_(table.AllShardsMask()) {
    Acquire();
  }

  // Locks the shards named by a precomputed bit mask.
  TableLock(const ObjectTable& table, Mode mode, uint64_t shard_mask, ByMask)
      ACQUIRE(table.cap())
      : table_(&table), mode_(mode), mask_(shard_mask) {
    Acquire();
  }

  ~TableLock() RELEASE() { Release(); }

  TableLock(const TableLock&) = delete;
  TableLock& operator=(const TableLock&) = delete;
  TableLock(TableLock&&) = delete;
  TableLock& operator=(TableLock&&) = delete;

  // True if this lock's shard set covers `id` — used by optimistic
  // discover-then-relock paths (sys_as_access writes) to verify that the
  // objects re-resolved under the exclusive lock are actually covered by it.
  bool Covers(ObjectId id) const {
    return (mask_ & (uint64_t{1} << table_->ShardOf(id))) != 0;
  }

 private:
  // The shard set is data-dependent, so the per-shard acquisitions cannot
  // be expressed to the analysis; the fictional table capability on the
  // constructors/destructor carries the static story instead. Ascending
  // index order here is the deadlock-freedom argument (ARCHITECTURE.md).
  void Acquire() NO_THREAD_SAFETY_ANALYSIS {
    if (table_->lock_accounting_.load(std::memory_order_relaxed)) {
      table_->lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
    }
    table_->cap_.Acquire();
    for (size_t i = 0; i < table_->shard_count_; ++i) {
      if ((mask_ & (uint64_t{1} << i)) == 0) {
        continue;
      }
      SharedMutex& mu = table_->shards_[i]->mu;
      if (mode_ == Mode::kExclusive) {
        mu.Lock();
      } else {
        mu.ReaderLock();
      }
    }
  }

  void Release() NO_THREAD_SAFETY_ANALYSIS {
    table_->cap_.Release();
    for (size_t i = 0; i < table_->shard_count_; ++i) {
      if ((mask_ & (uint64_t{1} << i)) == 0) {
        continue;
      }
      SharedMutex& mu = table_->shards_[i]->mu;
      if (mode_ == Mode::kExclusive) {
        mu.Unlock();
      } else {
        mu.ReaderUnlock();
      }
    }
    mask_ = 0;
  }

  const ObjectTable* const table_;
  const Mode mode_;
  uint64_t mask_ = 0;
};

// The epoch-protected stand-in for a TableLock on lock-free read groups
// (Kernel::SubmitBatch): the caller pairs an EpochGuard with
// PublishedReadMode, which together substitute for the shared shard locks
// on the side-effect-free *Locked read bodies (kernel.h documents the
// runtime contract; the epoch TSan suites exercise it). This scope tells
// the static analysis the same table capability is satisfied, so those
// bodies remain unreachable without either a TableLock or this explicit,
// greppable marker — histar-lint's epoch-scope rule checks the dynamic
// half (no blocking calls while the guard is live).
class SCOPED_CAPABILITY PublishedReadTableCap {
 public:
  explicit PublishedReadTableCap(const ObjectTable& table) ACQUIRE(table.cap())
      : cap_(&table.cap()) {
    cap_->Acquire();
  }
  ~PublishedReadTableCap() RELEASE() { cap_->Release(); }
  PublishedReadTableCap(const PublishedReadTableCap&) = delete;
  PublishedReadTableCap& operator=(const PublishedReadTableCap&) = delete;

 private:
  const TableCap* const cap_;
};

}  // namespace histar

#endif  // SRC_KERNEL_OBJECT_TABLE_H_
