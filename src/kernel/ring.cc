// Async submission/completion rings (PR 5): worker pool and the
// sys_ring_{create,submit,wait,reap} bodies. Design notes in ring.h; the
// chain executor the workers drive (Kernel::SubmitChain) lives in
// kernel_batch.cc next to the group-merging machinery it reuses.
#include "src/kernel/ring.h"

#include <algorithm>
#include <chrono>

#include "src/core/trace.h"
#include "src/kernel/kernel.h"
#include "src/kernel/thread_runner.h"

namespace histar {

// ---- RingEngine -------------------------------------------------------------

size_t RingEngine::DefaultWorkers() {
  size_t hw = std::thread::hardware_concurrency();  // 0 when unknown
  return std::clamp<size_t>(hw, 2, 8);
}

RingEngine::RingEngine(Kernel* kernel, size_t workers) : kernel_(kernel) {
  size_t n = workers == 0 ? DefaultWorkers() : std::max<size_t>(workers, 1);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

RingEngine::~RingEngine() {
  {
    MutexLock lk(&mu_);
    stopping_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& w : workers_) {
    w.join();
  }
}

std::shared_ptr<RingState> RingEngine::GetOrCreate(ObjectId ring, uint32_t capacity) {
  MutexLock lk(&mu_);
  auto it = rings_.find(ring);
  if (it == rings_.end()) {
    it = rings_.emplace(ring, std::make_shared<RingState>(ring, capacity)).first;
  }
  return it->second;
}

std::shared_ptr<RingState> RingEngine::Find(ObjectId ring) const {
  MutexLock lk(&mu_);
  auto it = rings_.find(ring);
  return it == rings_.end() ? nullptr : it->second;
}

void RingEngine::Kick(const std::shared_ptr<RingState>& state) {
  {
    MutexLock lk(&mu_);
    if (stopping_ || state->armed) {
      return;
    }
    state->armed = true;
    ready_.push_back(state);
  }
  cv_.NotifyOne();
}

void RingEngine::Drop(ObjectId ring) {
  std::shared_ptr<RingState> state;
  {
    MutexLock lk(&mu_);
    auto it = rings_.find(ring);
    if (it == rings_.end()) {
      return;
    }
    state = it->second;
    // Erase the map entry only when no worker owns the ring. While armed, a
    // worker may be mid-chain, and LATE waiters must still be able to Find
    // the state to drain on `executing` (the descriptor-buffer guarantee);
    // the worker erases the dead entry itself when it finishes (DrainRing).
    if (!state->armed) {
      rings_.erase(it);
    }
  }
  MutexLock sl(&state->mu);
  state->dead = true;
  state->sq.clear();
  state->cq.clear();
  state->cv.NotifyAll();
}

void RingEngine::WorkerLoop() {
  mu_.Lock();
  for (;;) {
    cv_.Wait(mu_, [this] {
      mu_.AssertHeld();  // predicate runs with the wait mutex reacquired
      return stopping_ || !ready_.empty();
    });
    if (stopping_) {
      mu_.Unlock();
      return;
    }
    std::shared_ptr<RingState> state = std::move(ready_.front());
    ready_.pop_front();
    mu_.Unlock();
    DrainRing(state);
    mu_.Lock();
  }
}

void RingEngine::DrainRing(const std::shared_ptr<RingState>& state) {
  for (;;) {
    RingSubmission sub;
    {
      MutexLock sl(&state->mu);
      if (state->dead || state->sq.empty()) {
        break;
      }
      sub = std::move(state->sq.front());
      state->sq.pop_front();
      // Claimed: waiters must not abandon this seq range until the chain
      // is published (its descriptors reference caller memory).
      state->executing = true;
      state->executing_first = sub.first_seq;
      state->executing_last = sub.last_seq;
    }
    // Execute with NO ring mutex held: SubmitChain takes TableLocks exactly
    // like any syscall, and the lock hierarchy forbids holding a leaf mutex
    // across that. Label checks inside run against the SUBMITTER's thread;
    // RunAsWorker (thread_runner.h) wraps the chain in ProxyExecution so
    // the submitter's fault-hint slot stays untouched.
    std::vector<SyscallRes> res(sub.ops.size());
    RunAsWorker([&] {
      kernel_->SubmitChain(sub.submitter, std::span<RingOp>(sub.ops),
                           std::span<SyscallRes>(res));
    });
    {
      MutexLock sl(&state->mu);
      if (!state->dead) {
        for (size_t i = 0; i < res.size(); ++i) {
          state->cq.push_back(RingCompletion{sub.first_seq + i, std::move(res[i])});
        }
      }
      state->completed_seq = sub.last_seq;
      state->executing = false;
      state->cv.NotifyAll();
    }
  }
  // Disarm, then re-check: a submission that raced in between the empty-SQ
  // check above and this disarm saw armed==true and did not re-queue the
  // ring — the recheck below closes that lost-wakeup window.
  {
    MutexLock lk(&mu_);
    state->armed = false;
  }
  bool more;
  bool dead;
  {
    MutexLock sl(&state->mu);
    dead = state->dead;
    more = !dead && !state->sq.empty();
  }
  if (dead) {
    // The ring died while this worker owned it, so Drop left the map entry
    // for late waiters to drain on; with execution finished, retire it.
    MutexLock lk(&mu_);
    auto it = rings_.find(state->id);
    if (it != rings_.end() && it->second == state) {
      rings_.erase(it);
    }
  }
  if (more) {
    Kick(state);
  }
}

// ---- Kernel glue ------------------------------------------------------------

RingEngine* Kernel::ring_engine(bool create) const {
  MutexLock lk(&ring_engine_mu_);
  if (ring_engine_ == nullptr && create) {
    ring_engine_ = std::make_unique<RingEngine>(const_cast<Kernel*>(this));
  }
  return ring_engine_.get();
}

void Kernel::DropRings(const std::vector<ObjectId>& ids) {
  if (ids.empty()) {
    return;
  }
  RingEngine* eng = ring_engine(/*create=*/false);
  if (eng == nullptr) {
    return;
  }
  for (ObjectId id : ids) {
    eng->Drop(id);  // no-op for ids that never had ring queue state
  }
}

uint64_t Kernel::ring_completed_ticket(ObjectId ring) const {
  RingEngine* eng = ring_engine(/*create=*/false);
  std::shared_ptr<RingState> st = eng != nullptr ? eng->Find(ring) : nullptr;
  if (st == nullptr) {
    return 0;
  }
  MutexLock lk(&st->mu);
  return st->completed_seq;
}

// ---- syscall bodies ---------------------------------------------------------

Result<ObjectId> Kernel::RingCreateLocked(ObjectId self, const CreateSpec& spec,
                                          uint32_t capacity, ObjectId new_id) {
  Thread* t = GetThread(self);
  if (t == nullptr || t->halted()) {
    return Status::kHalted;
  }
  if (capacity == 0) {
    capacity = kRingDefaultCapacity;
  }
  if (capacity > kRingMaxCapacity) {
    return Status::kInvalidArg;
  }
  LabelId lid = kInvalidLabelId;
  Result<Container*> d =
      CheckCreate(*t, spec.container, spec.label, ObjectType::kRing, spec.quota, &lid);
  if (!d.ok()) {
    return d.status();
  }
  // The capacity is charged up front (kRingEntryCharge per slot stands in
  // for the pinned SQ/CQ entries), like a segment's bytes.
  if (!RangeOk(kObjectOverheadBytes, uint64_t{capacity} * kRingEntryCharge, spec.quota)) {
    return Status::kQuotaExceeded;
  }
  auto r = std::make_unique<Ring>(new_id, lid, capacity);
  r->set_quota_internal(spec.quota);
  r->set_descrip_internal(spec.descrip);
  Ring* raw = r.get();
  InsertObject(std::move(r));
  Status ls = LinkInto(d.value(), raw);
  if (ls != Status::kOk) {
    table_.EraseLocked(raw->id());
    return ls;
  }
  MarkDirty(raw->id());
  return raw->id();
}

Result<uint64_t> Kernel::DoRingSubmit(ObjectId self, ContainerEntry ring,
                                      const std::vector<RingOp>& ops) {
  if (ops.empty()) {
    return Status::kInvalidArg;
  }
  for (size_t i = 0; i < ops.size(); ++i) {
    const RingOp& op = ops[i];
    // No nested ring calls (a worker waiting on its own pool deadlocks it)
    // and no gate invocation (gates cross protection domains on the calling
    // host thread; a kernel worker cannot impersonate one).
    if (std::holds_alternative<RingCreateReq>(op.req) ||
        std::holds_alternative<RingSubmitReq>(op.req) ||
        std::holds_alternative<RingWaitReq>(op.req) ||
        std::holds_alternative<RingReapReq>(op.req) ||
        std::holds_alternative<GateInvokeReq>(op.req)) {
      return Status::kInvalidArg;
    }
    // Blocking ops may park the worker only BOUNDEDLY: an indefinite futex
    // wait (timeout 0) would pin a worker until an unrelated thread happens
    // to wake the word — pool-size of those wedge the whole pool however
    // many workers DefaultWorkers() sized it with, and ~Kernel would hang
    // joining it. (sys_net_wait is always bounded: the port clamps timeout
    // 0 to a 50 ms poll.)
    if (const FutexWaitReq* fw = std::get_if<FutexWaitReq>(&op.req);
        fw != nullptr && fw->timeout_ms == 0) {
      return Status::kInvalidArg;
    }
    // Operand routing is a dependency: it needs both slots named and a
    // linked predecessor whose completion the value can flow out of.
    const bool routed = op.from != RingSlot::kNone || op.to != RingSlot::kNone;
    if (routed && (op.from == RingSlot::kNone || op.to == RingSlot::kNone || i == 0 ||
                   (ops[i - 1].flags & kRingLinked) == 0)) {
      return Status::kInvalidArg;
    }
  }
  uint32_t capacity = 0;
  ObjectId rid = kInvalidObject;
  {
    TableLock lk(table_, TableLock::Mode::kShared, {self, ring.container, ring.object});
    Thread* t = GetThread(self);
    if (t == nullptr || t->halted()) {
      return Status::kHalted;
    }
    Result<Object*> o = ResolveEntry(*t, ring);
    if (!o.ok()) {
      return o.status();
    }
    if (o.value()->type() != ObjectType::kRing) {
      return Status::kWrongType;
    }
    // Submitting mutates the ring's queue state: the modify rule, exactly
    // as for writing a segment. (The queue itself lives behind the leaf
    // RingState::mu, so shared shard locks suffice here — same split as
    // futex wake.) The ops themselves are NOT checked now: each is checked
    // against this submitter's labels when a worker executes it, so a
    // relabel between submit and execution is honored, never bypassed.
    Status ms = CheckModify(*t, *o.value());
    if (ms != Status::kOk) {
      return ms;
    }
    capacity = static_cast<Ring*>(o.value())->capacity();
    rid = o.value()->id();
  }
  RingEngine* eng = ring_engine(/*create=*/true);
  std::shared_ptr<RingState> st = eng->GetOrCreate(rid, capacity);
  uint64_t ticket = 0;
  uint64_t first_seq = 0;
  {
    MutexLock lk(&st->mu);
    if (st->dead) {
      return Status::kNotFound;
    }
    if (st->inflight_ops + ops.size() > st->capacity) {
      return Status::kAgain;  // backpressure: reap before submitting more
    }
    RingSubmission sub;
    sub.submitter = self;
    sub.first_seq = st->next_seq;
    first_seq = sub.first_seq;
    st->next_seq += ops.size();
    sub.last_seq = st->next_seq - 1;
    sub.ops = ops;
    st->inflight_ops += ops.size();
    ticket = sub.last_seq;
    st->sq.push_back(std::move(sub));
  }
  // Charge the ops to the submitter NOW, on the submitter's own host
  // thread: each ring op counts as one syscall (fig-12 accounting holds
  // whether callers batch, ring, or call one at a time), and kernel workers
  // never touch a count stripe — the submitter's stripe entry could even be
  // erased by thread destruction while the submission is in flight.
  CountSyscalls(self, ops.size());
  eng->Kick(st);
  // Close the submit-vs-destroy window: if the ring object died between the
  // validation lock and the enqueue, its Drop may have run before the state
  // existed — re-probe. If the submission is still queued, RETRACT it and
  // report kNotFound (truthful: nothing executed, callers may safely fall
  // back to a synchronous path). If a worker already claimed it, the ops
  // ARE executing under the submitter's labels — report the ticket as
  // accepted, exactly as if the destroy had landed a moment later; the
  // wait/reap path observes the dead ring once the chain drains. Returning
  // failure here would invite callers to re-run already-executing ops.
  if (!ObjectExists(rid)) {
    bool retracted = false;
    {
      MutexLock lk(&st->mu);
      for (auto it = st->sq.begin(); it != st->sq.end(); ++it) {
        if (it->first_seq == first_seq) {
          st->inflight_ops -= it->ops.size();
          st->sq.erase(it);
          retracted = true;
          break;
        }
      }
    }
    DropRings({rid});
    if (retracted) {
      return Status::kNotFound;
    }
  }
  return ticket;
}

Status Kernel::DoRingWait(ObjectId self, ContainerEntry ring, uint64_t ticket,
                          uint32_t timeout_ms) {
  ObjectId rid = kInvalidObject;
  Status resolve_st = Status::kOk;
  {
    TableLock lk(table_, TableLock::Mode::kShared, {self, ring.container, ring.object});
    Thread* t = GetThread(self);
    if (t == nullptr || t->halted()) {
      return Status::kHalted;
    }
    Result<Object*> o = ResolveEntry(*t, ring);
    if (!o.ok()) {
      // kNotFound may mean "destroyed while our chain is mid-flight on a
      // worker" — the caller owns the chain's buffers and must not learn a
      // terminal status before the worker publishes. Fall through to the
      // drain below against the (possibly surviving) queue state; every
      // other resolve failure carries no in-flight hazard and returns now.
      if (o.status() != Status::kNotFound) {
        return o.status();
      }
      resolve_st = Status::kNotFound;
      rid = ring.object;
    } else if (o.value()->type() != ObjectType::kRing) {
      return Status::kWrongType;
    } else if (!CanObserve(*t, *o.value())) {
      // Waiting observes completion progress: the observe rule only.
      return Status::kLabelCheckFailed;
    } else {
      rid = o.value()->id();
    }
  }
  if (ticket == 0 && resolve_st == Status::kOk) {
    return Status::kOk;
  }
  RingEngine* eng = ring_engine(/*create=*/false);
  std::shared_ptr<RingState> st = eng != nullptr ? eng->Find(rid) : nullptr;
  if (st == nullptr) {
    // No queue state: nothing was ever submitted, or a destroyed ring's
    // state was already retired by its worker — either way nothing is
    // executing, so kNotFound is safe to report.
    return Status::kNotFound;
  }
  if (resolve_st == Status::kNotFound) {
    // Ring object gone, state still present: drain `executing` for our
    // ticket, then report. (The state is marked dead by DropRings, so the
    // loop below exits as soon as no worker holds the ticket's buffers.)
    MutexLock dl(&st->mu);
    while (st->executing && st->executing_first <= ticket) {
      st->cv.WaitFor(st->mu, std::chrono::milliseconds(50));
    }
    return Status::kNotFound;
  }
  auto deadline = trace::SteadyNow() + std::chrono::milliseconds(timeout_ms);
  st->mu.Lock();
  if (ticket >= st->next_seq) {
    st->mu.Unlock();
    return Status::kInvalidArg;  // never issued
  }
  for (;;) {
    if (st->completed_seq >= ticket) {
      st->mu.Unlock();
      return Status::kOk;
    }
    // A chain the worker is CURRENTLY executing references caller-owned
    // buffers (descriptor contract), so no terminal status — dead ring,
    // halted waiter — may be reported for a ticket the executing range
    // covers until the worker publishes: the caller would pop its stack
    // frame out from under the worker. Alerts (kAgain) still interrupt
    // immediately — the caller re-enters, nothing is abandoned. Bounded:
    // unbounded blocking ops are rejected at submit.
    const bool ours_running = st->executing && st->executing_first <= ticket;
    if (st->dead && !ours_running) {
      st->mu.Unlock();
      return Status::kNotFound;
    }
    // Same bounded-slice shape as futex waits: thread halt/alert state
    // lives behind shard locks, which never nest with RingState::mu — drop
    // the ring lock for the peek; publishes that land meanwhile persist in
    // completed_seq and are seen on reacquisition.
    st->mu.Unlock();
    Status ts = Status::kOk;
    {
      TableLock tl(table_, TableLock::Mode::kShared, {self});
      Thread* t = GetThread(self);
      if (t == nullptr || t->halted()) {
        ts = Status::kHalted;
      } else if (!t->alerts().empty()) {
        ts = Status::kAgain;  // interrupted by alert (EINTR analogue)
      }
    }
    st->mu.Lock();
    if (ts == Status::kAgain) {
      st->mu.Unlock();
      return ts;
    }
    if (ts != Status::kOk &&
        !(st->executing && st->executing_first <= ticket)) {
      st->mu.Unlock();
      return ts;  // halted, and no worker holds our buffers: safe to report
    }
    const auto slice = std::chrono::milliseconds(50);
    if (timeout_ms != 0) {
      auto now = trace::SteadyNow();
      if (now >= deadline) {
        st->mu.Unlock();
        return Status::kTimedOut;
      }
      st->cv.WaitFor(st->mu,
                     std::min<std::chrono::steady_clock::duration>(deadline - now, slice));
    } else {
      st->cv.WaitFor(st->mu, slice);
    }
  }
}

Result<std::vector<RingCompletion>> Kernel::DoRingReap(ObjectId self, ContainerEntry ring,
                                                       uint32_t max) {
  ObjectId rid = kInvalidObject;
  {
    TableLock lk(table_, TableLock::Mode::kShared, {self, ring.container, ring.object});
    Thread* t = GetThread(self);
    if (t == nullptr || t->halted()) {
      return Status::kHalted;
    }
    Result<Object*> o = ResolveEntry(*t, ring);
    if (!o.ok()) {
      return o.status();
    }
    if (o.value()->type() != ObjectType::kRing) {
      return Status::kWrongType;
    }
    // Reaping consumes completions (mutates queue state) and observes their
    // contents: the modify rule covers both.
    Status ms = CheckModify(*t, *o.value());
    if (ms != Status::kOk) {
      return ms;
    }
    rid = o.value()->id();
  }
  std::vector<RingCompletion> out;
  RingEngine* eng = ring_engine(/*create=*/false);
  std::shared_ptr<RingState> st = eng != nullptr ? eng->Find(rid) : nullptr;
  if (st == nullptr) {
    return out;  // never submitted to: nothing pending
  }
  MutexLock lk(&st->mu);
  size_t n = st->cq.size();
  if (max != 0) {
    n = std::min<size_t>(n, max);
  }
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(std::move(st->cq.front()));
    st->cq.pop_front();
  }
  st->inflight_ops -= n;
  return out;
}

}  // namespace histar
