// The batched syscall ABI (PR 3): uniform request/completion descriptors.
//
// Every kernel entry point has exactly one request alternative in SyscallReq
// and one completion alternative in SyscallRes. A batch is a span of
// requests submitted through Kernel::SubmitBatch, which fills the matching
// span of completions: completion i always describes request i, carries its
// own Status (partial failure is per-entry — later entries still execute),
// and holds alternative index i+1 of SyscallRes (index 0, std::monostate,
// means "never filled"). The descriptors carry the §3 label-rule inputs
// explicitly — caller-supplied labels, container entries, create specs —
// so the dispatcher can compute a request's full shard footprint before
// touching any lock; that is what lets SubmitBatch execute a run of
// same-footprint requests under ONE ascending-order TableLock instead of
// one per call (ARCHITECTURE.md "The batched syscall ABI").
//
// Buffer fields (`buf`, `data`) are caller-owned raw pointers, exactly like
// an io_uring SQE referencing user memory: they must stay valid until the
// matching completion is filled. Encode/decode (below) round-trips them as
// 64-bit words — descriptors describe in-process memory, not a network
// protocol.
#ifndef SRC_KERNEL_SYSCALL_ABI_H_
#define SRC_KERNEL_SYSCALL_ABI_H_

#include <array>
#include <cstdint>
#include <string>
#include <tuple>
#include <variant>
#include <vector>

#include "src/core/label.h"
#include "src/core/status.h"
#include "src/kernel/object.h"
#include "src/kernel/types.h"

namespace histar {

// Parameters for creating any object: the destination container, the new
// object's label, descriptive string and quota.
struct CreateSpec {
  ObjectId container = kInvalidObject;
  Label label;
  std::string descrip;
  uint64_t quota = 16 * kPageSize;
};

// ---- Request descriptors (one per sys_* entry point) ------------------------
//
// Threads (§3.1)
struct CatCreateReq {};
struct SelfSetLabelReq {
  Label label;
};
struct SelfSetClearanceReq {
  Label clearance;
};
struct SelfGetLabelReq {};
struct SelfGetClearanceReq {};
struct SelfSetAsReq {
  ContainerEntry as;
};
struct SelfGetAsReq {};
struct SelfHaltReq {};
struct ThreadCreateReq {
  CreateSpec spec;
  Label label;
  Label clearance;
};
struct ThreadAlertReq {
  ContainerEntry thread;
  uint64_t code = 0;
};
struct SelfNextAlertReq {};
struct SelfLocalReadReq {
  void* buf = nullptr;
  uint64_t off = 0;
  uint64_t len = 0;
};
struct SelfLocalWriteReq {
  const void* buf = nullptr;
  uint64_t off = 0;
  uint64_t len = 0;
};

// Containers (§3.2, §3.3)
struct ContainerCreateReq {
  CreateSpec spec;
  uint32_t avoid_types = 0;
};
struct ContainerUnrefReq {
  ContainerEntry ce;
};
struct ContainerGetParentReq {
  ObjectId container = kInvalidObject;
};
struct ContainerListReq {
  ObjectId container = kInvalidObject;
};
struct ContainerLinkReq {
  ObjectId container = kInvalidObject;
  ContainerEntry src;
};
struct ContainerHasReq {
  ObjectId container = kInvalidObject;
  ObjectId obj = kInvalidObject;
};

// Generic object calls (§3.2)
struct ObjGetTypeReq {
  ContainerEntry ce;
};
struct ObjGetLabelReq {
  ContainerEntry ce;
};
struct ObjGetDescripReq {
  ContainerEntry ce;
};
struct ObjGetQuotaReq {
  ContainerEntry ce;
};
struct ObjGetMetadataReq {
  ContainerEntry ce;
};
struct ObjSetMetadataReq {
  ContainerEntry ce;
  const void* data = nullptr;
  uint64_t len = 0;
};
struct ObjSetFixedQuotaReq {
  ContainerEntry ce;
};
struct ObjSetImmutableReq {
  ContainerEntry ce;
};
struct QuotaMoveReq {
  ObjectId d = kInvalidObject;
  ObjectId o = kInvalidObject;
  int64_t n = 0;
};

// Segments (§3)
struct SegmentCreateReq {
  CreateSpec spec;
  uint64_t len = 0;
};
struct SegmentCopyReq {
  CreateSpec spec;
  ContainerEntry src;
};
struct SegmentResizeReq {
  ContainerEntry ce;
  uint64_t len = 0;
};
struct SegmentGetLenReq {
  ContainerEntry ce;
};
struct SegmentReadReq {
  ContainerEntry ce;
  void* buf = nullptr;
  uint64_t off = 0;
  uint64_t len = 0;
};
struct SegmentWriteReq {
  ContainerEntry ce;
  const void* buf = nullptr;
  uint64_t off = 0;
  uint64_t len = 0;
};

// Address spaces (§3.4)
struct AsCreateReq {
  CreateSpec spec;
};
struct AsSetReq {
  ContainerEntry ce;
  std::vector<Mapping> mappings;
};
struct AsGetReq {
  ContainerEntry ce;
};
struct AsAccessReq {
  uint64_t va = 0;
  void* buf = nullptr;
  uint64_t len = 0;
  bool write = false;
};

// Gates (§3.5)
struct GateCreateReq {
  CreateSpec spec;
  Label gate_label;
  Label gate_clearance;
  std::string entry_name;
  std::vector<uint64_t> closure;
};
struct GateInvokeReq {
  ContainerEntry gate;
  Label request_label;
  Label request_clearance;
  Label verify_label;
};
struct GateGetClosureReq {
  ContainerEntry ce;
};

// Futexes (§4.1)
struct FutexWaitReq {
  ContainerEntry seg;
  uint64_t offset = 0;
  uint64_t expected = 0;
  uint32_t timeout_ms = 0;
};
struct FutexWakeReq {
  ContainerEntry seg;
  uint64_t offset = 0;
  uint32_t max_count = 0;
};

// Devices (§4.1, §5.7)
struct NetMacAddrReq {
  ContainerEntry dev;
};
struct NetTransmitReq {
  ContainerEntry dev;
  ContainerEntry seg;
  uint64_t off = 0;
  uint64_t len = 0;
};
struct NetReceiveReq {
  ContainerEntry dev;
  ContainerEntry seg;
  uint64_t off = 0;
  uint64_t maxlen = 0;
};
struct NetWaitReq {
  ContainerEntry dev;
  uint32_t timeout_ms = 0;
};
struct ConsoleWriteReq {
  ContainerEntry dev;
  std::string text;
};

// Persistence (§3, §4)
struct SyncReq {};
struct SyncObjectReq {
  ContainerEntry ce;
};
struct SyncPagesReq {
  ContainerEntry ce;
  uint64_t offset = 0;
  uint64_t len = 0;
};

// ---- Rings (PR 5: async submission/completion queues) -----------------------
//
// A ring submission is a span of RingOps — a SyscallReq each, plus link
// flags and operand-routing slots (io_uring's IOSQE_IO_LINK analogue). The
// RingOp/RingCompletion structs themselves are defined below the variants
// (they embed them); the request/completion descriptors here only need the
// vector members, which C++17 permits over incomplete element types.
struct RingOp;
struct RingCompletion;

// Named u64-valued "slots" on descriptors that linked operands flow
// through: `RingOp::from` selects a slot of the PREVIOUS entry's
// completion, `RingOp::to` the slot of THIS request it overwrites before
// execution. kObject/kContainer retarget a request's ⟨D,O⟩ entry, which
// makes its shard footprint data-dependent — the chain executor flushes the
// current lock group before such an entry (see kernel_batch.cc).
enum class RingSlot : uint8_t {
  kNone = 0,
  kLen = 1,        // SegmentGetLenRes.len / NetReceiveRes.len → len/maxlen fields
  kObject = 2,     // create-result id → ce.object
  kCount = 3,      // FutexWakeRes.woken
  kOff = 4,        // → off/offset fields
  kContainer = 5,  // create-result id → ce.container
};

inline constexpr bool RingSlotNamesIds(RingSlot s) {
  return s == RingSlot::kObject || s == RingSlot::kContainer;
}

// RingOp::flags: this entry is linked TO its successor — if this entry
// fails, every transitively linked successor completes with kCancelled
// instead of executing.
inline constexpr uint32_t kRingLinked = 1u << 0;

struct RingCreateReq {
  CreateSpec spec;
  uint32_t capacity = 0;  // 0 → kRingDefaultCapacity
};
struct RingSubmitReq {
  ContainerEntry ring;
  std::vector<RingOp> ops;
};
struct RingWaitReq {
  ContainerEntry ring;
  uint64_t ticket = 0;
  uint32_t timeout_ms = 0;
};
struct RingReapReq {
  ContainerEntry ring;
  uint32_t max = 0;  // 0 → everything pending
};
// Flight-recorder export (PR 10): returns the flow-checked view of the
// kernel trace rings (src/core/trace.h). `self` is the reader whose raised
// label gates per-event visibility; events that do not flow to it are
// counted in TraceReadRes::withheld but never returned.
struct TraceReadReq {
  uint32_t max_events = 0;  // 0 → kTraceReadDefaultMax
};

inline constexpr uint32_t kTraceReadDefaultMax = 256;
inline constexpr uint32_t kTraceReadMaxEvents = 16384;

inline constexpr uint32_t kRingDefaultCapacity = 64;
inline constexpr uint32_t kRingMaxCapacity = 4096;

// ---- Completion descriptors -------------------------------------------------
//
// Every completion leads with its own Status; value fields are meaningful
// only when status == Status::kOk.
struct CatCreateRes {
  Status status = Status::kInvalidArg;
  CategoryId cat = kInvalidCategory;
};
struct SelfSetLabelRes {
  Status status = Status::kInvalidArg;
};
struct SelfSetClearanceRes {
  Status status = Status::kInvalidArg;
};
struct SelfGetLabelRes {
  Status status = Status::kInvalidArg;
  Label label;
};
struct SelfGetClearanceRes {
  Status status = Status::kInvalidArg;
  Label clearance;
};
struct SelfSetAsRes {
  Status status = Status::kInvalidArg;
};
struct SelfGetAsRes {
  Status status = Status::kInvalidArg;
  ContainerEntry as;
};
struct SelfHaltRes {
  Status status = Status::kInvalidArg;
};
struct ThreadCreateRes {
  Status status = Status::kInvalidArg;
  ObjectId id = kInvalidObject;
};
struct ThreadAlertRes {
  Status status = Status::kInvalidArg;
};
struct SelfNextAlertRes {
  Status status = Status::kInvalidArg;
  uint64_t code = 0;
};
struct SelfLocalReadRes {
  Status status = Status::kInvalidArg;
};
struct SelfLocalWriteRes {
  Status status = Status::kInvalidArg;
};
struct ContainerCreateRes {
  Status status = Status::kInvalidArg;
  ObjectId id = kInvalidObject;
};
struct ContainerUnrefRes {
  Status status = Status::kInvalidArg;
};
struct ContainerGetParentRes {
  Status status = Status::kInvalidArg;
  ObjectId parent = kInvalidObject;
};
struct ContainerListRes {
  Status status = Status::kInvalidArg;
  std::vector<ObjectId> links;
};
struct ContainerLinkRes {
  Status status = Status::kInvalidArg;
};
struct ContainerHasRes {
  Status status = Status::kInvalidArg;
  bool has = false;
};
struct ObjGetTypeRes {
  Status status = Status::kInvalidArg;
  ObjectType type = ObjectType::kContainer;
};
struct ObjGetLabelRes {
  Status status = Status::kInvalidArg;
  Label label;
};
struct ObjGetDescripRes {
  Status status = Status::kInvalidArg;
  std::string descrip;
};
struct ObjGetQuotaRes {
  Status status = Status::kInvalidArg;
  uint64_t quota = 0;
};
struct ObjGetMetadataRes {
  Status status = Status::kInvalidArg;
  std::vector<uint8_t> metadata;
};
struct ObjSetMetadataRes {
  Status status = Status::kInvalidArg;
};
struct ObjSetFixedQuotaRes {
  Status status = Status::kInvalidArg;
};
struct ObjSetImmutableRes {
  Status status = Status::kInvalidArg;
};
struct QuotaMoveRes {
  Status status = Status::kInvalidArg;
};
struct SegmentCreateRes {
  Status status = Status::kInvalidArg;
  ObjectId id = kInvalidObject;
};
struct SegmentCopyRes {
  Status status = Status::kInvalidArg;
  ObjectId id = kInvalidObject;
};
struct SegmentResizeRes {
  Status status = Status::kInvalidArg;
};
struct SegmentGetLenRes {
  Status status = Status::kInvalidArg;
  uint64_t len = 0;
};
struct SegmentReadRes {
  Status status = Status::kInvalidArg;
};
struct SegmentWriteRes {
  Status status = Status::kInvalidArg;
};
struct AsCreateRes {
  Status status = Status::kInvalidArg;
  ObjectId id = kInvalidObject;
};
struct AsSetRes {
  Status status = Status::kInvalidArg;
};
struct AsGetRes {
  Status status = Status::kInvalidArg;
  std::vector<Mapping> mappings;
};
struct AsAccessRes {
  Status status = Status::kInvalidArg;
};
struct GateCreateRes {
  Status status = Status::kInvalidArg;
  ObjectId id = kInvalidObject;
};
struct GateInvokeRes {
  Status status = Status::kInvalidArg;
};
struct GateGetClosureRes {
  Status status = Status::kInvalidArg;
  std::vector<uint64_t> closure;
};
struct FutexWaitRes {
  Status status = Status::kInvalidArg;
};
struct FutexWakeRes {
  Status status = Status::kInvalidArg;
  uint32_t woken = 0;
};
struct NetMacAddrRes {
  Status status = Status::kInvalidArg;
  std::array<uint8_t, 6> mac = {};
};
struct NetTransmitRes {
  Status status = Status::kInvalidArg;
};
struct NetReceiveRes {
  Status status = Status::kInvalidArg;
  uint64_t len = 0;
};
struct NetWaitRes {
  Status status = Status::kInvalidArg;
};
struct ConsoleWriteRes {
  Status status = Status::kInvalidArg;
};
struct SyncRes {
  Status status = Status::kInvalidArg;
};
struct SyncObjectRes {
  Status status = Status::kInvalidArg;
};
struct SyncPagesRes {
  Status status = Status::kInvalidArg;
};
struct RingCreateRes {
  Status status = Status::kInvalidArg;
  ObjectId id = kInvalidObject;
};
struct RingSubmitRes {
  Status status = Status::kInvalidArg;
  // Sequence number of the submission's LAST op; sys_ring_wait(ticket)
  // returns once every op up to it has a completion. Op i of an n-op
  // submission carries seq = ticket - n + 1 + i in its RingCompletion.
  uint64_t ticket = 0;
};
struct RingWaitRes {
  Status status = Status::kInvalidArg;
};
struct RingReapRes {
  Status status = Status::kInvalidArg;
  std::vector<RingCompletion> completions;
};
// One exported flight-recorder event (the wire form of trace::Event plus
// its slot/seq provenance). Labels travel as raw LabelIds: the flow check
// already ran kernel-side, so every event here is one the reader may see.
struct TraceEventWire {
  uint64_t ts_ns = 0;
  uint64_t a = 0;
  uint64_t b = 0;
  uint64_t c = 0;
  uint64_t seq = 0;
  uint32_t slot = 0;
  uint32_t dur_ns = 0;
  uint32_t tlabel = 0;
  uint32_t olabel = 0;
  uint32_t kind = 0;  // trace::EventKind
  uint32_t code = 0;  // Status, two's complement
  uint32_t aux = 0;   // syscall kind / trace::StoreOp
  uint32_t gen = 0;   // label generation the ids were minted under (trace.h)
};
struct TraceReadRes {
  Status status = Status::kInvalidArg;
  uint64_t total = 0;     // events inspected across all slots
  uint64_t withheld = 0;  // events whose labels do not flow to the reader
  std::vector<TraceEventWire> events;
};

// ---- The variants -----------------------------------------------------------
//
// Alternative order is the ABI: SyscallRes alternative i+1 completes
// SyscallReq alternative i (SyscallRes index 0 is monostate, "unfilled").
// Appending new syscalls at the end keeps encoded descriptors stable.
using SyscallReq = std::variant<
    CatCreateReq, SelfSetLabelReq, SelfSetClearanceReq, SelfGetLabelReq, SelfGetClearanceReq,
    SelfSetAsReq, SelfGetAsReq, SelfHaltReq, ThreadCreateReq, ThreadAlertReq, SelfNextAlertReq,
    SelfLocalReadReq, SelfLocalWriteReq, ContainerCreateReq, ContainerUnrefReq,
    ContainerGetParentReq, ContainerListReq, ContainerLinkReq, ContainerHasReq, ObjGetTypeReq,
    ObjGetLabelReq, ObjGetDescripReq, ObjGetQuotaReq, ObjGetMetadataReq, ObjSetMetadataReq,
    ObjSetFixedQuotaReq, ObjSetImmutableReq, QuotaMoveReq, SegmentCreateReq, SegmentCopyReq,
    SegmentResizeReq, SegmentGetLenReq, SegmentReadReq, SegmentWriteReq, AsCreateReq, AsSetReq,
    AsGetReq, AsAccessReq, GateCreateReq, GateInvokeReq, GateGetClosureReq, FutexWaitReq,
    FutexWakeReq, NetMacAddrReq, NetTransmitReq, NetReceiveReq, NetWaitReq, ConsoleWriteReq,
    SyncReq, SyncObjectReq, SyncPagesReq, RingCreateReq, RingSubmitReq, RingWaitReq,
    RingReapReq, TraceReadReq>;

using SyscallRes = std::variant<
    std::monostate, CatCreateRes, SelfSetLabelRes, SelfSetClearanceRes, SelfGetLabelRes,
    SelfGetClearanceRes, SelfSetAsRes, SelfGetAsRes, SelfHaltRes, ThreadCreateRes,
    ThreadAlertRes, SelfNextAlertRes, SelfLocalReadRes, SelfLocalWriteRes, ContainerCreateRes,
    ContainerUnrefRes, ContainerGetParentRes, ContainerListRes, ContainerLinkRes,
    ContainerHasRes, ObjGetTypeRes, ObjGetLabelRes, ObjGetDescripRes, ObjGetQuotaRes,
    ObjGetMetadataRes, ObjSetMetadataRes, ObjSetFixedQuotaRes, ObjSetImmutableRes, QuotaMoveRes,
    SegmentCreateRes, SegmentCopyRes, SegmentResizeRes, SegmentGetLenRes, SegmentReadRes,
    SegmentWriteRes, AsCreateRes, AsSetRes, AsGetRes, AsAccessRes, GateCreateRes, GateInvokeRes,
    GateGetClosureRes, FutexWaitRes, FutexWakeRes, NetMacAddrRes, NetTransmitRes, NetReceiveRes,
    NetWaitRes, ConsoleWriteRes, SyncRes, SyncObjectRes, SyncPagesRes, RingCreateRes,
    RingSubmitRes, RingWaitRes, RingReapRes, TraceReadRes>;

inline constexpr size_t kNumSyscallKinds = std::variant_size_v<SyscallReq>;
static_assert(std::variant_size_v<SyscallRes> == kNumSyscallKinds + 1,
              "every request alternative needs exactly one completion alternative");

// Stable human-readable name for a SyscallReq alternative index ("unknown"
// out of range). The table in syscall_abi.cc is static_asserted against
// kNumSyscallKinds, so appending a descriptor without naming it is a
// compile error. Consumers: trace dumps, tools/tracefmt, docs.
const char* SyscallKindName(size_t index);

// One entry of a ring submission: the request itself plus the link flag and
// operand routing (defined after the variants because it embeds them).
struct RingOp {
  SyscallReq req;
  uint32_t flags = 0;               // kRingLinked
  RingSlot from = RingSlot::kNone;  // completion slot of the PREVIOUS entry
  RingSlot to = RingSlot::kNone;    // request slot of THIS entry to overwrite
};

// One reaped completion: the per-ring op sequence number plus the filled
// completion descriptor (kCancelled-status for ops a linked predecessor's
// failure cancelled).
struct RingCompletion {
  uint64_t seq = 0;
  SyscallRes res;
};

// ---- Chain/completion utilities (syscall_abi.cc) ----------------------------
//
// Every completion alternative leads with a Status; these helpers give the
// chain executor and ring machinery generic access to it without a 50-arm
// switch at each use site.
//
// The Status of a completion (kInvalidArg for an unfilled monostate).
Status ResStatus(const SyscallRes& res);
// Fills *out with the completion alternative matching `req`, carrying
// status `st` and default value fields (how cancelled ring ops complete).
void MakeRes(const SyscallReq& req, Status st, SyscallRes* out);
// Reads slot `slot` of a completion / overwrites slot `slot` of a request.
// False if the descriptor has no such slot (the chain executor cancels the
// consumer with kInvalidArg).
bool ResSlotRead(const SyscallRes& res, RingSlot slot, uint64_t* v);
bool ReqSlotWrite(SyscallReq* req, RingSlot slot, uint64_t v);

// ---- Field enumeration ------------------------------------------------------
//
// One AbiFields overload per descriptor returns a tuple of references to the
// fields in wire order; the encode/decode archives in syscall_abi.cc fold
// over it. Adding a field to a descriptor without touching its AbiFields
// line fails the round-trip property test (tests/kernel/syscall_abi_test.cc).
inline auto AbiFields(CatCreateReq&) { return std::tie(); }
inline auto AbiFields(SelfSetLabelReq& r) { return std::tie(r.label); }
inline auto AbiFields(SelfSetClearanceReq& r) { return std::tie(r.clearance); }
inline auto AbiFields(SelfGetLabelReq&) { return std::tie(); }
inline auto AbiFields(SelfGetClearanceReq&) { return std::tie(); }
inline auto AbiFields(SelfSetAsReq& r) { return std::tie(r.as); }
inline auto AbiFields(SelfGetAsReq&) { return std::tie(); }
inline auto AbiFields(SelfHaltReq&) { return std::tie(); }
inline auto AbiFields(ThreadCreateReq& r) { return std::tie(r.spec, r.label, r.clearance); }
inline auto AbiFields(ThreadAlertReq& r) { return std::tie(r.thread, r.code); }
inline auto AbiFields(SelfNextAlertReq&) { return std::tie(); }
inline auto AbiFields(SelfLocalReadReq& r) { return std::tie(r.buf, r.off, r.len); }
inline auto AbiFields(SelfLocalWriteReq& r) { return std::tie(r.buf, r.off, r.len); }
inline auto AbiFields(ContainerCreateReq& r) { return std::tie(r.spec, r.avoid_types); }
inline auto AbiFields(ContainerUnrefReq& r) { return std::tie(r.ce); }
inline auto AbiFields(ContainerGetParentReq& r) { return std::tie(r.container); }
inline auto AbiFields(ContainerListReq& r) { return std::tie(r.container); }
inline auto AbiFields(ContainerLinkReq& r) { return std::tie(r.container, r.src); }
inline auto AbiFields(ContainerHasReq& r) { return std::tie(r.container, r.obj); }
inline auto AbiFields(ObjGetTypeReq& r) { return std::tie(r.ce); }
inline auto AbiFields(ObjGetLabelReq& r) { return std::tie(r.ce); }
inline auto AbiFields(ObjGetDescripReq& r) { return std::tie(r.ce); }
inline auto AbiFields(ObjGetQuotaReq& r) { return std::tie(r.ce); }
inline auto AbiFields(ObjGetMetadataReq& r) { return std::tie(r.ce); }
inline auto AbiFields(ObjSetMetadataReq& r) { return std::tie(r.ce, r.data, r.len); }
inline auto AbiFields(ObjSetFixedQuotaReq& r) { return std::tie(r.ce); }
inline auto AbiFields(ObjSetImmutableReq& r) { return std::tie(r.ce); }
inline auto AbiFields(QuotaMoveReq& r) { return std::tie(r.d, r.o, r.n); }
inline auto AbiFields(SegmentCreateReq& r) { return std::tie(r.spec, r.len); }
inline auto AbiFields(SegmentCopyReq& r) { return std::tie(r.spec, r.src); }
inline auto AbiFields(SegmentResizeReq& r) { return std::tie(r.ce, r.len); }
inline auto AbiFields(SegmentGetLenReq& r) { return std::tie(r.ce); }
inline auto AbiFields(SegmentReadReq& r) { return std::tie(r.ce, r.buf, r.off, r.len); }
inline auto AbiFields(SegmentWriteReq& r) { return std::tie(r.ce, r.buf, r.off, r.len); }
inline auto AbiFields(AsCreateReq& r) { return std::tie(r.spec); }
inline auto AbiFields(AsSetReq& r) { return std::tie(r.ce, r.mappings); }
inline auto AbiFields(AsGetReq& r) { return std::tie(r.ce); }
inline auto AbiFields(AsAccessReq& r) { return std::tie(r.va, r.buf, r.len, r.write); }
inline auto AbiFields(GateCreateReq& r) {
  return std::tie(r.spec, r.gate_label, r.gate_clearance, r.entry_name, r.closure);
}
inline auto AbiFields(GateInvokeReq& r) {
  return std::tie(r.gate, r.request_label, r.request_clearance, r.verify_label);
}
inline auto AbiFields(GateGetClosureReq& r) { return std::tie(r.ce); }
inline auto AbiFields(FutexWaitReq& r) {
  return std::tie(r.seg, r.offset, r.expected, r.timeout_ms);
}
inline auto AbiFields(FutexWakeReq& r) { return std::tie(r.seg, r.offset, r.max_count); }
inline auto AbiFields(NetMacAddrReq& r) { return std::tie(r.dev); }
inline auto AbiFields(NetTransmitReq& r) { return std::tie(r.dev, r.seg, r.off, r.len); }
inline auto AbiFields(NetReceiveReq& r) { return std::tie(r.dev, r.seg, r.off, r.maxlen); }
inline auto AbiFields(NetWaitReq& r) { return std::tie(r.dev, r.timeout_ms); }
inline auto AbiFields(ConsoleWriteReq& r) { return std::tie(r.dev, r.text); }
inline auto AbiFields(SyncReq&) { return std::tie(); }
inline auto AbiFields(SyncObjectReq& r) { return std::tie(r.ce); }
inline auto AbiFields(SyncPagesReq& r) { return std::tie(r.ce, r.offset, r.len); }
inline auto AbiFields(RingCreateReq& r) { return std::tie(r.spec, r.capacity); }
inline auto AbiFields(RingSubmitReq& r) { return std::tie(r.ring, r.ops); }
inline auto AbiFields(RingWaitReq& r) { return std::tie(r.ring, r.ticket, r.timeout_ms); }
inline auto AbiFields(RingReapReq& r) { return std::tie(r.ring, r.max); }
inline auto AbiFields(TraceReadReq& r) { return std::tie(r.max_events); }

inline auto AbiFields(CatCreateRes& r) { return std::tie(r.status, r.cat); }
inline auto AbiFields(SelfSetLabelRes& r) { return std::tie(r.status); }
inline auto AbiFields(SelfSetClearanceRes& r) { return std::tie(r.status); }
inline auto AbiFields(SelfGetLabelRes& r) { return std::tie(r.status, r.label); }
inline auto AbiFields(SelfGetClearanceRes& r) { return std::tie(r.status, r.clearance); }
inline auto AbiFields(SelfSetAsRes& r) { return std::tie(r.status); }
inline auto AbiFields(SelfGetAsRes& r) { return std::tie(r.status, r.as); }
inline auto AbiFields(SelfHaltRes& r) { return std::tie(r.status); }
inline auto AbiFields(ThreadCreateRes& r) { return std::tie(r.status, r.id); }
inline auto AbiFields(ThreadAlertRes& r) { return std::tie(r.status); }
inline auto AbiFields(SelfNextAlertRes& r) { return std::tie(r.status, r.code); }
inline auto AbiFields(SelfLocalReadRes& r) { return std::tie(r.status); }
inline auto AbiFields(SelfLocalWriteRes& r) { return std::tie(r.status); }
inline auto AbiFields(ContainerCreateRes& r) { return std::tie(r.status, r.id); }
inline auto AbiFields(ContainerUnrefRes& r) { return std::tie(r.status); }
inline auto AbiFields(ContainerGetParentRes& r) { return std::tie(r.status, r.parent); }
inline auto AbiFields(ContainerListRes& r) { return std::tie(r.status, r.links); }
inline auto AbiFields(ContainerLinkRes& r) { return std::tie(r.status); }
inline auto AbiFields(ContainerHasRes& r) { return std::tie(r.status, r.has); }
inline auto AbiFields(ObjGetTypeRes& r) { return std::tie(r.status, r.type); }
inline auto AbiFields(ObjGetLabelRes& r) { return std::tie(r.status, r.label); }
inline auto AbiFields(ObjGetDescripRes& r) { return std::tie(r.status, r.descrip); }
inline auto AbiFields(ObjGetQuotaRes& r) { return std::tie(r.status, r.quota); }
inline auto AbiFields(ObjGetMetadataRes& r) { return std::tie(r.status, r.metadata); }
inline auto AbiFields(ObjSetMetadataRes& r) { return std::tie(r.status); }
inline auto AbiFields(ObjSetFixedQuotaRes& r) { return std::tie(r.status); }
inline auto AbiFields(ObjSetImmutableRes& r) { return std::tie(r.status); }
inline auto AbiFields(QuotaMoveRes& r) { return std::tie(r.status); }
inline auto AbiFields(SegmentCreateRes& r) { return std::tie(r.status, r.id); }
inline auto AbiFields(SegmentCopyRes& r) { return std::tie(r.status, r.id); }
inline auto AbiFields(SegmentResizeRes& r) { return std::tie(r.status); }
inline auto AbiFields(SegmentGetLenRes& r) { return std::tie(r.status, r.len); }
inline auto AbiFields(SegmentReadRes& r) { return std::tie(r.status); }
inline auto AbiFields(SegmentWriteRes& r) { return std::tie(r.status); }
inline auto AbiFields(AsCreateRes& r) { return std::tie(r.status, r.id); }
inline auto AbiFields(AsSetRes& r) { return std::tie(r.status); }
inline auto AbiFields(AsGetRes& r) { return std::tie(r.status, r.mappings); }
inline auto AbiFields(AsAccessRes& r) { return std::tie(r.status); }
inline auto AbiFields(GateCreateRes& r) { return std::tie(r.status, r.id); }
inline auto AbiFields(GateInvokeRes& r) { return std::tie(r.status); }
inline auto AbiFields(GateGetClosureRes& r) { return std::tie(r.status, r.closure); }
inline auto AbiFields(FutexWaitRes& r) { return std::tie(r.status); }
inline auto AbiFields(FutexWakeRes& r) { return std::tie(r.status, r.woken); }
inline auto AbiFields(NetMacAddrRes& r) { return std::tie(r.status, r.mac); }
inline auto AbiFields(NetTransmitRes& r) { return std::tie(r.status); }
inline auto AbiFields(NetReceiveRes& r) { return std::tie(r.status, r.len); }
inline auto AbiFields(NetWaitRes& r) { return std::tie(r.status); }
inline auto AbiFields(ConsoleWriteRes& r) { return std::tie(r.status); }
inline auto AbiFields(SyncRes& r) { return std::tie(r.status); }
inline auto AbiFields(SyncObjectRes& r) { return std::tie(r.status); }
inline auto AbiFields(SyncPagesRes& r) { return std::tie(r.status); }
inline auto AbiFields(RingCreateRes& r) { return std::tie(r.status, r.id); }
inline auto AbiFields(RingSubmitRes& r) { return std::tie(r.status, r.ticket); }
inline auto AbiFields(RingWaitRes& r) { return std::tie(r.status); }
inline auto AbiFields(RingReapRes& r) { return std::tie(r.status, r.completions); }
inline auto AbiFields(TraceEventWire& e) {
  return std::tie(e.ts_ns, e.a, e.b, e.c, e.seq, e.slot, e.dur_ns, e.tlabel,
                  e.olabel, e.kind, e.code, e.aux, e.gen);
}
inline auto AbiFields(TraceReadRes& r) {
  return std::tie(r.status, r.total, r.withheld, r.events);
}

inline auto AbiFields(CreateSpec& s) { return std::tie(s.container, s.label, s.descrip, s.quota); }
// Nested descriptors: the archives encode an embedded SyscallReq/SyscallRes
// as [u32 variant-index][fields] — the completion's index is stored raw
// (0 = monostate, unlike the top-level EncodeRes tag, so an unfilled
// completion inside a RingCompletion round-trips).
inline auto AbiFields(RingOp& o) { return std::tie(o.flags, o.from, o.to, o.req); }
inline auto AbiFields(RingCompletion& c) { return std::tie(c.seq, c.res); }
inline auto AbiFields(ContainerEntry& e) { return std::tie(e.container, e.object); }
inline auto AbiFields(Mapping& m) {
  return std::tie(m.va, m.segment, m.start_page, m.npages, m.flags);
}

// ---- Wire form --------------------------------------------------------------
//
// Descriptor layout (little-endian): [u32 alternative-index][fields in
// AbiFields order]. Integers are fixed-width LE; bools one byte; pointers
// 64-bit words; strings and byte/word vectors are u32-length-prefixed;
// labels use Label::Serialize; composite fields (CreateSpec, ContainerEntry,
// Mapping) recurse. Documented in docs/syscalls.md ("Batched submission").
void EncodeReq(const SyscallReq& req, std::vector<uint8_t>* out);
bool DecodeReq(const uint8_t* data, size_t len, size_t* consumed, SyscallReq* out);
void EncodeRes(const SyscallRes& res, std::vector<uint8_t>* out);
bool DecodeRes(const uint8_t* data, size_t len, size_t* consumed, SyscallRes* out);

}  // namespace histar

#endif  // SRC_KERNEL_SYSCALL_ABI_H_
