// Kernel core: construction, label-check helpers, containers, generic object
// syscalls, and the quota system.
//
// Locking convention used throughout the syscall implementations: the
// syscall computes the ObjectIds it will touch (self, the ⟨D,O⟩ entries,
// any freshly allocated id), takes ONE TableLock over their shards — shared
// for read-only paths, exclusive when anything is mutated — and holds it for
// the duration of the checks and the state change. Operations whose object
// set cannot be known up front (recursive destroy, alerts through a target's
// address space) take an all-shards TableLock. Futex wakeups happen after
// the table locks are released (futex_mu_ and shard locks never nest).
#include "src/kernel/kernel.h"

#include <algorithm>
#include <cstring>

#include "src/core/trace.h"
#include "src/kernel/ring.h"

namespace histar {

namespace {
thread_local ObjectId g_current_thread = kInvalidObject;
thread_local bool g_proxy_execution = false;
thread_local bool g_published_reads = false;
}  // namespace

ObjectId CurrentThread::Get() { return g_current_thread; }
void CurrentThread::Set(ObjectId id) { g_current_thread = id; }

ProxyExecution::ProxyExecution() : prev_(g_proxy_execution) { g_proxy_execution = true; }
ProxyExecution::~ProxyExecution() { g_proxy_execution = prev_; }
bool ProxyExecution::Active() { return g_proxy_execution; }

PublishedReadMode::PublishedReadMode() : prev_(g_published_reads) {
  g_published_reads = true;
}
PublishedReadMode::~PublishedReadMode() { g_published_reads = prev_; }
bool PublishedReadMode::Active() { return g_published_reads; }

bool Container::HasLink(ObjectId o) const {
  // Read through the published snapshot when one exists: it is identical to
  // links_ under any shard lock (mutators republish before unlocking), and
  // it is the only safe view for a lock-free reader (the live vector may be
  // reallocating under a concurrent LinkInto).
  const std::vector<ObjectId>* snap = links_snapshot();
  const std::vector<ObjectId>& v = snap != nullptr ? *snap : links_;
  return std::find(v.begin(), v.end(), o) != v.end();
}

const Mapping* AddressSpace::Lookup(uint64_t va) const {
  for (const Mapping& m : mappings_) {
    if (m.Covers(va)) {
      return &m;
    }
  }
  return nullptr;
}

Kernel::Kernel(size_t table_shards) : table_(table_shards) {
  // Flight-recorder events recorded while this kernel runs carry label ids
  // from ITS registry; publishing the registry's instance id as the
  // recorder's label generation is what lets sys_trace_read reject a stale
  // event whose id numerically collides with a live one (ids are dense per
  // instance, so collision — not Known() failure — is the common case
  // after an in-process reboot).
  trace::SetLabelGeneration(registry_.instance_id());
  // The root container: label {1}, quota ∞, never deallocated. Its "fake
  // parent" is labeled {3} in the paper; we model that by making the parent
  // id invalid and refusing get_parent on the root.
  Result<ObjectId> id = AllocObjectId();
  auto root = std::make_unique<Container>(id.value(), registry_.Intern(Label(Level::k1)), 0,
                                          kInvalidObject);
  root->set_quota_internal(kQuotaInfinite);
  root->set_descrip_internal("root");
  root->add_link_internal();  // permanent anchor link
  root_ = root->id();
  TableLock lk(table_, TableLock::Mode::kExclusive, {root_});
  InsertObject(std::move(root));
}

Kernel::~Kernel() {
  // Join the ring workers before any kernel state they execute against is
  // torn down (they hold no leases on anything else; see ring.h). Workers
  // never take ring_engine_mu_ themselves, so holding it across the join
  // cannot deadlock — and destruction has no concurrent syscalls anyway.
  MutexLock lk(&ring_engine_mu_);
  ring_engine_.reset();
}

// ---- boot -------------------------------------------------------------------

ObjectId Kernel::BootstrapThread(const Label& label, const Label& clearance,
                                 const std::string& descrip, ObjectId container) {
  if (container == kInvalidObject) {
    container = root_;
  }
  Result<ObjectId> id = AllocObjectId();
  TableLock lk(table_, TableLock::Mode::kExclusive, {container, id.value()});
  Container* d = GetContainer(container);
  if (d == nullptr) {
    return kInvalidObject;
  }
  auto t = std::make_unique<Thread>(id.value(), registry_.Intern(label),
                                    registry_.Intern(clearance));
  t->set_quota_internal(64 * kPageSize);
  t->set_descrip_internal(descrip);
  Thread* raw = t.get();
  InsertObject(std::move(t));
  LinkInto(d, raw);
  MarkDirty(raw->id());
  return raw->id();
}

ObjectId Kernel::BootstrapDevice(DeviceKind kind, const Label& label,
                                 const std::string& descrip) {
  Result<ObjectId> id = AllocObjectId();
  TableLock lk(table_, TableLock::Mode::kExclusive, {root_, id.value()});
  Container* d = GetContainer(root_);
  auto dev = std::make_unique<Device>(id.value(), registry_.Intern(label), kind);
  dev->set_quota_internal(64 * kPageSize);
  dev->set_descrip_internal(descrip);
  Device* raw = dev.get();
  InsertObject(std::move(dev));
  LinkInto(d, raw);
  MarkDirty(raw->id());
  return raw->id();
}

bool Kernel::AttachNetPort(ObjectId device, NetPort* port) {
  TableLock lk(table_, TableLock::Mode::kExclusive, {device});
  Object* o = Get(device);
  if (o == nullptr || o->type() != ObjectType::kDevice) {
    return false;
  }
  static_cast<Device*>(o)->set_net_port(port);
  return true;
}

void Kernel::RegisterGateEntry(const std::string& name, GateEntryFn fn) {
  MutexLock lock(&gate_entries_mu_);
  gate_entries_[name] = std::move(fn);
}

bool Kernel::HasGateEntry(const std::string& name) const {
  MutexLock lock(&gate_entries_mu_);
  return gate_entries_.count(name) > 0;
}

uint64_t Kernel::thread_syscall_count(ObjectId t) const {
  // A kernel thread's syscalls may have been charged from several host
  // threads (each charging into its own slot), so sum every slot's entry.
  uint64_t n = 0;
  for (CountSlot& slot : count_slots_) {
    MutexLock lock(&slot.mu);
    auto it = slot.counts.find(t);
    if (it != slot.counts.end()) {
      n += it->second;
    }
  }
  return n;
}

uint64_t Kernel::syscall_count() const {
  // The former global atomic is folded into the count slots: each slot's
  // `total` survives thread destruction (only the per-thread map entries are
  // erased), so the sum is exactly the old monotonic counter.
  uint64_t n = 0;
  for (CountSlot& slot : count_slots_) {
    MutexLock lock(&slot.mu);
    n += slot.total;
  }
  return n;
}

// ---- internal helpers (shard-lock requirements in kernel.h) ------------------

Object* Kernel::Get(ObjectId id) const {
  if (PublishedReadMode::Active()) {
    return table_.GetPublished(id);
  }
  return table_.GetLocked(id);
}

Thread* Kernel::GetThread(ObjectId id) const {
  Object* o = Get(id);
  if (o == nullptr || o->type() != ObjectType::kThread) {
    return nullptr;
  }
  Thread* t = static_cast<Thread*>(o);
#if HISTAR_TRACE
  // Taint stamp for the flight recorder: the FIRST thread a request
  // resolves is the acting thread (`self` resolves before any target), so
  // first-write-wins gives the event the actor's label.
  trace::StampThread(t->label_id());
#endif
  return t;
}

Container* Kernel::GetContainer(ObjectId id) const {
  Object* o = Get(id);
  return (o != nullptr && o->type() == ObjectType::kContainer) ? static_cast<Container*>(o)
                                                               : nullptr;
}

bool Kernel::CanObserve(const Thread& t, const Object& o) {
  // L_O ⊑ L_T^J. (Thread labels as observed objects are handled by the
  // caller where the §3.2 special rule applies; for alerts and similar the
  // plain rule is correct.) The raised form of the thread label is a
  // precomputed id — no shifted label is built per check.
  return registry_.Leq(o.label_id(), registry_.HiOf(t.label_id()));
}

bool Kernel::CanModifyLabels(const Thread& t, const Object& o) {
  // L_T ⊑ L_O ⊑ L_T^J — modification implies observation.
  return registry_.Leq(t.label_id(), o.label_id()) && CanObserve(t, o);
}

Status Kernel::CheckModify(const Thread& t, const Object& o) {
  if (!CanModifyLabels(t, o)) {
    return Status::kLabelCheckFailed;
  }
  if (o.immutable()) {
    return Status::kImmutable;
  }
  return Status::kOk;
}

Result<Object*> Kernel::ResolveEntry(const Thread& t, ContainerEntry ce) {
  // §3.2: for thread T to use ⟨D,O⟩, D must link O and T must read D
  // (L_D ⊑ L_T^J). Every container contains itself: ⟨D,D⟩ needs only the
  // read check on D.
  Container* d = GetContainer(ce.container);
  if (d == nullptr) {
    return Status::kNotFound;
  }
  if (!CanObserve(t, *d)) {
    return Status::kLabelCheckFailed;
  }
  if (ce.object == ce.container) {
#if HISTAR_TRACE
    trace::StampObject(d->id(), d->label_id());
#endif
    return static_cast<Object*>(d);
  }
  if (!d->HasLink(ce.object)) {
    return Status::kNotFound;
  }
  Object* o = Get(ce.object);
  if (o == nullptr) {
    return Status::kNotFound;
  }
#if HISTAR_TRACE
  // Last-write-wins: a request resolving several entries leaves the most
  // recently touched object's label on the event — for single-⟨D,O⟩
  // syscalls (the common case) that IS the operand object.
  trace::StampObject(o->id(), o->label_id());
#endif
  return o;
}

Result<Container*> Kernel::CheckCreate(const Thread& t, ObjectId d_id, const Label& l,
                                       ObjectType type, uint64_t quota, LabelId* out_lid) {
  Container* d = GetContainer(d_id);
  if (d == nullptr) {
    return Status::kNotFound;
  }
  // Creation requires write access to D...
  Status ms = CheckModify(t, *d);
  if (ms != Status::kOk) {
    return ms;
  }
  // ...a label within the creator's range L_T ⊑ L ⊑ C_T. Validated without
  // interning: `l` is caller-supplied and gets a registry entry only after
  // every check passes, so rejected creations cannot grow kernel state.
  if (!registry_.LeqWith(t.label_id(), l) || !registry_.LeqOf(l, t.clearance_id())) {
    return Status::kLabelCheckFailed;
  }
  // Object labels other than gates' may not contain ⋆ (Figure 3).
  if (type != ObjectType::kGate && type != ObjectType::kThread && l.HasLevel(Level::kStar)) {
    return Status::kInvalidArg;
  }
  // ...a type the container tree permits...
  if ((d->avoid_types() & TypeBit(type)) != 0) {
    return Status::kNoPerm;
  }
  // ...and quota headroom in D.
  if (quota == kQuotaInfinite && d->quota() != kQuotaInfinite) {
    return Status::kQuotaExceeded;
  }
  if (quota != kQuotaInfinite && ContainerFree(*d) < quota) {
    return Status::kQuotaExceeded;
  }
  *out_lid = registry_.Intern(l);
  return d;
}

Status Kernel::LinkInto(Container* d, Object* obj) {
  if (d->quota() != kQuotaInfinite) {
    uint64_t charge = obj->quota() == kQuotaInfinite ? 0 : obj->quota();
    if (ContainerFree(*d) < charge) {
      return Status::kQuotaExceeded;
    }
  }
  d->links_mutable().push_back(obj->id());
  // Republish the link snapshot for lock-free readers; the outgrown copy may
  // still be probed by a pinned reader, so it goes through the epoch layer.
  EpochDomain::Global().Retire(d->RepublishLinks());
  obj->add_link_internal();
  if (obj->quota() != kQuotaInfinite) {
    d->set_usage_internal(d->usage() + obj->quota());
  }
  MarkDirty(d->id());
  return Status::kOk;
}

void Kernel::UnlinkFrom(Container* d, ObjectId obj_id) {
  auto& links = d->links_mutable();
  auto it = std::find(links.begin(), links.end(), obj_id);
  if (it == links.end()) {
    return;
  }
  links.erase(it);
  EpochDomain::Global().Retire(d->RepublishLinks());
  Object* obj = Get(obj_id);
  if (obj != nullptr) {
    obj->drop_link_internal();
    if (obj->quota() != kQuotaInfinite) {
      d->set_usage_internal(d->usage() - obj->quota());
    }
  }
  MarkDirty(d->id());
}

void Kernel::DestroyObject(ObjectId id, std::vector<ObjectId>* destroyed_segments) {
  Object* o = Get(id);
  if (o == nullptr) {
    return;
  }
  if (o->type() == ObjectType::kContainer) {
    Container* c = static_cast<Container*>(o);
    // Recursively unreference the whole subtree (paper §3.2). The subtree
    // can land in any shard, which is why destroying a *container* requires
    // ALL shards exclusive (kernel.h); callers reach this case via
    // an all-shards TableLock (UnrefOnce escalates before it gets here).
    std::vector<ObjectId> children = c->links();
    for (ObjectId child : children) {
      Object* co = Get(child);
      if (co == nullptr) {
        continue;
      }
      co->drop_link_internal();
      if (co->link_count() == 0) {
        DestroyObject(child, destroyed_segments);
      }
    }
  } else if (o->type() == ObjectType::kSegment || o->type() == ObjectType::kRing) {
    // Both have volatile leaf-locked queue state keyed by their id (futex
    // queues / ring queues) that is torn down only after the shard locks
    // drop; the caller hands this list to WakeAllFutexes AND DropRings, and
    // each ignores ids of the other kind.
    destroyed_segments->push_back(id);
  }
  // Destroyed threads need no flag or futex wake: the erase below makes
  // every later GetThread return nullptr, which a wait by this thread
  // observes as kHalted at its next bounded-slice state peek (≤50 ms).
  {
    MutexLock dl(&dirty_mu_);
    dirty_.erase(id);
  }
  {
    MutexLock pl(&pf_mu_);
    pf_handlers_.erase(id);
  }
  // The destroyed thread may have been charged in any host thread's slot.
  for (CountSlot& slot : count_slots_) {
    MutexLock cl(&slot.mu);
    slot.counts.erase(id);
  }
  table_.EraseLocked(id);
}

uint64_t Kernel::ContainerFree(const Container& d) const {
  if (d.quota() == kQuotaInfinite) {
    return kQuotaInfinite;
  }
  uint64_t used = d.usage() + d.OwnUsage();
  return d.quota() > used ? d.quota() - used : 0;
}

void Kernel::MarkDirty(ObjectId id) {
  MutexLock lock(&dirty_mu_);
  dirty_[id] = ++dirty_seq_;
}

void Kernel::InsertObject(std::unique_ptr<Object> obj) {
  obj->set_creation_seq(creation_counter_.fetch_add(1, std::memory_order_relaxed) + 1);
  table_.InsertLocked(std::move(obj));
}

Result<ObjectId> Kernel::AllocObjectId() {
  // Called with no shard lock held (kernel.h): the existence probe takes the
  // candidate's shard briefly. The allocator is a counter behind a cipher,
  // so two concurrent calls never produce the same id — the probe only
  // guards against collision with restored objects.
  for (;;) {
    ObjectId id = objid_alloc_.Allocate();
    if (id == kLocalSegmentId) {
      continue;
    }
    TableLock lk(table_, TableLock::Mode::kShared, {id});
    if (!table_.ContainsLocked(id)) {
      return id;
    }
  }
}

void Kernel::CountSyscalls(ObjectId self, uint64_t n) {
  // One slot round-trip per *batch*: an N-entry submission charges all N
  // here, into the calling host thread's private slot — never contended
  // below kCountSlots live threads — and no global atomic is touched
  // (syscall_count() sums the slots).
  CountSlot& slot = CountSlotForCurrentThread();
  MutexLock lock(&slot.mu);
  slot.total += n;
  slot.counts[self] += n;
}

void Kernel::DoTraceRead(ObjectId self, uint32_t max_events, TraceReadRes* out) {
  // Resolve the reader and capture its raised label under a shared lock on
  // self's shard ONLY — the snapshot walk and the per-event Leq checks run
  // lock-free afterwards (the registry's warm Leq path takes no shard
  // lock), so a trace read never serializes against the syscall hot path
  // it is observing.
  LabelId reader_hi = kInvalidLabelId;
  {
    TableLock lk(table_, TableLock::Mode::kShared, {self});
    Thread* t = GetThread(self);
    if (t == nullptr) {
      out->status = Status::kNotFound;
      return;
    }
    reader_hi = registry_.HiOf(t->label_id());
  }

  uint32_t cap = max_events == 0 ? kTraceReadDefaultMax : max_events;
  if (cap > kTraceReadMaxEvents) {
    cap = kTraceReadMaxEvents;
  }

  std::vector<trace::SlotEvent> snap;
  trace::Snapshot(&snap);
  out->total = 0;
  out->withheld = 0;
  const uint32_t gen = registry_.instance_id();
  for (const trace::SlotEvent& se : snap) {
    const trace::Event& e = se.event;
    ++out->total;
    // §3 observe rule, applied per event: BOTH recorded labels must flow
    // to the reader's raised label (equivalent to their join flowing —
    // Leq distributes over join on the left). Label id 0 means "no label
    // recorded", which carries no information and always flows. A labeled
    // event from a different label generation (the recorder outlives
    // kernel instances, so events stamped under a previous instance's
    // registry can linger — the crash-recovery tests reboot dozens of
    // kernels in one process) cannot be interpreted: ids are dense per
    // instance, so a stale id usually COLLIDES with a currently-issued id
    // rather than failing Known(), and Leq against the colliding label
    // would be checking the wrong label entirely. Different generation ⇒
    // does not flow; Known() stays as the bounds check for malformed ids
    // within the current generation.
    const bool same_gen = e.gen == gen;
    auto flows = [&](LabelId l) {
      return l == kInvalidLabelId ||
             (same_gen && registry_.Known(l) && registry_.Leq(l, reader_hi));
    };
    bool visible = flows(e.tlabel) && flows(e.olabel);
    if (!visible) {
      // Counted-but-withheld: the aggregate count is label-safe (it
      // reveals that secret activity exists, not what it was — the same
      // information the paper's resource-exhaustion channels already
      // concede), pinned by tests/kernel/trace_flow_test.cc.
      ++out->withheld;
      continue;
    }
    if (out->events.size() >= cap) {
      continue;  // keep counting total/withheld past the cap
    }
    TraceEventWire w;
    w.ts_ns = e.ts_ns;
    w.a = e.a;
    w.b = e.b;
    w.c = e.c;
    w.seq = se.seq;
    w.slot = se.slot;
    w.dur_ns = e.dur_ns;
    w.tlabel = e.tlabel;
    w.olabel = e.olabel;
    w.gen = e.gen;
    w.kind = e.kind;
    w.code = static_cast<uint32_t>(static_cast<int32_t>(e.code));
    w.aux = e.aux;
    out->events.push_back(w);
  }
  out->status = Status::kOk;
}

void Kernel::WakeAllFutexes(const std::vector<ObjectId>& segs) {
  if (segs.empty()) {
    return;
  }
  MutexLock lock(&futex_mu_);
  for (auto& [key, q] : futexes_) {
    if (std::find(segs.begin(), segs.end(), key.seg) != segs.end()) {
      ++q->wake_seq;
      q->wake_budget += q->waiters;
      q->cv.NotifyAll();
    }
  }
}

// ---- containers ---------------------------------------------------------------
//
// Syscall bodies below are the *Locked / Do* halves of the batched ABI
// (kernel_batch.cc): *Locked bodies run under a TableLock the dispatcher
// already holds over their BatchPlan footprint; Do* bodies take their own
// locks exactly as the pre-batch syscalls did. The public sys_* wrappers
// (one-element batches) live in kernel_batch.cc.

Result<ObjectId> Kernel::ContainerCreateLocked(ObjectId self, const CreateSpec& spec,
                                               uint32_t avoid_types, ObjectId new_id) {
  Thread* t = GetThread(self);
  if (t == nullptr || t->halted()) {
    return Status::kHalted;
  }
  LabelId lid = kInvalidLabelId;
  Result<Container*> d = CheckCreate(*t, spec.container, spec.label, ObjectType::kContainer,
                                     spec.quota, &lid);
  if (!d.ok()) {
    return d.status();
  }
  // avoid_types restrictions are inherited by all descendants.
  uint32_t avoid = avoid_types | d.value()->avoid_types();
  auto c = std::make_unique<Container>(new_id, lid, avoid, spec.container);
  c->set_quota_internal(spec.quota);
  c->set_descrip_internal(spec.descrip);
  Container* raw = c.get();
  InsertObject(std::move(c));
  Status ls = LinkInto(d.value(), raw);
  if (ls != Status::kOk) {
    table_.EraseLocked(raw->id());
    return ls;
  }
  MarkDirty(raw->id());
  return raw->id();
}

Status Kernel::UnrefOnce(ObjectId self, ContainerEntry ce, bool allow_destroy,
                         bool* need_all, std::vector<ObjectId>* destroyed) {
  *need_all = false;
  Thread* t = GetThread(self);
  if (t == nullptr || t->halted()) {
    return Status::kHalted;
  }
  Container* d = GetContainer(ce.container);
  if (d == nullptr) {
    return Status::kNotFound;
  }
  // Unreferencing requires write access on D — and nothing about O. This
  // is the §3.2 point: resource revocation is separate from access.
  Status ms = CheckModify(*t, *d);
  if (ms != Status::kOk) {
    return ms;
  }
  if (ce.object == ce.container || ce.object == root_) {
    return Status::kInvalidArg;  // the root (and self-entries) cannot be unlinked
  }
  if (!d->HasLink(ce.object)) {
    return Status::kNotFound;
  }
  Object* o = Get(ce.object);
  if (o != nullptr && o->link_count() == 1 && o->type() == ObjectType::kContainer &&
      !allow_destroy) {
    // Dropping a container's last link destroys its whole subtree, which
    // can reach any shard; back out untouched and let the caller retake
    // all shards. Non-containers destroy in place: their teardown touches
    // only their own shard (held exclusive here) plus leaf maps.
    *need_all = true;
    return Status::kOk;
  }
  UnlinkFrom(d, ce.object);
  if (o != nullptr && o->link_count() == 0) {
    DestroyObject(ce.object, destroyed);
  }
  return Status::kOk;
}

Status Kernel::DoContainerUnref(ObjectId self, ContainerEntry ce) {
  std::vector<ObjectId> destroyed;
  Status st;
  bool need_all = false;
  {
    // Fast path: the common non-destroying unlink (hard links remain)
    // touches only D and O, so targeted exclusive locks suffice.
    TableLock lk(table_, TableLock::Mode::kExclusive, {self, ce.container, ce.object});
    st = UnrefOnce(self, ce, /*allow_destroy=*/false, &need_all, &destroyed);
  }
  if (need_all) {
    // Destroy path: recursive destruction can reach any shard — the
    // canonical cross-shard operation, every shard exclusive (ascending
    // order inside TableLock). All checks re-run under the new lock; the
    // world may have changed in the gap (another unref may even have won
    // the race, in which case this reports kNotFound, same as if it had
    // run second under the old big lock).
    TableLock lk(table_, TableLock::Mode::kExclusive, TableLock::AllShards{});
    st = UnrefOnce(self, ce, /*allow_destroy=*/true, &need_all, &destroyed);
  }
  // Futex wakeups and ring teardown strictly after the shard locks drop
  // (lock hierarchy: futex_mu_ and the ring mutexes are leaves that never
  // nest with shard locks).
  WakeAllFutexes(destroyed);
  DropRings(destroyed);
  return st;
}

Result<ObjectId> Kernel::ContainerGetParentLocked(ObjectId self, ObjectId container) {
  Thread* t = GetThread(self);
  if (t == nullptr || t->halted()) {
    return Status::kHalted;
  }
  Container* d = GetContainer(container);
  if (d == nullptr) {
    return Status::kNotFound;
  }
  if (!CanObserve(*t, *d)) {
    return Status::kLabelCheckFailed;
  }
  if (d->parent() == kInvalidObject) {
    // The root's fake parent is labeled {3}: unobservable by anyone.
    return Status::kLabelCheckFailed;
  }
  return d->parent();
}

Result<std::vector<ObjectId>> Kernel::ContainerListLocked(ObjectId self, ObjectId container) {
  Thread* t = GetThread(self);
  if (t == nullptr || t->halted()) {
    return Status::kHalted;
  }
  Container* d = GetContainer(container);
  if (d == nullptr) {
    return Status::kNotFound;
  }
  if (!CanObserve(*t, *d)) {
    return Status::kLabelCheckFailed;
  }
  // Copy out of the published snapshot (identical to links_ under a lock,
  // and the only stable view for a lock-free reader).
  const std::vector<ObjectId>* snap = d->links_snapshot();
  return snap != nullptr ? *snap : d->links();
}

Status Kernel::ContainerLinkLocked(ObjectId self, ObjectId container, ContainerEntry src) {
  Thread* t = GetThread(self);
  if (t == nullptr || t->halted()) {
    return Status::kHalted;
  }
  Result<Object*> o = ResolveEntry(*t, src);
  if (!o.ok()) {
    return o.status();
  }
  Container* d = GetContainer(container);
  if (d == nullptr) {
    return Status::kNotFound;
  }
  Status ms = CheckModify(*t, *d);
  if (ms != Status::kOk) {
    return ms;
  }
  // Hard-linking prolongs the object's life; the creator must have clearance
  // to allocate at the object's label (L_S ⊑ C_T, §3.2)...
  if (!registry_.Leq(o.value()->label_id(), t->clearance_id())) {
    return Status::kLabelCheckFailed;
  }
  // ...and the object's quota must be frozen first (§3.3).
  if (!o.value()->fixed_quota()) {
    return Status::kNoPerm;
  }
  if (d->HasLink(o.value()->id())) {
    return Status::kExists;
  }
  return LinkInto(d, o.value());
}

Result<bool> Kernel::ContainerHasLocked(ObjectId self, ObjectId container, ObjectId obj) {
  Thread* t = GetThread(self);
  if (t == nullptr || t->halted()) {
    return Status::kHalted;
  }
  Container* d = GetContainer(container);
  if (d == nullptr) {
    return Status::kNotFound;
  }
  if (!CanObserve(*t, *d)) {
    return Status::kLabelCheckFailed;
  }
  return d->HasLink(obj);
}

// ---- generic object syscalls ---------------------------------------------------

Result<ObjectType> Kernel::ObjGetTypeLocked(ObjectId self, ContainerEntry ce) {
  Thread* t = GetThread(self);
  if (t == nullptr || t->halted()) {
    return Status::kHalted;
  }
  Result<Object*> o = ResolveEntry(*t, ce);
  if (!o.ok()) {
    return o.status();
  }
  return o.value()->type();
}

Result<Label> Kernel::ObjGetLabelLocked(ObjectId self, ContainerEntry ce) {
  Thread* t = GetThread(self);
  if (t == nullptr || t->halted()) {
    return Status::kHalted;
  }
  Result<Object*> o = ResolveEntry(*t, ce);
  if (!o.ok()) {
    return o.status();
  }
  if (o.value()->type() == ObjectType::kThread) {
    // Thread labels are mutable, so being able to use the entry is not
    // enough: §3.2 requires L_T'^J ⊑ L_T^J. Both raised forms are
    // precomputed registry ids, so this is one memoized probe.
    const Thread* other = static_cast<const Thread*>(o.value());
    if (!registry_.Leq(registry_.HiOf(other->label_id()), registry_.HiOf(t->label_id()))) {
      return Status::kLabelCheckFailed;
    }
  }
  return LabelOf(*o.value());
}

Result<std::string> Kernel::ObjGetDescripLocked(ObjectId self, ContainerEntry ce) {
  Thread* t = GetThread(self);
  if (t == nullptr || t->halted()) {
    return Status::kHalted;
  }
  Result<Object*> o = ResolveEntry(*t, ce);
  if (!o.ok()) {
    return o.status();
  }
  return o.value()->descrip();
}

Result<uint64_t> Kernel::ObjGetQuotaLocked(ObjectId self, ContainerEntry ce) {
  Thread* t = GetThread(self);
  if (t == nullptr || t->halted()) {
    return Status::kHalted;
  }
  Result<Object*> o = ResolveEntry(*t, ce);
  if (!o.ok()) {
    return o.status();
  }
  // Quota is observable state: require observation of O itself.
  if (!CanObserve(*t, *o.value())) {
    return Status::kLabelCheckFailed;
  }
  return o.value()->quota();
}

Result<std::vector<uint8_t>> Kernel::ObjGetMetadataLocked(ObjectId self, ContainerEntry ce) {
  Thread* t = GetThread(self);
  if (t == nullptr || t->halted()) {
    return Status::kHalted;
  }
  Result<Object*> o = ResolveEntry(*t, ce);
  if (!o.ok()) {
    return o.status();
  }
  if (!CanObserve(*t, *o.value())) {
    return Status::kLabelCheckFailed;
  }
  const auto& md = o.value()->metadata();
  return std::vector<uint8_t>(md.begin(), md.end());
}

Status Kernel::ObjSetMetadataLocked(ObjectId self, ContainerEntry ce, const void* data,
                                    size_t len) {
  Thread* t = GetThread(self);
  if (t == nullptr || t->halted()) {
    return Status::kHalted;
  }
  if (len > kMetadataLen) {
    return Status::kRange;
  }
  Result<Object*> o = ResolveEntry(*t, ce);
  if (!o.ok()) {
    return o.status();
  }
  Status ms = CheckModify(*t, *o.value());
  if (ms != Status::kOk) {
    return ms;
  }
  memcpy(o.value()->metadata_mutable().data(), data, len);
  MarkDirty(o.value()->id());
  return Status::kOk;
}

Status Kernel::ObjSetFixedQuotaLocked(ObjectId self, ContainerEntry ce) {
  Thread* t = GetThread(self);
  if (t == nullptr || t->halted()) {
    return Status::kHalted;
  }
  Result<Object*> o = ResolveEntry(*t, ce);
  if (!o.ok()) {
    return o.status();
  }
  Status ms = CheckModify(*t, *o.value());
  if (ms != Status::kOk) {
    return ms;
  }
  o.value()->set_fixed_quota_internal();
  MarkDirty(o.value()->id());
  return Status::kOk;
}

Status Kernel::ObjSetImmutableLocked(ObjectId self, ContainerEntry ce) {
  Thread* t = GetThread(self);
  if (t == nullptr || t->halted()) {
    return Status::kHalted;
  }
  Result<Object*> o = ResolveEntry(*t, ce);
  if (!o.ok()) {
    return o.status();
  }
  Status ms = CheckModify(*t, *o.value());
  if (ms != Status::kOk) {
    return ms;
  }
  o.value()->set_immutable_internal();
  MarkDirty(o.value()->id());
  return Status::kOk;
}

Status Kernel::QuotaMoveLocked(ObjectId self, ObjectId d_id, ObjectId o_id, int64_t n) {
  // D and O hash to independent shards; this is the cross-shard quota-move
  // the lock hierarchy exists for (both shards exclusive, ascending order).
  Thread* t = GetThread(self);
  if (t == nullptr || t->halted()) {
    return Status::kHalted;
  }
  Container* d = GetContainer(d_id);
  if (d == nullptr) {
    return Status::kNotFound;
  }
  // §3.3: T must write D and have L_T ⊑ L_O ⊑ C_T.
  Status ms = CheckModify(*t, *d);
  if (ms != Status::kOk) {
    return ms;
  }
  if (!d->HasLink(o_id)) {
    return Status::kNotFound;
  }
  Object* o = Get(o_id);
  if (o == nullptr) {
    return Status::kNotFound;
  }
  if (!registry_.Leq(t->label_id(), o->label_id()) ||
      !registry_.Leq(o->label_id(), t->clearance_id())) {
    return Status::kLabelCheckFailed;
  }
  if (o->fixed_quota()) {
    return Status::kImmutable;
  }
  if (o->quota() == kQuotaInfinite) {
    return Status::kInvalidArg;
  }
  if (n < 0) {
    // Shrinking returns an error when O has fewer than |n| spare bytes, which
    // conveys information about O — hence the extra L_O ⊑ L_T^J requirement.
    if (!CanObserve(*t, *o)) {
      return Status::kLabelCheckFailed;
    }
    uint64_t shrink = static_cast<uint64_t>(-n);
    uint64_t spare = o->quota() - o->OwnUsage();
    if (o->type() == ObjectType::kContainer) {
      const Container* oc = static_cast<const Container*>(o);
      uint64_t used = oc->usage() + oc->OwnUsage();
      spare = o->quota() > used ? o->quota() - used : 0;
    }
    if (spare < shrink) {
      return Status::kQuotaExceeded;
    }
    o->set_quota_internal(o->quota() - shrink);
    if (d->quota() != kQuotaInfinite) {
      d->set_usage_internal(d->usage() - shrink);
    }
  } else {
    uint64_t grow = static_cast<uint64_t>(n);
    if (ContainerFree(*d) < grow) {
      return Status::kQuotaExceeded;
    }
    o->set_quota_internal(o->quota() + grow);
    if (d->quota() != kQuotaInfinite) {
      d->set_usage_internal(d->usage() + grow);
    }
  }
  MarkDirty(d_id);
  MarkDirty(o_id);
  return Status::kOk;
}

// ---- introspection ---------------------------------------------------------------

bool Kernel::ObjectExists(ObjectId id) const {
  TableLock lk(table_, TableLock::Mode::kShared, {id});
  return table_.ContainsLocked(id);
}

size_t Kernel::ObjectCount() const {
  TableLock lk(table_, TableLock::Mode::kShared, TableLock::AllShards{});
  return table_.SizeLocked();
}

std::string Kernel::ConsoleContents(ObjectId dev) const {
  TableLock lk(table_, TableLock::Mode::kShared, {dev});
  Object* o = Get(dev);
  if (o == nullptr || o->type() != ObjectType::kDevice) {
    return "";
  }
  return static_cast<Device*>(o)->console_buffer();
}

}  // namespace histar
