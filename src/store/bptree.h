// B+-tree with fixed-size keys and values (paper §4).
//
// The single-level store keeps three of these, exactly as the paper
// describes: object ID → disk extent, free extents indexed by size (for
// allocation), and free extents indexed by location (for coalescing). The
// paper notes that fixed-size keys and values "significantly simplified"
// the implementation; we keep that property — Key and Value are PODs with a
// total order on Key.
//
// Leaves are linked for range scans. Nodes are heap-allocated; the tree
// serializes itself to a flat byte image for checkpointing, which stands in
// for the on-disk node layout.
#ifndef SRC_STORE_BPTREE_H_
#define SRC_STORE_BPTREE_H_

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "src/store/store_alloc.h"

namespace histar {

// Composite 128-bit key with lexicographic order, used by the free-by-size
// tree ((size, offset) pairs) so equal-sized extents stay distinct.
struct Key128 {
  uint64_t hi = 0;
  uint64_t lo = 0;

  friend bool operator<(const Key128& a, const Key128& b) {
    return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
  }
  friend bool operator==(const Key128& a, const Key128& b) {
    return a.hi == b.hi && a.lo == b.lo;
  }
};

// Disk extent: where an object's serialized image lives.
struct Extent {
  uint64_t offset = 0;
  uint64_t length = 0;

  friend bool operator==(const Extent&, const Extent&) = default;
};

template <typename Key, typename Value, int kFanout = 64>
class BPlusTree {
  static_assert(kFanout >= 4, "fanout too small");

 public:
  BPlusTree() { root_ = NewLeaf(); }

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Inserts or overwrites. The allocation-failure check sits before the
  // descent so an injected failure never splits a node halfway.
  void Insert(const Key& k, const Value& v) {
    StoreAlloc::Check();
    InsertResult r = InsertRec(root_.get(), k, v);
    if (r.split) {
      auto new_root = std::make_unique<Node>();
      new_root->is_leaf = false;
      new_root->keys.push_back(r.split_key);
      new_root->children.push_back(std::move(root_));
      new_root->children.push_back(std::move(r.right));
      root_ = std::move(new_root);
    }
  }

  // Removes k; returns false if absent. (No rebalancing on delete — nodes
  // may underfill, which is acceptable for the store's workloads and keeps
  // deletion simple; the tree is rebuilt compactly at every checkpoint.)
  bool Erase(const Key& k) {
    bool erased = EraseRec(root_.get(), k);
    if (erased) {
      --size_;
      CollapseRoot();
    }
    return erased;
  }

  std::optional<Value> Find(const Key& k) const {
    const Node* n = root_.get();
    while (!n->is_leaf) {
      n = n->children[ChildIndex(n, k)].get();
    }
    for (size_t i = 0; i < n->keys.size(); ++i) {
      if (n->keys[i] == k) {
        return n->values[i];
      }
    }
    return std::nullopt;
  }

  // First entry with key ≥ k (the allocator's best-fit probe).
  std::optional<std::pair<Key, Value>> FirstGeq(const Key& k) const {
    const Node* n = root_.get();
    while (!n->is_leaf) {
      n = n->children[ChildIndex(n, k)].get();
    }
    while (n != nullptr) {
      for (size_t i = 0; i < n->keys.size(); ++i) {
        if (!(n->keys[i] < k)) {
          return std::make_pair(n->keys[i], n->values[i]);
        }
      }
      n = n->next_leaf;
    }
    return std::nullopt;
  }

  // Greatest entry with key < k (the coalescer's left-neighbor probe).
  std::optional<std::pair<Key, Value>> LastLess(const Key& k) const {
    std::optional<std::pair<Key, Value>> best;
    const Node* n = root_.get();
    // Walk down, remembering the rightmost key < k seen on the path; then a
    // linear leaf scan. Simpler: scan leaves from the front — but that is
    // O(n); instead descend toward k and scan the leaf plus its predecessor
    // chain is not linked backwards, so collect from the subtree walk.
    n = root_.get();
    while (!n->is_leaf) {
      n = n->children[ChildIndex(n, k)].get();
    }
    // All keys < k in this leaf are candidates.
    for (size_t i = 0; i < n->keys.size(); ++i) {
      if (n->keys[i] < k) {
        best = std::make_pair(n->keys[i], n->values[i]);
      }
    }
    if (best.has_value()) {
      return best;
    }
    // Fall back: the predecessor lives in an earlier leaf. Rare path; do a
    // bounded re-descent for the maximal key < k.
    return LastLessSlow(k);
  }

  void ForEach(const std::function<void(const Key&, const Value&)>& fn) const {
    const Node* n = root_.get();
    while (!n->is_leaf) {
      n = n->children[0].get();
    }
    while (n != nullptr) {
      for (size_t i = 0; i < n->keys.size(); ++i) {
        fn(n->keys[i], n->values[i]);
      }
      n = n->next_leaf;
    }
  }

  void Clear() {
    root_ = NewLeaf();
    size_ = 0;
  }

  // Depth of the tree (diagnostics; 1 = just a leaf).
  int Height() const {
    int h = 1;
    const Node* n = root_.get();
    while (!n->is_leaf) {
      ++h;
      n = n->children[0].get();
    }
    return h;
  }

  // Flat serialization: [count][key value]... (keys ascending). Rebuilding
  // by bulk insertion yields a compact tree.
  void Serialize(std::vector<uint8_t>* out) const {
    uint64_t count = size_;
    const uint8_t* p = reinterpret_cast<const uint8_t*>(&count);
    out->insert(out->end(), p, p + 8);
    ForEach([out](const Key& k, const Value& v) {
      const uint8_t* kp = reinterpret_cast<const uint8_t*>(&k);
      out->insert(out->end(), kp, kp + sizeof(Key));
      const uint8_t* vp = reinterpret_cast<const uint8_t*>(&v);
      out->insert(out->end(), vp, vp + sizeof(Value));
    });
  }

  bool Deserialize(const uint8_t* data, size_t len, size_t* consumed) {
    StoreAlloc::Check();
    if (len < 8) {
      return false;
    }
    uint64_t count;
    memcpy(&count, data, 8);
    size_t need = 8 + count * (sizeof(Key) + sizeof(Value));
    if (len < need) {
      return false;
    }
    Clear();
    size_t pos = 8;
    for (uint64_t i = 0; i < count; ++i) {
      Key k;
      Value v;
      memcpy(&k, data + pos, sizeof(Key));
      pos += sizeof(Key);
      memcpy(&v, data + pos, sizeof(Value));
      pos += sizeof(Value);
      Insert(k, v);
    }
    if (consumed != nullptr) {
      *consumed = need;
    }
    return true;
  }

 private:
  struct Node {
    bool is_leaf = true;
    std::vector<Key> keys;
    std::vector<Value> values;                    // leaves only
    std::vector<std::unique_ptr<Node>> children;  // interior only
    Node* next_leaf = nullptr;                    // leaf chain
  };

  struct InsertResult {
    bool split = false;
    bool inserted = false;
    Key split_key{};
    std::unique_ptr<Node> right;
  };

  static std::unique_ptr<Node> NewLeaf() { return std::make_unique<Node>(); }

  // Index of the child subtree that may contain k.
  static size_t ChildIndex(const Node* n, const Key& k) {
    size_t i = 0;
    while (i < n->keys.size() && !(k < n->keys[i])) {
      ++i;
    }
    return i;
  }

  InsertResult InsertRec(Node* n, const Key& k, const Value& v) {
    InsertResult result;
    if (n->is_leaf) {
      size_t i = 0;
      while (i < n->keys.size() && n->keys[i] < k) {
        ++i;
      }
      if (i < n->keys.size() && n->keys[i] == k) {
        n->values[i] = v;  // overwrite
        return result;
      }
      n->keys.insert(n->keys.begin() + static_cast<ptrdiff_t>(i), k);
      n->values.insert(n->values.begin() + static_cast<ptrdiff_t>(i), v);
      ++size_;
      result.inserted = true;
      if (n->keys.size() > kFanout) {
        result.split = true;
        result.right = SplitLeaf(n, &result.split_key);
      }
      return result;
    }
    size_t ci = ChildIndex(n, k);
    InsertResult child = InsertRec(n->children[ci].get(), k, v);
    result.inserted = child.inserted;
    if (child.split) {
      n->keys.insert(n->keys.begin() + static_cast<ptrdiff_t>(ci), child.split_key);
      n->children.insert(n->children.begin() + static_cast<ptrdiff_t>(ci) + 1,
                         std::move(child.right));
      if (n->keys.size() > kFanout) {
        result.split = true;
        result.right = SplitInterior(n, &result.split_key);
      }
    }
    return result;
  }

  std::unique_ptr<Node> SplitLeaf(Node* n, Key* up_key) {
    auto right = std::make_unique<Node>();
    size_t mid = n->keys.size() / 2;
    right->keys.assign(n->keys.begin() + static_cast<ptrdiff_t>(mid), n->keys.end());
    right->values.assign(n->values.begin() + static_cast<ptrdiff_t>(mid), n->values.end());
    n->keys.resize(mid);
    n->values.resize(mid);
    right->next_leaf = n->next_leaf;
    n->next_leaf = right.get();
    *up_key = right->keys.front();
    return right;
  }

  std::unique_ptr<Node> SplitInterior(Node* n, Key* up_key) {
    auto right = std::make_unique<Node>();
    right->is_leaf = false;
    size_t mid = n->keys.size() / 2;
    *up_key = n->keys[mid];
    right->keys.assign(n->keys.begin() + static_cast<ptrdiff_t>(mid) + 1, n->keys.end());
    for (size_t i = mid + 1; i < n->children.size(); ++i) {
      right->children.push_back(std::move(n->children[i]));
    }
    n->keys.resize(mid);
    n->children.resize(mid + 1);
    return right;
  }

  bool EraseRec(Node* n, const Key& k) {
    if (n->is_leaf) {
      for (size_t i = 0; i < n->keys.size(); ++i) {
        if (n->keys[i] == k) {
          n->keys.erase(n->keys.begin() + static_cast<ptrdiff_t>(i));
          n->values.erase(n->values.begin() + static_cast<ptrdiff_t>(i));
          return true;
        }
      }
      return false;
    }
    return EraseRec(n->children[ChildIndex(n, k)].get(), k);
  }

  void CollapseRoot() {
    while (!root_->is_leaf && root_->children.size() == 1) {
      root_ = std::move(root_->children[0]);
    }
  }

  std::optional<std::pair<Key, Value>> LastLessSlow(const Key& k) const {
    std::optional<std::pair<Key, Value>> best;
    const Node* n = root_.get();
    while (!n->is_leaf) {
      n = n->children[0].get();
    }
    while (n != nullptr) {
      for (size_t i = 0; i < n->keys.size(); ++i) {
        if (n->keys[i] < k) {
          best = std::make_pair(n->keys[i], n->values[i]);
        } else {
          return best;
        }
      }
      n = n->next_leaf;
    }
    return best;
  }

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace histar

#endif  // SRC_STORE_BPTREE_H_
