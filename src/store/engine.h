// The storage-engine seam under the single-level store (PR 8).
//
// SingleLevelStore keeps everything the paper's commit protocol owns —
// superblock slots, the WAL, the accumulated label table, the checkpoint
// section chain, commit orchestration (allocate → write → flush → superblock
// flip → release superseded extents) and recovery orchestration. A
// StoreEngine owns the rest: where object images live on the heap and what a
// checkpoint section's body says about them. Two engines implement the
// interface:
//
//   BlobEngine   (engine.cc)  the original path: every object is a blob in
//                             its own extent, a B+-tree object map records
//                             (extent, meta_len), sections carry map records.
//   BetreeEngine (betree.cc)  the write-optimized path: object updates are
//                             typed messages (msg.h) staged in a Bε-tree;
//                             increments are message batches, a base flushes
//                             the tree and names only the root extent.
//
// Every section records the engine that wrote it (a byte in the header, see
// docs/persistence.md); recovery adopts the on-disk engine regardless of the
// configured tuning, so a disk formatted under one engine always boots.
//
// Failure discipline matches the store's (docs/persistence.md "Fault
// model"): the caller's entry StoreAlloc::Check() is the only injection
// point; once an engine mutation has started, nested checks are suppressed
// with StoreAllocNoFail. Engines shadow-write: a failed device write frees
// the fresh extent and leaves prior state intact, and superseded extents go
// to ctx_.pending_frees for the store to release only after the flip.
#ifndef SRC_STORE_ENGINE_H_
#define SRC_STORE_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/store/bptree.h"
#include "src/store/disk_model.h"
#include "src/store/extent_alloc.h"
#include "src/store/wire_format.h"

namespace histar {

// Values are on-disk (the section header's engine byte): never renumber.
enum class EngineKind : uint8_t {
  kBlob = 0,
  kBetree = 1,
};

// Bε-tree shape knobs (StoreTuning carries these; plumbed through
// MakeStoreEngine so engine.h stays independent of single_level_store.h).
struct BetreeParams {
  uint64_t node_bytes = 64 << 10;         // leaf split target
  uint64_t buffer_bytes = 64 << 10;       // interior-node buffer cap
  uint64_t root_buffer_bytes = 4 << 20;   // staged bytes before a base flush
  uint32_t fanout = 16;                   // max children per interior node
};

// What the store lends an engine. All pointers outlive the engine and are
// only touched under the store's lock.
struct EngineContext {
  DiskModel* disk = nullptr;
  ExtentAllocator* alloc = nullptr;
  // Extents superseded mid-commit; the store frees them after the flip.
  std::vector<Extent>* pending_frees = nullptr;
};

// FNV-1a over bytes — the store's torn-write checksum (not cryptographic).
uint64_t StoreChecksum(const void* data, size_t len);

class StoreEngine {
 public:
  // Receives label records an engine finds inside its section body (the
  // Bε-tree's kLabelDelta messages); feeds the store's label table.
  using LabelSink = std::function<void(uint32_t, std::vector<uint8_t>)>;
  // Receives one complete object image (checksum stripped) during boot.
  using ObjectSink = std::function<Status(const std::vector<uint8_t>&)>;

  explicit StoreEngine(const EngineContext& ctx) : ctx_(ctx) {}
  virtual ~StoreEngine() = default;

  virtual EngineKind kind() const = 0;
  virtual const char* name() const = 0;
  // Back to freshly-formatted state (no objects, nothing staged).
  virtual void Reset() = 0;

  // ---- Write path -----------------------------------------------------------

  // Stages/writes one object image (checksum discipline: FNV over
  // [0, meta_len) only — see docs/persistence.md).
  virtual Status WriteObject(ObjectId id, const std::vector<uint8_t>& bytes,
                             uint64_t meta_len) = 0;
  // Drops an object (blob: map erase + extent retire; betree: tombstone).
  virtual void DeleteObject(ObjectId id) = 0;
  // Appends every object id the engine currently holds (the store's dead
  // sweep diffs this against the kernel's live set).
  virtual void AppendLiveIds(std::vector<ObjectId>* out) const = 0;

  // ---- Commit ---------------------------------------------------------------

  // True when the engine needs the next commit to be a base (the Bε-tree's
  // staged messages outgrew the root buffer, or a prior base flush failed
  // midway and must be retried before any increment may commit).
  virtual bool WantsBase() const = 0;
  // True when the engine embeds increment label deltas in its own body (the
  // store then writes zero store-level label records for increments).
  virtual bool OwnsLabelDelta() const = 0;
  // Appends the engine's section body to `image` (the store has already
  // written the header and store-level label records). A base body may
  // perform device writes of its own (tree node flushes) — shadow-write
  // discipline applies.
  virtual Status EmitSectionBody(bool base,
                                 const std::vector<LabelTableRecord>* label_delta,
                                 std::vector<uint8_t>* image) = 0;
  // The section is durably written and joins the in-memory chain (the flip
  // may still fail — state consumed here legitimately rides into the next
  // commit, exactly like the store's pending lists always have).
  virtual void OnSectionWritten(bool base) = 0;

  // ---- Read path ------------------------------------------------------------

  // In-place payload flush for sys_sync_pages. Sets *needs_commit when the
  // freshest image is staged (not at a home location), in which case the
  // store runs a commit; otherwise the engine wrote in place and barriered.
  virtual Status FlushPages(ObjectId id, uint64_t offset,
                            const std::vector<uint8_t>& pages, bool* needs_commit) = 0;
  // Demand-page simulation: charge the reads that faulting the object in
  // would cost; returns the on-disk image length.
  virtual Result<uint64_t> TouchObject(ObjectId id) = 0;

  // ---- Recovery -------------------------------------------------------------

  // Replays one section body (reader positioned past the store-level label
  // records; the section checksum has already been verified).
  virtual Status LoadSectionBody(bool base, storewire::Reader* r,
                                 const LabelSink& label_sink) = 0;
  // Every heap extent the engine references (object blobs / tree nodes) —
  // reserved in the allocator alongside the section chain.
  virtual void CollectExtents(std::vector<Extent>* out) const = 0;
  // Streams every live object image, ascending id, into `fn`.
  virtual Status LoadAllObjects(const ObjectSink& fn) = 0;

  // ---- Chain folding --------------------------------------------------------

  // Merges several increment section bodies (oldest first) into one body
  // whose replay is equivalent to replaying them in order. Used when the
  // superblock chain hits capacity (single_level_store.cc FoldChain).
  virtual Status MergeSectionBodies(const std::vector<std::vector<uint8_t>>& bodies,
                                    std::vector<uint8_t>* out) = 0;

 protected:
  EngineContext ctx_;
};

// ---- BlobEngine --------------------------------------------------------------
//
// The original store layout, extracted verbatim: one extent per object, a
// B+-tree map id → (extent, meta_len), section bodies carrying map records
// and dead ids. Byte-compatible with the pre-engine format except for the
// section header's engine byte.
class BlobEngine : public StoreEngine {
 public:
  // One object's home image: where it lives and how much of the blob the
  // checksum covers (segment payload past meta_len is excluded — see
  // ObjectImage in kernel.h).
  struct ObjRecord {
    Extent extent;
    uint64_t meta_len = 0;

    friend bool operator==(const ObjRecord&, const ObjRecord&) = default;
  };

  explicit BlobEngine(const EngineContext& ctx) : StoreEngine(ctx) {}

  EngineKind kind() const override { return EngineKind::kBlob; }
  const char* name() const override { return "blob"; }
  void Reset() override;

  Status WriteObject(ObjectId id, const std::vector<uint8_t>& bytes,
                     uint64_t meta_len) override;
  void DeleteObject(ObjectId id) override;
  void AppendLiveIds(std::vector<ObjectId>* out) const override;

  bool WantsBase() const override { return false; }
  bool OwnsLabelDelta() const override { return false; }
  Status EmitSectionBody(bool base, const std::vector<LabelTableRecord>* label_delta,
                         std::vector<uint8_t>* image) override;
  void OnSectionWritten(bool base) override;

  Status FlushPages(ObjectId id, uint64_t offset, const std::vector<uint8_t>& pages,
                    bool* needs_commit) override;
  Result<uint64_t> TouchObject(ObjectId id) override;

  Status LoadSectionBody(bool base, storewire::Reader* r,
                         const LabelSink& label_sink) override;
  void CollectExtents(std::vector<Extent>* out) const override;
  Status LoadAllObjects(const ObjectSink& fn) override;

  Status MergeSectionBodies(const std::vector<std::vector<uint8_t>>& bodies,
                            std::vector<uint8_t>* out) override;

 private:
  BPlusTree<uint64_t, ObjRecord> objmap_;
  // Object-map changes since the last committed section (increment records).
  std::vector<uint64_t> pending_updates_;
  std::vector<uint64_t> pending_deads_;
};

std::unique_ptr<StoreEngine> MakeStoreEngine(EngineKind kind, const EngineContext& ctx,
                                             const BetreeParams& params);

}  // namespace histar

#endif  // SRC_STORE_ENGINE_H_
