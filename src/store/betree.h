// The write-optimized store engine: a message-batched Bε-tree (PR 8).
//
// Instead of one random blob write per dirty object, updates become typed
// messages (msg.h). Messages stage in the root buffer; an increment section
// is just the staged batch serialized — ONE sequential write per commit,
// regardless of how scattered the dirtied objects are. Only when the staged
// bytes outgrow `root_buffer_bytes` does the engine flush: messages are
// injected into the tree, interior nodes absorb them into their buffers and
// push the heaviest child's share downward when a buffer overflows (messages
// may rest in interior-node buffers on disk — the Bε in the name), leaves
// apply and split, and all dirty nodes are rewritten to freshly allocated
// extents — children before parents, arena-allocated so the whole flush is
// one sequential run. The section body of such a base names only the root
// extent.
//
// The IN-MEMORY tree is authoritative: nodes cache full object bytes
// (write-back). The disk model is read at recovery (LoadSectionBody walks
// the node graph) and for TouchObject's demand-paging charge — never during
// a flush, which is what keeps latency-only benches (store_data=false)
// honest.
//
// Durability/crash discipline (docs/persistence.md "Bε-tree engine"):
//  * Shadow paging end-to-end: a flush writes fresh extents, the old node
//    extents go to pending_frees and are released only after the superblock
//    flip. A torn node write fails the commit before the flip, so a crashed
//    flush always boots from the previous root.
//  * A node is marked clean only after its device write returns kOk; a
//    failed base flush leaves consumed messages safe in the in-memory tree
//    and sets a sticky base-pending flag — no increment can commit until a
//    base succeeds (an increment against the stale on-disk root would lose
//    the consumed messages).
//  * Node images checksum their structure; leaf blobs checksum [0, meta_len)
//    each, so FlushPages' in-place payload writes never invalidate a node
//    (the same ext3-writeback trade-off as the blob engine).
#ifndef SRC_STORE_BETREE_H_
#define SRC_STORE_BETREE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/store/engine.h"
#include "src/store/msg.h"

namespace histar {

class BetreeEngine : public StoreEngine {
 public:
  BetreeEngine(const EngineContext& ctx, const BetreeParams& params);
  ~BetreeEngine() override;

  EngineKind kind() const override { return EngineKind::kBetree; }
  const char* name() const override { return "betree"; }
  void Reset() override;

  Status WriteObject(ObjectId id, const std::vector<uint8_t>& bytes,
                     uint64_t meta_len) override;
  void DeleteObject(ObjectId id) override;
  void AppendLiveIds(std::vector<ObjectId>* out) const override;

  bool WantsBase() const override;
  bool OwnsLabelDelta() const override { return true; }
  Status EmitSectionBody(bool base, const std::vector<LabelTableRecord>* label_delta,
                         std::vector<uint8_t>* image) override;
  void OnSectionWritten(bool base) override;

  Status FlushPages(ObjectId id, uint64_t offset, const std::vector<uint8_t>& pages,
                    bool* needs_commit) override;
  Result<uint64_t> TouchObject(ObjectId id) override;

  Status LoadSectionBody(bool base, storewire::Reader* r,
                         const LabelSink& label_sink) override;
  void CollectExtents(std::vector<Extent>* out) const override;
  Status LoadAllObjects(const ObjectSink& fn) override;

  Status MergeSectionBodies(const std::vector<std::vector<uint8_t>>& bodies,
                            std::vector<uint8_t>* out) override;

  // ---- Introspection for tests/benches -------------------------------------

  uint64_t node_count() const;
  int height() const;  // 0 = empty tree, 1 = single leaf, ...
  // Bytes staged in the root buffers (committed + pending batches).
  uint64_t staged_bytes() const { return committed_.bytes() + pending_.bytes(); }
  bool base_pending() const { return base_pending_; }

  // Defined in betree.cc (node layout is an implementation detail); public
  // so the file-local serialization helpers there can name it.
  struct Node;

 private:
  // Apply `msgs` (newer than everything in `n`) to the subtree rooted at
  // `n`, flushing/splitting as needed. Returns the replacement node(s); more
  // than one means the caller must widen (interior split / new root).
  std::vector<std::unique_ptr<Node>> Inject(std::unique_ptr<Node> n,
                                            std::map<uint64_t, Msg> msgs);
  void ApplyToLeaf(Node* leaf, std::map<uint64_t, Msg>&& msgs);
  std::vector<std::unique_ptr<Node>> SplitLeaf(std::unique_ptr<Node> leaf);
  std::vector<std::unique_ptr<Node>> SplitInterior(std::unique_ptr<Node> n);
  void FlushOverflow(Node* n);  // push buffer overflow toward the children

  Status WriteDirtyNodes(Node* root);
  Result<std::unique_ptr<Node>> ReadNode(const Extent& e, int depth);

  // Freshest staged message for `id`, if any: pending over committed over
  // the interior buffers along the root→leaf path. Metadata-only messages
  // (kMapUpdate) don't stop the scan — the newest one is reported on the
  // side while the search continues for the image-bearing layer. Also
  // reports the leaf (and entry index) the id routes to, when the tree has
  // one.
  struct Lookup {
    const Msg* msg = nullptr;        // newest upsert/delete message, if any
    const Msg* map_patch = nullptr;  // newest kMapUpdate above `msg`, if any
    Node* leaf = nullptr;            // routed leaf (nullptr on an empty tree)
    int entry = -1;                  // index in leaf->entries, -1 if absent
  };
  Lookup Find(uint64_t id);

  BetreeParams params_;
  std::unique_ptr<Node> root_;   // nullptr until the first base flush
  MsgBuffer committed_;          // batches already in committed sections
  MsgBuffer pending_;            // staged since the last committed section
  // A base flush consumed root-buffer messages into the tree but its commit
  // did not complete: every commit must be a base until one succeeds.
  bool base_pending_ = false;
};

}  // namespace histar

#endif  // SRC_STORE_BETREE_H_
