// The single-level store (paper §3, §4).
//
// All kernel objects live here; on boot the entire system state is restored
// from the most recent on-disk snapshot. Layout:
//
//   [0      , 4K )   superblock slot A   (alternating, checksummed)
//   [4K     , 8K )   superblock slot B
//   [8K     , 8K+L)  write-ahead log region
//   [8K+L   , end)   object heap (extents managed by ExtentAllocator)
//
// Persistence model, as in the paper:
//  * group sync / checkpoint: dirty objects are written to freshly allocated
//    (contiguous — "delayed allocation") extents, a new object-ID → extent
//    B+-tree image is written, and a superblock flip commits the whole state
//    atomically. Either the entire checkpoint is visible or none of it.
//  * per-object sync (fsync path): the object's image is appended to the
//    sequential write-ahead log and barriered. Logged updates are applied in
//    batches — after kLogApplyThreshold records the log contents are folded
//    into a checkpoint and the log resets, matching the paper's "once per
//    approximately every 1,000 synchronous operations".
//  * recovery: pick the newer valid superblock, load the object map, read
//    every object, then replay valid log records with seq > the superblock's
//    applied sequence. A torn log record ends replay (write-ahead ordering
//    makes this safe).
#ifndef SRC_STORE_SINGLE_LEVEL_STORE_H_
#define SRC_STORE_SINGLE_LEVEL_STORE_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/kernel/kernel.h"
#include "src/store/bptree.h"
#include "src/store/disk_model.h"
#include "src/store/extent_alloc.h"

namespace histar {

struct StoreTuning {
  uint64_t log_region_bytes = 16 << 20;   // 16 MB WAL
  uint32_t log_apply_threshold = 1000;    // records before a batch apply
};

class SingleLevelStore : public PersistTarget {
 public:
  SingleLevelStore(DiskModel* disk, const StoreTuning& tuning = StoreTuning());

  // Formats the disk: writes an empty generation-0 superblock.
  Status Format();

  // PersistTarget: full/group checkpoint. `objs` carries the serialized
  // images of dirty objects; the store also needs the full live set to drop
  // deleted objects, so the kernel's sys_sync sends every live object here.
  Status Checkpoint(const std::vector<std::pair<ObjectId, std::vector<uint8_t>>>& dirty,
                    const std::vector<ObjectId>& live, ObjectId root) override;
  // PersistTarget: append one object image to the WAL (fsync of one object).
  // Images too large for the log (> ¼ of the region) are written directly
  // to a fresh extent and committed — the LFS-large sequential-write path.
  Status SyncOne(ObjectId id, const std::vector<uint8_t>& bytes) override;

  // PersistTarget: in-place page flush. Latency-exact (a random write of
  // `len` bytes into the object's home extent plus a barrier); contents are
  // refreshed with a sound checksum at the next SyncOne/Checkpoint of the
  // object, giving ext3-writeback-style semantics for a crash in between.
  Status SyncPages(ObjectId id, uint64_t offset, uint64_t len) override;

  // Simulates demand paging an object in from disk (the §7.1 read phases:
  // HiStar pages in the entire segment at first access). Charges the read
  // latency of the object's extent; returns its on-disk length.
  Result<uint64_t> TouchObject(ObjectId id);

  // Boot: restores the complete system state into `kernel`. Returns
  // kNotFound on an unformatted disk.
  Status Recover(Kernel* kernel);

  // Introspection for tests/benches.
  uint64_t generation() const { return generation_; }
  uint64_t log_records() const { return log_records_total_; }
  uint64_t log_applies() const { return log_applies_; }
  uint64_t heap_free_bytes() const { return alloc_.free_bytes(); }
  ObjectId root_object() const { return root_; }

 private:
  static constexpr uint64_t kMagic = 0x48695374'61724f53ULL;  // "HiStarOS"
  static constexpr uint64_t kLogMagic = 0x4c4f4752'45435244ULL;

  struct Superblock {
    uint64_t magic = 0;
    uint64_t generation = 0;
    uint64_t root = 0;
    uint64_t objmap_offset = 0;
    uint64_t objmap_length = 0;
    uint64_t log_applied_seq = 0;
    uint64_t checksum = 0;
  };

  static uint64_t Checksum(const void* data, size_t len);

  // mu_ held for all of these.
  Status WriteSuperblock();
  Status ReadSuperblocks(Superblock* out);
  // Writes the blob to a new extent, updating objmap_ and freeing the old
  // extent. The in-memory heap image of each object is NOT cached: reads go
  // back to the disk model.
  Status WriteObject(ObjectId id, const std::vector<uint8_t>& bytes);
  Status WriteObjMap();
  // Folds the outstanding log records into object home locations.
  Status ApplyLog();

  uint64_t log_start() const { return 2 * 4096; }
  uint64_t heap_start() const { return log_start() + tuning_.log_region_bytes; }

  DiskModel* disk_;
  StoreTuning tuning_;
  mutable std::mutex mu_;

  BPlusTree<uint64_t, Extent> objmap_;
  ExtentAllocator alloc_;
  ObjectId root_ = kInvalidObject;
  uint64_t generation_ = 0;
  bool which_sb_ = false;  // slot to write next
  uint64_t objmap_extent_offset_ = 0;
  uint64_t objmap_extent_length_ = 0;
  // Extents superseded during the in-progress checkpoint; reusable only
  // after the superblock flip commits (shadow paging discipline).
  std::vector<Extent> pending_frees_;

  // WAL state.
  uint64_t log_head_ = 0;        // next append offset within the log region
  uint64_t log_seq_ = 0;         // monotonically increasing record sequence
  uint64_t log_applied_seq_ = 0;
  uint32_t log_pending_ = 0;     // records since last apply
  uint64_t log_records_total_ = 0;
  uint64_t log_applies_ = 0;
  // Images of objects sitting in the unapplied log tail (id → latest bytes).
  std::unordered_map<ObjectId, std::vector<uint8_t>> log_tail_;
};

}  // namespace histar

#endif  // SRC_STORE_SINGLE_LEVEL_STORE_H_
