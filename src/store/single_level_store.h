// The single-level store (paper §3, §4).
//
// All kernel objects live here; on boot the entire system state is restored
// from the most recent on-disk snapshot. Layout:
//
//   [0      , 4K )   superblock slot A   (alternating, checksummed)
//   [4K     , 8K )   superblock slot B
//   [8K     , 8K+L)  write-ahead log region
//   [8K+L   , end)   object heap (extents managed by ExtentAllocator;
//                    object images and checkpoint sections both live here)
//
// Persistence model, as in the paper plus the incremental-checkpoint layer
// (docs/persistence.md has the byte-level formats):
//  * group sync / checkpoint: dirty objects are written to freshly allocated
//    (contiguous — "delayed allocation") extents in LABEL-REF format (labels
//    appear as 32-bit interned ids), then ONE checkpoint section is written
//    carrying an epoch header, the label-table records (full table for a
//    base snapshot, only the delta for an increment), the object-map records
//    for this epoch's writes, and the ids deleted this epoch. A superblock
//    flip commits the whole state atomically. After a full base snapshot,
//    subsequent checkpoints are increments: they write O(dirty) blobs and an
//    O(delta) section, never the O(live) map image the pre-incremental
//    format rewrote every sync. A base is forced on format, after a restore
//    that could not reproduce the on-disk label-id space, and every
//    `max_increments` epochs (bounding recovery replay length).
//  * per-object sync (fsync path): the object's SELF-CONTAINED image is
//    appended to the sequential write-ahead log and barriered (a log record
//    must replay without any label table). Logged updates are applied in
//    batches — after kLogApplyThreshold records the log contents are folded
//    into the heap and committed as an increment, matching the paper's
//    "once per approximately every 1,000 synchronous operations".
//  * in-place page flush (sys_sync_pages): the segment's real payload bytes
//    are written into its home extent past the checksummed metadata prefix.
//    Object checksums cover only that prefix (`meta_len`), so the in-place
//    write can never make the blob fail validation at recovery — the fix
//    for the old stale-checksum crash window, at the documented cost of
//    ext3-writeback semantics for the payload (a crash may leave a mix of
//    old and new pages; checkpoint/WAL paths are unaffected because their
//    atomicity comes from shadow paging + the superblock flip, not the
//    checksum).
//  * recovery: pick the newer valid superblock, replay the section chain in
//    order (base, then each increment — epochs must ascend) to rebuild the
//    label table and object map, hand the label table to the kernel FIRST
//    (one re-intern pass, yielding the old-id → new-id remap), then load
//    every object and finally replay valid log records with seq > the
//    superblock's applied sequence. A torn log record ends replay
//    (write-ahead ordering makes this safe).
#ifndef SRC_STORE_SINGLE_LEVEL_STORE_H_
#define SRC_STORE_SINGLE_LEVEL_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/core/sync.h"
#include "src/core/thread_annotations.h"
#include "src/kernel/kernel.h"
#include "src/store/bptree.h"
#include "src/store/disk_model.h"
#include "src/store/engine.h"
#include "src/store/extent_alloc.h"

namespace histar {

struct StoreTuning {
  uint64_t log_region_bytes = 16 << 20;   // 16 MB WAL
  uint32_t log_apply_threshold = 1000;    // records before a batch apply
  // Incremental checkpoints between full base snapshots. Bounds the section
  // chain recovery must replay. When a commit stream outruns the
  // superblock's chain capacity, the oldest increments are folded into one
  // merged increment (FoldChain) instead of forcing a base.
  uint32_t max_increments = 32;
  // Which storage engine owns object placement and section bodies
  // (engine.h). Recovery adopts whatever engine the disk was written with,
  // regardless of this knob.
  EngineKind engine = EngineKind::kBlob;
  // Shape knobs for the Bε-tree engine (ignored by the blob engine).
  BetreeParams betree;
};

class SingleLevelStore : public PersistTarget {
 public:
  SingleLevelStore(DiskModel* disk, const StoreTuning& tuning = StoreTuning());

  // Formats the disk: writes an empty generation-0 superblock.
  Status Format();

  // PersistTarget: group checkpoint (base or increment — the store decides;
  // see the header comment). `batch.dirty` carries label-ref images of
  // mutated objects; `batch.live` is the full live set so deleted objects
  // are dropped; `batch.label_delta` extends the store's label table.
  Status Checkpoint(const CheckpointBatch& batch) override;
  // PersistTarget: append one self-contained object image to the WAL (fsync
  // of one object). Images too large for the log (> ¼ of the region) are
  // written directly to a fresh extent and committed as an increment — the
  // LFS-large sequential-write path.
  Status SyncOne(ObjectId id, const std::vector<uint8_t>& bytes, uint64_t meta_len) override;
  // PersistTarget: in-place payload flush. Writes the segment's real bytes
  // into the home extent past the checksummed prefix (see header comment);
  // latency-exact (a random write of pages.size() bytes plus a barrier).
  Status SyncPages(ObjectId id, uint64_t offset, const std::vector<uint8_t>& pages) override;

  // Simulates demand paging an object in from disk (the §7.1 read phases:
  // HiStar pages in the entire segment at first access). Charges the read
  // latency of the object's extent; returns its on-disk length.
  Result<uint64_t> TouchObject(ObjectId id);

  // Boot: restores the complete system state into `kernel`. Returns
  // kNotFound on an unformatted disk.
  Status Recover(Kernel* kernel);

  // Forces the next commit to be a full base snapshot (tests/benches: e.g.
  // making the Bε-tree engine apply staged deletes to the on-disk tree).
  void DemandBase() {
    MutexLock lock(&mu_);
    need_base_ = true;
  }

  // Introspection for tests/benches. Locked: a bench thread may poll these
  // while syscall threads drive commits (they used to read the fields bare —
  // unsynchronized reads the annotation pass surfaced and fixed).
  uint64_t generation() const {
    MutexLock lock(&mu_);
    return generation_;
  }
  uint64_t epoch() const {
    MutexLock lock(&mu_);
    return epoch_;
  }
  uint64_t log_records() const {
    MutexLock lock(&mu_);
    return log_records_total_;
  }
  uint64_t log_applies() const {
    MutexLock lock(&mu_);
    return log_applies_;
  }
  uint64_t heap_free_bytes() const {
    MutexLock lock(&mu_);
    return alloc_.free_bytes();
  }
  ObjectId root_object() const {
    MutexLock lock(&mu_);
    return root_;
  }
  // Section chain currently committed: 1 after a base, +1 per increment.
  size_t chain_length() const {
    MutexLock lock(&mu_);
    return chain_.size();
  }
  size_t label_table_size() const {
    MutexLock lock(&mu_);
    return label_table_.size();
  }
  // Times the chain hit superblock capacity and the oldest increments were
  // merged into one (satellite of the Bε-tree PR; see FoldChain).
  uint64_t chain_folds() const {
    MutexLock lock(&mu_);
    return chain_folds_;
  }
  EngineKind engine_kind() const {
    MutexLock lock(&mu_);
    return engine_->kind();
  }
  const char* engine_name() const {
    MutexLock lock(&mu_);
    return engine_->name();
  }
  // The engine itself (tests: e.g. downcasting to BetreeEngine for tree
  // introspection). Owned by the store; may be replaced by Recover — callers
  // use this single-threaded, between operations, which is why handing the
  // raw pointer out of the lock scope is tolerable here.
  StoreEngine* engine() {
    MutexLock lock(&mu_);
    return engine_.get();
  }
  // Shape of the most recent commit point (checkpoint, log apply, or large
  // sync): was it a base, how many object images did it write, how big was
  // its section. These are what the O(dirty)-not-O(live) tests assert.
  bool last_commit_was_base() const {
    MutexLock lock(&mu_);
    return last_commit_base_;
  }
  uint64_t last_commit_objects() const {
    MutexLock lock(&mu_);
    return last_commit_objects_;
  }
  uint64_t last_section_bytes() const {
    MutexLock lock(&mu_);
    return last_section_bytes_;
  }

 private:
  static constexpr uint64_t kMagic = 0x48695374'61724f53ULL;  // "HiStarOS"
  static constexpr uint64_t kLogMagic = 0x4c4f4752'45435244ULL;
  static constexpr uint64_t kSectionMagic = 0x434b5054'53454354ULL;  // "CKPTSECT"
  // Superblock chain capacity: one base + up to kMaxChain-1 increments.
  static constexpr size_t kMaxChain = 48;
  static constexpr size_t kLogHeaderWords = 5;  // magic, seq, id, len, meta_len

  struct Superblock {
    uint64_t magic = 0;
    uint64_t generation = 0;
    uint64_t root = 0;
    uint64_t log_applied_seq = 0;
    uint64_t epoch = 0;
    uint64_t chain_len = 0;
    uint64_t chain[2 * kMaxChain] = {};  // (offset, length) pairs
    uint64_t checksum = 0;
  };
  static_assert(sizeof(Superblock) <= 4096, "superblock must fit its slot");

  static uint64_t Checksum(const void* data, size_t len);

  // mu_ held for all of these. The public entry points above are thin
  // wrappers: take mu_, call the *Locked body, and catch std::bad_alloc
  // (the StoreAlloc fault hook and real allocation failure alike) into
  // Status::kNoMem — so an allocation failure anywhere on the store path
  // surfaces as a failed, retryable operation instead of an abort.
  Status FormatLocked() REQUIRES(mu_);
  Status CheckpointLocked(const CheckpointBatch& batch) REQUIRES(mu_);
  Status SyncOneLocked(ObjectId id, const std::vector<uint8_t>& bytes,
                       uint64_t meta_len) REQUIRES(mu_);
  Status SyncPagesLocked(ObjectId id, uint64_t offset,
                         const std::vector<uint8_t>& pages) REQUIRES(mu_);
  Result<uint64_t> TouchObjectLocked(ObjectId id) REQUIRES(mu_);
  Status RecoverLocked(Kernel* kernel) REQUIRES(mu_);
  Status WriteSuperblock() REQUIRES(mu_);
  Status ReadSuperblocks(Superblock* out) REQUIRES(mu_);
  // The single commit point: writes one checkpoint section (base if the
  // chain is empty, a base was demanded, or the engine wants one; else an
  // increment whose body the engine emits), flushes, flips the superblock,
  // then releases superseded extents. Advances epoch_.
  Status CommitSection(const std::vector<LabelTableRecord>* label_delta)
      REQUIRES(mu_);
  // Chain at superblock capacity but no base due: merge the oldest half of
  // the increments into ONE replay-equivalent increment section, so a
  // long-running commit stream never forces an O(live) base just because
  // the superblock ran out of chain slots.
  Status FoldChain() REQUIRES(mu_);
  // Folds the outstanding log records into object home locations and
  // commits them as an increment.
  Status ApplyLog() REQUIRES(mu_);

  uint64_t log_start() const { return 2 * 4096; }
  uint64_t heap_start() const { return log_start() + tuning_.log_region_bytes; }

  DiskModel* disk_;
  StoreTuning tuning_;
  mutable Mutex mu_;

  ExtentAllocator alloc_ GUARDED_BY(mu_);
  // Object placement + section bodies (engine.h). Recovery may replace this
  // with the engine the disk was actually written with.
  std::unique_ptr<StoreEngine> engine_ GUARDED_BY(mu_);
  ObjectId root_ GUARDED_BY(mu_) = kInvalidObject;
  uint64_t generation_ GUARDED_BY(mu_) = 0;
  bool which_sb_ GUARDED_BY(mu_) = false;  // slot to write next

  // Checkpoint-chain state. label_table_ is the store's accumulated copy of
  // the kernel's label table (id → serialized label), an ordered map so a
  // base section enumerates ascending ids — the order that lets recovery
  // re-intern to identical ids.
  std::map<uint32_t, std::vector<uint8_t>> label_table_ GUARDED_BY(mu_);
  std::vector<Extent> chain_ GUARDED_BY(mu_);  // committed: base + increments
  uint64_t epoch_ GUARDED_BY(mu_) = 0;   // epoch of latest committed section
  bool need_base_ GUARDED_BY(mu_) = true;  // force a base at the next commit
  // Extents superseded during the in-progress commit; reusable only after
  // the superblock flip commits (shadow paging discipline).
  std::vector<Extent> pending_frees_ GUARDED_BY(mu_);

  // Introspection (see accessors above).
  bool last_commit_base_ GUARDED_BY(mu_) = false;
  uint64_t last_commit_objects_ GUARDED_BY(mu_) = 0;
  uint64_t last_section_bytes_ GUARDED_BY(mu_) = 0;
  uint64_t chain_folds_ GUARDED_BY(mu_) = 0;

  // WAL state.
  uint64_t log_head_ GUARDED_BY(mu_) = 0;  // next append offset in the region
  uint64_t log_seq_ GUARDED_BY(mu_) = 0;   // monotonic record sequence
  uint64_t log_applied_seq_ GUARDED_BY(mu_) = 0;
  uint32_t log_pending_ GUARDED_BY(mu_) = 0;  // records since last apply
  uint64_t log_records_total_ GUARDED_BY(mu_) = 0;
  uint64_t log_applies_ GUARDED_BY(mu_) = 0;
  // Images of objects sitting in the unapplied log tail (id → latest image).
  struct LogImage {
    std::vector<uint8_t> bytes;
    uint64_t meta_len = 0;
  };
  std::unordered_map<ObjectId, LogImage> log_tail_ GUARDED_BY(mu_);
};

}  // namespace histar

#endif  // SRC_STORE_SINGLE_LEVEL_STORE_H_
