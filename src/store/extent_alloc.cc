#include "src/store/extent_alloc.h"

#include "src/store/store_alloc.h"

namespace histar {

ExtentAllocator::ExtentAllocator(uint64_t start, uint64_t length)
    : start_(start), length_(length) {
  Reset();
}

void ExtentAllocator::Reset() {
  // Initialization (constructor / format), not a store-path allocation: a
  // throw here would escape the store's kNoMem boundary entirely.
  StoreAllocNoFail init;
  by_size_.Clear();
  by_offset_.Clear();
  by_size_.Insert(Key128{length_, start_}, 0);
  by_offset_.Insert(start_, length_);
  free_bytes_ = length_;
}

Result<uint64_t> ExtentAllocator::Allocate(uint64_t len) {
  StoreAlloc::Check();
  // The entry check above is this operation's one injection point: a throw
  // from the nested tree inserts below (after the erase) would drop the
  // extent from the free pool permanently.
  StoreAllocNoFail atomic_update;
  if (len == 0) {
    return Status::kInvalidArg;
  }
  // Best fit: smallest extent with size ≥ len.
  std::optional<std::pair<Key128, uint64_t>> fit = by_size_.FirstGeq(Key128{len, 0});
  if (!fit.has_value()) {
    return Status::kNoSpace;
  }
  uint64_t esize = fit->first.hi;
  uint64_t eoff = fit->first.lo;
  by_size_.Erase(fit->first);
  by_offset_.Erase(eoff);
  if (esize > len) {
    // Return the tail to the pool.
    uint64_t rest_off = eoff + len;
    uint64_t rest_len = esize - len;
    by_size_.Insert(Key128{rest_len, rest_off}, 0);
    by_offset_.Insert(rest_off, rest_len);
  }
  free_bytes_ -= len;
  return eoff;
}

bool ExtentAllocator::ReserveRange(uint64_t offset, uint64_t len) {
  StoreAlloc::Check();
  StoreAllocNoFail atomic_update;  // same discipline as Allocate
  if (len == 0) {
    return true;
  }
  // The free extent containing `offset` is the last one starting ≤ offset.
  std::optional<std::pair<uint64_t, uint64_t>> host = by_offset_.LastLess(offset + 1);
  if (!host.has_value() || host->first > offset ||
      host->first + host->second < offset + len) {
    return false;
  }
  by_offset_.Erase(host->first);
  by_size_.Erase(Key128{host->second, host->first});
  uint64_t left_len = offset - host->first;
  uint64_t right_off = offset + len;
  uint64_t right_len = host->first + host->second - right_off;
  if (left_len > 0) {
    by_offset_.Insert(host->first, left_len);
    by_size_.Insert(Key128{left_len, host->first}, 0);
  }
  if (right_len > 0) {
    by_offset_.Insert(right_off, right_len);
    by_size_.Insert(Key128{right_len, right_off}, 0);
  }
  free_bytes_ -= len;
  return true;
}

bool ExtentAllocator::ReserveExtents(const std::vector<Extent>& extents) {
  for (const Extent& e : extents) {
    if (!ReserveRange(e.offset, e.length)) {
      return false;
    }
  }
  return true;
}

// No Check() here: Free runs on cleanup and post-commit paths where an
// injected failure could strand a half-released pending_frees_ list (a
// double free waiting to happen); its internal tree inserts are covered by
// the StoreAllocNoFail guards those call sites hold.
void ExtentAllocator::Free(uint64_t offset, uint64_t len) {
  if (len == 0) {
    return;
  }
  free_bytes_ += len;
  // Coalesce with the right neighbor...
  std::optional<std::pair<uint64_t, uint64_t>> right = by_offset_.FirstGeq(offset + len);
  if (right.has_value() && right->first == offset + len) {
    by_offset_.Erase(right->first);
    by_size_.Erase(Key128{right->second, right->first});
    len += right->second;
  }
  // ...and the left neighbor.
  std::optional<std::pair<uint64_t, uint64_t>> left = by_offset_.LastLess(offset);
  if (left.has_value() && left->first + left->second == offset) {
    by_offset_.Erase(left->first);
    by_size_.Erase(Key128{left->second, left->first});
    offset = left->first;
    len += left->second;
  }
  by_offset_.Insert(offset, len);
  by_size_.Insert(Key128{len, offset}, 0);
}

}  // namespace histar
