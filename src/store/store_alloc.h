// Allocation-failure injection for the store path (PR 7).
//
// Every allocating operation on the persistence path — B+-tree inserts and
// deserialization, extent-allocator mutations, store image building — calls
// StoreAlloc::Check() at its entry point, BEFORE any partial mutation. An
// armed hook throws std::bad_alloc at the Nth check; the store's public
// methods catch it (and real bad_allocs) at their boundary and surface
// Status::kNoMem, so an allocation failure behaves exactly like any other
// failed commit: the syscall reports failure, the kernel stays live, the
// world stays dirty, and the next attempt retries from consistent state.
//
// Checks sit at mutation-safe entry points rather than inside half-applied
// operations, so an injected failure never leaves a tree with mismatched
// key/value vectors — the granularity the alloc-failure sweep test walks
// (fail the 1st, 2nd, ... Nth check until the workload completes).
#ifndef SRC_STORE_STORE_ALLOC_H_
#define SRC_STORE_STORE_ALLOC_H_

#include <atomic>
#include <cstdint>
#include <new>

namespace histar {

class StoreAlloc {
 public:
  // Arms the hook: the nth (1-based) subsequent Check() throws
  // std::bad_alloc and the hook disarms itself. nth == 0 disarms.
  static void FailNth(uint64_t nth) {
    attempts_.store(0, std::memory_order_relaxed);
    fail_at_.store(nth, std::memory_order_relaxed);
  }

  static void Disarm() { fail_at_.store(0, std::memory_order_relaxed); }

  static bool armed() { return fail_at_.load(std::memory_order_relaxed) != 0; }

  // Checks passed since the last FailNth/ResetAttempts — the sweep's bound:
  // run the workload unarmed, read attempts(), then fail each n in [1, N].
  static uint64_t attempts() { return attempts_.load(std::memory_order_relaxed); }

  static void ResetAttempts() { attempts_.store(0, std::memory_order_relaxed); }

  // Allocation-site marker. Cheap when disarmed (one relaxed load plus one
  // relaxed increment); throws when the armed count is reached.
  static void Check() {
    if (suppress_ != 0) {
      return;  // cleanup scope: never inject, never count
    }
    uint64_t n = attempts_.fetch_add(1, std::memory_order_relaxed) + 1;
    uint64_t fail_at = fail_at_.load(std::memory_order_relaxed);
    if (fail_at != 0 && n == fail_at) {
      fail_at_.store(0, std::memory_order_relaxed);  // one-shot
      ThrowInjected(n);  // records a kFault trace event, then throws
    }
  }

 private:
  friend class StoreAllocNoFail;

  [[noreturn]] static void ThrowInjected(uint64_t nth);

  static std::atomic<uint64_t> fail_at_;
  static std::atomic<uint64_t> attempts_;
  static thread_local uint64_t suppress_;
};

// RAII suppression for cleanup paths (freeing superseded extents, unwinding
// a failed write): allocations under this scope never fail-inject. Cleanup
// must not become a second fault mid-recovery from the first — an injected
// throw while releasing pending_frees_ would leave some extents returned to
// the pool and some not, with no record of which.
class StoreAllocNoFail {
 public:
  StoreAllocNoFail() { ++StoreAlloc::suppress_; }
  ~StoreAllocNoFail() { --StoreAlloc::suppress_; }
  StoreAllocNoFail(const StoreAllocNoFail&) = delete;
  StoreAllocNoFail& operator=(const StoreAllocNoFail&) = delete;
};

}  // namespace histar

#endif  // SRC_STORE_STORE_ALLOC_H_
