#include "src/store/store_alloc.h"

namespace histar {

std::atomic<uint64_t> StoreAlloc::fail_at_{0};
std::atomic<uint64_t> StoreAlloc::attempts_{0};
thread_local uint64_t StoreAlloc::suppress_ = 0;

}  // namespace histar
