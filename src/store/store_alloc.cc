#include "src/store/store_alloc.h"

#include "src/core/status.h"
#include "src/core/trace.h"

namespace histar {

std::atomic<uint64_t> StoreAlloc::fail_at_{0};
std::atomic<uint64_t> StoreAlloc::attempts_{0};
thread_local uint64_t StoreAlloc::suppress_ = 0;

void StoreAlloc::ThrowInjected(uint64_t nth) {
  // Out of line so the Check() fast path stays two relaxed atomics. The
  // fault class operand distinguishes injected alloc failures from disk
  // faults in a dump: disk faults record their FaultKind (small ints),
  // this records the sentinel below.
  constexpr uint64_t kAllocFaultClass = 0xa110c;
  trace::RecordEvent(trace::EventKind::kFault, kAllocFaultClass, nth, 0,
                     static_cast<int8_t>(Status::kNoMem));
  throw std::bad_alloc();
}

}  // namespace histar
