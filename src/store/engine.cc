#include "src/store/engine.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <set>
#include <utility>

#include "src/store/betree.h"
#include "src/store/store_alloc.h"

namespace histar {

uint64_t StoreChecksum(const void* data, size_t len) {
  // FNV-1a. Not cryptographic — it only needs to catch torn writes.
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::unique_ptr<StoreEngine> MakeStoreEngine(EngineKind kind, const EngineContext& ctx,
                                             const BetreeParams& params) {
  if (kind == EngineKind::kBetree) {
    return std::make_unique<BetreeEngine>(ctx, params);
  }
  return std::make_unique<BlobEngine>(ctx);
}

// ---- BlobEngine --------------------------------------------------------------

void BlobEngine::Reset() {
  objmap_.Clear();
  pending_updates_.clear();
  pending_deads_.clear();
}

Status BlobEngine::WriteObject(ObjectId id, const std::vector<uint8_t>& bytes,
                               uint64_t meta_len) {
  // Shadow write: new extent first, then retire the old one, so a crash
  // mid-checkpoint leaves the previous snapshot intact. The trailing
  // checksum covers only the metadata prefix [0, meta_len): segment payload
  // after it may later be rewritten in place by FlushPages without
  // invalidating the blob (ext3-writeback semantics — see
  // docs/persistence.md).
  StoreAlloc::Check();
  meta_len = std::min<uint64_t>(meta_len, bytes.size());
  Result<uint64_t> off = ctx_.alloc->Allocate(bytes.size() + 8);
  if (!off.ok()) {
    return off.status();
  }
  uint64_t csum = StoreChecksum(bytes.data(), meta_len);
  Status st = bytes.empty() ? Status::kOk
                            : ctx_.disk->Write(off.value(), bytes.data(), bytes.size());
  if (st == Status::kOk) {
    st = ctx_.disk->Write(off.value() + bytes.size(), &csum, 8);
  }
  if (st != Status::kOk) {
    StoreAllocNoFail cleanup;  // unwinding a failed write must not fault again
    ctx_.alloc->Free(off.value(), bytes.size() + 8);
    return st;
  }
  // The blob is durable and the extent allocated: the map/bookkeeping update
  // must complete as a unit. A throw between the pending_frees push and the
  // map insert would queue the extent the map still references for reuse.
  StoreAllocNoFail atomic_update;
  if (std::optional<ObjRecord> old = objmap_.Find(id); old.has_value()) {
    ctx_.pending_frees->push_back(old->extent);
  }
  objmap_.Insert(id, ObjRecord{Extent{off.value(), bytes.size() + 8}, meta_len});
  pending_updates_.push_back(id);
  return Status::kOk;
}

void BlobEngine::DeleteObject(ObjectId id) {
  std::optional<ObjRecord> rec = objmap_.Find(id);
  if (!rec.has_value()) {
    return;
  }
  objmap_.Erase(id);
  ctx_.pending_frees->push_back(rec->extent);
  pending_deads_.push_back(id);
}

void BlobEngine::AppendLiveIds(std::vector<ObjectId>* out) const {
  objmap_.ForEach([out](const uint64_t& id, const ObjRecord&) { out->push_back(id); });
}

Status BlobEngine::EmitSectionBody(bool base,
                                   const std::vector<LabelTableRecord>* /*label_delta*/,
                                   std::vector<uint8_t>* image) {
  using storewire::PutU32;
  using storewire::PutU64;
  if (base) {
    std::vector<std::pair<uint64_t, ObjRecord>> entries;
    objmap_.ForEach([&entries](const uint64_t& id, const ObjRecord& rec) {
      entries.emplace_back(id, rec);
    });
    PutU32(image, static_cast<uint32_t>(entries.size()));
    for (const auto& [id, rec] : entries) {
      PutU64(image, id);
      PutU64(image, rec.extent.offset);
      PutU64(image, rec.extent.length);
      PutU64(image, rec.meta_len);
    }
    PutU32(image, 0);  // a base names no dead ids: absence from the map suffices
    return Status::kOk;
  }
  // Deduplicate update ids (an object can be written twice between commits)
  // and drop ids that died after being written.
  std::sort(pending_updates_.begin(), pending_updates_.end());
  pending_updates_.erase(std::unique(pending_updates_.begin(), pending_updates_.end()),
                         pending_updates_.end());
  std::vector<std::pair<uint64_t, ObjRecord>> entries;
  for (uint64_t id : pending_updates_) {
    if (std::optional<ObjRecord> rec = objmap_.Find(id); rec.has_value()) {
      entries.emplace_back(id, *rec);
    }
  }
  PutU32(image, static_cast<uint32_t>(entries.size()));
  for (const auto& [id, rec] : entries) {
    PutU64(image, id);
    PutU64(image, rec.extent.offset);
    PutU64(image, rec.extent.length);
    PutU64(image, rec.meta_len);
  }
  PutU32(image, static_cast<uint32_t>(pending_deads_.size()));
  for (uint64_t id : pending_deads_) {
    PutU64(image, id);
  }
  return Status::kOk;
}

void BlobEngine::OnSectionWritten(bool /*base*/) {
  pending_updates_.clear();
  pending_deads_.clear();
}

Status BlobEngine::FlushPages(ObjectId id, uint64_t offset,
                              const std::vector<uint8_t>& pages, bool* needs_commit) {
  *needs_commit = false;
  std::optional<ObjRecord> rec = objmap_.Find(id);
  if (!rec.has_value()) {
    return Status::kNotFound;  // never checkpointed: nothing to flush into
  }
  // In-place flush of real payload bytes, landing past the checksummed
  // metadata prefix — the checksum therefore stays sound however this write
  // interleaves with a crash. The on-disk image may predate a resize, so
  // clamp to the stored payload capacity; pages beyond it are covered by
  // the object's dirty mark at the next checkpoint.
  uint64_t blob_len = rec->extent.length - 8;
  uint64_t meta = std::min(rec->meta_len, blob_len);
  uint64_t capacity = blob_len - meta;
  if (offset >= capacity) {
    return Status::kOk;
  }
  uint64_t n = std::min<uint64_t>(pages.size(), capacity - offset);
  if (n == 0) {
    return Status::kOk;
  }
  Status st = ctx_.disk->Write(rec->extent.offset + meta + offset, pages.data(), n);
  if (st != Status::kOk) {
    return st;
  }
  return ctx_.disk->Flush();
}

Result<uint64_t> BlobEngine::TouchObject(ObjectId id) {
  std::optional<ObjRecord> rec = objmap_.Find(id);
  if (!rec.has_value()) {
    return Status::kNotFound;
  }
  const Extent& e = rec->extent;
  std::vector<uint8_t> buf(std::min<uint64_t>(e.length, 64 * 1024));
  uint64_t pos = 0;
  while (pos < e.length) {
    uint64_t n = std::min<uint64_t>(buf.size(), e.length - pos);
    Status st = ctx_.disk->Read(e.offset + pos, buf.data(), n);
    if (st != Status::kOk) {
      return st;
    }
    pos += n;
  }
  return e.length;
}

Status BlobEngine::LoadSectionBody(bool /*base*/, storewire::Reader* r,
                                   const LabelSink& /*label_sink*/) {
  uint32_t n_objects = r->U32();
  for (uint32_t j = 0; j < n_objects && !r->fail; ++j) {
    uint64_t id = r->U64();
    ObjRecord rec;
    rec.extent.offset = r->U64();
    rec.extent.length = r->U64();
    rec.meta_len = r->U64();
    if (!r->fail) {
      objmap_.Insert(id, rec);
    }
  }
  uint32_t n_dead = r->U32();
  for (uint32_t j = 0; j < n_dead && !r->fail; ++j) {
    objmap_.Erase(r->U64());
  }
  return r->fail ? Status::kCorrupt : Status::kOk;
}

void BlobEngine::CollectExtents(std::vector<Extent>* out) const {
  objmap_.ForEach(
      [out](const uint64_t&, const ObjRecord& rec) { out->push_back(rec.extent); });
}

Status BlobEngine::LoadAllObjects(const ObjectSink& fn) {
  // The checksum covers the metadata prefix only; payload bytes past it
  // carry no integrity word (they may have been rewritten in place by
  // FlushPages — writeback semantics).
  std::vector<std::pair<uint64_t, ObjRecord>> entries;
  objmap_.ForEach(
      [&](const uint64_t& id, const ObjRecord& rec) { entries.emplace_back(id, rec); });
  for (const auto& [id, rec] : entries) {
    if (rec.extent.length < 8 || rec.meta_len > rec.extent.length - 8) {
      return Status::kCorrupt;
    }
    std::vector<uint8_t> blob(rec.extent.length);
    Status st = ctx_.disk->Read(rec.extent.offset, blob.data(), blob.size());
    if (st != Status::kOk) {
      return st;
    }
    uint64_t want;
    memcpy(&want, blob.data() + blob.size() - 8, 8);
    if (StoreChecksum(blob.data(), rec.meta_len) != want) {
      return Status::kCorrupt;
    }
    blob.resize(blob.size() - 8);
    st = fn(blob);
    if (st != Status::kOk) {
      return st;
    }
  }
  return Status::kOk;
}

Status BlobEngine::MergeSectionBodies(const std::vector<std::vector<uint8_t>>& bodies,
                                      std::vector<uint8_t>* out) {
  // Replay-equivalence by simulation: apply each body's records then its
  // dead ids, in order, onto (map, deadset); emit the final state. A record
  // may point at an extent that a later body superseded — harmless, exactly
  // as in a live chain: replay order guarantees the final map entry wins
  // before any object is loaded.
  StoreAlloc::Check();
  std::map<uint64_t, ObjRecord> recs;
  std::set<uint64_t> deads;
  for (const std::vector<uint8_t>& body : bodies) {
    storewire::Reader r{body.data(), body.size()};
    uint32_t n_objects = r.U32();
    for (uint32_t j = 0; j < n_objects && !r.fail; ++j) {
      uint64_t id = r.U64();
      ObjRecord rec;
      rec.extent.offset = r.U64();
      rec.extent.length = r.U64();
      rec.meta_len = r.U64();
      if (!r.fail) {
        recs[id] = rec;
        deads.erase(id);
      }
    }
    uint32_t n_dead = r.U32();
    for (uint32_t j = 0; j < n_dead && !r.fail; ++j) {
      uint64_t id = r.U64();
      recs.erase(id);
      deads.insert(id);
    }
    if (r.fail) {
      return Status::kCorrupt;
    }
  }
  using storewire::PutU32;
  using storewire::PutU64;
  PutU32(out, static_cast<uint32_t>(recs.size()));
  for (const auto& [id, rec] : recs) {
    PutU64(out, id);
    PutU64(out, rec.extent.offset);
    PutU64(out, rec.extent.length);
    PutU64(out, rec.meta_len);
  }
  PutU32(out, static_cast<uint32_t>(deads.size()));
  for (uint64_t id : deads) {
    PutU64(out, id);
  }
  return Status::kOk;
}

}  // namespace histar
