// Free-space management with two B+-trees (paper §4): one indexed by extent
// size (find an appropriately sized extent) and one by location (coalesce
// adjacent extents on free).
#ifndef SRC_STORE_EXTENT_ALLOC_H_
#define SRC_STORE_EXTENT_ALLOC_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/core/status.h"
#include "src/store/bptree.h"

namespace histar {

class ExtentAllocator {
 public:
  // Manages the byte range [start, start + length).
  ExtentAllocator(uint64_t start, uint64_t length);

  // Allocates `len` bytes: best-fit via the by-size tree. Returns the offset
  // or kNoSpace.
  Result<uint64_t> Allocate(uint64_t len);
  // Returns an extent to the pool, coalescing with neighbors.
  void Free(uint64_t offset, uint64_t len);

  // Removes a specific range from the free pool (recovery: re-reserving the
  // extents the object map says are live). Fails if any byte of the range is
  // not currently free.
  bool ReserveRange(uint64_t offset, uint64_t len);
  bool ReserveExtents(const std::vector<Extent>& extents);

  uint64_t free_bytes() const { return free_bytes_; }
  // Number of distinct free extents (fragmentation metric).
  size_t fragment_count() const { return by_offset_.size(); }
  // Size of the largest single free extent (0 when the pool is empty). The
  // Bε-tree engine sizes its flush arena with this: a whole dirty-node batch
  // lands in one contiguous run when a big enough extent exists.
  uint64_t largest_free() const {
    std::optional<std::pair<Key128, uint64_t>> m =
        by_size_.LastLess(Key128{~0ULL, ~0ULL});
    return m.has_value() ? m->first.hi : 0;
  }

  // Resets to a single free extent covering the whole range.
  void Reset();

 private:
  uint64_t start_;
  uint64_t length_;
  uint64_t free_bytes_ = 0;
  // (size, offset) → unused; by-size index for allocation.
  BPlusTree<Key128, uint64_t> by_size_;
  // offset → size; by-location index for coalescing.
  BPlusTree<uint64_t, uint64_t> by_offset_;
};

}  // namespace histar

#endif  // SRC_STORE_EXTENT_ALLOC_H_
