#include "src/store/betree.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "src/store/store_alloc.h"

namespace histar {

namespace {

constexpr uint64_t kNodeMagic = 0x42455053'4e4f4445ULL;  // "BEPSNODE"
// A node image larger than this is rejected at load — far above anything the
// split thresholds produce; bounds a corrupt length field's damage.
constexpr uint64_t kMaxNodeBytes = 64ULL << 20;
constexpr int kMaxTreeDepth = 64;

// Serialized size of a MsgBuffer (count word + every message).
uint64_t BufferWireBytes(const MsgBuffer& b) {
  uint64_t sz = 4;
  for (const auto& [id, bytes] : b.labels()) {
    sz += 1 + 4 + 4 + bytes.size();
  }
  for (const auto& [id, m] : b.objects()) {
    sz += MsgWireBytes(m);
  }
  return sz;
}

}  // namespace

// One tree node, held in memory in full (the in-memory tree is the
// authoritative write-back cache; `extent` is where the identical image
// lives on disk when `dirty` is false).
//
// On-disk images ("BEPSNODE", little-endian):
//   leaf:      u64 magic, u8 level=0, u32 n,
//              n × { u64 id, u64 meta_len, u64 len },
//              u64 csum                  (FNV over everything prior)
//              n × { u8 bytes[len], u64 blob_csum }   (FNV over
//                    bytes[0, min(meta_len, len)) — payload past the
//                    metadata prefix is writeback territory, exactly like
//                    blob-engine extents)
//   interior:  u64 magic, u8 level≥1, u32 n_children,
//              n × { u64 min_key, u64 child_off, u64 child_len },
//              u32 n_msgs, messages...   (msg.h wire format)
//              u64 csum                  (FNV over everything prior)
struct BetreeEngine::Node {
  int level = 0;  // 0 = leaf
  Extent extent{};
  bool dirty = true;

  struct Entry {
    uint64_t id = 0;
    uint64_t meta_len = 0;
    std::vector<uint8_t> bytes;
  };
  std::vector<Entry> entries;  // leaf payload, ascending id

  std::vector<uint64_t> keys;  // keys[i] = min id routed to children[i]
  std::vector<std::unique_ptr<Node>> children;
  MsgBuffer buffer;  // interior: messages resting at this level
};

namespace {

using Node = BetreeEngine::Node;

uint64_t NodeWireBytes(const Node& n) {
  if (n.level == 0) {
    uint64_t sz = 8 + 1 + 4 + n.entries.size() * 24 + 8;
    for (const Node::Entry& e : n.entries) {
      sz += e.bytes.size() + 8;
    }
    return sz;
  }
  return 8 + 1 + 4 + n.children.size() * 24 + BufferWireBytes(n.buffer) + 8;
}

void SerializeNode(const Node& n, std::vector<uint8_t>* out) {
  using storewire::PutU32;
  using storewire::PutU64;
  using storewire::PutU8;
  PutU64(out, kNodeMagic);
  PutU8(out, static_cast<uint8_t>(n.level));
  if (n.level == 0) {
    PutU32(out, static_cast<uint32_t>(n.entries.size()));
    for (const Node::Entry& e : n.entries) {
      PutU64(out, e.id);
      PutU64(out, e.meta_len);
      PutU64(out, e.bytes.size());
    }
    PutU64(out, StoreChecksum(out->data(), out->size()));
    for (const Node::Entry& e : n.entries) {
      out->insert(out->end(), e.bytes.begin(), e.bytes.end());
      uint64_t meta = std::min<uint64_t>(e.meta_len, e.bytes.size());
      PutU64(out, StoreChecksum(e.bytes.data(), meta));
    }
    return;
  }
  PutU32(out, static_cast<uint32_t>(n.children.size()));
  for (size_t i = 0; i < n.children.size(); ++i) {
    PutU64(out, n.keys[i]);
    PutU64(out, n.children[i]->extent.offset);
    PutU64(out, n.children[i]->extent.length);
  }
  n.buffer.Serialize(out);
  PutU64(out, StoreChecksum(out->data(), out->size()));
}

// Child index id routes to: the last key ≤ id (ids below keys[0] go left).
size_t RouteChild(const Node* n, uint64_t id) {
  size_t i = static_cast<size_t>(
      std::upper_bound(n->keys.begin(), n->keys.end(), id) - n->keys.begin());
  return i == 0 ? 0 : i - 1;
}

uint64_t MinKey(const Node* n) {
  return n->level == 0 ? (n->entries.empty() ? 0 : n->entries.front().id)
                       : n->keys.front();
}

// Splices `pieces` in place of child `ci`; the first piece keeps the
// child's original lower bound so no id can fall between the old separator
// and the piece's first entry.
void ReplaceChild(Node* n, size_t ci, std::vector<std::unique_ptr<Node>> pieces) {
  uint64_t lo = n->keys[ci];
  n->keys.erase(n->keys.begin() + static_cast<ptrdiff_t>(ci));
  n->children.erase(n->children.begin() + static_cast<ptrdiff_t>(ci));
  for (size_t j = 0; j < pieces.size(); ++j) {
    n->keys.insert(n->keys.begin() + static_cast<ptrdiff_t>(ci + j),
                   j == 0 ? lo : MinKey(pieces[j].get()));
    n->children.insert(n->children.begin() + static_cast<ptrdiff_t>(ci + j),
                       std::move(pieces[j]));
  }
}

// Entry index of `id` in a leaf, or -1.
int FindEntry(const Node* leaf, uint64_t id) {
  auto it = std::lower_bound(
      leaf->entries.begin(), leaf->entries.end(), id,
      [](const Node::Entry& e, uint64_t v) { return e.id < v; });
  if (it == leaf->entries.end() || it->id != id) {
    return -1;
  }
  return static_cast<int>(it - leaf->entries.begin());
}

// Byte offset of entry `i`'s blob within the leaf's on-disk image.
uint64_t LeafBlobOffset(const Node& leaf, int i) {
  uint64_t off = 8 + 1 + 4 + leaf.entries.size() * 24 + 8;
  for (int j = 0; j < i; ++j) {
    off += leaf.entries[static_cast<size_t>(j)].bytes.size() + 8;
  }
  return off;
}

uint64_t CountNodes(const Node* n) {
  if (n == nullptr) {
    return 0;
  }
  uint64_t c = 1;
  for (const auto& ch : n->children) {
    c += CountNodes(ch.get());
  }
  return c;
}

void CollectNodeExtents(const Node* n, std::vector<Extent>* out) {
  if (n == nullptr) {
    return;
  }
  if (n->extent.length != 0) {
    out->push_back(n->extent);
  }
  for (const auto& ch : n->children) {
    CollectNodeExtents(ch.get(), out);
  }
}

// Post-order dirty sweep; propagates dirtiness upward (a rewritten child
// moves, so every ancestor's child table changes too).
bool CollectDirty(Node* n, std::vector<Node*>* out) {
  bool child_dirty = false;
  for (const auto& ch : n->children) {
    child_dirty |= CollectDirty(ch.get(), out);
  }
  if (child_dirty) {
    n->dirty = true;
  }
  if (n->dirty) {
    out->push_back(n);
  }
  return n->dirty;
}

// Effective-state walk: leaves first (oldest), then each level's resting
// messages on top (newer), callers overlay the root buffers last. `fn` is
// called with (id, newest-wins state).
void OverlayBuffer(const MsgBuffer& b,
                   std::map<uint64_t, const std::vector<uint8_t>*>* eff) {
  for (const auto& [id, m] : b.objects()) {
    switch (m.kind) {
      case MsgKind::kUpsert:
        (*eff)[id] = &m.bytes;
        break;
      case MsgKind::kDelete:
        eff->erase(id);
        break;
      case MsgKind::kMapUpdate:
        break;  // metadata-only: image bytes unchanged
      case MsgKind::kLabelDelta:
        break;  // never routed into the tree
    }
  }
}

void CollectImages(const Node* n,
                   std::map<uint64_t, const std::vector<uint8_t>*>* eff) {
  if (n == nullptr) {
    return;
  }
  if (n->level == 0) {
    for (const Node::Entry& e : n->entries) {
      (*eff)[e.id] = &e.bytes;
    }
    return;
  }
  for (const auto& ch : n->children) {
    CollectImages(ch.get(), eff);
  }
  OverlayBuffer(n->buffer, eff);
}

void OverlayPresent(const MsgBuffer& b, std::map<uint64_t, bool>* present) {
  for (const auto& [id, m] : b.objects()) {
    if (m.kind == MsgKind::kUpsert) {
      (*present)[id] = true;
    } else if (m.kind == MsgKind::kDelete) {
      (*present)[id] = false;
    }
  }
}

void CollectPresent(const Node* n, std::map<uint64_t, bool>* present) {
  if (n == nullptr) {
    return;
  }
  if (n->level == 0) {
    for (const Node::Entry& e : n->entries) {
      (*present)[e.id] = true;
    }
    return;
  }
  for (const auto& ch : n->children) {
    CollectPresent(ch.get(), present);
  }
  OverlayPresent(n->buffer, present);
}

}  // namespace

BetreeEngine::BetreeEngine(const EngineContext& ctx, const BetreeParams& params)
    : StoreEngine(ctx), params_(params) {}

BetreeEngine::~BetreeEngine() = default;

void BetreeEngine::Reset() {
  root_.reset();
  committed_.Clear();
  pending_.Clear();
  base_pending_ = false;
}

Status BetreeEngine::WriteObject(ObjectId id, const std::vector<uint8_t>& bytes,
                                 uint64_t meta_len) {
  // No device write: the image becomes a staged upsert. It reaches disk as
  // part of this commit's section (increment = the batch itself; base = a
  // tree flush) — never as its own random write.
  StoreAlloc::Check();
  Msg m;
  m.kind = MsgKind::kUpsert;
  m.id = id;
  m.meta_len = std::min<uint64_t>(meta_len, bytes.size());
  m.bytes = bytes;
  pending_.Apply(std::move(m));
  return Status::kOk;
}

void BetreeEngine::DeleteObject(ObjectId id) {
  Msg m;
  m.kind = MsgKind::kDelete;
  m.id = id;
  pending_.Apply(std::move(m));
}

void BetreeEngine::AppendLiveIds(std::vector<ObjectId>* out) const {
  std::map<uint64_t, bool> present;
  CollectPresent(root_.get(), &present);
  OverlayPresent(committed_, &present);
  OverlayPresent(pending_, &present);
  for (const auto& [id, alive] : present) {
    if (alive) {
      out->push_back(id);
    }
  }
}

bool BetreeEngine::WantsBase() const {
  return base_pending_ || staged_bytes() > params_.root_buffer_bytes;
}

void BetreeEngine::ApplyToLeaf(Node* leaf, std::map<uint64_t, Msg>&& msgs) {
  std::vector<Node::Entry> out;
  out.reserve(leaf->entries.size() + msgs.size());
  auto it = leaf->entries.begin();
  for (auto& [id, m] : msgs) {
    while (it != leaf->entries.end() && it->id < id) {
      out.push_back(std::move(*it));
      ++it;
    }
    bool match = it != leaf->entries.end() && it->id == id;
    switch (m.kind) {
      case MsgKind::kUpsert: {
        Node::Entry e;
        e.id = id;
        e.meta_len = std::min<uint64_t>(m.meta_len, m.bytes.size());
        e.bytes = std::move(m.bytes);
        out.push_back(std::move(e));
        if (match) {
          ++it;  // replaced
        }
        break;
      }
      case MsgKind::kDelete:
        if (match) {
          ++it;  // dropped
        }
        break;
      case MsgKind::kMapUpdate:
        if (match) {
          it->meta_len = std::min<uint64_t>(m.meta_len, it->bytes.size());
          out.push_back(std::move(*it));
          ++it;
        }
        break;
      case MsgKind::kLabelDelta:
        break;  // never routed into the tree
    }
  }
  while (it != leaf->entries.end()) {
    out.push_back(std::move(*it));
    ++it;
  }
  leaf->entries = std::move(out);
}

std::vector<std::unique_ptr<Node>> BetreeEngine::SplitLeaf(std::unique_ptr<Node> leaf) {
  std::vector<std::unique_ptr<Node>> out;
  auto piece = std::make_unique<Node>();
  uint64_t sz = 8 + 1 + 4 + 8;
  for (Node::Entry& e : leaf->entries) {
    uint64_t esz = 24 + e.bytes.size() + 8;
    if (!piece->entries.empty() && sz + esz > params_.node_bytes) {
      out.push_back(std::move(piece));
      piece = std::make_unique<Node>();
      sz = 8 + 1 + 4 + 8;
    }
    sz += esz;
    piece->entries.push_back(std::move(e));
  }
  out.push_back(std::move(piece));
  // The split leaf's on-disk image is superseded; the first piece inherits
  // the extent (still dirty) so the ordinary rewrite path retires it.
  out[0]->extent = leaf->extent;
  return out;
}

std::vector<std::unique_ptr<Node>> BetreeEngine::SplitInterior(std::unique_ptr<Node> n) {
  size_t nc = n->children.size();
  size_t pieces = (nc + params_.fanout - 1) / params_.fanout;
  size_t chunk = (nc + pieces - 1) / pieces;
  std::vector<std::unique_ptr<Node>> out;
  for (size_t i = 0; i < nc; i += chunk) {
    size_t end = std::min(i + chunk, nc);
    auto p = std::make_unique<Node>();
    p->level = n->level;
    for (size_t j = i; j < end; ++j) {
      p->keys.push_back(n->keys[j]);
      p->children.push_back(std::move(n->children[j]));
    }
    // Resting messages move with the key range they route to.
    uint64_t lo = i == 0 ? 0 : n->keys[i];
    uint64_t hi = end == nc ? ~0ULL : n->keys[end];
    std::map<uint64_t, Msg> moved = n->buffer.ExtractRange(lo, hi);
    for (auto& [id, m] : moved) {
      p->buffer.Apply(std::move(m));
    }
    out.push_back(std::move(p));
  }
  out[0]->extent = n->extent;  // superseded image, retired on rewrite
  return out;
}

void BetreeEngine::FlushOverflow(Node* n) {
  while (n->buffer.bytes() > params_.buffer_bytes && !n->buffer.objects().empty()) {
    // Push the heaviest child's share down — one batched descent instead of
    // per-message random writes.
    std::vector<uint64_t> weight(n->children.size(), 0);
    for (const auto& [id, m] : n->buffer.objects()) {
      weight[RouteChild(n, id)] += MsgWireBytes(m);
    }
    size_t ci = static_cast<size_t>(
        std::max_element(weight.begin(), weight.end()) - weight.begin());
    uint64_t lo = ci == 0 ? 0 : n->keys[ci];
    uint64_t hi = ci + 1 < n->children.size() ? n->keys[ci + 1] : ~0ULL;
    std::map<uint64_t, Msg> sub = n->buffer.ExtractRange(lo, hi);
    if (sub.empty()) {
      break;  // defensive: weights said otherwise, but never loop forever
    }
    ReplaceChild(n, ci, Inject(std::move(n->children[ci]), std::move(sub)));
  }
}

std::vector<std::unique_ptr<Node>> BetreeEngine::Inject(std::unique_ptr<Node> n,
                                                        std::map<uint64_t, Msg> msgs) {
  std::vector<std::unique_ptr<Node>> out;
  if (msgs.empty()) {
    out.push_back(std::move(n));
    return out;
  }
  if (n->level == 0) {
    ApplyToLeaf(n.get(), std::move(msgs));
    n->dirty = true;
    if (NodeWireBytes(*n) > 2 * params_.node_bytes && n->entries.size() > 1) {
      return SplitLeaf(std::move(n));
    }
    out.push_back(std::move(n));
    return out;
  }
  MsgBuffer add;
  for (auto& [id, m] : msgs) {
    add.Apply(std::move(m));
  }
  n->buffer.ApplyAll(std::move(add));  // injected messages are the newest
  n->dirty = true;
  FlushOverflow(n.get());
  if (n->children.size() > params_.fanout) {
    return SplitInterior(std::move(n));
  }
  out.push_back(std::move(n));
  return out;
}

Status BetreeEngine::WriteDirtyNodes(Node* root) {
  std::vector<Node*> dirty;
  CollectDirty(root, &dirty);
  if (dirty.empty()) {
    return Status::kOk;
  }
  std::vector<uint64_t> sizes;
  sizes.reserve(dirty.size());
  uint64_t total = 0;
  for (Node* n : dirty) {
    sizes.push_back(NodeWireBytes(*n));
    total += sizes.back();
  }
  // One arena allocation when a large-enough free extent exists: the whole
  // flush becomes a single sequential run (children before parents, so a
  // recovery DFS reads it mostly forward).
  bool arena = false;
  uint64_t arena_off = 0;
  if (total <= ctx_.alloc->largest_free()) {
    Result<uint64_t> off = ctx_.alloc->Allocate(total);
    if (!off.ok()) {
      return off.status();
    }
    arena = true;
    arena_off = off.value();
  }
  uint64_t cursor = arena_off;
  for (size_t i = 0; i < dirty.size(); ++i) {
    Node* n = dirty[i];
    uint64_t slot;
    if (arena) {
      slot = cursor;
    } else {
      Result<uint64_t> off = ctx_.alloc->Allocate(sizes[i]);
      if (!off.ok()) {
        return off.status();  // written prefix stays clean; retry rewrites the rest
      }
      slot = off.value();
    }
    std::vector<uint8_t> img;
    img.reserve(sizes[i]);
    SerializeNode(*n, &img);  // children already rewritten: extents current
    Status st = ctx_.disk->Write(slot, img.data(), img.size());
    if (st != Status::kOk) {
      // This node stays dirty and keeps its old extent; nothing durable
      // references the failed slot (or the unwritten arena tail) — free it.
      StoreAllocNoFail cleanup;
      if (arena) {
        ctx_.alloc->Free(cursor, arena_off + total - cursor);
      } else {
        ctx_.alloc->Free(slot, sizes[i]);
      }
      return st;
    }
    StoreAllocNoFail book;
    if (n->extent.length != 0) {
      ctx_.pending_frees->push_back(n->extent);
    }
    n->extent = Extent{slot, img.size()};
    n->dirty = false;
    if (arena) {
      cursor += img.size();
    }
  }
  return Status::kOk;
}

Status BetreeEngine::EmitSectionBody(bool base,
                                     const std::vector<LabelTableRecord>* label_delta,
                                     std::vector<uint8_t>* image) {
  using storewire::PutU64;
  if (!base) {
    // An increment is just the staged batch — label deltas ride as messages
    // (the store writes zero store-level label records for us), object
    // upserts/deletes follow. Nothing is consumed until OnSectionWritten.
    MsgBuffer batch;
    if (label_delta != nullptr) {
      for (const LabelTableRecord& rec : *label_delta) {
        Msg m;
        m.kind = MsgKind::kLabelDelta;
        m.id = rec.id;
        m.bytes = rec.bytes;
        batch.Apply(std::move(m));
      }
    }
    for (const auto& [id, m] : pending_.objects()) {
      batch.Apply(Msg(m));
    }
    batch.Serialize(image);
    return Status::kOk;
  }
  // Base flush: inject every staged message into the tree, rebalance, and
  // rewrite dirty nodes to fresh extents. From here until a base section is
  // durably written, the staged state lives ONLY in the in-memory tree — the
  // sticky flag forces every retry to be a base.
  base_pending_ = true;
  MsgBuffer work = std::move(committed_);
  committed_ = MsgBuffer();
  work.ApplyAll(std::move(pending_));  // pending is newer
  // Label deltas are dropped here: the store-level base section re-emits the
  // complete label table.
  std::map<uint64_t, Msg> msgs = work.ExtractRange(0, ~0ULL);
  if (root_ == nullptr && msgs.empty()) {
    PutU64(image, 0);
    PutU64(image, 0);
    PutU64(image, 0);
    return Status::kOk;
  }
  if (root_ == nullptr) {
    root_ = std::make_unique<Node>();
  }
  if (!msgs.empty()) {
    std::vector<std::unique_ptr<Node>> pieces =
        Inject(std::move(root_), std::move(msgs));
    while (pieces.size() > 1) {
      // Widen upward until one root remains (chunks of ≤ fanout).
      std::vector<std::unique_ptr<Node>> parents;
      for (size_t i = 0; i < pieces.size(); i += params_.fanout) {
        size_t end = std::min<size_t>(i + params_.fanout, pieces.size());
        auto p = std::make_unique<Node>();
        p->level = pieces[i]->level + 1;
        for (size_t j = i; j < end; ++j) {
          p->keys.push_back(MinKey(pieces[j].get()));
          p->children.push_back(std::move(pieces[j]));
        }
        parents.push_back(std::move(p));
      }
      pieces = std::move(parents);
    }
    root_ = std::move(pieces[0]);
  }
  Status st = WriteDirtyNodes(root_.get());
  if (st != Status::kOk) {
    return st;
  }
  PutU64(image, root_->extent.offset);
  PutU64(image, root_->extent.length);
  PutU64(image, node_count());
  return Status::kOk;
}

void BetreeEngine::OnSectionWritten(bool base) {
  if (base) {
    committed_.Clear();
    pending_.Clear();
    base_pending_ = false;
    return;
  }
  committed_.ApplyAll(std::move(pending_));
}

BetreeEngine::Lookup BetreeEngine::Find(uint64_t id) {
  Lookup lk;
  // Scan newest → oldest. A kMapUpdate only renames the metadata prefix, so
  // it is noted and the scan continues to the layer holding the image.
  auto consider = [&lk](const Msg& m) -> bool {
    if (m.kind == MsgKind::kMapUpdate) {
      if (lk.map_patch == nullptr) {
        lk.map_patch = &m;
      }
      return false;
    }
    lk.msg = &m;
    return true;
  };
  bool done = false;
  for (const MsgBuffer* b : {&pending_, &committed_}) {
    if (done) {
      break;
    }
    auto it = b->objects().find(id);
    if (it != b->objects().end()) {
      done = consider(it->second);
    }
  }
  Node* cur = root_.get();
  while (cur != nullptr && cur->level > 0) {
    if (!done) {
      auto bit = cur->buffer.objects().find(id);
      if (bit != cur->buffer.objects().end()) {
        done = consider(bit->second);
      }
    }
    cur = cur->children[RouteChild(cur, id)].get();
  }
  lk.leaf = cur;
  if (cur != nullptr) {
    lk.entry = FindEntry(cur, id);
  }
  return lk;
}

Status BetreeEngine::FlushPages(ObjectId id, uint64_t offset,
                                const std::vector<uint8_t>& pages, bool* needs_commit) {
  *needs_commit = false;
  Lookup lk = Find(id);
  if (lk.msg != nullptr && lk.msg->kind == MsgKind::kDelete) {
    return Status::kNotFound;
  }
  if (lk.msg != nullptr && lk.msg->kind == MsgKind::kUpsert) {
    // The freshest image is a staged message: patch a copy and restage it —
    // the pages become durable with this commit's section. A newer metadata
    // patch folds into the restaged copy.
    Msg patched(*lk.msg);
    if (lk.map_patch != nullptr) {
      patched.meta_len = lk.map_patch->meta_len;
    }
    uint64_t meta = std::min<uint64_t>(patched.meta_len, patched.bytes.size());
    patched.meta_len = meta;
    uint64_t capacity = patched.bytes.size() - meta;
    if (offset >= capacity) {
      return Status::kOk;
    }
    uint64_t n = std::min<uint64_t>(pages.size(), capacity - offset);
    if (n == 0) {
      return Status::kOk;
    }
    memcpy(patched.bytes.data() + meta + offset, pages.data(), n);
    pending_.Apply(std::move(patched));
    *needs_commit = true;
    return Status::kOk;
  }
  if (lk.leaf == nullptr || lk.entry < 0) {
    return Status::kNotFound;  // never checkpointed: nothing to flush into
  }
  Node::Entry& e = lk.leaf->entries[static_cast<size_t>(lk.entry)];
  uint64_t meta = std::min<uint64_t>(e.meta_len, e.bytes.size());
  if (lk.map_patch != nullptr) {
    meta = std::min<uint64_t>(lk.map_patch->meta_len, e.bytes.size());
  }
  uint64_t capacity = e.bytes.size() - meta;
  if (offset >= capacity) {
    return Status::kOk;
  }
  uint64_t n = std::min<uint64_t>(pages.size(), capacity - offset);
  if (n == 0) {
    return Status::kOk;
  }
  if (lk.map_patch != nullptr || lk.leaf->dirty || lk.leaf->extent.length == 0) {
    // No valid on-disk home for these bytes (unflushed leaf, or a buffered
    // metadata patch changes the layout): stage the patched image instead.
    Msg m;
    m.kind = MsgKind::kUpsert;
    m.id = id;
    m.meta_len = meta;
    m.bytes = e.bytes;
    memcpy(m.bytes.data() + meta + offset, pages.data(), n);
    pending_.Apply(std::move(m));
    *needs_commit = true;
    return Status::kOk;
  }
  // Leaf-resident with a clean image: write in place past the blob's
  // checksummed prefix (same writeback semantics as the blob engine) and
  // keep the cache byte-identical to disk.
  memcpy(e.bytes.data() + meta + offset, pages.data(), n);
  uint64_t disk_off =
      lk.leaf->extent.offset + LeafBlobOffset(*lk.leaf, lk.entry) + meta + offset;
  Status st = ctx_.disk->Write(disk_off, pages.data(), n);
  if (st != Status::kOk) {
    return st;
  }
  return ctx_.disk->Flush();
}

Result<uint64_t> BetreeEngine::TouchObject(ObjectId id) {
  // Demand-page simulation: charge the node reads along the root→leaf path
  // a cold fault would take. Staged messages are already "in memory" (they
  // arrived with a section image) and charge nothing.
  for (const MsgBuffer* b : {&pending_, &committed_}) {
    auto it = b->objects().find(id);
    if (it != b->objects().end()) {
      if (it->second.kind == MsgKind::kDelete) {
        return Status::kNotFound;
      }
      if (it->second.kind == MsgKind::kUpsert) {
        return it->second.bytes.size() + 8;
      }
      // metadata-only message: keep looking for the image in older layers
    }
  }
  Node* cur = root_.get();
  while (cur != nullptr) {
    if (!cur->dirty && cur->extent.length != 0) {
      const Extent& e = cur->extent;
      std::vector<uint8_t> buf(std::min<uint64_t>(e.length, 64 * 1024));
      uint64_t pos = 0;
      while (pos < e.length) {
        uint64_t n = std::min<uint64_t>(buf.size(), e.length - pos);
        Status st = ctx_.disk->Read(e.offset + pos, buf.data(), n);
        if (st != Status::kOk) {
          return st;
        }
        pos += n;
      }
    }
    if (cur->level == 0) {
      int idx = FindEntry(cur, id);
      if (idx < 0) {
        return Status::kNotFound;
      }
      return cur->entries[static_cast<size_t>(idx)].bytes.size() + 8;
    }
    auto bit = cur->buffer.objects().find(id);
    if (bit != cur->buffer.objects().end()) {
      if (bit->second.kind == MsgKind::kDelete) {
        return Status::kNotFound;
      }
      if (bit->second.kind == MsgKind::kUpsert) {
        return bit->second.bytes.size() + 8;
      }
    }
    cur = cur->children[RouteChild(cur, id)].get();
  }
  return Status::kNotFound;
}

Result<std::unique_ptr<Node>> BetreeEngine::ReadNode(const Extent& e, int depth) {
  if (depth > kMaxTreeDepth || e.length < 8 + 1 + 4 + 8 || e.length > kMaxNodeBytes) {
    return Status::kCorrupt;
  }
  std::vector<uint8_t> img(e.length);
  Status st = ctx_.disk->Read(e.offset, img.data(), img.size());
  if (st != Status::kOk) {
    return st;
  }
  storewire::Reader r{img.data(), img.size()};
  uint64_t magic = r.U64();
  uint8_t level = r.U8();
  if (r.fail || magic != kNodeMagic) {
    return Status::kCorrupt;
  }
  auto n = std::make_unique<Node>();
  n->level = level;
  n->extent = e;
  n->dirty = false;
  if (level == 0) {
    uint32_t cnt = r.U32();
    if (r.fail) {
      return Status::kCorrupt;
    }
    uint64_t header_len = 8 + 1 + 4 + static_cast<uint64_t>(cnt) * 24;
    if (header_len + 8 > img.size()) {
      return Status::kCorrupt;
    }
    std::vector<std::pair<uint64_t, uint64_t>> meta_lens;  // (meta_len, len)
    n->entries.reserve(cnt);
    uint64_t prev_id = 0;
    for (uint32_t j = 0; j < cnt; ++j) {
      Node::Entry ent;
      ent.id = r.U64();
      ent.meta_len = r.U64();
      uint64_t len = r.U64();
      if (r.fail || (j > 0 && ent.id <= prev_id)) {
        return Status::kCorrupt;
      }
      prev_id = ent.id;
      meta_lens.emplace_back(ent.meta_len, len);
      n->entries.push_back(std::move(ent));
    }
    uint64_t want = r.U64();
    if (r.fail || StoreChecksum(img.data(), header_len) != want) {
      return Status::kCorrupt;
    }
    for (uint32_t j = 0; j < cnt; ++j) {
      uint64_t len = meta_lens[j].second;
      if (!r.Bytes(&n->entries[j].bytes, len)) {
        return Status::kCorrupt;
      }
      uint64_t blob_want = r.U64();
      uint64_t m = std::min(meta_lens[j].first, len);
      if (r.fail || StoreChecksum(n->entries[j].bytes.data(), m) != blob_want) {
        return Status::kCorrupt;
      }
    }
    if (r.pos != img.size()) {
      return Status::kCorrupt;
    }
    return n;
  }
  // Interior: the trailing checksum covers the whole image (resting
  // messages included) — verify before trusting any count.
  uint64_t want;
  memcpy(&want, img.data() + img.size() - 8, 8);
  if (StoreChecksum(img.data(), img.size() - 8) != want) {
    return Status::kCorrupt;
  }
  uint32_t cnt = r.U32();
  if (r.fail || cnt == 0) {
    return Status::kCorrupt;
  }
  std::vector<Extent> child_extents;
  child_extents.reserve(cnt);
  for (uint32_t j = 0; j < cnt; ++j) {
    uint64_t key = r.U64();
    Extent ce;
    ce.offset = r.U64();
    ce.length = r.U64();
    if (r.fail || (j > 0 && key <= n->keys.back())) {
      return Status::kCorrupt;
    }
    n->keys.push_back(key);
    child_extents.push_back(ce);
  }
  uint32_t n_msgs = r.U32();
  for (uint32_t j = 0; j < n_msgs; ++j) {
    Msg m;
    if (!ParseMsg(&r, &m)) {
      return Status::kCorrupt;
    }
    n->buffer.Apply(std::move(m));
  }
  if (r.fail || r.pos != img.size() - 8) {
    return Status::kCorrupt;
  }
  for (const Extent& ce : child_extents) {
    Result<std::unique_ptr<Node>> child = ReadNode(ce, depth + 1);
    if (!child.ok()) {
      return child.status();
    }
    if (child.value()->level != n->level - 1) {
      return Status::kCorrupt;
    }
    n->children.push_back(child.take());
  }
  return n;
}

Status BetreeEngine::LoadSectionBody(bool base, storewire::Reader* r,
                                     const LabelSink& label_sink) {
  if (base) {
    uint64_t off = r->U64();
    uint64_t len = r->U64();
    uint64_t n_nodes = r->U64();
    if (r->fail) {
      return Status::kCorrupt;
    }
    root_.reset();
    committed_.Clear();
    pending_.Clear();
    base_pending_ = false;
    if (len == 0) {
      return n_nodes == 0 ? Status::kOk : Status::kCorrupt;
    }
    Result<std::unique_ptr<Node>> n = ReadNode(Extent{off, len}, 0);
    if (!n.ok()) {
      return n.status();
    }
    root_ = n.take();
    if (CountNodes(root_.get()) != n_nodes) {
      return Status::kCorrupt;
    }
    return Status::kOk;
  }
  uint32_t n_msgs = r->U32();
  for (uint32_t j = 0; j < n_msgs; ++j) {
    Msg m;
    if (!ParseMsg(r, &m)) {
      return Status::kCorrupt;
    }
    if (m.kind == MsgKind::kLabelDelta) {
      label_sink(static_cast<uint32_t>(m.id), std::move(m.bytes));
    } else {
      committed_.Apply(std::move(m));
    }
  }
  return Status::kOk;
}

void BetreeEngine::CollectExtents(std::vector<Extent>* out) const {
  CollectNodeExtents(root_.get(), out);
}

Status BetreeEngine::LoadAllObjects(const ObjectSink& fn) {
  std::map<uint64_t, const std::vector<uint8_t>*> eff;
  CollectImages(root_.get(), &eff);
  OverlayBuffer(committed_, &eff);
  OverlayBuffer(pending_, &eff);
  for (const auto& [id, bytes] : eff) {
    Status st = fn(*bytes);
    if (st != Status::kOk) {
      return st;
    }
  }
  return Status::kOk;
}

Status BetreeEngine::MergeSectionBodies(const std::vector<std::vector<uint8_t>>& bodies,
                                        std::vector<uint8_t>* out) {
  // Message coalescing IS the fold: replaying the merged batch is equivalent
  // to replaying the originals in order (latest-wins per object and label).
  StoreAlloc::Check();
  MsgBuffer merged;
  for (const std::vector<uint8_t>& body : bodies) {
    storewire::Reader r{body.data(), body.size()};
    uint32_t n_msgs = r.U32();
    for (uint32_t j = 0; j < n_msgs; ++j) {
      Msg m;
      if (!ParseMsg(&r, &m)) {
        return Status::kCorrupt;
      }
      merged.Apply(std::move(m));
    }
    if (r.fail) {
      return Status::kCorrupt;
    }
  }
  merged.Serialize(out);
  return Status::kOk;
}

uint64_t BetreeEngine::node_count() const { return CountNodes(root_.get()); }

int BetreeEngine::height() const {
  if (root_ == nullptr) {
    return 0;
  }
  return root_->level + 1;
}

}  // namespace histar
