// A latency-modeled virtual disk.
//
// The paper's evaluation ran on a 7,200 RPM Seagate ST340014A EIDE drive
// (8.3 ms rotational period, ~58 MB/s sustained bandwidth). We reproduce the
// I/O-bound rows of Figure 12 on a virtual-time model of that drive: every
// read/write advances a simulated-nanosecond clock by seek + rotation +
// transfer, with sequential accesses paying transfer cost only and an
// optional read-lookahead window emulating the drive's prefetch cache (the
// paper's "no IDE disk prefetch" row is this flag turned off).
//
// Two storage modes:
//  * data mode: bytes are stored in memory (used by tests and recovery)
//  * latency-only mode: bytes are discarded; only the clock advances (used
//    by benchmarks that push hundreds of MB)
#ifndef SRC_STORE_DISK_MODEL_H_
#define SRC_STORE_DISK_MODEL_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/core/status.h"
#include "src/core/sync.h"
#include "src/core/thread_annotations.h"

namespace histar {

struct DiskGeometry {
  uint64_t capacity_bytes = 40ULL << 30;        // 40 GB
  uint64_t avg_seek_ns = 8'500'000;             // 8.5 ms average seek
  // Short head movements (within a few tracks) settle much faster than the
  // capacity-average seek; nearby extents therefore cost ~1 ms, not 8.5 ms.
  uint64_t track_seek_ns = 1'000'000;
  uint64_t near_seek_bytes = 32 << 20;          // "nearby" radius
  uint64_t rotation_ns = 8'333'333;             // 8.33 ms per revolution (7200 RPM)
  uint64_t bandwidth_bytes_per_sec = 58'000'000;  // sustained media rate
  uint64_t lookahead_window_bytes = 256 * 1024;   // drive prefetch reach
  bool lookahead_enabled = true;
  // Cost of a synchronous barrier (Flush) when writes are outstanding: the
  // time until the sector passes under the head and the drive acknowledges.
  uint64_t sync_barrier_ns = 8'333'333;  // one rotation
  // Per-request setup cost charged to every write (controller/DMA setup and
  // completion). This is what separates block-granular writeback (ext3
  // submits one request per 4 kB block) from extent-granular writeback
  // (HiStar submits one request per object image) — the paper's explanation
  // for ext3's slower large-file streaming.
  uint64_t write_request_overhead_ns = 64'000;
  // If false, latency-only mode: contents are not retained.
  bool store_data = true;
  // If true, every operation costs zero simulated time (unit tests).
  bool zero_latency = false;
};

// Programmable fault injection (PR 7). A FaultPlan is a list of one-shot
// rules; each rule targets reads or writes and fires on the first operation
// whose index-since-arming and offset range both match. Kinds:
//  * kTorn        (write) persist only the first `arg` bytes, then the
//                 device crashes — a torn write with an ARBITRARY prefix,
//                 unlike CrashAfterBytes' byte-budget tear
//  * kMisdirect   (write) the full payload silently lands `arg` bytes away
//                 from the requested offset; the op reports kOk (the disk
//                 lies — firmware misdirected write)
//  * kBitFlip     (write) persist with bit `arg mod len*8` inverted, report
//                 kOk; (read) return the true data with that bit inverted —
//                 durable vs transient silent corruption
//  * kReadError   (read) fail with kIoError, returning nothing; transient
//                 (the rule is consumed, a retry succeeds)
//  * kWriteError  (write) fail with kIoError, persisting nothing
//  * kCrashDevice (either) the device crashes before performing the op
// Rules are consumed on firing; per-kind counters record what actually
// fired so campaigns can assert coverage. ClearFaults() drops unfired
// rules; Repair() keeps its historical meaning (clear the crashed state,
// contents survive) and does NOT touch the plan.
enum class FaultKind : uint8_t {
  kTorn = 0,
  kMisdirect,
  kBitFlip,
  kReadError,
  kWriteError,
  kCrashDevice,
};
inline constexpr size_t kNumFaultKinds = 6;

struct FaultRule {
  FaultKind kind = FaultKind::kCrashDevice;
  bool on_read = false;      // match reads (true) or writes (false)
  // Operation index, counted per direction from SetFaultPlan (0 = the next
  // matching op). kAnyIndex fires on the first op in the offset range.
  static constexpr uint64_t kAnyIndex = ~uint64_t{0};
  uint64_t op_index = kAnyIndex;
  // Offset window [offset_lo, offset_hi) the op's start offset must fall in.
  uint64_t offset_lo = 0;
  uint64_t offset_hi = ~uint64_t{0};
  // Kind-specific: torn prefix length / misdirect delta / bit index.
  uint64_t arg = 0;
};

struct FaultPlan {
  std::vector<FaultRule> rules;
};

class DiskModel {
 public:
  explicit DiskModel(const DiskGeometry& geometry);

  // Reads `len` bytes at `offset`. In latency-only mode the buffer is
  // zero-filled. Returns kRange past capacity, kCrashed after a simulated
  // crash point has been hit.
  Status Read(uint64_t offset, void* buf, uint64_t len);
  // Writes `len` bytes. In a torn-write crash, a prefix may be persisted.
  Status Write(uint64_t offset, const void* buf, uint64_t len);
  // Barrier: orders all prior writes (the model charges no extra time; the
  // EIDE write cache of the paper's OpenBSD footnote is out of scope).
  Status Flush();

  // Simulated time consumed so far, in nanoseconds.
  uint64_t sim_time_ns() const;
  double sim_time_seconds() const { return static_cast<double>(sim_time_ns()) / 1e9; }
  void ResetSimTime();

  // Operation counters for benchmarks and tests. Locked: a bench thread may
  // poll them while store worker threads are mid-write (these used to read
  // the counters bare — a data race the annotation pass surfaced).
  uint64_t read_ops() const {
    MutexLock lock(&mu_);
    return read_ops_;
  }
  uint64_t write_ops() const {
    MutexLock lock(&mu_);
    return write_ops_;
  }
  uint64_t bytes_written() const {
    MutexLock lock(&mu_);
    return bytes_written_;
  }
  // Operations that paid a mechanical positioning cost (seek + rotational
  // latency) — the restore-path benchmarks' "how sequential was that" metric.
  uint64_t seek_ops() const {
    MutexLock lock(&mu_);
    return seek_ops_;
  }

  // Crash injection: after `n` more bytes have been written, fail every
  // subsequent operation with kCrashed; the write that crosses the boundary
  // persists only its first bytes (a torn write).
  void CrashAfterBytes(uint64_t n);
  // Clears the crash condition (the machine "reboots"; contents survive).
  void Repair();
  bool crashed() const {
    MutexLock lock(&mu_);
    return crashed_;
  }

  // Installs a fault plan (replacing any previous one) and resets the
  // per-direction op counters rules match against.
  void SetFaultPlan(FaultPlan plan);
  // Drops unfired rules. Does not clear a crash the plan already caused.
  void ClearFaults();
  // Rules that have fired since construction, total and per kind.
  uint64_t faults_injected() const;
  uint64_t faults_injected(FaultKind kind) const;
  // Unfired rules still armed (campaigns: did the scheduled fault fire?).
  size_t pending_faults() const;

  // geo_ is configuration: written only by the constructor and
  // set_lookahead_enabled (now under mu_ — it used to race AccessCost's
  // reads), read everywhere. The returned reference outlives the lock, so
  // callers treat the geometry as settle-then-read configuration.
  const DiskGeometry& geometry() const { return geo_; }
  void set_lookahead_enabled(bool on) {
    MutexLock lock(&mu_);
    geo_.lookahead_enabled = on;
  }

 private:
  // Service-time model, mu_ held.
  uint64_t AccessCost(uint64_t offset, uint64_t len, bool is_read) REQUIRES(mu_);
  // Pops the first armed rule matching this op (mu_ held); counts the fire.
  std::optional<FaultRule> MatchFault(bool is_read, uint64_t offset) REQUIRES(mu_);

  DiskGeometry geo_;
  mutable Mutex mu_;
  std::vector<uint8_t> data_ GUARDED_BY(mu_);  // only in data mode
  uint64_t sim_time_ns_ GUARDED_BY(mu_) = 0;
  uint64_t head_pos_ GUARDED_BY(mu_) = 0;       // byte offset the head is "at"
  uint64_t prefetch_end_ GUARDED_BY(mu_) = 0;   // end of the lookahead window
  uint64_t read_ops_ GUARDED_BY(mu_) = 0;
  uint64_t write_ops_ GUARDED_BY(mu_) = 0;
  uint64_t writes_since_flush_ GUARDED_BY(mu_) = 0;
  uint64_t bytes_written_ GUARDED_BY(mu_) = 0;
  uint64_t seek_ops_ GUARDED_BY(mu_) = 0;
  bool crash_armed_ GUARDED_BY(mu_) = false;
  uint64_t crash_after_ GUARDED_BY(mu_) = 0;
  bool crashed_ GUARDED_BY(mu_) = false;

  // Fault plan state: armed rules plus the per-direction op indices counted
  // from the most recent SetFaultPlan.
  std::vector<FaultRule> fault_rules_ GUARDED_BY(mu_);
  uint64_t fault_read_index_ GUARDED_BY(mu_) = 0;
  uint64_t fault_write_index_ GUARDED_BY(mu_) = 0;
  uint64_t fault_counts_[kNumFaultKinds] GUARDED_BY(mu_) = {};
};

}  // namespace histar

#endif  // SRC_STORE_DISK_MODEL_H_
