// Little-endian wire primitives shared by the store's on-disk formats:
// checkpoint sections (single_level_store.cc), engine section bodies
// (engine.cc), Bε-tree messages and nodes (msg.h, betree.cc). The kernel's
// blob serializer (kernel_persist.cc) keeps its own copy on purpose — the
// two formats are independent and must stay independently evolvable.
#ifndef SRC_STORE_WIRE_FORMAT_H_
#define SRC_STORE_WIRE_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace histar {
namespace storewire {

inline void PutU8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }

inline void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

inline void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

// Bounds-checked cursor over an untrusted byte image. Any overrun sets
// `fail` and returns zeros; callers check `fail` once at the end (or at
// natural validation points) instead of after every field.
struct Reader {
  const uint8_t* data;
  size_t len;
  size_t pos = 0;
  bool fail = false;

  uint8_t U8() {
    if (pos + 1 > len) {
      fail = true;
      return 0;
    }
    return data[pos++];
  }
  uint32_t U32() {
    if (pos + 4 > len) {
      fail = true;
      return 0;
    }
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(data[pos + static_cast<size_t>(i)]) << (8 * i);
    }
    pos += 4;
    return v;
  }
  uint64_t U64() {
    if (pos + 8 > len) {
      fail = true;
      return 0;
    }
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(data[pos + static_cast<size_t>(i)]) << (8 * i);
    }
    pos += 8;
    return v;
  }
  bool Bytes(std::vector<uint8_t>* out, size_t n) {
    if (pos + n > len) {
      fail = true;
      return false;
    }
    out->assign(data + pos, data + pos + n);
    pos += n;
    return true;
  }
};

}  // namespace storewire
}  // namespace histar

#endif  // SRC_STORE_WIRE_FORMAT_H_
