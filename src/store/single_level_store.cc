#include "src/store/single_level_store.h"

#include <cstring>

namespace histar {

SingleLevelStore::SingleLevelStore(DiskModel* disk, const StoreTuning& tuning)
    : disk_(disk),
      tuning_(tuning),
      alloc_(2 * 4096 + tuning.log_region_bytes,
             disk->geometry().capacity_bytes - (2 * 4096 + tuning.log_region_bytes)) {}

uint64_t SingleLevelStore::Checksum(const void* data, size_t len) {
  // FNV-1a, folded over 8-byte words where possible. Not cryptographic —
  // it only needs to catch torn writes.
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

Status SingleLevelStore::Format() {
  std::lock_guard<std::mutex> lock(mu_);
  objmap_.Clear();
  alloc_.Reset();
  root_ = kInvalidObject;
  generation_ = 0;
  which_sb_ = false;
  log_head_ = 0;
  log_seq_ = 0;
  log_applied_seq_ = 0;
  log_pending_ = 0;
  log_tail_.clear();
  return WriteSuperblock();
}

Status SingleLevelStore::WriteSuperblock() {
  Superblock sb;
  sb.magic = kMagic;
  sb.generation = ++generation_;
  sb.root = root_;
  // objmap location was stamped by WriteObjMap into objmap_extent_ fields —
  // we pass them via members set there; see WriteObjMap.
  sb.objmap_offset = objmap_extent_offset_;
  sb.objmap_length = objmap_extent_length_;
  sb.log_applied_seq = log_applied_seq_;
  sb.checksum = 0;
  sb.checksum = Checksum(&sb, sizeof(sb));
  uint64_t slot = which_sb_ ? 4096 : 0;
  which_sb_ = !which_sb_;
  Status st = disk_->Write(slot, &sb, sizeof(sb));
  if (st != Status::kOk) {
    return st;
  }
  return disk_->Flush();
}

Status SingleLevelStore::ReadSuperblocks(Superblock* out) {
  Superblock best;
  bool found = false;
  for (uint64_t slot : {uint64_t{0}, uint64_t{4096}}) {
    Superblock sb;
    if (disk_->Read(slot, &sb, sizeof(sb)) != Status::kOk) {
      continue;
    }
    uint64_t want = sb.checksum;
    sb.checksum = 0;
    if (sb.magic != kMagic || Checksum(&sb, sizeof(sb)) != want) {
      continue;
    }
    sb.checksum = want;
    if (!found || sb.generation > best.generation) {
      best = sb;
      found = true;
    }
  }
  if (!found) {
    return Status::kNotFound;
  }
  *out = best;
  return Status::kOk;
}

Status SingleLevelStore::WriteObject(ObjectId id, const std::vector<uint8_t>& bytes) {
  // Shadow write: new extent first, then retire the old one, so a crash
  // mid-checkpoint leaves the previous snapshot intact.
  Result<uint64_t> off = alloc_.Allocate(bytes.size() + 8);
  if (!off.ok()) {
    return off.status();
  }
  uint64_t csum = Checksum(bytes.data(), bytes.size());
  Status st = disk_->Write(off.value(), bytes.data(), bytes.size());
  if (st == Status::kOk) {
    st = disk_->Write(off.value() + bytes.size(), &csum, 8);
  }
  if (st != Status::kOk) {
    alloc_.Free(off.value(), bytes.size() + 8);
    return st;
  }
  if (std::optional<Extent> old = objmap_.Find(id); old.has_value()) {
    pending_frees_.push_back(*old);
  }
  objmap_.Insert(id, Extent{off.value(), bytes.size() + 8});
  return Status::kOk;
}

Status SingleLevelStore::WriteObjMap() {
  std::vector<uint8_t> image;
  objmap_.Serialize(&image);
  Result<uint64_t> off = alloc_.Allocate(image.size() + 8);
  if (!off.ok()) {
    return off.status();
  }
  uint64_t csum = Checksum(image.data(), image.size());
  Status st = disk_->Write(off.value(), image.data(), image.size());
  if (st == Status::kOk) {
    st = disk_->Write(off.value() + image.size(), &csum, 8);
  }
  if (st != Status::kOk) {
    alloc_.Free(off.value(), image.size() + 8);
    return st;
  }
  if (objmap_extent_length_ != 0) {
    pending_frees_.push_back(Extent{objmap_extent_offset_, objmap_extent_length_});
  }
  objmap_extent_offset_ = off.value();
  objmap_extent_length_ = image.size() + 8;
  return Status::kOk;
}

Status SingleLevelStore::Checkpoint(
    const std::vector<std::pair<ObjectId, std::vector<uint8_t>>>& dirty,
    const std::vector<ObjectId>& live, ObjectId root) {
  std::lock_guard<std::mutex> lock(mu_);
  // Drop objects that no longer exist.
  std::unordered_map<uint64_t, bool> live_set;
  live_set.reserve(live.size());
  for (ObjectId id : live) {
    live_set[id] = true;
  }
  std::vector<uint64_t> dead;
  objmap_.ForEach([&](const uint64_t& id, const Extent& e) {
    if (live_set.find(id) == live_set.end()) {
      dead.push_back(id);
      pending_frees_.push_back(e);
    }
  });
  for (uint64_t id : dead) {
    objmap_.Erase(id);
  }
  // Write every dirty object image to a fresh extent (delayed allocation:
  // the batch lands contiguously, in creation order).
  for (const auto& [id, bytes] : dirty) {
    Status st = WriteObject(id, bytes);
    if (st != Status::kOk) {
      return st;
    }
  }
  root_ = root;
  Status st = WriteObjMap();
  if (st != Status::kOk) {
    return st;
  }
  st = disk_->Flush();
  if (st != Status::kOk) {
    return st;
  }
  // The checkpoint subsumes everything in the log.
  log_applied_seq_ = log_seq_;
  log_head_ = 0;
  log_pending_ = 0;
  log_tail_.clear();
  st = WriteSuperblock();
  if (st != Status::kOk) {
    return st;
  }
  // Only after the superblock flip is it safe to reuse old extents.
  for (const Extent& e : pending_frees_) {
    alloc_.Free(e.offset, e.length);
  }
  pending_frees_.clear();
  return Status::kOk;
}

Status SingleLevelStore::SyncOne(ObjectId id, const std::vector<uint8_t>& bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (bytes.size() > tuning_.log_region_bytes / 4) {
    // Too big for the log: write straight to a fresh extent and commit.
    Status st = WriteObject(id, bytes);
    if (st != Status::kOk) {
      return st;
    }
    st = WriteObjMap();
    if (st != Status::kOk) {
      return st;
    }
    st = disk_->Flush();
    if (st != Status::kOk) {
      return st;
    }
    st = WriteSuperblock();
    if (st != Status::kOk) {
      return st;
    }
    for (const Extent& e : pending_frees_) {
      alloc_.Free(e.offset, e.length);
    }
    pending_frees_.clear();
    return Status::kOk;
  }
  // Record: [magic][seq][id][len][bytes][checksum-of-all-prior].
  uint64_t header[4] = {kLogMagic, ++log_seq_, id, bytes.size()};
  uint64_t record_len = sizeof(header) + bytes.size() + 8;
  if (log_head_ + record_len > tuning_.log_region_bytes) {
    // Log full: fold it into a checkpoint of the logged objects.
    Status st = ApplyLog();
    if (st != Status::kOk) {
      return st;
    }
  }
  uint64_t base = log_start() + log_head_;
  Status st = disk_->Write(base, header, sizeof(header));
  if (st == Status::kOk && !bytes.empty()) {
    st = disk_->Write(base + sizeof(header), bytes.data(), bytes.size());
  }
  if (st == Status::kOk) {
    uint64_t csum = Checksum(header, sizeof(header)) ^ Checksum(bytes.data(), bytes.size());
    st = disk_->Write(base + sizeof(header) + bytes.size(), &csum, 8);
  }
  if (st != Status::kOk) {
    return st;
  }
  st = disk_->Flush();
  if (st != Status::kOk) {
    return st;
  }
  log_head_ += record_len;
  ++log_pending_;
  ++log_records_total_;
  log_tail_[id] = bytes;
  if (log_pending_ >= tuning_.log_apply_threshold) {
    return ApplyLog();
  }
  return Status::kOk;
}

Status SingleLevelStore::ApplyLog() {
  ++log_applies_;
  for (const auto& [id, bytes] : log_tail_) {
    Status st = WriteObject(id, bytes);
    if (st != Status::kOk) {
      return st;
    }
  }
  Status st = WriteObjMap();
  if (st != Status::kOk) {
    return st;
  }
  st = disk_->Flush();
  if (st != Status::kOk) {
    return st;
  }
  log_applied_seq_ = log_seq_;
  log_head_ = 0;
  log_pending_ = 0;
  log_tail_.clear();
  st = WriteSuperblock();
  if (st != Status::kOk) {
    return st;
  }
  for (const Extent& e : pending_frees_) {
    alloc_.Free(e.offset, e.length);
  }
  pending_frees_.clear();
  return Status::kOk;
}

Status SingleLevelStore::SyncPages(ObjectId id, uint64_t offset, uint64_t len) {
  std::lock_guard<std::mutex> lock(mu_);
  std::optional<Extent> e = objmap_.Find(id);
  if (!e.has_value()) {
    return Status::kNotFound;  // never checkpointed: nothing to flush into
  }
  uint64_t start = std::min(e->offset + offset, e->offset + e->length);
  uint64_t n = std::min<uint64_t>(len, e->offset + e->length - start);
  if (n == 0) {
    return Status::kOk;
  }
  std::vector<uint8_t> pages(n, 0);
  Status st = disk_->Write(start, pages.data(), n);
  if (st != Status::kOk) {
    return st;
  }
  return disk_->Flush();
}

Result<uint64_t> SingleLevelStore::TouchObject(ObjectId id) {
  std::lock_guard<std::mutex> lock(mu_);
  std::optional<Extent> e = objmap_.Find(id);
  if (!e.has_value()) {
    return Status::kNotFound;
  }
  std::vector<uint8_t> buf(std::min<uint64_t>(e->length, 64 * 1024));
  uint64_t pos = 0;
  while (pos < e->length) {
    uint64_t n = std::min<uint64_t>(buf.size(), e->length - pos);
    Status st = disk_->Read(e->offset + pos, buf.data(), n);
    if (st != Status::kOk) {
      return st;
    }
    pos += n;
  }
  return e->length;
}

Status SingleLevelStore::Recover(Kernel* kernel) {
  std::lock_guard<std::mutex> lock(mu_);
  Superblock sb;
  Status st = ReadSuperblocks(&sb);
  if (st != Status::kOk) {
    return st;
  }
  generation_ = sb.generation;
  root_ = sb.root;
  log_applied_seq_ = sb.log_applied_seq;
  objmap_extent_offset_ = sb.objmap_offset;
  objmap_extent_length_ = sb.objmap_length;

  objmap_.Clear();
  if (sb.objmap_length >= 8) {
    std::vector<uint8_t> image(sb.objmap_length);
    st = disk_->Read(sb.objmap_offset, image.data(), image.size());
    if (st != Status::kOk) {
      return st;
    }
    uint64_t want;
    memcpy(&want, image.data() + image.size() - 8, 8);
    if (Checksum(image.data(), image.size() - 8) != want) {
      return Status::kCorrupt;
    }
    if (!objmap_.Deserialize(image.data(), image.size() - 8, nullptr)) {
      return Status::kCorrupt;
    }
  }

  // Rebuild the allocator: carve out live extents (and the objmap image)
  // from a freshly reset free pool.
  alloc_.Reset();
  std::vector<std::pair<uint64_t, Extent>> entries;
  objmap_.ForEach([&](const uint64_t& id, const Extent& e) { entries.emplace_back(id, e); });
  std::vector<Extent> used;
  used.reserve(entries.size() + 1);
  for (const auto& [id, e] : entries) {
    used.push_back(e);
  }
  if (objmap_extent_length_ != 0) {
    used.push_back(Extent{objmap_extent_offset_, objmap_extent_length_});
  }
  if (!alloc_.ReserveExtents(used)) {
    return Status::kCorrupt;
  }

  // Load every object into the kernel.
  for (const auto& [id, e] : entries) {
    std::vector<uint8_t> blob(e.length);
    st = disk_->Read(e.offset, blob.data(), blob.size());
    if (st != Status::kOk) {
      return st;
    }
    uint64_t want;
    memcpy(&want, blob.data() + blob.size() - 8, 8);
    if (Checksum(blob.data(), blob.size() - 8) != want) {
      return Status::kCorrupt;
    }
    blob.resize(blob.size() - 8);
    st = kernel->RestoreObject(blob);
    if (st != Status::kOk) {
      return st;
    }
  }

  // Replay the log tail: records with seq > applied and a valid checksum.
  uint64_t pos = 0;
  log_head_ = 0;
  log_seq_ = log_applied_seq_;
  log_pending_ = 0;
  log_tail_.clear();
  for (;;) {
    if (pos + 32 > tuning_.log_region_bytes) {
      break;
    }
    uint64_t header[4];
    if (disk_->Read(log_start() + pos, header, sizeof(header)) != Status::kOk) {
      break;
    }
    if (header[0] != kLogMagic || header[1] <= log_applied_seq_) {
      break;
    }
    uint64_t len = header[3];
    if (pos + sizeof(header) + len + 8 > tuning_.log_region_bytes) {
      break;
    }
    std::vector<uint8_t> bytes(len);
    if (disk_->Read(log_start() + pos + sizeof(header), bytes.data(), len) != Status::kOk) {
      break;
    }
    uint64_t want;
    if (disk_->Read(log_start() + pos + sizeof(header) + len, &want, 8) != Status::kOk) {
      break;
    }
    if ((Checksum(header, sizeof(header)) ^ Checksum(bytes.data(), bytes.size())) != want) {
      break;  // torn record: end of valid log
    }
    st = kernel->RestoreObject(bytes);
    if (st != Status::kOk) {
      return st;
    }
    log_seq_ = header[1];
    log_tail_[header[2]] = bytes;
    pos += sizeof(header) + len + 8;
    log_head_ = pos;
    ++log_pending_;
  }

  kernel->FinishRestore(root_);
  kernel->AttachPersistTarget(this);
  return Status::kOk;
}

}  // namespace histar
