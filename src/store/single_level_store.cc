#include "src/store/single_level_store.h"

#include <algorithm>
#include <cstring>
#include <new>

#include "src/store/store_alloc.h"

namespace histar {

namespace {

// Section images are built/parsed with the same little-endian primitives the
// kernel uses for object blobs (kernel_persist.cc keeps its own copy; both
// are file-local on purpose — the formats are independent).
void PutU8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

struct SectionReader {
  const uint8_t* data;
  size_t len;
  size_t pos = 0;
  bool fail = false;

  uint8_t U8() {
    if (pos + 1 > len) {
      fail = true;
      return 0;
    }
    return data[pos++];
  }
  uint32_t U32() {
    if (pos + 4 > len) {
      fail = true;
      return 0;
    }
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(data[pos + static_cast<size_t>(i)]) << (8 * i);
    }
    pos += 4;
    return v;
  }
  uint64_t U64() {
    if (pos + 8 > len) {
      fail = true;
      return 0;
    }
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(data[pos + static_cast<size_t>(i)]) << (8 * i);
    }
    pos += 8;
    return v;
  }
  bool Bytes(std::vector<uint8_t>* out, size_t n) {
    if (pos + n > len) {
      fail = true;
      return false;
    }
    out->assign(data + pos, data + pos + n);
    pos += n;
    return true;
  }
};

}  // namespace

SingleLevelStore::SingleLevelStore(DiskModel* disk, const StoreTuning& tuning)
    : disk_(disk),
      tuning_(tuning),
      alloc_(2 * 4096 + tuning.log_region_bytes,
             disk->geometry().capacity_bytes - (2 * 4096 + tuning.log_region_bytes)) {
  // The superblock can name at most kMaxChain sections.
  tuning_.max_increments =
      std::min<uint32_t>(tuning_.max_increments, static_cast<uint32_t>(kMaxChain) - 1);
}

uint64_t SingleLevelStore::Checksum(const void* data, size_t len) {
  // FNV-1a, folded over 8-byte words where possible. Not cryptographic —
  // it only needs to catch torn writes.
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

Status SingleLevelStore::Format() {
  std::lock_guard<std::mutex> lock(mu_);
  try {
    return FormatLocked();
  } catch (const std::bad_alloc&) {
    return Status::kNoMem;
  }
}

Status SingleLevelStore::FormatLocked() {
  objmap_.Clear();
  alloc_.Reset();
  root_ = kInvalidObject;
  generation_ = 0;
  which_sb_ = false;
  label_table_.clear();
  chain_.clear();
  epoch_ = 0;
  need_base_ = true;
  pending_updates_.clear();
  pending_deads_.clear();
  pending_frees_.clear();
  log_head_ = 0;
  log_seq_ = 0;
  log_applied_seq_ = 0;
  log_pending_ = 0;
  log_tail_.clear();
  return WriteSuperblock();
}

Status SingleLevelStore::WriteSuperblock() {
  Superblock sb;
  sb.magic = kMagic;
  sb.generation = ++generation_;
  sb.root = root_;
  sb.log_applied_seq = log_applied_seq_;
  sb.epoch = epoch_;
  sb.chain_len = chain_.size();
  for (size_t i = 0; i < chain_.size() && i < kMaxChain; ++i) {
    sb.chain[2 * i] = chain_[i].offset;
    sb.chain[2 * i + 1] = chain_[i].length;
  }
  sb.checksum = 0;
  sb.checksum = Checksum(&sb, sizeof(sb));
  uint64_t slot = which_sb_ ? 4096 : 0;
  which_sb_ = !which_sb_;
  Status st = disk_->Write(slot, &sb, sizeof(sb));
  if (st != Status::kOk) {
    return st;
  }
  return disk_->Flush();
}

Status SingleLevelStore::ReadSuperblocks(Superblock* out) {
  Superblock best;
  bool found = false;
  for (uint64_t slot : {uint64_t{0}, uint64_t{4096}}) {
    Superblock sb;
    if (disk_->Read(slot, &sb, sizeof(sb)) != Status::kOk) {
      continue;
    }
    uint64_t want = sb.checksum;
    sb.checksum = 0;
    if (sb.magic != kMagic || Checksum(&sb, sizeof(sb)) != want) {
      continue;
    }
    sb.checksum = want;
    if (!found || sb.generation > best.generation) {
      best = sb;
      found = true;
    }
  }
  if (!found) {
    return Status::kNotFound;
  }
  *out = best;
  return Status::kOk;
}

Status SingleLevelStore::WriteObject(ObjectId id, const std::vector<uint8_t>& bytes,
                                     uint64_t meta_len) {
  // Shadow write: new extent first, then retire the old one, so a crash
  // mid-checkpoint leaves the previous snapshot intact. The trailing
  // checksum covers only the metadata prefix [0, meta_len): segment payload
  // after it may later be rewritten in place by SyncPages without
  // invalidating the blob (ext3-writeback semantics — see the header).
  StoreAlloc::Check();
  meta_len = std::min<uint64_t>(meta_len, bytes.size());
  Result<uint64_t> off = alloc_.Allocate(bytes.size() + 8);
  if (!off.ok()) {
    return off.status();
  }
  uint64_t csum = Checksum(bytes.data(), meta_len);
  Status st = bytes.empty() ? Status::kOk : disk_->Write(off.value(), bytes.data(), bytes.size());
  if (st == Status::kOk) {
    st = disk_->Write(off.value() + bytes.size(), &csum, 8);
  }
  if (st != Status::kOk) {
    StoreAllocNoFail cleanup;  // unwinding a failed write must not fault again
    alloc_.Free(off.value(), bytes.size() + 8);
    return st;
  }
  // The blob is durable and the extent allocated: the map/bookkeeping update
  // must complete as a unit. A throw between the pending_frees_ push and the
  // map insert would queue the extent the map still references for reuse.
  StoreAllocNoFail atomic_update;
  if (std::optional<ObjRecord> old = objmap_.Find(id); old.has_value()) {
    pending_frees_.push_back(old->extent);
  }
  objmap_.Insert(id, ObjRecord{Extent{off.value(), bytes.size() + 8}, meta_len});
  pending_updates_.push_back(id);
  return Status::kOk;
}

Status SingleLevelStore::CommitSection(const std::vector<LabelTableRecord>* label_delta) {
  // The single commit point for every durable state advance. A base section
  // re-emits the complete label table and object map; an increment carries
  // only this epoch's label delta, the map records for objects written
  // since the last commit, and the ids deleted since then. Recovery replays
  // the chain in order, so the chain length bounds replay work — hence the
  // forced base every max_increments epochs.
  StoreAlloc::Check();
  bool base = need_base_ || chain_.empty() || chain_.size() - 1 >= tuning_.max_increments ||
              chain_.size() >= kMaxChain;
  std::vector<uint8_t> image;
  PutU64(&image, kSectionMagic);
  PutU64(&image, epoch_ + 1);
  PutU8(&image, base ? 0 : 1);
  if (base) {
    PutU32(&image, static_cast<uint32_t>(label_table_.size()));
    for (const auto& [id, bytes] : label_table_) {  // ascending id: re-intern order
      PutU32(&image, id);
      PutU32(&image, static_cast<uint32_t>(bytes.size()));
      image.insert(image.end(), bytes.begin(), bytes.end());
    }
    std::vector<std::pair<uint64_t, ObjRecord>> entries;
    objmap_.ForEach([&entries](const uint64_t& id, const ObjRecord& rec) {
      entries.emplace_back(id, rec);
    });
    PutU32(&image, static_cast<uint32_t>(entries.size()));
    for (const auto& [id, rec] : entries) {
      PutU64(&image, id);
      PutU64(&image, rec.extent.offset);
      PutU64(&image, rec.extent.length);
      PutU64(&image, rec.meta_len);
    }
    PutU32(&image, 0);  // a base names no dead ids: absence from the map suffices
  } else {
    size_t n_labels = label_delta != nullptr ? label_delta->size() : 0;
    PutU32(&image, static_cast<uint32_t>(n_labels));
    if (label_delta != nullptr) {
      for (const LabelTableRecord& rec : *label_delta) {
        PutU32(&image, rec.id);
        PutU32(&image, static_cast<uint32_t>(rec.bytes.size()));
        image.insert(image.end(), rec.bytes.begin(), rec.bytes.end());
      }
    }
    // Deduplicate update ids (an object can be written twice between
    // commits) and drop ids that died after being written.
    std::sort(pending_updates_.begin(), pending_updates_.end());
    pending_updates_.erase(std::unique(pending_updates_.begin(), pending_updates_.end()),
                           pending_updates_.end());
    std::vector<std::pair<uint64_t, ObjRecord>> entries;
    for (uint64_t id : pending_updates_) {
      if (std::optional<ObjRecord> rec = objmap_.Find(id); rec.has_value()) {
        entries.emplace_back(id, *rec);
      }
    }
    PutU32(&image, static_cast<uint32_t>(entries.size()));
    for (const auto& [id, rec] : entries) {
      PutU64(&image, id);
      PutU64(&image, rec.extent.offset);
      PutU64(&image, rec.extent.length);
      PutU64(&image, rec.meta_len);
    }
    PutU32(&image, static_cast<uint32_t>(pending_deads_.size()));
    for (uint64_t id : pending_deads_) {
      PutU64(&image, id);
    }
  }

  Result<uint64_t> off = alloc_.Allocate(image.size() + 8);
  if (!off.ok()) {
    return off.status();
  }
  uint64_t csum = Checksum(image.data(), image.size());
  Status st = disk_->Write(off.value(), image.data(), image.size());
  if (st == Status::kOk) {
    st = disk_->Write(off.value() + image.size(), &csum, 8);
  }
  if (st == Status::kOk) {
    st = disk_->Flush();  // section + object images durable before the flip
  }
  if (st != Status::kOk) {
    StoreAllocNoFail cleanup;
    alloc_.Free(off.value(), image.size() + 8);
    return st;
  }
  ++epoch_;
  if (base) {
    // The new base subsumes the whole old chain; its sections become
    // reusable once the flip commits.
    for (const Extent& old : chain_) {
      pending_frees_.push_back(old);
    }
    chain_.clear();
  }
  chain_.push_back(Extent{off.value(), image.size() + 8});
  need_base_ = false;
  pending_updates_.clear();
  pending_deads_.clear();
  last_commit_base_ = base;
  last_section_bytes_ = image.size() + 8;
  st = WriteSuperblock();
  if (st != Status::kOk) {
    return st;
  }
  // Only after the superblock flip is it safe to reuse superseded extents.
  // The commit is durable at this point: releasing the superseded extents
  // must not fault halfway (a partial release with pending_frees_ cleared
  // would leak; a partial release with it kept would double-free later).
  StoreAllocNoFail cleanup;
  for (const Extent& e : pending_frees_) {
    alloc_.Free(e.offset, e.length);
  }
  pending_frees_.clear();
  return Status::kOk;
}

Status SingleLevelStore::Checkpoint(const CheckpointBatch& batch) {
  std::lock_guard<std::mutex> lock(mu_);
  try {
    return CheckpointLocked(batch);
  } catch (const std::bad_alloc&) {
    return Status::kNoMem;
  }
}

Status SingleLevelStore::CheckpointLocked(const CheckpointBatch& batch) {
  StoreAlloc::Check();
  // Extend the store's label table with this sync's delta. The merge is
  // idempotent: a delta resent after a failed commit just overwrites equal
  // records.
  for (const LabelTableRecord& rec : batch.label_delta) {
    label_table_[rec.id] = rec.bytes;
  }
  // Drop objects that no longer exist.
  std::unordered_map<uint64_t, bool> live_set;
  live_set.reserve(batch.live.size());
  for (ObjectId id : batch.live) {
    live_set[id] = true;
  }
  std::vector<std::pair<uint64_t, Extent>> dead;
  objmap_.ForEach([&](const uint64_t& id, const ObjRecord& rec) {
    if (live_set.find(id) == live_set.end()) {
      dead.emplace_back(id, rec.extent);
    }
  });
  for (const auto& [id, e] : dead) {
    objmap_.Erase(id);
    pending_frees_.push_back(e);
    pending_deads_.push_back(id);
  }
  // Write every dirty object image to a fresh extent (delayed allocation:
  // the batch lands contiguously, in creation order).
  std::unordered_map<uint64_t, bool> dirty_ids;
  dirty_ids.reserve(batch.dirty.size());
  for (const ObjectImage& img : batch.dirty) {
    Status st = WriteObject(img.id, img.bytes, img.meta_len);
    if (st != Status::kOk) {
      return st;
    }
    dirty_ids[img.id] = true;
  }
  // Fold unapplied WAL images into the heap before declaring the log
  // subsumed. After a recovery, an object can exist ONLY as a WAL record
  // (fsynced, never checkpointed, restored with a clean dirty mark):
  // without this fold, advancing log_applied_seq_ would orphan it — in
  // neither the map nor the replayable log. Ids this batch rewrote are
  // skipped (their dirty image is newer), as are ids that just died.
  for (const auto& [id, img] : log_tail_) {
    if (dirty_ids.count(id) != 0 || live_set.find(id) == live_set.end()) {
      continue;
    }
    Status st = WriteObject(id, img.bytes, img.meta_len);
    if (st != Status::kOk) {
      return st;
    }
  }
  root_ = batch.root;
  last_commit_objects_ = batch.dirty.size();
  // The checkpoint subsumes everything in the log: the committed
  // superblock records the current sequence, but the log region itself is
  // only reusable once the commit succeeds — a failed commit must leave
  // acknowledged records in place for replay (and for the next attempt's
  // fold), so the head/tail reset waits for CommitSection.
  log_applied_seq_ = log_seq_;
  Status st = CommitSection(&batch.label_delta);
  if (st == Status::kOk) {
    log_head_ = 0;
    log_pending_ = 0;
    log_tail_.clear();
  }
  return st;
}

Status SingleLevelStore::SyncOne(ObjectId id, const std::vector<uint8_t>& bytes,
                                 uint64_t meta_len) {
  std::lock_guard<std::mutex> lock(mu_);
  try {
    return SyncOneLocked(id, bytes, meta_len);
  } catch (const std::bad_alloc&) {
    return Status::kNoMem;
  }
}

Status SingleLevelStore::SyncOneLocked(ObjectId id, const std::vector<uint8_t>& bytes,
                                       uint64_t meta_len) {
  StoreAlloc::Check();
  if (bytes.size() > tuning_.log_region_bytes / 4) {
    // Too big for the log: write straight to a fresh extent and commit the
    // new location as an increment (or a base if one is due).
    Status st = WriteObject(id, bytes, meta_len);
    if (st != Status::kOk) {
      return st;
    }
    last_commit_objects_ = 1;
    return CommitSection(nullptr);
  }
  // Record: [magic][seq][id][len][meta_len][bytes][checksum-of-all-prior].
  uint64_t header[kLogHeaderWords] = {kLogMagic, ++log_seq_, id, bytes.size(), meta_len};
  uint64_t record_len = sizeof(header) + bytes.size() + 8;
  if (log_head_ + record_len > tuning_.log_region_bytes) {
    // Log full: fold it into the heap and commit.
    Status st = ApplyLog();
    if (st != Status::kOk) {
      return st;
    }
  }
  uint64_t base = log_start() + log_head_;
  Status st = disk_->Write(base, header, sizeof(header));
  if (st == Status::kOk && !bytes.empty()) {
    st = disk_->Write(base + sizeof(header), bytes.data(), bytes.size());
  }
  if (st == Status::kOk) {
    uint64_t csum = Checksum(header, sizeof(header)) ^ Checksum(bytes.data(), bytes.size());
    st = disk_->Write(base + sizeof(header) + bytes.size(), &csum, 8);
  }
  if (st != Status::kOk) {
    return st;
  }
  st = disk_->Flush();
  if (st != Status::kOk) {
    return st;
  }
  log_head_ += record_len;
  ++log_pending_;
  ++log_records_total_;
  log_tail_[id] = LogImage{bytes, meta_len};
  if (log_pending_ >= tuning_.log_apply_threshold) {
    return ApplyLog();
  }
  return Status::kOk;
}

Status SingleLevelStore::ApplyLog() {
  StoreAlloc::Check();
  ++log_applies_;
  for (const auto& [id, img] : log_tail_) {
    Status st = WriteObject(id, img.bytes, img.meta_len);
    if (st != Status::kOk) {
      return st;
    }
  }
  last_commit_objects_ = log_tail_.size();
  log_applied_seq_ = log_seq_;
  // Folded WAL images are self-contained; the map updates commit as an
  // increment with no label records. As in Checkpoint, the log region is
  // only recycled once the commit is durable: a failed commit keeps the
  // records (and the tail, for the retry's re-fold) intact for replay.
  Status st = CommitSection(nullptr);
  if (st == Status::kOk) {
    log_head_ = 0;
    log_pending_ = 0;
    log_tail_.clear();
  }
  return st;
}

Status SingleLevelStore::SyncPages(ObjectId id, uint64_t offset,
                                   const std::vector<uint8_t>& pages) {
  std::lock_guard<std::mutex> lock(mu_);
  try {
    return SyncPagesLocked(id, offset, pages);
  } catch (const std::bad_alloc&) {
    return Status::kNoMem;
  }
}

Status SingleLevelStore::SyncPagesLocked(ObjectId id, uint64_t offset,
                                         const std::vector<uint8_t>& pages) {
  std::optional<ObjRecord> rec = objmap_.Find(id);
  if (!rec.has_value()) {
    return Status::kNotFound;  // never checkpointed: nothing to flush into
  }
  // In-place flush of real payload bytes, landing past the checksummed
  // metadata prefix — the checksum therefore stays sound however this write
  // interleaves with a crash (the old code zero-filled from the extent
  // start, destroying both the header and its checksum until the next
  // checkpoint rewrote them). The on-disk image may be stale (object
  // re-written but not yet re-checkpointed is impossible — WriteObject
  // moves the extent — but a resize since the last checkpoint is not), so
  // clamp to the stored payload capacity; pages beyond it are covered by
  // the object's dirty mark at the next checkpoint.
  uint64_t blob_len = rec->extent.length - 8;
  uint64_t meta = std::min(rec->meta_len, blob_len);
  uint64_t capacity = blob_len - meta;
  if (offset >= capacity) {
    return Status::kOk;
  }
  uint64_t n = std::min<uint64_t>(pages.size(), capacity - offset);
  if (n == 0) {
    return Status::kOk;
  }
  Status st = disk_->Write(rec->extent.offset + meta + offset, pages.data(), n);
  if (st != Status::kOk) {
    return st;
  }
  return disk_->Flush();
}

Result<uint64_t> SingleLevelStore::TouchObject(ObjectId id) {
  std::lock_guard<std::mutex> lock(mu_);
  try {
    return TouchObjectLocked(id);
  } catch (const std::bad_alloc&) {
    return Status::kNoMem;
  }
}

Result<uint64_t> SingleLevelStore::TouchObjectLocked(ObjectId id) {
  std::optional<ObjRecord> rec = objmap_.Find(id);
  if (!rec.has_value()) {
    return Status::kNotFound;
  }
  const Extent& e = rec->extent;
  std::vector<uint8_t> buf(std::min<uint64_t>(e.length, 64 * 1024));
  uint64_t pos = 0;
  while (pos < e.length) {
    uint64_t n = std::min<uint64_t>(buf.size(), e.length - pos);
    Status st = disk_->Read(e.offset + pos, buf.data(), n);
    if (st != Status::kOk) {
      return st;
    }
    pos += n;
  }
  return e.length;
}

Status SingleLevelStore::Recover(Kernel* kernel) {
  std::lock_guard<std::mutex> lock(mu_);
  try {
    return RecoverLocked(kernel);
  } catch (const std::bad_alloc&) {
    return Status::kNoMem;
  }
}

Status SingleLevelStore::RecoverLocked(Kernel* kernel) {
  StoreAlloc::Check();
  Superblock sb;
  Status st = ReadSuperblocks(&sb);
  if (st != Status::kOk) {
    return st;
  }
  generation_ = sb.generation;
  root_ = sb.root;
  log_applied_seq_ = sb.log_applied_seq;
  epoch_ = sb.epoch;

  // Replay the checkpoint chain in order: the base re-creates the label
  // table and object map wholesale, each increment folds its delta on top.
  label_table_.clear();
  objmap_.Clear();
  chain_.clear();
  pending_updates_.clear();
  pending_deads_.clear();
  pending_frees_.clear();
  if (sb.chain_len > kMaxChain) {
    return Status::kCorrupt;
  }
  uint64_t prev_epoch = 0;
  for (size_t i = 0; i < sb.chain_len; ++i) {
    Extent ext{sb.chain[2 * i], sb.chain[2 * i + 1]};
    if (ext.length < 8) {
      return Status::kCorrupt;
    }
    std::vector<uint8_t> image(ext.length);
    st = disk_->Read(ext.offset, image.data(), image.size());
    if (st != Status::kOk) {
      return st;
    }
    uint64_t want;
    memcpy(&want, image.data() + image.size() - 8, 8);
    if (Checksum(image.data(), image.size() - 8) != want) {
      return Status::kCorrupt;
    }
    SectionReader r{image.data(), image.size() - 8};
    uint64_t magic = r.U64();
    uint64_t epoch = r.U64();
    uint8_t kind = r.U8();
    if (r.fail || magic != kSectionMagic || epoch <= prev_epoch ||
        kind != (i == 0 ? 0 : 1)) {
      return Status::kCorrupt;
    }
    uint32_t n_labels = r.U32();
    for (uint32_t j = 0; j < n_labels && !r.fail; ++j) {
      uint32_t id = r.U32();
      uint32_t len = r.U32();
      std::vector<uint8_t> bytes;
      if (!r.Bytes(&bytes, len)) {
        break;
      }
      label_table_[id] = std::move(bytes);
    }
    uint32_t n_objects = r.U32();
    for (uint32_t j = 0; j < n_objects && !r.fail; ++j) {
      uint64_t id = r.U64();
      ObjRecord rec;
      rec.extent.offset = r.U64();
      rec.extent.length = r.U64();
      rec.meta_len = r.U64();
      if (!r.fail) {
        objmap_.Insert(id, rec);
      }
    }
    uint32_t n_dead = r.U32();
    for (uint32_t j = 0; j < n_dead && !r.fail; ++j) {
      objmap_.Erase(r.U64());
    }
    if (r.fail) {
      return Status::kCorrupt;
    }
    prev_epoch = epoch;
    chain_.push_back(ext);
  }

  // Rebuild the allocator: carve out live object extents and the chain's
  // section extents from a freshly reset free pool.
  alloc_.Reset();
  std::vector<std::pair<uint64_t, ObjRecord>> entries;
  objmap_.ForEach([&](const uint64_t& id, const ObjRecord& rec) { entries.emplace_back(id, rec); });
  std::vector<Extent> used;
  used.reserve(entries.size() + chain_.size());
  for (const auto& [id, rec] : entries) {
    used.push_back(rec.extent);
  }
  for (const Extent& e : chain_) {
    used.push_back(e);
  }
  if (!alloc_.ReserveExtents(used)) {
    return Status::kCorrupt;
  }

  // Hand the label table to the kernel FIRST: one re-intern pass builds the
  // old-id → new-id remap that every label-ref blob below resolves through.
  // If the kernel could not reproduce the ids (changed shard config), the
  // on-disk id space must not be extended: force a full base — and the
  // kernel re-dirties the world so that base rewrites every blob.
  std::vector<LabelTableRecord> records;
  records.reserve(label_table_.size());
  for (const auto& [id, bytes] : label_table_) {  // std::map: ascending ids
    LabelTableRecord rec;
    rec.id = id;
    rec.bytes = bytes;
    records.push_back(std::move(rec));
  }
  bool ids_stable = true;
  st = kernel->RestoreLabelTable(records, &ids_stable);
  if (st != Status::kOk) {
    return st;
  }
  need_base_ = chain_.empty() || !ids_stable;

  // Load every object into the kernel. The checksum covers the metadata
  // prefix only; payload bytes past it carry no integrity word (they may
  // have been rewritten in place by SyncPages — writeback semantics).
  for (const auto& [id, rec] : entries) {
    if (rec.extent.length < 8 || rec.meta_len > rec.extent.length - 8) {
      return Status::kCorrupt;
    }
    std::vector<uint8_t> blob(rec.extent.length);
    st = disk_->Read(rec.extent.offset, blob.data(), blob.size());
    if (st != Status::kOk) {
      return st;
    }
    uint64_t want;
    memcpy(&want, blob.data() + blob.size() - 8, 8);
    if (Checksum(blob.data(), rec.meta_len) != want) {
      return Status::kCorrupt;
    }
    blob.resize(blob.size() - 8);
    st = kernel->RestoreObject(blob);
    if (st != Status::kOk) {
      return st;
    }
  }

  // Replay the log tail: records with seq > applied and a valid checksum.
  uint64_t pos = 0;
  log_head_ = 0;
  log_seq_ = log_applied_seq_;
  log_pending_ = 0;
  log_tail_.clear();
  for (;;) {
    uint64_t header[kLogHeaderWords];
    if (pos + sizeof(header) + 8 > tuning_.log_region_bytes) {
      break;
    }
    if (disk_->Read(log_start() + pos, header, sizeof(header)) != Status::kOk) {
      break;
    }
    if (header[0] != kLogMagic || header[1] <= log_applied_seq_) {
      break;
    }
    uint64_t len = header[3];
    if (pos + sizeof(header) + len + 8 > tuning_.log_region_bytes) {
      break;
    }
    std::vector<uint8_t> bytes(len);
    if (disk_->Read(log_start() + pos + sizeof(header), bytes.data(), len) != Status::kOk) {
      break;
    }
    uint64_t want;
    if (disk_->Read(log_start() + pos + sizeof(header) + len, &want, 8) != Status::kOk) {
      break;
    }
    if ((Checksum(header, sizeof(header)) ^ Checksum(bytes.data(), bytes.size())) != want) {
      break;  // torn record: end of valid log
    }
    st = kernel->RestoreObject(bytes);
    if (st != Status::kOk) {
      return st;
    }
    log_seq_ = header[1];
    log_tail_[header[2]] = LogImage{bytes, header[4]};
    pos += sizeof(header) + len + 8;
    log_head_ = pos;
    ++log_pending_;
  }

  kernel->FinishRestore(root_);
  kernel->AttachPersistTarget(this);
  return Status::kOk;
}

}  // namespace histar
