#include "src/store/single_level_store.h"

#include <algorithm>
#include <cstring>
#include <new>

#include "src/core/trace.h"
#include "src/store/store_alloc.h"
#include "src/store/wire_format.h"

namespace histar {

using storewire::PutU32;
using storewire::PutU64;
using storewire::PutU8;

namespace {

// Flight-recorder scope for the public commit/restore entry points: one
// kStoreCommit event carrying the op's duration and the disk-counter
// deltas (bytes written, device write ops) it caused, plus the per-op
// latency histogram (src/core/trace.h). Constructed after mu_ is taken so
// the deltas are exact; the disk's own counters lock its leaf mutex.
class StoreOpTrace {
 public:
  StoreOpTrace(trace::StoreOp op, DiskModel* disk, uint8_t engine_kind)
#if HISTAR_TRACE
      : op_(op),
        disk_(disk),
        engine_kind_(engine_kind),
        t0_(trace::NowNs()),
        w0_(disk->write_ops()),
        b0_(disk->bytes_written())
#endif
  {
#if !HISTAR_TRACE
    (void)op;
    (void)disk;
    (void)engine_kind;
#endif
  }

  void Finish(Status st) {
#if HISTAR_TRACE
    trace::RecordStoreOp(op_, static_cast<int8_t>(st), trace::NowNs() - t0_,
                         disk_->bytes_written() - b0_,
                         disk_->write_ops() - w0_, engine_kind_);
#else
    (void)st;
#endif
  }

 private:
#if HISTAR_TRACE
  trace::StoreOp op_;
  DiskModel* disk_;
  uint8_t engine_kind_;
  uint64_t t0_;
  uint64_t w0_;
  uint64_t b0_;
#endif
};

}  // namespace

SingleLevelStore::SingleLevelStore(DiskModel* disk, const StoreTuning& tuning)
    : disk_(disk),
      tuning_(tuning),
      alloc_(2 * 4096 + tuning.log_region_bytes,
             disk->geometry().capacity_bytes - (2 * 4096 + tuning.log_region_bytes)) {
  // max_increments is NOT clamped to the superblock's chain capacity: when
  // the chain fills before an increment budget this large is spent, the
  // oldest increments fold into one (FoldChain) instead of forcing a base.
  EngineContext ctx;
  ctx.disk = disk_;
  ctx.alloc = &alloc_;
  ctx.pending_frees = &pending_frees_;
  engine_ = MakeStoreEngine(tuning_.engine, ctx, tuning_.betree);
}

uint64_t SingleLevelStore::Checksum(const void* data, size_t len) {
  return StoreChecksum(data, len);
}

Status SingleLevelStore::Format() {
  MutexLock lock(&mu_);
  try {
    return FormatLocked();
  } catch (const std::bad_alloc&) {
    return Status::kNoMem;
  }
}

Status SingleLevelStore::FormatLocked() {
  engine_->Reset();
  alloc_.Reset();
  root_ = kInvalidObject;
  generation_ = 0;
  which_sb_ = false;
  label_table_.clear();
  chain_.clear();
  epoch_ = 0;
  need_base_ = true;
  pending_frees_.clear();
  log_head_ = 0;
  log_seq_ = 0;
  log_applied_seq_ = 0;
  log_pending_ = 0;
  log_tail_.clear();
  return WriteSuperblock();
}

Status SingleLevelStore::WriteSuperblock() {
  Superblock sb;
  sb.magic = kMagic;
  sb.generation = ++generation_;
  sb.root = root_;
  sb.log_applied_seq = log_applied_seq_;
  sb.epoch = epoch_;
  sb.chain_len = chain_.size();
  for (size_t i = 0; i < chain_.size() && i < kMaxChain; ++i) {
    sb.chain[2 * i] = chain_[i].offset;
    sb.chain[2 * i + 1] = chain_[i].length;
  }
  sb.checksum = 0;
  sb.checksum = Checksum(&sb, sizeof(sb));
  // Alternate slots only across SUCCESSFUL flips. A failed flip must retry
  // the same slot: advancing on failure would aim the next attempt at the
  // other slot — the one holding the newest durable superblock — and a
  // second fault (e.g. a torn write) could then destroy it, time-traveling
  // recovery past every commit to whatever the stale slot still holds.
  uint64_t slot = which_sb_ ? 4096 : 0;
  Status st = disk_->Write(slot, &sb, sizeof(sb));
  if (st == Status::kOk) {
    st = disk_->Flush();
  }
  if (st != Status::kOk) {
    return st;
  }
  which_sb_ = !which_sb_;
  return Status::kOk;
}

Status SingleLevelStore::ReadSuperblocks(Superblock* out) {
  Superblock best;
  bool found = false;
  uint64_t best_slot = 0;
  for (uint64_t slot : {uint64_t{0}, uint64_t{4096}}) {
    Superblock sb;
    if (disk_->Read(slot, &sb, sizeof(sb)) != Status::kOk) {
      continue;
    }
    uint64_t want = sb.checksum;
    sb.checksum = 0;
    if (sb.magic != kMagic || Checksum(&sb, sizeof(sb)) != want) {
      continue;
    }
    sb.checksum = want;
    if (!found || sb.generation > best.generation) {
      best = sb;
      best_slot = slot;
      found = true;
    }
  }
  if (!found) {
    return Status::kNotFound;
  }
  // The next flip must target the slot NOT holding the superblock this boot
  // trusts, so a faulted first commit can never destroy it.
  which_sb_ = best_slot == 0;
  *out = best;
  return Status::kOk;
}

Status SingleLevelStore::FoldChain() {
  // The superblock can name kMaxChain sections and the chain is full, but
  // nothing demands a base: merge the oldest half of the increments into ONE
  // increment whose replay is equivalent to replaying them in order. The
  // engine merges its bodies; the store merges its label records
  // (latest-wins per id — exactly what replaying them in order produces).
  size_t fold = (chain_.size() - 1) / 2;
  if (fold < 2) {
    return Status::kOk;  // nothing to gain
  }
  std::vector<std::vector<uint8_t>> bodies;
  bodies.reserve(fold);
  std::map<uint32_t, std::vector<uint8_t>> labels;
  uint64_t merged_epoch = 0;
  for (size_t i = 1; i <= fold; ++i) {
    const Extent& ext = chain_[i];
    if (ext.length < 8) {
      return Status::kCorrupt;
    }
    std::vector<uint8_t> image(ext.length);
    Status st = disk_->Read(ext.offset, image.data(), image.size());
    if (st != Status::kOk) {
      return st;
    }
    uint64_t want;
    memcpy(&want, image.data() + image.size() - 8, 8);
    if (Checksum(image.data(), image.size() - 8) != want) {
      return Status::kCorrupt;
    }
    storewire::Reader r{image.data(), image.size() - 8};
    uint64_t magic = r.U64();
    uint64_t epoch = r.U64();
    uint8_t kind = r.U8();
    uint8_t eng = r.U8();
    if (r.fail || magic != kSectionMagic || kind != 1 ||
        eng != static_cast<uint8_t>(engine_->kind())) {
      return Status::kCorrupt;
    }
    uint32_t n_labels = r.U32();
    for (uint32_t j = 0; j < n_labels && !r.fail; ++j) {
      uint32_t id = r.U32();
      uint32_t len = r.U32();
      std::vector<uint8_t> bytes;
      if (!r.Bytes(&bytes, len)) {
        break;
      }
      labels[id] = std::move(bytes);
    }
    if (r.fail) {
      return Status::kCorrupt;
    }
    bodies.emplace_back(image.begin() + static_cast<ptrdiff_t>(r.pos),
                        image.end() - 8);
    merged_epoch = epoch;
  }

  std::vector<uint8_t> image;
  PutU64(&image, kSectionMagic);
  PutU64(&image, merged_epoch);  // replays in the folded range's place
  PutU8(&image, 1);
  PutU8(&image, static_cast<uint8_t>(engine_->kind()));
  PutU32(&image, static_cast<uint32_t>(labels.size()));
  for (const auto& [id, bytes] : labels) {
    PutU32(&image, id);
    PutU32(&image, static_cast<uint32_t>(bytes.size()));
    image.insert(image.end(), bytes.begin(), bytes.end());
  }
  Status st = engine_->MergeSectionBodies(bodies, &image);
  if (st != Status::kOk) {
    return st;
  }
  Result<uint64_t> off = alloc_.Allocate(image.size() + 8);
  if (!off.ok()) {
    return off.status();
  }
  uint64_t csum = Checksum(image.data(), image.size());
  st = disk_->Write(off.value(), image.data(), image.size());
  if (st == Status::kOk) {
    st = disk_->Write(off.value() + image.size(), &csum, 8);
  }
  if (st != Status::kOk) {
    StoreAllocNoFail cleanup;
    alloc_.Free(off.value(), image.size() + 8);
    return st;
  }
  // No Flush here: the merged section only becomes reachable via the
  // superblock the CALLING commit flips, and that commit barriers everything
  // before the flip. The folded sections stay on disk untouched — the
  // current superblock still names them — so their extents are reusable
  // only after the flip (ordinary shadow-paging discipline).
  StoreAllocNoFail bookkeeping;
  std::vector<Extent> next;
  next.reserve(chain_.size() - fold + 1);
  next.push_back(chain_[0]);
  next.push_back(Extent{off.value(), image.size() + 8});
  for (size_t i = 1; i <= fold; ++i) {
    pending_frees_.push_back(chain_[i]);
  }
  for (size_t i = fold + 1; i < chain_.size(); ++i) {
    next.push_back(chain_[i]);
  }
  chain_ = std::move(next);
  ++chain_folds_;
  return Status::kOk;
}

Status SingleLevelStore::CommitSection(const std::vector<LabelTableRecord>* label_delta) {
  // The single commit point for every durable state advance. A base section
  // re-emits the complete label table and the engine's full-state body; an
  // increment carries only this epoch's label delta and the engine's delta
  // body. Recovery replays the chain in order, so the chain length bounds
  // replay work — hence the forced base every max_increments epochs and the
  // fold when the superblock's chain slots run out first.
  StoreAlloc::Check();
  bool base = need_base_ || chain_.empty() ||
              chain_.size() - 1 >= tuning_.max_increments || engine_->WantsBase();
  if (!base && chain_.size() >= kMaxChain) {
    Status st = FoldChain();
    if (st != Status::kOk) {
      return st;
    }
    // Folding can fail to shrink only on a pathologically short chain; a
    // base then keeps the superblock bounded, as before this PR.
    base = chain_.size() >= kMaxChain;
  }
  std::vector<uint8_t> image;
  PutU64(&image, kSectionMagic);
  PutU64(&image, epoch_ + 1);
  PutU8(&image, base ? 0 : 1);
  PutU8(&image, static_cast<uint8_t>(engine_->kind()));
  if (base) {
    PutU32(&image, static_cast<uint32_t>(label_table_.size()));
    for (const auto& [id, bytes] : label_table_) {  // ascending id: re-intern order
      PutU32(&image, id);
      PutU32(&image, static_cast<uint32_t>(bytes.size()));
      image.insert(image.end(), bytes.begin(), bytes.end());
    }
  } else if (!engine_->OwnsLabelDelta()) {
    size_t n_labels = label_delta != nullptr ? label_delta->size() : 0;
    PutU32(&image, static_cast<uint32_t>(n_labels));
    if (label_delta != nullptr) {
      for (const LabelTableRecord& rec : *label_delta) {
        PutU32(&image, rec.id);
        PutU32(&image, static_cast<uint32_t>(rec.bytes.size()));
        image.insert(image.end(), rec.bytes.begin(), rec.bytes.end());
      }
    }
  } else {
    // The engine carries label deltas inside its body (Bε-tree messages).
    PutU32(&image, 0);
  }
  Status st = engine_->EmitSectionBody(base, label_delta, &image);
  if (st != Status::kOk) {
    return st;
  }

  Result<uint64_t> off = alloc_.Allocate(image.size() + 8);
  if (!off.ok()) {
    return off.status();
  }
  uint64_t csum = Checksum(image.data(), image.size());
  st = disk_->Write(off.value(), image.data(), image.size());
  if (st == Status::kOk) {
    st = disk_->Write(off.value() + image.size(), &csum, 8);
  }
  if (st == Status::kOk) {
    st = disk_->Flush();  // section + object images durable before the flip
  }
  if (st != Status::kOk) {
    StoreAllocNoFail cleanup;
    alloc_.Free(off.value(), image.size() + 8);
    return st;
  }
  ++epoch_;
  if (base) {
    // The new base subsumes the whole old chain; its sections become
    // reusable once the flip commits.
    for (const Extent& old : chain_) {
      pending_frees_.push_back(old);
    }
    chain_.clear();
  }
  chain_.push_back(Extent{off.value(), image.size() + 8});
  need_base_ = false;
  engine_->OnSectionWritten(base);
  last_commit_base_ = base;
  last_section_bytes_ = image.size() + 8;
  st = WriteSuperblock();
  if (st != Status::kOk) {
    return st;
  }
  // Only after the superblock flip is it safe to reuse superseded extents.
  // The commit is durable at this point: releasing the superseded extents
  // must not fault halfway (a partial release with pending_frees_ cleared
  // would leak; a partial release with it kept would double-free later).
  StoreAllocNoFail cleanup;
  for (const Extent& e : pending_frees_) {
    alloc_.Free(e.offset, e.length);
  }
  pending_frees_.clear();
  return Status::kOk;
}

Status SingleLevelStore::Checkpoint(const CheckpointBatch& batch) {
  MutexLock lock(&mu_);
  StoreOpTrace t(trace::StoreOp::kCheckpoint, disk_,
                 static_cast<uint8_t>(engine_->kind()));
  Status st;
  try {
    st = CheckpointLocked(batch);
  } catch (const std::bad_alloc&) {
    st = Status::kNoMem;
  }
  t.Finish(st);
  return st;
}

Status SingleLevelStore::CheckpointLocked(const CheckpointBatch& batch) {
  StoreAlloc::Check();
  // Extend the store's label table with this sync's delta. The merge is
  // idempotent: a delta resent after a failed commit just overwrites equal
  // records.
  for (const LabelTableRecord& rec : batch.label_delta) {
    label_table_[rec.id] = rec.bytes;
  }
  // Drop objects that no longer exist.
  std::unordered_map<uint64_t, bool> live_set;
  live_set.reserve(batch.live.size());
  for (ObjectId id : batch.live) {
    live_set[id] = true;
  }
  std::vector<ObjectId> held;
  engine_->AppendLiveIds(&held);
  for (ObjectId id : held) {
    if (live_set.find(id) == live_set.end()) {
      engine_->DeleteObject(id);
    }
  }
  // Write every dirty object image (delayed allocation: the blob engine
  // lands the batch contiguously in creation order; the Bε-tree engine
  // stages the batch as messages and writes nothing yet).
  std::unordered_map<uint64_t, bool> dirty_ids;
  dirty_ids.reserve(batch.dirty.size());
  for (const ObjectImage& img : batch.dirty) {
    Status st = engine_->WriteObject(img.id, img.bytes, img.meta_len);
    if (st != Status::kOk) {
      return st;
    }
    dirty_ids[img.id] = true;
  }
  // Fold unapplied WAL images into the heap before declaring the log
  // subsumed. After a recovery, an object can exist ONLY as a WAL record
  // (fsynced, never checkpointed, restored with a clean dirty mark):
  // without this fold, advancing log_applied_seq_ would orphan it — in
  // neither the map nor the replayable log. Ids this batch rewrote are
  // skipped (their dirty image is newer), as are ids that just died.
  for (const auto& [id, img] : log_tail_) {
    if (dirty_ids.count(id) != 0 || live_set.find(id) == live_set.end()) {
      continue;
    }
    Status st = engine_->WriteObject(id, img.bytes, img.meta_len);
    if (st != Status::kOk) {
      return st;
    }
  }
  root_ = batch.root;
  last_commit_objects_ = batch.dirty.size();
  // The checkpoint subsumes everything in the log: the committed
  // superblock records the current sequence, but the log region itself is
  // only reusable once the commit succeeds — a failed commit must leave
  // acknowledged records in place for replay (and for the next attempt's
  // fold), so the head/tail reset waits for CommitSection.
  log_applied_seq_ = log_seq_;
  Status st = CommitSection(&batch.label_delta);
  if (st == Status::kOk) {
    log_head_ = 0;
    log_pending_ = 0;
    log_tail_.clear();
  }
  return st;
}

Status SingleLevelStore::SyncOne(ObjectId id, const std::vector<uint8_t>& bytes,
                                 uint64_t meta_len) {
  MutexLock lock(&mu_);
  StoreOpTrace t(trace::StoreOp::kSyncOne, disk_,
                 static_cast<uint8_t>(engine_->kind()));
  Status st;
  try {
    st = SyncOneLocked(id, bytes, meta_len);
  } catch (const std::bad_alloc&) {
    st = Status::kNoMem;
  }
  t.Finish(st);
  return st;
}

Status SingleLevelStore::SyncOneLocked(ObjectId id, const std::vector<uint8_t>& bytes,
                                       uint64_t meta_len) {
  StoreAlloc::Check();
  if (bytes.size() > tuning_.log_region_bytes / 4) {
    // Too big for the log: hand it to the engine and commit the new state
    // as an increment (or a base if one is due).
    Status st = engine_->WriteObject(id, bytes, meta_len);
    if (st != Status::kOk) {
      return st;
    }
    last_commit_objects_ = 1;
    return CommitSection(nullptr);
  }
  // Record: [magic][seq][id][len][meta_len][bytes][checksum-of-all-prior].
  uint64_t header[kLogHeaderWords] = {kLogMagic, ++log_seq_, id, bytes.size(), meta_len};
  uint64_t record_len = sizeof(header) + bytes.size() + 8;
  if (log_head_ + record_len > tuning_.log_region_bytes) {
    // Log full: fold it into the heap and commit.
    Status st = ApplyLog();
    if (st != Status::kOk) {
      return st;
    }
  }
  uint64_t base = log_start() + log_head_;
  Status st = disk_->Write(base, header, sizeof(header));
  if (st == Status::kOk && !bytes.empty()) {
    st = disk_->Write(base + sizeof(header), bytes.data(), bytes.size());
  }
  if (st == Status::kOk) {
    uint64_t csum = Checksum(header, sizeof(header)) ^ Checksum(bytes.data(), bytes.size());
    st = disk_->Write(base + sizeof(header) + bytes.size(), &csum, 8);
  }
  if (st != Status::kOk) {
    return st;
  }
  st = disk_->Flush();
  if (st != Status::kOk) {
    return st;
  }
  log_head_ += record_len;
  ++log_pending_;
  ++log_records_total_;
  log_tail_[id] = LogImage{bytes, meta_len};
  if (log_pending_ >= tuning_.log_apply_threshold) {
    return ApplyLog();
  }
  return Status::kOk;
}

Status SingleLevelStore::ApplyLog() {
  StoreAlloc::Check();
  ++log_applies_;
  for (const auto& [id, img] : log_tail_) {
    Status st = engine_->WriteObject(id, img.bytes, img.meta_len);
    if (st != Status::kOk) {
      return st;
    }
  }
  last_commit_objects_ = log_tail_.size();
  log_applied_seq_ = log_seq_;
  // Folded WAL images are self-contained; the map updates commit as an
  // increment with no label records. As in Checkpoint, the log region is
  // only recycled once the commit is durable: a failed commit keeps the
  // records (and the tail, for the retry's re-fold) intact for replay.
  Status st = CommitSection(nullptr);
  if (st == Status::kOk) {
    log_head_ = 0;
    log_pending_ = 0;
    log_tail_.clear();
  }
  return st;
}

Status SingleLevelStore::SyncPages(ObjectId id, uint64_t offset,
                                   const std::vector<uint8_t>& pages) {
  MutexLock lock(&mu_);
  StoreOpTrace t(trace::StoreOp::kSyncPages, disk_,
                 static_cast<uint8_t>(engine_->kind()));
  Status st;
  try {
    st = SyncPagesLocked(id, offset, pages);
  } catch (const std::bad_alloc&) {
    st = Status::kNoMem;
  }
  t.Finish(st);
  return st;
}

Status SingleLevelStore::SyncPagesLocked(ObjectId id, uint64_t offset,
                                         const std::vector<uint8_t>& pages) {
  // The engine either writes the pages in place past the checksummed
  // metadata prefix and barriers (blob path, leaf-resident Bε-tree path) or
  // stages a patched image and asks for a commit (the pages then become
  // durable with the section write + superblock flip — same sync contract,
  // different mechanism).
  bool needs_commit = false;
  Status st = engine_->FlushPages(id, offset, pages, &needs_commit);
  if (st != Status::kOk) {
    return st;
  }
  if (needs_commit) {
    last_commit_objects_ = 1;
    return CommitSection(nullptr);
  }
  return Status::kOk;
}

Result<uint64_t> SingleLevelStore::TouchObject(ObjectId id) {
  MutexLock lock(&mu_);
  try {
    return TouchObjectLocked(id);
  } catch (const std::bad_alloc&) {
    return Status::kNoMem;
  }
}

Result<uint64_t> SingleLevelStore::TouchObjectLocked(ObjectId id) {
  return engine_->TouchObject(id);
}

Status SingleLevelStore::Recover(Kernel* kernel) {
  MutexLock lock(&mu_);
  StoreOpTrace t(trace::StoreOp::kRestore, disk_,
                 static_cast<uint8_t>(engine_->kind()));
  Status st;
  try {
    st = RecoverLocked(kernel);
  } catch (const std::bad_alloc&) {
    st = Status::kNoMem;
  }
  t.Finish(st);
  return st;
}

Status SingleLevelStore::RecoverLocked(Kernel* kernel) {
  StoreAlloc::Check();
  Superblock sb;
  Status st = ReadSuperblocks(&sb);
  if (st != Status::kOk) {
    return st;
  }
  generation_ = sb.generation;
  root_ = sb.root;
  log_applied_seq_ = sb.log_applied_seq;
  epoch_ = sb.epoch;

  // Replay the checkpoint chain in order: the base re-creates the label
  // table and the engine's full state, each increment folds its delta on
  // top. The base section's engine byte decides which engine owns the disk:
  // a store configured for one engine boots a disk written by the other by
  // adopting the on-disk engine (every section must agree).
  label_table_.clear();
  engine_->Reset();
  chain_.clear();
  pending_frees_.clear();
  if (sb.chain_len > kMaxChain) {
    return Status::kCorrupt;
  }
  uint64_t prev_epoch = 0;
  for (size_t i = 0; i < sb.chain_len; ++i) {
    Extent ext{sb.chain[2 * i], sb.chain[2 * i + 1]};
    if (ext.length < 8) {
      return Status::kCorrupt;
    }
    std::vector<uint8_t> image(ext.length);
    st = disk_->Read(ext.offset, image.data(), image.size());
    if (st != Status::kOk) {
      return st;
    }
    uint64_t want;
    memcpy(&want, image.data() + image.size() - 8, 8);
    if (Checksum(image.data(), image.size() - 8) != want) {
      return Status::kCorrupt;
    }
    storewire::Reader r{image.data(), image.size() - 8};
    uint64_t magic = r.U64();
    uint64_t epoch = r.U64();
    uint8_t kind = r.U8();
    uint8_t eng = r.U8();
    if (r.fail || magic != kSectionMagic || epoch <= prev_epoch ||
        kind != (i == 0 ? 0 : 1) || eng > static_cast<uint8_t>(EngineKind::kBetree)) {
      return Status::kCorrupt;
    }
    if (i == 0) {
      if (eng != static_cast<uint8_t>(engine_->kind())) {
        EngineContext ctx;
        ctx.disk = disk_;
        ctx.alloc = &alloc_;
        ctx.pending_frees = &pending_frees_;
        engine_ = MakeStoreEngine(static_cast<EngineKind>(eng), ctx, tuning_.betree);
      }
    } else if (eng != static_cast<uint8_t>(engine_->kind())) {
      return Status::kCorrupt;  // a chain never mixes engines
    }
    uint32_t n_labels = r.U32();
    for (uint32_t j = 0; j < n_labels && !r.fail; ++j) {
      uint32_t id = r.U32();
      uint32_t len = r.U32();
      std::vector<uint8_t> bytes;
      if (!r.Bytes(&bytes, len)) {
        break;
      }
      label_table_[id] = std::move(bytes);
    }
    if (r.fail) {
      return Status::kCorrupt;
    }
    st = engine_->LoadSectionBody(
        i == 0, &r, [this](uint32_t id, std::vector<uint8_t> bytes) {
          label_table_[id] = std::move(bytes);
        });
    if (st != Status::kOk) {
      return st;
    }
    prev_epoch = epoch;
    chain_.push_back(ext);
  }

  // Rebuild the allocator: carve out the extents the engine references
  // (object blobs / tree nodes) and the chain's section extents from a
  // freshly reset free pool.
  alloc_.Reset();
  std::vector<Extent> used;
  engine_->CollectExtents(&used);
  for (const Extent& e : chain_) {
    used.push_back(e);
  }
  if (!alloc_.ReserveExtents(used)) {
    return Status::kCorrupt;
  }

  // Hand the label table to the kernel FIRST: one re-intern pass builds the
  // old-id → new-id remap that every label-ref blob below resolves through.
  // If the kernel could not reproduce the ids (changed shard config), the
  // on-disk id space must not be extended: force a full base — and the
  // kernel re-dirties the world so that base rewrites every blob.
  std::vector<LabelTableRecord> records;
  records.reserve(label_table_.size());
  for (const auto& [id, bytes] : label_table_) {  // std::map: ascending ids
    LabelTableRecord rec;
    rec.id = id;
    rec.bytes = bytes;
    records.push_back(std::move(rec));
  }
  bool ids_stable = true;
  st = kernel->RestoreLabelTable(records, &ids_stable);
  if (st != Status::kOk) {
    return st;
  }
  need_base_ = chain_.empty() || !ids_stable;

  // Load every object into the kernel (checksum discipline is the engine's;
  // both engines verify the metadata-prefix checksum and strip it).
  st = engine_->LoadAllObjects(
      [kernel](const std::vector<uint8_t>& blob) { return kernel->RestoreObject(blob); });
  if (st != Status::kOk) {
    return st;
  }

  // Replay the log tail: records with seq > applied and a valid checksum.
  uint64_t pos = 0;
  log_head_ = 0;
  log_seq_ = log_applied_seq_;
  log_pending_ = 0;
  log_tail_.clear();
  for (;;) {
    uint64_t header[kLogHeaderWords];
    if (pos + sizeof(header) + 8 > tuning_.log_region_bytes) {
      break;
    }
    if (disk_->Read(log_start() + pos, header, sizeof(header)) != Status::kOk) {
      break;
    }
    if (header[0] != kLogMagic || header[1] <= log_applied_seq_) {
      break;
    }
    uint64_t len = header[3];
    if (pos + sizeof(header) + len + 8 > tuning_.log_region_bytes) {
      break;
    }
    std::vector<uint8_t> bytes(len);
    if (disk_->Read(log_start() + pos + sizeof(header), bytes.data(), len) != Status::kOk) {
      break;
    }
    uint64_t want;
    if (disk_->Read(log_start() + pos + sizeof(header) + len, &want, 8) != Status::kOk) {
      break;
    }
    if ((Checksum(header, sizeof(header)) ^ Checksum(bytes.data(), bytes.size())) != want) {
      break;  // torn record: end of valid log
    }
    st = kernel->RestoreObject(bytes);
    if (st != Status::kOk) {
      return st;
    }
    log_seq_ = header[1];
    log_tail_[header[2]] = LogImage{bytes, header[4]};
    pos += sizeof(header) + len + 8;
    log_head_ = pos;
    ++log_pending_;
  }

  kernel->FinishRestore(root_);
  kernel->AttachPersistTarget(this);
  return Status::kOk;
}

}  // namespace histar
