#include "src/store/disk_model.h"

#include <algorithm>
#include <cstring>

#include "src/core/trace.h"

namespace histar {

// Data-mode backing grows lazily to the highest written offset, so a 40 GB
// nominal capacity does not allocate 40 GB of host memory.
DiskModel::DiskModel(const DiskGeometry& geometry) : geo_(geometry) {}

uint64_t DiskModel::AccessCost(uint64_t offset, uint64_t len, bool is_read) {
  if (geo_.zero_latency) {
    return 0;
  }
  uint64_t cost = 0;
  bool sequential = offset == head_pos_;
  bool prefetched = is_read && geo_.lookahead_enabled && offset >= head_pos_ &&
                    offset + len <= prefetch_end_;
  uint64_t distance = offset > head_pos_ ? offset - head_pos_ : head_pos_ - offset;
  uint64_t seek = distance <= geo_.near_seek_bytes ? geo_.track_seek_ns : geo_.avg_seek_ns;
  if (is_read && !geo_.lookahead_enabled) {
    // Without the drive's read lookahead, even a sequential stream of
    // separate read requests misses the sector each time and waits a full
    // revolution — the paper's "no IDE disk prefetch" row, where both
    // systems degrade to ~8.6 ms per small file.
    cost += geo_.rotation_ns;
    if (!sequential) {
      cost += seek;
      ++seek_ops_;
    }
  } else if (!sequential && !prefetched) {
    // Positioning: distance-dependent seek plus half a rotation of latency.
    cost += seek + geo_.rotation_ns / 2;
    ++seek_ops_;
  }
  // Media transfer.
  cost += len * 1'000'000'000ULL / geo_.bandwidth_bytes_per_sec;
  if (is_read && geo_.lookahead_enabled) {
    // The drive keeps streaming into its buffer after a read; subsequent
    // nearby reads are free of positioning cost.
    prefetch_end_ = offset + len + geo_.lookahead_window_bytes;
  } else if (!is_read) {
    prefetch_end_ = 0;  // writes invalidate the prefetch window
  }
  head_pos_ = offset + len;
  return cost;
}

std::optional<FaultRule> DiskModel::MatchFault(bool is_read, uint64_t offset) {
  uint64_t& index = is_read ? fault_read_index_ : fault_write_index_;
  uint64_t this_index = index++;
  for (size_t i = 0; i < fault_rules_.size(); ++i) {
    const FaultRule& r = fault_rules_[i];
    if (r.on_read != is_read) {
      continue;
    }
    if (r.op_index != FaultRule::kAnyIndex && r.op_index != this_index) {
      continue;
    }
    if (offset < r.offset_lo || offset >= r.offset_hi) {
      continue;
    }
    FaultRule fired = r;
    fault_rules_.erase(fault_rules_.begin() + static_cast<ptrdiff_t>(i));
    ++fault_counts_[static_cast<size_t>(fired.kind)];
    // Every injected fault leaves a flight-recorder event: a failing
    // campaign schedule's dump shows exactly which faults fired before
    // the oracle tripped (tests/store/fault_campaign_test.cc).
    trace::RecordEvent(trace::EventKind::kFault,
                       static_cast<uint64_t>(fired.kind), offset,
                       is_read ? 1 : 0);
    return fired;
  }
  return std::nullopt;
}

Status DiskModel::Read(uint64_t offset, void* buf, uint64_t len) {
  MutexLock lock(&mu_);
  if (crashed_) {
    return Status::kCrashed;
  }
  // Overflow-safe: `offset + len > capacity` wraps for huge offsets and
  // would turn a range error into an out-of-bounds access (the same wrap
  // the kernel's RangeOk closes on the syscall byte-range paths).
  if (offset > geo_.capacity_bytes || len > geo_.capacity_bytes - offset) {
    return Status::kRange;
  }
  std::optional<FaultRule> fault = MatchFault(/*is_read=*/true, offset);
  if (fault.has_value()) {
    switch (fault->kind) {
      case FaultKind::kReadError:
        return Status::kIoError;  // transient: nothing returned, no crash
      case FaultKind::kCrashDevice:
        crashed_ = true;
        return Status::kCrashed;
      case FaultKind::kBitFlip:
        break;  // read proceeds; the flip is applied to the returned bytes
      default:
        fault.reset();  // write-only kinds armed on reads: ignore
        break;
    }
  }
  sim_time_ns_ += AccessCost(offset, len, /*is_read=*/true);
  ++read_ops_;
  if (len != 0) {  // len == 0 legitimately pairs with a null buf
    memset(buf, 0, len);
  }
  if (geo_.store_data && offset < data_.size()) {
    uint64_t n = std::min<uint64_t>(len, data_.size() - offset);
    if (n != 0) {
      memcpy(buf, data_.data() + offset, n);
    }
  }
  if (fault.has_value() && fault->kind == FaultKind::kBitFlip && len != 0) {
    uint64_t bit = fault->arg % (len * 8);
    static_cast<uint8_t*>(buf)[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
  }
  return Status::kOk;
}

Status DiskModel::Write(uint64_t offset, const void* buf, uint64_t len) {
  MutexLock lock(&mu_);
  if (crashed_) {
    return Status::kCrashed;
  }
  if (offset > geo_.capacity_bytes || len > geo_.capacity_bytes - offset) {
    return Status::kRange;
  }
  uint64_t persist_len = len;
  bool tearing = false;
  std::optional<uint64_t> flip_bit;
  std::optional<FaultRule> fault = MatchFault(/*is_read=*/false, offset);
  if (fault.has_value()) {
    switch (fault->kind) {
      case FaultKind::kTorn:
        // Arbitrary persisted prefix, then the device is gone — unlike the
        // CrashAfterBytes tear, the prefix is the rule's choice.
        persist_len = std::min<uint64_t>(fault->arg, len);
        tearing = true;
        break;
      case FaultKind::kMisdirect: {
        // The payload lands `arg` bytes away — silently: kOk is reported
        // and the intended extent keeps its old contents.
        uint64_t bad = offset + (fault->arg % std::max<uint64_t>(geo_.capacity_bytes, 1));
        if (bad > geo_.capacity_bytes || len > geo_.capacity_bytes - bad) {
          bad = (bad % std::max<uint64_t>(geo_.capacity_bytes - len + 1, 1));
        }
        offset = bad;
        break;
      }
      case FaultKind::kBitFlip:
        if (len != 0) {
          flip_bit = fault->arg % (len * 8);
        }
        break;
      case FaultKind::kWriteError:
        return Status::kIoError;  // transient controller error: nothing hit media
      case FaultKind::kCrashDevice:
        crashed_ = true;
        return Status::kCrashed;  // crash BEFORE the op: nothing persisted
      case FaultKind::kReadError:
        break;  // read-only kind armed on writes: ignore
    }
  }
  if (crash_armed_) {
    if (len >= crash_after_) {
      persist_len = std::min(persist_len, crash_after_);
      tearing = true;
    } else {
      crash_after_ -= len;
    }
  }
  sim_time_ns_ += AccessCost(offset, persist_len, /*is_read=*/false);
  if (!geo_.zero_latency) {
    sim_time_ns_ += geo_.write_request_overhead_ns;
  }
  ++write_ops_;
  ++writes_since_flush_;
  bytes_written_ += persist_len;
  if (geo_.store_data && persist_len > 0) {
    if (offset + persist_len > data_.size()) {
      data_.resize(offset + persist_len, 0);
    }
    memcpy(data_.data() + offset, buf, persist_len);
    if (flip_bit.has_value() && flip_bit.value() / 8 < persist_len) {
      // Durable silent corruption: the media holds the flipped bit while
      // the op reports success.
      data_[offset + flip_bit.value() / 8] ^=
          static_cast<uint8_t>(1u << (flip_bit.value() % 8));
    }
  }
  if (tearing) {
    crashed_ = true;
    crash_armed_ = false;
    return Status::kCrashed;
  }
  return Status::kOk;
}

Status DiskModel::Flush() {
  MutexLock lock(&mu_);
  if (crashed_) {
    return Status::kCrashed;
  }
  if (!geo_.zero_latency && writes_since_flush_ > 0) {
    sim_time_ns_ += geo_.sync_barrier_ns;
    // A barrier forces the queue to the platter and loses positioning: the
    // next access repositions (seek + rotation) even if logically
    // sequential. This is what makes per-file-sync workloads pay a full
    // mechanical round trip per operation (Figure 12's 459 s row).
    head_pos_ = ~uint64_t{0};
    prefetch_end_ = 0;
  }
  writes_since_flush_ = 0;
  return Status::kOk;
}

uint64_t DiskModel::sim_time_ns() const {
  MutexLock lock(&mu_);
  return sim_time_ns_;
}

void DiskModel::ResetSimTime() {
  MutexLock lock(&mu_);
  sim_time_ns_ = 0;
  read_ops_ = 0;
  write_ops_ = 0;
  bytes_written_ = 0;
  seek_ops_ = 0;
}

void DiskModel::CrashAfterBytes(uint64_t n) {
  MutexLock lock(&mu_);
  crash_armed_ = true;
  crash_after_ = n;
}

void DiskModel::Repair() {
  MutexLock lock(&mu_);
  crashed_ = false;
  crash_armed_ = false;
}

void DiskModel::SetFaultPlan(FaultPlan plan) {
  MutexLock lock(&mu_);
  fault_rules_ = std::move(plan.rules);
  fault_read_index_ = 0;
  fault_write_index_ = 0;
}

void DiskModel::ClearFaults() {
  MutexLock lock(&mu_);
  fault_rules_.clear();
}

uint64_t DiskModel::faults_injected() const {
  MutexLock lock(&mu_);
  uint64_t total = 0;
  for (uint64_t c : fault_counts_) {
    total += c;
  }
  return total;
}

uint64_t DiskModel::faults_injected(FaultKind kind) const {
  MutexLock lock(&mu_);
  return fault_counts_[static_cast<size_t>(kind)];
}

size_t DiskModel::pending_faults() const {
  MutexLock lock(&mu_);
  return fault_rules_.size();
}

}  // namespace histar
