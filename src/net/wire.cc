#include "src/net/wire.h"

#include <chrono>
#include <cstring>

namespace histar {

MacAddr MacFromIndex(uint32_t idx) {
  return MacAddr{0x02, 0x48, 0x53,  // locally administered, "HS"
                 static_cast<uint8_t>(idx >> 16), static_cast<uint8_t>(idx >> 8),
                 static_cast<uint8_t>(idx)};
}

MacAddr BroadcastMac() { return MacAddr{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}; }

bool SimNetPort::Transmit(const std::vector<uint8_t>& frame) {
  if (frame.size() < kFrameHeader || frame.size() > kMaxFrame) {
    return false;
  }
  net_->Forward(this, frame);
  return true;
}

bool SimNetPort::Receive(std::vector<uint8_t>* frame) {
  MutexLock lock(&mu_);
  if (rx_.empty()) {
    return false;
  }
  *frame = std::move(rx_.front());
  rx_.pop_front();
  space_cv_.NotifyAll();
  return true;
}

bool SimNetPort::WaitForFrame(uint32_t timeout_ms) {
  MutexLock lock(&mu_);
  if (!rx_.empty()) {
    return true;
  }
  if (timeout_ms == 0) {
    timeout_ms = 50;  // bounded poll so daemon shutdown is prompt
  }
  return rx_cv_.WaitFor(mu_, std::chrono::milliseconds(timeout_ms), [this] {
    mu_.AssertHeld();  // predicate runs with the wait mutex reacquired
    return !rx_.empty();
  });
}

void SimNetPort::Deliver(const std::vector<uint8_t>& frame) {
  MutexLock lock(&mu_);
  // Backpressure: wait for ring space. Give up after a bounded delay (dead
  // receiver) and drop, so a stopped daemon cannot wedge the whole switch.
  space_cv_.WaitFor(mu_, std::chrono::seconds(2), [this] {
    mu_.AssertHeld();  // predicate runs with the wait mutex reacquired
    return rx_.size() < kRxQueueLimit;
  });
  if (rx_.size() >= kRxQueueLimit) {
    return;
  }
  rx_.push_back(frame);
  rx_cv_.NotifyAll();
}

NetSwitch::NetSwitch(uint64_t line_rate_bits_per_sec) : line_rate_(line_rate_bits_per_sec) {}

SimNetPort* NetSwitch::NewPort() {
  MutexLock lock(&mu_);
  ports_.push_back(std::make_unique<SimNetPort>(this, MacFromIndex(next_index_++)));
  return ports_.back().get();
}

void NetSwitch::Forward(SimNetPort* from, const std::vector<uint8_t>& frame) {
  std::vector<SimNetPort*> targets;
  {
    MutexLock lock(&mu_);
    ++frames_;
    if (line_rate_ > 0) {
      sim_time_ns_ += frame.size() * 8ULL * 1'000'000'000ULL / line_rate_;
    }
    MacAddr dst;
    memcpy(dst.data(), frame.data(), 6);
    for (auto& p : ports_) {
      if (p.get() == from) {
        continue;
      }
      if (hub_mode_ || dst == BroadcastMac() || p->MacAddress() == dst) {
        targets.push_back(p.get());
      }
    }
  }
  for (SimNetPort* p : targets) {
    p->Deliver(frame);
  }
}

uint64_t NetSwitch::sim_time_ns() const {
  MutexLock lock(&mu_);
  return sim_time_ns_;
}

void NetSwitch::ResetSimTime() {
  MutexLock lock(&mu_);
  sim_time_ns_ = 0;
}

}  // namespace histar
