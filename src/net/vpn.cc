#include "src/net/vpn.h"

#include <cstring>

#include "src/kernel/thread_runner.h"

namespace histar {

void TunnelEncode(uint8_t key, const std::vector<uint8_t>& frame, std::vector<uint8_t>* out) {
  uint16_t len = static_cast<uint16_t>(frame.size());
  out->push_back(static_cast<uint8_t>(len));
  out->push_back(static_cast<uint8_t>(len >> 8));
  for (uint8_t b : frame) {
    out->push_back(b ^ key);
  }
}

void TunnelDecoder::Feed(const uint8_t* data, size_t len) {
  buf_.insert(buf_.end(), data, data + len);
}

bool TunnelDecoder::Next(std::vector<uint8_t>* frame) {
  if (buf_.size() < 2) {
    return false;
  }
  uint16_t len = static_cast<uint16_t>(buf_[0] | (buf_[1] << 8));
  if (buf_.size() < 2u + len) {
    return false;
  }
  frame->clear();
  frame->reserve(len);
  for (uint16_t i = 0; i < len; ++i) {
    frame->push_back(buf_[2 + i] ^ key_);
  }
  buf_.erase(buf_.begin(), buf_.begin() + 2 + len);
  return true;
}

// ---- VpnGatewaySim -------------------------------------------------------------

VpnGatewaySim::VpnGatewaySim(NetDaemon* inet, Kernel* kernel, ObjectId client_thread,
                             uint16_t listen_port, uint8_t key)
    : inet_(inet), kernel_(kernel), self_(client_thread), port_(listen_port), key_(key) {
  host_ = std::thread([this]() {
    CurrentThread bind(self_);
    Loop();
  });
}

VpnGatewaySim::~VpnGatewaySim() { Stop(); }

void VpnGatewaySim::Stop() {
  running_.store(false);
  if (host_.joinable()) {
    host_.join();
  }
}

MacAddr VpnGatewaySim::remote_host_mac() const { return MacFromIndex(0xbeef); }

// Frame-level responder for the pretend corporate network: an echo server
// (port 7) living at remote_host_mac(). Speaks the same mini stream protocol
// the VPN stack emits through the tunnel.
std::vector<uint8_t> VpnGatewaySim::HandleInnerFrame(const std::vector<uint8_t>& frame) {
  std::vector<uint8_t> none;
  if (frame.size() < kFrameHeader + 7) {
    return none;
  }
  uint16_t proto = static_cast<uint16_t>((frame[12] << 8) | frame[13]);
  if (proto != kProtoStream) {
    return none;
  }
  MacAddr src;
  memcpy(src.data(), frame.data() + 6, 6);
  uint8_t type = frame[14];
  uint16_t sport;
  uint16_t dport;
  uint16_t len;
  memcpy(&sport, frame.data() + 15, 2);
  memcpy(&dport, frame.data() + 17, 2);
  memcpy(&len, frame.data() + 19, 2);

  // Build the reply with src/dst and ports swapped.
  auto make = [&](uint8_t t, const uint8_t* data, uint16_t n) {
    std::vector<uint8_t> r(kFrameHeader + 7 + n);
    memcpy(r.data(), src.data(), 6);                       // back to sender
    MacAddr me = remote_host_mac();
    memcpy(r.data() + 6, me.data(), 6);
    r[12] = static_cast<uint8_t>(kProtoStream >> 8);
    r[13] = static_cast<uint8_t>(kProtoStream);
    r[14] = t;
    memcpy(r.data() + 15, &dport, 2);  // our port is their dport
    memcpy(r.data() + 17, &sport, 2);
    memcpy(r.data() + 19, &n, 2);
    if (n > 0) {
      memcpy(r.data() + 21, data, n);
    }
    return r;
  };

  if (dport != 7) {
    return none;  // only the echo service exists out there
  }
  switch (type) {
    case 1:  // SYN → SYN_ACK
      return make(2, nullptr, 0);
    case 3:  // DATA → echo it back
      return make(3, frame.data() + 21, len);
    case 4:  // FIN → FIN
      return make(4, nullptr, 0);
    default:
      return none;
  }
}

void VpnGatewaySim::Loop() {
  Result<uint64_t> ls = inet_->Listen(self_, port_);
  if (!ls.ok()) {
    return;
  }
  Result<uint64_t> conn = inet_->Accept(self_, ls.value(), 30000);
  if (!conn.ok()) {
    return;
  }
  TunnelDecoder dec(key_);
  std::vector<uint8_t> buf(4096);
  while (running_.load()) {
    Result<uint64_t> n = inet_->Recv(self_, conn.value(), buf.data(), buf.size(), 100);
    if (n.ok() && n.value() > 0) {
      dec.Feed(buf.data(), n.value());
      std::vector<uint8_t> frame;
      while (dec.Next(&frame)) {
        ++frames_;
        std::vector<uint8_t> reply = HandleInnerFrame(frame);
        if (!reply.empty()) {
          std::vector<uint8_t> rec;
          TunnelEncode(key_, reply, &rec);
          inet_->Send(self_, conn.value(), rec.data(), rec.size());
        }
      }
    } else if (n.status() == Status::kHalted) {
      return;
    }
  }
}

// ---- VpnDaemon -----------------------------------------------------------------

std::unique_ptr<VpnDaemon> VpnDaemon::Start(UnixWorld* world, NetDaemon* inet,
                                            MacAddr gateway_mac, uint16_t gateway_port,
                                            uint8_t key) {
  auto d = std::unique_ptr<VpnDaemon>(new VpnDaemon());
  d->world_ = world;
  d->kernel_ = world->kernel();
  d->inet_ = inet;
  d->key_ = key;
  d->gateway_mac_ = gateway_mac;
  d->gateway_port_ = gateway_port;
  Kernel* k = d->kernel_;
  ObjectId boot = world->init_thread();

  // The VPN taint category v; the tun "wire" is a 2-port hub.
  d->v_ = k->sys_cat_create(boot).value();
  d->tun_ = std::make_unique<NetSwitch>(0);
  d->tun_->set_hub_mode(true);
  SimNetPort* stack_end = d->tun_->NewPort();
  SimNetPort* client_end = d->tun_->NewPort();

  // VPN protocol stack: like the Internet stack, but its "network taint"
  // category is v — everything read from the tun is {v2, 1}.
  NetTaint vpn_taint;
  vpn_taint.nr = k->sys_cat_create(boot).value();
  vpn_taint.nw = k->sys_cat_create(boot).value();
  vpn_taint.i = d->v_;
  d->vpn_stack_ = NetDaemon::Start(world, stack_end, "vpnd-stack", &vpn_taint);
  if (d->vpn_stack_ == nullptr) {
    return nullptr;
  }

  // The client end of the tun: a device only vpnd can use; carries v2 so
  // VPN-originated frames keep their taint even at the raw-device level.
  CategoryId cr = k->sys_cat_create(boot).value();
  CategoryId cw = k->sys_cat_create(boot).value();
  Label tun_label(Level::k1, {{cr, Level::k3}, {cw, Level::k0}, {d->v_, Level::k2}});
  d->tun_client_dev_ = k->BootstrapDevice(DeviceKind::kNet, tun_label, "tun-client");
  k->AttachNetPort(d->tun_client_dev_, client_end);

  // vpnd: the only owner of both i and v (Figure 11's {i*, v*, 1}).
  ProcessOpts opts;
  opts.extra_ownership = Label(Level::k1, {{inet->taint().i, Level::kStar},
                                           {d->v_, Level::kStar},
                                           {cr, Level::kStar},
                                           {cw, Level::kStar}});
  Result<ProcessIds> ids = world->procs().CreateProcessObjects(boot, "vpnd", opts);
  if (!ids.ok()) {
    return nullptr;
  }
  d->vpnd_ids_ = ids.value();

  // Frame staging buffer for the tun device, labeled like the device —
  // kNetRxBurst slots so the ring-backed drain can park a whole burst of
  // receives (slot 0 doubles as the inbound staging slot: the loop is
  // single-threaded and only writes it after its outbound burst is reaped).
  CreateSpec rspec;
  rspec.container = d->vpnd_ids_.proc_ct;
  rspec.label = tun_label;
  rspec.descrip = "tun-rxbuf";
  rspec.quota = kObjectOverheadBytes + 4 * kPageSize;
  Result<ObjectId> rxbuf =
      k->sys_segment_create(boot, rspec, uint64_t{kNetRxBurst} * kNetFrameMax);
  if (!rxbuf.ok()) {
    return nullptr;
  }
  d->rxbuf_ = rxbuf.value();

  // The tun submission ring, tainted v like everything read from the tun.
  CreateSpec qspec;
  qspec.container = d->vpnd_ids_.proc_ct;
  qspec.label = Label(Level::k1, {{d->v_, Level::k2}});
  qspec.descrip = "vpnd-ring";
  qspec.quota = 16 * kPageSize;
  Result<ObjectId> ring = k->sys_ring_create(boot, qspec, 4 * kNetRxBurst);
  d->ring_ = ring.ok() ? ring.value() : kInvalidObject;

  d->running_.store(true);
  VpnDaemon* raw = d.get();
  d->client_host_ = RunOnHostThread(k, d->vpnd_ids_.thread, [raw]() { raw->ClientLoop(); });
  return d;
}

VpnDaemon::~VpnDaemon() { Stop(); }

void VpnDaemon::Stop() {
  running_.store(false);
  if (client_host_.joinable()) {
    client_host_.join();
  }
  if (vpn_stack_ != nullptr) {
    vpn_stack_->Stop();
  }
}

void VpnDaemon::ClientLoop() {
  ObjectId self = vpnd_ids_.thread;
  Kernel* k = kernel_;
  // Connect the tunnel over the Internet stack. vpnd owns i, so socket
  // segments ({i2, 1}) are fully accessible to it.
  Result<uint64_t> conn = inet_->Connect(self, gateway_mac_, gateway_port_);
  if (!conn.ok()) {
    return;
  }
  inet_sock_ = conn.value();
  ContainerEntry tun_dev{k->root_container(), tun_client_dev_};
  ContainerEntry rx{vpnd_ids_.proc_ct, rxbuf_};
  TunnelDecoder dec(key_);
  std::vector<uint8_t> buf(4096);
  std::vector<uint8_t> scratch(uint64_t{kNetRxBurst} * kNetFrameMax);
  while (running_.load()) {
    bool idle = true;
    // Outbound: VPN stack → tun → encrypt → Internet. OpenVPN's check that
    // outgoing packets are not i-tainted is structural here: everything
    // read from the tun device carries v2, never i. The drain rides the
    // same ring-backed receive→read bursts as netd's pump (PR 5), falling
    // back to per-call receives if the ring is unusable.
    auto outbound = [&](std::vector<uint8_t>&& frame) {
      std::vector<uint8_t> rec;
      TunnelEncode(key_, frame, &rec);
      inet_->Send(self, inet_sock_, rec.data(), rec.size());
      ++frames_out_;
      idle = false;
    };
    bool ring_ok = ring_ != kInvalidObject;
    while (ring_ok) {
      int got = RingDrainNic(k, self, ContainerEntry{vpnd_ids_.proc_ct, ring_}, tun_dev, rx,
                             /*slot0_off=*/0, kNetRxBurst, &scratch, outbound);
      if (got < 0) {
        ring_ok = false;
        break;
      }
      if (got < static_cast<int>(kNetRxBurst)) {
        break;  // tun drained
      }
    }
    while (!ring_ok) {
      Result<uint64_t> n = k->sys_net_receive(self, tun_dev, rx, 0, kNetFrameMax);
      if (!n.ok()) {
        break;
      }
      std::vector<uint8_t> frame(n.value());
      if (k->sys_segment_read(self, rx, frame.data(), 0, n.value()) != Status::kOk) {
        break;
      }
      outbound(std::move(frame));
    }
    // Inbound: Internet → decrypt → tun → VPN stack (arrives v2-tainted via
    // the vpn stack's device label).
    Result<uint64_t> n = inet_->Recv(self, inet_sock_, buf.data(), buf.size(), 5);
    if (n.ok() && n.value() > 0) {
      dec.Feed(buf.data(), n.value());
      std::vector<uint8_t> frame;
      while (dec.Next(&frame)) {
        if (k->sys_segment_write(self, rx, frame.data(), 0, frame.size()) == Status::kOk) {
          k->sys_net_transmit(self, tun_dev, rx, 0, frame.size());
          ++frames_in_;
        }
      }
      idle = false;
    }
    if (idle) {
      k->sys_net_wait(self, tun_dev, 5);
    }
  }
}

}  // namespace histar
