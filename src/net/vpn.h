// VPN isolation (paper §6.3, Figure 11).
//
// Two networks, two taints: i for the open Internet, v for the VPN. The
// bootstrap labels the Internet device to taint everything received {i2, 1};
// the VPN stack's tun device analogously taints with v. The *only* component
// owning both categories is the vpnd client, which is trusted to
//   * taint incoming VPN packets v2,
//   * refuse to forward anything tainted i out the VPN (and vice versa),
//   * "encrypt" the tunnel (a keyed XOR stands in for real crypto — the
//     property under reproduction is taint separation, not confidentiality
//     against a cryptanalyst).
//
// Everything else — both lwIP stacks, the applications on either side — is
// untrusted, exactly as in the paper. A process tainted v2 cannot convey
// anything to the Internet; a process tainted i2 cannot touch VPN state.
#ifndef SRC_NET_VPN_H_
#define SRC_NET_VPN_H_

#include <atomic>
#include <thread>

#include "src/net/netd.h"

namespace histar {

// The simulated remote VPN gateway: lives on the Internet switch as a plain
// i2 client of the Internet stack, decrypts tunneled frames, impersonates
// hosts on the corporate network (an echo service on port 7), and encrypts
// replies. It plays the role of the far endpoint OpenVPN would talk to.
class VpnGatewaySim {
 public:
  VpnGatewaySim(NetDaemon* inet, Kernel* kernel, ObjectId client_thread, uint16_t listen_port,
                uint8_t key);
  ~VpnGatewaySim();

  void Stop();
  MacAddr remote_host_mac() const;
  uint64_t frames_tunneled() const { return frames_.load(); }

 private:
  void Loop();
  std::vector<uint8_t> HandleInnerFrame(const std::vector<uint8_t>& frame);

  NetDaemon* inet_;
  Kernel* kernel_;
  ObjectId self_;
  uint16_t port_;
  uint8_t key_;
  std::thread host_;
  std::atomic<bool> running_{true};
  std::atomic<uint64_t> frames_{0};
};

// The local side: tun pair + VPN protocol stack + vpnd client process.
class VpnDaemon {
 public:
  // `inet` is the Internet-side stack; `gateway_mac`/`gateway_port` locate
  // the remote gateway on the Internet.
  static std::unique_ptr<VpnDaemon> Start(UnixWorld* world, NetDaemon* inet,
                                          MacAddr gateway_mac, uint16_t gateway_port,
                                          uint8_t key);
  ~VpnDaemon();

  // The VPN-side protocol stack; applications use it exactly like the
  // Internet one (mounted as /netd by convention, §6.3).
  NetDaemon* vpn_stack() { return vpn_stack_.get(); }
  CategoryId v() const { return v_; }

  void Stop();
  uint64_t frames_out() const { return frames_out_.load(); }
  uint64_t frames_in() const { return frames_in_.load(); }

 private:
  VpnDaemon() = default;
  void ClientLoop();

  UnixWorld* world_ = nullptr;
  Kernel* kernel_ = nullptr;
  NetDaemon* inet_ = nullptr;
  CategoryId v_ = kInvalidCategory;
  uint8_t key_ = 0;
  MacAddr gateway_mac_{};
  uint16_t gateway_port_ = 0;

  std::unique_ptr<NetSwitch> tun_;        // 2-port hub: stack end ⇄ client end
  std::unique_ptr<NetDaemon> vpn_stack_;  // the untrusted VPN lwIP analogue
  ObjectId tun_client_dev_ = kInvalidObject;
  ProcessIds vpnd_ids_;                    // the trusted-ish vpnd process
  ObjectId rxbuf_ = kInvalidObject;
  // Submission ring for the tun RX bursts ({v2,1}); kInvalidObject → the
  // loop stays on per-call receives (same fallback contract as netd).
  ObjectId ring_ = kInvalidObject;
  uint64_t inet_sock_ = 0;

  std::thread client_host_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> frames_out_{0};
  std::atomic<uint64_t> frames_in_{0};
};

// Tunnel record framing over the Internet stream: [u16 len][xor-ed frame].
void TunnelEncode(uint8_t key, const std::vector<uint8_t>& frame, std::vector<uint8_t>* out);
// Incremental decoder; consumes bytes, emits complete frames.
class TunnelDecoder {
 public:
  explicit TunnelDecoder(uint8_t key) : key_(key) {}
  void Feed(const uint8_t* data, size_t len);
  bool Next(std::vector<uint8_t>* frame);

 private:
  uint8_t key_;
  std::vector<uint8_t> buf_;
};

}  // namespace histar

#endif  // SRC_NET_VPN_H_
