// netd: the untrusted user-level network stack (paper §5.7).
//
// lwIP's role is played by "ministack": a small reliable stream protocol
// (the wire is a lossless switch, so no retransmission machinery is needed —
// what matters for the paper's claims is *where the bytes and taint flow*,
// not TCP fidelity). netd runs as a regular process owning the device
// categories nr/nw; the device label {nr3, nw0, i2, 1} taints everything
// read from the network with i.
//
// Two interaction paths, as in the paper:
//  * a control gate ("netd.ctl") for socket setup — the RPC-like slow path;
//  * a per-socket *shared memory segment* (labeled {i2, 1}) with tx/rx rings
//    and futex wakeups — the fast path the paper describes as "donating a
//    worker thread to netd".
//
// Because rx data lives in {i2, 1} segments, an application must taint
// itself i2 before it can read from a socket; an untainted process simply
// cannot observe network payloads. Conversely anything tainted beyond i2 in
// an unowned category cannot transmit. This is the entire §6.3 story.
#ifndef SRC_NET_NETD_H_
#define SRC_NET_NETD_H_

#include <atomic>
#include <map>
#include <memory>
#include <thread>

#include "src/net/wire.h"
#include "src/unixlib/unix.h"

namespace histar {

// Stream protocol message types (frame proto 0x0800).
inline constexpr uint16_t kProtoStream = 0x0800;

struct NetTaint {
  CategoryId nr = kInvalidCategory;  // device read capability
  CategoryId nw = kInvalidCategory;  // device write capability
  CategoryId i = kInvalidCategory;   // the network taint itself
};

class NetDaemon {
 public:
  // Boots a netd process: allocates nr/nw/i (or uses `taint` if provided),
  // creates the kernel device bound to `port`, spawns the daemon. `name`
  // distinguishes multiple stacks ("netd", "vpnd-stack").
  static std::unique_ptr<NetDaemon> Start(UnixWorld* world, SimNetPort* port,
                                          const std::string& name,
                                          const NetTaint* taint = nullptr);
  ~NetDaemon();

  const NetTaint& taint() const { return taint_; }
  ObjectId device() const { return device_; }
  MacAddr mac() const { return mac_; }
  ObjectId proc_container() const { return ids_.proc_ct; }
  ObjectId ctl_gate() const { return ctl_gate_; }

  // ---- client API (runs on the caller's thread; crosses the ctl gate) ----

  // Opens a listening socket on `port`; returns a socket id.
  Result<uint64_t> Listen(ObjectId self, uint16_t port);
  // Accepts a pending connection (blocking up to timeout); returns a
  // connected socket id.
  Result<uint64_t> Accept(ObjectId self, uint64_t listen_sock, uint32_t timeout_ms);
  // Connects to a remote stack.
  Result<uint64_t> Connect(ObjectId self, MacAddr dst, uint16_t port);
  Status CloseSocket(ObjectId self, uint64_t sock);

  // Fast path: direct ring I/O on the socket's shared segment. The caller
  // must be able to observe/modify {i2, 1} segments (i.e. carry i2 taint).
  Result<uint64_t> Send(ObjectId self, uint64_t sock, const void* buf, uint64_t len);
  Result<uint64_t> Recv(ObjectId self, uint64_t sock, void* buf, uint64_t len,
                        uint32_t timeout_ms);

  // The shared segment of a socket (tests poke at labels).
  Result<ContainerEntry> SocketSegment(uint64_t sock);

  // Convenience: the label a client thread needs to use sockets ({i2, 1}
  // joined into its own label).
  Label ClientTaint() const { return Label(Level::k1, {{taint_.i, Level::k2}}); }

  // Stops the pump thread (tests; destructor also does this).
  void Stop();

  uint64_t frames_sent() const { return frames_sent_.load(); }
  uint64_t frames_received() const { return frames_received_.load(); }

 private:
  NetDaemon() = default;

  struct Socket;

  // Gate entry bodies (execute with netd privilege on the caller's thread).
  friend void NetdCtlEntry(GateCall& call);
  uint64_t CtlOp(ObjectId self, uint64_t op, uint64_t a, uint64_t b, uint64_t c);

  // The pump: device ⇄ socket rings.
  void PumpLoop();
  void HandleFrame(const std::vector<uint8_t>& frame);
  void DrainTx(Socket* s);
  bool SendFrame(const MacAddr& dst, uint8_t type, uint16_t sport, uint16_t dport,
                 const uint8_t* data, uint16_t len);

  Result<Socket*> FindSocket(uint64_t sock);
  Result<uint64_t> MakeSocketWithSegment();

  UnixWorld* world_ = nullptr;
  Kernel* kernel_ = nullptr;
  SimNetPort* port_ = nullptr;
  MacAddr mac_{};
  NetTaint taint_;
  ObjectId device_ = kInvalidObject;
  ProcessIds ids_;
  ObjectId pump_thread_ = kInvalidObject;
  ObjectId ctl_gate_ = kInvalidObject;
  ObjectId rxbuf_seg_ = kInvalidObject;  // device receive staging, {nr3,nw0,i2,1}

  std::mutex mu_;
  std::map<uint64_t, std::unique_ptr<Socket>> sockets_;
  uint64_t next_sock_ = 1;
  std::thread pump_host_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> frames_sent_{0};
  std::atomic<uint64_t> frames_received_{0};

  static std::mutex registry_mu_;
  static std::map<uint64_t, NetDaemon*> registry_;
  static uint64_t next_registry_id_;
  uint64_t registry_id_ = 0;
};

}  // namespace histar

#endif  // SRC_NET_NETD_H_
