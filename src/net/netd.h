// netd: the untrusted user-level network stack (paper §5.7).
//
// lwIP's role is played by "ministack": a small reliable stream protocol
// (the wire is a lossless switch, so no retransmission machinery is needed —
// what matters for the paper's claims is *where the bytes and taint flow*,
// not TCP fidelity). netd runs as a regular process owning the device
// categories nr/nw; the device label {nr3, nw0, i2, 1} taints everything
// read from the network with i.
//
// Two interaction paths, as in the paper:
//  * a control gate ("netd.ctl") for socket setup — the RPC-like slow path;
//  * a per-socket *shared memory segment* (labeled {i2, 1}) with tx/rx rings
//    and futex wakeups — the fast path the paper describes as "donating a
//    worker thread to netd".
//
// Because rx data lives in {i2, 1} segments, an application must taint
// itself i2 before it can read from a socket; an untainted process simply
// cannot observe network payloads. Conversely anything tainted beyond i2 in
// an unowned category cannot transmit. This is the entire §6.3 story.
#ifndef SRC_NET_NETD_H_
#define SRC_NET_NETD_H_

#include <atomic>
#include <map>
#include <memory>
#include <thread>

#include "src/core/sync.h"
#include "src/core/thread_annotations.h"
#include "src/net/wire.h"
#include "src/unixlib/unix.h"

namespace histar {

// Stream protocol message types (frame proto 0x0800).
inline constexpr uint16_t kProtoStream = 0x0800;

// Frame staging geometry shared by the ring-backed NIC paths (PR 5): the
// staging segment is carved into kNetFrameMax-byte slots so a burst of
// receives (and a burst of transmits) each own private bytes — no frame can
// clobber another while a submission is in flight on a kernel worker.
inline constexpr uint64_t kNetFrameMax = 2048;
inline constexpr uint32_t kNetRxBurst = 4;
inline constexpr uint32_t kNetTxBurst = 8;

// Ring-backed NIC drain, shared by netd's pump and vpnd's tunnel loop: ONE
// ring submission of `burst` receive→read chains against `dev`, each chain
// [net_receive into staging slot i] →link→ [segment_read slot i, the LENGTH
// ROUTED from NetReceiveRes.len] — the split submit/complete path that
// finally lets the NIC's unlocked poll phases run off the calling thread.
// Staging slots start at `slot0_off` within `staging`; `scratch` must hold
// burst * kNetFrameMax bytes and stay untouched until the call returns.
// Invokes fn(frame) for every frame received (in order). Returns the frame
// count, or -1 when the ring path is unusable (submission refused — the
// caller falls back to per-call sys_net_receive).
int RingDrainNic(Kernel* kernel, ObjectId self, ContainerEntry ring, ContainerEntry dev,
                 ContainerEntry staging, uint64_t slot0_off, uint32_t burst,
                 std::vector<uint8_t>* scratch,
                 const std::function<void(std::vector<uint8_t>&&)>& fn);

struct NetTaint {
  CategoryId nr = kInvalidCategory;  // device read capability
  CategoryId nw = kInvalidCategory;  // device write capability
  CategoryId i = kInvalidCategory;   // the network taint itself
};

class NetDaemon {
 public:
  // Boots a netd process: allocates nr/nw/i (or uses `taint` if provided),
  // creates the kernel device bound to `port`, spawns the daemon. `name`
  // distinguishes multiple stacks ("netd", "vpnd-stack").
  static std::unique_ptr<NetDaemon> Start(UnixWorld* world, SimNetPort* port,
                                          const std::string& name,
                                          const NetTaint* taint = nullptr);
  ~NetDaemon();

  const NetTaint& taint() const { return taint_; }
  ObjectId device() const { return device_; }
  MacAddr mac() const { return mac_; }
  ObjectId proc_container() const { return ids_.proc_ct; }
  ObjectId ctl_gate() const { return ctl_gate_; }

  // ---- client API (runs on the caller's thread; crosses the ctl gate) ----

  // Opens a listening socket on `port`; returns a socket id.
  Result<uint64_t> Listen(ObjectId self, uint16_t port);
  // Accepts a pending connection (blocking up to timeout); returns a
  // connected socket id.
  Result<uint64_t> Accept(ObjectId self, uint64_t listen_sock, uint32_t timeout_ms);
  // Connects to a remote stack.
  Result<uint64_t> Connect(ObjectId self, MacAddr dst, uint16_t port);
  Status CloseSocket(ObjectId self, uint64_t sock);

  // Fast path: direct ring I/O on the socket's shared segment. The caller
  // must be able to observe/modify {i2, 1} segments (i.e. carry i2 taint).
  Result<uint64_t> Send(ObjectId self, uint64_t sock, const void* buf, uint64_t len);
  Result<uint64_t> Recv(ObjectId self, uint64_t sock, void* buf, uint64_t len,
                        uint32_t timeout_ms);

  // The shared segment of a socket (tests poke at labels).
  Result<ContainerEntry> SocketSegment(uint64_t sock);

  // Convenience: the label a client thread needs to use sockets ({i2, 1}
  // joined into its own label).
  Label ClientTaint() const { return Label(Level::k1, {{taint_.i, Level::k2}}); }

  // Stops the pump thread (tests; destructor also does this).
  void Stop();

  uint64_t frames_sent() const { return frames_sent_.load(); }
  uint64_t frames_received() const { return frames_received_.load(); }
  // True when the pump drives the NIC through the async ring (PR 5).
  bool ring_enabled() const { return ring_ != kInvalidObject; }

 private:
  NetDaemon() = default;

  struct Socket;

  // Gate entry bodies (execute with netd privilege on the caller's thread).
  friend void NetdCtlEntry(GateCall& call);
  uint64_t CtlOp(ObjectId self, uint64_t op, uint64_t a, uint64_t b, uint64_t c);

  // The pump: device ⇄ socket rings.
  void PumpLoop();
  void HandleFrame(const std::vector<uint8_t>& frame);
  void DrainTx(Socket* s) REQUIRES(mu_);
  bool SendFrame(const MacAddr& dst, uint8_t type, uint16_t sport, uint16_t dport,
                 const uint8_t* data, uint16_t len) REQUIRES(mu_);
  std::vector<uint8_t> BuildFrame(const MacAddr& dst, uint8_t type, uint16_t sport,
                                  uint16_t dport, const uint8_t* data, uint16_t len) const;
  // Ring-backed burst of data frames for one socket (called with mu_ held,
  // like SendFrame): [stage-write →link→ net_transmit] pairs chained into
  // one submission so a mid-burst transmit failure cancels every later
  // frame — in-order delivery, exactly like the per-call path stopping at
  // its first failure. Returns bytes drained from the tx ring.
  uint64_t RingSendBurst(ObjectId self, Socket* s, uint64_t txr, uint64_t txw,
                         ContainerEntry seg) REQUIRES(mu_);

  Result<Socket*> FindSocket(uint64_t sock) REQUIRES(mu_);
  Result<uint64_t> MakeSocketWithSegment() REQUIRES(mu_);

  UnixWorld* world_ = nullptr;
  Kernel* kernel_ = nullptr;
  SimNetPort* port_ = nullptr;
  MacAddr mac_{};
  NetTaint taint_;
  ObjectId device_ = kInvalidObject;
  ProcessIds ids_;
  ObjectId pump_thread_ = kInvalidObject;
  ObjectId ctl_gate_ = kInvalidObject;
  // Device frame staging, {nr3,nw0,i2,1}. Slot layout (kNetFrameMax each):
  // [0, kNetRxBurst) receive slots for the pump's ring bursts,
  // [kNetRxBurst, kNetRxBurst+kNetTxBurst) transmit-burst slots (mu_-held
  // callers), and one final control slot for synchronous SendFrame
  // (mu_-held callers) — so a control frame can never clobber a receive
  // in flight on a kernel worker.
  ObjectId rxbuf_seg_ = kInvalidObject;
  // The netd submission rings ({i2,1}); kInvalidObject → sync fallback.
  // Two rings because submit/wait/reap consumers must not share one: the
  // receive ring belongs to the pump thread alone, the transmit ring to
  // whoever holds mu_ (DrainTx callers) — a shared ring would let one
  // consumer's reap scoop up the other's in-flight completions.
  ObjectId ring_ = kInvalidObject;     // receive bursts (pump thread only)
  ObjectId ring_tx_ = kInvalidObject;  // transmit bursts (mu_-held callers)

  // Guards the socket table and every Socket's fields (the per-Socket
  // members cannot carry GUARDED_BY themselves — the analysis cannot name
  // another object's mutex — so their discipline is this comment plus the
  // REQUIRES on every helper that touches a Socket*).
  Mutex mu_;
  std::map<uint64_t, std::unique_ptr<Socket>> sockets_ GUARDED_BY(mu_);
  uint64_t next_sock_ GUARDED_BY(mu_) = 1;
  std::thread pump_host_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> frames_sent_{0};
  std::atomic<uint64_t> frames_received_{0};

  static Mutex registry_mu_;
  static std::map<uint64_t, NetDaemon*> registry_ GUARDED_BY(registry_mu_);
  static uint64_t next_registry_id_ GUARDED_BY(registry_mu_);
  uint64_t registry_id_ = 0;
};

}  // namespace histar

#endif  // SRC_NET_NETD_H_
