#include "src/net/netd.h"

#include <cstring>

#include "src/core/label_memo.h"
#include "src/kernel/ring.h"
#include "src/kernel/thread_runner.h"
#include "src/unixlib/mutex.h"

namespace histar {

namespace {

// Shared socket segment layout: a control header followed by two rings.
constexpr uint64_t kOffMutex = 0;
constexpr uint64_t kOffTxR = 8;
constexpr uint64_t kOffTxW = 16;
constexpr uint64_t kOffRxR = 24;
constexpr uint64_t kOffRxW = 32;
constexpr uint64_t kOffFlags = 40;
constexpr uint64_t kRingBytes = 64 * 1024;
constexpr uint64_t kOffTxData = 48;
constexpr uint64_t kOffRxData = kOffTxData + kRingBytes;
constexpr uint64_t kSocketSegBytes = kOffRxData + kRingBytes;

constexpr uint64_t kFlagEstablished = 1;
constexpr uint64_t kFlagPeerClosed = 2;
constexpr uint64_t kFlagLocalClosed = 4;

// Stream protocol message types.
constexpr uint8_t kMsgSyn = 1;
constexpr uint8_t kMsgSynAck = 2;
constexpr uint8_t kMsgData = 3;
constexpr uint8_t kMsgFin = 4;
constexpr uint16_t kMss = 1400;

// Stream header after the 14-byte frame header:
// [type u8][sport u16][dport u16][len u16] = 7 bytes.
constexpr size_t kStreamHeader = 7;

// Staging-slot layout inside rxbuf_seg_ (see netd.h): receive burst slots,
// then transmit burst slots, then the synchronous control slot.
constexpr uint64_t kTxSlot0 = uint64_t{kNetRxBurst} * kNetFrameMax;
constexpr uint64_t kCtlSlot = kTxSlot0 + uint64_t{kNetTxBurst} * kNetFrameMax;
constexpr uint64_t kStagingBytes = kCtlSlot + kNetFrameMax;

uint64_t PackMac(const MacAddr& m) {
  uint64_t v = 0;
  for (int i = 0; i < 6; ++i) {
    v = (v << 8) | m[static_cast<size_t>(i)];
  }
  return v;
}

MacAddr UnpackMac(uint64_t v) {
  MacAddr m;
  for (int i = 5; i >= 0; --i) {
    m[static_cast<size_t>(i)] = static_cast<uint8_t>(v);
    v >>= 8;
  }
  return m;
}

uint64_t ReadWord(Kernel* k, ObjectId self, ContainerEntry seg, uint64_t off) {
  uint64_t v = 0;
  k->sys_segment_read(self, seg, &v, off, 8);
  return v;
}

void WriteWord(Kernel* k, ObjectId self, ContainerEntry seg, uint64_t off, uint64_t v) {
  k->sys_segment_write(self, seg, &v, off, 8);
}

// Chunked ring write: data → ring[base..base+size) at position w.
Status RingPut(Kernel* k, ObjectId self, ContainerEntry seg, uint64_t base, uint64_t w,
               const uint8_t* data, uint64_t len) {
  uint64_t pos = w % kRingBytes;
  uint64_t first = std::min(len, kRingBytes - pos);
  Status st = k->sys_segment_write(self, seg, data, base + pos, first);
  if (st != Status::kOk) {
    return st;
  }
  if (first < len) {
    st = k->sys_segment_write(self, seg, data + first, base, len - first);
  }
  return st;
}

Status RingGet(Kernel* k, ObjectId self, ContainerEntry seg, uint64_t base, uint64_t r,
               uint8_t* data, uint64_t len) {
  uint64_t pos = r % kRingBytes;
  uint64_t first = std::min(len, kRingBytes - pos);
  Status st = k->sys_segment_read(self, seg, data, base + pos, first);
  if (st != Status::kOk) {
    return st;
  }
  if (first < len) {
    st = k->sys_segment_read(self, seg, data + first, base, len - first);
  }
  return st;
}

}  // namespace

int RingDrainNic(Kernel* kernel, ObjectId self, ContainerEntry ring, ContainerEntry dev,
                 ContainerEntry staging, uint64_t slot0_off, uint32_t burst,
                 std::vector<uint8_t>* scratch,
                 const std::function<void(std::vector<uint8_t>&&)>& fn) {
  // ONE submission: `burst` independent [receive →link→ read] chains. The
  // NetReceiveRes length flows into the linked SegmentReadReq (RingSlot
  // routing), and an empty NIC (kAgain) cancels just that chain's read.
  std::vector<RingOp> ops;
  ops.reserve(2 * burst);
  for (uint32_t slot = 0; slot < burst; ++slot) {
    uint64_t off = slot0_off + uint64_t{slot} * kNetFrameMax;
    ops.push_back(
        RingOp{SyscallReq{NetReceiveReq{dev, staging, off, kNetFrameMax}}, kRingLinked});
    ops.push_back(RingOp{SyscallReq{SegmentReadReq{staging, scratch->data() +
                                                                (slot * kNetFrameMax),
                                                   off, 0}},
                         0, RingSlot::kLen, RingSlot::kLen});
  }
  Result<uint64_t> ticket = kernel->sys_ring_submit(self, ring, std::move(ops));
  if (!ticket.ok()) {
    return -1;
  }
  // Every op in the burst is non-blocking (NetReceive polls, never sleeps),
  // so completion is prompt; wait indefinitely rather than invent a timeout
  // that could strand unreaped completions. kHalted/kNotFound are only
  // reported once no worker holds this burst's buffers (the kernel's
  // executing-drain), so abandoning on them is safe.
  if (RingWaitInterruptible(kernel, self, ring, ticket.value()) != Status::kOk) {
    kernel->sys_ring_reap(self, ring, 0);  // free capacity; frames drop
    return -1;  // halted / ring destroyed: caller falls back
  }
  Result<std::vector<RingCompletion>> done = kernel->sys_ring_reap(self, ring, 0);
  if (!done.ok()) {
    return -1;
  }
  // Pair completions by SEQ, never by position: an earlier abandoned
  // burst's late-published completions can sit at the front of the CQ, and
  // positional pairing would apply their lengths to staging slots the new
  // burst has since overwritten. Seqs outside this burst's range are
  // discarded outright.
  int frames = 0;
  const uint64_t nops = 2 * uint64_t{burst};
  const uint64_t first = ticket.value() - nops + 1;
  std::vector<const SyscallRes*> by_op(nops, nullptr);
  for (const RingCompletion& c : done.value()) {
    if (c.seq >= first && c.seq - first < nops) {
      by_op[static_cast<size_t>(c.seq - first)] = &c.res;
    }
  }
  for (uint32_t slot = 0; slot < burst; ++slot) {
    const SyscallRes* rres = by_op[2 * slot];
    const SyscallRes* dres = by_op[2 * slot + 1];
    if (rres == nullptr || dres == nullptr) {
      continue;
    }
    const NetReceiveRes* rcv = std::get_if<NetReceiveRes>(rres);
    if (rcv == nullptr || rcv->status != Status::kOk) {
      continue;  // kAgain (empty NIC) — the linked read completed kCancelled
    }
    if (ResStatus(*dres) != Status::kOk || rcv->len > kNetFrameMax) {
      continue;
    }
    const uint8_t* base = scratch->data() + uint64_t{slot} * kNetFrameMax;
    fn(std::vector<uint8_t>(base, base + rcv->len));
    ++frames;
  }
  return frames;
}

Mutex NetDaemon::registry_mu_;
std::map<uint64_t, NetDaemon*> NetDaemon::registry_;
uint64_t NetDaemon::next_registry_id_ = 1;

struct NetDaemon::Socket {
  enum class State { kListening, kSynSent, kEstablished, kClosed };
  State state = State::kClosed;
  uint16_t local_port = 0;
  uint16_t peer_port = 0;
  MacAddr peer{};
  ObjectId seg = kInvalidObject;  // shared ring segment (in netd's proc ct)
  std::deque<std::pair<MacAddr, uint16_t>> backlog;  // pending SYNs
  std::deque<uint8_t> rx_staging;  // overflow when the rx ring is full
  bool fin_pending = false;  // FIN seen while staging still holds data
  CondVar cv;  // state changes (connect/accept); waits on NetDaemon::mu_
};

// The control-gate entry: ferries one operation from the caller's local
// segment into the daemon. Executes on the *caller's* thread, relabeled with
// netd's privileges by the gate — exactly the paper's RPC-without-server-
// resources model (§3.5).
void NetdCtlEntry(GateCall& call) {
  NetDaemon* d = nullptr;
  {
    MutexLock lock(&NetDaemon::registry_mu_);
    auto it = NetDaemon::registry_.find(call.closure[0]);
    if (it == NetDaemon::registry_.end()) {
      return;
    }
    d = it->second;
  }
  uint64_t req[4] = {};
  call.kernel->sys_self_local_read(call.thread, req, 0, sizeof(req));
  uint64_t resp = d->CtlOp(call.thread, req[0], req[1], req[2], req[3]);
  call.kernel->sys_self_local_write(call.thread, &resp, 32, 8);
}

std::unique_ptr<NetDaemon> NetDaemon::Start(UnixWorld* world, SimNetPort* port,
                                            const std::string& name, const NetTaint* taint) {
  auto d = std::unique_ptr<NetDaemon>(new NetDaemon());
  d->world_ = world;
  d->kernel_ = world->kernel();
  d->port_ = port;
  d->mac_ = port->MacAddress();
  Kernel* k = d->kernel_;
  ObjectId boot = world->init_thread();

  if (taint != nullptr) {
    d->taint_ = *taint;
  } else {
    d->taint_.nr = k->sys_cat_create(boot).value();
    d->taint_.nw = k->sys_cat_create(boot).value();
    d->taint_.i = k->sys_cat_create(boot).value();
  }

  // The device: {nr3, nw0, i2, 1} — reads taint with i, writes need nw.
  Label dev_label(Level::k1, {{d->taint_.nr, Level::k3},
                              {d->taint_.nw, Level::k0},
                              {d->taint_.i, Level::k2}});
  d->device_ = k->BootstrapDevice(DeviceKind::kNet, dev_label, name + "-dev");
  k->AttachNetPort(d->device_, port);

  // netd process: owns nr/nw, tainted i2 (Figure 11's lwIP stack label).
  ProcessOpts opts;
  opts.extra_ownership =
      Label(Level::k1, {{d->taint_.nr, Level::kStar}, {d->taint_.nw, Level::kStar}});
  opts.taint = Label(Level::k1, {{d->taint_.i, Level::k2}});
  opts.quota = 64 << 20;
  Result<ProcessIds> ids = world->procs().CreateProcessObjects(boot, name, opts);
  if (!ids.ok()) {
    return nullptr;
  }
  d->ids_ = ids.value();
  d->pump_thread_ = d->ids_.thread;

  // Device frame staging, labeled like the device: receive-burst slots for
  // the pump's ring submissions, transmit-burst slots, and the control slot
  // (layout in netd.h).
  CreateSpec rspec;
  rspec.container = d->ids_.proc_ct;
  rspec.label = dev_label;
  rspec.descrip = "rxbuf";
  rspec.quota = kObjectOverheadBytes + kStagingBytes + kPageSize;
  Result<ObjectId> rxbuf = k->sys_segment_create(boot, rspec, kStagingBytes);
  if (!rxbuf.ok()) {
    return nullptr;
  }
  d->rxbuf_seg_ = rxbuf.value();

  // The netd submission ring ({i2,1}, like the socket segments): the pump
  // and the mu_-held control path push NIC bursts through it so the
  // device's unlocked phases run on kernel workers. Creation failing is not
  // fatal — every ring user falls back to the per-call path.
  CreateSpec qspec;
  qspec.container = d->ids_.proc_ct;
  qspec.label = Label(Level::k1, {{d->taint_.i, Level::k2}});
  qspec.descrip = "netd-rx-ring";
  qspec.quota = 16 * kPageSize;
  Result<ObjectId> rx_ring = k->sys_ring_create(boot, qspec, 4 * kNetRxBurst);
  d->ring_ = rx_ring.ok() ? rx_ring.value() : kInvalidObject;
  qspec.descrip = "netd-tx-ring";
  Result<ObjectId> tx_ring = k->sys_ring_create(boot, qspec, 4 * kNetTxBurst);
  d->ring_tx_ = tx_ring.ok() ? tx_ring.value() : kInvalidObject;

  // Control gate.
  {
    MutexLock lock(&registry_mu_);
    d->registry_id_ = next_registry_id_++;
    registry_[d->registry_id_] = d.get();
  }
  k->RegisterGateEntry("netd.ctl", NetdCtlEntry);
  // The control gate carries netd's process and device privileges; callers
  // must already carry the i2 network taint (the shared segments and the
  // device force it anyway).
  Label glabel(Level::k1, {{d->ids_.pr, Level::kStar},
                           {d->ids_.pw, Level::kStar},
                           {d->taint_.nr, Level::kStar},
                           {d->taint_.nw, Level::kStar}});
  Label gclear(Level::k2);
  CreateSpec gspec;
  gspec.container = d->ids_.proc_ct;
  gspec.descrip = "netd-ctl";
  Result<ObjectId> gate =
      k->sys_gate_create(boot, gspec, glabel, gclear, "netd.ctl", {d->registry_id_});
  if (!gate.ok()) {
    return nullptr;
  }
  d->ctl_gate_ = gate.value();

  // Start the pump on the process's thread.
  d->running_.store(true);
  NetDaemon* raw = d.get();
  d->pump_host_ = RunOnHostThread(k, d->ids_.thread, [raw]() { raw->PumpLoop(); });
  return d;
}

NetDaemon::~NetDaemon() {
  Stop();
  MutexLock lock(&registry_mu_);
  registry_.erase(registry_id_);
}

void NetDaemon::Stop() {
  running_.store(false);
  if (pump_host_.joinable()) {
    pump_host_.join();
  }
}

// ---- control path ---------------------------------------------------------------

Result<uint64_t> NetDaemon::MakeSocketWithSegment() {
  // Runs on a thread holding netd's pw* (gate-granted) and i2 taint.
  ObjectId self = CurrentThread::Get();
  Label seg_label(Level::k1, {{taint_.i, Level::k2}});
  CreateSpec spec;
  spec.container = ids_.proc_ct;
  spec.label = seg_label;
  spec.descrip = "sock";
  spec.quota = kObjectOverheadBytes + kSocketSegBytes + kPageSize;
  Result<ObjectId> seg = kernel_->sys_segment_create(self, spec, kSocketSegBytes);
  if (!seg.ok()) {
    return seg.status();
  }
  auto s = std::make_unique<Socket>();
  s->seg = seg.value();
  uint64_t id = next_sock_++;
  sockets_[id] = std::move(s);
  return id;
}

uint64_t NetDaemon::CtlOp(ObjectId self, uint64_t op, uint64_t a, uint64_t b, uint64_t c) {
  MutexLock lock(&mu_);
  switch (op) {
    case 1: {  // Listen(port)
      Result<uint64_t> sock = MakeSocketWithSegment();
      if (!sock.ok()) {
        return 0;
      }
      Socket* s = sockets_[sock.value()].get();
      s->state = Socket::State::kListening;
      s->local_port = static_cast<uint16_t>(a);
      return sock.value();
    }
    case 2: {  // Accept(listen_sock, timeout_ms)
      auto it = sockets_.find(a);
      if (it == sockets_.end() || it->second->state != Socket::State::kListening) {
        return 0;
      }
      Socket* ls = it->second.get();
      if (!ls->cv.WaitFor(mu_, std::chrono::milliseconds(b),
                          [ls] { return !ls->backlog.empty(); })) {
        return 0;
      }
      auto [peer, peer_port] = ls->backlog.front();
      ls->backlog.pop_front();
      Result<uint64_t> sock = MakeSocketWithSegment();
      if (!sock.ok()) {
        return 0;
      }
      Socket* s = sockets_[sock.value()].get();
      s->state = Socket::State::kEstablished;
      s->local_port = ls->local_port;
      s->peer = peer;
      s->peer_port = peer_port;
      ContainerEntry seg{ids_.proc_ct, s->seg};
      WriteWord(kernel_, self, seg, kOffFlags,
                ReadWord(kernel_, self, seg, kOffFlags) | kFlagEstablished);
      SendFrame(peer, kMsgSynAck, s->local_port, peer_port, nullptr, 0);
      return sock.value();
    }
    case 3: {  // Connect(packed_mac, port)
      Result<uint64_t> sock = MakeSocketWithSegment();
      if (!sock.ok()) {
        return 0;
      }
      Socket* s = sockets_[sock.value()].get();
      s->state = Socket::State::kSynSent;
      s->peer = UnpackMac(a);
      s->peer_port = static_cast<uint16_t>(b);
      s->local_port = static_cast<uint16_t>(40000 + next_sock_);
      SendFrame(s->peer, kMsgSyn, s->local_port, s->peer_port, nullptr, 0);
      if (!s->cv.WaitFor(mu_, std::chrono::milliseconds(2000), [s] {
            return s->state == Socket::State::kEstablished;
          })) {
        return 0;
      }
      ContainerEntry seg{ids_.proc_ct, s->seg};
      // OR, don't overwrite: a fast peer may have already FIN'd.
      WriteWord(kernel_, self, seg, kOffFlags,
                ReadWord(kernel_, self, seg, kOffFlags) | kFlagEstablished);
      return sock.value();
    }
    case 4: {  // Close(sock)
      auto it = sockets_.find(a);
      if (it == sockets_.end()) {
        return 0;
      }
      Socket* s = it->second.get();
      if (s->state == Socket::State::kEstablished) {
        // Flush bytes still queued in the tx ring before the FIN — else the
        // FIN overtakes them on the wire and the peer sees a truncated
        // stream (a send-close immediately after a large send is the common
        // pattern: ServeDbOnce, HTTP responses).
        DrainTx(s);
        SendFrame(s->peer, kMsgFin, s->local_port, s->peer_port, nullptr, 0);
      }
      s->state = Socket::State::kClosed;
      return 1;
    }
    default:
      return 0;
  }
}

namespace {

// Invokes the daemon's control gate with one request, taking the gate's
// privilege grant and restoring the caller's label afterwards.
Result<uint64_t> CtlCall(Kernel* k, ObjectId self, ContainerEntry gate, uint64_t op,
                         uint64_t a, uint64_t b, uint64_t c) {
  uint64_t req[4] = {op, a, b, c};
  Status st = k->sys_self_local_write(self, req, 0, sizeof(req));
  if (st != Status::kOk) {
    return st;
  }
  Result<Label> mine = k->sys_self_get_label(self);
  Result<Label> myclear = k->sys_self_get_clearance(self);
  Result<Label> glabel = k->sys_obj_get_label(self, gate);
  if (!mine.ok() || !myclear.ok() || !glabel.ok()) {
    return Status::kLabelCheckFailed;
  }
  // Request exactly the floor: own taint plus the gate's ownership. The
  // floor is interned per (caller label, gate label) pair — daemon clients
  // cross this gate on every socket op, with the same two labels each time.
  Label request = GateFloorMemo::Global().Floor(mine.value(), glabel.value());
  st = k->sys_gate_invoke(self, gate, request, myclear.value(), mine.value());
  if (st != Status::kOk) {
    return st;
  }
  uint64_t resp = 0;
  k->sys_self_local_read(self, &resp, 32, 8);
  // Drop the borrowed ownership (raising ⋆ back to the old level).
  k->sys_self_set_label(self, mine.value());
  k->sys_self_set_clearance(self, myclear.value());
  if (resp == 0) {
    return Status::kAgain;
  }
  return resp;
}

}  // namespace

Result<uint64_t> NetDaemon::Listen(ObjectId self, uint16_t port) {
  return CtlCall(kernel_, self, ContainerEntry{ids_.proc_ct, ctl_gate_}, 1, port, 0, 0);
}

Result<uint64_t> NetDaemon::Accept(ObjectId self, uint64_t listen_sock, uint32_t timeout_ms) {
  return CtlCall(kernel_, self, ContainerEntry{ids_.proc_ct, ctl_gate_}, 2, listen_sock,
                 timeout_ms, 0);
}

Result<uint64_t> NetDaemon::Connect(ObjectId self, MacAddr dst, uint16_t port) {
  return CtlCall(kernel_, self, ContainerEntry{ids_.proc_ct, ctl_gate_}, 3, PackMac(dst), port,
                 0);
}

Status NetDaemon::CloseSocket(ObjectId self, uint64_t sock) {
  Result<uint64_t> r =
      CtlCall(kernel_, self, ContainerEntry{ids_.proc_ct, ctl_gate_}, 4, sock, 0, 0);
  return r.ok() ? Status::kOk : r.status();
}

Result<ContainerEntry> NetDaemon::SocketSegment(uint64_t sock) {
  MutexLock lock(&mu_);
  auto it = sockets_.find(sock);
  if (it == sockets_.end()) {
    return Status::kNotFound;
  }
  return ContainerEntry{ids_.proc_ct, it->second->seg};
}

// ---- fast path (shared segment rings) ----------------------------------------------

Result<uint64_t> NetDaemon::Send(ObjectId self, uint64_t sock, const void* buf, uint64_t len) {
  Result<ContainerEntry> seg = SocketSegment(sock);
  if (!seg.ok()) {
    return seg.status();
  }
  const uint8_t* src = static_cast<const uint8_t*>(buf);
  uint64_t sent = 0;
  SegmentMutex mu(kernel_, seg.value(), kOffMutex);
  while (sent < len) {
    if (!mu.Lock(self)) {
      return Status::kLabelCheckFailed;
    }
    uint64_t txr = ReadWord(kernel_, self, seg.value(), kOffTxR);
    uint64_t txw = ReadWord(kernel_, self, seg.value(), kOffTxW);
    uint64_t flags = ReadWord(kernel_, self, seg.value(), kOffFlags);
    if ((flags & (kFlagPeerClosed | kFlagLocalClosed)) != 0) {
      mu.Unlock(self);
      return sent > 0 ? Result<uint64_t>(sent) : Result<uint64_t>(Status::kNoPerm);
    }
    uint64_t space = kRingBytes - (txw - txr);
    if (space > 0) {
      uint64_t n = std::min(len - sent, space);
      Status st = RingPut(kernel_, self, seg.value(), kOffTxData, txw, src + sent, n);
      if (st != Status::kOk) {
        mu.Unlock(self);
        return st;
      }
      WriteWord(kernel_, self, seg.value(), kOffTxW, txw + n);
      sent += n;
      mu.Unlock(self);
      kernel_->sys_futex_wake(self, seg.value(), kOffTxW, UINT32_MAX);
      continue;
    }
    uint64_t seen = txr;
    mu.Unlock(self);
    kernel_->sys_futex_wait(self, seg.value(), kOffTxR, seen, 50);
  }
  return sent;
}

Result<uint64_t> NetDaemon::Recv(ObjectId self, uint64_t sock, void* buf, uint64_t len,
                                 uint32_t timeout_ms) {
  Result<ContainerEntry> seg = SocketSegment(sock);
  if (!seg.ok()) {
    return seg.status();
  }
  uint8_t* dst = static_cast<uint8_t*>(buf);
  SegmentMutex mu(kernel_, seg.value(), kOffMutex);
  uint32_t waited = 0;
  for (;;) {
    if (!mu.Lock(self)) {
      return Status::kLabelCheckFailed;
    }
    uint64_t rxr = ReadWord(kernel_, self, seg.value(), kOffRxR);
    uint64_t rxw = ReadWord(kernel_, self, seg.value(), kOffRxW);
    uint64_t flags = ReadWord(kernel_, self, seg.value(), kOffFlags);
    uint64_t avail = rxw - rxr;
    if (avail > 0) {
      uint64_t n = std::min(len, avail);
      Status st = RingGet(kernel_, self, seg.value(), kOffRxData, rxr, dst, n);
      if (st != Status::kOk) {
        mu.Unlock(self);
        return st;
      }
      WriteWord(kernel_, self, seg.value(), kOffRxR, rxr + n);
      mu.Unlock(self);
      kernel_->sys_futex_wake(self, seg.value(), kOffRxR, UINT32_MAX);
      return n;
    }
    if ((flags & kFlagPeerClosed) != 0) {
      mu.Unlock(self);
      return uint64_t{0};  // orderly EOF
    }
    uint64_t seen = rxw;
    mu.Unlock(self);
    Status ws = kernel_->sys_futex_wait(self, seg.value(), kOffRxW, seen, 50);
    if (ws == Status::kHalted || ws == Status::kLabelCheckFailed) {
      return ws;
    }
    waited += 50;
    if (waited >= timeout_ms) {
      return Status::kTimedOut;
    }
  }
}

// ---- the pump -------------------------------------------------------------------------

std::vector<uint8_t> NetDaemon::BuildFrame(const MacAddr& dst, uint8_t type, uint16_t sport,
                                           uint16_t dport, const uint8_t* data,
                                           uint16_t len) const {
  std::vector<uint8_t> frame(kFrameHeader + kStreamHeader + len);
  memcpy(frame.data(), dst.data(), 6);
  memcpy(frame.data() + 6, mac_.data(), 6);
  frame[12] = static_cast<uint8_t>(kProtoStream >> 8);
  frame[13] = static_cast<uint8_t>(kProtoStream);
  frame[14] = type;
  memcpy(frame.data() + 15, &sport, 2);
  memcpy(frame.data() + 17, &dport, 2);
  memcpy(frame.data() + 19, &len, 2);
  if (len > 0) {
    memcpy(frame.data() + 21, data, len);
  }
  return frame;
}

bool NetDaemon::SendFrame(const MacAddr& dst, uint8_t type, uint16_t sport, uint16_t dport,
                          const uint8_t* data, uint16_t len) {
  // Compose the frame in the staging segment's control slot (mu_-held
  // callers only — never a slot a ring burst could be filling), transmit.
  ObjectId self = CurrentThread::Get();
  std::vector<uint8_t> frame = BuildFrame(dst, type, sport, dport, data, len);
  ContainerEntry rx{ids_.proc_ct, rxbuf_seg_};
  Status st = kernel_->sys_segment_write(self, rx, frame.data(), kCtlSlot, frame.size());
  if (st != Status::kOk) {
    return false;
  }
  st = kernel_->sys_net_transmit(self, ContainerEntry{kernel_->root_container(), device_}, rx,
                                 kCtlSlot, frame.size());
  if (st == Status::kOk) {
    frames_sent_.fetch_add(1);
    return true;
  }
  return false;
}

uint64_t NetDaemon::RingSendBurst(ObjectId self, Socket* s, uint64_t txr, uint64_t txw,
                                  ContainerEntry seg) {
  // Gather up to kNetTxBurst MSS-sized data frames out of the socket's tx
  // ring, then push them through the submission ring as ONE chain of
  // [stage-write →link→ net_transmit] pairs, every op linked to the next:
  // the first failed transmit (NIC ring full) cancels all later frames, so
  // bytes leave the wire strictly in stream order — the same stop-at-first-
  // failure the per-call loop had, minus 2×frames synchronous syscalls.
  ContainerEntry rx{ids_.proc_ct, rxbuf_seg_};
  ContainerEntry dev{kernel_->root_container(), device_};
  std::vector<std::vector<uint8_t>> frames;  // stable until reaped
  std::vector<uint64_t> payload(kNetTxBurst, 0);
  uint64_t cursor = txr;
  while (cursor < txw && frames.size() < kNetTxBurst) {
    uint16_t n = static_cast<uint16_t>(std::min<uint64_t>(txw - cursor, kMss));
    uint8_t chunk[kMss];
    if (RingGet(kernel_, self, seg, kOffTxData, cursor, chunk, n) != Status::kOk) {
      break;
    }
    payload[frames.size()] = n;
    frames.push_back(BuildFrame(s->peer, kMsgData, s->local_port, s->peer_port, chunk, n));
    cursor += n;
  }
  if (frames.empty()) {
    return 0;
  }
  std::vector<RingOp> ops;
  ops.reserve(2 * frames.size());
  for (size_t i = 0; i < frames.size(); ++i) {
    uint64_t off = kTxSlot0 + i * kNetFrameMax;
    ops.push_back(RingOp{
        SyscallReq{SegmentWriteReq{rx, frames[i].data(), off, frames[i].size()}},
        kRingLinked});
    uint32_t link = i + 1 < frames.size() ? kRingLinked : 0;
    ops.push_back(
        RingOp{SyscallReq{NetTransmitReq{dev, rx, off, frames[i].size()}}, link});
  }
  ContainerEntry ringe{ids_.proc_ct, ring_tx_};
  Result<uint64_t> ticket = kernel_->sys_ring_submit(self, ringe, std::move(ops));
  if (!ticket.ok()) {
    return 0;  // ring busy/unusable: caller's sync path takes over
  }
  // Terminal wait statuses (halted, destroyed) arrive only after the worker
  // released our frame buffers, so reaping-and-counting below is safe
  // either way: whatever completions survived tell us exactly which prefix
  // reached the wire (a dead ring's dropped completions count as zero, and
  // the halted caller's sync fallback fails its own syscalls anyway).
  RingWaitInterruptible(kernel_, self, ringe, ticket.value());
  Result<std::vector<RingCompletion>> done = kernel_->sys_ring_reap(self, ringe, 0);
  if (!done.ok()) {
    return 0;
  }
  // Count the prefix of fully-successful [write, transmit] pairs; the chain
  // guarantees nothing after the first failure reached the wire.
  uint64_t sent_bytes = 0;
  const std::vector<RingCompletion>& cs = done.value();
  for (size_t i = 0; i + 1 < cs.size(); i += 2) {
    if (ResStatus(cs[i].res) != Status::kOk || ResStatus(cs[i + 1].res) != Status::kOk) {
      break;
    }
    frames_sent_.fetch_add(1);
    sent_bytes += payload[i / 2];
  }
  return sent_bytes;
}

void NetDaemon::HandleFrame(const std::vector<uint8_t>& frame) {
  if (frame.size() < kFrameHeader + kStreamHeader) {
    return;
  }
  uint16_t proto = static_cast<uint16_t>((frame[12] << 8) | frame[13]);
  if (proto != kProtoStream) {
    return;
  }
  uint8_t type = frame[14];
  uint16_t sport;
  uint16_t dport;
  uint16_t len;
  memcpy(&sport, frame.data() + 15, 2);
  memcpy(&dport, frame.data() + 17, 2);
  memcpy(&len, frame.data() + 19, 2);
  MacAddr src;
  memcpy(src.data(), frame.data() + 6, 6);

  MutexLock lock(&mu_);
  switch (type) {
    case kMsgSyn: {
      for (auto& [id, s] : sockets_) {
        if (s->state == Socket::State::kListening && s->local_port == dport) {
          s->backlog.emplace_back(src, sport);
          s->cv.NotifyAll();
          return;
        }
      }
      break;
    }
    case kMsgSynAck: {
      for (auto& [id, s] : sockets_) {
        if (s->state == Socket::State::kSynSent && s->local_port == dport &&
            s->peer_port == sport) {
          s->state = Socket::State::kEstablished;
          s->cv.NotifyAll();
          return;
        }
      }
      break;
    }
    case kMsgData: {
      for (auto& [id, s] : sockets_) {
        if (s->state == Socket::State::kEstablished && s->local_port == dport &&
            s->peer_port == sport && s->peer == src) {
          const uint8_t* payload = frame.data() + kFrameHeader + kStreamHeader;
          s->rx_staging.insert(s->rx_staging.end(), payload, payload + len);
          return;
        }
      }
      break;
    }
    case kMsgFin: {
      ObjectId self = CurrentThread::Get();
      for (auto& [id, s] : sockets_) {
        if (s->local_port == dport && s->peer_port == sport) {
          if (!s->rx_staging.empty()) {
            // Data is still queued behind this FIN; surfacing EOF now would
            // make the receiver drop it. DrainTx raises the flag once the
            // staging queue empties into the rx ring.
            s->fin_pending = true;
            return;
          }
          ContainerEntry seg{ids_.proc_ct, s->seg};
          uint64_t flags = ReadWord(kernel_, self, seg, kOffFlags);
          WriteWord(kernel_, self, seg, kOffFlags, flags | kFlagPeerClosed);
          kernel_->sys_futex_wake(self, seg, kOffRxW, UINT32_MAX);
          s->cv.NotifyAll();
          return;
        }
      }
      break;
    }
    default:
      break;
  }
}

void NetDaemon::DrainTx(Socket* s) {
  // Move bytes tx-ring → wire and staging → rx-ring. Called with mu_ held.
  ObjectId self = CurrentThread::Get();
  ContainerEntry seg{ids_.proc_ct, s->seg};
  if (s->state == Socket::State::kEstablished) {
    uint64_t txr = ReadWord(kernel_, self, seg, kOffTxR);
    uint64_t txw = ReadWord(kernel_, self, seg, kOffTxW);
    // Ring path first: whole bursts of [stage →link→ transmit] pairs as one
    // submission (the split submit/complete shape — the NIC's unlocked
    // transmit phases run on a kernel worker). Falls through to the
    // per-frame path when the ring is unavailable or a caller's labels
    // cannot touch it (gate callers carrying extra taint).
    while (ring_tx_ != kInvalidObject && txr < txw) {
      uint64_t sent = RingSendBurst(self, s, txr, txw, seg);
      if (sent == 0) {
        break;
      }
      txr += sent;
      WriteWord(kernel_, self, seg, kOffTxR, txr);
      kernel_->sys_futex_wake(self, seg, kOffTxR, UINT32_MAX);
    }
    while (txr < txw) {
      uint16_t n = static_cast<uint16_t>(std::min<uint64_t>(txw - txr, kMss));
      uint8_t chunk[kMss];
      if (RingGet(kernel_, self, seg, kOffTxData, txr, chunk, n) != Status::kOk) {
        break;
      }
      if (!SendFrame(s->peer, kMsgData, s->local_port, s->peer_port, chunk, n)) {
        break;
      }
      txr += n;
      WriteWord(kernel_, self, seg, kOffTxR, txr);
      kernel_->sys_futex_wake(self, seg, kOffTxR, UINT32_MAX);
    }
  }
  if (!s->rx_staging.empty()) {
    uint64_t rxr = ReadWord(kernel_, self, seg, kOffRxR);
    uint64_t rxw = ReadWord(kernel_, self, seg, kOffRxW);
    uint64_t space = kRingBytes - (rxw - rxr);
    uint64_t n = std::min<uint64_t>(space, s->rx_staging.size());
    if (n > 0) {
      std::vector<uint8_t> chunk(s->rx_staging.begin(),
                                 s->rx_staging.begin() + static_cast<ptrdiff_t>(n));
      if (RingPut(kernel_, self, seg, kOffRxData, rxw, chunk.data(), n) == Status::kOk) {
        s->rx_staging.erase(s->rx_staging.begin(),
                            s->rx_staging.begin() + static_cast<ptrdiff_t>(n));
        WriteWord(kernel_, self, seg, kOffRxW, rxw + n);
        kernel_->sys_futex_wake(self, seg, kOffRxW, UINT32_MAX);
      }
    }
  }
  if (s->fin_pending && s->rx_staging.empty()) {
    // The deferred FIN: every byte that preceded it is now in the ring.
    s->fin_pending = false;
    uint64_t flags = ReadWord(kernel_, self, seg, kOffFlags);
    WriteWord(kernel_, self, seg, kOffFlags, flags | kFlagPeerClosed);
    kernel_->sys_futex_wake(self, seg, kOffRxW, UINT32_MAX);
    s->cv.NotifyAll();
  }
}

void NetDaemon::PumpLoop() {
  ObjectId self = ids_.thread;
  ContainerEntry dev{kernel_->root_container(), device_};
  ContainerEntry rx{ids_.proc_ct, rxbuf_seg_};
  ContainerEntry rx_ring{ids_.proc_ct, ring_};
  std::vector<uint8_t> scratch(uint64_t{kNetRxBurst} * kNetFrameMax);
  while (running_.load()) {
    bool idle = true;
    // Drain the NIC — ring path: bursts of receive→read chains submitted as
    // one unit, the length routed between the linked entries (the PR 3
    // follow-up this PR closes: sys_net_* finally batches, through the
    // split submit/complete path).
    bool ring_ok = ring_ != kInvalidObject;
    while (ring_ok) {
      int got = RingDrainNic(kernel_, self, rx_ring, dev, rx, /*slot0_off=*/0, kNetRxBurst,
                             &scratch, [this](std::vector<uint8_t>&& frame) {
                               frames_received_.fetch_add(1);
                               HandleFrame(frame);
                             });
      if (got < 0) {
        ring_ok = false;  // fall back to per-call receives this iteration
        break;
      }
      if (got > 0) {
        idle = false;
      }
      if (got < static_cast<int>(kNetRxBurst)) {
        break;  // NIC drained
      }
    }
    while (!ring_ok) {
      Result<uint64_t> n = kernel_->sys_net_receive(self, dev, rx, 0, kNetFrameMax);
      if (!n.ok()) {
        break;
      }
      std::vector<uint8_t> frame(n.value());
      if (kernel_->sys_segment_read(self, rx, frame.data(), 0, n.value()) != Status::kOk) {
        break;
      }
      frames_received_.fetch_add(1);
      HandleFrame(frame);
      idle = false;
    }
    // Service every socket.
    {
      MutexLock lock(&mu_);
      for (auto& [id, s] : sockets_) {
        uint64_t before = frames_sent_.load();
        DrainTx(s.get());
        if (frames_sent_.load() != before || !s->rx_staging.empty()) {
          idle = false;
        }
      }
    }
    if (idle) {
      kernel_->sys_net_wait(self, dev, 5);
    }
  }
}

Result<NetDaemon::Socket*> NetDaemon::FindSocket(uint64_t sock) {
  auto it = sockets_.find(sock);
  if (it == sockets_.end()) {
    return Status::kNotFound;
  }
  return it->second.get();
}

}  // namespace histar
