// The simulated network: a virtual Ethernet switch and the NIC endpoints
// that plug into the kernel's three-syscall device interface (§4.1).
//
// The switch is lossless and ordered (a benign LAN), carries a configurable
// line rate for the Figure 13 wget experiment, and accounts transferred
// bytes in virtual time like the DiskModel.
#ifndef SRC_NET_WIRE_H_
#define SRC_NET_WIRE_H_

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "src/core/sync.h"
#include "src/core/thread_annotations.h"
#include "src/kernel/object.h"

namespace histar {

using MacAddr = std::array<uint8_t, 6>;

// Frame header: [dst 6][src 6][proto 2] then payload.
inline constexpr size_t kFrameHeader = 14;
inline constexpr size_t kMaxFrame = 1514;

MacAddr MacFromIndex(uint32_t idx);
MacAddr BroadcastMac();

class NetSwitch;

// A NIC endpoint implementing the kernel's NetPort interface.
class SimNetPort : public NetPort {
 public:
  SimNetPort(NetSwitch* net, MacAddr mac) : net_(net), mac_(mac) {}

  std::array<uint8_t, 6> MacAddress() override { return mac_; }
  bool Transmit(const std::vector<uint8_t>& frame) override;
  bool Receive(std::vector<uint8_t>* frame) override;
  bool WaitForFrame(uint32_t timeout_ms) override;

  // Called by the switch to deliver a frame into the RX queue. Applies
  // backpressure (bounded wait) when the ring is full: the mini stream
  // protocol has no retransmission, so the wire must be lossless under
  // congestion; only a dead receiver causes a drop.
  void Deliver(const std::vector<uint8_t>& frame);

 private:
  static constexpr size_t kRxQueueLimit = 256;

  NetSwitch* net_;
  MacAddr mac_;
  Mutex mu_;
  CondVar rx_cv_;
  CondVar space_cv_;
  std::deque<std::vector<uint8_t>> rx_ GUARDED_BY(mu_);
};

class NetSwitch {
 public:
  // line_rate of 0 means "infinite" (no virtual-time accounting).
  explicit NetSwitch(uint64_t line_rate_bits_per_sec = 100'000'000);

  // Hub mode: deliver every frame to every other port regardless of the
  // destination MAC (used by the tun pair, where the "remote" MACs live on
  // the far side of the tunnel). Locked: Forward reads the flag under mu_
  // (this setter used to write it bare).
  void set_hub_mode(bool on) {
    MutexLock lock(&mu_);
    hub_mode_ = on;
  }

  // Creates a port with a fresh MAC.
  SimNetPort* NewPort();

  // Forwarding: unicast by destination MAC, flood on broadcast/unknown.
  void Forward(SimNetPort* from, const std::vector<uint8_t>& frame);

  uint64_t sim_time_ns() const;
  void ResetSimTime();
  // Locked: Forward bumps the counter under mu_ (this used to read it bare
  // while daemon threads were mid-forward).
  uint64_t frames_forwarded() const {
    MutexLock lock(&mu_);
    return frames_;
  }

 private:
  uint64_t line_rate_;
  mutable Mutex mu_;
  bool hub_mode_ GUARDED_BY(mu_) = false;
  std::vector<std::unique_ptr<SimNetPort>> ports_ GUARDED_BY(mu_);
  uint64_t sim_time_ns_ GUARDED_BY(mu_) = 0;
  uint64_t frames_ GUARDED_BY(mu_) = 0;
  uint32_t next_index_ GUARDED_BY(mu_) = 1;
};

}  // namespace histar

#endif  // SRC_NET_WIRE_H_
