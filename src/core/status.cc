#include "src/core/status.h"

namespace histar {

std::string_view StatusName(Status s) {
  switch (s) {
    case Status::kOk:
      return "ok";
    case Status::kLabelCheckFailed:
      return "label-check-failed";
    case Status::kInvalidArg:
      return "invalid-arg";
    case Status::kNotFound:
      return "not-found";
    case Status::kQuotaExceeded:
      return "quota-exceeded";
    case Status::kImmutable:
      return "immutable";
    case Status::kWrongType:
      return "wrong-type";
    case Status::kExists:
      return "exists";
    case Status::kBusy:
      return "busy";
    case Status::kRange:
      return "range";
    case Status::kNoPerm:
      return "no-perm";
    case Status::kHalted:
      return "halted";
    case Status::kTimedOut:
      return "timed-out";
    case Status::kAgain:
      return "again";
    case Status::kCrashed:
      return "crashed";
    case Status::kNoSpace:
      return "no-space";
    case Status::kCorrupt:
      return "corrupt";
    case Status::kCancelled:
      return "cancelled";
    case Status::kIoError:
      return "io-error";
    case Status::kNoMem:
      return "no-mem";
  }
  return "unknown";
}

}  // namespace histar
