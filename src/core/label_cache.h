// Cache of ⊑ comparisons between immutable labels (paper §4).
//
// The HiStar kernel "caches the result of comparisons between immutable
// labels" as a key optimization: object labels are fixed at creation, so a
// (label, label) pair always compares the same way. We assign each distinct
// frozen label a small id via an intern table and memoize Leq results keyed
// by the id pair. The ablation bench (bench_ablation_labels) measures the
// win by toggling `set_enabled`.
#ifndef SRC_CORE_LABEL_CACHE_H_
#define SRC_CORE_LABEL_CACHE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "src/core/label.h"

namespace histar {

class LabelCache {
 public:
  LabelCache() = default;
  LabelCache(const LabelCache&) = delete;
  LabelCache& operator=(const LabelCache&) = delete;

  // Interns `l`, returning a stable small id. Identical labels get the same
  // id, which is what makes pair-memoization sound.
  uint32_t Intern(const Label& l);

  // Memoized l1 ⊑ l2 where both labels were interned (ids from Intern()).
  // Falls back to a direct comparison when disabled.
  bool CachedLeq(uint32_t id1, const Label& l1, uint32_t id2, const Label& l2);

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  void ResetStats();

 private:
  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};

  std::mutex mu_;
  std::unordered_map<Label, uint32_t, LabelHash> intern_;
  std::unordered_map<uint64_t, bool> results_;  // (id1 << 32 | id2) → leq
};

}  // namespace histar

#endif  // SRC_CORE_LABEL_CACHE_H_
