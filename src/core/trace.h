// Label-aware kernel observability (PR 10): an always-on, lock-free flight
// recorder plus log2-bucketed latency histograms.
//
// Design:
//   * Per-thread ring buffers of fixed-size binary events, keyed by the
//     PR 6 epoch-slot registration (EpochDomain::ThreadSlot masked to
//     kTraceSlots, the same dense ids the kernel's count/fault stripes
//     use). The hot path touches ZERO shared atomics: the writer owns its
//     slot, so every store is a relaxed store into private cache lines and
//     the only ordering is one release store of the slot's head index.
//   * Events are packed into kEventWords atomic words so a concurrent
//     reader (sys_trace_read, the crash dump) is TSan-clean: relaxed word
//     loads against relaxed word stores, with the acquire-load of `head`
//     ordering everything not yet overwritten. An event being overwritten
//     mid-read can tear ACROSS words; readers filter those by re-checking
//     head after the copy (Snapshot below).
//   * Each event carries TWO label ids — the acting thread's label and the
//     label of the last object the kernel resolved for it ("the most
//     tainted object it touched"). Carrying both is flow-equivalent to
//     carrying their join (join ⊑ reader ⟺ both ⊑ reader) and costs two
//     32-bit stores instead of a label-algebra call per event. The flow
//     check itself happens at READ time, in the kernel, against the
//     reader's raised label (paper §3: any channel out of the kernel is
//     covered by the label rules — including this one).
//   * Latency histograms are per-slot log2 ns buckets (no shared
//     cachelines), per syscall kind and per store operation; readers sum
//     across slots.
//
// Compile-out: -DHISTAR_TRACE=0 turns every Record*/taint call into an
// empty inline (the bench overhead gate compares the two builds,
// scripts/check_bench_pr10.sh). The clock helpers below stay compiled in
// either way — deadline waits still need a monotonic clock — and are the
// ONLY sanctioned raw-clock reads in src/ (histar-lint rule
// raw-clock-read).
#ifndef SRC_CORE_TRACE_H_
#define SRC_CORE_TRACE_H_

#ifndef HISTAR_TRACE
#define HISTAR_TRACE 1
#endif

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/core/epoch.h"

namespace histar {
namespace trace {

// ---- clock ------------------------------------------------------------------
//
// The one place src/ reads the monotonic clock. Deadline-style call sites
// (futex waits, ring waits) use SteadyNow(); the recorder uses NowNs().
// Always compiled, even with HISTAR_TRACE=0: removing *recording* must not
// change *waiting*.
inline std::chrono::steady_clock::time_point SteadyNow() {
  return std::chrono::steady_clock::now();
}

inline uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          SteadyNow().time_since_epoch())
          .count());
}

// Clock read whose only purpose is feeding the recorder: compiles to 0
// under HISTAR_TRACE=0 so instrumentation sites pay neither the record NOR
// the clock read in the compiled-out build (the overhead-gate baseline).
#if HISTAR_TRACE
inline uint64_t RecordNowNs() { return NowNs(); }
#else
inline uint64_t RecordNowNs() { return 0; }
#endif

// ---- event schema -----------------------------------------------------------

enum class EventKind : uint8_t {
  kNone = 0,
  kSyscall = 1,       // a=resolved object id, b=calling kernel thread id;
                      // aux=SyscallReq alternative index, code=Status
  kTableLock = 2,     // a=shard mask, b=exclusive?1:0, c=group size
  kRingChain = 3,     // a=op count, b=proxy-execution?1:0, c=submitter id
  kEpochAdvance = 4,  // a=items freed, b=global epoch after
  kEpochRetire = 5,   // a=approx limbo size after the retire
  kStoreCommit = 6,   // a=bytes written, b=device write ops, c=engine kind;
                      // aux=StoreOp, code=Status
  kFault = 7,         // a=fault class, b=fault detail; code=Status
  kFatal = 8,         // a=detail; code=the fatal Status
};
inline constexpr size_t kNumEventKinds = 9;

const char* EventKindName(uint8_t kind);

// Store operations with their own latency histograms (kStoreCommit aux).
enum class StoreOp : uint8_t {
  kCheckpoint = 0,
  kSyncOne = 1,
  kSyncPages = 2,
  kRestore = 3,
};
inline constexpr size_t kNumStoreOps = 4;

const char* StoreOpName(uint8_t op);

// One decoded flight-recorder event. The in-ring form is kEventWords
// packed words (below); this is the unpacked view handed to readers.
struct Event {
  uint64_t ts_ns = 0;   // NowNs() at record time
  uint64_t a = 0;       // kind-specific operands (see EventKind)
  uint64_t b = 0;
  uint64_t c = 0;
  uint32_t dur_ns = 0;  // saturating; kDurPending until the group closes
  uint32_t tlabel = 0;  // acting thread's LabelId (0 = none recorded)
  uint32_t olabel = 0;  // last resolved object's LabelId (0 = none)
  uint32_t gen = 0;     // label generation the ids belong to (see below)
  uint8_t kind = 0;     // EventKind
  int8_t code = 0;      // Status (or kind-specific small code)
  uint16_t aux = 0;     // syscall kind / StoreOp / kind-specific
};

// Packed layout: w0=ts, w1=a, w2=b, w3=c, w4=dur<<32|tlabel,
// w5=olabel<<32|aux<<16|code<<8|kind, w6=label generation (low 32 bits).
inline constexpr size_t kEventWords = 7;

// Group-amortized durations are patched in after the fact; until then the
// event's dur reads as this sentinel (readers report it as 0).
inline constexpr uint32_t kDurPending = 0xffffffffu;

// ---- per-slot storage -------------------------------------------------------

inline constexpr size_t kTraceSlots = 256;   // ThreadSlot() & (kTraceSlots-1)
inline constexpr size_t kRingEvents = 1024;  // per slot, power of two
inline constexpr size_t kHistBuckets = 32;   // log2 ns buckets
// Histogram rows per slot for syscall kinds; >= kNumSyscallKinds with
// headroom for appended ABI descriptors (static_asserted in kernel.h).
inline constexpr size_t kMaxSyscallHist = 64;

// Bucket index for a log2 ns histogram: bucket b holds [2^b, 2^(b+1)),
// bucket 0 holds [0, 2), the last bucket saturates (>= 2^(kHistBuckets-1)
// ns, about 2.1 s). Pinned by tests/core/trace_test.cc.
inline constexpr size_t HistBucket(uint64_t ns) {
  if (ns < 2) {
    return 0;
  }
  size_t b = 63 - static_cast<size_t>(__builtin_clzll(ns));
  return b < kHistBuckets - 1 ? b : kHistBuckets - 1;
}

// One thread slot's recorder storage: the event ring plus its histograms.
// Single writer (the slot's current thread — slot ids are reused only
// after the owning thread exits), any number of racing readers. Above
// kTraceSlots concurrently-live threads the masked slot ids alias and
// writers would share a ring; interleaved Append word stores could then
// publish an event pairing one request's payload with another's labels,
// which the read-side flow check must never be allowed to pass. The ring
// therefore tracks its claiming writer: a store by a DIFFERENT unmasked
// ThreadSlot id sets `multi_writer`, and Snapshot withholds the whole
// ring (sticky until Reset) — degraded observability, never mixed labels.
struct SlotRing {
  std::atomic<uint64_t> head{0};  // events ever recorded in this slot
  // 1 + the unmasked EpochDomain::ThreadSlot() of the writer that claimed
  // this ring (0 = unclaimed). Unmasked ids are dense and lowest-free-
  // first, so a mismatch can only happen once concurrently-live threads
  // exceed kTraceSlots — exactly the aliasing regime.
  std::atomic<uint32_t> owner{0};
  std::atomic<uint32_t> multi_writer{0};  // sticky; cleared only by Reset
  std::atomic<uint64_t> words[kRingEvents * kEventWords];
  std::atomic<uint64_t> sys_hist[kMaxSyscallHist][kHistBuckets];
  std::atomic<uint64_t> store_hist[kNumStoreOps][kHistBuckets];
};

// The process-wide recorder: lazily allocated slot rings. A leaked
// singleton for the same reason EpochDomain is — events may be recorded
// from static-destructor-time teardown paths.
class Recorder {
 public:
  static Recorder& Global();

  static size_t CurrentSlot() {
    return EpochDomain::ThreadSlot() & (kTraceSlots - 1);
  }

  // The calling thread's slot ring, allocating it on first use.
  SlotRing& ForCurrentThread();

  // Slot i's ring, or nullptr if no thread mapped to it ever recorded.
  SlotRing* Slot(size_t i) const {
    return rings_[i & (kTraceSlots - 1)].load(std::memory_order_acquire);
  }

 private:
  Recorder() = default;
  ~Recorder() = delete;

  std::atomic<SlotRing*> rings_[kTraceSlots] = {};
};

// ---- label generation -------------------------------------------------------
//
// LabelIds are dense per registry instance and registries intern in the
// same order from boot, so an id alone is indistinguishable from the
// numerically-equal id of a PREVIOUS kernel's registry — and the recorder
// deliberately outlives kernels (crash-recovery flows reboot many in one
// process). Every event is therefore stamped with the generation current
// at record time (the attached kernel sets its LabelRegistry::instance_id
// here at construction); sys_trace_read treats labeled events from any
// other generation as "does not flow". Always compiled: the read side
// needs the current value even when recording is compiled out.
void SetLabelGeneration(uint32_t gen);
uint32_t LabelGeneration();

// ---- taint scratch ----------------------------------------------------------
//
// Thread-local scratch the kernel stamps while executing a request:
// GetThread stamps the acting thread's label (first write wins — the first
// thread resolved is `self`), ResolveEntry stamps the last resolved
// object's label and id (last write wins). RecordSyscall folds the scratch
// into the event; ResetTaint runs once per dispatched request.
struct Taint {
  uint32_t tlabel = 0;
  uint32_t olabel = 0;
  uint64_t oid = 0;
};

Taint& Scratch();

#if HISTAR_TRACE

inline void ResetTaint() {
  Taint& t = Scratch();
  t.tlabel = 0;
  t.olabel = 0;
  t.oid = 0;
}
inline void StampThread(uint32_t label_id) {
  Taint& t = Scratch();
  if (t.tlabel == 0) {
    t.tlabel = label_id;
  }
}
inline void StampObject(uint64_t oid, uint32_t label_id) {
  Taint& t = Scratch();
  t.olabel = label_id;
  t.oid = oid;
}

// Records one syscall event from the current taint scratch. `ts_ns` is the
// enclosing group's start timestamp; dur is left kDurPending until
// FinishSyscallGroup patches the amortized group duration in (one clock
// pair per lock group, not two clock reads per entry — that is what keeps
// the warm lock-free row inside the 5% overhead gate).
void RecordSyscall(uint16_t syscall_kind, int8_t status_code, uint64_t self_or_b,
                   uint64_t ts_ns);

// Opens a syscall group: returns the calling slot's current head sequence,
// to be handed back to FinishSyscallGroup. Cheap (one relaxed load).
uint64_t BeginSyscallGroup();

// Closes the syscall group opened at `start_seq`, executed between t0 and
// t1: patches dur = (t1-t0)/n into exactly the n pending kSyscall events
// recorded in [start_seq, head) and feeds the per-kind latency histograms.
// Non-syscall events recorded inside the group (table-lock markers, epoch
// advances/retires, fault events) are skipped with no bound on how many
// may interleave — the exact range replaces the old bounded backward scan,
// which stopped early and left events pending forever.
void FinishSyscallGroup(uint64_t start_seq, uint64_t t0_ns, uint64_t t1_ns);

// Generic event record (table locks, ring chains, epoch, faults). Reads
// the clock itself when ts_ns == 0.
void RecordEvent(EventKind kind, uint64_t a, uint64_t b, uint64_t c,
                 int8_t code = 0, uint16_t aux = 0, uint32_t dur_ns = 0,
                 uint64_t ts_ns = 0);

// Store commit/restore: one kStoreCommit event plus the per-op histogram.
void RecordStoreOp(StoreOp op, int8_t status_code, uint64_t dur_ns, uint64_t bytes,
                   uint64_t write_ops, uint8_t engine_kind);

// Fatal path: records a kFatal event and, when a dump path is configured
// (SetFatalDumpPath or the HISTAR_TRACE_DUMP environment variable), writes
// the flight-recorder dump there. Safe to call repeatedly; the dump file
// is rewritten each time so it holds the freshest last-N window.
void RecordFatal(int8_t status_code, uint64_t detail);

#else  // !HISTAR_TRACE — recording compiles out entirely.

inline void ResetTaint() {}
inline void StampThread(uint32_t) {}
inline void StampObject(uint64_t, uint32_t) {}
inline void RecordSyscall(uint16_t, int8_t, uint64_t, uint64_t) {}
inline uint64_t BeginSyscallGroup() { return 0; }
inline void FinishSyscallGroup(uint64_t, uint64_t, uint64_t) {}
inline void RecordEvent(EventKind, uint64_t, uint64_t, uint64_t, int8_t = 0,
                        uint16_t = 0, uint32_t = 0, uint64_t = 0) {}
inline void RecordStoreOp(StoreOp, int8_t, uint64_t, uint64_t, uint64_t, uint8_t) {}
inline void RecordFatal(int8_t, uint64_t) {}

#endif  // HISTAR_TRACE

// ---- read side (always compiled; empty when recording is compiled out) ------

// One snapshot entry: the decoded event plus where it came from.
struct SlotEvent {
  Event event;
  uint32_t slot = 0;
  uint64_t seq = 0;  // monotonically increasing per slot
};

// Copies up to `max_per_slot` of the most recent events from every active
// slot (oldest first within a slot). Events the writer may have started
// overwriting while being copied are dropped by re-checking head after
// the copy — including the boundary case head == seq + kRingEvents, where
// the writer stores the lapping event's words BEFORE publishing the new
// head — so returned events are never torn. Rings flagged multi_writer
// (slot-id aliasing past kTraceSlots live threads) are withheld entirely.
// Returns the number of events appended.
size_t Snapshot(std::vector<SlotEvent>* out, size_t max_per_slot = kRingEvents);

// Sums a syscall kind's latency histogram across slots into
// out[0..kHistBuckets).
void SumSyscallHist(uint16_t syscall_kind, uint64_t* out);
void SumStoreHist(StoreOp op, uint64_t* out);

// ---- crash dump -------------------------------------------------------------
//
// JSON-lines: a header object, then one object per event (most recent
// last_n per slot), e.g.
//   {"schema":"histar-trace-dump-v1","slots":3}
//   {"slot":0,"seq":41,"ts_ns":12345,"kind":"syscall","a":7,...}
// tools/tracefmt converts this to Chrome trace-event format
// (docs/observability.md).
void DumpJson(std::ostream& os, size_t last_n_per_slot = 64);
bool DumpToFile(const std::string& path, size_t last_n_per_slot = 64);

// Configures where RecordFatal writes its dump ("" disables). The
// HISTAR_TRACE_DUMP environment variable seeds this on first use.
void SetFatalDumpPath(const std::string& path);

// Rewinds every slot ring (events AND histograms, plus the owner claim
// and multi_writer flag) to empty. The recorder deliberately outlives
// kernel instances (crash-recovery flows reboot many kernels in one
// process and want the whole history in one dump), so this is NOT called
// at kernel construction; tests that need per-instance isolation call it
// themselves. Events stamped under a previous instance's label registry
// are handled at read time instead: every event carries the label
// generation it was recorded under (SetLabelGeneration), and
// sys_trace_read treats labeled events from any other generation as
// "does not flow" — id bounds alone cannot work, because registries
// intern densely from boot and stale ids collide with live ones.
// Not safe to race with writers — call only while nothing is recording.
void Reset();

}  // namespace trace
}  // namespace histar

#endif  // SRC_CORE_TRACE_H_
