// Taint levels (paper §2, Figure 3).
//
// An object's label assigns one of {⋆, 0, 1, 2, 3} per category; the
// pseudo-level J ("HiStar") is used only during label comparisons, where a
// thread's ownership ⋆ must sometimes be treated as higher than any numeric
// level (reading) and sometimes lower (writing). The total order is
//   ⋆ < 0 < 1 < 2 < 3 < J.
#ifndef SRC_CORE_LEVEL_H_
#define SRC_CORE_LEVEL_H_

#include <cstdint>

namespace histar {

enum class Level : uint8_t {
  kStar = 0,  // ownership / untainting privilege (threads and gates only)
  k0 = 1,     // cannot be written/modified by default
  k1 = 2,     // system default — no restriction
  k2 = 3,     // cannot be untainted/exported by default
  k3 = 4,     // cannot be read/observed by default
  kHi = 5,    // "J": ownership treated as high; never stored in object labels
};

inline bool LevelLeq(Level a, Level b) {
  return static_cast<uint8_t>(a) <= static_cast<uint8_t>(b);
}

inline Level LevelMax(Level a, Level b) { return LevelLeq(a, b) ? b : a; }
inline Level LevelMin(Level a, Level b) { return LevelLeq(a, b) ? a : b; }

// Character used in the textual rendering of labels: {bw0, br3, 1}.
inline char LevelChar(Level l) {
  switch (l) {
    case Level::kStar:
      return '*';
    case Level::k0:
      return '0';
    case Level::k1:
      return '1';
    case Level::k2:
      return '2';
    case Level::k3:
      return '3';
    case Level::kHi:
      return 'J';
  }
  return '?';
}

// True for levels that may appear in a stored (object) label. kHi exists
// only transiently inside comparisons.
inline bool LevelStorable(Level l) { return l != Level::kHi; }

}  // namespace histar

#endif  // SRC_CORE_LEVEL_H_
