#include "src/core/category.h"

namespace histar {
namespace {

// splitmix64 finalizer; good avalanche, cheap, and has no data dependence on
// secrets beyond the key schedule (we are closing a storage channel, not
// building crypto).
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

constexpr uint32_t kLeftBits = 30;           // high half width
constexpr uint32_t kRightBits = 31;          // low half width
constexpr uint32_t kLeftMask = (1u << kLeftBits) - 1;
constexpr uint32_t kRightMask = (1u << kRightBits) - 1;

}  // namespace

CategoryCipher::CategoryCipher(uint64_t key) {
  for (int i = 0; i < 4; ++i) {
    round_keys_[i] = Mix64(key + static_cast<uint64_t>(i) * 0xa0761d6478bd642fULL);
  }
}

uint32_t CategoryCipher::Round(uint32_t half, uint64_t round_key) {
  return static_cast<uint32_t>(Mix64(half ^ round_key));
}

// Unbalanced Feistel: L is 30 bits, R is 31 bits. Each round XORs a masked
// round function of one half into the other, then swaps roles; masking keeps
// every intermediate inside its own width so the whole map is a bijection on
// 61-bit values.
uint64_t CategoryCipher::Encrypt(uint64_t plain) const {
  uint32_t left = static_cast<uint32_t>(plain >> kRightBits) & kLeftMask;
  uint32_t right = static_cast<uint32_t>(plain) & kRightMask;
  for (int i = 0; i < 4; ++i) {
    uint32_t f = Round(right, round_keys_[i]) & kLeftMask;
    uint32_t tmp = left ^ f;
    // Swap with width change: the 30-bit (left ^ F(right)) becomes part of
    // the new right; the old right's top bit is carried into the new left.
    left = (right >> 1) & kLeftMask;
    right = ((tmp << 1) | (right & 1)) & kRightMask;
  }
  return ((static_cast<uint64_t>(left) & kLeftMask) << kRightBits) |
         (static_cast<uint64_t>(right) & kRightMask);
}

uint64_t CategoryCipher::Decrypt(uint64_t cipher) const {
  uint32_t left = static_cast<uint32_t>(cipher >> kRightBits) & kLeftMask;
  uint32_t right = static_cast<uint32_t>(cipher) & kRightMask;
  for (int i = 3; i >= 0; --i) {
    uint32_t prev_right_low = right & 1;
    uint32_t tmp = (right >> 1) & kLeftMask;                 // left ^ F(prev_right)
    uint32_t prev_right = ((left << 1) | prev_right_low) & kRightMask;
    uint32_t f = Round(prev_right, round_keys_[i]) & kLeftMask;
    uint32_t prev_left = tmp ^ f;
    left = prev_left & kLeftMask;
    right = prev_right;
  }
  return ((static_cast<uint64_t>(left) & kLeftMask) << kRightBits) |
         (static_cast<uint64_t>(right) & kRightMask);
}

CategoryAllocator::CategoryAllocator(uint64_t key) : cipher_(key), counter_(1) {}

CategoryId CategoryAllocator::Allocate() {
  for (;;) {
    uint64_t c = counter_.fetch_add(1, std::memory_order_relaxed);
    CategoryId id = cipher_.Encrypt(c & kCategoryMask) & kCategoryMask;
    if (id != kInvalidCategory) {
      return id;
    }
  }
}

}  // namespace histar
