// Status codes and a lightweight Result<T> used across the HiStar simulator.
//
// The real HiStar kernel returns negative errno-style codes from system
// calls; we keep the same flavor with a small enum so call sites can switch
// on the precise failure mode (label check vs quota vs missing object).
#ifndef SRC_CORE_STATUS_H_
#define SRC_CORE_STATUS_H_

#include <cstdint>
#include <string_view>
#include <utility>

namespace histar {

enum class Status : int32_t {
  kOk = 0,
  kLabelCheckFailed = -1,   // information-flow rule violated
  kInvalidArg = -2,         // malformed argument
  kNotFound = -3,           // no such object / container entry
  kQuotaExceeded = -4,      // storage quota exhausted
  kImmutable = -5,          // object is immutable
  kWrongType = -6,          // object exists but has a different type
  kExists = -7,             // name or link already present
  kBusy = -8,               // resource busy (e.g. futex owner alive)
  kRange = -9,              // offset/length out of range
  kNoPerm = -10,            // non-label permission failure (avoid_types etc.)
  kHalted = -11,            // thread was halted
  kTimedOut = -12,          // futex or wait timeout
  kAgain = -13,             // transient: retry (e.g. no packet yet)
  kCrashed = -14,           // simulated crash hit during I/O
  kNoSpace = -15,           // disk out of space
  kCorrupt = -16,           // on-disk structure failed validation
  kCancelled = -17,         // linked ring op cancelled by a predecessor's failure
  kIoError = -18,           // device I/O error (injected or transient), no crash
  kNoMem = -19,             // host allocation failed on the store path
};

// Human-readable name for diagnostics and test failure messages.
std::string_view StatusName(Status s);

// Result<T> carries either a value or a failure Status. It is intentionally
// minimal (no exceptions, no allocation) because nearly every simulated
// syscall returns one.
template <typename T>
class Result {
 public:
  Result(Status s) : status_(s) {}  // NOLINT(google-explicit-constructor)
  Result(T v) : status_(Status::kOk), value_(std::move(v)) {}  // NOLINT

  bool ok() const { return status_ == Status::kOk; }
  Status status() const { return status_; }
  const T& value() const { return value_; }
  T& value() { return value_; }
  T take() { return std::move(value_); }

 private:
  Status status_;
  T value_{};
};

}  // namespace histar

#endif  // SRC_CORE_STATUS_H_
