// Labels: functions from categories to taint levels (paper §2).
//
// A label is represented as a default level plus a sorted list of explicit
// (category, level) exceptions, each packed into one 64-bit word — 61 bits of
// category name and 3 bits of level, exactly the encoding the paper says
// motivated the 61-bit category width.
//
// The information-flow partial order is
//   L1 ⊑ L2  iff  ∀c : L1(c) ≤ L2(c)
// with ⋆ and J handled by explicitly shifting a label via ToHi()/ToStar()
// before comparing, mirroring the paper's superscript-J and superscript-⋆
// notation.
#ifndef SRC_CORE_LABEL_H_
#define SRC_CORE_LABEL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/core/category.h"
#include "src/core/level.h"

namespace histar {

class Label {
 public:
  // The conventional default-1 label {1}.
  Label() : default_level_(Level::k1) {}
  explicit Label(Level default_level) : default_level_(default_level) {}

  // Convenience construction: Label(Level::k1, {{cat, Level::k3}, ...}).
  Label(Level default_level, std::initializer_list<std::pair<CategoryId, Level>> entries);

  Level get(CategoryId c) const;
  // Sets L(c) = l; an entry equal to the default level is erased so that
  // structurally equal labels are representationally equal.
  void set(CategoryId c, Level l);
  Level default_level() const { return default_level_; }

  // Number of explicit (non-default) entries.
  size_t entry_count() const { return entries_.size(); }
  // Explicit categories, ascending.
  std::vector<CategoryId> Categories() const;

  // True iff get(c) == kStar (the thread/gate "owns" c).
  bool Owns(CategoryId c) const { return get(c) == Level::kStar; }
  // True iff any entry (or the default) equals `l`.
  bool HasLevel(Level l) const;

  // The ⊑ relation, comparing stored levels literally. Callers implement the
  // paper's access rules by shifting first, e.g. CanObserve(T, O) is
  // O.label.Leq(T.label.ToHi()).
  bool Leq(const Label& other) const;

  // ⋆ → J (treat ownership as high; used when the label is on the right of
  // an observation check).
  Label ToHi() const;
  // J → ⋆ (used to bring a comparison-time label back to storable form).
  Label ToStar() const;

  // Least upper bound ⊔ (pointwise max) and greatest lower bound (pointwise
  // min). Meet is not in the paper's notation but is needed for clearance
  // arithmetic in the kernel.
  Label Join(const Label& other) const;
  Label Meet(const Label& other) const;

  // The lowest label L' with thread ⊑ L' and obj ⊑ L'^J: what a thread must
  // raise itself to in order to observe obj (paper §2.2):
  //   L' = (LT^J ⊔ LO)^⋆
  static Label RaiseForRead(const Label& thread_label, const Label& obj_label);

  bool operator==(const Label& other) const;
  bool operator!=(const Label& other) const { return !(*this == other); }
  size_t Hash() const;

  // Rendering such as "{x*, y0, z3, 1}"; `namer` (optional) maps category ids
  // to short names for readable test output.
  std::string ToString(const std::function<std::string(CategoryId)>& namer = nullptr) const;

  // Flat serialization for the single-level store.
  void Serialize(std::vector<uint8_t>* out) const;
  static bool Deserialize(const uint8_t* data, size_t len, size_t* consumed, Label* out);

 private:
  static uint64_t Pack(CategoryId c, Level l) {
    return (c << 3) | static_cast<uint64_t>(l);
  }
  static CategoryId PackedCat(uint64_t e) { return e >> 3; }
  static Level PackedLevel(uint64_t e) { return static_cast<Level>(e & 7); }

  // Binary search for the entry index of category c; returns entries_.size()
  // if absent.
  size_t Find(CategoryId c) const;

  Level default_level_;
  std::vector<uint64_t> entries_;  // sorted by category id
};

struct LabelHash {
  size_t operator()(const Label& l) const { return l.Hash(); }
};

}  // namespace histar

#endif  // SRC_CORE_LABEL_H_
