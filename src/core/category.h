// Category identifiers and the category allocator (paper §2).
//
// Categories are named by 61-bit opaque identifiers. The kernel generates
// them by encrypting a counter with a block cipher so that one thread cannot
// learn how many categories another thread has allocated (a storage covert
// channel the paper explicitly closes). The specific width 61 lets a category
// name and a 3-bit taint level share one 64-bit word, which is exactly how
// our Label stores its entries.
#ifndef SRC_CORE_CATEGORY_H_
#define SRC_CORE_CATEGORY_H_

#include <atomic>
#include <cstdint>

namespace histar {

// A category name. Only the low 61 bits are ever set.
using CategoryId = uint64_t;

inline constexpr uint64_t kCategoryBits = 61;
inline constexpr CategoryId kCategoryMask = (uint64_t{1} << kCategoryBits) - 1;
inline constexpr CategoryId kInvalidCategory = 0;

// A 61-bit block cipher built as a 4-round balanced-ish Feistel network over
// a 30/31-bit split. It is a bijection on [0, 2^61), which is all the
// allocator needs: distinct counters yield distinct, unpredictable names.
class CategoryCipher {
 public:
  explicit CategoryCipher(uint64_t key);

  // Encrypt a 61-bit plaintext (the counter) into a 61-bit ciphertext.
  uint64_t Encrypt(uint64_t plain) const;
  // Inverse permutation; used only by tests to prove bijectivity.
  uint64_t Decrypt(uint64_t cipher) const;

 private:
  static uint32_t Round(uint32_t half, uint64_t round_key);
  uint64_t round_keys_[4];
};

// Thread-safe allocator of fresh category names. The counter starts at 1 so
// that kInvalidCategory (0) can never be produced even if the cipher maps
// some input to 0 — we simply skip such an input.
class CategoryAllocator {
 public:
  explicit CategoryAllocator(uint64_t key = 0x484953544152ULL /* "HISTAR" */);

  CategoryId Allocate();
  // How many categories have been handed out (for quota/diagnostic tests
  // only; real threads cannot observe this).
  uint64_t allocated_count() const { return counter_.load(); }

 private:
  CategoryCipher cipher_;
  std::atomic<uint64_t> counter_;
};

}  // namespace histar

#endif  // SRC_CORE_CATEGORY_H_
