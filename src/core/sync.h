// Annotated synchronization primitives.
//
// Thin wrappers over the std primitives that carry Clang thread-safety
// capability annotations (src/core/thread_annotations.h). All kernel,
// core, store, net, and unixlib code uses these instead of raw
// std::mutex / std::shared_mutex / std::condition_variable so the
// static-analysis CI job can prove the lock discipline; histar-lint
// rule `raw-sync-primitive` rejects raw std primitives anywhere else
// in src/ to keep annotation coverage total.
//
// The wrappers also satisfy BasicLockable (lowercase lock/unlock), so
// std::unique_lock-style composition still works where needed — but the
// annotated MutexLock / ReaderMutexLock / CondVar types below are the
// normal spelling.
#pragma once

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "src/core/thread_annotations.h"

namespace histar {

// Exclusive mutex capability.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // Tells the analysis the lock is held (used on paths where acquisition
  // happened through a mechanism the analysis cannot follow).
  void AssertHeld() const ASSERT_CAPABILITY(this) {}

  // BasicLockable, so CondVar / std::unique_lock can drive it. These are
  // deliberately unannotated aliases; annotated code uses Lock/Unlock.
  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

// Reader/writer mutex capability.
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  void ReaderLock() ACQUIRE_SHARED() { mu_.lock_shared(); }
  void ReaderUnlock() RELEASE_SHARED() { mu_.unlock_shared(); }

  void AssertHeld() const ASSERT_CAPABILITY(this) {}
  void AssertReaderHeld() const ASSERT_SHARED_CAPABILITY(this) {}

 private:
  std::shared_mutex mu_;
};

// RAII exclusive lock over Mutex.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

// RAII exclusive lock over SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_->Unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

// RAII shared (reader) lock over SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->ReaderLock();
  }
  ~ReaderMutexLock() RELEASE() { mu_->ReaderUnlock(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

// Condition variable bound to the annotated Mutex. Built on
// condition_variable_any (works with any BasicLockable); the Wait
// methods REQUIRE the mutex so waiting without it is a compile error.
// std::unique_lock is constructed with adopt_lock purely as the
// BasicLockable handle — ownership stays with the caller's scope.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<Mutex> lk(mu, std::adopt_lock);
    cv_.wait(lk);
    lk.release();
  }

  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) REQUIRES(mu) {
    std::unique_lock<Mutex> lk(mu, std::adopt_lock);
    cv_.wait(lk, std::move(pred));
    lk.release();
  }

  // Returns false on timeout (like std::condition_variable wait_for
  // with predicate: the predicate result at wake).
  template <typename Rep, typename Period, typename Pred>
  bool WaitFor(Mutex& mu, std::chrono::duration<Rep, Period> dur, Pred pred)
      REQUIRES(mu) {
    std::unique_lock<Mutex> lk(mu, std::adopt_lock);
    bool ok = cv_.wait_for(lk, dur, std::move(pred));
    lk.release();
    return ok;
  }

  template <typename Rep, typename Period>
  std::cv_status WaitFor(Mutex& mu, std::chrono::duration<Rep, Period> dur)
      REQUIRES(mu) {
    std::unique_lock<Mutex> lk(mu, std::adopt_lock);
    std::cv_status st = cv_.wait_for(lk, dur);
    lk.release();
    return st;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace histar
