// Interned immutable labels behind every kernel IFC check (paper §4).
//
// HiStar's key label optimization is that object labels are immutable after
// creation, so the kernel can cache the result of every ⊑ comparison between
// label pairs. The registry takes that one step further than a comparison
// cache: every distinct label is interned exactly once and named by a small
// dense LabelId handle; the canonical Label, its precomputed ToHi (⋆ → J)
// and ToStar (J → ⋆) variants all live in the registry, so hot-path checks
// never allocate a shifted label — they look up the id of the shifted form.
//
// Concurrency (PR 6: lock-free readers): the hot read paths — id → entry
// lookup and the Leq/Join memo — take no lock at all.
//   * Entry storage is append-only chunked arrays: chunks are published
//     with release stores and never moved or freed, so EntryOf is a pair
//     of acquire loads. The per-shard entry count is release-published
//     after the entry's fields are filled, ordering them for readers.
//   * The memo tables are open-addressing arrays of {atomic key, atomic
//     value} slots, probed with acquire loads. Memo writers (misses)
//     serialize on a per-shard mutex, insert with a val-then-key release
//     pair, and on growth publish a rehashed table and retire the old
//     array through the EpochDomain — which is why memo readers run
//     inside an EpochGuard (Leq/Join take one internally).
//   * Only the intern hash map (label → id, dedup on Intern) keeps its
//     shared_mutex; interning is the cold path.
//
// Ids and persistence: ids are assigned in intern order within a boot. The
// single-level store persists the registry as a label table (one record per
// id) in every checkpoint; recovery rebuilds the registry by re-interning
// the table in ascending-id order, which reproduces the per-shard slot
// sequence and therefore — with an unchanged shard count — the exact same
// ids. Blobs on disk reference labels by id, so RestoreObject resolves
// every reference through the old-id → new-id remap computed during that
// rebuild (kernel_persist.cc); identical ids make the remap the identity,
// but nothing relies on it. Snapshot()/EnumerateSince() expose the
// append-only intern log so checkpoints can write only the label-table
// delta since the last committed checkpoint.
#ifndef SRC_CORE_LABEL_REGISTRY_H_
#define SRC_CORE_LABEL_REGISTRY_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/core/label.h"
#include "src/core/sync.h"
#include "src/core/thread_annotations.h"

namespace histar {

// Handle to an interned label. 0 is never handed out; it marks "no label".
using LabelId = uint32_t;
inline constexpr LabelId kInvalidLabelId = 0;

class LabelRegistry {
 public:
  // Shard counts must be powers of two; ids embed the shard index in their
  // low bits. 16 shards keeps per-shard contention negligible at the thread
  // counts the simulator runs while costing ~nothing at one thread.
  static constexpr size_t kDefaultShardCount = 16;
  static constexpr size_t kMaxShardCount = 64;

  explicit LabelRegistry(size_t shard_count = kDefaultShardCount);
  ~LabelRegistry();
  LabelRegistry(const LabelRegistry&) = delete;
  LabelRegistry& operator=(const LabelRegistry&) = delete;

  // Interns `l`, returning its stable id. Structurally equal labels always
  // yield the same id — that identity is what makes pair-memoization sound.
  LabelId Intern(const Label& l);

  // Canonical label for an interned id. Lock-free; the reference stays
  // valid for the registry's lifetime (entries are never removed or moved).
  const Label& Get(LabelId id) const;

  // Precomputed shifted variants. GetHi/GetStar return the label; HiOf and
  // StarOf return the (lazily interned) id of the shifted form, so a check
  // like L_O ⊑ L_T^J is Leq(o, HiOf(t)) — no allocation, fully memoized.
  const Label& GetHi(LabelId id) const;
  const Label& GetStar(LabelId id) const;
  LabelId HiOf(LabelId id);
  LabelId StarOf(LabelId id);

  // Memoized id1 ⊑ id2. A memo hit is entirely lock-free (one epoch-
  // guarded probe of the shard's memo table); only a miss takes the
  // shard's writer mutex to record the result. Falls back to a direct
  // comparison when disabled (the ablation bench toggles this).
  bool Leq(LabelId id1, LabelId id2);

  // True iff `id` falls inside the range of ids this instance has issued
  // so far — a bounds check, NOT provenance: ids are dense per instance,
  // so an id minted by a DIFFERENT registry usually collides numerically
  // with a live one and passes. Get/Leq on an unknown id abort (they can
  // only mean memory corruption on a kernel path); consumers that may
  // legitimately hold foreign ids — the flight recorder survives kernel
  // teardown, so sys_trace_read can encounter events stamped under a
  // previous registry — gate on Known first and treat unknown as "does
  // not flow", and additionally compare the event's recorded generation
  // against instance_id() to reject the colliding common case. Lock-free.
  bool Known(LabelId id) const;

  // Process-unique, never-zero id of this registry instance, assigned at
  // construction. Stamped into every flight-recorder event as the label
  // generation (trace::SetLabelGeneration) so readers can tell this
  // instance's ids from a numerically-equal id of a prior instance.
  uint32_t instance_id() const { return instance_id_; }

  // Non-interning comparisons for validating caller-supplied labels at the
  // syscall boundary. These create no registry entry and no memo slot, so a
  // failed syscall allocates nothing — otherwise rejected labels would be a
  // quota-free unbounded-memory channel (callers intern only after every
  // check passes). Not memoized: by definition one side has no identity yet.
  bool LeqWith(LabelId a, const Label& b) const { return Get(a).Leq(b); }
  bool LeqOf(const Label& a, LabelId b) const { return a.Leq(Get(b)); }
  static bool LeqDirect(const Label& a, const Label& b) { return a.Leq(b); }

  // Memoized ⊔; the result is itself interned. Gate invocation computes
  // (L_T^J ⊔ L_G^J)^⋆ per crossing, which this turns into two id lookups
  // after the first. Hits are lock-free like Leq's.
  LabelId Join(LabelId id1, LabelId id2);

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  void ResetStats();

  // ---- lock accounting (tests / bench only) --------------------------------
  //
  // Mirrors ObjectTable's instrument: when enabled, every mutex
  // acquisition on a reader-reachable registry path (intern probe/insert,
  // memo-miss insert) bumps the counter. The satellite acceptance test
  // pins warm Leq at zero.
  void set_lock_accounting(bool on) const {
    lock_accounting_.store(on, std::memory_order_relaxed);
  }
  uint64_t lock_acquisitions() const {
    return lock_acquisitions_.load(std::memory_order_relaxed);
  }

  // Number of distinct labels interned so far.
  size_t size() const;
  size_t shard_count() const { return shard_count_; }

  // A cut of the append-only intern log: per-shard entry counts. Entries are
  // never removed, so "everything interned since mark M" is exactly the
  // per-shard slots ≥ M — what checkpoints use to write label-table deltas.
  using SnapshotMark = std::vector<uint32_t>;
  SnapshotMark Snapshot() const;

  // Invokes fn(id, label) for every entry whose shard slot is ≥ the mark
  // (an empty mark enumerates everything). Shards are visited in index
  // order and slots in intern order, so within a shard ids come out
  // ascending. Lock-free over the published chunks: entries interned
  // after the internal count snapshot are not visited.
  void EnumerateSince(const SnapshotMark& mark,
                      const std::function<void(LabelId, const Label&)>& fn) const;

  // Merges `other` into `mark` (per-shard max) — how the kernel advances
  // its persisted-label mark only after a checkpoint commits.
  static void AdvanceMark(SnapshotMark* mark, const SnapshotMark& other);

 private:
  struct Entry {
    Label label;
    Label hi;    // label.ToHi(), precomputed at intern time
    Label star;  // label.ToStar(), precomputed at intern time
    mutable std::atomic<LabelId> hi_id{kInvalidLabelId};    // lazily interned
    mutable std::atomic<LabelId> star_id{kInvalidLabelId};  // lazily interned

    // Default-constructed inside a chunk; the interning writer fills the
    // labels before release-publishing the shard count.
    Entry() = default;
  };

  // Append-only chunked entry storage: slot s lives in
  // chunks[s / kChunkSize][s % kChunkSize]. Chunks are allocated on
  // demand, published with a release store, and never freed or moved
  // while the registry lives — EntryOf needs no lock and no epoch guard.
  static constexpr size_t kChunkSize = 256;
  static constexpr size_t kMaxChunks = 4096;  // 1M labels per shard

  struct InternShard {
    mutable SharedMutex mu;  // guards `ids` and interning writers
    std::unordered_map<Label, LabelId, LabelHash> ids GUARDED_BY(mu);
    std::array<std::atomic<Entry*>, kMaxChunks> chunks{};
    std::atomic<uint32_t> count{0};  // published entries; release on grow

    ~InternShard() {
      for (auto& c : chunks) {
        delete[] c.load(std::memory_order_relaxed);
      }
    }
  };

  // Open-addressing memo table probed lock-free. Empty slots have key 0
  // (PairKey never produces 0 for valid ids); writers store val before
  // key (release) so a reader that observes the key observes the value.
  struct MemoSlot {
    std::atomic<uint64_t> key{0};
    std::atomic<uint64_t> val{0};
  };
  struct MemoTable {
    explicit MemoTable(size_t cap) : capacity(cap), slots(new MemoSlot[cap]) {}
    const size_t capacity;  // power of two
    std::unique_ptr<MemoSlot[]> slots;
  };
  static constexpr size_t kMemoInitCapacity = 256;

  struct ResultShard {
    Mutex mu;  // memo writers only; readers never touch it
    std::atomic<MemoTable*> leq{nullptr};
    std::atomic<MemoTable*> join{nullptr};
    size_t leq_used GUARDED_BY(mu) = 0;  // writer bookkeeping
    size_t join_used GUARDED_BY(mu) = 0;

    ~ResultShard() {
      delete leq.load(std::memory_order_relaxed);
      delete join.load(std::memory_order_relaxed);
    }
  };

  // id = ((slot + 1) << shard_bits) | shard, so id 0 is never produced.
  LabelId MakeId(size_t shard, size_t slot) const {
    return static_cast<LabelId>(((slot + 1) << shard_bits_) | shard);
  }
  size_t ShardOf(LabelId id) const { return id & (shard_count_ - 1); }
  size_t SlotOf(LabelId id) const { return (id >> shard_bits_) - 1; }

  const Entry& EntryOf(LabelId id) const;

  static uint64_t PairKey(LabelId a, LabelId b) {
    return (static_cast<uint64_t>(a) << 32) | b;
  }
  ResultShard& ResultShardFor(uint64_t key) {
    // Splittable 64-bit mix so adjacent id pairs spread across shards.
    uint64_t h = key * 0x9e3779b97f4a7c15ULL;
    h ^= h >> 32;
    return *result_shards_[h & (shard_count_ - 1)];
  }

  // Distinct mix from ResultShardFor (whose low bits pick the shard, so
  // keys within one shard would stride-cluster the probes).
  static size_t MemoHash(uint64_t key) {
    uint64_t h = key * 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return static_cast<size_t>(h);
  }

  // Lock-free probe; returns false on absent key.
  static bool MemoLookup(const MemoTable* t, uint64_t key, uint64_t* val);

  // Inserts (or confirms) key → val into the shard's leq (join=false) or
  // join (join=true) memo, growing the table at load ½ and retiring the
  // outgrown array through the epoch layer. Takes the whole shard (rather
  // than raw table/counter pointers) so the writer-mutex requirement is
  // statically checkable.
  static void MemoInsertLocked(ResultShard& shard, bool join, uint64_t key,
                               uint64_t val) REQUIRES(shard.mu);

  void CountLock() const {
    if (lock_accounting_.load(std::memory_order_relaxed)) {
      lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  const size_t shard_count_;
  const size_t shard_bits_;
  const uint32_t instance_id_;

  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  mutable std::atomic<bool> lock_accounting_{false};
  mutable std::atomic<uint64_t> lock_acquisitions_{0};

  std::vector<std::unique_ptr<InternShard>> intern_shards_;
  std::vector<std::unique_ptr<ResultShard>> result_shards_;
};

}  // namespace histar

#endif  // SRC_CORE_LABEL_REGISTRY_H_
