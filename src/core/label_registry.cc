#include "src/core/label_registry.h"

#include <algorithm>
#include <mutex>

namespace histar {

namespace {

size_t FloorLog2(size_t v) {
  size_t bits = 0;
  while ((size_t{1} << (bits + 1)) <= v) {
    ++bits;
  }
  return bits;
}

size_t ClampShardCount(size_t requested) {
  if (requested < 1) {
    return 1;
  }
  if (requested > LabelRegistry::kMaxShardCount) {
    requested = LabelRegistry::kMaxShardCount;
  }
  // Round down to a power of two so shard selection is a mask.
  return size_t{1} << FloorLog2(requested);
}

}  // namespace

LabelRegistry::LabelRegistry(size_t shard_count)
    : shard_count_(ClampShardCount(shard_count)),
      shard_bits_(FloorLog2(shard_count_)) {
  intern_shards_.reserve(shard_count_);
  result_shards_.reserve(shard_count_);
  for (size_t i = 0; i < shard_count_; ++i) {
    intern_shards_.push_back(std::make_unique<InternShard>());
    result_shards_.push_back(std::make_unique<ResultShard>());
  }
}

LabelId LabelRegistry::Intern(const Label& l) {
  size_t shard_index = l.Hash() & (shard_count_ - 1);
  InternShard& shard = *intern_shards_[shard_index];
  {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    auto it = shard.ids.find(l);
    if (it != shard.ids.end()) {
      return it->second;
    }
  }
  // Precompute the shifted variants before taking the writer lock: the two
  // O(entries) walks would otherwise stall every reader hashing to this
  // shard. A losing race just discards the work below.
  Label hi = l.ToHi();
  Label star = l.ToStar();
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  auto it = shard.ids.find(l);
  if (it != shard.ids.end()) {
    return it->second;
  }
  LabelId id = MakeId(shard_index, shard.entries.size());
  shard.entries.emplace_back(l, std::move(hi), std::move(star));
  shard.ids.emplace(l, id);
  return id;
}

const LabelRegistry::Entry& LabelRegistry::EntryOf(LabelId id) const {
  const InternShard& shard = *intern_shards_[ShardOf(id)];
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  // Entries are append-only and deque elements have stable addresses, so the
  // reference outlives the lock.
  return shard.entries[SlotOf(id)];
}

const Label& LabelRegistry::Get(LabelId id) const { return EntryOf(id).label; }

const Label& LabelRegistry::GetHi(LabelId id) const { return EntryOf(id).hi; }

const Label& LabelRegistry::GetStar(LabelId id) const { return EntryOf(id).star; }

LabelId LabelRegistry::HiOf(LabelId id) {
  const Entry& e = EntryOf(id);
  LabelId hi = e.hi_id.load(std::memory_order_acquire);
  if (hi != kInvalidLabelId) {
    return hi;
  }
  // Intern is idempotent, so a race here converges on the same id.
  hi = Intern(e.hi);
  e.hi_id.store(hi, std::memory_order_release);
  return hi;
}

LabelId LabelRegistry::StarOf(LabelId id) {
  const Entry& e = EntryOf(id);
  LabelId star = e.star_id.load(std::memory_order_acquire);
  if (star != kInvalidLabelId) {
    return star;
  }
  star = Intern(e.star);
  e.star_id.store(star, std::memory_order_release);
  return star;
}

bool LabelRegistry::Leq(LabelId id1, LabelId id2) {
  if (id1 == id2) {
    return true;  // reflexivity: free, no memo traffic
  }
  if (!enabled()) {
    return Get(id1).Leq(Get(id2));
  }
  uint64_t key = PairKey(id1, id2);
  ResultShard& shard = ResultShardFor(key);
  {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    auto it = shard.leq.find(key);
    if (it != shard.leq.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  bool r = Get(id1).Leq(Get(id2));
  {
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    shard.leq.emplace(key, r);
  }
  return r;
}

LabelId LabelRegistry::Join(LabelId id1, LabelId id2) {
  if (id1 == id2) {
    return id1;  // idempotence
  }
  // ⊔ is commutative; canonicalize the key so both orders share one memo slot.
  LabelId a = id1 < id2 ? id1 : id2;
  LabelId b = id1 < id2 ? id2 : id1;
  uint64_t key = PairKey(a, b);
  if (enabled()) {
    ResultShard& shard = ResultShardFor(key);
    {
      std::shared_lock<std::shared_mutex> lock(shard.mu);
      auto it = shard.join.find(key);
      if (it != shard.join.end()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second;
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    LabelId joined = Intern(Get(a).Join(Get(b)));
    {
      std::unique_lock<std::shared_mutex> lock(shard.mu);
      shard.join.emplace(key, joined);
    }
    return joined;
  }
  return Intern(Get(a).Join(Get(b)));
}

void LabelRegistry::ResetStats() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

size_t LabelRegistry::size() const {
  size_t n = 0;
  for (const auto& shard : intern_shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mu);
    n += shard->entries.size();
  }
  return n;
}

LabelRegistry::SnapshotMark LabelRegistry::Snapshot() const {
  SnapshotMark mark(shard_count_, 0);
  for (size_t i = 0; i < shard_count_; ++i) {
    std::shared_lock<std::shared_mutex> lock(intern_shards_[i]->mu);
    mark[i] = static_cast<uint32_t>(intern_shards_[i]->entries.size());
  }
  return mark;
}

void LabelRegistry::EnumerateSince(
    const SnapshotMark& mark, const std::function<void(LabelId, const Label&)>& fn) const {
  for (size_t i = 0; i < shard_count_; ++i) {
    const InternShard& shard = *intern_shards_[i];
    size_t from = i < mark.size() ? mark[i] : 0;
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    for (size_t slot = from; slot < shard.entries.size(); ++slot) {
      fn(MakeId(i, slot), shard.entries[slot].label);
    }
  }
}

void LabelRegistry::AdvanceMark(SnapshotMark* mark, const SnapshotMark& other) {
  if (mark->size() < other.size()) {
    mark->resize(other.size(), 0);
  }
  for (size_t i = 0; i < other.size(); ++i) {
    (*mark)[i] = std::max((*mark)[i], other[i]);
  }
}

}  // namespace histar
