#include "src/core/label_registry.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "src/core/epoch.h"

namespace histar {

namespace {

size_t FloorLog2(size_t v) {
  size_t bits = 0;
  while ((size_t{1} << (bits + 1)) <= v) {
    ++bits;
  }
  return bits;
}

size_t ClampShardCount(size_t requested) {
  if (requested < 1) {
    return 1;
  }
  if (requested > LabelRegistry::kMaxShardCount) {
    requested = LabelRegistry::kMaxShardCount;
  }
  // Round down to a power of two so shard selection is a mask.
  return size_t{1} << FloorLog2(requested);
}

// Registry instances get a process-unique generation id (never 0 — 0 is
// the "no generation recorded" sentinel in the flight recorder). Wrap at
// 2^32 is theoretical: it would take four billion kernel constructions in
// one process.
std::atomic<uint32_t> g_next_instance_id{1};

}  // namespace

LabelRegistry::LabelRegistry(size_t shard_count)
    : shard_count_(ClampShardCount(shard_count)),
      shard_bits_(FloorLog2(shard_count_)),
      instance_id_(g_next_instance_id.fetch_add(1, std::memory_order_relaxed)) {
  intern_shards_.reserve(shard_count_);
  result_shards_.reserve(shard_count_);
  for (size_t i = 0; i < shard_count_; ++i) {
    intern_shards_.push_back(std::make_unique<InternShard>());
    auto rs = std::make_unique<ResultShard>();
    // Eager initial tables: readers never need a null check.
    rs->leq.store(new MemoTable(kMemoInitCapacity), std::memory_order_relaxed);
    rs->join.store(new MemoTable(kMemoInitCapacity), std::memory_order_relaxed);
    result_shards_.push_back(std::move(rs));
  }
}

LabelRegistry::~LabelRegistry() = default;

LabelId LabelRegistry::Intern(const Label& l) {
  size_t shard_index = l.Hash() & (shard_count_ - 1);
  InternShard& shard = *intern_shards_[shard_index];
  {
    CountLock();
    ReaderMutexLock lock(&shard.mu);
    auto it = shard.ids.find(l);
    if (it != shard.ids.end()) {
      return it->second;
    }
  }
  // Precompute the shifted variants before taking the writer lock: the two
  // O(entries) walks would otherwise stall every intern hashing to this
  // shard. A losing race just discards the work below.
  Label hi = l.ToHi();
  Label star = l.ToStar();
  CountLock();
  WriterMutexLock lock(&shard.mu);
  auto it = shard.ids.find(l);
  if (it != shard.ids.end()) {
    return it->second;
  }
  size_t slot = shard.count.load(std::memory_order_relaxed);
  size_t chunk_index = slot / kChunkSize;
  if (chunk_index >= kMaxChunks) {
    fprintf(stderr, "LabelRegistry: shard %zu exceeded %zu entries\n",
            shard_index, kMaxChunks * kChunkSize);
    abort();
  }
  Entry* chunk = shard.chunks[chunk_index].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new Entry[kChunkSize];
    shard.chunks[chunk_index].store(chunk, std::memory_order_release);
  }
  Entry& e = chunk[slot % kChunkSize];
  e.label = l;
  e.hi = std::move(hi);
  e.star = std::move(star);
  LabelId id = MakeId(shard_index, slot);
  shard.ids.emplace(l, id);
  // Publish AFTER the fields are filled: a lock-free reader that acquires
  // a count ≥ slot+1 (or reaches the entry through any release/acquire
  // chain rooted in this id, e.g. an object's atomic label_id_) sees a
  // fully constructed entry.
  shard.count.store(static_cast<uint32_t>(slot + 1), std::memory_order_release);
  return id;
}

const LabelRegistry::Entry& LabelRegistry::EntryOf(LabelId id) const {
  const InternShard& shard = *intern_shards_[ShardOf(id)];
  size_t slot = SlotOf(id);
  // The acquire on count pairs with Intern's release publish; chunks are
  // never freed or moved, so the reference is stable without a lock.
  uint32_t n = shard.count.load(std::memory_order_acquire);
  if (slot >= n) {
    fprintf(stderr, "LabelRegistry: lookup of unpublished id %u\n", id);
    abort();
  }
  const Entry* chunk =
      shard.chunks[slot / kChunkSize].load(std::memory_order_acquire);
  return chunk[slot % kChunkSize];
}

bool LabelRegistry::Known(LabelId id) const {
  if (id == kInvalidLabelId) {
    return false;
  }
  const InternShard& shard = *intern_shards_[ShardOf(id)];
  // SlotOf underflows to a huge value when the id's slot bits are zero
  // (never handed out), so the single bound check covers malformed ids too.
  return SlotOf(id) < shard.count.load(std::memory_order_acquire);
}

const Label& LabelRegistry::Get(LabelId id) const { return EntryOf(id).label; }

const Label& LabelRegistry::GetHi(LabelId id) const { return EntryOf(id).hi; }

const Label& LabelRegistry::GetStar(LabelId id) const { return EntryOf(id).star; }

LabelId LabelRegistry::HiOf(LabelId id) {
  const Entry& e = EntryOf(id);
  LabelId hi = e.hi_id.load(std::memory_order_acquire);
  if (hi != kInvalidLabelId) {
    return hi;
  }
  // Intern is idempotent, so a race here converges on the same id.
  hi = Intern(e.hi);
  e.hi_id.store(hi, std::memory_order_release);
  return hi;
}

LabelId LabelRegistry::StarOf(LabelId id) {
  const Entry& e = EntryOf(id);
  LabelId star = e.star_id.load(std::memory_order_acquire);
  if (star != kInvalidLabelId) {
    return star;
  }
  star = Intern(e.star);
  e.star_id.store(star, std::memory_order_release);
  return star;
}

bool LabelRegistry::MemoLookup(const MemoTable* t, uint64_t key, uint64_t* val) {
  const size_t mask = t->capacity - 1;
  for (size_t i = MemoHash(key) & mask;; i = (i + 1) & mask) {
    uint64_t k = t->slots[i].key.load(std::memory_order_acquire);
    if (k == key) {
      *val = t->slots[i].val.load(std::memory_order_relaxed);
      return true;
    }
    if (k == 0) {
      return false;
    }
  }
}

void LabelRegistry::MemoInsertLocked(ResultShard& shard, bool join, uint64_t key,
                                     uint64_t val) {
  std::atomic<MemoTable*>& tbl = join ? shard.join : shard.leq;
  size_t& used = join ? shard.join_used : shard.leq_used;
  MemoTable* t = tbl.load(std::memory_order_relaxed);
  if ((used + 1) * 2 > t->capacity) {
    // Rehash into a double-size table, publish it, retire the old array —
    // a lock-free reader may still be probing it. All entries are live
    // (no tombstones), so `used` carries over.
    MemoTable* fresh = new MemoTable(t->capacity * 2);
    const size_t mask = fresh->capacity - 1;
    for (size_t i = 0; i < t->capacity; ++i) {
      uint64_t k = t->slots[i].key.load(std::memory_order_relaxed);
      if (k == 0) {
        continue;
      }
      uint64_t v = t->slots[i].val.load(std::memory_order_relaxed);
      for (size_t j = MemoHash(k) & mask;; j = (j + 1) & mask) {
        if (fresh->slots[j].key.load(std::memory_order_relaxed) == 0) {
          fresh->slots[j].val.store(v, std::memory_order_relaxed);
          fresh->slots[j].key.store(k, std::memory_order_relaxed);
          break;
        }
      }
    }
    tbl.store(fresh, std::memory_order_release);
    EpochDomain::Global().Retire(t);
    t = fresh;
  }
  const size_t mask = t->capacity - 1;
  for (size_t i = MemoHash(key) & mask;; i = (i + 1) & mask) {
    MemoSlot& s = t->slots[i];
    uint64_t k = s.key.load(std::memory_order_relaxed);
    if (k == key) {
      return;  // a racing miss inserted it first; results are deterministic
    }
    if (k == 0) {
      s.val.store(val, std::memory_order_relaxed);
      s.key.store(key, std::memory_order_release);
      ++used;
      return;
    }
  }
}

bool LabelRegistry::Leq(LabelId id1, LabelId id2) {
  if (id1 == id2) {
    return true;  // reflexivity: free, no memo traffic
  }
  if (!enabled()) {
    return Get(id1).Leq(Get(id2));
  }
  uint64_t key = PairKey(id1, id2);
  ResultShard& shard = ResultShardFor(key);
  {
    // The guard pins the memo array against a concurrent growth-retire.
    EpochGuard guard;
    uint64_t v;
    if (MemoLookup(shard.leq.load(std::memory_order_acquire), key, &v)) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return v != 0;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  bool r = Get(id1).Leq(Get(id2));
  {
    CountLock();
    MutexLock lock(&shard.mu);
    MemoInsertLocked(shard, /*join=*/false, key, r ? 1 : 0);
  }
  return r;
}

LabelId LabelRegistry::Join(LabelId id1, LabelId id2) {
  if (id1 == id2) {
    return id1;  // idempotence
  }
  // ⊔ is commutative; canonicalize the key so both orders share one memo slot.
  LabelId a = id1 < id2 ? id1 : id2;
  LabelId b = id1 < id2 ? id2 : id1;
  uint64_t key = PairKey(a, b);
  if (enabled()) {
    ResultShard& shard = ResultShardFor(key);
    {
      EpochGuard guard;
      uint64_t v;
      if (MemoLookup(shard.join.load(std::memory_order_acquire), key, &v)) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return static_cast<LabelId>(v);
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    LabelId joined = Intern(Get(a).Join(Get(b)));
    {
      CountLock();
      MutexLock lock(&shard.mu);
      MemoInsertLocked(shard, /*join=*/true, key, joined);
    }
    return joined;
  }
  return Intern(Get(a).Join(Get(b)));
}

void LabelRegistry::ResetStats() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

size_t LabelRegistry::size() const {
  size_t n = 0;
  for (const auto& shard : intern_shards_) {
    n += shard->count.load(std::memory_order_acquire);
  }
  return n;
}

LabelRegistry::SnapshotMark LabelRegistry::Snapshot() const {
  SnapshotMark mark(shard_count_, 0);
  for (size_t i = 0; i < shard_count_; ++i) {
    mark[i] = intern_shards_[i]->count.load(std::memory_order_acquire);
  }
  return mark;
}

void LabelRegistry::EnumerateSince(
    const SnapshotMark& mark, const std::function<void(LabelId, const Label&)>& fn) const {
  for (size_t i = 0; i < shard_count_; ++i) {
    const InternShard& shard = *intern_shards_[i];
    size_t from = i < mark.size() ? mark[i] : 0;
    size_t upto = shard.count.load(std::memory_order_acquire);
    for (size_t slot = from; slot < upto; ++slot) {
      const Entry* chunk =
          shard.chunks[slot / kChunkSize].load(std::memory_order_acquire);
      fn(MakeId(i, slot), chunk[slot % kChunkSize].label);
    }
  }
}

void LabelRegistry::AdvanceMark(SnapshotMark* mark, const SnapshotMark& other) {
  if (mark->size() < other.size()) {
    mark->resize(other.size(), 0);
  }
  for (size_t i = 0; i < other.size(); ++i) {
    (*mark)[i] = std::max((*mark)[i], other[i]);
  }
}

}  // namespace histar
