#include "src/core/trace.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>

#include "src/core/sync.h"

namespace histar {
namespace trace {
namespace {

// Word 4/5 packing helpers (layout documented in trace.h).
inline uint64_t PackW4(uint32_t dur_ns, uint32_t tlabel) {
  return (static_cast<uint64_t>(dur_ns) << 32) | tlabel;
}
inline uint64_t PackW5(uint32_t olabel, uint16_t aux, int8_t code, uint8_t kind) {
  return (static_cast<uint64_t>(olabel) << 32) |
         (static_cast<uint64_t>(aux) << 16) |
         (static_cast<uint64_t>(static_cast<uint8_t>(code)) << 8) | kind;
}

inline void UnpackEvent(const uint64_t w[kEventWords], Event* e) {
  e->ts_ns = w[0];
  e->a = w[1];
  e->b = w[2];
  e->c = w[3];
  e->dur_ns = static_cast<uint32_t>(w[4] >> 32);
  e->tlabel = static_cast<uint32_t>(w[4]);
  e->olabel = static_cast<uint32_t>(w[5] >> 32);
  e->aux = static_cast<uint16_t>(w[5] >> 16);
  e->code = static_cast<int8_t>(static_cast<uint8_t>(w[5] >> 8));
  e->kind = static_cast<uint8_t>(w[5]);
  e->gen = static_cast<uint32_t>(w[6]);
}

// The label generation stamped into every recorded event (trace.h): the
// attached kernel's LabelRegistry instance id. Read-mostly — one relaxed
// load per Append, written only at kernel construction.
std::atomic<uint32_t> g_label_gen{0};

// Fatal-dump path: seeded from HISTAR_TRACE_DUMP once, then overridable.
Mutex g_dump_mu;
std::string* g_dump_path = nullptr;  // guarded by g_dump_mu; leaked

std::string FatalDumpPath() {
  MutexLock lk(&g_dump_mu);
  if (g_dump_path == nullptr) {
    const char* env = std::getenv("HISTAR_TRACE_DUMP");
    g_dump_path = new std::string(env != nullptr ? env : "");
  }
  return *g_dump_path;
}

}  // namespace

const char* EventKindName(uint8_t kind) {
  switch (static_cast<EventKind>(kind)) {
    case EventKind::kNone:
      return "none";
    case EventKind::kSyscall:
      return "syscall";
    case EventKind::kTableLock:
      return "table_lock";
    case EventKind::kRingChain:
      return "ring_chain";
    case EventKind::kEpochAdvance:
      return "epoch_advance";
    case EventKind::kEpochRetire:
      return "epoch_retire";
    case EventKind::kStoreCommit:
      return "store_commit";
    case EventKind::kFault:
      return "fault";
    case EventKind::kFatal:
      return "fatal";
  }
  return "unknown";
}

const char* StoreOpName(uint8_t op) {
  switch (static_cast<StoreOp>(op)) {
    case StoreOp::kCheckpoint:
      return "checkpoint";
    case StoreOp::kSyncOne:
      return "sync_one";
    case StoreOp::kSyncPages:
      return "sync_pages";
    case StoreOp::kRestore:
      return "restore";
  }
  return "unknown";
}

Recorder& Recorder::Global() {
  // Leaked: events are recorded from teardown paths (static destructors of
  // test worlds, crash handlers) that may outlive any non-leaked object.
  static Recorder* g = new Recorder();
  return *g;
}

SlotRing& Recorder::ForCurrentThread() {
  size_t full = EpochDomain::ThreadSlot();
  size_t i = full & (kTraceSlots - 1);
  SlotRing* r = rings_[i].load(std::memory_order_acquire);
  if (r == nullptr) {
    // First event from this slot: allocate and publish. The CAS loser
    // frees its copy; value-initialized atomics mean the ring is zeroed.
    SlotRing* fresh = new SlotRing();
    if (rings_[i].compare_exchange_strong(r, fresh, std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
      r = fresh;
    } else {
      delete fresh;
    }
  }
  // Aliasing watch (trace.h SlotRing): the ring remembers the unmasked
  // slot id that claimed it. A write under a different unmasked id means
  // masked ids are colliding (> kTraceSlots concurrently-live threads);
  // flag the ring so readers withhold it — interleaved writers could
  // otherwise publish an event mixing one request's payload with
  // another's labels. The seq_cst fence orders the flag store ahead of
  // this writer's event-word stores, so any reader that can observe the
  // foreign words also observes the flag.
  uint32_t me = static_cast<uint32_t>(full) + 1;
  uint32_t cur = r->owner.load(std::memory_order_relaxed);
  if (cur != me) {
    if (cur != 0 ||
        !r->owner.compare_exchange_strong(cur, me, std::memory_order_relaxed)) {
      if (cur != me) {
        r->multi_writer.store(1, std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_seq_cst);
      }
    }
  }
  return *r;
}

Taint& Scratch() {
  thread_local Taint t;
  return t;
}

#if HISTAR_TRACE

namespace {

// Appends one packed event to the caller's slot ring. Single writer per
// slot: only the slot's registered thread stores here, so relaxed stores
// are race-free against each other; racing readers are handled by the
// head release/acquire protocol plus Snapshot's overwrite re-check.
inline void Append(SlotRing& ring, uint64_t ts_ns, uint64_t a, uint64_t b,
                   uint64_t c, uint64_t w4, uint64_t w5) {
  uint64_t seq = ring.head.load(std::memory_order_relaxed);
  std::atomic<uint64_t>* w = &ring.words[(seq & (kRingEvents - 1)) * kEventWords];
  w[0].store(ts_ns, std::memory_order_relaxed);
  w[1].store(a, std::memory_order_relaxed);
  w[2].store(b, std::memory_order_relaxed);
  w[3].store(c, std::memory_order_relaxed);
  w[4].store(w4, std::memory_order_relaxed);
  w[5].store(w5, std::memory_order_relaxed);
  w[6].store(g_label_gen.load(std::memory_order_relaxed),
             std::memory_order_relaxed);
  ring.head.store(seq + 1, std::memory_order_release);
}

}  // namespace

void RecordSyscall(uint16_t syscall_kind, int8_t status_code, uint64_t self_or_b,
                   uint64_t ts_ns) {
  SlotRing& ring = Recorder::Global().ForCurrentThread();
  const Taint& t = Scratch();
  Append(ring, ts_ns, t.oid, self_or_b, 0, PackW4(kDurPending, t.tlabel),
         PackW5(t.olabel, syscall_kind, status_code,
                static_cast<uint8_t>(EventKind::kSyscall)));
}

uint64_t BeginSyscallGroup() {
  return Recorder::Global().ForCurrentThread().head.load(
      std::memory_order_relaxed);
}

void FinishSyscallGroup(uint64_t start_seq, uint64_t t0_ns, uint64_t t1_ns) {
  SlotRing& ring = Recorder::Global().ForCurrentThread();
  // Patch exactly the kSyscall events this group recorded: [start_seq,
  // head). Non-syscall events (table-lock markers, epoch retires/advances,
  // fault events recorded inside ExecLocked) interleave freely within a
  // group and are skipped — the exact range means no scan cap to outgrow,
  // so no event is left kDurPending forever. Same-thread read-modify of
  // our own relaxed words is sound (single writer per ring).
  uint64_t head = ring.head.load(std::memory_order_relaxed);
  // A group larger than the ring overwrote its own oldest events; the
  // surviving window is still entirely this group's, so clamping loses
  // nothing and keeps the slot arithmetic in range.
  uint64_t lo = head > kRingEvents ? head - kRingEvents : 0;
  if (start_seq < lo) {
    start_seq = lo;
  }
  // Pass 1: count the group's pending syscall events, so the amortized
  // share divides by exactly what gets patched.
  size_t n = 0;
  for (uint64_t seq = start_seq; seq < head; ++seq) {
    std::atomic<uint64_t>* w =
        &ring.words[(seq & (kRingEvents - 1)) * kEventWords];
    if (static_cast<uint8_t>(w[5].load(std::memory_order_relaxed)) ==
            static_cast<uint8_t>(EventKind::kSyscall) &&
        static_cast<uint32_t>(w[4].load(std::memory_order_relaxed) >> 32) ==
            kDurPending) {
      ++n;
    }
  }
  if (n == 0) {
    return;
  }
  uint64_t span = t1_ns >= t0_ns ? t1_ns - t0_ns : 0;
  uint64_t per = span / n;
  uint32_t dur = per > 0xfffffffeull ? 0xfffffffeu : static_cast<uint32_t>(per);
  // Pass 2: patch and feed the per-kind histograms.
  for (uint64_t seq = start_seq; seq < head; ++seq) {
    std::atomic<uint64_t>* w =
        &ring.words[(seq & (kRingEvents - 1)) * kEventWords];
    uint64_t w5 = w[5].load(std::memory_order_relaxed);
    if (static_cast<uint8_t>(w5) != static_cast<uint8_t>(EventKind::kSyscall)) {
      continue;
    }
    uint64_t w4 = w[4].load(std::memory_order_relaxed);
    if (static_cast<uint32_t>(w4 >> 32) != kDurPending) {
      continue;
    }
    w[4].store(PackW4(dur, static_cast<uint32_t>(w4)),
               std::memory_order_relaxed);
    uint16_t kind = static_cast<uint16_t>(w5 >> 16);
    size_t row = kind < kMaxSyscallHist ? kind : kMaxSyscallHist - 1;
    std::atomic<uint64_t>& cell = ring.sys_hist[row][HistBucket(dur)];
    cell.store(cell.load(std::memory_order_relaxed) + 1,
               std::memory_order_relaxed);
  }
}

void RecordEvent(EventKind kind, uint64_t a, uint64_t b, uint64_t c, int8_t code,
                 uint16_t aux, uint32_t dur_ns, uint64_t ts_ns) {
  SlotRing& ring = Recorder::Global().ForCurrentThread();
  const Taint& t = Scratch();
  if (ts_ns == 0) {
    ts_ns = NowNs();
  }
  Append(ring, ts_ns, a, b, c, PackW4(dur_ns, t.tlabel),
         PackW5(t.olabel, aux, code, static_cast<uint8_t>(kind)));
}

void RecordStoreOp(StoreOp op, int8_t status_code, uint64_t dur_ns, uint64_t bytes,
                   uint64_t write_ops, uint8_t engine_kind) {
  SlotRing& ring = Recorder::Global().ForCurrentThread();
  const Taint& t = Scratch();
  uint32_t dur = dur_ns > 0xfffffffeull ? 0xfffffffeu
                                        : static_cast<uint32_t>(dur_ns);
  Append(ring, NowNs(), bytes, write_ops, engine_kind, PackW4(dur, t.tlabel),
         PackW5(t.olabel, static_cast<uint16_t>(op), status_code,
                static_cast<uint8_t>(EventKind::kStoreCommit)));
  std::atomic<uint64_t>& cell =
      ring.store_hist[static_cast<size_t>(op) & (kNumStoreOps - 1)]
                     [HistBucket(dur_ns)];
  cell.store(cell.load(std::memory_order_relaxed) + 1,
             std::memory_order_relaxed);
}

void RecordFatal(int8_t status_code, uint64_t detail) {
  RecordEvent(EventKind::kFatal, detail, 0, 0, status_code);
  std::string path = FatalDumpPath();
  if (!path.empty()) {
    DumpToFile(path);
  }
}

#endif  // HISTAR_TRACE

size_t Snapshot(std::vector<SlotEvent>* out, size_t max_per_slot) {
  Recorder& rec = Recorder::Global();
  size_t added = 0;
  if (max_per_slot > kRingEvents) {
    max_per_slot = kRingEvents;
  }
  for (size_t slot = 0; slot < kTraceSlots; ++slot) {
    SlotRing* ring = rec.Slot(slot);
    if (ring == nullptr) {
      continue;
    }
    // Aliased rings (two live writers, trace.h SlotRing) are withheld
    // entirely: their events may pair one writer's payload with the
    // other's labels, which no downstream flow check could catch.
    if (ring->multi_writer.load(std::memory_order_acquire) != 0) {
      continue;
    }
    const size_t ring_start = out->size();
    uint64_t head = ring->head.load(std::memory_order_acquire);
    uint64_t avail = head < kRingEvents ? head : kRingEvents;
    uint64_t take = avail < max_per_slot ? avail : max_per_slot;
    uint64_t first = head - take;
    for (uint64_t seq = first; seq < head; ++seq) {
      uint64_t w[kEventWords];
      std::atomic<uint64_t>* src =
          &ring->words[(seq & (kRingEvents - 1)) * kEventWords];
      for (size_t i = 0; i < kEventWords; ++i) {
        w[i] = src[i].load(std::memory_order_relaxed);
      }
      // Overwrite re-check. The fence keeps the relaxed word loads above
      // from being reordered past the head reload below. The writer
      // stores the lapping event's words BEFORE publishing its head, so
      // the words of `seq` are already suspect once head reaches
      // seq + kRingEvents — hence >=, not >: at == the writer may be
      // mid-store into this very slot, and a torn copy could pair a
      // secret event's payload with a newer public event's labels.
      std::atomic_thread_fence(std::memory_order_acquire);
      uint64_t head2 = ring->head.load(std::memory_order_acquire);
      if (head2 >= seq + kRingEvents) {
        continue;
      }
      SlotEvent se;
      UnpackEvent(w, &se.event);
      if (se.event.dur_ns == kDurPending) {
        se.event.dur_ns = 0;  // group not closed yet
      }
      se.slot = static_cast<uint32_t>(slot);
      se.seq = seq;
      out->push_back(se);
      ++added;
    }
    // A second writer may have claimed this ring mid-copy; its interleaved
    // stores are not defended by the single-writer lap check above, so
    // discard whatever was collected. Pairs with the seq_cst fence in
    // ForCurrentThread: a reader that saw foreign words also sees the flag.
    std::atomic_thread_fence(std::memory_order_acquire);
    if (ring->multi_writer.load(std::memory_order_acquire) != 0) {
      added -= out->size() - ring_start;
      out->resize(ring_start);
    }
  }
  return added;
}

void SumSyscallHist(uint16_t syscall_kind, uint64_t* out) {
  Recorder& rec = Recorder::Global();
  size_t row = syscall_kind < kMaxSyscallHist ? syscall_kind : kMaxSyscallHist - 1;
  for (size_t b = 0; b < kHistBuckets; ++b) {
    out[b] = 0;
  }
  for (size_t slot = 0; slot < kTraceSlots; ++slot) {
    SlotRing* ring = rec.Slot(slot);
    if (ring == nullptr) {
      continue;
    }
    for (size_t b = 0; b < kHistBuckets; ++b) {
      out[b] += ring->sys_hist[row][b].load(std::memory_order_relaxed);
    }
  }
}

void SumStoreHist(StoreOp op, uint64_t* out) {
  Recorder& rec = Recorder::Global();
  size_t row = static_cast<size_t>(op) & (kNumStoreOps - 1);
  for (size_t b = 0; b < kHistBuckets; ++b) {
    out[b] = 0;
  }
  for (size_t slot = 0; slot < kTraceSlots; ++slot) {
    SlotRing* ring = rec.Slot(slot);
    if (ring == nullptr) {
      continue;
    }
    for (size_t b = 0; b < kHistBuckets; ++b) {
      out[b] += ring->store_hist[row][b].load(std::memory_order_relaxed);
    }
  }
}

void DumpJson(std::ostream& os, size_t last_n_per_slot) {
  std::vector<SlotEvent> events;
  Snapshot(&events, last_n_per_slot);
  size_t slots = 0;
  {
    Recorder& rec = Recorder::Global();
    for (size_t i = 0; i < kTraceSlots; ++i) {
      if (rec.Slot(i) != nullptr) {
        ++slots;
      }
    }
  }
  os << "{\"schema\":\"histar-trace-dump-v1\",\"slots\":" << slots
     << ",\"events\":" << events.size() << "}\n";
  char buf[512];
  for (const SlotEvent& se : events) {
    const Event& e = se.event;
    std::snprintf(
        buf, sizeof(buf),
        "{\"slot\":%u,\"seq\":%llu,\"ts_ns\":%llu,\"kind\":\"%s\","
        "\"a\":%llu,\"b\":%llu,\"c\":%llu,\"dur_ns\":%u,"
        "\"tlabel\":%u,\"olabel\":%u,\"gen\":%u,\"code\":%d,\"aux\":%u}",
        se.slot, static_cast<unsigned long long>(se.seq),
        static_cast<unsigned long long>(e.ts_ns), EventKindName(e.kind),
        static_cast<unsigned long long>(e.a),
        static_cast<unsigned long long>(e.b),
        static_cast<unsigned long long>(e.c), e.dur_ns, e.tlabel, e.olabel,
        e.gen, static_cast<int>(e.code), static_cast<unsigned>(e.aux));
    os << buf << "\n";
  }
}

bool DumpToFile(const std::string& path, size_t last_n_per_slot) {
  std::ofstream f(path, std::ios::trunc);
  if (!f) {
    return false;
  }
  DumpJson(f, last_n_per_slot);
  return static_cast<bool>(f);
}

void Reset() {
  Recorder& rec = Recorder::Global();
  for (size_t slot = 0; slot < kTraceSlots; ++slot) {
    SlotRing* ring = rec.Slot(slot);
    if (ring == nullptr) {
      continue;
    }
    // head = 0 makes every old event unreachable to Snapshot; the words
    // themselves are overwritten lazily by the next writer. The owner
    // claim and aliasing flag restart with the ring's next writer.
    ring->head.store(0, std::memory_order_release);
    ring->owner.store(0, std::memory_order_relaxed);
    ring->multi_writer.store(0, std::memory_order_relaxed);
    for (size_t r = 0; r < kMaxSyscallHist; ++r) {
      for (size_t b = 0; b < kHistBuckets; ++b) {
        ring->sys_hist[r][b].store(0, std::memory_order_relaxed);
      }
    }
    for (size_t r = 0; r < kNumStoreOps; ++r) {
      for (size_t b = 0; b < kHistBuckets; ++b) {
        ring->store_hist[r][b].store(0, std::memory_order_relaxed);
      }
    }
  }
}

void SetLabelGeneration(uint32_t gen) {
  g_label_gen.store(gen, std::memory_order_relaxed);
}

uint32_t LabelGeneration() {
  return g_label_gen.load(std::memory_order_relaxed);
}

void SetFatalDumpPath(const std::string& path) {
  MutexLock lk(&g_dump_mu);
  if (g_dump_path == nullptr) {
    g_dump_path = new std::string(path);
  } else {
    *g_dump_path = path;
  }
}

}  // namespace trace
}  // namespace histar
