// Clang Thread Safety Analysis attribute macros.
//
// These expand to __attribute__((...)) under clang and to nothing under
// other compilers, so the tier-1 g++ build is unaffected while the
// static-analysis CI job (clang, -Wthread-safety -Werror=thread-safety)
// proves the lock discipline on every path at compile time. The macro
// set and spelling follow the canonical form from the Clang docs /
// abseil's thread_annotations.h so the analysis recognizes them.
//
// ARCHITECTURE.md ("Statically enforced invariants") maps each normative
// concurrency rule to the annotation or histar-lint rule that enforces it.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define HISTAR_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define HISTAR_THREAD_ANNOTATION_(x)
#endif
#else
#define HISTAR_THREAD_ANNOTATION_(x)
#endif

// Type attributes ---------------------------------------------------------

// Marks a class as a capability (a lock). `x` is the capability kind
// string shown in diagnostics, e.g. CAPABILITY("mutex").
#define CAPABILITY(x) HISTAR_THREAD_ANNOTATION_(capability(x))

// Marks an RAII class whose lifetime equals a capability acquisition.
#define SCOPED_CAPABILITY HISTAR_THREAD_ANNOTATION_(scoped_lockable)

// Data-member attributes --------------------------------------------------

// Reads of the member require the capability held (shared suffices);
// writes require it held exclusively.
#define GUARDED_BY(x) HISTAR_THREAD_ANNOTATION_(guarded_by(x))

// Like GUARDED_BY but for the data a pointer member points at.
#define PT_GUARDED_BY(x) HISTAR_THREAD_ANNOTATION_(pt_guarded_by(x))

// Lock-ordering edges (capability x must be acquired before/after this).
#define ACQUIRED_BEFORE(...) \
  HISTAR_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  HISTAR_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

// Function attributes -----------------------------------------------------

// The function must be called with the capabilities held (exclusively /
// at least shared) and does not release them.
#define REQUIRES(...) \
  HISTAR_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  HISTAR_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

// The function acquires / releases the capability.
#define ACQUIRE(...) \
  HISTAR_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  HISTAR_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) \
  HISTAR_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  HISTAR_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  HISTAR_THREAD_ANNOTATION_(release_generic_capability(__VA_ARGS__))

// Conditional acquisition: acquires only when returning `b`.
#define TRY_ACQUIRE(b, ...) \
  HISTAR_THREAD_ANNOTATION_(try_acquire_capability(b, __VA_ARGS__))
#define TRY_ACQUIRE_SHARED(b, ...) \
  HISTAR_THREAD_ANNOTATION_(try_acquire_shared_capability(b, __VA_ARGS__))

// The capability must NOT be held when calling (deadlock prevention).
#define EXCLUDES(...) HISTAR_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

// Runtime-checked assertion that the capability is held; tells the
// analysis to treat it as held from here on (used by *Locked bodies
// reached through a dynamically-chosen lock set, e.g. TableLock shards).
#define ASSERT_CAPABILITY(x) \
  HISTAR_THREAD_ANNOTATION_(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  HISTAR_THREAD_ANNOTATION_(assert_shared_capability(x))

// The function returns a reference to the given capability (lets
// accessors like `cap()` participate in lock expressions).
#define RETURN_CAPABILITY(x) HISTAR_THREAD_ANNOTATION_(lock_returned(x))

// Escape hatch: the function is deliberately outside the analysis.
// Every use must carry a justification comment.
#define NO_THREAD_SAFETY_ANALYSIS \
  HISTAR_THREAD_ANNOTATION_(no_thread_safety_analysis)
