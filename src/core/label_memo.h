// User-level label interning (paper §3.5, §6.2).
//
// The kernel's LabelRegistry memoizes checks on its side of the syscall
// boundary, but library code (unixlib, auth, netd) still used to rebuild the
// gate-crossing request label (L_T^J ⊔ L_G^J)^⋆ — three allocations and a
// merge walk — on every single gate call. Thread and gate labels barely ever
// change between calls, so the floor is memoized here once per distinct
// (thread label, gate label) pair and handed back by reference.
//
// This is untrusted library state: it affects only how fast user code can
// compute the label it asks for; the kernel re-validates every request.
#ifndef SRC_CORE_LABEL_MEMO_H_
#define SRC_CORE_LABEL_MEMO_H_

#include <unordered_map>
#include <utility>

#include "src/core/label.h"
#include "src/core/sync.h"
#include "src/core/thread_annotations.h"

namespace histar {

class GateFloorMemo {
 public:
  GateFloorMemo() = default;
  GateFloorMemo(const GateFloorMemo&) = delete;
  GateFloorMemo& operator=(const GateFloorMemo&) = delete;

  // (thread_label^J ⊔ gate_label^J)^⋆ — computed once per distinct pair.
  // Returned by value: the memo is bounded (see kMaxEntries) and flushes
  // wholesale when full, so handing out references would dangle. A copy of
  // a small label is far cheaper than the two shifts and the merge walk
  // this avoids.
  Label Floor(const Label& thread_label, const Label& gate_label);

  // Long-lived daemons see a fresh caller taint per session (logins mint
  // new categories), so an unbounded memo would leak an entry per client
  // forever. Past this many entries the memo drops everything and rebuilds;
  // recomputation is cheap and the working set at any instant is small.
  static constexpr size_t kMaxEntries = 4096;

  // Process-wide instance shared by unixlib, auth and netd (the moral
  // equivalent of one libc per address space).
  static GateFloorMemo& Global();

  size_t size() const;

 private:
  struct Key {
    Label thread_label;
    Label gate_label;
    bool operator==(const Key& o) const {
      return thread_label == o.thread_label && gate_label == o.gate_label;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      size_t h = k.thread_label.Hash();
      return h ^ (k.gate_label.Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
    }
  };

  mutable Mutex mu_;
  // unordered_map mapped-value references are stable across rehash, which is
  // what lets Floor return a reference without holding mu_.
  std::unordered_map<Key, Label, KeyHash> floors_ GUARDED_BY(mu_);
};

}  // namespace histar

#endif  // SRC_CORE_LABEL_MEMO_H_
