#include "src/core/label_memo.h"

namespace histar {

Label GateFloorMemo::Floor(const Label& thread_label, const Label& gate_label) {
  Key key{thread_label, gate_label};
  MutexLock lock(&mu_);
  auto it = floors_.find(key);
  if (it != floors_.end()) {
    return it->second;
  }
  if (floors_.size() >= kMaxEntries) {
    floors_.clear();
  }
  Label floor = thread_label.ToHi().Join(gate_label.ToHi()).ToStar();
  return floors_.emplace(std::move(key), std::move(floor)).first->second;
}

GateFloorMemo& GateFloorMemo::Global() {
  static GateFloorMemo memo;
  return memo;
}

size_t GateFloorMemo::size() const {
  MutexLock lock(&mu_);
  return floors_.size();
}

}  // namespace histar
