// Epoch-based reclamation (EBR) for the lock-free read path (PR 6).
//
// The warm read path (ObjectTable::GetPublished, the LabelRegistry memo
// tables, container link snapshots) dereferences pointers published with a
// release store and read with an acquire load — no shard mutex. Mutators
// still run under the PR 2 exclusive TableLock; when they unlink a
// structure a concurrent reader may still hold, they hand it to
// EpochDomain::Retire instead of deleting it. The domain frees it only
// once every reader that could have seen the pointer has left its
// critical section.
//
// Protocol (classic three-epoch scheme):
//   - Readers bracket lock-free traversals with EpochGuard. Enter stores
//     the observed global epoch into the thread's record (seq_cst) and
//     re-checks the global so an in-flight advance can't miss it; Exit
//     clears the record. Guards nest (a thread-local depth counter).
//   - Retire(p) tags p with the current global epoch E. A reader active
//     at epoch E may have loaded p just before the mutator unlinked it.
//   - TryAdvance moves the global epoch from E to E+1 only when every
//     active reader's record shows epoch E. Re-entering readers re-read
//     the global, so after TWO advances (global == E+2) every reader that
//     was active at E has exited: garbage tagged E is freed when
//     global_epoch >= E + 2.
//
// Why this is TSan-sound: the advance scan's seq_cst load of each
// record's state synchronizes with the reader's release store in Exit, so
// the reader's whole critical section happens-before the advance decision;
// the free is ordered after two such decisions via gc_mu_. TSan sees the
// full happens-before chain — no suppressions needed.
//
// Thread records double as the per-thread slot registry: ThreadSlot()
// returns a dense id (free-list reuse on thread exit), which the kernel
// uses for collision-free syscall-count and fault-hint slots (replacing
// the PR 3 thread-id hash striping).
//
// The domain is a leaked singleton: retired garbage may legally outlive
// the Kernel or LabelRegistry that produced it (retired nodes are
// self-contained), and leaking the domain sidesteps static-destructor vs
// thread_local teardown ordering. The limbo list stays reachable from the
// static pointer, so LeakSanitizer is clean.
#ifndef SRC_CORE_EPOCH_H_
#define SRC_CORE_EPOCH_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/core/sync.h"
#include "src/core/thread_annotations.h"

namespace histar {

class EpochDomain {
 public:
  // The process-wide domain. Never destroyed (see file comment).
  static EpochDomain& Global();

  // Maximum simultaneously registered threads. Records are recycled via a
  // free list when threads exit, so this bounds concurrency, not lifetime
  // churn.
  static constexpr size_t kMaxThreads = 1024;

  // Dense slot id of the calling thread's record, registering it on first
  // use. Stable for the life of the thread; reused (lowest-free-first)
  // after the thread exits. Callers that index fixed arrays should mask
  // with their array size — ids stay below the number of concurrently
  // live threads, so masking is collision-free until that exceeds the
  // array.
  static size_t ThreadSlot();

  // Reader critical section. Prefer EpochGuard over calling these
  // directly. Nests via a thread-local depth counter.
  void Enter();
  void Exit();

  // Hands `p` to the domain for deferred deletion. Safe to call with or
  // without a guard held (mutators typically hold the exclusive shard
  // lock, not a guard). Opportunistically collects when the limbo list
  // grows past a threshold, so garbage stays bounded without a dedicated
  // reclaimer thread.
  template <typename T>
  void Retire(T* p) {
    // const T is accepted (retiring a pointer-to-const snapshot is common);
    // deletion through the original type is still well-formed.
    RetireRaw(const_cast<void*>(static_cast<const void*>(p)),
              [](void* q) { delete static_cast<T*>(q); });
  }
  template <typename T>
  void RetireArray(T* p) {
    RetireRaw(const_cast<void*>(static_cast<const void*>(p)),
              [](void* q) { delete[] static_cast<T*>(q); });
  }
  void RetireRaw(void* p, void (*deleter)(void*));

  // Attempts one epoch advance and frees everything two epochs stale.
  // Returns the number of items freed.
  size_t AdvanceAndCollect();

  // Test hooks. DrainAll requires no reader to be active (it spins a
  // bounded number of advances); PendingRetired is approximate under
  // concurrency.
  void DrainAll();
  size_t PendingRetired() const;
  uint64_t global_epoch() const {
    return global_epoch_.load(std::memory_order_acquire);
  }

  // Limbo growth threshold that triggers an opportunistic collect inside
  // Retire. Exposed so the bounded-garbage test can pin the bound.
  static constexpr size_t kCollectThreshold = 128;

 private:
  EpochDomain();
  ~EpochDomain() = delete;

  struct alignas(64) Record {
    // 0 = quiescent; otherwise (epoch << 1) | 1.
    std::atomic<uint64_t> state{0};
    std::atomic<bool> registered{false};
  };

  struct Garbage {
    void* ptr;
    void (*deleter)(void*);
    uint64_t epoch;
  };

  size_t RegisterThread();
  void UnregisterThread(size_t slot);

  struct ThreadHandle;
  static ThreadHandle& Handle();

  std::atomic<uint64_t> global_epoch_{1};

  Record records_[kMaxThreads];
  Mutex reg_mu_;  // guards free_slots_ / high_water_
  std::vector<size_t> free_slots_ GUARDED_BY(reg_mu_);
  size_t high_water_ GUARDED_BY(reg_mu_) = 0;  // records_[0..high_water_) ever used

  mutable Mutex gc_mu_;  // guards limbo_ and the advance scan
  std::vector<Garbage> limbo_ GUARDED_BY(gc_mu_);
  std::atomic<size_t> limbo_size_{0};
};

// RAII reader critical section over the global domain.
class EpochGuard {
 public:
  EpochGuard() : domain_(EpochDomain::Global()) { domain_.Enter(); }
  ~EpochGuard() { domain_.Exit(); }
  EpochGuard(const EpochGuard&) = delete;
  EpochGuard& operator=(const EpochGuard&) = delete;

 private:
  EpochDomain& domain_;
};

}  // namespace histar

#endif  // SRC_CORE_EPOCH_H_
