#include "src/core/label_cache.h"

namespace histar {

uint32_t LabelCache::Intern(const Label& l) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = intern_.emplace(l, static_cast<uint32_t>(intern_.size() + 1));
  return it->second;
}

bool LabelCache::CachedLeq(uint32_t id1, const Label& l1, uint32_t id2, const Label& l2) {
  if (!enabled()) {
    return l1.Leq(l2);
  }
  uint64_t key = (static_cast<uint64_t>(id1) << 32) | id2;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = results_.find(key);
    if (it != results_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  bool r = l1.Leq(l2);
  {
    std::lock_guard<std::mutex> lock(mu_);
    results_.emplace(key, r);
  }
  return r;
}

void LabelCache::ResetStats() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

}  // namespace histar
