#include "src/core/epoch.h"

#include "src/core/trace.h"

namespace histar {

// Per-thread registration wrapper: first use registers a record, thread
// exit returns the slot to the free list. `depth` implements guard
// nesting without touching the shared record on re-entry.
struct EpochDomain::ThreadHandle {
  size_t slot = kMaxThreads;  // kMaxThreads = unregistered
  uint32_t depth = 0;

  size_t Slot() {
    if (slot == kMaxThreads) {
      slot = Global().RegisterThread();
    }
    return slot;
  }

  ~ThreadHandle() {
    if (slot != kMaxThreads) {
      Global().UnregisterThread(slot);
    }
  }
};

EpochDomain::ThreadHandle& EpochDomain::Handle() {
  static thread_local ThreadHandle handle;
  return handle;
}

EpochDomain& EpochDomain::Global() {
  // Intentionally leaked (see header): retired garbage and thread_local
  // handles may outlive any static destruction order.
  static EpochDomain* domain = new EpochDomain();
  return *domain;
}

EpochDomain::EpochDomain() { limbo_.reserve(kCollectThreshold * 2); }

size_t EpochDomain::RegisterThread() {
  MutexLock lk(&reg_mu_);
  size_t slot;
  if (!free_slots_.empty()) {
    // Lowest-free-first keeps ids dense, so masked per-slot arrays stay
    // collision-free at any concurrency below their size.
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = high_water_++;
    if (slot >= kMaxThreads) {
      // Out of records: fall back to sharing slot 0. Readers stay
      // correct (the record just looks permanently busier than it is);
      // per-slot counters degrade to sharing, exactly like the old
      // striping they replace.
      --high_water_;
      return 0;
    }
  }
  records_[slot].registered.store(true, std::memory_order_relaxed);
  return slot;
}

void EpochDomain::UnregisterThread(size_t slot) {
  MutexLock lk(&reg_mu_);
  records_[slot].state.store(0, std::memory_order_release);
  records_[slot].registered.store(false, std::memory_order_relaxed);
  // Keep the free list sorted descending so .back() hands out the lowest
  // id first.
  auto it = free_slots_.begin();
  while (it != free_slots_.end() && *it > slot) {
    ++it;
  }
  free_slots_.insert(it, slot);
}

size_t EpochDomain::ThreadSlot() { return Handle().Slot(); }

void EpochDomain::Enter() {
  ThreadHandle& h = Handle();
  if (h.depth++ > 0) {
    return;  // nested guard: already pinned
  }
  Record& rec = records_[h.Slot()];
  uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
  for (;;) {
    // Publish "active at e" BEFORE re-reading the global: an advance that
    // runs between the store and the re-read either sees our record (and
    // stalls at e) or already moved the epoch, in which case the re-read
    // catches it and we re-pin at the new epoch. Either way no advance
    // can believe we are quiescent while we hold a pointer from epoch e.
    rec.state.store((e << 1) | 1, std::memory_order_seq_cst);
    uint64_t e2 = global_epoch_.load(std::memory_order_seq_cst);
    if (e2 == e) {
      return;
    }
    e = e2;
  }
}

void EpochDomain::Exit() {
  ThreadHandle& h = Handle();
  if (--h.depth > 0) {
    return;
  }
  records_[h.slot].state.store(0, std::memory_order_release);
}

void EpochDomain::RetireRaw(void* p, void (*deleter)(void*)) {
  if (p == nullptr) {
    return;
  }
  uint64_t e = global_epoch_.load(std::memory_order_acquire);
  size_t limbo_after;
  {
    MutexLock lk(&gc_mu_);
    limbo_.push_back(Garbage{p, deleter, e});
    limbo_after = limbo_.size();
    limbo_size_.store(limbo_after, std::memory_order_relaxed);
  }
  trace::RecordEvent(trace::EventKind::kEpochRetire, limbo_after, e, 0);
  if (limbo_size_.load(std::memory_order_relaxed) >= kCollectThreshold) {
    AdvanceAndCollect();
  }
}

size_t EpochDomain::AdvanceAndCollect() {
  // Collect the eligible garbage under gc_mu_, run deleters outside it:
  // a deleter may itself Retire (e.g. ~Container retiring nothing today,
  // but keep the lock non-reentrant regardless).
  std::vector<Garbage> ready;
  {
    MutexLock lk(&gc_mu_);
    uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
    bool can_advance = true;
    size_t hw;
    {
      MutexLock rl(&reg_mu_);
      hw = high_water_;
    }
    for (size_t i = 0; i < hw; ++i) {
      uint64_t s = records_[i].state.load(std::memory_order_seq_cst);
      if (s != 0 && (s >> 1) != e) {
        // A reader is still pinned at an older epoch; freeing anything
        // newer than its epoch - 2 could pull memory out from under it.
        can_advance = false;
        break;
      }
    }
    if (can_advance) {
      global_epoch_.store(e + 1, std::memory_order_seq_cst);
      e = e + 1;
    }
    size_t kept = 0;
    for (Garbage& g : limbo_) {
      if (g.epoch + 2 <= e) {
        ready.push_back(g);
      } else {
        limbo_[kept++] = g;
      }
    }
    limbo_.resize(kept);
    limbo_size_.store(kept, std::memory_order_relaxed);
  }
  for (Garbage& g : ready) {
    g.deleter(g.ptr);
  }
  trace::RecordEvent(trace::EventKind::kEpochAdvance, ready.size(),
                     global_epoch_.load(std::memory_order_relaxed), 0);
  return ready.size();
}

void EpochDomain::DrainAll() {
  // Three advances always suffice when no reader is active: after the
  // first two, everything retired before the call is two epochs stale.
  for (int i = 0; i < 3 && PendingRetired() > 0; ++i) {
    AdvanceAndCollect();
  }
}

size_t EpochDomain::PendingRetired() const {
  return limbo_size_.load(std::memory_order_relaxed);
}

}  // namespace histar
