#include "src/core/label.h"

#include <algorithm>
#include <cstring>

namespace histar {

Label::Label(Level default_level,
             std::initializer_list<std::pair<CategoryId, Level>> entries)
    : default_level_(default_level) {
  for (const auto& [c, l] : entries) {
    set(c, l);
  }
}

size_t Label::Find(CategoryId c) const {
  // Entries are sorted by category (the top 61 bits of the packed word), so a
  // lower_bound on (c << 3) lands on c's entry if present.
  uint64_t key = c << 3;
  auto it = std::lower_bound(entries_.begin(), entries_.end(), key,
                             [](uint64_t e, uint64_t k) { return (e & ~7ULL) < k; });
  if (it != entries_.end() && PackedCat(*it) == c) {
    return static_cast<size_t>(it - entries_.begin());
  }
  return entries_.size();
}

Level Label::get(CategoryId c) const {
  size_t i = Find(c);
  return i < entries_.size() ? PackedLevel(entries_[i]) : default_level_;
}

void Label::set(CategoryId c, Level l) {
  size_t i = Find(c);
  if (l == default_level_) {
    if (i < entries_.size()) {
      entries_.erase(entries_.begin() + static_cast<ptrdiff_t>(i));
    }
    return;
  }
  uint64_t packed = Pack(c, l);
  if (i < entries_.size()) {
    entries_[i] = packed;
    return;
  }
  auto it = std::lower_bound(entries_.begin(), entries_.end(), packed,
                             [](uint64_t e, uint64_t k) { return (e & ~7ULL) < (k & ~7ULL); });
  entries_.insert(it, packed);
}

std::vector<CategoryId> Label::Categories() const {
  std::vector<CategoryId> out;
  out.reserve(entries_.size());
  for (uint64_t e : entries_) {
    out.push_back(PackedCat(e));
  }
  return out;
}

bool Label::HasLevel(Level l) const {
  if (default_level_ == l) {
    return true;
  }
  for (uint64_t e : entries_) {
    if (PackedLevel(e) == l) {
      return true;
    }
  }
  return false;
}

bool Label::Leq(const Label& other) const {
  // Merge-walk both sorted entry lists. For a category explicit in only one
  // label, the other side contributes its default.
  size_t i = 0;
  size_t j = 0;
  while (i < entries_.size() || j < other.entries_.size()) {
    CategoryId ci = i < entries_.size() ? PackedCat(entries_[i]) : ~uint64_t{0};
    CategoryId cj = j < other.entries_.size() ? PackedCat(other.entries_[j]) : ~uint64_t{0};
    Level li;
    Level lj;
    if (ci < cj) {
      li = PackedLevel(entries_[i]);
      lj = other.default_level_;
      ++i;
    } else if (cj < ci) {
      li = default_level_;
      lj = PackedLevel(other.entries_[j]);
      ++j;
    } else {
      li = PackedLevel(entries_[i]);
      lj = PackedLevel(other.entries_[j]);
      ++i;
      ++j;
    }
    if (!LevelLeq(li, lj)) {
      return false;
    }
  }
  return LevelLeq(default_level_, other.default_level_);
}

Label Label::ToHi() const {
  Label out(default_level_ == Level::kStar ? Level::kHi : default_level_);
  out.entries_.reserve(entries_.size());
  for (uint64_t e : entries_) {
    Level l = PackedLevel(e);
    out.entries_.push_back(Pack(PackedCat(e), l == Level::kStar ? Level::kHi : l));
  }
  return out;
}

Label Label::ToStar() const {
  Label out(default_level_ == Level::kHi ? Level::kStar : default_level_);
  out.entries_.reserve(entries_.size());
  for (uint64_t e : entries_) {
    Level l = PackedLevel(e);
    out.entries_.push_back(Pack(PackedCat(e), l == Level::kHi ? Level::kStar : l));
  }
  return out;
}

Label Label::Join(const Label& other) const {
  Label out(LevelMax(default_level_, other.default_level_));
  size_t i = 0;
  size_t j = 0;
  while (i < entries_.size() || j < other.entries_.size()) {
    CategoryId ci = i < entries_.size() ? PackedCat(entries_[i]) : ~uint64_t{0};
    CategoryId cj = j < other.entries_.size() ? PackedCat(other.entries_[j]) : ~uint64_t{0};
    CategoryId c;
    Level li;
    Level lj;
    if (ci < cj) {
      c = ci;
      li = PackedLevel(entries_[i]);
      lj = other.default_level_;
      ++i;
    } else if (cj < ci) {
      c = cj;
      li = default_level_;
      lj = PackedLevel(other.entries_[j]);
      ++j;
    } else {
      c = ci;
      li = PackedLevel(entries_[i]);
      lj = PackedLevel(other.entries_[j]);
      ++i;
      ++j;
    }
    out.set(c, LevelMax(li, lj));
  }
  return out;
}

Label Label::Meet(const Label& other) const {
  Label out(LevelMin(default_level_, other.default_level_));
  size_t i = 0;
  size_t j = 0;
  while (i < entries_.size() || j < other.entries_.size()) {
    CategoryId ci = i < entries_.size() ? PackedCat(entries_[i]) : ~uint64_t{0};
    CategoryId cj = j < other.entries_.size() ? PackedCat(other.entries_[j]) : ~uint64_t{0};
    CategoryId c;
    Level li;
    Level lj;
    if (ci < cj) {
      c = ci;
      li = PackedLevel(entries_[i]);
      lj = other.default_level_;
      ++i;
    } else if (cj < ci) {
      c = cj;
      li = default_level_;
      lj = PackedLevel(other.entries_[j]);
      ++j;
    } else {
      c = ci;
      li = PackedLevel(entries_[i]);
      lj = PackedLevel(other.entries_[j]);
      ++i;
      ++j;
    }
    out.set(c, LevelMin(li, lj));
  }
  return out;
}

Label Label::RaiseForRead(const Label& thread_label, const Label& obj_label) {
  return thread_label.ToHi().Join(obj_label).ToStar();
}

bool Label::operator==(const Label& other) const {
  return default_level_ == other.default_level_ && entries_ == other.entries_;
}

size_t Label::Hash() const {
  uint64_t h = 0x9e3779b97f4a7c15ULL ^ static_cast<uint64_t>(default_level_);
  for (uint64_t e : entries_) {
    h ^= e + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return static_cast<size_t>(h);
}

std::string Label::ToString(const std::function<std::string(CategoryId)>& namer) const {
  std::string out = "{";
  for (uint64_t e : entries_) {
    CategoryId c = PackedCat(e);
    if (namer) {
      out += namer(c);
    } else {
      out += "c" + std::to_string(c & 0xffff);
    }
    out += LevelChar(PackedLevel(e));
    out += ", ";
  }
  out += LevelChar(default_level_);
  out += "}";
  return out;
}

void Label::Serialize(std::vector<uint8_t>* out) const {
  out->push_back(static_cast<uint8_t>(default_level_));
  uint32_t n = static_cast<uint32_t>(entries_.size());
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(n >> (8 * i)));
  }
  for (uint64_t e : entries_) {
    for (int i = 0; i < 8; ++i) {
      out->push_back(static_cast<uint8_t>(e >> (8 * i)));
    }
  }
}

bool Label::Deserialize(const uint8_t* data, size_t len, size_t* consumed, Label* out) {
  if (len < 5) {
    return false;
  }
  uint8_t def = data[0];
  if (def > static_cast<uint8_t>(Level::k3)) {
    // Stored labels may contain kStar..k3 but never kHi.
    return false;
  }
  uint32_t n = 0;
  for (int i = 0; i < 4; ++i) {
    n |= static_cast<uint32_t>(data[1 + i]) << (8 * i);
  }
  size_t need = 5 + static_cast<size_t>(n) * 8;
  if (len < need) {
    return false;
  }
  Label result(static_cast<Level>(def));
  result.entries_.reserve(n);
  uint64_t prev = 0;
  for (uint32_t k = 0; k < n; ++k) {
    uint64_t e = 0;
    for (int i = 0; i < 8; ++i) {
      e |= static_cast<uint64_t>(data[5 + k * 8 + static_cast<size_t>(i)]) << (8 * i);
    }
    if (k > 0 && (e & ~7ULL) <= (prev & ~7ULL)) {
      return false;  // entries must be strictly sorted by category
    }
    prev = e;
    result.entries_.push_back(e);
  }
  *out = std::move(result);
  if (consumed != nullptr) {
    *consumed = need;
  }
  return true;
}

}  // namespace histar
