// Processes as a user-space convention (paper §5.2, Figure 6), file
// descriptors as mapped segments (§5.3), pipes, signals (§5.6), and the
// spawn/fork/exec machinery (§7.1).
//
// A process is: two fresh categories pr/pw; a *process container* labeled
// {pw0, 1} exposing the exit-status segment and a signal gate; and an
// *internal container* labeled {pr3, pw0, 1} holding the address space,
// heap, stack and file-descriptor segments. All of it is built with plain
// syscalls — no kernel privilege.
//
// Programs are C++ functions registered in a ProgramRegistry; executable
// files contain the line "#!histar <program>" and exec() resolves them
// through the file system, standing in for on-disk binaries.
#ifndef SRC_UNIXLIB_PROCESS_H_
#define SRC_UNIXLIB_PROCESS_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/sync.h"
#include "src/core/thread_annotations.h"
#include "src/kernel/kernel.h"
#include "src/unixlib/fs.h"

namespace histar {

// Shared, boot-time environment handed to every process.
struct UnixEnv {
  Kernel* kernel = nullptr;
  ObjectId fs_root = kInvalidObject;    // the "/" directory container
  ObjectId proc_root = kInvalidObject;  // where process containers live
  ObjectId console = kInvalidObject;    // console device id
};

// Kernel object ids making up one process (Figure 6).
struct ProcessIds {
  ObjectId proc_ct = kInvalidObject;      // {pw0, 1}
  ObjectId internal_ct = kInvalidObject;  // {pr3, pw0, 1}
  ObjectId thread = kInvalidObject;       // {pr*, pw*, …, 1}
  ObjectId address_space = kInvalidObject;
  ObjectId heap = kInvalidObject;
  ObjectId stack = kInvalidObject;
  ObjectId exit_seg = kInvalidObject;     // {pw0, 1}: [done u64][status i64]
  ObjectId signal_gate = kInvalidObject;  // {pr*, pw*, 1}, clearance-guarded
  ObjectId exit_gate = kInvalidObject;    // §5.8 exit declassifier (optional)
  CategoryId pr = kInvalidCategory;
  CategoryId pw = kInvalidCategory;
};


// Options controlling the labels of a new process.
struct ProcessOpts {
  // Categories the new process's thread should own beyond pr/pw (e.g. the
  // user's ur/uw, or wrap's v). Only ⋆ entries are honored.
  Label extra_ownership;
  // Taint applied to the process's thread and all its objects (e.g. v3 for
  // the isolated scanner).
  Label taint;
  // Category whose owners may invoke the signal gate (conventionally the
  // user's uw). kInvalidCategory → anyone who can see the gate may signal.
  CategoryId signal_guard = kInvalidCategory;
  // Descriptors to share with the new process (fd segments hard-linked into
  // its container, in order — fd 0, 1, …). Used by fork and by launchers
  // that pre-plumb pipes (wrap → scanner).
  std::vector<ContainerEntry> inherit_fds;
  // Where to place the process container. Defaults to the environment's
  // proc_root; a tainted launcher (wrap) must supply a container its taint
  // can write — the kernel will not let it touch the untainted default.
  ObjectId proc_parent = kInvalidObject;
  // §5.8 exit declassification: categories whose owner (the spawner) pre-
  // authorizes the one-bit "this process exited, with this status" leak. If
  // non-empty, the library installs an exit untainting gate owning exactly
  // these categories; a process that later taints itself in them can still
  // report its exit. Empty (the default, and wrap's choice) means a self-
  // tainted process simply cannot signal its exit to untainted observers.
  // The spawner must own every category listed here.
  std::vector<CategoryId> exit_untaint;
  uint64_t quota = 8 << 20;
};

struct ProcessContext;
using ProgramFn = std::function<int64_t(ProcessContext&)>;

class ProcessManager;

// Per-fd state, stored *in* the fd segment so it is shared by every process
// mapping that segment (§5.3: shared seek positions).
enum class FdType : uint64_t {
  kFree = 0,
  kFile = 1,
  kPipe = 2,
  kConsole = 3,
};

struct FdSegState {
  uint64_t type = 0;
  uint64_t dir = 0;       // containing directory of the file
  uint64_t obj = 0;       // file segment / pipe buffer segment
  uint64_t buf_ct = 0;    // container holding the pipe buffer
  uint64_t offset = 0;    // seek position
  uint64_t open_flags = 0;
  uint64_t write_end = 0;  // pipes: 1 if this fd is the write end
};

// The fd table: fd number → fd segment (hard-linked into the process
// container, so shared descriptors die only after every holder closes).
class FdTable {
 public:
  FdTable(Kernel* kernel, const ProcessIds& ids, Label seg_label)
      : kernel_(kernel), ids_(ids), seg_label_(std::move(seg_label)) {}

  // Allocates the lowest free fd backed by a fresh fd segment.
  Result<int> OpenFile(ObjectId self, ObjectId dir, ObjectId file, uint64_t flags);
  // Opens the console device (named by ⟨root_ct, console⟩) as an fd.
  Result<int> OpenConsole(ObjectId self, ObjectId root_ct, ObjectId console);
  // Creates a pipe; returns {read_fd, write_fd}. The buffer segment carries
  // `seg_label_` so tainted processes get tainted pipes.
  Result<std::pair<int, int>> CreatePipe(ObjectId self);

  Status Close(ObjectId self, int fd);
  // Duplicates another process's open descriptor into this table (the fork
  // path): hard-links the fd segment.
  Result<int> Adopt(ObjectId self, ContainerEntry fd_seg);

  // Unix-ish I/O. Reads/writes move the shared seek pointer.
  Result<uint64_t> Read(ObjectId self, int fd, void* buf, uint64_t len);
  // As Read, but a pipe with no data returns kAgain after ~timeout_ms
  // instead of blocking until data or EOF (wrap's covert-channel deadline
  // needs a bounded poll).
  Result<uint64_t> ReadTimeout(ObjectId self, int fd, void* buf, uint64_t len,
                               uint32_t timeout_ms);
  Result<uint64_t> Write(ObjectId self, int fd, const void* buf, uint64_t len);
  Result<uint64_t> Seek(ObjectId self, int fd, uint64_t pos);

  // The fd segment backing `fd` (for Adopt in a child).
  Result<ContainerEntry> Entry(int fd) const;
  int count() const;

  // Opt-in ring-backed pipe transfers (PR 5): creates a submission ring
  // (labeled like the pipe buffers) in the process container and routes
  // each pipe chunk — data reads/writes plus the cursor commit — through it
  // as ONE LINKED chain instead of a synchronous batch. The linked shape is
  // an actual semantic upgrade over the batch: a failing data op CANCELS
  // the cursor commit outright (kCancelled), so the compensating
  // "rollback the cursor we already published" write the sync path needs
  // never happens. Single-consumer, like everything ring: one FdTable, one
  // thread at a time (the per-process pattern). Chunks fall back to
  // SubmitBatch whenever the ring refuses the submission.
  Status EnableRingTransfers(ObjectId self);
  bool ring_transfers_enabled() const { return ring_ != kInvalidObject; }

 private:
  static constexpr int kMaxFd = 64;
  static constexpr uint64_t kPipeBufBytes = 4096;

  Result<int> Alloc(ObjectId self, const FdSegState& init);
  Result<FdSegState> Load(ObjectId self, int fd) const;
  Status Store(ObjectId self, int fd, const FdSegState& st);

  Result<uint64_t> PipeRead(ObjectId self, const FdSegState& st, void* buf, uint64_t len,
                            uint32_t timeout_ms);
  Result<uint64_t> PipeWrite(ObjectId self, const FdSegState& st, const void* buf,
                             uint64_t len);

  // Executes `cnt` requests as one fully-linked ring chain, filling `res`.
  // Returns true when the chain ran via the ring (res is authoritative —
  // including kCancelled for ops a predecessor's failure suppressed), false
  // when the submission was never accepted (caller falls back to
  // SubmitBatch; nothing executed).
  bool RingChunkLinked(ObjectId self, const SyscallReq* reqs, size_t cnt, SyscallRes* res);

  Kernel* kernel_;
  ProcessIds ids_;
  Label seg_label_;
  ObjectId ring_ = kInvalidObject;
  ObjectId fd_segs_[kMaxFd] = {};
};

// Everything a running program sees.
struct ProcessContext {
  Kernel* kernel = nullptr;
  UnixEnv env;
  ProcessIds ids;
  ObjectId self = kInvalidObject;  // == ids.thread
  FileSystem fs{nullptr};          // per-process (mount table copies on fork)
  ObjectId cwd = kInvalidObject;
  std::unique_ptr<FdTable> fds;
  std::vector<std::string> args;
  ProcessManager* mgr = nullptr;
  // Default container for this process's children (inherited): a sandboxed
  // process spawns helpers inside its donated area, not the global root.
  ObjectId child_proc_parent = kInvalidObject;
  // Unix signal dispositions (signo → handler); invoked by PollSignals.
  std::map<int, std::function<void(int)>> signal_handlers;
  int64_t pending_exit_code = 0;

  // Drains kernel alerts into Unix signal handlers. Returns count handled.
  int PollSignals();
};

// A spawned process the parent can wait on.
class ProcHandle {
 public:
  ProcHandle(Kernel* kernel, ProcessIds ids) : kernel_(kernel), ids_(std::move(ids)) {}
  ~ProcHandle();

  ProcHandle(const ProcHandle&) = delete;
  ProcHandle& operator=(const ProcHandle&) = delete;

  const ProcessIds& ids() const { return ids_; }
  // Blocks until the child exits; returns its status.
  Result<int64_t> Wait(ObjectId self, uint32_t timeout_ms = 30000);
  // Sends a Unix signal through the child's signal gate.
  Status Kill(ObjectId self, int signo);
  // Severs the process subtree (resource revocation, §3.2): works even if
  // the target never cooperates.
  Status Destroy(ObjectId self);

  void AttachHost(std::thread t) { host_ = std::move(t); }

 private:
  friend class ProcessManager;
  Kernel* kernel_;
  ProcessIds ids_;
  std::thread host_;
};

class ProcessManager {
 public:
  explicit ProcessManager(const UnixEnv& env);

  // Registers a program (the moral equivalent of installing a binary).
  void RegisterProgram(const std::string& name, ProgramFn fn);
  bool HasProgram(const std::string& name) const;
  // Writes an executable file ("#!histar <program>") into `dir`.
  Result<ObjectId> InstallBinary(ObjectId self, FileSystem* fs, ObjectId dir,
                                 const std::string& filename, const std::string& program,
                                 const Label& label);

  // spawn(): builds a complete process and starts `program` in it on a new
  // host thread (paper §7.1: the fast path, no copying of the parent).
  Result<std::unique_ptr<ProcHandle>> Spawn(ProcessContext& parent, const std::string& program,
                                            const std::vector<std::string>& args,
                                            const ProcessOpts& opts = ProcessOpts());
  // As Spawn but resolves `path` through the file system to an executable.
  Result<std::unique_ptr<ProcHandle>> SpawnPath(ProcessContext& parent,
                                                const std::string& path,
                                                const std::vector<std::string>& args,
                                                const ProcessOpts& opts = ProcessOpts());

  // fork(): new process that *copies* the parent's heap, stack, mount table
  // and shares its descriptors, then runs `child_body` (our stand-in for
  // "returns 0 in the child"). Much more expensive than Spawn — that is the
  // point (§7.1).
  Result<std::unique_ptr<ProcHandle>> Fork(ProcessContext& parent,
                                           std::function<int64_t(ProcessContext&)> child_body);

  // exec(): replaces the current process image (fresh AS/heap/stack, old
  // ones dropped) and runs the program found at `path`; returns its exit
  // status, which the caller must itself return.
  Result<int64_t> Exec(ProcessContext& ctx, const std::string& path,
                       const std::vector<std::string>& args);

  // The exit protocol (status write + futex wake + halt). Called
  // automatically when a program function returns.
  void Exit(ProcessContext& ctx, int64_t status);

  // Builds the scaffolding of Figure 6 without starting a program (used by
  // daemons that manage their own main loop, and by tests).
  Result<ProcessIds> CreateProcessObjects(ObjectId creator, const std::string& name,
                                          const ProcessOpts& opts);
  // Makes a ProcessContext for a thread of an already-created process.
  ProcessContext MakeContext(const ProcessIds& ids, const std::vector<std::string>& args);

  const UnixEnv& env() const { return env_; }

 private:
  Result<std::unique_ptr<ProcHandle>> Launch(ProcessContext& parent, ProgramFn fn,
                                             const std::vector<std::string>& args,
                                             const ProcessOpts& opts,
                                             bool copy_parent_image);

  UnixEnv env_;
  mutable Mutex programs_mu_;
  std::map<std::string, ProgramFn> programs_ GUARDED_BY(programs_mu_);
};

}  // namespace histar

#endif  // SRC_UNIXLIB_PROCESS_H_
